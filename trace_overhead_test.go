package repro

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/sonetlink"
	"repro/internal/trace"
)

// sonetWorld is the AblationSonetPath rig kept alive between exchanges, so
// the steady-state datapath can be measured without rebuild costs.
type sonetWorld struct {
	k    *sim.Kernel
	a, b *nic.Interface
	vc   atm.VC
	rec  *trace.Recorder
}

// newSonetWorld builds the two-interface SONET world. When attach is true,
// a flight recorder is wired to every hop and then disabled — the
// configuration whose cost must be indistinguishable from no recorder.
func newSonetWorld(tb testing.TB, attach bool) *sonetWorld {
	k := sim.NewKernel()
	w := &sonetWorld{k: k, vc: atm.VC{VCI: 9}}
	if attach {
		w.rec = trace.NewRecorder(k, 1<<16)
	}
	mk := func(name string) *nic.Interface {
		cfg := nic.DefaultConfig(name)
		cfg.RxFifoDepth = 128
		iface, err := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		if err != nil {
			tb.Fatal(err)
		}
		return iface
	}
	w.a, w.b = mk("a"), mk("b")
	lcfg := sonetlink.Config{Rate: sonet.STS3c, Delay: 10_000, Recorder: w.rec}
	if _, err := sonetlink.Connect(k, lcfg, w.a, w.b); err != nil {
		tb.Fatal(err)
	}
	if attach {
		w.a.SetRecorder(w.rec)
		w.b.SetRecorder(w.rec)
		w.rec.Enable(false)
	}
	w.a.OpenVC(w.vc)
	w.b.OpenVC(w.vc)
	return w
}

var mtuPayload = make([]byte, 9180)

// exchange pushes five MTU packets end to end and drains the kernel. The
// payload buffer is shared (the datapath only reads it), so the measured
// work is the pipeline, not payload allocation.
func (w *sonetWorld) exchange(tb testing.TB) {
	delivered := 0
	w.b.OnReceive(func(nic.Delivered) { delivered++ })
	for j := 0; j < 5; j++ {
		w.a.Send(w.vc, mtuPayload, nil)
	}
	w.k.Run()
	if delivered != 5 {
		tb.Fatalf("delivered %d of 5", delivered)
	}
}

// TestTraceDisabledZeroAllocs pins the nil-safe instrument discipline for
// the recorder: a datapath with spans attached but recording disabled
// allocates exactly as much per steady-state exchange as one that never saw
// a recorder. (The count is nonzero — the frame link copies each frame —
// but it must be the SAME nonzero.)
func TestTraceDisabledZeroAllocs(t *testing.T) {
	base := newSonetWorld(t, false)
	traced := newSonetWorld(t, true)
	// One warm-up exchange each: pools fill, lazy maps settle.
	base.exchange(t)
	traced.exchange(t)
	baseAllocs := testing.AllocsPerRun(5, func() { base.exchange(t) })
	tracedAllocs := testing.AllocsPerRun(5, func() { traced.exchange(t) })
	if tracedAllocs != baseAllocs {
		t.Fatalf("disabled tracing changes allocations: %.1f without recorder, %.1f with (want equal)",
			baseAllocs, tracedAllocs)
	}
}

// BenchmarkTraceDisabledOverhead guards the ≤2%-ns/op budget for fully
// disabled tracing on the SONET path: the per-hop cost must be one pointer
// test. Both variants run interleaved min-of-N in the same process, so the
// comparison cancels machine noise; the benchmark fails if the traced-but-
// disabled world's best exchange is more than 2% slower.
func BenchmarkTraceDisabledOverhead(b *testing.B) {
	base := newSonetWorld(b, false)
	traced := newSonetWorld(b, true)
	base.exchange(b)
	traced.exchange(b)
	one := func(w *sonetWorld) time.Duration {
		t0 := time.Now()
		w.exchange(b)
		return time.Since(t0)
	}
	var baseBest, tracedBest time.Duration
	for i := 0; i < b.N; i++ {
		baseBest, tracedBest = time.Duration(1<<62), time.Duration(1<<62)
		// Paired rounds, alternating order, GC normalized before each pair:
		// min-of-N cancels scheduler and heap-layout noise that dwarfs the
		// one-pointer-test cost under measurement.
		for round := 0; round < 40; round++ {
			runtime.GC()
			var db, dt time.Duration
			if round%2 == 0 {
				db, dt = one(base), one(traced)
			} else {
				dt, db = one(traced), one(base)
			}
			if db < baseBest {
				baseBest = db
			}
			if dt < tracedBest {
				tracedBest = dt
			}
		}
	}
	ratio := float64(tracedBest) / float64(baseBest)
	b.ReportMetric((ratio-1)*100, "overhead-%")
	if ratio > 1.02 {
		b.Fatalf("disabled tracing costs %.1f%% ns/op (budget 2%%): base %v, traced %v",
			(ratio-1)*100, baseBest, tracedBest)
	}
}
