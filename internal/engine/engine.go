// Package engine models the embedded RISC protocol engines (Intel 80960
// class) that the host interface architecture puts between the host bus and
// the cell stream — one on the transmit side running segmentation firmware,
// one on the receive side running reassembly firmware.
//
// The paper's central quantitative exercise is a cycle budget: count the
// instructions each firmware routine executes per cell, multiply by the
// engine's cycle time, and compare against the cell interarrival time
// (2.7 µs at 155 Mb/s, 0.68 µs at 622 Mb/s).  This package is that model
// made executable: firmware routines are declared as named instruction
// counts (see the nic package for the per-routine pseudo-code they were
// counted from), and Run charges simulated engine time accordingly.
//
// Cost conventions: single-cycle register instructions (the i960 issues most
// ALU ops in one cycle), with memory touches and FIFO accesses charged extra
// cycles by the routine definitions themselves.  The CPI knob covers
// everything we don't model (cache misses, branch bubbles).
package engine

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config sets an engine's speed.
type Config struct {
	// ClockHz is the processor clock. The board's i960 ran at 25 MHz.
	ClockHz int64
	// CPI is average cycles per instruction, in thousandths (1000 = 1.0).
	// The i960 sustains close to 1.0 on register code; 1500 is a
	// conservative figure once load/store stalls are included.
	CPIMilli int64
	// DispatchInstr is the fixed instruction overhead to enter a firmware
	// routine: the event-loop poll, vector dispatch, and register save.
	// The i960's register-window design made this small (~10 instructions
	// versus ~50+ for a full interrupt frame) — one of the reasons the
	// paper's architecture could afford per-cell firmware at all.
	DispatchInstr int
}

// DefaultConfig is a 25 MHz i960 with CPI 1.2 and 10-instruction dispatch.
func DefaultConfig() Config {
	return Config{ClockHz: 25_000_000, CPIMilli: 1200, DispatchInstr: 10}
}

// Engine is one protocol processor. All firmware runs to completion: the
// engines poll FIFOs rather than take nested interrupts, so routines are
// serialized, which a sim.Resource captures exactly.
type Engine struct {
	k    *sim.Kernel
	name string
	cfg  Config
	res  *sim.Resource

	routines map[string]*RoutineStat

	// Registry instruments (nil until Instrument is called; nil-safe).
	mRoutines *metrics.Counter
	mInstr    *metrics.Counter
	mBusy     *metrics.Counter
	mQueue    *metrics.Gauge
}

// RoutineStat accumulates per-routine accounting.
type RoutineStat struct {
	Name  string
	Calls uint64
	Instr uint64
	Time  sim.Duration
}

// New creates an engine.
func New(k *sim.Kernel, name string, cfg Config) *Engine {
	if cfg.ClockHz <= 0 {
		panic("engine: non-positive clock")
	}
	if cfg.CPIMilli <= 0 {
		cfg.CPIMilli = 1000
	}
	return &Engine{k: k, name: name, cfg: cfg, res: sim.NewResource(k, name),
		routines: make(map[string]*RoutineStat)}
}

// Name returns the engine's diagnostic name.
func (e *Engine) Name() string { return e.name }

// Instrument registers the engine's telemetry under the given name prefix:
// "<prefix>.routines" and "<prefix>.instr" counters, a "<prefix>.busy_ns"
// counter of accumulated firmware occupancy, and a "<prefix>.qlen" gauge
// whose high watermark is the deepest the routine queue ever got.
func (e *Engine) Instrument(reg *metrics.Registry, prefix string) {
	e.mRoutines = reg.Counter(prefix + ".routines")
	e.mInstr = reg.Counter(prefix + ".instr")
	e.mBusy = reg.Counter(prefix + ".busy_ns")
	e.mQueue = reg.Gauge(prefix + ".qlen")
}

// Config returns the engine's timing parameters.
func (e *Engine) Config() Config { return e.cfg }

// InstrTime converts an instruction count to engine-occupancy time,
// including nothing but the instructions themselves.
func (e *Engine) InstrTime(instr int) sim.Duration {
	if instr < 0 {
		panic(fmt.Sprintf("engine: negative instruction count %d", instr))
	}
	// ns = instr * CPI * 1e9 / clock. CPIMilli is thousandths.
	cycles := int64(instr) * e.cfg.CPIMilli // milli-cycles
	ns := cycles * 1_000_000 / e.cfg.ClockHz
	// Round up: an engine cannot finish a routine mid-cycle.
	if cycles*1_000_000%e.cfg.ClockHz != 0 {
		ns++
	}
	return sim.Duration(ns)
}

// RoutineTime is InstrTime plus the dispatch overhead — the wall time one
// firmware activation occupies the engine.
func (e *Engine) RoutineTime(instr int) sim.Duration {
	return e.InstrTime(instr + e.cfg.DispatchInstr)
}

// Run schedules the named routine (instr instructions plus dispatch) on the
// engine. done runs when the routine completes; routines queue FIFO. The
// return value is the predicted completion time.
func (e *Engine) Run(label string, instr int, done func()) sim.Time {
	d := e.RoutineTime(instr)
	st := e.routines[label]
	if st == nil {
		st = &RoutineStat{Name: label}
		e.routines[label] = st
	}
	st.Calls++
	st.Instr += uint64(instr + e.cfg.DispatchInstr)
	st.Time += d
	e.mRoutines.Inc()
	e.mInstr.Add(uint64(instr + e.cfg.DispatchInstr))
	e.mBusy.Add(uint64(d))
	e.mQueue.Set(int64(e.res.QueueLen()))
	return e.res.Use(d, done)
}

// Busy reports whether firmware is executing now.
func (e *Engine) Busy() bool { return e.res.Busy() }

// QueueLen reports routines waiting to run.
func (e *Engine) QueueLen() int { return e.res.QueueLen() }

// Utilization is the fraction of simulated time the engine was busy.
func (e *Engine) Utilization() float64 { return e.res.Utilization() }

// Routines returns per-routine statistics sorted by name.
func (e *Engine) Routines() []RoutineStat {
	out := make([]RoutineStat, 0, len(e.routines))
	for _, st := range e.routines {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HeadroomAt returns the ratio cellTime/routineTime for a routine of instr
// instructions against the given cell interarrival time: >1 means the
// engine keeps up at line rate, <1 means it is the bottleneck.  This is the
// number the paper's Figure-style analysis reports per configuration.
func (e *Engine) HeadroomAt(instr int, cellTime sim.Duration) float64 {
	rt := e.RoutineTime(instr)
	if rt == 0 {
		return 0
	}
	return float64(cellTime) / float64(rt)
}
