package engine

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func test25MHz() Config {
	return Config{ClockHz: 25_000_000, CPIMilli: 1000, DispatchInstr: 0}
}

func TestInstrTimeExact(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "tx", test25MHz())
	// 25 MHz, CPI 1: one instruction = 40 ns.
	if got := e.InstrTime(1); got != 40 {
		t.Fatalf("InstrTime(1) = %v, want 40", int64(got))
	}
	if got := e.InstrTime(50); got != 2000 {
		t.Fatalf("InstrTime(50) = %v, want 2000", int64(got))
	}
	if got := e.InstrTime(0); got != 0 {
		t.Fatalf("InstrTime(0) = %v, want 0", int64(got))
	}
}

func TestInstrTimeRoundsUp(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "tx", Config{ClockHz: 30_000_000, CPIMilli: 1000})
	// 1 instr at 30 MHz = 33.33 ns -> 34.
	if got := e.InstrTime(1); got != 34 {
		t.Fatalf("InstrTime(1)@30MHz = %v, want 34", int64(got))
	}
}

func TestCPIScaling(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "tx", Config{ClockHz: 25_000_000, CPIMilli: 1500})
	// 10 instr * 1.5 CPI = 15 cycles = 600 ns.
	if got := e.InstrTime(10); got != 600 {
		t.Fatalf("InstrTime = %v, want 600", int64(got))
	}
}

func TestRoutineTimeAddsDispatch(t *testing.T) {
	k := sim.NewKernel()
	cfg := test25MHz()
	cfg.DispatchInstr = 10
	e := New(k, "tx", cfg)
	if got := e.RoutineTime(40); got != e.InstrTime(50) {
		t.Fatalf("RoutineTime(40) = %v, want %v", got, e.InstrTime(50))
	}
}

func TestRunSerializesRoutines(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "rx", test25MHz())
	var done []sim.Time
	e.Run("a", 25, func() { done = append(done, k.Now()) }) // 1000 ns
	e.Run("b", 25, func() { done = append(done, k.Now()) })
	k.Run()
	if len(done) != 2 || done[0] != 1000 || done[1] != 2000 {
		t.Fatalf("completions %v, want [1000 2000]", done)
	}
}

func TestRoutineStats(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "rx", test25MHz())
	e.Run("reasm", 30, nil)
	e.Run("reasm", 30, nil)
	e.Run("eop", 50, nil)
	k.Run()
	rs := e.Routines()
	if len(rs) != 2 {
		t.Fatalf("%d routines, want 2", len(rs))
	}
	// Sorted by name: eop, reasm.
	if rs[0].Name != "eop" || rs[0].Calls != 1 || rs[0].Instr != 50 {
		t.Fatalf("eop stat %+v", rs[0])
	}
	if rs[1].Name != "reasm" || rs[1].Calls != 2 || rs[1].Instr != 60 {
		t.Fatalf("reasm stat %+v", rs[1])
	}
	if rs[1].Time != 2*e.InstrTime(30) {
		t.Fatalf("reasm time %v", rs[1].Time)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "tx", test25MHz())
	e.Run("x", 25, nil) // 1000 ns busy
	k.Run()
	k.RunUntil(2000)
	u := e.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v, want ~0.5", u)
	}
}

// The paper's headline numbers: a 25 MHz engine running ~50-instruction
// per-cell firmware fits comfortably inside the 155 Mb/s cell time but NOT
// inside the 622 Mb/s cell time.
func TestHeadroomPaperShape(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "rx", DefaultConfig())
	perCell := 45 // representative receive per-cell instruction count
	h155 := e.HeadroomAt(perCell, units.CellTime(units.STS3cPayload))
	h622 := e.HeadroomAt(perCell, units.CellTime(units.STS12cPayload))
	if h155 <= 1.0 {
		t.Fatalf("headroom at 155 Mb/s = %v, want > 1 (engine keeps up)", h155)
	}
	if h622 >= 1.0 {
		t.Fatalf("headroom at 622 Mb/s = %v, want < 1 (engine is the bottleneck)", h622)
	}
}

func TestHeadroomScalesWithClock(t *testing.T) {
	k := sim.NewKernel()
	slow := New(k, "a", Config{ClockHz: 25_000_000, CPIMilli: 1000})
	fast := New(k, "b", Config{ClockHz: 66_000_000, CPIMilli: 1000})
	ct := units.CellTime(units.STS12cPayload)
	if fast.HeadroomAt(45, ct) <= slow.HeadroomAt(45, ct) {
		t.Fatal("faster clock did not increase headroom")
	}
}

func TestNegativeInstrPanics(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "tx", test25MHz())
	defer func() {
		if recover() == nil {
			t.Fatal("negative instr did not panic")
		}
	}()
	e.InstrTime(-1)
}

func TestZeroClockPanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("zero clock did not panic")
		}
	}()
	New(k, "x", Config{})
}

func TestDefaultCPIApplied(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, "x", Config{ClockHz: 25_000_000})
	if e.Config().CPIMilli != 1000 {
		t.Fatalf("default CPI = %d, want 1000", e.Config().CPIMilli)
	}
}
