package oam

import (
	"errors"

	"repro/internal/atm"
	"repro/internal/crc"
)

// F5 fault-management alarms (ITU-T I.610): a node that detects a defect on
// a connection's upstream (loss of signal, loss of frame) inserts AIS —
// Alarm Indication Signal — cells downstream on every affected VC, so the
// far endpoint learns its receive path is dead without waiting for
// higher-layer timeouts. That endpoint answers with RDI — Remote Defect
// Indication — back toward the source, closing the loop: the transmitting
// side learns the far end cannot hear it even though its own receive
// direction is fine.
//
// Both ride the same 48-byte fault-management payload as loopback, with
// function 0x0 (AIS) or 0x1 (RDI), an optional defect type and defect
// location, 0x6a fill, and the trailing CRC-10.

// ErrNotAlarm marks a fault-management payload that is neither AIS nor RDI.
var ErrNotAlarm = errors.New("oam: not an AIS/RDI alarm cell")

// Alarm is a decoded F5 AIS or RDI payload.
type Alarm struct {
	// Func is FuncAIS or FuncRDI.
	Func uint8
	// DefectType classifies the triggering defect (0 = unspecified, per
	// I.610 the value is optional).
	DefectType uint8
	// Location names the node that detected the defect (all-ones when
	// unspecified).
	Location [16]byte
}

// Encode writes the alarm into a 48-byte cell payload:
//
//	byte 0:      OAM type (high nibble) | function (low nibble)
//	byte 1:      defect type
//	bytes 2-17:  defect location ID
//	bytes 18-45: unused (0x6a fill per I.610)
//	bytes 46-47: 6 reserved bits + CRC-10
func (a *Alarm) Encode(payload *[atm.PayloadSize]byte) {
	payload[0] = TypeFaultMgmt<<4 | a.Func&0x0f
	payload[1] = a.DefectType
	copy(payload[2:18], a.Location[:])
	for i := 18; i < 46; i++ {
		payload[i] = 0x6a
	}
	payload[46], payload[47] = 0, 0
	crc.CRC10Fill(payload[:])
}

// Decode parses an AIS/RDI payload.
func (a *Alarm) Decode(payload *[atm.PayloadSize]byte) error {
	if !crc.CRC10Check(payload[:]) {
		return ErrBadCRC
	}
	fn := payload[0] & 0x0f
	if payload[0]>>4 != TypeFaultMgmt || (fn != FuncAIS && fn != FuncRDI) {
		return ErrNotAlarm
	}
	a.Func = fn
	a.DefectType = payload[1]
	copy(a.Location[:], payload[2:18])
	return nil
}

// Classify is the cheap dispatch peek the receive firmware runs on every
// management cell: it verifies the CRC-10 and returns the OAM type and
// function nibbles. ok is false when the payload is damaged.
func Classify(payload *[atm.PayloadSize]byte) (typ, fn uint8, ok bool) {
	if !crc.CRC10Check(payload[:]) {
		return 0, 0, false
	}
	return payload[0] >> 4, payload[0] & 0x0f, true
}

// alarmCell builds one F5 end-to-end OAM cell carrying an alarm on vc.
func alarmCell(vc atm.VC, fn uint8, location [16]byte) *atm.Cell {
	c := &atm.Cell{Header: atm.Header{
		Format: atm.UNI, VPI: vc.VPI, VCI: vc.VCI, PT: atm.PTOAMEndToEnd,
	}}
	a := Alarm{Func: fn, Location: location}
	a.Encode(&c.Payload)
	return c
}

// NewAIS builds an AIS cell for vc, stamped with the detecting node's
// location ID.
func NewAIS(vc atm.VC, location [16]byte) *atm.Cell {
	return alarmCell(vc, FuncAIS, location)
}

// NewRDI builds an RDI cell for vc, stamped with the reporting endpoint's
// location ID.
func NewRDI(vc atm.VC, location [16]byte) *atm.Cell {
	return alarmCell(vc, FuncRDI, location)
}

// LocationID packs a node name into a 16-byte location field (truncated or
// zero-padded).
func LocationID(name string) (id [16]byte) {
	copy(id[:], name)
	return id
}
