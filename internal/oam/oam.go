// Package oam implements the F5 (VC-level) operations-and-maintenance cells
// the interface must handle off the fast path: ITU-T I.610 loopback, the
// connectivity-check of the ATM world. A loopback cell carries a loopback
// indication bit, a correlation tag, and location IDs in a 48-byte payload
// protected by CRC-10; the target flips the indication bit and sends the
// cell back.
//
// The receive firmware diverts PT=OAM cells to this slow path (counted in
// RxStats.OAMCells); the nic integration answers loopbacks in firmware, as
// the board's engines did, without host involvement.
package oam

import (
	"encoding/binary"
	"errors"

	"repro/internal/atm"
	"repro/internal/crc"
)

// Cell type / function type identifiers (I.610).
const (
	// TypeFaultMgmt is the OAM type nibble for fault management.
	TypeFaultMgmt = 0x1
	// FuncLoopback is the function nibble for loopback.
	FuncLoopback = 0x8
	// FuncAIS and FuncRDI are the fault-management alarm signals (see
	// fault.go: generated at a failure's downstream neighbour and echoed
	// back by the far endpoint).
	FuncAIS = 0x0
	FuncRDI = 0x1
)

// Loopback is a decoded F5 loopback payload.
type Loopback struct {
	// Indication is true for a request ("loop me back"), false for a
	// response.
	Indication bool
	// Correlation lets the originator match responses to requests.
	Correlation uint32
	// LocationID names the loopback point (all-ones = endpoint).
	LocationID [16]byte
	// SourceID names the originator.
	SourceID [16]byte
}

// Errors.
var (
	ErrNotOAM    = errors.New("oam: cell is not an OAM cell")
	ErrBadCRC    = errors.New("oam: CRC-10 mismatch")
	ErrNotLoop   = errors.New("oam: not a fault-management loopback cell")
	ErrShortCell = errors.New("oam: payload shorter than a cell body")
)

// endpointID is the all-ones location ID meaning "the connection endpoint".
func endpointID() (id [16]byte) {
	for i := range id {
		id[i] = 0xff
	}
	return id
}

// EndpointLocation is the all-ones location ID.
var EndpointLocation = endpointID()

// Encode writes the loopback into a 48-byte cell payload:
//
//	byte 0:     OAM type (high nibble) | function (low nibble)
//	byte 1:     loopback indication (bit 0)
//	bytes 2-5:  correlation tag (big-endian)
//	bytes 6-21: location ID
//	bytes 22-37: source ID
//	bytes 38-45: unused (0x6a fill per I.610)
//	bytes 46-47: 6 reserved bits + CRC-10
func (l *Loopback) Encode(payload *[atm.PayloadSize]byte) {
	payload[0] = TypeFaultMgmt<<4 | FuncLoopback
	if l.Indication {
		payload[1] = 0x01
	} else {
		payload[1] = 0x00
	}
	binary.BigEndian.PutUint32(payload[2:6], l.Correlation)
	copy(payload[6:22], l.LocationID[:])
	copy(payload[22:38], l.SourceID[:])
	for i := 38; i < 46; i++ {
		payload[i] = 0x6a
	}
	payload[46], payload[47] = 0, 0
	crc.CRC10Fill(payload[:])
}

// Decode parses an OAM loopback payload.
func (l *Loopback) Decode(payload *[atm.PayloadSize]byte) error {
	if !crc.CRC10Check(payload[:]) {
		return ErrBadCRC
	}
	if payload[0]>>4 != TypeFaultMgmt || payload[0]&0x0f != FuncLoopback {
		return ErrNotLoop
	}
	l.Indication = payload[1]&0x01 != 0
	l.Correlation = binary.BigEndian.Uint32(payload[2:6])
	copy(l.LocationID[:], payload[6:22])
	copy(l.SourceID[:], payload[22:38])
	return nil
}

// NewRequest builds a loopback request cell for vc with the given
// correlation tag, targeted at the connection endpoint.
func NewRequest(vc atm.VC, correlation uint32, source [16]byte) *atm.Cell {
	c := &atm.Cell{Header: atm.Header{
		Format: atm.UNI, VPI: vc.VPI, VCI: vc.VCI, PT: atm.PTOAMEndToEnd,
	}}
	lb := Loopback{
		Indication:  true,
		Correlation: correlation,
		LocationID:  EndpointLocation,
		SourceID:    source,
	}
	lb.Encode(&c.Payload)
	return c
}

// Respond turns a request cell into its response in place: indication
// cleared, CRC refreshed. It returns an error if the cell is not a valid
// loopback request addressed to this endpoint (or to everyone).
func Respond(c *atm.Cell) error {
	if c.Header.PT.User() {
		return ErrNotOAM
	}
	var lb Loopback
	if err := lb.Decode(&c.Payload); err != nil {
		return err
	}
	if !lb.Indication {
		return ErrNotLoop // already a response; don't loop forever
	}
	lb.Indication = false
	lb.Encode(&c.Payload)
	return nil
}
