package oam

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/atm"
	"repro/internal/crc"
)

func TestLoopbackRoundTrip(t *testing.T) {
	var src [16]byte
	copy(src[:], "station-a")
	lb := Loopback{
		Indication:  true,
		Correlation: 0xdeadbeef,
		LocationID:  EndpointLocation,
		SourceID:    src,
	}
	var p [atm.PayloadSize]byte
	lb.Encode(&p)
	var got Loopback
	if err := got.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if got != lb {
		t.Fatalf("round trip: %+v != %+v", got, lb)
	}
}

func TestLoopbackCRCProtects(t *testing.T) {
	lb := Loopback{Indication: true, Correlation: 7}
	var p [atm.PayloadSize]byte
	lb.Encode(&p)
	if !crc.CRC10Check(p[:]) {
		t.Fatal("encoded loopback fails CRC-10")
	}
	p[10] ^= 0x04
	var got Loopback
	if err := got.Decode(&p); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestDecodeRejectsNonLoopback(t *testing.T) {
	var p [atm.PayloadSize]byte
	p[0] = TypeFaultMgmt<<4 | FuncAIS
	crc.CRC10Fill(p[:])
	var got Loopback
	if err := got.Decode(&p); !errors.Is(err, ErrNotLoop) {
		t.Fatalf("err = %v, want ErrNotLoop", err)
	}
}

func TestNewRequestWellFormed(t *testing.T) {
	var src [16]byte
	src[0] = 0xaa
	c := NewRequest(atm.VC{VPI: 1, VCI: 42}, 99, src)
	if c.Header.PT.User() {
		t.Fatal("request carries user PT")
	}
	if c.Header.VCI != 42 || c.Header.VPI != 1 {
		t.Fatalf("header VC %v", c.Header.VC())
	}
	var lb Loopback
	if err := lb.Decode(&c.Payload); err != nil {
		t.Fatal(err)
	}
	if !lb.Indication || lb.Correlation != 99 || lb.SourceID != src {
		t.Fatalf("decoded %+v", lb)
	}
	if lb.LocationID != EndpointLocation {
		t.Fatal("request not addressed to endpoint")
	}
}

func TestRespondFlipsIndication(t *testing.T) {
	c := NewRequest(atm.VC{VCI: 5}, 123, [16]byte{})
	if err := Respond(c); err != nil {
		t.Fatal(err)
	}
	var lb Loopback
	if err := lb.Decode(&c.Payload); err != nil {
		t.Fatalf("response fails decode: %v", err)
	}
	if lb.Indication {
		t.Fatal("indication not cleared")
	}
	if lb.Correlation != 123 {
		t.Fatal("correlation lost")
	}
	// Responding to a response must refuse (no loops).
	if err := Respond(c); !errors.Is(err, ErrNotLoop) {
		t.Fatalf("double respond err = %v", err)
	}
}

func TestRespondRejectsUserCells(t *testing.T) {
	c := &atm.Cell{Header: atm.Header{PT: atm.PTUser0}}
	if err := Respond(c); !errors.Is(err, ErrNotOAM) {
		t.Fatalf("err = %v, want ErrNotOAM", err)
	}
}

// Property: encode∘decode is the identity for arbitrary loopback fields.
func TestPropertyLoopbackRoundTrip(t *testing.T) {
	f := func(ind bool, corr uint32, loc, src [16]byte) bool {
		lb := Loopback{Indication: ind, Correlation: corr, LocationID: loc, SourceID: src}
		var p [atm.PayloadSize]byte
		lb.Encode(&p)
		var got Loopback
		return got.Decode(&p) == nil && got == lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
