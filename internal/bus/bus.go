// Package bus models the workstation I/O bus the interface sits on — a
// TURBOchannel-class synchronous 32-bit bus.  Everything the adapter moves
// to or from host memory crosses this bus, and bus occupancy is a first-order
// term in the paper's analysis: DMA bursts amortize arbitration and address
// cycles over many words, while programmed I/O pays full price per word,
// which is why the architecture DMAs packets and never makes the host touch
// cells.
package bus

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config sets the bus timing. The defaults model TURBOchannel on a
// DECstation 5000/200: 25 MHz, 32-bit words (peak 100 MB/s), a handful of
// cycles of arbitration/address setup per transaction, and expensive
// single-word programmed I/O.
type Config struct {
	// WordTime is the time to move one 32-bit word in a burst.
	WordTime sim.Duration
	// BurstSetup is arbitration + address time paid once per DMA burst.
	BurstSetup sim.Duration
	// MaxBurst is the largest single burst in bytes; longer transfers
	// split into multiple bursts (re-paying setup), letting other
	// requesters in between. 0 means unlimited.
	MaxBurst int
	// PIOTime is the full cost of one programmed-I/O word: the host CPU
	// drives an entire bus transaction for 4 bytes.
	PIOTime sim.Duration
}

// DefaultConfig returns TURBOchannel-class timing: 40 ns/word, 200 ns burst
// setup, 2 KiB max burst, 600 ns per PIO word.
func DefaultConfig() Config {
	return Config{
		WordTime:   40,
		BurstSetup: 200,
		MaxBurst:   2048,
		PIOTime:    600,
	}
}

// Bus is a shared, FIFO-arbitrated word bus.
type Bus struct {
	k    *sim.Kernel
	cfg  Config
	res  *sim.Resource
	devs []*Device
	reg  *metrics.Registry
}

// New creates a bus on kernel k.
func New(k *sim.Kernel, cfg Config) *Bus {
	if cfg.WordTime <= 0 {
		panic("bus: non-positive word time")
	}
	if cfg.PIOTime <= 0 {
		cfg.PIOTime = cfg.WordTime
	}
	return &Bus{k: k, cfg: cfg, res: sim.NewResource(k, "bus")}
}

// Config returns the bus timing in force.
func (b *Bus) Config() Config { return b.cfg }

// SetMetrics attaches a telemetry registry: every device (already attached
// or attached later) gets "bus.<device>.dma_bytes", ".dma_bursts" and
// ".pio_words" counters plus a "bus.<device>.grant_wait" histogram of the
// arbitration delay each DMA suffered beyond its own transfer time — the
// bus-contention term in the paper's delay budget.
func (b *Bus) SetMetrics(reg *metrics.Registry) {
	b.reg = reg
	for _, d := range b.devs {
		d.instrument(reg)
	}
}

// Utilization returns the fraction of simulated time the bus was occupied.
func (b *Bus) Utilization() float64 { return b.res.Utilization() }

// QueueLen returns the number of transactions waiting for the bus.
func (b *Bus) QueueLen() int { return b.res.QueueLen() }

// Device is a bus requester (the NIC's DMA engine, the host CPU). Each
// device gets its own occupancy accounting.
type Device struct {
	bus  *Bus
	name string

	dmaBytes  uint64
	dmaBursts uint64
	pioWords  uint64
	busTime   sim.Duration

	// Registry instruments (nil without SetMetrics; nil-safe).
	mDMABytes  *metrics.Counter
	mDMABursts *metrics.Counter
	mPIOWords  *metrics.Counter
	hGrantWait *metrics.Histogram
}

// Attach registers a named requester.
func (b *Bus) Attach(name string) *Device {
	d := &Device{bus: b, name: name}
	d.instrument(b.reg)
	b.devs = append(b.devs, d)
	return d
}

func (d *Device) instrument(reg *metrics.Registry) {
	d.mDMABytes = reg.Counter("bus." + d.name + ".dma_bytes")
	d.mDMABursts = reg.Counter("bus." + d.name + ".dma_bursts")
	d.mPIOWords = reg.Counter("bus." + d.name + ".pio_words")
	d.hGrantWait = reg.Histogram("bus." + d.name + ".grant_wait")
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// MaxBurst returns the bus's burst-size limit in bytes (0 = unlimited),
// for callers that chunk their own transfers.
func (d *Device) MaxBurst() int { return d.bus.cfg.MaxBurst }

// words converts a byte count to bus words, rounding up.
func words(n int) int { return (n + 3) / 4 }

// DMATime returns the bus time a transfer of n bytes will occupy, including
// per-burst setup and burst splitting — the deterministic cost the paper's
// throughput budget uses.
func (d *Device) DMATime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	cfg := d.bus.cfg
	var t sim.Duration
	for n > 0 {
		chunk := n
		if cfg.MaxBurst > 0 && chunk > cfg.MaxBurst {
			chunk = cfg.MaxBurst
		}
		t += cfg.BurstSetup + sim.Duration(words(chunk))*cfg.WordTime
		n -= chunk
	}
	return t
}

// DMA requests a DMA transfer of n bytes. done runs when the transfer
// completes (after queueing behind earlier transactions). It returns the
// predicted completion time.
//
// A transfer longer than MaxBurst is issued as consecutive bursts; because
// the underlying resource is FIFO, another device's transaction can slip in
// between bursts, which is the fairness property real buses get from
// re-arbitration.
func (d *Device) DMA(n int, done func()) sim.Time {
	if n < 0 {
		panic(fmt.Sprintf("bus: negative DMA length %d", n))
	}
	if n == 0 {
		if done != nil {
			d.bus.k.PostAfter(0, done)
		}
		return d.bus.k.Now()
	}
	cfg := d.bus.cfg
	d.dmaBytes += uint64(n)
	d.mDMABytes.Add(uint64(n))
	start := d.bus.k.Now()
	transfer := d.DMATime(n)
	var last sim.Time
	for n > 0 {
		chunk := n
		if cfg.MaxBurst > 0 && chunk > cfg.MaxBurst {
			chunk = cfg.MaxBurst
		}
		burst := cfg.BurstSetup + sim.Duration(words(chunk))*cfg.WordTime
		n -= chunk
		final := n == 0
		cb := func() {}
		if final && done != nil {
			cb = done
		}
		d.busTime += burst
		d.dmaBursts++
		d.mDMABursts.Inc()
		last = d.bus.res.Use(burst, cb)
	}
	// Grant wait: how long the transfer sat behind other requesters —
	// total completion latency minus the bus time the transfer itself
	// needed.
	d.hGrantWait.Observe(last - start - transfer)
	return last
}

// PIO performs programmed I/O of n words. done runs at completion.
func (d *Device) PIO(nwords int, done func()) sim.Time {
	if nwords < 0 {
		panic("bus: negative PIO length")
	}
	if nwords == 0 {
		if done != nil {
			d.bus.k.PostAfter(0, done)
		}
		return d.bus.k.Now()
	}
	t := sim.Duration(nwords) * d.bus.cfg.PIOTime
	d.pioWords += uint64(nwords)
	d.mPIOWords.Add(uint64(nwords))
	d.busTime += t
	return d.bus.res.Use(t, done)
}

// Stats reports per-device counters.
type Stats struct {
	DMABytes  uint64
	DMABursts uint64
	PIOWords  uint64
	BusTime   sim.Duration
}

// Stats returns the device's counters.
func (d *Device) Stats() Stats {
	return Stats{DMABytes: d.dmaBytes, DMABursts: d.dmaBursts, PIOWords: d.pioWords, BusTime: d.busTime}
}
