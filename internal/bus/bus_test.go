package bus

import (
	"testing"

	"repro/internal/sim"
)

func testCfg() Config {
	return Config{WordTime: 40, BurstSetup: 200, MaxBurst: 2048, PIOTime: 600}
}

func TestDMATimeSingleBurst(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	// 48 bytes = 12 words: 200 + 12*40 = 680 ns.
	if got := d.DMATime(48); got != 680 {
		t.Fatalf("DMATime(48) = %v, want 680", int64(got))
	}
	// Rounding: 49 bytes = 13 words.
	if got := d.DMATime(49); got != 200+13*40 {
		t.Fatalf("DMATime(49) = %v", int64(got))
	}
	if got := d.DMATime(0); got != 0 {
		t.Fatalf("DMATime(0) = %v, want 0", int64(got))
	}
}

func TestDMATimeBurstSplitting(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	// 5000 bytes: bursts of 2048+2048+904 -> setups 3*200, words
	// 512+512+226 = 1250 words * 40.
	want := sim.Duration(3*200 + 1250*40)
	if got := d.DMATime(5000); got != want {
		t.Fatalf("DMATime(5000) = %v, want %v", int64(got), int64(want))
	}
}

func TestDMACompletionTiming(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	var done sim.Time = -1
	d.DMA(48, func() { done = k.Now() })
	k.Run()
	if done != 680 {
		t.Fatalf("DMA completed at %v, want 680", int64(done))
	}
}

func TestDMASerializesAcrossDevices(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	nic := b.Attach("nic")
	host := b.Attach("host")
	var order []string
	nic.DMA(48, func() { order = append(order, "nic") })
	host.DMA(48, func() { order = append(order, "host") })
	k.Run()
	if len(order) != 2 || order[0] != "nic" || order[1] != "host" {
		t.Fatalf("order %v", order)
	}
	if k.Now() != 2*680 {
		t.Fatalf("two serialized DMAs finished at %v, want 1360", int64(k.Now()))
	}
}

func TestBurstSplittingAllowsInterleaving(t *testing.T) {
	// A long transfer split into bursts lets a later-arriving short
	// transaction in between bursts only if it arrives before the later
	// bursts are queued; since DMA queues all bursts at once, a transfer
	// requested afterwards waits. But a transfer requested between two
	// *separate* DMA calls interleaves. Verify FIFO fairness across calls.
	k := sim.NewKernel()
	b := New(k, testCfg())
	nic := b.Attach("nic")
	host := b.Attach("host")
	var order []string
	nic.DMA(2048, func() { order = append(order, "nic1") })
	host.DMA(4, func() { order = append(order, "host") })
	nic.DMA(2048, func() { order = append(order, "nic2") })
	k.Run()
	want := []string{"nic1", "host", "nic2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestPIOCost(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	host := b.Attach("host")
	var done sim.Time
	host.PIO(3, func() { done = k.Now() })
	k.Run()
	if done != 1800 {
		t.Fatalf("PIO(3) completed at %v, want 1800", int64(done))
	}
}

func TestPIOFarWorseThanDMAPerByte(t *testing.T) {
	// The architectural point: moving a 9180-byte packet by PIO costs
	// ~10x more bus time than by DMA.
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("x")
	dmaT := d.DMATime(9180)
	pioT := sim.Duration(words(9180)) * testCfg().PIOTime
	if pioT < 10*dmaT {
		t.Fatalf("PIO %v not >= 10x DMA %v", int64(pioT), int64(dmaT))
	}
}

func TestZeroLengthTransfersCompleteAsync(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	ran := 0
	d.DMA(0, func() { ran++ })
	d.PIO(0, func() { ran++ })
	if ran != 0 {
		t.Fatal("zero-length completion ran synchronously")
	}
	k.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestDeviceStats(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	d.DMA(5000, nil)
	d.PIO(2, nil)
	k.Run()
	s := d.Stats()
	if s.DMABytes != 5000 {
		t.Errorf("DMABytes = %d", s.DMABytes)
	}
	if s.DMABursts != 3 {
		t.Errorf("DMABursts = %d, want 3", s.DMABursts)
	}
	if s.PIOWords != 2 {
		t.Errorf("PIOWords = %d", s.PIOWords)
	}
	if s.BusTime != d.DMATime(5000)+2*600 {
		t.Errorf("BusTime = %v", int64(s.BusTime))
	}
}

func TestBusUtilization(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	d.DMA(48, nil) // busy 0..680
	k.Run()
	k.RunUntil(1360)
	u := b.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestNegativeDMAPanics(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	defer func() {
		if recover() == nil {
			t.Fatal("negative DMA did not panic")
		}
	}()
	d.DMA(-1, nil)
}

func TestBadConfigPanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("zero word time did not panic")
		}
	}()
	New(k, Config{})
}

func TestUnlimitedBurst(t *testing.T) {
	k := sim.NewKernel()
	cfg := testCfg()
	cfg.MaxBurst = 0
	b := New(k, cfg)
	d := b.Attach("nic")
	// One setup only.
	want := sim.Duration(200 + words(100000)*40)
	if got := d.DMATime(100000); got != want {
		t.Fatalf("DMATime = %v, want %v", int64(got), int64(want))
	}
}

func TestMaxBurstAccessor(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, testCfg())
	d := b.Attach("nic")
	if d.MaxBurst() != 2048 {
		t.Fatalf("MaxBurst = %d", d.MaxBurst())
	}
}
