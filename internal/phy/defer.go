package phy

import (
	"repro/internal/atm"
	"repro/internal/sim"
)

// CellDeferrer schedules "deliver this cell to this sink later" callbacks
// without allocating. The per-cell closure idiom
//
//	k.After(delay, func() { sink(c) })
//
// costs a closure plus an Event per cell; the deferrer instead parks the
// (cell, sink) pair in a pooled record whose bound fire method was created
// once, and schedules it through the kernel's Post free list — steady-state
// deferral is 0 allocs/op. CellLink and the sonetlink cell-recovery path
// both defer through this.
type CellDeferrer struct {
	k    *sim.Kernel
	free *cellDefer
}

type cellDefer struct {
	d    *CellDeferrer
	c    *atm.Cell
	sink func(*atm.Cell)
	fn   func() // bound fire method, created once per record
	next *cellDefer
}

// NewCellDeferrer returns a deferrer scheduling on kernel k.
func NewCellDeferrer(k *sim.Kernel) *CellDeferrer {
	return &CellDeferrer{k: k}
}

// Post schedules sink(c) to run d nanoseconds from now.
func (cd *CellDeferrer) Post(d sim.Duration, sink func(*atm.Cell), c *atm.Cell) {
	r := cd.free
	if r == nil {
		r = &cellDefer{d: cd}
		r.fn = r.fire
	} else {
		cd.free = r.next
		r.next = nil
	}
	r.c, r.sink = c, sink
	cd.k.PostAfter(d, r.fn)
}

// fire recycles the record before invoking the sink, so a sink that defers
// further cells can reuse it immediately.
func (r *cellDefer) fire() {
	c, sink := r.c, r.sink
	r.c, r.sink = nil, nil
	r.next = r.d.free
	r.d.free = r
	sink(c)
}
