package phy

import (
	"repro/internal/atm"
	"repro/internal/sim"
)

// CellDeferrer schedules "deliver this cell to this sink later" callbacks
// without allocating. The per-cell closure idiom
//
//	k.After(delay, func() { sink(c) })
//
// costs a closure plus an Event per cell; the deferrer instead parks the
// (cell, sink) pair in a pooled record whose bound fire method was created
// once, and schedules it through the kernel's Post free list — steady-state
// deferral is 0 allocs/op. CellLink and the sonetlink cell-recovery path
// both defer through this.
type CellDeferrer struct {
	k     *sim.Kernel
	free  *cellDefer
	bfree *burstDefer
}

type cellDefer struct {
	d    *CellDeferrer
	c    *atm.Cell
	sink func(*atm.Cell)
	fn   func() // bound fire method, created once per record
	next *cellDefer
}

// NewCellDeferrer returns a deferrer scheduling on kernel k.
func NewCellDeferrer(k *sim.Kernel) *CellDeferrer {
	return &CellDeferrer{k: k}
}

// Post schedules sink(c) to run d nanoseconds from now.
func (cd *CellDeferrer) Post(d sim.Duration, sink func(*atm.Cell), c *atm.Cell) {
	r := cd.free
	if r == nil {
		r = &cellDefer{d: cd}
		r.fn = r.fire
	} else {
		cd.free = r.next
		r.next = nil
	}
	r.c, r.sink = c, sink
	cd.k.PostAfter(d, r.fn)
}

// fire recycles the record before invoking the sink, so a sink that defers
// further cells can reuse it immediately.
func (r *cellDefer) fire() {
	c, sink := r.c, r.sink
	r.c, r.sink = nil, nil
	r.next = r.d.free
	r.d.free = r
	sink(c)
}

// PostBurst degrades a cell burst to per-cell deferred delivery: cell i is
// scheduled at d + i*stride. All events are scheduled up front, in wire
// order, so the kernel's (time, seq) dispatch order is identical to a serial
// producer posting the same cells one by one — the property the burst-mode
// golden tests pin. Nil slots (cells removed in flight) are skipped without
// disturbing the later cells' offsets. The burst record is recycled.
func (cd *CellDeferrer) PostBurst(d, stride sim.Duration, sink func(*atm.Cell), b *atm.CellBurst) {
	for i, c := range b.Cells {
		if c == nil {
			continue
		}
		cd.Post(d+sim.Duration(i)*stride, sink, c)
	}
	atm.PutBurst(b)
}

// burstDefer parks a whole in-flight burst, the vector counterpart of
// cellDefer: one kernel event carries the entire run.
type burstDefer struct {
	d    *CellDeferrer
	b    *atm.CellBurst
	sink func(*atm.CellBurst)
	fn   func()
	next *burstDefer
}

// PostBurstEvent schedules sink(b) to run d nanoseconds from now as a single
// kernel event — the batched transit: one event for the whole vector instead
// of one per cell.
func (cd *CellDeferrer) PostBurstEvent(d sim.Duration, sink func(*atm.CellBurst), b *atm.CellBurst) {
	r := cd.bfree
	if r == nil {
		r = &burstDefer{d: cd}
		r.fn = r.fire
	} else {
		cd.bfree = r.next
		r.next = nil
	}
	r.b, r.sink = b, sink
	cd.k.PostAfter(d, r.fn)
}

func (r *burstDefer) fire() {
	b, sink := r.b, r.sink
	r.b, r.sink = nil, nil
	r.next = r.d.bfree
	r.d.bfree = r
	sink(b)
}

// BurstSpreader adapts a per-cell consumer to the burst contract: bursts
// delivered to it are re-spread into individual DeliverCell events at the
// burst's arithmetic per-cell times, scheduled up front in wire order.
// This is the timing-preserving degradation for consumers whose behavior
// depends on when each cell arrives (a receive FIFO, an occupancy-coupled
// queue) — atm.DeliverBurstTo's immediate loop is only safe for consumers
// that are timing-independent.
type BurstSpreader struct {
	def       *CellDeferrer
	k         *sim.Kernel
	sink      atm.CellConsumer
	deliverFn func(*atm.Cell)
}

// NewBurstSpreader returns a spreader feeding sink on kernel k.
func NewBurstSpreader(k *sim.Kernel, sink atm.CellConsumer) *BurstSpreader {
	if sink == nil {
		panic("phy: nil spreader sink")
	}
	s := &BurstSpreader{def: NewCellDeferrer(k), k: k, sink: sink}
	s.deliverFn = s.deliver
	return s
}

func (s *BurstSpreader) deliver(c *atm.Cell) { s.sink.DeliverCell(c) }

// DeliverCell implements atm.CellConsumer: single cells pass straight
// through.
func (s *BurstSpreader) DeliverCell(c *atm.Cell) { s.sink.DeliverCell(c) }

// DeliverBurst implements atm.BurstConsumer by spreading the vector.
// b.Base must not be in the past.
func (s *BurstSpreader) DeliverBurst(b *atm.CellBurst) {
	d := sim.Duration(b.Base - int64(s.k.Now()))
	s.def.PostBurst(d, sim.Duration(b.Stride), s.deliverFn, b)
}
