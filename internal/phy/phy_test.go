package phy

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/sim"
)

func TestCellLinkDeliversAfterDelay(t *testing.T) {
	k := sim.NewKernel()
	var at sim.Time = -1
	l := NewCellLink(k, 5000, 1, atm.SinkFunc(func(c *atm.Cell) { at = k.Now() }))
	l.Send(&atm.Cell{})
	k.Run()
	if at != 5000 {
		t.Fatalf("delivered at %v, want 5000", int64(at))
	}
	s := l.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Lost != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCellLinkPreservesOrder(t *testing.T) {
	k := sim.NewKernel()
	var got []uint16
	l := NewCellLink(k, 100, 1, atm.SinkFunc(func(c *atm.Cell) { got = append(got, c.Header.VCI) }))
	for i := 0; i < 10; i++ {
		c := &atm.Cell{}
		c.Header.VCI = uint16(i)
		l.Send(c)
	}
	k.Run()
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("order %v", got)
		}
	}
}

func TestCellLinkLossRate(t *testing.T) {
	k := sim.NewKernel()
	delivered := 0
	l := NewCellLink(k, 0, 42, atm.SinkFunc(func(c *atm.Cell) { delivered++ }))
	l.LossProb = 0.1
	n := 100000
	for i := 0; i < n; i++ {
		l.Send(&atm.Cell{})
	}
	k.Run()
	rate := 1 - float64(delivered)/float64(n)
	if rate < 0.09 || rate > 0.11 {
		t.Fatalf("loss rate %v, want ~0.1", rate)
	}
	if l.Stats().Lost != uint64(n-delivered) {
		t.Fatal("loss accounting mismatch")
	}
}

func TestCellLinkCorruptionFlipsOneBit(t *testing.T) {
	k := sim.NewKernel()
	var got *atm.Cell
	l := NewCellLink(k, 0, 7, atm.SinkFunc(func(c *atm.Cell) { got = c }))
	l.CorruptProb = 1.0
	c := &atm.Cell{}
	orig := c.Payload
	l.Send(c)
	k.Run()
	diff := 0
	for i := range got.Payload {
		x := got.Payload[i] ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want 1", diff)
	}
}

func TestFrameLinkCopiesBuffer(t *testing.T) {
	k := sim.NewKernel()
	var got []byte
	l := NewFrameLink(k, 10, 1, func(f []byte) { got = f })
	buf := []byte{1, 2, 3}
	l.Send(buf)
	buf[0] = 99 // mutate after send
	k.Run()
	if got[0] != 1 {
		t.Fatal("frame link aliased caller's buffer")
	}
}

func TestFrameLinkBitError(t *testing.T) {
	k := sim.NewKernel()
	var got []byte
	l := NewFrameLink(k, 0, 3, func(f []byte) { got = f })
	l.BitErrProb = 1.0
	orig := make([]byte, 64)
	l.Send(orig)
	k.Run()
	diff := 0
	for i := range got {
		x := got[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want 1", diff)
	}
}

func TestPropDelay(t *testing.T) {
	// 1000 km of fiber = 5 ms.
	if got := PropDelay(1000); got != 5*sim.Millisecond {
		t.Fatalf("PropDelay(1000) = %v", got)
	}
	if got := PropDelay(0.2); got != 1000 {
		t.Fatalf("PropDelay(0.2km) = %v ns, want 1000", int64(got))
	}
}

func TestNilSinkPanics(t *testing.T) {
	k := sim.NewKernel()
	for name, fn := range map[string]func(){
		"cell":  func() { NewCellLink(k, 0, 1, nil) },
		"frame": func() { NewFrameLink(k, 0, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: nil sink did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// The cell delivery path — CellLink.Send through the deferrer and the
// kernel's Post free list to the sink — must not allocate at steady state.
func TestCellLinkSendZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	delivered := 0
	l := NewCellLink(k, 5000, 1, atm.SinkFunc(func(c *atm.Cell) { delivered++ }))
	c := &atm.Cell{}
	// Warm the deferrer and kernel free lists.
	l.Send(c)
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		l.Send(c)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("cell delivery allocates %v per op, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// sigRecorder captures carrier transitions with their observation times.
type sigRecorder struct {
	k      *sim.Kernel
	ups    []bool
	atTime []sim.Time
}

func (s *sigRecorder) SignalChange(up bool) {
	s.ups = append(s.ups, up)
	s.atTime = append(s.atTime, s.k.Now())
}

func TestCellLinkFailRestore(t *testing.T) {
	k := sim.NewKernel()
	delivered := 0
	l := NewCellLink(k, 5000, 1, atm.SinkFunc(func(c *atm.Cell) { delivered++ }))
	rec := &sigRecorder{k: k}
	l.SetSignalSink(rec)

	l.Send(&atm.Cell{}) // in flight before the cut: still arrives
	l.Fail()
	if !l.Down() {
		t.Fatal("Down() = false after Fail")
	}
	l.Fail() // idempotent
	for i := 0; i < 3; i++ {
		l.Send(&atm.Cell{}) // into the dead fiber
	}
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d cells, want only the pre-cut one", delivered)
	}
	s := l.Stats()
	if s.DroppedDown != 3 || s.Lost != 3 {
		t.Fatalf("stats %+v, want 3 dropped-down", s)
	}

	l.Restore()
	if l.Down() {
		t.Fatal("Down() = true after Restore")
	}
	l.Send(&atm.Cell{})
	k.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d cells after repair, want 2", delivered)
	}
	// Each carrier transition is observed one propagation delay later.
	if len(rec.ups) != 2 || rec.ups[0] || !rec.ups[1] {
		t.Fatalf("signal transitions %v, want [down up]", rec.ups)
	}
	for i, at := range rec.atTime {
		if (at-5000)%5000 != 0 && at < 5000 {
			t.Fatalf("transition %d at %v, want >= one delay", i, at)
		}
	}
}

// TestCellLinkSignalFallsBackToSink: with no explicit signal sink, carrier
// transitions reach the cell sink when it implements SignalConsumer.
type sinkWithSignal struct {
	sigRecorder
	cells int
}

func (s *sinkWithSignal) DeliverCell(*atm.Cell) { s.cells++ }

func TestCellLinkSignalFallsBackToSink(t *testing.T) {
	k := sim.NewKernel()
	sink := &sinkWithSignal{sigRecorder: sigRecorder{k: k}}
	l := NewCellLink(k, 0, 1, sink)
	l.Fail()
	l.Restore()
	k.Run()
	if len(sink.ups) != 2 || sink.ups[0] || !sink.ups[1] {
		t.Fatalf("sink saw transitions %v, want [down up]", sink.ups)
	}
}

func TestFrameLinkFailRestore(t *testing.T) {
	k := sim.NewKernel()
	frames := 0
	l := NewFrameLink(k, 2500, 1, func(frame []byte) { frames++ })
	rec := &sigRecorder{k: k}
	l.SetSignalSink(rec)

	buf := make([]byte, 64)
	l.Send(buf)
	l.Fail()
	l.Send(buf)
	l.Send(buf)
	k.Run()
	if frames != 1 {
		t.Fatalf("delivered %d frames, want only the pre-cut one", frames)
	}
	if s := l.Stats(); s.DroppedDown != 2 {
		t.Fatalf("stats %+v, want 2 dropped-down", s)
	}
	l.Restore()
	l.Send(buf)
	k.Run()
	if frames != 2 {
		t.Fatalf("delivered %d frames after repair, want 2", frames)
	}
	if len(rec.ups) != 2 || rec.ups[0] || !rec.ups[1] {
		t.Fatalf("signal transitions %v, want [down up]", rec.ups)
	}
}
