package phy

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/sim"
)

// arrival is one observed cell delivery: which cell, and the wire time the
// consumer should account it at.
type arrival struct {
	vci uint16
	at  int64
}

// serialLinkRun sends n cells one per slot through a fresh link and records
// per-cell delivery times — the golden reference for the burst paths.
func serialLinkRun(n int, stride, delay sim.Duration, lossProb float64, seed uint64) []arrival {
	k := sim.NewKernel()
	var got []arrival
	l := NewCellLink(k, delay, seed, atm.SinkFunc(func(c *atm.Cell) {
		got = append(got, arrival{c.Header.VCI, int64(k.Now())})
	}))
	l.LossProb = lossProb
	for i := 0; i < n; i++ {
		i := i
		k.At(sim.Time(i)*stride, func() {
			c := &atm.Cell{}
			c.Header.VCI = uint16(i + 1)
			l.Send(c)
		})
	}
	k.Run()
	return got
}

func newBurst(n int, base, stride int64) *atm.CellBurst {
	b := atm.GetBurst(n)
	for i := 0; i < n; i++ {
		c := &atm.Cell{}
		c.Header.VCI = uint16(i + 1)
		b.Cells = append(b.Cells, c)
	}
	b.Base, b.Stride = base, stride
	return b
}

// burstAwareSink accepts bursts natively and expands the arithmetic
// per-cell arrival times, as a real burst consumer would.
type burstAwareSink struct{ got *[]arrival }

func (s *burstAwareSink) DeliverCell(c *atm.Cell) {
	*s.got = append(*s.got, arrival{c.Header.VCI, -1})
}
func (s *burstAwareSink) DeliverBurst(b *atm.CellBurst) {
	for i, c := range b.Cells {
		if c == nil {
			continue
		}
		*s.got = append(*s.got, arrival{c.Header.VCI, b.At(i)})
	}
	atm.PutBurst(b)
}

func TestCellLinkBurstMatchesSerial(t *testing.T) {
	const n, stride, delay = 7, 170, 5000
	want := serialLinkRun(n, stride, delay, 0, 1)

	k := sim.NewKernel()
	var got []arrival
	l := NewCellLink(k, delay, 1, &burstAwareSink{got: &got})
	k.At(0, func() { l.DeliverBurst(newBurst(n, 0, stride)) })
	k.Run()

	if len(got) != len(want) {
		t.Fatalf("got %d arrivals, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if got, want := l.Stats(), (Stats{Sent: n, Delivered: n}); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	if d := k.Dispatched(); d >= n {
		t.Fatalf("clean burst to a burst sink used %d events, want < %d (one transit)", d, n)
	}
}

func TestCellLinkBurstDegradesToPerCellSink(t *testing.T) {
	const n, stride, delay = 5, 170, 2500
	want := serialLinkRun(n, stride, delay, 0, 1)

	k := sim.NewKernel()
	var got []arrival
	l := NewCellLink(k, delay, 1, atm.SinkFunc(func(c *atm.Cell) {
		got = append(got, arrival{c.Header.VCI, int64(k.Now())})
	}))
	k.At(0, func() { l.DeliverBurst(newBurst(n, 0, stride)) })
	k.Run()

	if len(got) != len(want) {
		t.Fatalf("got %d arrivals, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCellLinkBurstLossMatchesSerialRng(t *testing.T) {
	// With the same seed, the burst path must lose exactly the cells the
	// serial path loses (the rng draws are per cell in wire order in both),
	// and the survivors must arrive per-cell at the serial times.
	const n, stride, delay = 20, 170, 1000
	const seed, p = 7, 0.3
	want := serialLinkRun(n, stride, delay, p, seed)
	if len(want) == n || len(want) == 0 {
		t.Fatalf("seed gives %d/%d survivors; pick one that actually loses some", len(want), n)
	}

	k := sim.NewKernel()
	var got []arrival
	l := NewCellLink(k, delay, seed, atm.SinkFunc(func(c *atm.Cell) {
		got = append(got, arrival{c.Header.VCI, int64(k.Now())})
	}))
	l.LossProb = p
	k.At(0, func() { l.DeliverBurst(newBurst(n, 0, stride)) })
	k.Run()

	if len(got) != len(want) {
		t.Fatalf("got %d survivors, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBurstSpreaderMatchesArithmeticTimes(t *testing.T) {
	k := sim.NewKernel()
	var got []arrival
	s := NewBurstSpreader(k, atm.SinkFunc(func(c *atm.Cell) {
		got = append(got, arrival{c.Header.VCI, int64(k.Now())})
	}))
	k.At(100, func() { s.DeliverBurst(newBurst(4, 100, 170)) })
	k.Run()
	for i, a := range got {
		if want := (arrival{uint16(i + 1), int64(100 + 170*i)}); a != want {
			t.Fatalf("arrival %d: %+v, want %+v", i, a, want)
		}
	}
	if len(got) != 4 {
		t.Fatalf("%d arrivals, want 4", len(got))
	}
}

func TestPostBurstSkipsNilSlotsKeepingOffsets(t *testing.T) {
	k := sim.NewKernel()
	d := NewCellDeferrer(k)
	b := newBurst(3, 0, 100)
	b.Cells[1] = nil
	var got []arrival
	k.At(0, func() {
		d.PostBurst(50, 100, func(c *atm.Cell) {
			got = append(got, arrival{c.Header.VCI, int64(k.Now())})
		}, b)
	})
	k.Run()
	want := []arrival{{1, 50}, {3, 250}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("arrivals %+v, want %+v", got, want)
	}
}

func TestFrameLinkPoolRecyclesCopies(t *testing.T) {
	k := sim.NewKernel()
	frames := 0
	l := NewFrameLink(k, 10, 1, func(f []byte) { frames++ })
	pool := bufpool.New()
	l.SetBufPool(pool)
	frame := make([]byte, 2430)
	// Prime the pool with the first flight, then the steady state must hit
	// the free list for every copy.
	l.Send(frame)
	k.Run()
	for i := 0; i < 50; i++ {
		l.Send(frame)
		k.Run()
	}
	if frames != 51 {
		t.Fatalf("%d frames delivered, want 51", frames)
	}
	hits, misses, puts := pool.Stats()
	if misses != 1 || hits != 50 || puts != 51 {
		t.Fatalf("pool hits=%d misses=%d puts=%d, want 50/1/51", hits, misses, puts)
	}
}
