// Package phy models the fiber between two interfaces, at two granularities:
//
//   - CellLink carries decoded cells with propagation delay and per-cell
//     loss/corruption injection — the fast path the long-running experiments
//     use (a cell is the unit the network loses, so cell granularity loses
//     no fidelity for loss studies);
//   - FrameLink carries serialized SONET frames with propagation delay and
//     bit-error injection, for end-to-end runs through the real framer,
//     scrambler and delineation machinery.
package phy

import (
	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Stats counts link-level events.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Lost      uint64
	Corrupted uint64
	// DroppedDown counts units (cells or frames) offered while the link
	// was failed; they are also included in Lost.
	DroppedDown uint64
}

// SignalConsumer is implemented by receivers that track the line signal:
// a failed link raises loss-of-signal at its delivery end (after the
// propagation delay), a restored link clears it. NIC interfaces and switch
// ports implement it to drive their fault-management state.
type SignalConsumer interface {
	// SignalChange reports the line signal at the receiver: false on loss
	// of signal (the upstream link failed), true when it returns.
	SignalChange(up bool)
}

// CellLink is a unidirectional cell pipe.
type CellLink struct {
	k *sim.Kernel
	// Delay is the propagation delay.
	Delay sim.Duration
	// LossProb is the probability an individual cell vanishes (switch
	// buffer overflow somewhere along the path).
	LossProb float64
	// CorruptProb is the probability a delivered cell has one payload
	// byte damaged (will fail the AAL checks downstream).
	CorruptProb float64

	rng   *sim.Rand
	sink  atm.CellConsumer
	stats Stats
	down  bool
	sig   SignalConsumer // explicit signal sink; nil = auto-detect on sink

	def            *CellDeferrer
	deliverFn      func(*atm.Cell)      // bound deliver method, created once
	deliverBurstFn func(*atm.CellBurst) // bound burst deliver method

	// Boundary mode (sharded runs): when the two ends of the link live in
	// different partitions, deliveries ride a sim.Mailbox instead of a local
	// deferred event, and the fiber's propagation delay is the partition
	// lookahead. The send side (stats, loss/corruption draws, Enter/Drop
	// trace events) runs unchanged in the source partition, so the rng
	// sequence matches the serial projection draw for draw.
	mb             *sim.Mailbox
	remoteFn       func(any) // bound remote-arrival method
	remoteSignalFn func(any)
	exitSp         *trace.StageSpan // arrival span on the DEST partition's recorder

	// Flight-recorder span for the fiber transit (nil unless attached):
	// Enter as the cell leaves the transmitter, Exit on delivery, Drop for
	// cells the fiber loses.
	sp *trace.StageSpan
}

// NewCellLink builds a link delivering cells to sink after delay.
func NewCellLink(k *sim.Kernel, delay sim.Duration, seed uint64, sink atm.CellConsumer) *CellLink {
	if sink == nil {
		panic("phy: nil sink")
	}
	l := &CellLink{k: k, Delay: delay, rng: sim.NewRand(seed), sink: sink}
	l.def = NewCellDeferrer(k)
	l.deliverFn = l.deliver
	l.deliverBurstFn = l.deliverBurst
	return l
}

// deliver hands a cell to the current sink. Indirecting through this method
// (rather than binding the sink at Send time) keeps AttachSink effective for
// cells already in flight.
func (l *CellLink) deliver(c *atm.Cell) {
	l.sp.Exit(c.Header.VC())
	l.sink.DeliverCell(c)
}

// SetRecorder installs the flight-recorder span for this fiber direction
// under the given node name ("<name>/wire"). A nil recorder detaches.
func (l *CellLink) SetRecorder(rec *trace.Recorder, name string) {
	l.sp = rec.Stage(name, "wire")
}

// SetBoundary switches the link into cross-partition mode: deliveries and
// signal transitions are posted to mb (arriving in the destination
// partition's kernel after the propagation delay, which the mailbox has
// declared as lookahead) instead of a local deferred event. Arrival-side
// trace events are recorded on rec — the DESTINATION partition's recorder —
// under the same stage name SetRecorder used on the source side, so the
// merged trace pairs up exactly like a serial run's. rec may be nil.
func (l *CellLink) SetBoundary(mb *sim.Mailbox, rec *trace.Recorder, name string) {
	if l.Delay <= 0 {
		panic("phy: boundary link needs positive propagation delay (lookahead)")
	}
	l.mb = mb
	l.exitSp = rec.Stage(name, "wire")
	l.remoteFn = l.remoteDeliver
	l.remoteSignalFn = l.remoteSignal
}

// remoteDeliver runs in the destination partition's kernel at the cell's
// arrival time: the boundary counterpart of deliver.
func (l *CellLink) remoteDeliver(arg any) {
	c := arg.(*atm.Cell)
	l.exitSp.Exit(c.Header.VC())
	l.sink.DeliverCell(c)
}

// Pre-boxed signal values keep the rare Fail/Restore boundary path
// allocation-free too.
var sigUp, sigDown any = true, false

// remoteSignal runs in the destination partition's kernel when a Fail or
// Restore propagates across the boundary.
func (l *CellLink) remoteSignal(arg any) { l.signal(arg.(bool)) }

// Stats returns cumulative counters.
func (l *CellLink) Stats() Stats { return l.stats }

// AttachSink replaces the delivery end — the hook tap points (trace.Timed)
// use to wrap the receiving end after the link is built. It implements
// atm.CellProducer, making the link a full CellConduit.
func (l *CellLink) AttachSink(sink atm.CellConsumer) {
	if sink == nil {
		panic("phy: nil sink")
	}
	l.sink = sink
}

// Sink returns the currently attached delivery end, so taps can wrap it.
func (l *CellLink) Sink() atm.CellConsumer { return l.sink }

// SetSignalSink pins the receiver notified of Fail/Restore signal
// transitions. Without it, the link notifies the cell sink when that sink
// implements SignalConsumer — which breaks once a trace tap wraps the sink,
// so builders that install taps should pin the signal sink explicitly.
func (l *CellLink) SetSignalSink(sc SignalConsumer) { l.sig = sc }

// Down reports whether the link is currently failed.
func (l *CellLink) Down() bool { return l.down }

// Fail cuts the fiber: every cell offered until Restore is lost, and the
// delivery end sees loss of signal one propagation delay later. Cells
// already in flight still arrive (they left before the cut). Idempotent.
func (l *CellLink) Fail() {
	if l.down {
		return
	}
	l.down = true
	if l.mb != nil {
		l.mb.Post(l.k.Now()+l.Delay, l.k.Now(), l.remoteSignalFn, sigDown)
		return
	}
	l.k.After(l.Delay, func() { l.signal(false) })
}

// Restore repairs the fiber; the delivery end sees the signal return one
// propagation delay later. Idempotent.
func (l *CellLink) Restore() {
	if !l.down {
		return
	}
	l.down = false
	if l.mb != nil {
		l.mb.Post(l.k.Now()+l.Delay, l.k.Now(), l.remoteSignalFn, sigUp)
		return
	}
	l.k.After(l.Delay, func() { l.signal(true) })
}

func (l *CellLink) signal(up bool) {
	if l.sig != nil {
		l.sig.SignalChange(up)
		return
	}
	if sc, ok := l.sink.(SignalConsumer); ok {
		sc.SignalChange(up)
	}
}

// DeliverCell implements atm.CellConsumer: cells delivered into the link
// enter the fiber (it is the link's ingress). Equivalent to Send.
func (l *CellLink) DeliverCell(c *atm.Cell) { l.Send(c) }

// Send transmits one cell. The cell is owned by the link until delivery;
// callers must not reuse it (use a pool and recycle in the sink).
func (l *CellLink) Send(c *atm.Cell) {
	l.stats.Sent++
	if l.down {
		l.stats.Lost++
		l.stats.DroppedDown++
		l.sp.Drop(c.Header.VC(), metrics.DropLink)
		return
	}
	if l.LossProb > 0 && l.rng.Bernoulli(l.LossProb) {
		l.stats.Lost++
		l.sp.Drop(c.Header.VC(), metrics.DropLink)
		return
	}
	if l.CorruptProb > 0 && l.rng.Bernoulli(l.CorruptProb) {
		l.stats.Corrupted++
		i := l.rng.Intn(len(c.Payload))
		c.Payload[i] ^= 1 << uint(l.rng.Intn(8))
	}
	l.stats.Delivered++
	l.sp.Enter(c.Header.VC())
	if l.mb != nil {
		l.mb.Post(l.k.Now()+l.Delay, l.k.Now(), l.remoteFn, c)
		return
	}
	l.def.Post(l.Delay, l.deliverFn, c)
}

// DeliverBurst implements atm.BurstConsumer: a whole cell vector enters the
// fiber in one call. The producer must emit the burst in an event at time
// b.Base (cell 0's wire slot). Loss and corruption are drawn per cell in
// wire order — the identical rng sequence the serial path draws — and each
// dropped cell is attributed at its own slot time. A clean burst bound for a
// burst-aware sink crosses the fiber as ONE kernel event; a lossy burst is no
// longer a uniform-stride run, so it (like any burst bound for a per-cell
// sink) degrades to per-cell deferred delivery at the arithmetic arrival
// times, event-for-event identical to serial.
//
// Known divergence from serial: the link's up/down state and the per-cell
// rng are sampled when the burst is offered (time Base), so a Fail or
// Restore landing inside the burst's wire window affects the whole burst
// rather than its tail — a window of at most one frame time.
func (l *CellLink) DeliverBurst(b *atm.CellBurst) {
	lossy := false
	for i, c := range b.Cells {
		l.stats.Sent++
		drop := l.down
		if drop {
			l.stats.DroppedDown++
		} else if l.LossProb > 0 && l.rng.Bernoulli(l.LossProb) {
			drop = true
		}
		if drop {
			l.stats.Lost++
			l.sp.DropAt(sim.Time(b.At(i)), c.Header.VC(), metrics.DropLink)
			b.Cells[i] = nil
			lossy = true
			continue
		}
		if l.CorruptProb > 0 && l.rng.Bernoulli(l.CorruptProb) {
			l.stats.Corrupted++
			j := l.rng.Intn(len(c.Payload))
			c.Payload[j] ^= 1 << uint(l.rng.Intn(8))
		}
		l.stats.Delivered++
	}
	l.sp.EnterBurst(b)
	if l.mb != nil {
		// Boundary crossing degrades to per-cell mailbox posts at the
		// arithmetic arrival times: the dest partition sees the identical
		// per-cell event sequence the serial degraded path produces. (No
		// current topology cuts a burst-carrying link — framed links are
		// never cut — so this path trades batching for simplicity.)
		for i, c := range b.Cells {
			if c == nil {
				continue
			}
			l.mb.Post(sim.Time(b.At(i))+l.Delay, l.k.Now(), l.remoteFn, c)
		}
		atm.PutBurst(b)
		return
	}
	if _, ok := l.sink.(atm.BurstConsumer); ok && !lossy {
		l.def.PostBurstEvent(l.Delay, l.deliverBurstFn, b)
		return
	}
	l.def.PostBurst(l.Delay, sim.Duration(b.Stride), l.deliverFn, b)
}

// deliverBurst fires one propagation delay after a clean burst entered the
// fiber; the arrival base is kernel-now. If the sink was re-attached to a
// per-cell consumer while the burst was in flight, the remainder spreads to
// individual deliveries at the arithmetic arrival times.
func (l *CellLink) deliverBurst(b *atm.CellBurst) {
	b.Base = int64(l.k.Now())
	if bc, ok := l.sink.(atm.BurstConsumer); ok {
		l.sp.ExitBurst(b)
		bc.DeliverBurst(b)
		return
	}
	l.def.PostBurst(0, sim.Duration(b.Stride), l.deliverFn, b)
}

// FrameLink is a unidirectional SONET-frame pipe.
type FrameLink struct {
	k *sim.Kernel
	// Delay is the propagation delay.
	Delay sim.Duration
	// BitErrProb is the probability that each frame suffers one random
	// bit error in transit.
	BitErrProb float64

	rng   *sim.Rand
	sink  func(frame []byte)
	stats Stats
	down  bool
	sig   SignalConsumer

	pool  *bufpool.Pool // optional: recycles in-flight frame copies
	ffree *frameDefer
}

// frameDefer parks one in-flight frame copy; pooled like cellDefer so a
// steady frame stream costs no per-frame closure.
type frameDefer struct {
	l    *FrameLink
	buf  []byte
	fn   func()
	next *frameDefer
}

func (r *frameDefer) fire() {
	l, buf := r.l, r.buf
	r.buf = nil
	r.next = l.ffree
	l.ffree = r
	l.sink(buf)
	// With a pool installed the frame copy is recycled as soon as the sink
	// returns — the sink must not retain it (the deframer copies; see
	// SetBufPool). Without a pool, Put is a no-op and the buffer is the
	// sink's to keep, preserving the original contract.
	l.pool.Put(buf)
}

// NewFrameLink builds a frame pipe delivering to sink after delay.
func NewFrameLink(k *sim.Kernel, delay sim.Duration, seed uint64, sink func([]byte)) *FrameLink {
	if sink == nil {
		panic("phy: nil sink")
	}
	return &FrameLink{k: k, Delay: delay, rng: sim.NewRand(seed), sink: sink}
}

// Stats returns cumulative counters.
func (l *FrameLink) Stats() Stats { return l.stats }

// SetBufPool installs a buffer pool for the per-frame wire copies. With a
// pool, each frame copy is drawn from it and recycled the moment the sink
// returns — so the sink must consume the frame during the call (the deframer
// copies into its own scratch). Without a pool, every Send allocates a fresh
// copy that the sink owns outright.
func (l *FrameLink) SetBufPool(p *bufpool.Pool) { l.pool = p }

// SetSignalSink pins the receiver notified of Fail/Restore transitions
// (the frame sink is a plain func, so there is nothing to auto-detect).
func (l *FrameLink) SetSignalSink(sc SignalConsumer) { l.sig = sc }

// Down reports whether the link is currently failed.
func (l *FrameLink) Down() bool { return l.down }

// Fail cuts the fiber: frames offered until Restore are lost and the
// delivery end sees loss of signal one propagation delay later. Idempotent.
func (l *FrameLink) Fail() {
	if l.down {
		return
	}
	l.down = true
	l.k.After(l.Delay, func() { l.signal(false) })
}

// Restore repairs the fiber; the signal returns one propagation delay
// later. Idempotent.
func (l *FrameLink) Restore() {
	if !l.down {
		return
	}
	l.down = false
	l.k.After(l.Delay, func() { l.signal(true) })
}

func (l *FrameLink) signal(up bool) {
	if l.sig != nil {
		l.sig.SignalChange(up)
	}
}

// Send transmits one serialized frame. The frame bytes are copied, so the
// caller may reuse its buffer immediately.
func (l *FrameLink) Send(frame []byte) {
	l.stats.Sent++
	if l.down {
		l.stats.Lost++
		l.stats.DroppedDown++
		return
	}
	buf := l.pool.Get(len(frame))
	copy(buf, frame)
	if l.BitErrProb > 0 && l.rng.Bernoulli(l.BitErrProb) {
		l.stats.Corrupted++
		i := l.rng.Intn(len(buf))
		buf[i] ^= 1 << uint(l.rng.Intn(8))
	}
	l.stats.Delivered++
	r := l.ffree
	if r == nil {
		r = &frameDefer{l: l}
		r.fn = r.fire
	} else {
		l.ffree = r.next
		r.next = nil
	}
	r.buf = buf
	l.k.PostAfter(l.Delay, r.fn)
}

// PropDelay returns the propagation delay for a fiber of the given length in
// kilometres (5 µs/km, the standard figure for silica).
func PropDelay(km float64) sim.Duration {
	return sim.Duration(km * 5000)
}
