// Package phy models the fiber between two interfaces, at two granularities:
//
//   - CellLink carries decoded cells with propagation delay and per-cell
//     loss/corruption injection — the fast path the long-running experiments
//     use (a cell is the unit the network loses, so cell granularity loses
//     no fidelity for loss studies);
//   - FrameLink carries serialized SONET frames with propagation delay and
//     bit-error injection, for end-to-end runs through the real framer,
//     scrambler and delineation machinery.
package phy

import (
	"repro/internal/atm"
	"repro/internal/sim"
)

// Stats counts link-level events.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Lost      uint64
	Corrupted uint64
}

// CellLink is a unidirectional cell pipe.
type CellLink struct {
	k *sim.Kernel
	// Delay is the propagation delay.
	Delay sim.Duration
	// LossProb is the probability an individual cell vanishes (switch
	// buffer overflow somewhere along the path).
	LossProb float64
	// CorruptProb is the probability a delivered cell has one payload
	// byte damaged (will fail the AAL checks downstream).
	CorruptProb float64

	rng   *sim.Rand
	sink  atm.CellConsumer
	stats Stats

	def       *CellDeferrer
	deliverFn func(*atm.Cell) // bound deliver method, created once
}

// NewCellLink builds a link delivering cells to sink after delay.
func NewCellLink(k *sim.Kernel, delay sim.Duration, seed uint64, sink atm.CellConsumer) *CellLink {
	if sink == nil {
		panic("phy: nil sink")
	}
	l := &CellLink{k: k, Delay: delay, rng: sim.NewRand(seed), sink: sink}
	l.def = NewCellDeferrer(k)
	l.deliverFn = l.deliver
	return l
}

// deliver hands a cell to the current sink. Indirecting through this method
// (rather than binding the sink at Send time) keeps AttachSink effective for
// cells already in flight.
func (l *CellLink) deliver(c *atm.Cell) { l.sink.DeliverCell(c) }

// Stats returns cumulative counters.
func (l *CellLink) Stats() Stats { return l.stats }

// AttachSink replaces the delivery end — the hook tap points (trace.Timed)
// use to wrap the receiving end after the link is built. It implements
// atm.CellProducer, making the link a full CellConduit.
func (l *CellLink) AttachSink(sink atm.CellConsumer) {
	if sink == nil {
		panic("phy: nil sink")
	}
	l.sink = sink
}

// Sink returns the currently attached delivery end, so taps can wrap it.
func (l *CellLink) Sink() atm.CellConsumer { return l.sink }

// DeliverCell implements atm.CellConsumer: cells delivered into the link
// enter the fiber (it is the link's ingress). Equivalent to Send.
func (l *CellLink) DeliverCell(c *atm.Cell) { l.Send(c) }

// Send transmits one cell. The cell is owned by the link until delivery;
// callers must not reuse it (use a pool and recycle in the sink).
func (l *CellLink) Send(c *atm.Cell) {
	l.stats.Sent++
	if l.LossProb > 0 && l.rng.Bernoulli(l.LossProb) {
		l.stats.Lost++
		return
	}
	if l.CorruptProb > 0 && l.rng.Bernoulli(l.CorruptProb) {
		l.stats.Corrupted++
		i := l.rng.Intn(len(c.Payload))
		c.Payload[i] ^= 1 << uint(l.rng.Intn(8))
	}
	l.stats.Delivered++
	l.def.Post(l.Delay, l.deliverFn, c)
}

// FrameLink is a unidirectional SONET-frame pipe.
type FrameLink struct {
	k *sim.Kernel
	// Delay is the propagation delay.
	Delay sim.Duration
	// BitErrProb is the probability that each frame suffers one random
	// bit error in transit.
	BitErrProb float64

	rng   *sim.Rand
	sink  func(frame []byte)
	stats Stats
}

// NewFrameLink builds a frame pipe delivering to sink after delay.
func NewFrameLink(k *sim.Kernel, delay sim.Duration, seed uint64, sink func([]byte)) *FrameLink {
	if sink == nil {
		panic("phy: nil sink")
	}
	return &FrameLink{k: k, Delay: delay, rng: sim.NewRand(seed), sink: sink}
}

// Stats returns cumulative counters.
func (l *FrameLink) Stats() Stats { return l.stats }

// Send transmits one serialized frame. The frame bytes are copied, so the
// caller may reuse its buffer immediately.
func (l *FrameLink) Send(frame []byte) {
	l.stats.Sent++
	buf := make([]byte, len(frame))
	copy(buf, frame)
	if l.BitErrProb > 0 && l.rng.Bernoulli(l.BitErrProb) {
		l.stats.Corrupted++
		i := l.rng.Intn(len(buf))
		buf[i] ^= 1 << uint(l.rng.Intn(8))
	}
	l.stats.Delivered++
	l.k.After(l.Delay, func() { l.sink(buf) })
}

// PropDelay returns the propagation delay for a fiber of the given length in
// kilometres (5 µs/km, the standard figure for silica).
func PropDelay(km float64) sim.Duration {
	return sim.Duration(km * 5000)
}
