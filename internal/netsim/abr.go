package netsim

import (
	"repro/internal/atm"
	"repro/internal/sim"
	"repro/internal/tm"
)

// This file is the switch half of the ABR closed loop: EFCI marking is in
// switch.go's enqueue (SetThresholds arms it); here lives ERICA — the
// Explicit Rate Indication for Congestion Avoidance algorithm of
// Jain/Kalyanaraman/Goyal/Fahmy — which turns per-output-port load
// measurements into the ER field of backward RM cells.
//
// Per averaging interval the port measures its ABR input rate, the set of
// active ABR VCs, and the input rate of higher-priority (CBR/VBR) traffic.
// At each interval boundary it computes
//
//	ABRCapacity = TargetUtil × LinkRate − HigherPriorityRate
//	z           = ABRInputRate / ABRCapacity     (the overload factor)
//	FairShare   = ABRCapacity / NumActiveVCs
//
// and every backward RM cell passing the port is then stamped with
//
//	ER = min(ERin, ABRCapacity, max(FairShare, CCR/z))
//
// The max(FairShare, CCR/z) term is what makes ERICA max-min fair and
// fast: an underloaded port (z < 1) invites every VC above its fair share
// to keep the spare capacity, while an overloaded port (z > 1) pushes each
// VC toward CCR/z so the aggregate lands exactly on ABRCapacity — and no
// VC is ever pushed below the fair share.
type ERICAConfig struct {
	// TargetUtil is the utilization ERICA steers the ABR aggregate toward;
	// the (1 − TargetUtil) headroom is what drains the queue after a
	// transient. Default 0.9.
	TargetUtil float64
	// Interval is the measurement averaging interval. Shorter tracks
	// transients faster but measures noisier rates; it should cover at
	// least a few dozen cell times of the port. Default 500 µs.
	Interval sim.Duration
}

// normalize fills defaults.
func (c *ERICAConfig) normalize() {
	if c.TargetUtil <= 0 || c.TargetUtil > 1 {
		c.TargetUtil = 0.9
	}
	if c.Interval <= 0 {
		c.Interval = 500 * sim.Microsecond
	}
}

// ericaPort is the per-output-port ERICA state.
type ericaPort struct {
	cfg  ERICAConfig
	port *swPort // for the current drain rate (SetPortRate may change it)

	intervalStart sim.Time
	abrIn         int // ABR cells offered this interval (RM cells included)
	otherIn       int // higher-priority cells offered this interval
	active        map[atm.VC]struct{}

	// ccr is the last CCR each VC declared in a forward RM cell —
	// persistent across intervals (TM 4.0 lets the switch remember it).
	ccr map[atm.VC]float64

	// Results of the last completed interval.
	have      bool
	abrCap    float64 // cells/s available to ABR
	fairShare float64
	overload  float64 // z
}

// EnableERICA arms explicit-rate computation on an output port: the port
// starts measuring, and every backward RM cell arriving on the same port's
// input side (i.e. travelling the reverse direction of this output's
// fiber) gets its ER field reduced to ERICA's allocation.
func (s *Switch) EnableERICA(port int, cfg ERICAConfig) {
	cfg.normalize()
	p := s.port(port)
	p.erica = &ericaPort{
		cfg:           cfg,
		port:          p,
		intervalStart: s.k.Now(),
		active:        make(map[atm.VC]struct{}),
		ccr:           make(map[atm.VC]float64),
	}
}

// linkRate returns the port's drain rate in cells/s.
func (e *ericaPort) linkRate() float64 {
	return 1e9 / float64(e.port.cellTime)
}

// targetRate returns the utilization-scaled capacity in cells/s.
func (e *ericaPort) targetRate() float64 {
	return e.cfg.TargetUtil * e.linkRate()
}

// rollover closes the averaging interval if now has passed its end,
// computing the capacity, overload factor and fair share the next
// interval's stampings use.
func (e *ericaPort) rollover(now sim.Time) {
	elapsed := now - e.intervalStart
	if elapsed < e.cfg.Interval {
		return
	}
	sec := float64(elapsed) / 1e9
	abrRate := float64(e.abrIn) / sec
	otherRate := float64(e.otherIn) / sec

	avail := e.targetRate() - otherRate
	if avail < 1 {
		avail = 1 // a saturated port still advertises a token rate
	}
	n := len(e.active)
	if n < 1 {
		n = 1
	}
	e.abrCap = avail
	e.fairShare = avail / float64(n)
	e.overload = abrRate / avail
	e.have = true

	e.intervalStart = now
	e.abrIn, e.otherIn = 0, 0
	clear(e.active)
}

// observe accounts one cell offered to the output port (called for every
// arrival, before any drop decision — input rate, not carried rate, is
// what the overload factor measures). Forward RM cells additionally
// refresh the VC's declared CCR.
func (e *ericaPort) observe(now sim.Time, class tm.ServiceClass, c *atm.Cell) {
	e.rollover(now)
	switch class {
	case tm.ABR:
		e.abrIn++
		e.active[c.Header.VC()] = struct{}{}
	case tm.UBR:
		// Best-effort scavenges below ABR; it neither consumes ABR
		// capacity nor counts as higher-priority load.
	default: // CBR, rt-VBR
		e.otherIn++
	}
	if c.Header.PT == atm.PTResourceMgmt {
		var rm atm.RM
		if rm.Decode(&c.Payload) == nil && !rm.DIR {
			e.ccr[c.Header.VC()] = rm.CCR
		}
	}
}

// explicitRate returns the ER to stamp into a backward RM cell of vc that
// arrived carrying erIn. Before the first completed interval the port has
// no measurement and only caps at the utilization target.
func (e *ericaPort) explicitRate(now sim.Time, vc atm.VC, erIn float64) float64 {
	e.rollover(now)
	if !e.have {
		if t := e.targetRate(); erIn > t {
			return t
		}
		return erIn
	}
	er := e.fairShare
	if e.overload > 0 {
		if vcShare := e.ccr[vc] / e.overload; vcShare > er {
			er = vcShare
		}
	} else {
		er = e.abrCap // no measured load: the whole capacity is on offer
	}
	if er > e.abrCap {
		er = e.abrCap
	}
	if er > erIn {
		er = erIn
	}
	return er
}

// rmReceive runs the switch's backward-RM behaviour for an RM cell
// arriving on an input port: if that port's output side runs ERICA, the
// cell is travelling the reverse direction of the congested fiber, and its
// ER field is reduced to the port's allocation. The duplex route symmetry
// (core installs the reverse route on the same port pair with the same
// VCs) is what makes "arrival port" the right key: a backward RM cell
// arrives exactly where its connection's forward cells depart.
func (s *Switch) rmReceive(port int, c *atm.Cell) {
	e := s.ports[port].erica
	if e == nil {
		return
	}
	var rm atm.RM
	if rm.Decode(&c.Payload) != nil || !rm.DIR {
		return
	}
	er := e.explicitRate(s.k.Now(), c.Header.VC(), rm.ER)
	if er < rm.ER {
		rm.ER = er
		rm.Encode(&c.Payload)
		s.stats.ERStamped++
		s.mER.Inc()
	}
}
