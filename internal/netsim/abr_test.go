package netsim

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

func TestSwitchEFCIMarking(t *testing.T) {
	// Eight back-to-back cells into a port with EFCI threshold 4: the
	// first four commit below the threshold and leave clean, the rest are
	// marked — including the EOM cell, whose AAU bit must survive (PT
	// 0b001 → 0b011, still end-of-frame).
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 16)
	sw.SetThresholds(1, 0, 0, 4)
	var got []*atm.Cell
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { got = append(got, c) }))
	sw.SetRoute(0, vc(7), 1, vc(7), RouteOptions{Class: tm.UBR})
	in := sw.Port(0)
	for i := 0; i < 7; i++ {
		in.DeliverCell(mkCell(7, atm.PTUser0, false))
	}
	in.DeliverCell(mkCell(7, atm.PTUserEnd, false))
	k.Run()
	if len(got) != 8 {
		t.Fatalf("delivered %d cells, want 8", len(got))
	}
	for i, c := range got {
		want := i >= 4
		if c.Header.PT.Congestion() != want {
			t.Fatalf("cell %d: congestion=%v, want %v (PT=%03b)", i, !want, want, c.Header.PT)
		}
	}
	last := got[7].Header.PT
	if last != atm.PTUserCongestedEnd || !last.EndOfFrame() {
		t.Fatalf("EOM cell marked to PT=%03b; want %03b with AAU intact", last, atm.PTUserCongestedEnd)
	}
	if n := sw.Stats().EFCIMarked; n != 4 {
		t.Fatalf("EFCIMarked=%d, want 4", n)
	}
}

func TestSwitchEFCIPreservedThroughRewrite(t *testing.T) {
	// Cells that arrive already EFCI-marked keep their PT through the
	// header rewrite, and non-user cells are never marked no matter how
	// deep the queue is.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 16)
	sw.SetThresholds(1, 0, 0, 1) // mark everything after the first commit
	var got []*atm.Cell
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { got = append(got, c) }))
	sw.SetRoute(0, vc(10), 1, vc(20), RouteOptions{Class: tm.UBR})
	in := sw.Port(0)
	in.DeliverCell(mkCell(10, atm.PTUserCongested, false))
	in.DeliverCell(mkCell(10, atm.PTUserCongestedEnd, false))
	oam := mkCell(10, atm.PTOAMSegment, false)
	in.DeliverCell(oam)
	k.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d cells, want 3", len(got))
	}
	wantPT := []atm.PT{atm.PTUserCongested, atm.PTUserCongestedEnd, atm.PTOAMSegment}
	for i, c := range got {
		if c.Header.VC() != vc(20) {
			t.Fatalf("cell %d: VC not translated: %v", i, c.Header.VC())
		}
		if c.Header.PT != wantPT[i] {
			t.Fatalf("cell %d: PT=%03b, want %03b", i, c.Header.PT, wantPT[i])
		}
	}
}

// deliverRM builds an RM cell and delivers it to the port.
func deliverRM(in *SwitchPort, vci uint16, rm atm.RM) *atm.Cell {
	c := &atm.Cell{Header: atm.Header{Format: atm.UNI, VCI: vci, PT: atm.PTResourceMgmt}}
	rm.Encode(&c.Payload)
	in.DeliverCell(c)
	return c
}

func TestERICAStampsBackwardRM(t *testing.T) {
	// Forward ABR data crosses port 1 while ERICA measures; a backward RM
	// cell arriving on port 1 (the reverse direction of the same fiber)
	// gets its ER reduced to the port's allocation. Forward RM cells pass
	// untouched.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 64)
	sw.EnableERICA(1, ERICAConfig{TargetUtil: 0.9, Interval: 100 * sim.Microsecond})
	var fwd, rev []*atm.Cell
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { fwd = append(fwd, c) }))
	sw.Port(0).AttachSink(atm.SinkFunc(func(c *atm.Cell) { rev = append(rev, c) }))
	sw.SetRoute(0, vc(10), 1, vc(20), RouteOptions{Class: tm.ABR})
	sw.SetRoute(1, vc(20), 0, vc(10), RouteOptions{Class: tm.ABR})
	in0, in1 := sw.Port(0), sw.Port(1)

	const pcr = 1_412_830.0 // a 622 Mb/s source's peak rate
	// A backward RM cell before any measurement: capped at the target
	// utilization of the drain rate, nothing more.
	target := 0.9 * units.CellRate(units.STS3cPayload)
	deliverRM(in1, 20, atm.RM{DIR: true, ER: pcr, CCR: pcr})

	// ~100 µs of forward ABR data at ~100k cells/s, the source declaring
	// CCR=100k in its forward RM cells.
	ct := 10 * sim.Microsecond
	for i := 0; i < 30; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(ct), func() {
			if i%31 == 30 {
				deliverRM(in0, 10, atm.RM{ER: pcr, CCR: 100_000})
				return
			}
			in0.DeliverCell(mkCell(10, atm.PTUser0, false))
		})
	}
	k.At(sim.Time(5*sim.Microsecond), func() {
		deliverRM(in0, 10, atm.RM{ER: pcr, CCR: 100_000})
	})
	// After the first interval has rolled over, a backward RM cell must be
	// stamped with a fair, capacity-bounded rate.
	k.At(sim.Time(150*sim.Microsecond), func() {
		deliverRM(in1, 20, atm.RM{DIR: true, CI: true, ER: pcr, CCR: 100_000})
	})
	k.Run()

	if len(rev) != 2 {
		t.Fatalf("reverse side saw %d cells, want 2 backward RM cells", len(rev))
	}
	var rm0, rm1 atm.RM
	if err := rm0.Decode(&rev[0].Payload); err != nil {
		t.Fatalf("pre-measurement BRM corrupted: %v", err)
	}
	if rm0.ER > target*1.001 || rm0.ER < target*0.999 {
		t.Fatalf("pre-measurement ER=%.0f, want the %.0f utilization cap", rm0.ER, target)
	}
	if err := rm1.Decode(&rev[1].Payload); err != nil {
		t.Fatalf("stamped BRM corrupted: %v", err)
	}
	// The 16-bit ATM rate format quantizes to 1 part in 512, so allow the
	// cap to round up by that much.
	if rm1.ER >= target*(1+1.0/512) || rm1.ER <= 0 {
		t.Fatalf("stamped ER=%.0f, want inside (0, ~%.0f)", rm1.ER, target)
	}
	if !rm1.CI || !rm1.DIR {
		t.Fatal("stamping must not touch DIR/CI")
	}
	if sw.Stats().ERStamped != 2 {
		t.Fatalf("ERStamped=%d, want 2", sw.Stats().ERStamped)
	}
	// Forward RM cells crossed unmodified.
	for _, c := range fwd {
		if c.Header.PT != atm.PTResourceMgmt {
			continue
		}
		var rm atm.RM
		if err := rm.Decode(&c.Payload); err != nil {
			t.Fatalf("forward RM corrupted: %v", err)
		}
		if rm.DIR || rm.ER != atm.DecodeRate(atm.EncodeRate(pcr)) {
			t.Fatalf("forward RM modified: %+v", rm)
		}
	}
}

func TestABRSourceRampsToPCRWithoutCongestion(t *testing.T) {
	// Station pair, no switch, no congestion: the destination turns every
	// forward RM cell around with CI clear, so the source's additive
	// increase walks ACR from ICR up to PCR. The forward RM cadence on the
	// wire is one per Nrm cells.
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	var frm, data int
	fwdLink := phy.NewCellLink(k, 1000, 1, b.Iface)
	revLink := phy.NewCellLink(k, 1000, 2, a.Iface)
	a.Iface.AttachSink(atm.SinkFunc(func(c *atm.Cell) {
		if c.Header.PT == atm.PTResourceMgmt {
			frm++
		} else if c.Header.PT.User() {
			data++
		}
		fwdLink.DeliverCell(c)
	}))
	brm := 0
	b.Iface.AttachSink(atm.SinkFunc(func(c *atm.Cell) {
		if c.Header.PT == atm.PTResourceMgmt {
			brm++
		}
		revLink.DeliverCell(c)
	}))
	a.Iface.OpenVC(vc(30))
	b.Iface.OpenVC(vc(30))
	p := tm.ABRParams{PCR: 100_000, ICR: 10_000, Nrm: 32}
	if err := a.Iface.SetABR(vc(30), p); err != nil {
		t.Fatal(err)
	}
	deadline := sim.Time(20 * sim.Millisecond)
	NewSource(k, a, vc(30), 9180, deadline).Start(4)
	k.RunUntil(deadline)
	k.Run()

	acr, ok := a.Iface.ACR(vc(30))
	if !ok {
		t.Fatal("ACR lost")
	}
	// The ER field rides the 16-bit ATM rate format, so "up to PCR" means
	// up to PCR as that format represents it.
	if want := atm.DecodeRate(atm.EncodeRate(p.PCR)); acr != want {
		t.Fatalf("uncongested ACR=%.0f, want ramp to PCR=%.0f", acr, want)
	}
	if frm == 0 || brm == 0 {
		t.Fatalf("no RM circulation: frm=%d brm=%d", frm, brm)
	}
	if brm > frm {
		t.Fatalf("more backward (%d) than forward (%d) RM cells", brm, frm)
	}
	// One FRM per Nrm-1 data cells, give or take the deferred sends when
	// the TX FIFO is full.
	if lo, hi := data/(2*p.Nrm), data/(p.Nrm-1)+1; frm < lo || frm > hi {
		t.Fatalf("FRM cadence off: %d FRM for %d data cells (want within [%d, %d])", frm, data, lo, hi)
	}
}

func TestSwitchEPDTracksCongestedEOF(t *testing.T) {
	// Frame delineation at the switch keys on the AAU bit, which EFCI
	// marking upstream must not disturb: an EOM cell arriving as PT 0b011
	// (congested + end) still closes the frame, so EPD refuses exactly the
	// next frame and forwards the first one whole.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 10)
	sw.SetThresholds(1, 0, 4, 0)
	var got []*atm.Cell
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { got = append(got, c) }))
	sw.SetRoute(0, vc(7), 1, vc(7), RouteOptions{Class: tm.UBR})
	in := sw.Port(0)
	frame := func(n int) {
		for i := 0; i < n-1; i++ {
			in.DeliverCell(mkCell(7, atm.PTUserCongested, false))
		}
		in.DeliverCell(mkCell(7, atm.PTUserCongestedEnd, false))
	}
	frame(6) // admitted: occupancy 0 at frame start
	frame(4) // refused whole: occupancy 6 >= 4 at its first cell
	k.Run()
	st := sw.Stats()
	if st.EPDFrames != 1 || st.EPDCells != 4 {
		t.Fatalf("epd stats with congested EOFs %+v", st)
	}
	if len(got) != 6 {
		t.Fatalf("delivered %d cells, want 6 (frame A only)", len(got))
	}
	if got[5].Header.PT != atm.PTUserCongestedEnd || !got[5].Header.PT.EndOfFrame() {
		t.Fatalf("frame A's congested EOF mangled: PT=%03b", got[5].Header.PT)
	}
}
