package netsim

import (
	"fmt"
	"sort"

	"repro/internal/atm"
	"repro/internal/fifo"
	"repro/internal/metrics"
	"repro/internal/oam"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/units"
)

// Switch is a small output-queued ATM switch: cells arriving on any input
// port are routed by (input port, VC) to one or more output ports,
// optionally with VC translation, and drain onto the output fiber at the
// port's cell rate.
//
// Output buffering is a shared per-port budget of queueDepth cells split
// across one queue per service class (tm.ServiceClass); the drain is strict
// priority — CBR first, then rt-VBR, then ABR, UBR last. Congestion controls, all off
// by default so the zero configuration behaves like the original blind
// tail-drop switch:
//
//   - SetPolicer installs a GCRA policer (UPC) on an input-port VC; cells
//     are policed before routing and either pass, get their CLP demoted,
//     or are discarded at the ingress;
//   - SetThresholds arms a CLP threshold (arriving discard-eligible cells
//     are dropped once the port occupancy reaches it), an EPD threshold
//     (a new AAL5 frame arriving above it is refused whole — Early Packet
//     Discard — and a frame that loses a cell mid-flight has its remainder
//     dropped, Partial Packet Discard, with the final EOF cell forwarded
//     to preserve frame delineation for the reassembler), and an EFCI
//     threshold (user cells committed to the queue at or above it leave
//     with the EFCI congestion bit set — the binary half of the ABR
//     feedback loop);
//   - EnableERICA (abr.go) arms explicit-rate feedback on an output port:
//     backward RM cells get their ER field reduced to the port's measured
//     max-min allocation.
type Switch struct {
	k        *sim.Kernel
	name     string
	ports    []*swPort
	conduits []*SwitchPort
	table    map[swKey]*swRoute
	policers map[swKey]*swPolicer

	// SwitchingDelay models the fabric's fixed per-cell latency.
	SwitchingDelay sim.Duration

	// AISPeriod arms F5 fault management: while any input port has lost
	// its signal, the switch inserts one AIS cell per period downstream on
	// every route fed by that port, so endpoints learn of the failure in
	// about one period instead of by higher-layer timeout. Zero (default)
	// disables generation.
	AISPeriod sim.Duration

	portDown   []bool
	aisTicking bool
	aisTickFn  func()

	// Free list of pooled fabric-transit records, so per-cell switching
	// costs no closure or event allocation (see swDefer).
	freeDefer *swDefer

	stats SwitchStats

	// Registry instruments (nil until Instrument is called; nil-safe).
	reg     *metrics.Registry
	mTag    *metrics.Counter
	mPolDrp *metrics.Counter
	mEPD    *metrics.Counter
	mPPD    *metrics.Counter
	mCLP    *metrics.Counter
	mNoRt   *metrics.Counter
	mBcast  *metrics.Counter
	mAIS    *metrics.Counter
	mEFCI   *metrics.Counter
	mER     *metrics.Counter
}

// SwitchStats counts switch events.
type SwitchStats struct {
	Routed     uint64
	Dropped    uint64 // output-queue overflows (tail drop)
	NoRoute    uint64
	Broadcasts uint64

	PolicedTagged    uint64 // cells forwarded with CLP demoted by UPC
	PolicedDiscarded uint64 // cells discarded by UPC
	CLPDropped       uint64 // CLP=1 cells dropped at the CLP threshold
	EPDFrames        uint64 // frames refused whole at the EPD threshold
	EPDCells         uint64 // cells belonging to EPD-refused frames
	PPDFrames        uint64 // frames truncated after a mid-frame loss
	PPDCells         uint64 // tail cells dropped by PPD
	AISCells         uint64 // AIS cells generated for failed input ports
	EFCIMarked       uint64 // user cells marked EFCI at the queue threshold
	ERStamped        uint64 // backward RM cells whose ER ERICA reduced
}

type swKey struct {
	inPort int
	vc     atm.VC
}

type swDest struct {
	outPort int
	outVC   atm.VC
	class   tm.ServiceClass
}

type swRoute struct {
	dests []swDest
}

type swPolicer struct {
	pol *tm.Policer
	vcs *metrics.VCStats // resolved at SetPolicer time; nil-safe
}

// frameState tracks AAL5 frame-discard progress for one (output port, VC).
type frameState struct {
	inFrame bool
	drop    bool // discarding the rest of this frame
	ppd     bool // drop began mid-frame: forward the final EOF cell
}

type swPort struct {
	queues   [tm.NumClasses]*fifo.Ring[*atm.Cell]
	depth    int // shared buffer budget across classes, in cells
	occ      int // current total occupancy
	out      atm.CellConsumer
	cellTime sim.Duration
	draining bool
	drainFn  func() // bound drain callback, created once

	clpThreshold  int // 0 = disabled
	epdThreshold  int // 0 = frame discard (EPD/PPD) disabled
	efciThreshold int // 0 = EFCI marking disabled

	// erica is the explicit-rate state for this port as an output (nil
	// until EnableERICA).
	erica *ericaPort

	frames map[atm.VC]*frameState

	// Registry instruments (nil-safe).
	mRouted  *metrics.Counter
	mDropped *metrics.Counter
	mOcc     *metrics.Gauge

	// Residency telemetry: per-class shadow rings of enqueue times paired
	// with the output queues, so each drained cell's queueing delay feeds
	// the port residency histogram without touching the cell. Allocated by
	// Instrument; nil (and costless) otherwise.
	times [tm.NumClasses]*fifo.Ring[sim.Time]
	hRes  *metrics.Histogram

	// Flight-recorder span for this output queue (nil unless attached).
	spQueue *trace.StageSpan
}

// NewSwitch builds a switch with nPorts ports whose output links run at the
// given payload rate, queueDepth cells of output buffering each.
func NewSwitch(k *sim.Kernel, name string, nPorts int, rate units.BitRate, queueDepth int) *Switch {
	if nPorts <= 0 || queueDepth <= 0 {
		panic("netsim: invalid switch geometry")
	}
	s := &Switch{
		k:        k,
		name:     name,
		table:    make(map[swKey]*swRoute),
		policers: make(map[swKey]*swPolicer),
		portDown: make([]bool, nPorts),
	}
	s.aisTickFn = s.aisTick
	ct := units.CellTime(rate)
	for i := 0; i < nPorts; i++ {
		i := i
		p := &swPort{
			depth:    queueDepth,
			cellTime: ct,
			frames:   make(map[atm.VC]*frameState),
		}
		p.drainFn = func() { s.drain(i) }
		for c := range p.queues {
			p.queues[c] = fifo.NewRing[*atm.Cell](queueDepth)
		}
		s.ports = append(s.ports, p)
		s.conduits = append(s.conduits, &SwitchPort{s: s, idx: i})
	}
	return s
}

// SetPortRate overrides one output port's drain rate — a switch bridging a
// 622 Mb/s backbone to 155 Mb/s edges is the canonical rate-mismatch
// congestion point of the era's topologies.
func (s *Switch) SetPortRate(port int, rate units.BitRate) {
	s.port(port).cellTime = units.CellTime(rate)
}

// SetThresholds arms congestion controls on an output port, all in cells
// of total port occupancy: arriving CLP=1 cells are dropped at or above
// clp, new AAL5 frames arriving at or above epd are refused whole (EPD)
// with mid-frame losses truncating the remainder (PPD), and user cells
// committed to the queue at or above efci leave with the EFCI congestion
// bit set in their PT (AAU preserved) — the binary feedback the ABR
// destination folds into backward RM cells as CI. Zero disables a
// threshold; all default to zero (blind tail drop).
func (s *Switch) SetThresholds(port, clp, epd, efci int) {
	p := s.port(port)
	p.clpThreshold = clp
	p.epdThreshold = epd
	p.efciThreshold = efci
}

// SetPolicer installs a UPC policer on an input port's VC: every arriving
// cell on that (port, VC) runs the GCRA conformance test before routing.
func (s *Switch) SetPolicer(inPort int, vc atm.VC, pol *tm.Policer) {
	s.port(inPort) // range-check
	s.policers[swKey{inPort: inPort, vc: vc}] = &swPolicer{
		pol: pol,
		vcs: s.reg.VC(vc.VPI, vc.VCI),
	}
}

// Stats returns the switch counters.
func (s *Switch) Stats() SwitchStats { return s.stats }

func (s *Switch) port(i int) *swPort {
	if i < 0 || i >= len(s.ports) {
		panic(fmt.Sprintf("netsim: port %d out of range", i))
	}
	return s.ports[i]
}

// SwitchPort is the conduit view of one switch port: cells delivered into
// it enter the fabric on that input port, and AttachSink connects the
// port's output side downstream. It implements atm.CellConduit, so ports
// wire to links, interfaces and stations exactly like any other stage.
type SwitchPort struct {
	s   *Switch
	idx int
}

// DeliverCell implements atm.CellConsumer: the cell arrives on this input
// port and is policed, routed and queued.
func (p *SwitchPort) DeliverCell(c *atm.Cell) { p.s.receive(p.idx, c) }

// AttachSink implements atm.CellProducer: cells drained from this output
// port are delivered to out at the port's cell rate.
func (p *SwitchPort) AttachSink(out atm.CellConsumer) {
	if out == nil {
		panic("netsim: nil port sink")
	}
	p.s.port(p.idx).out = out
}

// Port returns the conduit for port i. The same object is returned on every
// call, so it is cheap to pass around as a wiring handle.
func (s *Switch) Port(i int) *SwitchPort {
	s.port(i) // range-check
	return s.conduits[i]
}

// SignalChange implements phy.SignalConsumer for the input side of this
// port: the upstream fiber reports loss (or return) of signal. While down,
// the switch inserts AIS downstream on every route this port feeds.
func (p *SwitchPort) SignalChange(up bool) { p.s.portSignal(p.idx, up) }

// PortDown reports whether an input port currently has no signal.
func (s *Switch) PortDown(i int) bool {
	s.port(i)
	return s.portDown[i]
}

func (s *Switch) portSignal(port int, up bool) {
	s.port(port)
	if s.portDown[port] == !up {
		return
	}
	s.portDown[port] = !up
	if up || s.AISPeriod <= 0 || s.aisTicking {
		return
	}
	// First AIS batch goes out immediately — detection latency downstream
	// is the propagation and queueing delay, not a full period.
	s.aisTicking = true
	s.aisTick()
}

// aisTick inserts one AIS cell per affected route and re-arms itself every
// AISPeriod until every input port has its signal back. Routes are visited
// in (input port, VC) order so generation is deterministic.
func (s *Switch) aisTick() {
	anyDown := false
	for _, d := range s.portDown {
		if d {
			anyDown = true
			break
		}
	}
	if !anyDown {
		s.aisTicking = false
		return
	}
	keys := make([]swKey, 0, len(s.table))
	for key := range s.table {
		if s.portDown[key.inPort] {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].inPort != keys[b].inPort {
			return keys[a].inPort < keys[b].inPort
		}
		if keys[a].vc.VPI != keys[b].vc.VPI {
			return keys[a].vc.VPI < keys[b].vc.VPI
		}
		return keys[a].vc.VCI < keys[b].vc.VCI
	})
	loc := oam.LocationID(s.name)
	for _, key := range keys {
		for _, d := range s.table[key].dests {
			s.stats.AISCells++
			s.mAIS.Inc()
			s.deferEnqueue(d, oam.NewAIS(d.outVC, loc))
		}
	}
	s.k.PostAfter(s.AISPeriod, s.aisTickFn)
}

// RouteOptions refines SetRoute.
type RouteOptions struct {
	// Class selects the output priority queue (zero value: UBR,
	// best-effort).
	Class tm.ServiceClass
	// Append adds the destination to any existing route for (inPort, inVC)
	// instead of replacing it, building a point-to-multipoint — broadcast —
	// route: each arriving cell is replicated to every destination.
	Append bool
}

// SetRoute installs a unidirectional route: cells arriving on inPort with
// header VC inVC leave on outPort carrying outVC. The previous route for
// (inPort, inVC), if any, is replaced unless opts.Append is set. This is
// the one routing entry point (it subsumes the former Route / RouteClass /
// AddRoute trio).
func (s *Switch) SetRoute(inPort int, inVC atm.VC, outPort int, outVC atm.VC, opts RouteOptions) {
	s.port(inPort)
	s.port(outPort)
	key := swKey{inPort: inPort, vc: inVC}
	rt := s.table[key]
	if rt == nil || !opts.Append {
		rt = &swRoute{}
		s.table[key] = rt
	}
	rt.dests = append(rt.dests, swDest{outPort: outPort, outVC: outVC, class: opts.Class})
}

// Instrument registers the switch's telemetry under the given name prefix:
// per-port "<prefix>.portN.routed"/".dropped" counters and an ".occupancy"
// gauge (whose watermark is the buffer the port actually needed), plus
// switch-level counters for each discard mechanism. Per-VC policing
// actions are recorded into the registry's VCStats rows under the
// policed_clp_tag / policed_discard / epd / ppd / switch_queue_overflow /
// clp_threshold causes.
func (s *Switch) Instrument(reg *metrics.Registry, prefix string) {
	s.reg = reg
	s.mTag = reg.Counter(prefix + ".policed_clp_tag")
	s.mPolDrp = reg.Counter(prefix + ".policed_discard")
	s.mEPD = reg.Counter(prefix + ".epd_cells")
	s.mPPD = reg.Counter(prefix + ".ppd_cells")
	s.mCLP = reg.Counter(prefix + ".clp_dropped")
	s.mNoRt = reg.Counter(prefix + ".no_route")
	s.mBcast = reg.Counter(prefix + ".broadcasts")
	s.mAIS = reg.Counter(prefix + ".ais_cells")
	s.mEFCI = reg.Counter(prefix + ".efci_marked")
	s.mER = reg.Counter(prefix + ".er_stamped")
	for i, p := range s.ports {
		pn := fmt.Sprintf("%s.port%d", prefix, i)
		p.mRouted = reg.Counter(pn + ".routed")
		p.mDropped = reg.Counter(pn + ".dropped")
		p.mOcc = reg.Gauge(pn + ".occupancy")
		p.hRes = reg.Histogram(pn + ".residency")
		for c := range p.times {
			p.times[c] = fifo.NewRing[sim.Time](p.depth)
		}
	}
	// Re-resolve VCStats rows for policers installed before Instrument.
	for key, sp := range s.policers {
		sp.vcs = reg.VC(key.vc.VPI, key.vc.VCI)
	}
}

// SetRecorder attaches flight-recorder spans to every output queue: stage
// "portN.queue" under the switch's name covers commit-to-queue through
// drain onto the output link. Span VCs are output-side (post-rewrite).
func (s *Switch) SetRecorder(rec *trace.Recorder) {
	for i, p := range s.ports {
		p.spQueue = rec.Stage(s.name, fmt.Sprintf("port%d.queue", i))
	}
}

func (s *Switch) receive(port int, c *atm.Cell) {
	key := swKey{inPort: port, vc: c.Header.VC()}
	if sp := s.policers[key]; sp != nil {
		switch sp.pol.Police(s.k.Now(), c.Header.CLP) {
		case tm.Discard:
			s.stats.PolicedDiscarded++
			s.mPolDrp.Inc()
			sp.vcs.Drop(metrics.DropPolicedDiscard)
			return
		case tm.TagCLP:
			c.Header.CLP = true
			s.stats.PolicedTagged++
			s.mTag.Inc()
			sp.vcs.Drop(metrics.DropPolicedTag)
		}
	}
	rt, ok := s.table[key]
	if !ok {
		s.stats.NoRoute++
		s.mNoRt.Inc()
		return
	}
	if c.Header.PT == atm.PTResourceMgmt {
		// Backward RM cells arrive on the port whose output side their
		// connection's forward cells congest; stamp ERICA's explicit rate
		// before the fabric carries them on toward the source.
		s.rmReceive(port, c)
	}
	if len(rt.dests) > 1 {
		s.stats.Broadcasts++
		s.mBcast.Inc()
	}
	for i, d := range rt.dests {
		out := c
		if i > 0 {
			clone := *c // replication: the fabric copies the cell per leaf
			out = &clone
		}
		out.Header.VPI, out.Header.VCI = d.outVC.VPI, d.outVC.VCI
		s.deferEnqueue(d, out)
	}
}

// swDefer is one cell in fabric transit: a pooled record whose bound fire
// method replaces the per-cell closure the switching delay used to cost.
type swDefer struct {
	s    *Switch
	dest swDest
	cell *atm.Cell
	fn   func()
	next *swDefer
}

// deferEnqueue schedules enqueue(dest, c) after the fabric transit delay.
func (s *Switch) deferEnqueue(dest swDest, c *atm.Cell) {
	r := s.freeDefer
	if r == nil {
		r = &swDefer{s: s}
		r.fn = r.fire
	} else {
		s.freeDefer = r.next
		r.next = nil
	}
	r.dest, r.cell = dest, c
	s.k.PostAfter(s.SwitchingDelay, r.fn)
}

func (r *swDefer) fire() {
	dest, cell := r.dest, r.cell
	r.cell = nil
	r.next = r.s.freeDefer
	r.s.freeDefer = r
	r.s.enqueue(dest, cell)
}

// frame returns the frame-discard state for an output VC on a port.
func (p *swPort) frame(vc atm.VC) *frameState {
	fs := p.frames[vc]
	if fs == nil {
		fs = &frameState{}
		p.frames[vc] = fs
	}
	return fs
}

func (s *Switch) enqueue(d swDest, c *atm.Cell) {
	p := s.ports[d.outPort]
	if p.erica != nil {
		// ERICA measures offered load — before any drop decision — so the
		// overload factor sees the demand the queue is refusing.
		p.erica.observe(s.k.Now(), d.class, c)
	}
	frameDiscard := p.epdThreshold > 0 && c.Header.PT.User()
	var fs *frameState
	eof := c.Header.PT.EndOfFrame()
	if frameDiscard {
		fs = p.frame(c.Header.VC())
		if !fs.inFrame {
			// Frame boundary: the EPD decision is made here, before any
			// cell of the frame is committed to the queue.
			fs.inFrame = true
			fs.ppd = false
			fs.drop = p.occ >= p.epdThreshold
			if fs.drop {
				s.stats.EPDFrames++
			}
		}
		if fs.drop && !(fs.ppd && eof) {
			// Discarding this frame. EPD drops everything including the
			// EOF (no cell of the frame was forwarded, so the previous
			// frame's EOF still delineates). PPD falls through on the
			// EOF cell to keep the reassembler's framing intact.
			if fs.ppd {
				s.stats.PPDCells++
				s.mPPD.Inc()
				s.dropVC(c, metrics.DropPPD)
				p.spQueue.Drop(c.Header.VC(), metrics.DropPPD)
			} else {
				s.stats.EPDCells++
				s.mEPD.Inc()
				s.dropVC(c, metrics.DropEPD)
				p.spQueue.Drop(c.Header.VC(), metrics.DropEPD)
			}
			if eof {
				fs.inFrame = false
			}
			return
		}
	}

	dropped := false
	if c.Header.CLP && p.clpThreshold > 0 && p.occ >= p.clpThreshold {
		s.stats.CLPDropped++
		s.mCLP.Inc()
		s.dropVC(c, metrics.DropCLPThreshold)
		p.spQueue.Drop(c.Header.VC(), metrics.DropCLPThreshold)
		dropped = true
	} else if p.occ >= p.depth {
		s.stats.Dropped++
		p.mDropped.Inc()
		s.dropVC(c, metrics.DropSwitchQueue)
		p.spQueue.Drop(c.Header.VC(), metrics.DropSwitchQueue)
		dropped = true
	}
	if dropped {
		if fs != nil {
			if eof {
				fs.inFrame = false
			} else {
				// Mid-frame loss: the rest of the frame is useless to
				// AAL5 — switch to PPD for its remaining cells.
				fs.drop = true
				fs.ppd = true
				s.stats.PPDFrames++
			}
		}
		return
	}

	if p.efciThreshold > 0 && p.occ >= p.efciThreshold && c.Header.PT.User() {
		// Congestion experienced: set EFCI in the PT, preserving the AAU
		// (end-of-frame) bit — 0b001 becomes 0b011, not a new frame shape.
		c.Header.PT |= atm.PTUserCongested
		s.stats.EFCIMarked++
		s.mEFCI.Inc()
	}
	p.queues[d.class].Push(c)
	if p.hRes != nil {
		p.times[d.class].Push(s.k.Now())
	}
	p.spQueue.Enter(c.Header.VC())
	p.occ++
	p.mOcc.Set(int64(p.occ))
	s.stats.Routed++
	p.mRouted.Inc()
	if fs != nil && eof {
		fs.inFrame = false
	}
	if !p.draining {
		p.draining = true
		s.k.PostAfter(p.cellTime, p.drainFn)
	}
}

// dropVC records a drop against the cell's (output) VC in the registry.
func (s *Switch) dropVC(c *atm.Cell, cause metrics.DropCause) {
	if s.reg == nil {
		return
	}
	s.reg.VC(c.Header.VPI, c.Header.VCI).Drop(cause)
}

func (s *Switch) drain(port int) {
	p := s.ports[port]
	var cell *atm.Cell
	cls := -1
	for class := range p.queues { // strict priority: CBR, rt-VBR, ABR, UBR
		if c, ok := p.queues[class].Pop(); ok {
			cell = c
			cls = class
			break
		}
	}
	if cell == nil {
		p.draining = false
		return
	}
	p.occ--
	p.mOcc.Set(int64(p.occ))
	if p.hRes != nil {
		if t0, ok := p.times[cls].Pop(); ok {
			p.hRes.Observe(s.k.Now() - t0)
		}
	}
	p.spQueue.Exit(cell.Header.VC())
	if p.out != nil {
		p.out.DeliverCell(cell)
	}
	if p.occ == 0 {
		p.draining = false
		return
	}
	s.k.PostAfter(p.cellTime, p.drainFn)
}

// QueueDepth returns a port's current output occupancy across all classes.
func (s *Switch) QueueDepth(port int) int { return s.port(port).occ }
