package netsim

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/fifo"
	"repro/internal/sim"
	"repro/internal/units"
)

// Switch is a small output-queued ATM switch: cells arriving on any input
// port are routed by (input port, VC) to an output port, optionally with
// VC translation, and drain onto the output fiber at the port's cell rate.
// A full output queue drops the arriving cell — the congestive loss the
// adaptation layers must survive (experiment E8's loss has this origin).
type Switch struct {
	k     *sim.Kernel
	name  string
	ports []*swPort
	table map[swKey]swRoute

	// SwitchingDelay models the fabric's fixed per-cell latency.
	SwitchingDelay sim.Duration

	stats SwitchStats
}

// SwitchStats counts switch events.
type SwitchStats struct {
	Routed     uint64
	Dropped    uint64 // output-queue overflows
	NoRoute    uint64
	Broadcasts uint64
}

type swKey struct {
	inPort int
	vc     atm.VC
}

type swRoute struct {
	outPort int
	outVC   atm.VC
}

type swPort struct {
	queue    *fifo.Ring[*atm.Cell]
	out      func(*atm.Cell)
	cellTime sim.Duration
	draining bool
}

// NewSwitch builds a switch with nPorts ports whose output links run at the
// given payload rate, queueDepth cells of output buffering each.
func NewSwitch(k *sim.Kernel, name string, nPorts int, rate units.BitRate, queueDepth int) *Switch {
	if nPorts <= 0 || queueDepth <= 0 {
		panic("netsim: invalid switch geometry")
	}
	s := &Switch{k: k, name: name, table: make(map[swKey]swRoute)}
	ct := units.CellTime(rate)
	for i := 0; i < nPorts; i++ {
		s.ports = append(s.ports, &swPort{
			queue:    fifo.NewRing[*atm.Cell](queueDepth),
			cellTime: ct,
		})
	}
	return s
}

// SetPortRate overrides one output port's drain rate — a switch bridging a
// 622 Mb/s backbone to 155 Mb/s edges is the canonical rate-mismatch
// congestion point of the era's topologies.
func (s *Switch) SetPortRate(port int, rate units.BitRate) {
	if port < 0 || port >= len(s.ports) {
		panic("netsim: port out of range")
	}
	s.ports[port].cellTime = units.CellTime(rate)
}

// Stats returns the switch counters.
func (s *Switch) Stats() SwitchStats { return s.stats }

// AttachOutput connects a port's output to a sink (typically a
// phy.CellLink.Send or a station's DeliverCell).
func (s *Switch) AttachOutput(port int, out func(*atm.Cell)) {
	s.ports[port].out = out
}

// Route installs a unidirectional route: cells arriving on inPort with
// header VC inVC leave on outPort carrying outVC.
func (s *Switch) Route(inPort int, inVC atm.VC, outPort int, outVC atm.VC) {
	if inPort < 0 || inPort >= len(s.ports) || outPort < 0 || outPort >= len(s.ports) {
		panic(fmt.Sprintf("netsim: route port out of range %d->%d", inPort, outPort))
	}
	s.table[swKey{inPort: inPort, vc: inVC}] = swRoute{outPort: outPort, outVC: outVC}
}

// Input returns the cell sink for an input port, suitable for wiring a
// link's delivery callback to.
func (s *Switch) Input(port int) func(*atm.Cell) {
	if port < 0 || port >= len(s.ports) {
		panic("netsim: input port out of range")
	}
	return func(c *atm.Cell) { s.receive(port, c) }
}

func (s *Switch) receive(port int, c *atm.Cell) {
	rt, ok := s.table[swKey{inPort: port, vc: c.Header.VC()}]
	if !ok {
		s.stats.NoRoute++
		return
	}
	c.Header.VPI, c.Header.VCI = rt.outVC.VPI, rt.outVC.VCI
	s.k.After(s.SwitchingDelay, func() { s.enqueue(rt.outPort, c) })
}

func (s *Switch) enqueue(port int, c *atm.Cell) {
	p := s.ports[port]
	if !p.queue.Push(c) {
		s.stats.Dropped++
		return
	}
	s.stats.Routed++
	if !p.draining {
		p.draining = true
		s.k.After(p.cellTime, func() { s.drain(port) })
	}
}

func (s *Switch) drain(port int) {
	p := s.ports[port]
	cell, ok := p.queue.Pop()
	if !ok {
		p.draining = false
		return
	}
	if p.out != nil {
		p.out(cell)
	}
	if p.queue.Empty() {
		p.draining = false
		return
	}
	s.k.After(p.cellTime, func() { s.drain(port) })
}

// QueueDepth returns a port's current output occupancy.
func (s *Switch) QueueDepth(port int) int { return s.ports[port].queue.Len() }
