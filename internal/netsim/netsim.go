// Package netsim assembles whole testbeds out of the lower layers: stations
// (host + bus + interface), point-to-point links, and a small output-queued
// ATM switch — enough network to run every end-to-end experiment and the
// examples.
package netsim

import (
	"repro/internal/atm"
	"repro/internal/baseline"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Station is one workstation with the paper's interface installed.
type Station struct {
	Name  string
	Host  *host.Host
	Bus   *bus.Bus
	Iface *nic.Interface
}

// NewStation builds a station with the given interface configuration and
// default host/bus models.
func NewStation(k *sim.Kernel, cfg nic.Config) (*Station, error) {
	return NewStationFull(k, cfg, host.DefaultConfig(), bus.DefaultConfig())
}

// NewStationFull builds a station with explicit host and bus models. When
// the interface config carries a telemetry registry, the station's bus
// devices record into it too.
func NewStationFull(k *sim.Kernel, cfg nic.Config, hostCfg host.Config, busCfg bus.Config) (*Station, error) {
	h := host.New(k, hostCfg)
	b := bus.New(k, busCfg)
	if cfg.Metrics != nil {
		b.SetMetrics(cfg.Metrics)
	}
	iface, err := nic.New(k, cfg, h, b)
	if err != nil {
		return nil, err
	}
	return &Station{Name: cfg.Name, Host: h, Bus: b, Iface: iface}, nil
}

// NewHardwiredStation builds a station with the fixed-function baseline
// interface.
func NewHardwiredStation(k *sim.Kernel, cfg nic.Config) (*Station, error) {
	h := host.New(k, host.DefaultConfig())
	b := bus.New(k, bus.DefaultConfig())
	if cfg.Metrics != nil {
		b.SetMetrics(cfg.Metrics)
	}
	iface, err := baseline.NewHardwired(k, cfg, h, b)
	if err != nil {
		return nil, err
	}
	return &Station{Name: cfg.Name, Host: h, Bus: b, Iface: iface}, nil
}

// LinkConfig sets a point-to-point fiber's properties.
type LinkConfig struct {
	Delay       sim.Duration
	LossProb    float64
	CorruptProb float64
	Seed        uint64
}

// Connect wires a→b and b→a with independent cell links and returns them.
func Connect(k *sim.Kernel, a, b *Station, cfg LinkConfig) (ab, ba *phy.CellLink) {
	ab = phy.NewCellLink(k, cfg.Delay, cfg.Seed*2+1, b.Iface)
	ab.LossProb = cfg.LossProb
	ab.CorruptProb = cfg.CorruptProb
	ba = phy.NewCellLink(k, cfg.Delay, cfg.Seed*2+2, a.Iface)
	ba.LossProb = cfg.LossProb
	ba.CorruptProb = cfg.CorruptProb
	a.Iface.AttachSink(ab)
	b.Iface.AttachSink(ba)
	return ab, ba
}

// BaselineStation is a workstation with the per-cell-interrupt adapter.
type BaselineStation struct {
	Name    string
	Host    *host.Host
	Bus     *bus.Bus
	Adapter *baseline.HostSAR
}

// NewBaselineStation builds the per-cell baseline station.
func NewBaselineStation(k *sim.Kernel, name string, cfg baseline.Config) *BaselineStation {
	h := host.New(k, host.DefaultConfig())
	b := bus.New(k, bus.DefaultConfig())
	return &BaselineStation{Name: name, Host: h, Bus: b,
		Adapter: baseline.NewHostSAR(k, cfg, h, b)}
}

// ConnectBaseline wires two baseline stations together.
func ConnectBaseline(k *sim.Kernel, a, b *BaselineStation, cfg LinkConfig) (ab, ba *phy.CellLink) {
	ab = phy.NewCellLink(k, cfg.Delay, cfg.Seed*2+1, b.Adapter)
	ab.LossProb = cfg.LossProb
	ba = phy.NewCellLink(k, cfg.Delay, cfg.Seed*2+2, a.Adapter)
	ba.LossProb = cfg.LossProb
	a.Adapter.AttachSink(ab)
	b.Adapter.AttachSink(ba)
	return ab, ba
}

// pump drives a closed-loop greedy source: keep `window` packets in flight
// on vc until deadline.
type Source struct {
	k        *sim.Kernel
	station  *Station
	vc       atm.VC
	size     int
	deadline sim.Time
	Sent     uint64
}

// NewSource creates a greedy closed-loop source on a station.
func NewSource(k *sim.Kernel, s *Station, vc atm.VC, size int, deadline sim.Time) *Source {
	return &Source{k: k, station: s, vc: vc, size: size, deadline: deadline}
}

// Start launches `window` chained send loops.
func (s *Source) Start(window int) {
	payload := make([]byte, s.size)
	for i := range payload {
		payload[i] = byte(i)
	}
	var send func()
	send = func() {
		if s.k.Now() > s.deadline {
			return
		}
		if err := s.station.Iface.Send(s.vc, payload, send); err != nil {
			panic("netsim: source send failed: " + err.Error())
		}
		s.Sent++
	}
	for i := 0; i < window; i++ {
		send()
	}
}
