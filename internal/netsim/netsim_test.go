package netsim

import (
	"bytes"
	"testing"

	"repro/internal/atm"
	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

func vc(n uint16) atm.VC { return atm.VC{VCI: n} }

func TestStationPairEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	a, err := NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	Connect(k, a, b, LinkConfig{Delay: 5000, Seed: 1})
	a.Iface.OpenVC(vc(5))
	b.Iface.OpenVC(vc(5))
	payload := bytes.Repeat([]byte{0xab}, 3000)
	var got []byte
	b.Iface.OnReceive(func(d nic.Delivered) { got = d.SDU })
	a.Iface.Send(vc(5), payload, nil)
	k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("station pair round trip failed")
	}
}

func TestDuplexLinksIndependent(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	Connect(k, a, b, LinkConfig{Delay: 1000, Seed: 2})
	for _, s := range []*Station{a, b} {
		s.Iface.OpenVC(vc(9))
	}
	var atA, atB int
	a.Iface.OnReceive(func(d nic.Delivered) { atA++ })
	b.Iface.OnReceive(func(d nic.Delivered) { atB++ })
	a.Iface.Send(vc(9), []byte{1, 2, 3}, nil)
	b.Iface.Send(vc(9), []byte{4, 5, 6}, nil)
	k.Run()
	if atA != 1 || atB != 1 {
		t.Fatalf("deliveries a=%d b=%d, want 1/1", atA, atB)
	}
}

func TestSourceClosedLoop(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	Connect(k, a, b, LinkConfig{Delay: 1000, Seed: 3})
	a.Iface.OpenVC(vc(1))
	b.Iface.OpenVC(vc(1))
	deadline := sim.Time(5 * sim.Millisecond)
	src := NewSource(k, a, vc(1), 9180, deadline)
	src.Start(4)
	k.RunUntil(deadline + sim.Time(5*sim.Millisecond))
	if src.Sent < 4 {
		t.Fatalf("source sent %d", src.Sent)
	}
	st := b.Iface.Stats()
	if st.Rx.Packets == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestSwitchRoutesAndTranslates(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 64)
	sw.SwitchingDelay = 2000

	// a → port0 → switch → port1 → b, with VC translation 10→20.
	sw.Port(1).AttachSink(b.Iface)
	sw.SetRoute(0, vc(10), 1, vc(20), RouteOptions{Class: tm.UBR})
	a.Iface.AttachSink(sw.Port(0))

	a.Iface.OpenVC(vc(10))
	b.Iface.OpenVC(vc(20))
	var got *nic.Delivered
	b.Iface.OnReceive(func(d nic.Delivered) { got = &d })
	payload := bytes.Repeat([]byte{7}, 500)
	a.Iface.Send(vc(10), payload, nil)
	k.Run()
	if got == nil {
		t.Fatal("switch delivered nothing")
	}
	if got.VC != vc(20) {
		t.Fatalf("VC not translated: %v", got.VC)
	}
	if !bytes.Equal(got.SDU, payload) {
		t.Fatal("payload corrupted through switch")
	}
	if sw.Stats().Routed == 0 || sw.Stats().NoRoute != 0 {
		t.Fatalf("switch stats %+v", sw.Stats())
	}
}

func TestSwitchDropsUnrouted(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 16)
	a.Iface.AttachSink(sw.Port(0))
	a.Iface.OpenVC(vc(99))
	a.Iface.Send(vc(99), []byte{1}, nil)
	k.Run()
	if sw.Stats().NoRoute == 0 {
		t.Fatal("unrouted cells not counted")
	}
}

func TestSwitchCongestionDrops(t *testing.T) {
	// Two inputs converge on one output: the output queue must overflow
	// and drop, and the survivors' frames still reassemble or fail
	// cleanly downstream.
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	c, _ := NewStation(k, nic.DefaultConfig("c"))
	sw := NewSwitch(k, "sw", 3, units.STS3cPayload, 8)
	// Unequal fiber runs into the switch break the senders' cell-clock
	// phase lock, so overflow drops hit both flows (as jittered real
	// arrivals would).
	linkA := phy.NewCellLink(k, 1000, 11, sw.Port(0))
	linkB := phy.NewCellLink(k, 2400, 12, sw.Port(1))
	a.Iface.AttachSink(linkA)
	b.Iface.AttachSink(linkB)
	sw.Port(2).AttachSink(c.Iface)
	sw.SetRoute(0, vc(1), 2, vc(1), RouteOptions{Class: tm.UBR})
	sw.SetRoute(1, vc(2), 2, vc(2), RouteOptions{Class: tm.UBR})
	a.Iface.OpenVC(vc(1))
	b.Iface.OpenVC(vc(2))
	c.Iface.OpenVC(vc(1))
	c.Iface.OpenVC(vc(2))
	delivered := 0
	c.Iface.OnReceive(func(d nic.Delivered) { delivered++ })
	// Both senders blast simultaneously: 2x line rate into 1x output.
	deadline := sim.Time(10 * sim.Millisecond)
	// Different packet sizes give the two flows different burst/gap
	// rhythms, so overflow drops land mid-frame on both.
	NewSource(k, a, vc(1), 9180, deadline).Start(3)
	NewSource(k, b, vc(2), 1000, deadline).Start(3)
	k.RunUntil(deadline + sim.Time(10*sim.Millisecond))
	if sw.Stats().Dropped == 0 {
		t.Fatal("2:1 overload produced no switch drops")
	}
	st := c.Iface.Stats()
	if st.Rx.AALErrors == 0 {
		t.Fatal("switch drops never surfaced as AAL errors")
	}
	_ = delivered // some frames may survive; all that matters is clean failure
}

func TestBaselineStationPair(t *testing.T) {
	k := sim.NewKernel()
	a := NewBaselineStation(k, "a", baseline.DefaultConfig())
	b := NewBaselineStation(k, "b", baseline.DefaultConfig())
	ConnectBaseline(k, a, b, LinkConfig{Delay: 1000, Seed: 4})
	b.Adapter.OpenVC(vc(3))
	var got []byte
	b.Adapter.OnReceive(func(v atm.VC, sdu []byte) { got = sdu })
	payload := bytes.Repeat([]byte{9}, 800)
	a.Adapter.Send(vc(3), payload, nil)
	k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("baseline station pair failed")
	}
}

func TestHardwiredStation(t *testing.T) {
	k := sim.NewKernel()
	a, err := NewHardwiredStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHardwiredStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	Connect(k, a, b, LinkConfig{Delay: 1000, Seed: 5})
	a.Iface.OpenVC(vc(1))
	b.Iface.OpenVC(vc(1))
	got := 0
	b.Iface.OnReceive(func(d nic.Delivered) { got++ })
	a.Iface.Send(vc(1), []byte{1, 2, 3, 4}, nil)
	k.Run()
	if got != 1 {
		t.Fatal("hardwired station pair failed")
	}
}

func TestSwitchInvalidGeometryPanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("zero ports did not panic")
		}
	}()
	NewSwitch(k, "x", 0, units.STS3cPayload, 8)
}

func TestSwitchRateMismatchCongestion(t *testing.T) {
	// A 622 Mb/s sender through a switch whose output port drains at
	// 155 Mb/s: the 4:1 rate mismatch must overflow the output queue for
	// a greedy flow, and a properly paced flow must pass clean.
	run := func(paceCellsPerSec float64) (drops uint64, delivered uint64) {
		k := sim.NewKernel()
		cfgA := nic.DefaultConfig("a")
		cfgA.PayloadRate = units.STS12cPayload
		a, _ := NewStation(k, cfgA)
		c, _ := NewStation(k, nic.DefaultConfig("c")) // 155 edge station
		sw := NewSwitch(k, "sw", 2, units.STS12cPayload, 32)
		sw.SetPortRate(1, units.STS3cPayload)
		a.Iface.AttachSink(sw.Port(0))
		sw.Port(1).AttachSink(c.Iface)
		sw.SetRoute(0, vc(1), 1, vc(1), RouteOptions{Class: tm.UBR})
		a.Iface.OpenVC(vc(1))
		c.Iface.OpenVC(vc(1))
		if paceCellsPerSec > 0 {
			a.Iface.SetPeakCellRate(vc(1), paceCellsPerSec)
		}
		got := uint64(0)
		c.Iface.OnReceive(func(nic.Delivered) { got++ })
		deadline := sim.Time(10 * sim.Millisecond)
		NewSource(k, a, vc(1), 9180, deadline).Start(3)
		k.RunUntil(deadline + sim.Time(20*sim.Millisecond))
		return sw.Stats().Dropped, got
	}
	greedyDrops, _ := run(0)
	if greedyDrops == 0 {
		t.Fatal("4:1 rate mismatch produced no switch drops")
	}
	// Paced to 300k cells/s (< 353k of STS-3c payload): clean.
	pacedDrops, pacedDelivered := run(300_000)
	if pacedDrops != 0 {
		t.Fatalf("paced flow still dropped %d at the slow port", pacedDrops)
	}
	if pacedDelivered == 0 {
		t.Fatal("paced flow delivered nothing")
	}
}

// Property: under random sizes, random VC assignment and random loss, the
// receiver delivers a prefix-correct per-VC subsequence of what was sent:
// nothing corrupted, nothing reordered, nothing invented.
func TestPropertyEndToEndIntegrity(t *testing.T) {
	run := func(seed uint64, sizes []uint16, lossMilli uint8) bool {
		k := sim.NewKernel()
		a, _ := NewStation(k, nic.DefaultConfig("a"))
		b, _ := NewStation(k, nic.DefaultConfig("b"))
		loss := float64(lossMilli%20) / 1000
		Connect(k, a, b, LinkConfig{Delay: 5000, LossProb: loss, Seed: seed})
		vcs := []atm.VC{{VCI: 1}, {VCI: 2}, {VCI: 3}}
		for _, vc := range vcs {
			a.Iface.OpenVC(vc)
			b.Iface.OpenVC(vc)
		}
		type msg struct {
			vc  atm.VC
			sdu []byte
		}
		var sent []msg
		var recv []msg
		b.Iface.OnReceive(func(d nic.Delivered) {
			recv = append(recv, msg{d.VC, d.SDU})
		})
		for i, s := range sizes {
			n := int(s)%5000 + 1
			payload := make([]byte, n)
			for j := range payload {
				payload[j] = byte(j*7 + i)
			}
			vc := vcs[i%len(vcs)]
			sent = append(sent, msg{vc, payload})
			if err := a.Iface.Send(vc, payload, nil); err != nil {
				return false
			}
		}
		k.Run()
		// Per VC: received messages are a subsequence (in fact a
		// loss-filtered subsequence preserving order) of sent ones.
		for _, vc := range vcs {
			var s, r [][]byte
			for _, m := range sent {
				if m.vc == vc {
					s = append(s, m.sdu)
				}
			}
			for _, m := range recv {
				if m.vc == vc {
					r = append(r, m.sdu)
				}
			}
			si := 0
			for _, got := range r {
				found := false
				for si < len(s) {
					if bytes.Equal(s[si], got) {
						found = true
						si++
						break
					}
					si++
				}
				if !found {
					return false
				}
			}
		}
		if loss == 0 && len(recv) != len(sent) {
			return false
		}
		return true
	}
	seeds := []uint64{1, 2, 3}
	for _, seed := range seeds {
		sizes := make([]uint16, 12)
		rng := sim.NewRand(seed * 77)
		for i := range sizes {
			sizes[i] = uint16(rng.Uint64())
		}
		if !run(seed, sizes, uint8(seed*7)) {
			t.Fatalf("integrity violated for seed %d", seed)
		}
	}
}

// mkCell builds a bare user cell for direct switch-input injection.
func mkCell(vci uint16, pt atm.PT, clp bool) *atm.Cell {
	return &atm.Cell{Header: atm.Header{Format: atm.UNI, VCI: vci, PT: pt, CLP: clp}}
}

func TestSwitchBroadcastRoute(t *testing.T) {
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 3, units.STS3cPayload, 16)
	reg := metrics.NewRegistry()
	sw.Instrument(reg, "sw")
	var got1, got2 []*atm.Cell
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { got1 = append(got1, c) }))
	sw.Port(2).AttachSink(atm.SinkFunc(func(c *atm.Cell) { got2 = append(got2, c) }))
	// Point-to-multipoint: one input VC replicated to two leaves with
	// different translations.
	sw.SetRoute(0, vc(5), 1, vc(50), RouteOptions{Class: tm.UBR, Append: true})
	sw.SetRoute(0, vc(5), 2, vc(70), RouteOptions{Class: tm.UBR, Append: true})
	in := sw.Port(0)
	in.DeliverCell(mkCell(5, atm.PTUserEnd, false))
	k.Run()
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("broadcast delivered %d/%d, want 1/1", len(got1), len(got2))
	}
	if got1[0].Header.VCI != 50 || got2[0].Header.VCI != 70 {
		t.Fatalf("leaf VCs %d/%d, want 50/70", got1[0].Header.VCI, got2[0].Header.VCI)
	}
	// Replication must clone: the two leaves hold distinct cells.
	if got1[0] == got2[0] {
		t.Fatal("broadcast leaves share one cell")
	}
	st := sw.Stats()
	if st.Broadcasts != 1 || st.Routed != 2 {
		t.Fatalf("stats %+v", st)
	}
	if reg.Counter("sw.broadcasts").Value() != 1 ||
		reg.Counter("sw.port1.routed").Value() != 1 ||
		reg.Counter("sw.port2.routed").Value() != 1 {
		t.Fatal("broadcast not visible in registry")
	}
}

func TestSwitchPriorityDrain(t *testing.T) {
	// UBR cells queued first, CBR cells second; the strict-priority drain
	// must still emit every CBR cell before any UBR cell.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 16)
	var order []uint16
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { order = append(order, c.Header.VCI) }))
	sw.SetRoute(0, vc(1), 1, vc(1), RouteOptions{Class: tm.UBR})
	sw.SetRoute(0, vc(2), 1, vc(2), RouteOptions{Class: tm.CBR})
	in := sw.Port(0)
	for i := 0; i < 3; i++ {
		in.DeliverCell(mkCell(1, atm.PTUser0, false))
	}
	for i := 0; i < 2; i++ {
		in.DeliverCell(mkCell(2, atm.PTUser0, false))
	}
	k.Run()
	want := []uint16{2, 2, 1, 1, 1}
	if len(order) != len(want) {
		t.Fatalf("drained %d cells, want %d", len(order), len(want))
	}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

func TestSwitchPolicerDiscards(t *testing.T) {
	// A back-to-back burst through a CBR policer: only the first cell of
	// the instantaneous burst conforms (CDVT 0), the rest are discarded
	// at the ingress, before routing.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 64)
	reg := metrics.NewRegistry()
	sw.Instrument(reg, "sw")
	delivered := 0
	sw.Port(1).AttachSink(atm.SinkFunc(func(*atm.Cell) { delivered++ }))
	sw.SetRoute(0, vc(3), 1, vc(3), RouteOptions{Class: tm.UBR})
	sw.SetPolicer(0, vc(3), tm.NewPolicer(tm.CBRContract(100_000, 0)))
	in := sw.Port(0)
	for i := 0; i < 10; i++ {
		in.DeliverCell(mkCell(3, atm.PTUser0, false))
	}
	k.Run()
	st := sw.Stats()
	if st.PolicedDiscarded != 9 || st.Routed != 1 || delivered != 1 {
		t.Fatalf("policer: %+v delivered=%d", st, delivered)
	}
	if reg.Counter("sw.policed_discard").Value() != 9 {
		t.Fatal("policed_discard counter not recorded")
	}
	if reg.VC(0, 3).Drops[metrics.DropPolicedDiscard] != 9 {
		t.Fatal("per-VC policed_discard not recorded")
	}
}

func TestSwitchPolicerTagsAndCLPThreshold(t *testing.T) {
	// Dual-bucket policer with tagging: cells beyond the MBS burst are
	// forwarded CLP=1; under congestion the CLP threshold then kills the
	// tagged cells first.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 32)
	var clpOut int
	delivered := 0
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) {
		delivered++
		if c.Header.CLP {
			clpOut++
		}
	}))
	sw.SetRoute(0, vc(4), 1, vc(4), RouteOptions{Class: tm.UBR})
	// PCR 1M c/s (T=1µs), SCR 100k (Ts=10µs), MBS 3 → a 3-cell burst at
	// PCR conforms, the 4th and 5th get tagged.
	pol := tm.NewPolicer(tm.VBRContract(1e6, 1e5, 3, 0))
	pol.TagSCR = true
	sw.SetPolicer(0, vc(4), pol)
	in := sw.Port(0)
	for i := 0; i < 5; i++ {
		c := mkCell(4, atm.PTUser0, false)
		k.At(sim.Time(i)*1000, func() { in.DeliverCell(c) })
	}
	k.Run()
	if clpOut != 2 || sw.Stats().PolicedTagged != 2 || delivered != 5 {
		t.Fatalf("tagged=%d stats=%+v delivered=%d", clpOut, sw.Stats(), delivered)
	}

	// CLP threshold: with the port occupancy above the threshold, an
	// arriving CLP=1 cell dies while CLP=0 cells still queue.
	k2 := sim.NewKernel()
	sw2 := NewSwitch(k2, "sw", 2, units.STS3cPayload, 8)
	sw2.SetThresholds(1, 2, 0, 0)
	sw2.SetRoute(0, vc(6), 1, vc(6), RouteOptions{Class: tm.UBR})
	in2 := sw2.Port(0)
	in2.DeliverCell(mkCell(6, atm.PTUser0, true)) // occ 0 < 2: accepted
	for i := 0; i < 4; i++ {
		in2.DeliverCell(mkCell(6, atm.PTUser0, false))
	}
	in2.DeliverCell(mkCell(6, atm.PTUser0, true)) // occ 5 >= 2: dropped
	k2.Run()
	st := sw2.Stats()
	if st.CLPDropped != 1 || st.Routed != 5 {
		t.Fatalf("clp threshold: %+v", st)
	}
}

func TestSwitchEPD(t *testing.T) {
	// Frame A fills the queue past the EPD threshold; frame B, arriving
	// above it, is refused whole — every cell including its EOF.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 10)
	sw.SetThresholds(1, 0, 4, 0)
	var got []*atm.Cell
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { got = append(got, c) }))
	sw.SetRoute(0, vc(7), 1, vc(7), RouteOptions{Class: tm.UBR})
	in := sw.Port(0)
	frame := func(n int) {
		for i := 0; i < n-1; i++ {
			in.DeliverCell(mkCell(7, atm.PTUser0, false))
		}
		in.DeliverCell(mkCell(7, atm.PTUserEnd, false))
	}
	frame(6) // admitted: occupancy 0 at frame start
	frame(4) // refused: occupancy 6 >= 4 at frame start
	k.Run()
	st := sw.Stats()
	if st.EPDFrames != 1 || st.EPDCells != 4 {
		t.Fatalf("epd stats %+v", st)
	}
	if len(got) != 6 {
		t.Fatalf("delivered %d cells, want 6 (frame A only)", len(got))
	}
	if !got[len(got)-1].Header.PT.EndOfFrame() {
		t.Fatal("frame A's EOF lost")
	}
}

func TestSwitchPPDForwardsEOF(t *testing.T) {
	// A frame longer than the buffer loses a cell mid-frame to tail drop;
	// PPD must drop the remainder but forward the final EOF cell so the
	// next frame still delineates.
	k := sim.NewKernel()
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 6)
	sw.SetThresholds(1, 0, 6, 0) // frame discard armed, EPD gate = full buffer
	var got []*atm.Cell
	sw.Port(1).AttachSink(atm.SinkFunc(func(c *atm.Cell) { got = append(got, c) }))
	sw.SetRoute(0, vc(8), 1, vc(8), RouteOptions{Class: tm.UBR})
	in := sw.Port(0)
	// Cells 1..9 back-to-back: 6 fill the queue, the 7th tail-drops and
	// trips PPD, 8 and 9 die as PPD. The EOF arrives after the port has
	// drained a few slots, so it finds room and must be forwarded.
	for i := 0; i < 9; i++ {
		in.DeliverCell(mkCell(8, atm.PTUser0, false))
	}
	ct := units.CellTime(units.STS3cPayload)
	eof := mkCell(8, atm.PTUserEnd, false)
	k.At(sim.Time(5*ct), func() { in.DeliverCell(eof) })
	k.Run()
	st := sw.Stats()
	if st.Dropped != 1 || st.PPDFrames != 1 || st.PPDCells != 2 {
		t.Fatalf("ppd stats %+v", st)
	}
	if len(got) != 7 {
		t.Fatalf("delivered %d cells, want 7 (6 head + EOF)", len(got))
	}
	if !got[len(got)-1].Header.PT.EndOfFrame() {
		t.Fatal("PPD did not forward the EOF cell")
	}
}
