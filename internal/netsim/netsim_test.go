package netsim

import (
	"bytes"
	"testing"

	"repro/internal/atm"
	"repro/internal/baseline"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/units"
)

func vc(n uint16) atm.VC { return atm.VC{VCI: n} }

func TestStationPairEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	a, err := NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	Connect(k, a, b, LinkConfig{Delay: 5000, Seed: 1})
	a.Iface.OpenVC(vc(5))
	b.Iface.OpenVC(vc(5))
	payload := bytes.Repeat([]byte{0xab}, 3000)
	var got []byte
	b.Iface.OnReceive(func(d nic.Delivered) { got = d.SDU })
	a.Iface.Send(vc(5), payload, nil)
	k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("station pair round trip failed")
	}
}

func TestDuplexLinksIndependent(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	Connect(k, a, b, LinkConfig{Delay: 1000, Seed: 2})
	for _, s := range []*Station{a, b} {
		s.Iface.OpenVC(vc(9))
	}
	var atA, atB int
	a.Iface.OnReceive(func(d nic.Delivered) { atA++ })
	b.Iface.OnReceive(func(d nic.Delivered) { atB++ })
	a.Iface.Send(vc(9), []byte{1, 2, 3}, nil)
	b.Iface.Send(vc(9), []byte{4, 5, 6}, nil)
	k.Run()
	if atA != 1 || atB != 1 {
		t.Fatalf("deliveries a=%d b=%d, want 1/1", atA, atB)
	}
}

func TestSourceClosedLoop(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	Connect(k, a, b, LinkConfig{Delay: 1000, Seed: 3})
	a.Iface.OpenVC(vc(1))
	b.Iface.OpenVC(vc(1))
	deadline := sim.Time(5 * sim.Millisecond)
	src := NewSource(k, a, vc(1), 9180, deadline)
	src.Start(4)
	k.RunUntil(deadline + sim.Time(5*sim.Millisecond))
	if src.Sent < 4 {
		t.Fatalf("source sent %d", src.Sent)
	}
	st := b.Iface.Stats()
	if st.Rx.Packets == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestSwitchRoutesAndTranslates(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 64)
	sw.SwitchingDelay = 2000

	// a → port0 → switch → port1 → b, with VC translation 10→20.
	sw.AttachOutput(1, b.Iface.DeliverCell)
	sw.Route(0, vc(10), 1, vc(20))
	a.Iface.SetOutput(sw.Input(0))

	a.Iface.OpenVC(vc(10))
	b.Iface.OpenVC(vc(20))
	var got *nic.Delivered
	b.Iface.OnReceive(func(d nic.Delivered) { got = &d })
	payload := bytes.Repeat([]byte{7}, 500)
	a.Iface.Send(vc(10), payload, nil)
	k.Run()
	if got == nil {
		t.Fatal("switch delivered nothing")
	}
	if got.VC != vc(20) {
		t.Fatalf("VC not translated: %v", got.VC)
	}
	if !bytes.Equal(got.SDU, payload) {
		t.Fatal("payload corrupted through switch")
	}
	if sw.Stats().Routed == 0 || sw.Stats().NoRoute != 0 {
		t.Fatalf("switch stats %+v", sw.Stats())
	}
}

func TestSwitchDropsUnrouted(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	sw := NewSwitch(k, "sw", 2, units.STS3cPayload, 16)
	a.Iface.SetOutput(sw.Input(0))
	a.Iface.OpenVC(vc(99))
	a.Iface.Send(vc(99), []byte{1}, nil)
	k.Run()
	if sw.Stats().NoRoute == 0 {
		t.Fatal("unrouted cells not counted")
	}
}

func TestSwitchCongestionDrops(t *testing.T) {
	// Two inputs converge on one output: the output queue must overflow
	// and drop, and the survivors' frames still reassemble or fail
	// cleanly downstream.
	k := sim.NewKernel()
	a, _ := NewStation(k, nic.DefaultConfig("a"))
	b, _ := NewStation(k, nic.DefaultConfig("b"))
	c, _ := NewStation(k, nic.DefaultConfig("c"))
	sw := NewSwitch(k, "sw", 3, units.STS3cPayload, 8)
	// Unequal fiber runs into the switch break the senders' cell-clock
	// phase lock, so overflow drops hit both flows (as jittered real
	// arrivals would).
	linkA := phy.NewCellLink(k, 1000, 11, sw.Input(0))
	linkB := phy.NewCellLink(k, 2400, 12, sw.Input(1))
	a.Iface.SetOutput(linkA.Send)
	b.Iface.SetOutput(linkB.Send)
	sw.AttachOutput(2, c.Iface.DeliverCell)
	sw.Route(0, vc(1), 2, vc(1))
	sw.Route(1, vc(2), 2, vc(2))
	a.Iface.OpenVC(vc(1))
	b.Iface.OpenVC(vc(2))
	c.Iface.OpenVC(vc(1))
	c.Iface.OpenVC(vc(2))
	delivered := 0
	c.Iface.OnReceive(func(d nic.Delivered) { delivered++ })
	// Both senders blast simultaneously: 2x line rate into 1x output.
	deadline := sim.Time(10 * sim.Millisecond)
	// Different packet sizes give the two flows different burst/gap
	// rhythms, so overflow drops land mid-frame on both.
	NewSource(k, a, vc(1), 9180, deadline).Start(3)
	NewSource(k, b, vc(2), 1000, deadline).Start(3)
	k.RunUntil(deadline + sim.Time(10*sim.Millisecond))
	if sw.Stats().Dropped == 0 {
		t.Fatal("2:1 overload produced no switch drops")
	}
	st := c.Iface.Stats()
	if st.Rx.AALErrors == 0 {
		t.Fatal("switch drops never surfaced as AAL errors")
	}
	_ = delivered // some frames may survive; all that matters is clean failure
}

func TestBaselineStationPair(t *testing.T) {
	k := sim.NewKernel()
	a := NewBaselineStation(k, "a", baseline.DefaultConfig())
	b := NewBaselineStation(k, "b", baseline.DefaultConfig())
	ConnectBaseline(k, a, b, LinkConfig{Delay: 1000, Seed: 4})
	b.Adapter.OpenVC(vc(3))
	var got []byte
	b.Adapter.OnReceive(func(v atm.VC, sdu []byte) { got = sdu })
	payload := bytes.Repeat([]byte{9}, 800)
	a.Adapter.Send(vc(3), payload, nil)
	k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("baseline station pair failed")
	}
}

func TestHardwiredStation(t *testing.T) {
	k := sim.NewKernel()
	a, err := NewHardwiredStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHardwiredStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	Connect(k, a, b, LinkConfig{Delay: 1000, Seed: 5})
	a.Iface.OpenVC(vc(1))
	b.Iface.OpenVC(vc(1))
	got := 0
	b.Iface.OnReceive(func(d nic.Delivered) { got++ })
	a.Iface.Send(vc(1), []byte{1, 2, 3, 4}, nil)
	k.Run()
	if got != 1 {
		t.Fatal("hardwired station pair failed")
	}
}

func TestSwitchInvalidGeometryPanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("zero ports did not panic")
		}
	}()
	NewSwitch(k, "x", 0, units.STS3cPayload, 8)
}

func TestSwitchRateMismatchCongestion(t *testing.T) {
	// A 622 Mb/s sender through a switch whose output port drains at
	// 155 Mb/s: the 4:1 rate mismatch must overflow the output queue for
	// a greedy flow, and a properly paced flow must pass clean.
	run := func(paceCellsPerSec float64) (drops uint64, delivered uint64) {
		k := sim.NewKernel()
		cfgA := nic.DefaultConfig("a")
		cfgA.PayloadRate = units.STS12cPayload
		a, _ := NewStation(k, cfgA)
		c, _ := NewStation(k, nic.DefaultConfig("c")) // 155 edge station
		sw := NewSwitch(k, "sw", 2, units.STS12cPayload, 32)
		sw.SetPortRate(1, units.STS3cPayload)
		a.Iface.SetOutput(sw.Input(0))
		sw.AttachOutput(1, c.Iface.DeliverCell)
		sw.Route(0, vc(1), 1, vc(1))
		a.Iface.OpenVC(vc(1))
		c.Iface.OpenVC(vc(1))
		if paceCellsPerSec > 0 {
			a.Iface.SetPeakCellRate(vc(1), paceCellsPerSec)
		}
		got := uint64(0)
		c.Iface.OnReceive(func(nic.Delivered) { got++ })
		deadline := sim.Time(10 * sim.Millisecond)
		NewSource(k, a, vc(1), 9180, deadline).Start(3)
		k.RunUntil(deadline + sim.Time(20*sim.Millisecond))
		return sw.Stats().Dropped, got
	}
	greedyDrops, _ := run(0)
	if greedyDrops == 0 {
		t.Fatal("4:1 rate mismatch produced no switch drops")
	}
	// Paced to 300k cells/s (< 353k of STS-3c payload): clean.
	pacedDrops, pacedDelivered := run(300_000)
	if pacedDrops != 0 {
		t.Fatalf("paced flow still dropped %d at the slow port", pacedDrops)
	}
	if pacedDelivered == 0 {
		t.Fatal("paced flow delivered nothing")
	}
}

// Property: under random sizes, random VC assignment and random loss, the
// receiver delivers a prefix-correct per-VC subsequence of what was sent:
// nothing corrupted, nothing reordered, nothing invented.
func TestPropertyEndToEndIntegrity(t *testing.T) {
	run := func(seed uint64, sizes []uint16, lossMilli uint8) bool {
		k := sim.NewKernel()
		a, _ := NewStation(k, nic.DefaultConfig("a"))
		b, _ := NewStation(k, nic.DefaultConfig("b"))
		loss := float64(lossMilli%20) / 1000
		Connect(k, a, b, LinkConfig{Delay: 5000, LossProb: loss, Seed: seed})
		vcs := []atm.VC{{VCI: 1}, {VCI: 2}, {VCI: 3}}
		for _, vc := range vcs {
			a.Iface.OpenVC(vc)
			b.Iface.OpenVC(vc)
		}
		type msg struct {
			vc  atm.VC
			sdu []byte
		}
		var sent []msg
		var recv []msg
		b.Iface.OnReceive(func(d nic.Delivered) {
			recv = append(recv, msg{d.VC, d.SDU})
		})
		for i, s := range sizes {
			n := int(s)%5000 + 1
			payload := make([]byte, n)
			for j := range payload {
				payload[j] = byte(j*7 + i)
			}
			vc := vcs[i%len(vcs)]
			sent = append(sent, msg{vc, payload})
			if err := a.Iface.Send(vc, payload, nil); err != nil {
				return false
			}
		}
		k.Run()
		// Per VC: received messages are a subsequence (in fact a
		// loss-filtered subsequence preserving order) of sent ones.
		for _, vc := range vcs {
			var s, r [][]byte
			for _, m := range sent {
				if m.vc == vc {
					s = append(s, m.sdu)
				}
			}
			for _, m := range recv {
				if m.vc == vc {
					r = append(r, m.sdu)
				}
			}
			si := 0
			for _, got := range r {
				found := false
				for si < len(s) {
					if bytes.Equal(s[si], got) {
						found = true
						si++
						break
					}
					si++
				}
				if !found {
					return false
				}
			}
		}
		if loss == 0 && len(recv) != len(sent) {
			return false
		}
		return true
	}
	seeds := []uint64{1, 2, 3}
	for _, seed := range seeds {
		sizes := make([]uint16, 12)
		rng := sim.NewRand(seed * 77)
		for i := range sizes {
			sizes[i] = uint16(rng.Uint64())
		}
		if !run(seed, sizes, uint8(seed*7)) {
			t.Fatalf("integrity violated for seed %d", seed)
		}
	}
}
