package baseline

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/units"
)

func pkt(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*11 + 3)
	}
	return b
}

// hostSARRig wires a HostSAR sender to a HostSAR receiver.
type hostSARRig struct {
	k        *sim.Kernel
	tx, rx   *HostSAR
	hTx, hRx *host.Host
	received [][]byte
}

func newHostSARRig() *hostSARRig {
	k := sim.NewKernel()
	r := &hostSARRig{k: k}
	r.hTx = host.New(k, host.DefaultConfig())
	r.hRx = host.New(k, host.DefaultConfig())
	busTx := bus.New(k, bus.DefaultConfig())
	busRx := bus.New(k, bus.DefaultConfig())
	r.tx = NewHostSAR(k, DefaultConfig(), r.hTx, busTx)
	r.rx = NewHostSAR(k, DefaultConfig(), r.hRx, busRx)
	link := phy.NewCellLink(k, 10_000, 1, r.rx)
	r.tx.SetOutput(link.Send)
	r.rx.OnReceive(func(vc atm.VC, sdu []byte) { r.received = append(r.received, sdu) })
	return r
}

func TestHostSAREndToEnd(t *testing.T) {
	// A short packet: the host-bound receiver keeps its 32-cell FIFO
	// backlog under control. (Long packets overflow it — that is the
	// architecture's failure mode and is tested separately.)
	r := newHostSARRig()
	vc := atm.VC{VCI: 5}
	r.rx.OpenVC(vc)
	if err := r.tx.Send(vc, pkt(1000), nil); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if len(r.received) != 1 || !bytes.Equal(r.received[0], pkt(1000)) {
		t.Fatal("baseline end-to-end failed")
	}
}

func TestHostSARPerCellInterrupts(t *testing.T) {
	// Closed-loop short packets (no FIFO overflow): the receive host
	// must take at least one interrupt per cell.
	r := newHostSARRig()
	vc := atm.VC{VCI: 5}
	r.rx.OpenVC(vc)
	sent := 1
	r.rx.OnReceive(func(vc atm.VC, sdu []byte) {
		r.received = append(r.received, sdu)
		if sent < 5 {
			sent++
			r.tx.Send(vc, pkt(1000), nil)
		}
	})
	r.tx.Send(vc, pkt(1000), nil)
	r.k.Run()
	st := r.rx.Stats()
	if st.RxDrops != 0 {
		t.Fatalf("unexpected drops in closed-loop run: %+v", st)
	}
	cells := st.RxCells
	if got := r.hRx.Interrupts(); got < cells {
		t.Fatalf("receive host took %d interrupts for %d cells", got, cells)
	}
	if len(r.received) != 5 {
		t.Fatalf("delivered %d of 5", len(r.received))
	}
}

func TestHostSARHostBoundThroughput(t *testing.T) {
	// The baseline's receive host burns ~290+ instructions plus an
	// interrupt per cell: at 25 MIPS that is > 11.6 µs per 2.83 µs cell
	// slot — it cannot even run at 25% of line rate.
	r := newHostSARRig()
	vc := atm.VC{VCI: 5}
	r.rx.OpenVC(vc)
	deadline := sim.Time(20 * sim.Millisecond)
	var send func()
	send = func() {
		if r.k.Now() > deadline {
			return
		}
		r.tx.Send(vc, pkt(9180), send)
	}
	send()
	send()
	r.k.RunUntil(deadline + sim.Time(10*sim.Millisecond))
	gotBps := units.ThroughputBps(int64(r.rx.Stats().RxBytes), r.k.Now())
	if gotBps > 40e6 {
		t.Fatalf("baseline goodput %.1f Mb/s implausibly high for a host-bound path", gotBps/1e6)
	}
	if r.rx.Stats().RxPackets == 0 && r.rx.Stats().RxDrops == 0 {
		t.Fatal("baseline receiver made no progress at all")
	}
}

func TestHostSARRxOverflowUnderLoad(t *testing.T) {
	// Cells arrive every 2.83 µs but the host needs >10 µs per cell; the
	// 32-cell RX FIFO must overflow quickly.
	r := newHostSARRig()
	vc := atm.VC{VCI: 5}
	r.rx.OpenVC(vc)
	r.tx.Send(vc, pkt(9180), nil)
	r.k.Run()
	if r.rx.Stats().RxDrops == 0 {
		t.Fatal("no RX drops despite host-bound receiver")
	}
}

func TestHostSARValidation(t *testing.T) {
	r := newHostSARRig()
	if err := r.tx.Send(atm.VC{VCI: 1}, nil, nil); !errors.Is(err, ErrBadSDU) {
		t.Fatalf("err = %v", err)
	}
	if err := r.tx.Send(atm.VC{VCI: 1}, make([]byte, aal.MaxSDU+1), nil); !errors.Is(err, ErrBadSDU) {
		t.Fatalf("err = %v", err)
	}
}

func TestHostSAROpenVCIdempotent(t *testing.T) {
	r := newHostSARRig()
	vc := atm.VC{VCI: 9}
	r.rx.OpenVC(vc)
	r.rx.OpenVC(vc) // must not reset state or panic
	r.tx.Send(vc, pkt(100), nil)
	r.k.Run()
	if len(r.received) != 1 {
		t.Fatal("delivery broken after double open")
	}
}

func TestHardwiredRemovesEngineBottleneck(t *testing.T) {
	// Drive the RECEIVE side directly with line-rate single-cell frames
	// at STS-12c (no sender in the way). The programmable 25 MHz engine
	// cannot keep up and drops cells; the hardwired receiver keeps up
	// exactly.
	run := func(hardwired bool) (packets, drops uint64) {
		k := sim.NewKernel()
		h := host.New(k, host.DefaultConfig())
		b := bus.New(k, bus.DefaultConfig())
		cfg := nic.DefaultConfig("rx")
		cfg.PayloadRate = units.STS12cPayload
		var iface *nic.Interface
		var err error
		if hardwired {
			iface, err = NewHardwired(k, cfg, h, b)
		} else {
			iface, err = nic.New(k, cfg, h, b)
		}
		if err != nil {
			panic(err)
		}
		vc := atm.VC{VCI: 3}
		iface.OpenVC(vc)

		// Inject back-to-back single-cell AAL5 frames at the cell rate.
		seg, _ := aal.New(aal.AAL5, 0)
		cellTime := units.CellTime(units.STS12cPayload)
		const nCells = 4000
		for i := 0; i < nCells; i++ {
			i := i
			k.At(sim.Time(i)*cellTime, func() {
				cell := iface.Pool().Get()
				seg.Begin(pkt(40))
				pt, _, _ := seg.Next(&cell.Payload)
				cell.Header = atm.Header{Format: atm.UNI, VPI: vc.VPI, VCI: vc.VCI, PT: pt}
				iface.DeliverCell(cell)
			})
		}
		k.Run()
		st := iface.Stats()
		return st.Rx.Packets, st.Rx.FifoDrops
	}
	progPkts, progDrops := run(false)
	hardPkts, hardDrops := run(true)
	if progDrops == 0 {
		t.Fatalf("programmable engine kept up with STS-12c minimum frames (%d pkts) — cost model broken", progPkts)
	}
	if hardDrops != 0 {
		t.Fatalf("hardwired receiver dropped %d cells", hardDrops)
	}
	if hardPkts <= progPkts {
		t.Fatalf("hardwired %d packets <= programmable %d", hardPkts, progPkts)
	}
}
