package baseline

import (
	"errors"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/fifo"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/units"
)

// HostSAR is the per-cell-interrupt baseline adapter: FIFOs and a framer,
// nothing else. All adaptation-layer work runs on the host CPU, and every
// cell crosses the bus under programmed I/O.
type HostSAR struct {
	k       *sim.Kernel
	hst     *host.Host
	dev     *bus.Device
	pioTime sim.Duration // wall time of one cell's PIO transfer
	pool    *atm.Pool
	out     func(*atm.Cell)
	maxSDU  int
	aalType aal.Type

	// Transmit.
	txFifo     *fifo.Ring[*atm.Cell]
	seg        aal.Segmenter
	sendQ      []hostTxJob
	txBusy     bool
	txStalled  bool
	stalledJob *hostTxJob
	cellTime   sim.Duration
	clockOn    bool

	// Receive.
	rxFifo    *fifo.Ring[*atm.Cell]
	ras       map[atm.VC]aal.Reassembler
	rxPending bool
	onDeliver func(vc atm.VC, sdu []byte)

	stats HostSARStats
}

type hostTxJob struct {
	vc     atm.VC
	sdu    []byte
	onSent func()
}

// HostSARStats counts baseline events.
type HostSARStats struct {
	TxPackets uint64
	TxCells   uint64
	RxCells   uint64
	RxDrops   uint64
	RxPackets uint64
	RxBytes   uint64
	AALErrors uint64
	IdleSlots uint64
}

// Config for the baseline adapter.
type Config struct {
	PayloadRate units.BitRate
	AAL         aal.Type
	TxFifoDepth int
	RxFifoDepth int
	MaxSDU      int
}

// DefaultConfig mirrors the programmable interface's defaults.
func DefaultConfig() Config {
	return Config{
		PayloadRate: units.STS3cPayload,
		AAL:         aal.AAL5,
		TxFifoDepth: 32,
		RxFifoDepth: 32,
		MaxSDU:      aal.MaxSDU,
	}
}

// Errors.
var (
	ErrBadSDU = errors.New("baseline: SDU empty or oversize")
)

// NewHostSAR builds the baseline adapter on the given host and bus.
func NewHostSAR(k *sim.Kernel, cfg Config, hst *host.Host, b *bus.Bus) *HostSAR {
	if cfg.MaxSDU <= 0 || cfg.MaxSDU > aal.MaxSDU {
		cfg.MaxSDU = aal.MaxSDU
	}
	seg, _ := aal.New(cfg.AAL, 0)
	h := &HostSAR{
		k: k, hst: hst, dev: b.Attach("hostsar"),
		pioTime:  sim.Duration(cellPIOWords) * b.Config().PIOTime,
		pool:     atm.NewPool(cfg.TxFifoDepth + cfg.RxFifoDepth + 16),
		maxSDU:   cfg.MaxSDU,
		aalType:  cfg.AAL,
		txFifo:   fifo.NewRing[*atm.Cell](cfg.TxFifoDepth),
		rxFifo:   fifo.NewRing[*atm.Cell](cfg.RxFifoDepth),
		seg:      seg,
		ras:      make(map[atm.VC]aal.Reassembler),
		cellTime: units.CellTime(cfg.PayloadRate),
		out:      nil,
	}
	h.out = func(c *atm.Cell) { h.pool.Put(c) }
	return h
}

// Pool returns the adapter's cell pool.
func (h *HostSAR) Pool() *atm.Pool { return h.pool }

// Stats returns the counters.
func (h *HostSAR) Stats() HostSARStats { return h.stats }

// AttachSink attaches the transmit side to a downstream consumer
// (atm.CellProducer).
func (h *HostSAR) AttachSink(out atm.CellConsumer) {
	if out == nil {
		panic("baseline: nil output")
	}
	h.out = out.DeliverCell
}

// SetOutput is the func-valued convenience form of AttachSink.
func (h *HostSAR) SetOutput(out func(*atm.Cell)) {
	if out == nil {
		panic("baseline: nil output")
	}
	h.out = out
}

// OnReceive registers the delivery callback.
func (h *HostSAR) OnReceive(fn func(vc atm.VC, sdu []byte)) { h.onDeliver = fn }

// OpenVC registers a receive VC (software demux is a map lookup whose cost
// is inside hostRxCellInstr).
func (h *HostSAR) OpenVC(vc atm.VC) {
	if _, ok := h.ras[vc]; !ok {
		_, ras := aal.New(h.aalType, h.maxSDU+64)
		h.ras[vc] = ras
	}
}

// Send queues an SDU. The host pays the normal per-packet stack cost, then
// per-cell software segmentation plus PIO for every cell.
func (h *HostSAR) Send(vc atm.VC, sdu []byte, onSent func()) error {
	if len(sdu) == 0 || len(sdu) > h.maxSDU {
		return ErrBadSDU
	}
	buf := make([]byte, len(sdu))
	copy(buf, sdu)
	h.hst.TxPacket(len(buf), func() {
		h.sendQ = append(h.sendQ, hostTxJob{vc: vc, sdu: buf, onSent: onSent})
		h.txKick()
	})
	return nil
}

func (h *HostSAR) txKick() {
	if h.txBusy || len(h.sendQ) == 0 {
		return
	}
	h.txBusy = true
	job := h.sendQ[0]
	h.sendQ = h.sendQ[:copy(h.sendQ, h.sendQ[1:])]
	if _, err := h.seg.Begin(job.sdu); err != nil {
		panic("baseline: segmenter rejected validated SDU")
	}
	h.txCellLoop(job)
}

// txCellLoop emits one cell per iteration: host CPU does the SAR work, then
// PIO pushes the cell into the adapter FIFO.
func (h *HostSAR) txCellLoop(job hostTxJob) {
	if h.txFifo.Full() {
		// Host spins/backs off until the framer drains a slot; the tick
		// callback resumes us. (The real driver would poll a status
		// register; the polling cost is inside hostTxCellInstr.)
		h.txStalled = true
		h.stalledJob = &job
		return
	}
	h.hst.Work("tx-cell", hostTxCellInstr, func() {
		h.dev.PIO(cellPIOWords, nil) // bus occupancy
		// The CPU spins for the duration of its own programmed I/O.
		h.hst.Spin("tx-pio", h.pioTime, func() {
			cell := h.pool.Get()
			pt, done, err := h.seg.Next(&cell.Payload)
			if err != nil {
				panic("baseline: segmentation failed mid-frame")
			}
			cell.Header = atm.Header{Format: atm.UNI, VPI: job.vc.VPI, VCI: job.vc.VCI, PT: pt}
			if !h.txFifo.Push(cell) {
				// Slot was taken between check and push: treat as
				// stall and retry on next drain.
				h.pool.Put(cell)
				h.txStalled = true
				h.stalledJob = &job
				return
			}
			h.stats.TxCells++
			h.startClock()
			if done {
				h.stats.TxPackets++
				h.txBusy = false
				if job.onSent != nil {
					job.onSent()
				}
				h.txKick()
				return
			}
			h.txCellLoop(job)
		})
	})
}

func (h *HostSAR) startClock() {
	if h.clockOn {
		return
	}
	h.clockOn = true
	h.k.After(h.cellTime, h.tick)
}

func (h *HostSAR) tick() {
	cell, ok := h.txFifo.Pop()
	if ok {
		h.out(cell)
		if h.txStalled && h.stalledJob != nil {
			h.txStalled = false
			job := *h.stalledJob
			h.stalledJob = nil
			h.txCellLoop(job)
		}
	} else {
		h.stats.IdleSlots++
		if !h.txBusy && len(h.sendQ) == 0 {
			h.clockOn = false
			return
		}
	}
	h.k.After(h.cellTime, h.tick)
}

// DeliverCell is the link-side entry: every cell interrupts the host, which
// PIO-reads it and runs software reassembly.
func (h *HostSAR) DeliverCell(c *atm.Cell) {
	if !h.rxFifo.Push(c) {
		h.stats.RxDrops++
		h.pool.Put(c)
		return
	}
	h.rxKick()
}

func (h *HostSAR) rxKick() {
	if h.rxPending {
		return
	}
	cell, ok := h.rxFifo.Pop()
	if !ok {
		return
	}
	h.rxPending = true
	h.stats.RxCells++
	// Interrupt + PIO read of the cell + software SAR.
	h.hst.RxCellInterrupt(0, false, func() {
		h.dev.PIO(cellPIOWords, nil) // bus occupancy
		h.hst.Spin("rx-pio", h.pioTime, func() {
			h.hst.Work("rx-cell-sar", hostRxCellInstr, func() {
				h.rxProcess(cell)
			})
		})
	})
}

func (h *HostSAR) rxProcess(cell *atm.Cell) {
	defer func() {
		h.pool.Put(cell)
		h.rxPending = false
		h.rxKick()
	}()
	ras, ok := h.ras[cell.Header.VC()]
	if !ok || !cell.Header.PT.User() || cell.Header.IsIdle() {
		return
	}
	res, err := ras.Push(&cell.Payload, cell.Header.PT)
	if err != nil {
		h.stats.AALErrors++
	}
	if res != nil {
		// Per-packet stack cost on the final cell.
		sdu := res.SDU
		vc := cell.Header.VC()
		h.hst.RxCellInterrupt(len(sdu), true, func() {
			h.stats.RxPackets++
			h.stats.RxBytes += uint64(len(sdu))
			if h.onDeliver != nil {
				h.onDeliver(vc, sdu)
			}
		})
	}
}
