// Package baseline implements the two architectures the paper's design is
// argued against:
//
//   - HostSAR: a "dumb" adapter that is nothing but a framer and a pair of
//     cell FIFOs. The host CPU segments and reassembles in software, moves
//     every cell across the bus by programmed I/O, and takes an interrupt
//     per received cell. This was how several contemporary interfaces
//     worked, and it is what makes the host the bottleneck (experiment E4).
//
//   - Hardwired: the other extreme — fully fixed-function SAR hardware with
//     per-packet host involvement, i.e. the paper's datapath with the
//     protocol engines replaced by gates. It is as fast as the wire but
//     frozen: no new adaptation layer without new silicon. Its cost model
//     here is the programmable interface with effectively infinite engine
//     speed, which is exactly what "the firmware is free" means.
package baseline

import (
	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/sim"
)

// NewHardwired returns a nic.Interface whose protocol engines are infinitely
// fast fixed-function hardware (1 GHz, CPI 1, zero dispatch — three orders
// of magnitude beyond the cell time, so per-cell firmware cost vanishes).
func NewHardwired(k *sim.Kernel, cfg nic.Config, hst *host.Host, b *bus.Bus) (*nic.Interface, error) {
	cfg.Engine = engine.Config{ClockHz: 1_000_000_000, CPIMilli: 1000, DispatchInstr: 0}
	return nic.New(k, cfg, hst, b)
}

// Software SAR costs for the HostSAR baseline, in host instructions.
// Counted the same way as the firmware tables in package nic, but on the
// host: no hardware CRC, no header-build assist, everything touched by the
// CPU.
const (
	// hostTxCellInstr: build the SAR state, software CRC-32 contribution
	// for 48 bytes (~3 instr/byte with a table), header construction.
	hostTxCellInstr = 200
	// hostRxCellInstr: software reassembly append + CRC update per cell,
	// excluding the interrupt overhead (charged separately) and the PIO
	// data movement (charged to the bus).
	hostRxCellInstr = 190
	// cellPIOWords: a 53-byte cell is 13.25 words; 14 PIO accesses move
	// it through the adapter's window register.
	cellPIOWords = 14
)
