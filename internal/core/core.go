// Package core is the library's front door: it assembles the simulated
// hardware (host, bus, protocol engines, FIFOs, fiber) into endpoints and
// testbeds with a small API, so examples and downstream users don't touch
// the wiring.
//
// The architecture under the hood is the SIGCOMM '91 host–network interface:
// per-packet host involvement, per-cell protocol engines, per-bit hardware.
// See DESIGN.md for the full inventory and the experiment index.
package core

import (
	"fmt"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bufmgr"
	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// Re-exported option enums, so callers need only import core.
const (
	// Rate155 selects STS-3c (155.52 Mb/s line, 149.76 payload).
	Rate155 = units.STS3cPayload
	// Rate622 selects STS-12c (622.08 Mb/s line, 599.04 payload).
	Rate622 = units.STS12cPayload
)

// Options configures an endpoint. The zero value selects the board as
// built: STS-3c, AAL5, 25 MHz engines, CAM lookup, paged buffers.
type Options struct {
	// Rate is the link payload rate (Rate155 or Rate622).
	Rate units.BitRate
	// AAL34 selects the AAL3/4 firmware build instead of AAL5.
	AAL34 bool
	// EngineMHz overrides the protocol engines' clock (default 25).
	EngineMHz int
	// FifoCells overrides both cell FIFO depths (default 32).
	FifoCells int
	// Lookup overrides the VC lookup strategy (default CAM).
	Lookup nic.LookupKind
	// Buffers overrides the reassembly organization (default paged).
	Buffers bufmgr.Organization
	// AdapterSRAM bounds reassembly memory in bytes (default 256 KiB).
	AdapterSRAM int
	// Hardwired replaces the programmable engines with fixed-function
	// hardware (the inflexible baseline).
	Hardwired bool
	// RxEngines sets the number of parallel receive engines (default 1).
	RxEngines int
	// InterleaveVCs enables multi-VC interleaved segmentation on transmit.
	InterleaveVCs bool
	// ReassemblyTimeout ages out partial frames abandoned by cell loss,
	// reclaiming their adapter buffers (0 = disabled; see nic.Config).
	ReassemblyTimeout sim.Duration
	// AlarmPeriod overrides the fault-management RDI cadence (0 = 1 ms).
	AlarmPeriod sim.Duration
	// AlarmClearTimeout overrides the alarm soak interval (0 = 2.5 ms).
	AlarmClearTimeout sim.Duration
}

func (o Options) nicConfig(name string) nic.Config {
	cfg := nic.DefaultConfig(name)
	if o.Rate != 0 {
		cfg.PayloadRate = o.Rate
	}
	if o.AAL34 {
		cfg.AAL = aal.AAL34
	}
	if o.EngineMHz > 0 {
		cfg.Engine.ClockHz = int64(o.EngineMHz) * 1_000_000
	}
	if o.FifoCells > 0 {
		cfg.TxFifoDepth = o.FifoCells
		cfg.RxFifoDepth = o.FifoCells
	}
	cfg.Lookup = o.Lookup
	cfg.BufOrg = o.Buffers
	if o.AdapterSRAM > 0 {
		cfg.AdapterSRAM = o.AdapterSRAM
	}
	cfg.RxEngines = o.RxEngines
	cfg.InterleaveVCs = o.InterleaveVCs
	cfg.ReassemblyTimeout = o.ReassemblyTimeout
	cfg.AlarmPeriod = o.AlarmPeriod
	cfg.AlarmClearTimeout = o.AlarmClearTimeout
	return cfg
}

// VC identifies a virtual connection (re-exported from the cell layer).
type VC = atm.VC

// Packet is a received SDU.
type Packet struct {
	VC    VC
	Data  []byte
	Cells int
	At    sim.Time
}

// Endpoint is one workstation plus interface.
type Endpoint struct {
	name    string
	station *netsim.Station
	k       *sim.Kernel
}

// Testbed is a complete two-endpoint simulation: A and B connected by a
// duplex fiber.
type Testbed struct {
	kernel *sim.Kernel
	net    *Network
	A, B   *Endpoint
	AtoB   *phy.CellLink
	BtoA   *phy.CellLink
}

// LinkOptions configures the testbed fiber.
type LinkOptions struct {
	// DistanceKm sets propagation delay at 5 µs/km (default 2 km).
	DistanceKm float64
	// CellLossProb injects uniform cell loss.
	CellLossProb float64
	// Seed makes fault injection reproducible.
	Seed uint64
}

// NewTestbed builds two identical endpoints connected back to back. It is a
// thin wrapper over NewNetwork: a two-endpoint spec with a single duplex
// fiber named "ab".
func NewTestbed(opts Options, link LinkOptions) (*Testbed, error) {
	if link.DistanceKm == 0 {
		link.DistanceKm = 2
	}
	n, err := NewNetwork(NetworkSpec{
		Endpoints: []EndpointSpec{
			{Name: "A", Options: opts},
			{Name: "B", Options: opts},
		},
		Links: []LinkSpec{{
			Name:       "ab",
			A:          NodeRef{Node: "A"},
			B:          NodeRef{Node: "B"},
			DistanceKm: link.DistanceKm,
			LossProb:   link.CellLossProb,
			Seed:       link.Seed + 1,
		}},
	})
	if err != nil {
		return nil, err
	}
	l := n.Link("ab")
	return &Testbed{
		kernel: n.Kernel(),
		net:    n,
		A:      n.Endpoint("A"),
		B:      n.Endpoint("B"),
		AtoB:   l.Fwd,
		BtoA:   l.Rev,
	}, nil
}

// Network exposes the underlying builder network.
func (t *Testbed) Network() *Network { return t.net }

// Kernel exposes the simulation clock/scheduler.
func (t *Testbed) Kernel() *sim.Kernel { return t.kernel }

// Run drains all scheduled work and returns the final simulated time.
func (t *Testbed) Run() sim.Time { return t.kernel.Run() }

// RunFor advances the simulation by d.
func (t *Testbed) RunFor(d sim.Duration) sim.Time { return t.kernel.RunFor(d) }

// Now returns the current simulated time.
func (t *Testbed) Now() sim.Time { return t.kernel.Now() }

// OpenVC opens vc on both endpoints (each direction).
func (t *Testbed) OpenVC(vc VC) error {
	if err := t.A.station.Iface.OpenVC(vc); err != nil {
		return fmt.Errorf("endpoint A: %w", err)
	}
	if err := t.B.station.Iface.OpenVC(vc); err != nil {
		return fmt.Errorf("endpoint B: %w", err)
	}
	return nil
}

// Name returns the endpoint's spec name.
func (e *Endpoint) Name() string { return e.name }

// Station exposes the underlying netsim station (for traffic sources and
// lower-level wiring).
func (e *Endpoint) Station() *netsim.Station { return e.station }

// Interface exposes the endpoint's interface model for stats and tuning.
func (e *Endpoint) Interface() *nic.Interface { return e.station.Iface }

// Host exposes the endpoint's host CPU model.
func (e *Endpoint) Host() *host.Host { return e.station.Host }

// Bus exposes the endpoint's I/O bus model.
func (e *Endpoint) Bus() *bus.Bus { return e.station.Bus }

// Send queues data for transmission on vc. onSent (may be nil) fires when
// the host could reuse the buffer (after the transmit-complete interrupt).
func (e *Endpoint) Send(vc VC, data []byte, onSent func()) error {
	return e.station.Iface.Send(vc, data, onSent)
}

// OnReceive registers the delivery callback.
func (e *Endpoint) OnReceive(fn func(Packet)) {
	e.station.Iface.OnReceive(func(d nic.Delivered) {
		fn(Packet{VC: d.VC, Data: d.SDU, Cells: d.Cells, At: d.At})
	})
}

// Stats returns the endpoint interface's counters.
func (e *Endpoint) Stats() nic.Stats { return e.station.Iface.Stats() }

// EngineFor returns the endpoint's engines for headroom analysis.
func (e *Endpoint) Engines() (tx, rx *engine.Engine) {
	return e.station.Iface.TxEngine(), e.station.Iface.RxEngine()
}

// SetPeakCellRate paces a VC's transmit path (see nic.Interface).
func (e *Endpoint) SetPeakCellRate(vc VC, cellsPerSec float64) error {
	return e.station.Iface.SetPeakCellRate(vc, cellsPerSec)
}

// Ping sends an F5 OAM loopback on vc; reply fires the handler registered
// with OnPingReply.
func (e *Endpoint) Ping(vc VC, correlation uint32) error {
	return e.station.Iface.SendLoopback(vc, correlation)
}

// OnPingReply registers the loopback-reply handler.
func (e *Endpoint) OnPingReply(fn func(vc VC, correlation uint32)) {
	e.station.Iface.OnLoopbackReply(fn)
}

// OnAlarm registers the fault-management handler: AIS/RDI declare and clear
// transitions per VC, LOS per link (see nic.Interface.OnAlarm).
func (e *Endpoint) OnAlarm(fn func(nic.AlarmEvent)) {
	e.station.Iface.OnAlarm(fn)
}

// SetContract installs a full traffic contract on a VC's transmit path
// (see nic.Interface.SetContract).
func (e *Endpoint) SetContract(vc VC, c tm.TrafficContract) error {
	return e.station.Iface.SetContract(vc, c)
}

// Goodput returns delivered SDU bits per second at endpoint e over the
// elapsed simulated time.
func (e *Endpoint) Goodput() float64 {
	return units.ThroughputBps(int64(e.Stats().Rx.Bytes), e.k.Now())
}
