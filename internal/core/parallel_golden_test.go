package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/units"
)

// parRun captures everything the parallel-vs-serial golden tests compare:
// every delivered SDU (merged across endpoints in (time, endpoint) order),
// the full metrics registry text, the canonical sorted trace-event stream
// with its matched spans, and the final simulated time.
type parRun struct {
	deliveries []string
	metrics    string
	events     []trace.NamedEvent
	spans      []trace.NamedSpan
	unmatched  int
	final      sim.Time
	shards     int
}

// delivery is one recorded SDU arrival, tagged for the cross-endpoint merge.
type delivery struct {
	at   sim.Time
	ep   string
	line string
}

// collector gathers deliveries per endpoint. Each endpoint's slice is
// appended only from that endpoint's partition goroutine (OnReceive runs on
// the endpoint's kernel), and the map itself is fully built before the run
// starts — so no locking is needed, even under the race detector.
type collector struct {
	byEp map[string]*[]delivery
}

func newCollector() *collector { return &collector{byEp: make(map[string]*[]delivery)} }

// watch registers a recording OnReceive hook on the named endpoint.
func (c *collector) watch(net *Network, ep string) {
	slot := new([]delivery)
	c.byEp[ep] = slot
	name := ep
	net.Endpoint(ep).OnReceive(func(p Packet) {
		head := p.Data
		if len(head) > 4 {
			head = head[:4]
		}
		*slot = append(*slot, delivery{at: p.At, ep: name, line: fmt.Sprintf(
			"t=%d ep=%s vc=%v len=%d cells=%d head=%x", int64(p.At), name, p.VC, len(p.Data), p.Cells, head)})
	})
}

// merged flattens the per-endpoint logs into one deterministic order:
// stable-sorted by (time, endpoint), preserving each endpoint's own
// chronological order — a pure function of what was delivered where and
// when, independent of shard interleaving.
func (c *collector) merged() []string {
	var all []delivery
	for _, slot := range c.byEp {
		all = append(all, *slot...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].ep < all[j].ep
	})
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.line
	}
	return out
}

// goldenRun builds mk()'s spec — serially when shards == 0, sharded
// otherwise — drives it, runs to completion and collects the comparison
// state. The drive callback must schedule stimulus via NodeKernel so it
// lands in the right partition.
func goldenRun(t *testing.T, mk func() NetworkSpec, shards int, drive func(net *Network, col *collector)) parRun {
	t.Helper()
	spec := mk()
	if shards == 0 && len(spec.Partitions) == 0 {
		k := sim.NewKernel()
		spec.Kernel = k
		spec.Recorder = trace.NewRecorder(k, 1<<16)
	} else {
		spec.Shards = shards
		// Capacity template only: each partition gets its own recorder.
		spec.Recorder = trace.NewRecorder(sim.NewKernel(), 1<<16)
	}
	net, err := NewNetwork(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	col := newCollector()
	drive(net, col)
	final := net.Run()

	run := parRun{deliveries: col.merged(), final: final, shards: net.Shards()}
	var sb bytes.Buffer
	if err := net.Metrics().Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	run.metrics = sb.String()
	run.events = net.TraceEvents()
	run.spans, run.unmatched = trace.NamedSpans(run.events)
	return run
}

// requireRunsIdentical pins the tentpole contract: a sharded run must be
// byte-identical to the serial reference — deliveries, registry, trace
// events, matched spans, final clock.
func requireRunsIdentical(t *testing.T, label string, serial, sharded parRun) {
	t.Helper()
	if sharded.final != serial.final {
		t.Errorf("%s: final time %d, serial %d", label, sharded.final, serial.final)
	}
	if len(sharded.deliveries) != len(serial.deliveries) {
		t.Fatalf("%s: delivered %d SDUs, serial %d", label, len(sharded.deliveries), len(serial.deliveries))
	}
	for i := range sharded.deliveries {
		if sharded.deliveries[i] != serial.deliveries[i] {
			t.Fatalf("%s delivery %d:\n  sharded: %s\n  serial:  %s", label, i, sharded.deliveries[i], serial.deliveries[i])
		}
	}
	if sharded.metrics != serial.metrics {
		t.Fatalf("%s: metrics registry diverges:\n--- sharded\n%s\n--- serial\n%s", label, sharded.metrics, serial.metrics)
	}
	if len(sharded.events) != len(serial.events) {
		t.Fatalf("%s: %d trace events, serial %d", label, len(sharded.events), len(serial.events))
	}
	for i := range sharded.events {
		if sharded.events[i] != serial.events[i] {
			t.Fatalf("%s trace event %d: sharded %+v, serial %+v", label, i, sharded.events[i], serial.events[i])
		}
	}
	if len(sharded.spans) != len(serial.spans) || sharded.unmatched != serial.unmatched {
		t.Fatalf("%s: %d spans (%d unmatched), serial %d (%d)",
			label, len(sharded.spans), sharded.unmatched, len(serial.spans), serial.unmatched)
	}
	for i := range sharded.spans {
		if sharded.spans[i] != serial.spans[i] {
			t.Fatalf("%s span %d: sharded %+v, serial %+v", label, i, sharded.spans[i], serial.spans[i])
		}
	}
}

// TestParallelGoldenPair is the E5-shaped golden test: two endpoints on one
// lossy cell-granular fiber exchanging small SDUs in both directions. The
// default partitioner puts each endpoint in its own shard, so every cell
// crosses the boundary — deliveries, loss draws and trace spans must land
// on the same nanoseconds as the serial run.
func TestParallelGoldenPair(t *testing.T) {
	mk := func() NetworkSpec {
		return NetworkSpec{
			Endpoints: []EndpointSpec{{Name: "a"}, {Name: "b"}},
			Links: []LinkSpec{{
				Name: "ab", A: NodeRef{Node: "a"}, B: NodeRef{Node: "b"},
				Delay: 10_000, Seed: 9, LossProb: 0.02,
			}},
			VCCs: []VCCSpec{
				{Name: "fwd", From: "a", To: "b", VC: VC{VCI: 101}},
				{Name: "rev", From: "b", To: "a", VC: VC{VCI: 202}},
			},
		}
	}
	sizes := []int{1, 44, 45, 89, 512, 1000, 2048, 40, 4000}
	drive := func(net *Network, col *collector) {
		col.watch(net, "a")
		col.watch(net, "b")
		for i, size := range sizes {
			data := make([]byte, size)
			for j := range data {
				data[j] = byte(i + j)
			}
			if err := net.Endpoint("a").Send(net.VCC("fwd").SourceVC, data, nil); err != nil {
				t.Fatal(err)
			}
			if err := net.Endpoint("b").Send(net.VCC("rev").SourceVC, data, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	serial := goldenRun(t, mk, 0, drive)
	if len(serial.deliveries) == 0 {
		t.Fatal("serial run delivered nothing")
	}
	for _, shards := range []int{2, 4} {
		run := goldenRun(t, mk, shards, drive)
		if run.shards != 2 { // two endpoints, no switches: two units
			t.Fatalf("shards=%d: built %d partitions, want 2", shards, run.shards)
		}
		requireRunsIdentical(t, fmt.Sprintf("pair shards=%d", shards), serial, run)
	}
}

// TestParallelGoldenSwitchCongestion is the E15-shaped golden test: two
// senders congesting one switch output port, with seeded loss on an access
// fiber and a zero-delay link that forces the receiver into the switch's
// partition. Drop attribution under congestion must merge back exactly.
func TestParallelGoldenSwitchCongestion(t *testing.T) {
	mk := func() NetworkSpec {
		return NetworkSpec{
			Endpoints: []EndpointSpec{
				{Name: "a"}, {Name: "b"},
				{Name: "c", Options: Options{ReassemblyTimeout: sim.Millisecond}},
			},
			Switches: []SwitchSpec{{Name: "sw", Ports: 3, QueueDepth: 16}},
			Links: []LinkSpec{
				{Name: "a-sw", A: NodeRef{Node: "a"}, B: NodeRef{Node: "sw", Port: 0}, Delay: 1000, Seed: 25, LossProb: 0.01},
				{Name: "b-sw", A: NodeRef{Node: "b"}, B: NodeRef{Node: "sw", Port: 1}, Delay: 2400, Seed: 26},
				// Zero delay: uncuttable, so c shares the switch's partition.
				{Name: "sw-c", A: NodeRef{Node: "sw", Port: 2}, B: NodeRef{Node: "c"}, Seed: 27},
			},
			VCCs: []VCCSpec{
				{Name: "a-c", From: "a", To: "c", VC: VC{VCI: 101}},
				{Name: "b-c", From: "b", To: "c", VC: VC{VCI: 201}},
			},
		}
	}
	drive := func(net *Network, col *collector) {
		col.watch(net, "c")
		for i := 0; i < 10; i++ {
			data := make([]byte, 3000)
			for j := range data {
				data[j] = byte(i ^ j)
			}
			if err := net.Endpoint("a").Send(net.VCC("a-c").SourceVC, data, nil); err != nil {
				t.Fatal(err)
			}
			if err := net.Endpoint("b").Send(net.VCC("b-c").SourceVC, data, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	serial := goldenRun(t, mk, 0, drive)
	if !strings.Contains(serial.metrics, "drop") {
		t.Fatalf("congestion workload produced no drop rows:\n%s", serial.metrics)
	}
	for _, shards := range []int{2, 4} {
		run := goldenRun(t, mk, shards, drive)
		if run.shards < 2 { // units: a, b, sw+c
			t.Fatalf("shards=%d: built %d partitions", shards, run.shards)
		}
		requireRunsIdentical(t, fmt.Sprintf("congestion shards=%d", shards), serial, run)
	}
}

// e16ShapedSpec mirrors the E16 experiment topology: a shaped CBR probe
// through a chain of tandem switches, each loaded by its own best-effort
// cross flow. All inter-node fibers have real propagation delays, so the
// default partitioner can cut every access link.
func e16ShapedSpec(nSw int) NetworkSpec {
	opts := Options{}
	spec := NetworkSpec{
		Endpoints: []EndpointSpec{
			{Name: "src", Options: opts},
			{Name: "dst", Options: opts},
		},
	}
	for i := 1; i <= nSw; i++ {
		spec.Switches = append(spec.Switches, SwitchSpec{
			Name: fmt.Sprintf("sw%d", i), Ports: 4, QueueDepth: 96,
		})
		spec.Endpoints = append(spec.Endpoints,
			EndpointSpec{Name: fmt.Sprintf("x%d", i), Options: opts})
		if i >= 2 {
			spec.Endpoints = append(spec.Endpoints,
				EndpointSpec{Name: fmt.Sprintf("sink%d", i), Options: opts})
		}
	}
	spec.Links = append(spec.Links, LinkSpec{
		Name: "src-sw1", A: NodeRef{Node: "src"},
		B: NodeRef{Node: "sw1", Port: 0}, Delay: 10_000, Seed: 60,
	})
	for i := 1; i < nSw; i++ {
		spec.Links = append(spec.Links, LinkSpec{
			Name:  fmt.Sprintf("sw%d-sw%d", i, i+1),
			A:     NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 1},
			B:     NodeRef{Node: fmt.Sprintf("sw%d", i+1), Port: 0},
			Delay: 50_000, Seed: uint64(60 + i),
		})
	}
	spec.Links = append(spec.Links, LinkSpec{
		Name: "last-dst", A: NodeRef{Node: fmt.Sprintf("sw%d", nSw), Port: 1},
		B: NodeRef{Node: "dst"}, Delay: 10_000, Seed: 70,
	})
	for i := 1; i <= nSw; i++ {
		spec.Links = append(spec.Links, LinkSpec{
			Name:  fmt.Sprintf("x%d-in", i),
			A:     NodeRef{Node: fmt.Sprintf("x%d", i)},
			B:     NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 2},
			Delay: sim.Duration(3_000 + 1_700*i), Seed: uint64(70 + i),
		})
		if i >= 2 {
			spec.Links = append(spec.Links, LinkSpec{
				Name:  fmt.Sprintf("sink%d-out", i),
				A:     NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 3},
				B:     NodeRef{Node: fmt.Sprintf("sink%d", i)},
				Delay: 2_000, Seed: uint64(80 + i),
			})
		}
	}
	ct := units.CellTime(units.STS3cPayload)
	spec.VCCs = []VCCSpec{
		{Name: "probe", From: "src", To: "dst", VC: atm.VC{VCI: 100},
			Contract: tm.CBRContract(5_000, 8*ct), Shape: true},
	}
	for i := 1; i <= nSw; i++ {
		to := fmt.Sprintf("sink%d", i+1)
		if i == nSw {
			to = "dst"
		}
		spec.VCCs = append(spec.VCCs, VCCSpec{
			Name: fmt.Sprintf("cross%d", i), From: fmt.Sprintf("x%d", i), To: to,
			VC: atm.VC{VCI: uint16(200 + i)},
		})
	}
	return spec
}

// e16Drive reproduces the experiment's stimulus against either build: cross
// sources on each x_i's kernel, the timestamped probe tick on src's, and a
// boundary tap at dst's NIC sampling end-to-end probe delay on dst's clock.
// Returned samples are appended only from dst's partition goroutine.
func e16Drive(t *testing.T, net *Network, col *collector, nSw int, deadline sim.Time) *[]string {
	t.Helper()
	col.watch(net, "dst")
	for i := 2; i <= nSw; i++ {
		col.watch(net, fmt.Sprintf("sink%d", i))
	}
	portCell := units.CellRate(units.STS3cPayload)
	for i := 1; i <= nSw; i++ {
		v := net.VCC(fmt.Sprintf("cross%d", i))
		if err := v.Source.SetPeakCellRate(v.SourceVC, 0.85*portCell); err != nil {
			t.Fatal(err)
		}
		xk := net.NodeKernel(v.Source.Name())
		netsim.NewSource(xk, v.Source.Station(), v.SourceVC, 9180, deadline).Start(4)
	}
	probe := net.VCC("probe")
	dk := net.NodeKernel("dst")
	dstIface := net.Endpoint("dst").Interface()
	samples := new([]string)
	net.Link("last-dst").Fwd.AttachSink(atm.SinkFunc(func(c *atm.Cell) {
		if c.Header.VC() == probe.DestVC {
			t0 := sim.Time(binary.BigEndian.Uint64(c.Payload[:8]))
			*samples = append(*samples, fmt.Sprintf("t=%d delay=%d", int64(dk.Now()), int64(dk.Now()-t0)))
		}
		dstIface.DeliverCell(c)
	}))
	sk := net.NodeKernel("src")
	src := net.Endpoint("src")
	var tick func()
	tick = func() {
		if sk.Now() > deadline {
			return
		}
		payload := make([]byte, 40)
		binary.BigEndian.PutUint64(payload[:8], uint64(sk.Now()))
		if err := src.Send(probe.SourceVC, payload, nil); err != nil {
			t.Fatal(err)
		}
		sk.After(220*sim.Microsecond, tick)
	}
	tick()
	return samples
}

// TestParallelGoldenE16Shape is the E16-shaped golden test: the multi-hop
// CDV topology — shaped probe, per-hop cross load, CAC at every output port
// — run serial vs 2 and 4 shards. Every probe delay sample, every delivered
// cross frame, the merged registry and the merged trace must be identical.
func TestParallelGoldenE16Shape(t *testing.T) {
	const nSw = 3
	deadline := sim.Time(2 * sim.Millisecond)
	type e16Run struct {
		run     parRun
		samples []string
	}
	do := func(shards int) e16Run {
		var samples *[]string
		run := goldenRun(t, func() NetworkSpec { return e16ShapedSpec(nSw) }, shards,
			func(net *Network, col *collector) {
				samples = e16Drive(t, net, col, nSw, deadline)
			})
		return e16Run{run: run, samples: *samples}
	}
	serial := do(0)
	if len(serial.samples) == 0 {
		t.Fatal("serial run recorded no probe samples")
	}
	if len(serial.run.deliveries) == 0 {
		t.Fatal("serial run delivered no cross traffic")
	}
	for _, shards := range []int{2, 4} {
		run := do(shards)
		label := fmt.Sprintf("e16 shards=%d", shards)
		if run.run.shards != shards {
			t.Fatalf("%s: built %d partitions", label, run.run.shards)
		}
		requireRunsIdentical(t, label, serial.run, run.run)
		if len(run.samples) != len(serial.samples) {
			t.Fatalf("%s: %d probe samples, serial %d", label, len(run.samples), len(serial.samples))
		}
		for i := range run.samples {
			if run.samples[i] != serial.samples[i] {
				t.Fatalf("%s sample %d: sharded %s, serial %s", label, i, run.samples[i], serial.samples[i])
			}
		}
	}
}

// TestParallelExplicitPartitions pins the explicit-Partitions path: a
// caller-chosen grouping that splits the switch chain across shards, which
// the default partitioner never does.
func TestParallelExplicitPartitions(t *testing.T) {
	const nSw = 3
	deadline := sim.Time(1 * sim.Millisecond)
	drive := func(net *Network, col *collector) { e16Drive(t, net, col, nSw, deadline) }
	serial := goldenRun(t, func() NetworkSpec { return e16ShapedSpec(nSw) }, 0, drive)
	split := goldenRun(t, func() NetworkSpec {
		spec := e16ShapedSpec(nSw)
		spec.Partitions = [][]string{
			{"src", "sw1", "x1"},
			{"sw2", "x2", "sink2"},
			{"sw3", "x3", "sink3", "dst"},
		}
		return spec
	}, 0, drive)
	if split.shards != 3 {
		t.Fatalf("built %d partitions, want 3", split.shards)
	}
	requireRunsIdentical(t, "explicit-partitions", serial, split)
}

// TestShardedBuildValidation pins the builder's rejection of spec shapes a
// sharded build cannot honor.
func TestShardedBuildValidation(t *testing.T) {
	base := func() NetworkSpec {
		return NetworkSpec{
			Endpoints: []EndpointSpec{{Name: "a"}, {Name: "b"}},
			Links: []LinkSpec{{
				Name: "ab", A: NodeRef{Node: "a"}, B: NodeRef{Node: "b"}, Delay: 10_000,
			}},
			Shards: 2,
		}
	}
	t.Run("caller kernel", func(t *testing.T) {
		spec := base()
		spec.Kernel = sim.NewKernel()
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "Kernel") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("caller metrics", func(t *testing.T) {
		spec := base()
		spec.Metrics = nil // default is fine
		spec.Kernel = nil
		net, err := NewNetwork(spec)
		if err != nil {
			t.Fatal(err)
		}
		net.Close()
	})
	t.Run("latency vcc", func(t *testing.T) {
		spec := base()
		spec.VCCs = []VCCSpec{{Name: "flow", From: "a", To: "b", Latency: true}}
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "Latency") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("zero-delay cut", func(t *testing.T) {
		spec := base()
		spec.Links[0].Delay = 0
		spec.Partitions = [][]string{{"a"}, {"b"}}
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "cannot cross") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("framed cut", func(t *testing.T) {
		spec := base()
		spec.Links[0].Framed = true
		spec.Partitions = [][]string{{"a"}, {"b"}}
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "cannot cross") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("partition node missing", func(t *testing.T) {
		spec := base()
		spec.Partitions = [][]string{{"a"}}
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("partition node unknown", func(t *testing.T) {
		spec := base()
		spec.Partitions = [][]string{{"a"}, {"b", "ghost"}}
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "unknown") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("kernel accessor panics sharded", func(t *testing.T) {
		net, err := NewNetwork(base())
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		defer func() {
			if recover() == nil {
				t.Fatal("Kernel() did not panic on a sharded build")
			}
		}()
		net.Kernel()
	})
	t.Run("framed uncut ok", func(t *testing.T) {
		// A framed pair with Shards requested clamps to one partition (the
		// framed link merges both endpoints) and still runs.
		spec := base()
		spec.Links[0].Framed = true
		spec.VCCs = []VCCSpec{{Name: "flow", From: "a", To: "b"}}
		net, err := NewNetwork(spec)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		if net.Shards() != 1 {
			t.Fatalf("shards = %d, want 1", net.Shards())
		}
		got := 0
		net.Endpoint("b").OnReceive(func(p Packet) { got++ })
		if err := net.Endpoint("a").Send(net.VCC("flow").SourceVC, make([]byte, 100), nil); err != nil {
			t.Fatal(err)
		}
		net.Run()
		if got != 1 {
			t.Fatalf("delivered %d, want 1", got)
		}
	})
}

// TestParallelGoldenABRLoop is the E21-shaped golden test: three greedy ABR
// sources over real-delay access fibers into one EFCI+ERICA switch whose
// output port drains at 155 Mb/s. Every forward RM cell, every EFCI-marked
// data cell and every turned-around backward RM cell crosses a partition
// mailbox in the sharded build, and the closed loop makes cell timing
// feedback-coupled: one RM cell delivered a nanosecond late would re-target
// a shaper and shift every subsequent cell. Deliveries, the registry
// (including efci_marked/er_stamped and the NICs' abr counters), the trace
// and each source's final ACR must be byte-identical to the serial run.
func TestParallelGoldenABRLoop(t *testing.T) {
	const nSrc = 3
	deadline := sim.Time(2 * sim.Millisecond)
	pcr := units.CellRate(Rate622)
	mk := func() NetworkSpec {
		erica := netsim.ERICAConfig{TargetUtil: 0.9, Interval: 100 * sim.Microsecond}
		spec := NetworkSpec{
			Switches: []SwitchSpec{{
				Name: "sw", Ports: nSrc + 1, Rate: Rate622, QueueDepth: 512,
				EFCIThreshold: 32, ERICA: &erica,
			}},
		}
		for i := 0; i < nSrc; i++ {
			name := fmt.Sprintf("s%d", i+1)
			spec.Endpoints = append(spec.Endpoints, EndpointSpec{Name: name, Options: Options{Rate: Rate622}})
			spec.Links = append(spec.Links, LinkSpec{
				Name: name + "-sw", A: NodeRef{Node: name},
				B:     NodeRef{Node: "sw", Port: i},
				Delay: sim.Duration(20_000 + 7_000*i), Seed: uint64(90 + i),
			})
		}
		spec.Endpoints = append(spec.Endpoints, EndpointSpec{Name: "dst", Options: Options{Rate: Rate155}})
		spec.Links = append(spec.Links, LinkSpec{
			Name: "sw-dst", A: NodeRef{Node: "sw", Port: nSrc},
			B: NodeRef{Node: "dst"}, Delay: 5_000, Seed: 99,
		})
		for i := 0; i < nSrc; i++ {
			spec.VCCs = append(spec.VCCs, VCCSpec{
				Name: fmt.Sprintf("abr%d", i+1), From: fmt.Sprintf("s%d", i+1), To: "dst",
				VC:     atm.VC{VCI: uint16(101 + i)},
				Duplex: true,
				ABR:    &tm.ABRParams{PCR: pcr, ICR: pcr / 16, Nrm: 32},
			})
		}
		return spec
	}
	type abrRun struct {
		run  parRun
		acrs []float64
	}
	do := func(shards int) abrRun {
		var acrs []float64
		var netRef *Network
		run := goldenRun(t, mk, shards, func(net *Network, col *collector) {
			netRef = net
			net.Switch("sw").SetPortRate(nSrc, Rate155)
			col.watch(net, "dst")
			for i := 0; i < nSrc; i++ {
				v := net.VCC(fmt.Sprintf("abr%d", i+1))
				netsim.NewSource(net.NodeKernel(v.Source.Name()), v.Source.Station(), v.SourceVC, 9180, deadline).Start(4)
			}
		})
		for i := 0; i < nSrc; i++ {
			v := netRef.VCC(fmt.Sprintf("abr%d", i+1))
			acr, ok := v.Source.Interface().ACR(v.SourceVC)
			if !ok {
				t.Fatalf("shards=%d: %s lost its ABR state", shards, v.Name)
			}
			acrs = append(acrs, acr)
		}
		return abrRun{run: run, acrs: acrs}
	}
	serial := do(0)
	if len(serial.run.deliveries) == 0 {
		t.Fatal("serial run delivered nothing")
	}
	if !strings.Contains(serial.run.metrics, "er_stamped") {
		t.Fatalf("serial run never stamped an explicit rate:\n%s", serial.run.metrics)
	}
	for i, acr := range serial.acrs {
		if acr <= 0 || acr >= pcr {
			t.Fatalf("serial abr%d ACR = %.0f, outside (0, PCR): loop never engaged", i+1, acr)
		}
	}
	for _, shards := range []int{2, 4} {
		run := do(shards)
		label := fmt.Sprintf("abr shards=%d", shards)
		if run.run.shards < 2 {
			t.Fatalf("%s: built %d partitions", label, run.run.shards)
		}
		requireRunsIdentical(t, label, serial.run, run.run)
		for i := range run.acrs {
			if run.acrs[i] != serial.acrs[i] {
				t.Fatalf("%s abr%d: ACR %.2f, serial %.2f", label, i+1, run.acrs[i], serial.acrs[i])
			}
		}
	}
}
