package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// coreRun captures everything a mode-equivalence check compares at the
// builder level: every delivered SDU with its nanosecond timestamp and
// payload head, the whole metrics registry (per-VC rows, link counters,
// drop attribution), and the flight recorder's matched spans.
type coreRun struct {
	deliveries []string
	metrics    string
	spans      []trace.Span
	unmatched  int
}

// buildRun constructs the spec with the shared instruments installed,
// hands the network to drive for traffic injection, runs to completion and
// collects the comparison state. The spec's Kernel/Metrics/Recorder fields
// are overwritten; BurstMode is the axis under test.
func buildRun(t *testing.T, spec NetworkSpec, burst bool, drive func(*Network, *coreRun)) coreRun {
	t.Helper()
	k := sim.NewKernel()
	rec := trace.NewRecorder(k, 1<<16)
	spec.Kernel = k
	spec.Recorder = rec
	spec.BurstMode = burst
	net, err := NewNetwork(spec)
	if err != nil {
		t.Fatal(err)
	}
	var run coreRun
	drive(net, &run)
	net.Run()
	var sb bytes.Buffer
	if err := net.Metrics().Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	run.metrics = sb.String()
	spans, unmatched := rec.Spans()
	trace.SortSpans(spans)
	run.spans = spans
	run.unmatched = unmatched
	return run
}

// requireIdentical is the golden comparison: burst mode must change nothing
// observable — not a timestamp, not a payload byte, not a counter, not a
// span.
func requireIdentical(t *testing.T, label string, serial, burst coreRun) {
	t.Helper()
	if len(burst.deliveries) != len(serial.deliveries) {
		t.Fatalf("%s: burst delivered %d SDUs, serial %d", label, len(burst.deliveries), len(serial.deliveries))
	}
	for i := range burst.deliveries {
		if burst.deliveries[i] != serial.deliveries[i] {
			t.Fatalf("%s delivery %d:\n  burst:  %s\n  serial: %s", label, i, burst.deliveries[i], serial.deliveries[i])
		}
	}
	if burst.metrics != serial.metrics {
		t.Fatalf("%s: metrics registry diverges:\n--- burst\n%s\n--- serial\n%s", label, burst.metrics, serial.metrics)
	}
	if len(burst.spans) != len(serial.spans) || burst.unmatched != serial.unmatched {
		t.Fatalf("%s: %d spans (%d unmatched), serial %d (%d)",
			label, len(burst.spans), burst.unmatched, len(serial.spans), serial.unmatched)
	}
	for i := range burst.spans {
		if burst.spans[i] != serial.spans[i] {
			t.Fatalf("%s span %d: burst %+v, serial %+v", label, i, burst.spans[i], serial.spans[i])
		}
	}
}

func framedPairSpec(opts Options, seed uint64, bitErrProb float64) NetworkSpec {
	return NetworkSpec{
		Endpoints: []EndpointSpec{
			{Name: "a", Options: opts},
			{Name: "b", Options: opts},
		},
		Links: []LinkSpec{{
			Name: "ab", A: NodeRef{Node: "a"}, B: NodeRef{Node: "b"},
			Delay: 10_000, Seed: seed, Framed: true, BitErrProb: bitErrProb,
		}},
		VCCs: []VCCSpec{{Name: "flow", From: "a", To: "b"}},
	}
}

func record(run *coreRun) func(Packet) {
	return func(p Packet) {
		head := p.Data
		if len(head) > 4 {
			head = head[:4]
		}
		run.deliveries = append(run.deliveries,
			fmt.Sprintf("t=%d vc=%v len=%d cells=%d head=%x", int64(p.At), p.VC, len(p.Data), p.Cells, head))
	}
}

func sendAll(t *testing.T, net *Network, run *coreRun, sizes []int) {
	t.Helper()
	vcc := net.VCC("flow")
	net.Endpoint("b").OnReceive(record(run))
	for i, size := range sizes {
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := net.Endpoint("a").Send(vcc.SourceVC, data, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFramedPairBurstGoldenIdentity is the E3-shaped golden test: a
// host-to-host throughput run over the full SONET path at both line rates.
// Burst mode must deliver the same SDUs at the same nanoseconds with the
// same headers/payloads, the same registry byte-for-byte (so every drop is
// attributed identically), and the same trace spans.
func TestFramedPairBurstGoldenIdentity(t *testing.T) {
	sizes := []int{9180, 9180, 9180, 4352, 9180, 1500}
	for _, opts := range []Options{
		{FifoCells: 128},
		// At 622 the stock 25 MHz engine saturates (the E3 story); give the
		// pair the upgraded board so the workload actually arrives.
		{Rate: Rate622, FifoCells: 128, EngineMHz: 66, RxEngines: 3},
	} {
		label := fmt.Sprintf("rate=%v", opts.Rate)
		spec := framedPairSpec(opts, 11, 0)
		drive := func(net *Network, run *coreRun) { sendAll(t, net, run, sizes) }
		serial := buildRun(t, spec, false, drive)
		if len(serial.deliveries) != len(sizes) {
			t.Fatalf("%s serial: delivered %d of %d", label, len(serial.deliveries), len(sizes))
		}
		burst := buildRun(t, spec, true, drive)
		requireIdentical(t, label, serial, burst)
	}
}

// TestFramedPairBurstLatencyShape is the E5-shaped golden test: small
// request/response SDUs whose per-delivery timestamps are the measurement.
// Any retiming burst mode introduced would move these nanoseconds.
func TestFramedPairBurstLatencyShape(t *testing.T) {
	sizes := []int{1, 44, 45, 89, 512, 1000, 2048, 40, 4000}
	spec := framedPairSpec(Options{FifoCells: 128}, 5, 0)
	drive := func(net *Network, run *coreRun) { sendAll(t, net, run, sizes) }
	serial := buildRun(t, spec, false, drive)
	if len(serial.deliveries) != len(sizes) {
		t.Fatalf("serial: delivered %d of %d", len(serial.deliveries), len(sizes))
	}
	burst := buildRun(t, spec, true, drive)
	requireIdentical(t, "latency-shape", serial, burst)
}

// TestSwitchTopologyBurstModeInert is the E15-shaped golden test: two
// senders congesting one switch output port, plus seeded cell loss on an
// access fiber. Nothing in a cell-granular topology produces bursts, so
// BurstMode must be completely inert — including every drop-attribution
// counter the congestion generates.
func TestSwitchTopologyBurstModeInert(t *testing.T) {
	spec := NetworkSpec{
		Endpoints: []EndpointSpec{
			{Name: "a"}, {Name: "b"},
			{Name: "c", Options: Options{ReassemblyTimeout: sim.Millisecond}},
		},
		Switches: []SwitchSpec{
			{Name: "sw", Ports: 3, QueueDepth: 16},
		},
		Links: []LinkSpec{
			{Name: "a-sw", A: NodeRef{Node: "a"}, B: NodeRef{Node: "sw", Port: 0}, Delay: 1000, Seed: 25, LossProb: 0.01},
			{Name: "b-sw", A: NodeRef{Node: "b"}, B: NodeRef{Node: "sw", Port: 1}, Delay: 2400, Seed: 26},
			{Name: "sw-c", A: NodeRef{Node: "sw", Port: 2}, B: NodeRef{Node: "c"}, Seed: 27},
		},
		VCCs: []VCCSpec{
			{Name: "a-c", From: "a", To: "c", VC: VC{VCI: 101}},
			{Name: "b-c", From: "b", To: "c", VC: VC{VCI: 201}},
		},
	}
	drive := func(net *Network, run *coreRun) {
		net.Endpoint("c").OnReceive(record(run))
		for i := 0; i < 10; i++ {
			data := make([]byte, 3000)
			for j := range data {
				data[j] = byte(i ^ j)
			}
			if err := net.Endpoint("a").Send(net.VCC("a-c").SourceVC, data, nil); err != nil {
				t.Fatal(err)
			}
			if err := net.Endpoint("b").Send(net.VCC("b-c").SourceVC, data, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	serial := buildRun(t, spec, false, drive)
	burst := buildRun(t, spec, true, drive)
	if !strings.Contains(serial.metrics, "drop") {
		t.Fatalf("congestion workload produced no drop rows:\n%s", serial.metrics)
	}
	requireIdentical(t, "switch-topology", serial, burst)
}

// TestFramedBurstPropertySweep varies workload shape, fault seeding and
// line bit errors across both SONET rates and requires mode equivalence on
// every combination — the builder-level counterpart of the sonetlink
// burst-size sweep. Bit-error runs lose cells to frame damage; the loss
// pattern, its attribution, and the surviving deliveries must not depend
// on the recovery path's batching.
func TestFramedBurstPropertySweep(t *testing.T) {
	type swept struct {
		opts    Options
		seed    uint64
		bitErr  float64
		nSDU    int
		sizeGen func(i int) int
	}
	cases := []swept{
		{Options{FifoCells: 128}, 1, 0, 9, func(i int) int { return 40 + (i*613)%5000 }},
		{Options{FifoCells: 128}, 9, 2e-4, 14, func(i int) int { return 300 + (i*2897)%4000 }},
		{Options{Rate: Rate622, FifoCells: 128}, 4, 0, 9, func(i int) int { return 1 + (i*9181)%9180 }},
		{Options{Rate: Rate622, FifoCells: 128}, 7, 5e-4, 14, func(i int) int { return 64 + (i*4099)%8192 }},
	}
	for ci, c := range cases {
		sizes := make([]int, c.nSDU)
		for i := range sizes {
			sizes[i] = c.sizeGen(i)
		}
		spec := framedPairSpec(c.opts, c.seed, c.bitErr)
		drive := func(net *Network, run *coreRun) { sendAll(t, net, run, sizes) }
		serial := buildRun(t, spec, false, drive)
		burst := buildRun(t, spec, true, drive)
		requireIdentical(t, fmt.Sprintf("case %d", ci), serial, burst)
		if c.bitErr == 0 && len(serial.deliveries) != c.nSDU {
			t.Fatalf("case %d: clean line delivered %d of %d", ci, len(serial.deliveries), c.nSDU)
		}
	}
}

// TestFramedLinkValidation pins the builder's rejection of spec shapes the
// framed path cannot model.
func TestFramedLinkValidation(t *testing.T) {
	base := func() NetworkSpec {
		return NetworkSpec{
			Endpoints: []EndpointSpec{{Name: "a"}, {Name: "b"}},
			Links: []LinkSpec{{
				Name: "ab", A: NodeRef{Node: "a"}, B: NodeRef{Node: "b"}, Framed: true,
			}},
		}
	}
	t.Run("switch port", func(t *testing.T) {
		spec := base()
		spec.Switches = []SwitchSpec{{Name: "sw", Ports: 2}}
		spec.Links[0].B = NodeRef{Node: "sw", Port: 0}
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "two endpoints") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("cell faults on framed", func(t *testing.T) {
		spec := base()
		spec.Links[0].LossProb = 0.1
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "BitErrProb") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bit errors on cell link", func(t *testing.T) {
		spec := base()
		spec.Links[0].Framed = false
		spec.Links[0].BitErrProb = 1e-3
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "Framed") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("latency tap over framed", func(t *testing.T) {
		spec := base()
		spec.VCCs = []VCCSpec{{Name: "flow", From: "a", To: "b", Latency: true}}
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "latency tap") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("framed link built", func(t *testing.T) {
		net, err := NewNetwork(base())
		if err != nil {
			t.Fatal(err)
		}
		l := net.Link("ab")
		if l.Framed == nil || l.Fwd != nil || l.Rev != nil {
			t.Fatalf("framed link handle: %+v", l)
		}
	})
}
