package core

import (
	"bytes"
	"testing"

	"repro/internal/bufmgr"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestTestbedQuickPath(t *testing.T) {
	tb, err := NewTestbed(Options{}, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vc := VC{VCI: 32}
	if err := tb.OpenVC(vc); err != nil {
		t.Fatal(err)
	}
	var got []Packet
	tb.B.OnReceive(func(p Packet) { got = append(got, p) })
	msg := []byte("hello, 1991")
	if err := tb.A.Send(vc, msg, nil); err != nil {
		t.Fatal(err)
	}
	tb.Run()
	if len(got) != 1 || !bytes.Equal(got[0].Data, msg) {
		t.Fatalf("got %v", got)
	}
	if got[0].VC != vc {
		t.Fatalf("VC %v", got[0].VC)
	}
	if got[0].At <= 0 {
		t.Fatal("delivery timestamp missing")
	}
}

func TestTestbedBothDirections(t *testing.T) {
	tb, _ := NewTestbed(Options{}, LinkOptions{})
	vc := VC{VCI: 1}
	tb.OpenVC(vc)
	a2b, b2a := 0, 0
	tb.A.OnReceive(func(Packet) { b2a++ })
	tb.B.OnReceive(func(Packet) { a2b++ })
	tb.A.Send(vc, []byte{1}, nil)
	tb.B.Send(vc, []byte{2}, nil)
	tb.Run()
	if a2b != 1 || b2a != 1 {
		t.Fatalf("a2b=%d b2a=%d", a2b, b2a)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	tb, err := NewTestbed(Options{
		Rate:        Rate622,
		AAL34:       true,
		EngineMHz:   66,
		FifoCells:   128,
		Lookup:      nic.LookupHash,
		Buffers:     bufmgr.Contig,
		AdapterSRAM: 1 << 20,
	}, LinkOptions{DistanceKm: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tb.A.Interface().Config()
	if cfg.PayloadRate != units.STS12cPayload {
		t.Errorf("rate = %v", cfg.PayloadRate)
	}
	if cfg.AAL.String() != "AAL3/4" {
		t.Errorf("aal = %v", cfg.AAL)
	}
	if cfg.Engine.ClockHz != 66_000_000 {
		t.Errorf("clock = %d", cfg.Engine.ClockHz)
	}
	if cfg.TxFifoDepth != 128 || cfg.RxFifoDepth != 128 {
		t.Errorf("fifos = %d/%d", cfg.TxFifoDepth, cfg.RxFifoDepth)
	}
	if cfg.Lookup != nic.LookupHash {
		t.Errorf("lookup = %v", cfg.Lookup)
	}
	if cfg.BufOrg != bufmgr.Contig {
		t.Errorf("buforg = %v", cfg.BufOrg)
	}
	if cfg.AdapterSRAM != 1<<20 {
		t.Errorf("sram = %d", cfg.AdapterSRAM)
	}
}

func TestLinkedBuffersOption(t *testing.T) {
	// bufmgr.Linked must survive the options plumbing even though the
	// board default is Paged: the zero Organization is a distinct
	// DefaultOrg sentinel, so an explicit Linked is not mistaken for
	// "unset" anywhere down the stack.
	tb, err := NewTestbed(Options{Buffers: bufmgr.Linked}, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.A.Interface().Config().BufOrg; got != bufmgr.Linked {
		t.Fatalf("buforg = %v, want linked", got)
	}
	tbDef, err := NewTestbed(Options{}, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbDef.A.Interface().Config().BufOrg; got != bufmgr.Paged {
		t.Fatalf("default buforg = %v, want paged", got)
	}
}

func TestLinkLossOption(t *testing.T) {
	tb, _ := NewTestbed(Options{}, LinkOptions{CellLossProb: 0.05, Seed: 3})
	vc := VC{VCI: 2}
	tb.OpenVC(vc)
	delivered := 0
	tb.B.OnReceive(func(Packet) { delivered++ })
	payload := make([]byte, 4000)
	for i := 0; i < 30; i++ {
		tb.A.Send(vc, payload, nil)
	}
	tb.Run()
	st := tb.B.Stats()
	if st.Rx.AALErrors == 0 {
		t.Fatal("5% loss produced no AAL errors")
	}
	if delivered >= 30 {
		t.Fatal("all frames survived 5% cell loss on ~84-cell frames")
	}
}

func TestHardwiredOption(t *testing.T) {
	tb, err := NewTestbed(Options{Hardwired: true}, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.A.Interface().Config().Engine.ClockHz != 1_000_000_000 {
		t.Fatal("hardwired option did not replace engines")
	}
	vc := VC{VCI: 4}
	tb.OpenVC(vc)
	ok := false
	tb.B.OnReceive(func(Packet) { ok = true })
	tb.A.Send(vc, []byte{1, 2}, nil)
	tb.Run()
	if !ok {
		t.Fatal("hardwired testbed did not deliver")
	}
}

func TestGoodputAccessor(t *testing.T) {
	tb, _ := NewTestbed(Options{}, LinkOptions{})
	vc := VC{VCI: 5}
	tb.OpenVC(vc)
	tb.B.OnReceive(func(Packet) {})
	tb.A.Send(vc, make([]byte, 9180), nil)
	tb.Run()
	if g := tb.B.Goodput(); g <= 0 {
		t.Fatalf("goodput = %v", g)
	}
}

func TestRunFor(t *testing.T) {
	tb, _ := NewTestbed(Options{}, LinkOptions{})
	tb.RunFor(5 * sim.Millisecond)
	if tb.Now() != 5*sim.Millisecond {
		t.Fatalf("Now = %v", tb.Now())
	}
}

func TestPingLoopback(t *testing.T) {
	tb, _ := NewTestbed(Options{}, LinkOptions{})
	vc := VC{VCI: 6}
	tb.OpenVC(vc)
	var got uint32
	tb.A.OnPingReply(func(v VC, corr uint32) { got = corr })
	if err := tb.A.Ping(vc, 0xfeed); err != nil {
		t.Fatal(err)
	}
	tb.Run()
	if got != 0xfeed {
		t.Fatalf("ping reply correlation %#x", got)
	}
}

func TestPacingViaCore(t *testing.T) {
	tb, _ := NewTestbed(Options{}, LinkOptions{})
	vc := VC{VCI: 6}
	tb.OpenVC(vc)
	if err := tb.A.SetPeakCellRate(vc, 10_000); err != nil {
		t.Fatal(err)
	}
	done := sim.Time(0)
	tb.B.OnReceive(func(p Packet) { done = p.At })
	tb.A.Send(vc, make([]byte, 480), nil) // 11 cells at 100 µs spacing
	tb.Run()
	if done < sim.Time(10*100_000) {
		t.Fatalf("paced delivery at %v, expected >= 1 ms", done)
	}
}

func TestMultiEngineOptionViaCore(t *testing.T) {
	tb, err := NewTestbed(Options{RxEngines: 4, InterleaveVCs: true}, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tb.A.Interface().RxEngines()); got != 4 {
		t.Fatalf("engines = %d", got)
	}
	if !tb.A.Interface().Config().InterleaveVCs {
		t.Fatal("interleave not plumbed")
	}
}
