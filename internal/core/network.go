package core

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/sonetlink"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/units"
)

// NetworkSpec declares a whole topology: endpoints, switches, the fibers
// between them, and the end-to-end virtual channel connections riding on
// top. NewNetwork builds it in one pass — stations, switch fabric, duplex
// links, per-hop routes with VCI translation, contract admission (CAC) at
// the source and at every switch output port, and registry instrumentation
// — and returns named handles for everything.
//
// Everything is resolved in spec order, so two builds of the same spec are
// event-for-event identical (the property the golden and parallel-sweep
// tests pin).
type NetworkSpec struct {
	Endpoints []EndpointSpec
	Switches  []SwitchSpec
	Links     []LinkSpec
	VCCs      []VCCSpec

	// Metrics is the shared telemetry registry; nil means the network
	// creates one (reachable via Network.Metrics).
	Metrics *metrics.Registry
	// Kernel lets the caller supply the event kernel (for golden tests that
	// swap scheduler implementations); nil means sim.NewKernel().
	Kernel *sim.Kernel
	// Recorder, when non-nil, attaches flight-recorder stage spans to every
	// cell-port hop the builder wires: each endpoint's TX FIFO, reassembler
	// and delivery stages, each switch output queue, and both directions of
	// every fiber (nodes "<link>.fwd" / "<link>.rev"; framed links use
	// sonetlink's "link.<src>" naming and register during link construction).
	// Stages register in spec order, so two builds of the same spec produce
	// identical stage tables and event streams.
	Recorder *trace.Recorder
	// BurstMode switches framed links' receive recovery to cell-vector
	// delivery: each parsed SONET frame's data cells cross the link as one
	// atm.CellBurst and are re-spread at the destination's receive door, so
	// observable behavior is cell-for-cell identical to the serial path (the
	// mode-equivalence golden tests pin this). Cell-granular links are
	// unaffected — their producers emit one cell per event, and the switch
	// and interface doors are must-split stages either way.
	BurstMode bool

	// Shards > 1 requests a partitioned conservative-parallel build: the
	// topology is split into partitions — each with its own kernel, metrics
	// registry and (when Recorder is set) trace recorder — advanced in
	// lock-step windows by a sim.Group, with every cross-partition fiber's
	// propagation delay declared as lookahead. Deliveries, merged metrics
	// and merged traces are byte-identical to the serial build (the golden
	// tests pin this). 0 and 1 build the classic serial network. The shard
	// count is clamped to the number of partitionable units; framed and
	// zero-delay links never cross partitions (see partition.go).
	//
	// A sharded build rejects a caller-supplied Kernel or Metrics registry
	// (both would be shared across partition goroutines) and VCCs with
	// Latency taps (a timed tap spans two partitions). When Recorder is
	// set, it serves as a capacity template only: each partition records
	// into its own recorder of the same capacity, and Network.TraceEvents
	// merges them.
	Shards int

	// Partitions pins the node→partition assignment explicitly, overriding
	// the default endpoint/switch-cluster split: each inner slice names the
	// nodes of one partition. Every declared node must appear exactly once,
	// and no framed or zero-delay link may cross groups. Implies sharded
	// mode with len(Partitions) shards; Shards is ignored.
	Partitions [][]string
}

// EndpointSpec is one workstation + interface.
type EndpointSpec struct {
	Name    string
	Options Options
}

// SwitchSpec is one output-queued switch.
type SwitchSpec struct {
	Name string
	// Ports is the port count.
	Ports int
	// Rate is the port drain rate (default Rate155).
	Rate units.BitRate
	// QueueDepth is the shared per-port output buffer in cells (default 64).
	QueueDepth int
	// SwitchingDelay is the fabric's fixed per-cell transit latency.
	SwitchingDelay sim.Duration
	// AISPeriod arms F5 fault management: while an input port's fiber is
	// down, the switch inserts AIS downstream on every route that port
	// feeds, once per period. Zero disables generation.
	AISPeriod sim.Duration
	// EFCIThreshold arms forward congestion marking on every output port:
	// a user cell enqueued while the port holds at least this many cells
	// gets its EFCI bit set (netsim.Switch.SetThresholds). Zero disables.
	EFCIThreshold int
	// ERICA arms per-output-port explicit-rate ABR feedback on every port:
	// the switch measures ABR load each averaging interval and stamps a
	// max-min fair rate into backward RM cells. Nil disables.
	ERICA *netsim.ERICAConfig
}

// NodeRef names one end of a link: an endpoint (Port ignored) or a switch
// port.
type NodeRef struct {
	Node string
	Port int
}

// LinkSpec is one duplex fiber. The forward direction is A→B.
type LinkSpec struct {
	Name string
	A, B NodeRef
	// DistanceKm sets propagation delay at 5 µs/km.
	DistanceKm float64
	// Delay overrides DistanceKm with an explicit propagation delay.
	Delay       sim.Duration
	LossProb    float64
	CorruptProb float64
	// Seed drives fault injection; the two directions derive independent
	// streams from it (2·Seed+1 forward, 2·Seed+2 reverse — the same
	// derivation netsim.Connect uses, so testbeds golden-match).
	Seed uint64
	// Framed carries this fiber through the full SONET physical layer
	// (sonetlink.Connect: framing, scrambling, HEC delineation) instead of
	// the cell-granular phy.CellLink shortcut. Framed links join two
	// endpoints directly — switch ports speak cells, not frames — and the
	// endpoints' payload rate selects STS-3c or STS-12c framing. Faults are
	// bit-granular on a framed link: set BitErrProb, not LossProb or
	// CorruptProb (the builder rejects the mismatch). NetworkSpec.BurstMode
	// selects the receive recovery path.
	Framed bool
	// BitErrProb is the per-frame probability of one random line bit error
	// (framed links only).
	BitErrProb float64
}

// VCCSpec is one end-to-end virtual channel connection between two
// endpoints. The builder routes it hop by hop (shortest path by spec order,
// or the explicit Via switch list), allocates a per-hop VC on every fiber
// (preferring the requested VC, incrementing the VCI past collisions),
// installs the translation routes, and admits the contract at the source
// interface and at every switch output port along the path.
type VCCSpec struct {
	Name     string
	From, To string
	// VC is the requested first-hop VC (zero: VPI 0, VCI 100).
	VC atm.VC
	// Contract is the traffic contract admitted at every hop; the zero
	// value means best-effort UBR at the source's line rate.
	Contract tm.TrafficContract
	// Shape paces the source interface to the contract (GCRA shaping).
	Shape bool
	// Duplex installs the reverse path too, with the same per-hop VCs.
	Duplex bool
	// Via pins the switch path instead of shortest-path routing.
	Via []string
	// Latency arms a timed trace spanning the connection: ingress at the
	// source's output, egress at the destination's input, each cell's
	// transit observed into the "vcc.<name>.latency" histogram and
	// (subject to the capture's Filter/Limit) recorded in VCC.Capture.
	// FIFO matching is exact only while the tapped fibers carry just this
	// connection's cells.
	Latency bool
	// ABR arms closed-loop rate control: the admitted contract is derived
	// from the parameters (class ABR, PCR ceiling, MCR reservation), the
	// source paces at a live ACR steered by backward RM cells, and the
	// destination turns forward RM cells around. Requires Duplex (the
	// feedback path) and supersedes Contract and Shape.
	ABR *tm.ABRParams
}

// Link is the built form of a LinkSpec: the two directed cell pipes, or the
// SONET-framed duplex connection when the spec set Framed.
type Link struct {
	Name string
	// Fwd carries A→B, Rev carries B→A. Both are nil on a framed link.
	Fwd, Rev *phy.CellLink
	// Framed is the SONET-layer connection (nil on cell-granular links);
	// its halves expose Fail/Restore and per-direction framing stats.
	Framed *sonetlink.Link

	a, b    NodeRef
	usedVCs map[atm.VC]bool
}

// VCCHop describes one switch traversal of a built VCC.
type VCCHop struct {
	Switch     *netsim.Switch
	SwitchName string
	InPort     int
	OutPort    int
	// InVC is the VC the cells carry arriving at InPort; OutVC is what
	// they are translated to on the way out.
	InVC, OutVC atm.VC
}

// VCC is the built form of a VCCSpec.
type VCC struct {
	Name         string
	Source, Dest *Endpoint
	// SourceVC is the VC the source transmits on; DestVC is the VC the
	// destination receives on (they differ when hops translate).
	SourceVC, DestVC atm.VC
	Contract         tm.TrafficContract
	Hops             []VCCHop
	// Capture/Timed are non-nil when the spec armed Latency.
	Capture *trace.Capture
	Timed   *trace.Timed
}

// Network is a built topology.
type Network struct {
	k   *sim.Kernel       // serial builds only; nil when sharded
	reg *metrics.Registry // serial builds only; nil when sharded
	rec *trace.Recorder   // serial builds: the spec's recorder (may be nil)

	// Sharded builds: one kernel/registry/recorder per partition, driven in
	// lock-step by the group. All nil/empty on serial builds.
	group   *sim.Group
	kernels []*sim.Kernel
	regs    []*metrics.Registry
	recs    []*trace.Recorder
	shardOf map[string]int

	endpoints map[string]*Endpoint
	switches  map[string]*netsim.Switch
	swSpecs   map[string]SwitchSpec
	links     map[string]*Link
	vccs      map[string]*VCC

	adj     map[string][]netEdge
	srcCAC  map[string]*tm.CAC       // per-endpoint access-link admission
	portCAC map[portKey]*tm.CAC      // per switch output port
	inHalf  map[string]*phy.CellLink // the half delivering into an endpoint
	outHalf map[string]*phy.CellLink // the half an endpoint transmits into
	epLink  map[string]string        // endpoint → the one link it is on
}

// netEdge is one directed use of a link.
type netEdge struct {
	l        *Link
	from, to string
	fromPort int
	toPort   int
	fwd      bool // true when from == l.a.Node
}

type portKey struct {
	sw   string
	port int
}

// NewNetwork builds the declared topology. Errors name the offending spec
// entry; a VCC admission failure aborts the build (use AddVCC after a
// successful build to probe admission).
func NewNetwork(spec NetworkSpec) (*Network, error) {
	n := &Network{
		endpoints: make(map[string]*Endpoint),
		switches:  make(map[string]*netsim.Switch),
		swSpecs:   make(map[string]SwitchSpec),
		links:     make(map[string]*Link),
		vccs:      make(map[string]*VCC),
		adj:       make(map[string][]netEdge),
		srcCAC:    make(map[string]*tm.CAC),
		portCAC:   make(map[portKey]*tm.CAC),
		inHalf:    make(map[string]*phy.CellLink),
		outHalf:   make(map[string]*phy.CellLink),
		epLink:    make(map[string]string),
	}
	if spec.Shards > 1 || len(spec.Partitions) > 0 {
		if spec.Kernel != nil {
			return nil, fmt.Errorf("core: sharded build cannot take a caller-supplied Kernel (each partition owns one)")
		}
		if spec.Metrics != nil {
			return nil, fmt.Errorf("core: sharded build cannot take a caller-supplied Metrics registry (each partition owns one; use Network.Metrics for the merge)")
		}
		plan, err := planPartitions(spec)
		if err != nil {
			return nil, err
		}
		n.shardOf = plan.of
		n.kernels = make([]*sim.Kernel, plan.shards)
		n.regs = make([]*metrics.Registry, plan.shards)
		n.recs = make([]*trace.Recorder, plan.shards)
		for i := range n.kernels {
			n.kernels[i] = sim.NewKernel()
			n.regs[i] = metrics.NewRegistry()
			if spec.Recorder != nil {
				n.recs[i] = trace.NewRecorder(n.kernels[i], spec.Recorder.Capacity())
			}
		}
		n.group = sim.NewGroup(n.kernels)
	} else {
		n.k = spec.Kernel
		if n.k == nil {
			n.k = sim.NewKernel()
		}
		n.reg = spec.Metrics
		if n.reg == nil {
			n.reg = metrics.NewRegistry()
		}
		n.rec = spec.Recorder
	}
	for _, es := range spec.Endpoints {
		if es.Name == "" {
			return nil, fmt.Errorf("core: endpoint with empty name")
		}
		if n.known(es.Name) {
			return nil, fmt.Errorf("core: duplicate node name %q", es.Name)
		}
		cfg := es.Options.nicConfig(es.Name)
		cfg.Metrics = n.regFor(es.Name)
		ek := n.kernelFor(es.Name)
		var st *netsim.Station
		var err error
		if es.Options.Hardwired {
			st, err = netsim.NewHardwiredStation(ek, cfg)
		} else {
			st, err = netsim.NewStation(ek, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("core: endpoint %q: %w", es.Name, err)
		}
		n.endpoints[es.Name] = &Endpoint{name: es.Name, station: st, k: ek}
	}
	for _, ss := range spec.Switches {
		if ss.Name == "" {
			return nil, fmt.Errorf("core: switch with empty name")
		}
		if n.known(ss.Name) {
			return nil, fmt.Errorf("core: duplicate node name %q", ss.Name)
		}
		if ss.Rate == 0 {
			ss.Rate = Rate155
		}
		if ss.QueueDepth == 0 {
			ss.QueueDepth = 64
		}
		sw := netsim.NewSwitch(n.kernelFor(ss.Name), ss.Name, ss.Ports, ss.Rate, ss.QueueDepth)
		sw.SwitchingDelay = ss.SwitchingDelay
		sw.AISPeriod = ss.AISPeriod
		sw.Instrument(n.regFor(ss.Name), ss.Name)
		if ss.EFCIThreshold > 0 {
			for p := 0; p < ss.Ports; p++ {
				sw.SetThresholds(p, 0, 0, ss.EFCIThreshold)
			}
		}
		if ss.ERICA != nil {
			for p := 0; p < ss.Ports; p++ {
				sw.EnableERICA(p, *ss.ERICA)
			}
		}
		n.switches[ss.Name] = sw
		n.swSpecs[ss.Name] = ss
	}
	usedPorts := make(map[portKey]string)
	for _, ls := range spec.Links {
		if ls.Name == "" {
			return nil, fmt.Errorf("core: link with empty name")
		}
		if _, dup := n.links[ls.Name]; dup {
			return nil, fmt.Errorf("core: duplicate link name %q", ls.Name)
		}
		for _, ref := range []NodeRef{ls.A, ls.B} {
			if !n.known(ref.Node) {
				return nil, fmt.Errorf("core: link %q references unknown node %q", ls.Name, ref.Node)
			}
			if _, isEp := n.endpoints[ref.Node]; isEp {
				if n.epLink[ref.Node] != "" {
					return nil, fmt.Errorf("core: endpoint %q on more than one link", ref.Node)
				}
				n.epLink[ref.Node] = ls.Name
				continue
			}
			ss := n.swSpecs[ref.Node]
			if ref.Port < 0 || ref.Port >= ss.Ports {
				return nil, fmt.Errorf("core: link %q: port %d out of range on switch %q",
					ls.Name, ref.Port, ref.Node)
			}
			pk := portKey{sw: ref.Node, port: ref.Port}
			if prev, taken := usedPorts[pk]; taken {
				return nil, fmt.Errorf("core: switch %q port %d on links %q and %q",
					ref.Node, ref.Port, prev, ls.Name)
			}
			usedPorts[pk] = ls.Name
		}
		delay := ls.Delay
		if delay == 0 {
			delay = phy.PropDelay(ls.DistanceKm)
		}
		if ls.Framed {
			l, err := n.buildFramedLink(spec, ls, delay)
			if err != nil {
				return nil, err
			}
			n.links[ls.Name] = l
			n.adj[ls.A.Node] = append(n.adj[ls.A.Node], netEdge{
				l: l, from: ls.A.Node, to: ls.B.Node, fwd: true,
			})
			n.adj[ls.B.Node] = append(n.adj[ls.B.Node], netEdge{
				l: l, from: ls.B.Node, to: ls.A.Node, fwd: false,
			})
			continue
		}
		if ls.BitErrProb != 0 {
			return nil, fmt.Errorf("core: link %q: BitErrProb needs a Framed link (cell-granular fibers take LossProb/CorruptProb)", ls.Name)
		}
		// Same construction order and seed derivation as netsim.Connect,
		// so a builder topology is event-identical to the hand wiring. Each
		// half lives on its SENDING node's kernel: the send side (stats, the
		// loss/corruption rng draws, trace Enter) always runs in the source
		// partition, so the rng sequence matches the serial projection.
		kA, kB := n.kernelFor(ls.A.Node), n.kernelFor(ls.B.Node)
		fwd := phy.NewCellLink(kA, delay, ls.Seed*2+1, n.consumer(ls.B))
		fwd.LossProb = ls.LossProb
		fwd.CorruptProb = ls.CorruptProb
		rev := phy.NewCellLink(kB, delay, ls.Seed*2+2, n.consumer(ls.A))
		rev.LossProb = ls.LossProb
		rev.CorruptProb = ls.CorruptProb
		n.producer(ls.A).AttachSink(fwd)
		n.producer(ls.B).AttachSink(rev)
		if n.group != nil && n.shardOf[ls.A.Node] != n.shardOf[ls.B.Node] {
			// Cut link: deliveries and signal transitions cross via mailboxes,
			// declaring the propagation delay as the partitions' lookahead.
			// Arrival-side trace events land on the destination partition's
			// recorder under the same stage names the attach loop below gives
			// the send side, so merged traces pair up like a serial run's.
			fwd.SetBoundary(n.group.Mailbox(kA, kB, delay), n.recFor(ls.B.Node), ls.Name+".fwd")
			rev.SetBoundary(n.group.Mailbox(kB, kA, delay), n.recFor(ls.A.Node), ls.Name+".rev")
		}
		// Carrier state reaches the receiving node directly, even when a
		// latency tap later wraps the link's cell sink: losing the light
		// must become LOS at the interface or AIS insertion at the switch.
		if sc, ok := n.consumer(ls.B).(phy.SignalConsumer); ok {
			fwd.SetSignalSink(sc)
		}
		if sc, ok := n.consumer(ls.A).(phy.SignalConsumer); ok {
			rev.SetSignalSink(sc)
		}
		l := &Link{Name: ls.Name, Fwd: fwd, Rev: rev, a: ls.A, b: ls.B,
			usedVCs: make(map[atm.VC]bool)}
		n.links[ls.Name] = l
		if ep, isEp := n.endpoints[ls.A.Node]; isEp {
			n.outHalf[ep.name] = fwd
			n.inHalf[ep.name] = rev
		}
		if ep, isEp := n.endpoints[ls.B.Node]; isEp {
			n.outHalf[ep.name] = rev
			n.inHalf[ep.name] = fwd
		}
		n.adj[ls.A.Node] = append(n.adj[ls.A.Node], netEdge{
			l: l, from: ls.A.Node, to: ls.B.Node,
			fromPort: ls.A.Port, toPort: ls.B.Port, fwd: true,
		})
		n.adj[ls.B.Node] = append(n.adj[ls.B.Node], netEdge{
			l: l, from: ls.B.Node, to: ls.A.Node,
			fromPort: ls.B.Port, toPort: ls.A.Port, fwd: false,
		})
	}
	if spec.Recorder != nil {
		// Attach spans in spec order (endpoints, switches, links) so the
		// stage table — and with it every exported trace — is deterministic.
		// Sharded builds record each instance on its own partition's recorder
		// (recFor); link halves record on their sending node's, with the
		// arrival side of cut links already wired by SetBoundary above.
		for _, es := range spec.Endpoints {
			n.endpoints[es.Name].station.Iface.SetRecorder(n.recFor(es.Name))
		}
		for _, ss := range spec.Switches {
			n.switches[ss.Name].SetRecorder(n.recFor(ss.Name))
		}
		for _, ls := range spec.Links {
			l := n.links[ls.Name]
			if l.Framed != nil {
				continue // spans attached at sonetlink.Connect time
			}
			l.Fwd.SetRecorder(n.recFor(ls.A.Node), ls.Name+".fwd")
			l.Rev.SetRecorder(n.recFor(ls.B.Node), ls.Name+".rev")
		}
	}
	for _, vs := range spec.VCCs {
		if _, err := n.AddVCC(vs); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// buildFramedLink wires one LinkSpec through the full SONET physical layer.
// Framed links join two endpoints directly (sonetlink speaks nic.Interface,
// and switch ports speak cells); the endpoints' payload rate selects the
// framing rate, and NetworkSpec.BurstMode selects the receive recovery path.
func (n *Network) buildFramedLink(spec NetworkSpec, ls LinkSpec, delay sim.Duration) (*Link, error) {
	if ls.LossProb != 0 || ls.CorruptProb != 0 {
		return nil, fmt.Errorf("core: framed link %q: faults are bit-granular on the SONET line — set BitErrProb, not LossProb/CorruptProb", ls.Name)
	}
	epA, okA := n.endpoints[ls.A.Node]
	epB, okB := n.endpoints[ls.B.Node]
	if !okA || !okB {
		return nil, fmt.Errorf("core: framed link %q must join two endpoints (switch ports are cell-granular)", ls.Name)
	}
	var rate sonet.Rate
	switch pr := epA.station.Iface.Config().PayloadRate; pr {
	case sonet.STS3c.PayloadRate():
		rate = sonet.STS3c
	case sonet.STS12c.PayloadRate():
		rate = sonet.STS12c
	default:
		return nil, fmt.Errorf("core: framed link %q: endpoint %q payload rate %v matches no SONET rate", ls.Name, ls.A.Node, pr)
	}
	// Framed links are never cut (the whole sonetlink world lives on one
	// kernel), so both endpoints share a partition and A's kernel/registry/
	// recorder serve the link.
	sl, err := sonetlink.Connect(n.kernelFor(ls.A.Node), sonetlink.Config{
		Rate:       rate,
		Delay:      delay,
		BitErrProb: ls.BitErrProb,
		Seed:       ls.Seed,
		Metrics:    n.regFor(ls.A.Node),
		Recorder:   n.recFor(ls.A.Node),
		Burst:      spec.BurstMode,
	}, epA.station.Iface, epB.station.Iface)
	if err != nil {
		return nil, fmt.Errorf("core: framed link %q: %w", ls.Name, err)
	}
	return &Link{Name: ls.Name, Framed: sl, a: ls.A, b: ls.B,
		usedVCs: make(map[atm.VC]bool)}, nil
}

// kernelFor returns the kernel the named node lives on: its partition's on
// sharded builds, the one shared kernel otherwise.
func (n *Network) kernelFor(node string) *sim.Kernel {
	if n.group != nil {
		return n.kernels[n.shardOf[node]]
	}
	return n.k
}

// regFor returns the registry the named node's instruments register in.
func (n *Network) regFor(node string) *metrics.Registry {
	if n.group != nil {
		return n.regs[n.shardOf[node]]
	}
	return n.reg
}

// recFor returns the recorder the named node's stages record on (nil when
// the spec attached no Recorder).
func (n *Network) recFor(node string) *trace.Recorder {
	if n.group != nil {
		return n.recs[n.shardOf[node]]
	}
	return n.rec
}

func (n *Network) known(name string) bool {
	if _, ok := n.endpoints[name]; ok {
		return true
	}
	_, ok := n.switches[name]
	return ok
}

// consumer returns the cell sink a link half delivers into at ref.
func (n *Network) consumer(ref NodeRef) atm.CellConsumer {
	if ep, ok := n.endpoints[ref.Node]; ok {
		return ep.station.Iface
	}
	return n.switches[ref.Node].Port(ref.Port)
}

// producer returns the producing stage a link half attaches to at ref.
func (n *Network) producer(ref NodeRef) atm.CellProducer {
	if ep, ok := n.endpoints[ref.Node]; ok {
		return ep.station.Iface
	}
	return n.switches[ref.Node].Port(ref.Port)
}

// Kernel exposes the simulation clock/scheduler. On a sharded build there is
// no single kernel — it panics; use NodeKernel to schedule work in a
// particular node's partition.
func (n *Network) Kernel() *sim.Kernel {
	if n.group != nil {
		panic("core: sharded network has one kernel per partition; use NodeKernel(name)")
	}
	return n.k
}

// NodeKernel returns the kernel the named node's events run on — the shared
// kernel on a serial build, the node's partition kernel on a sharded one.
// Drivers scheduling stimulus (traffic ticks, fault injection) against a
// node must use that node's kernel so the work lands in the right partition.
func (n *Network) NodeKernel(name string) *sim.Kernel {
	if !n.known(name) {
		panic("core: unknown node " + name)
	}
	return n.kernelFor(name)
}

// Shards reports the number of partitions the build produced (1 for a
// serial build).
func (n *Network) Shards() int {
	if n.group != nil {
		return len(n.kernels)
	}
	return 1
}

// Metrics returns the telemetry registry. On a sharded build it merges the
// per-partition registries into a fresh snapshot (see metrics.Merge for why
// the merge is exact); call it after the run, not during.
func (n *Network) Metrics() *metrics.Registry {
	if n.group != nil {
		merged := metrics.NewRegistry()
		for _, reg := range n.regs {
			merged.Merge(reg)
		}
		return merged
	}
	return n.reg
}

// TraceEvents returns the run's flight-recorder events in canonical sorted
// order with stage names resolved — the whole-run trace on both serial and
// sharded builds (which record into one recorder per partition). Empty when
// the spec attached no Recorder.
func (n *Network) TraceEvents() []trace.NamedEvent {
	if n.group != nil {
		return trace.MergeNamed(n.recs...)
	}
	return trace.MergeNamed(n.rec)
}

// Run drains all scheduled work and returns the final simulated time.
func (n *Network) Run() sim.Time {
	if n.group != nil {
		return n.group.Run()
	}
	return n.k.Run()
}

// RunUntil advances the simulation to t.
func (n *Network) RunUntil(t sim.Time) sim.Time {
	if n.group != nil {
		return n.group.RunUntil(t)
	}
	return n.k.RunUntil(t)
}

// RunFor advances the simulation by d.
func (n *Network) RunFor(d sim.Duration) sim.Time {
	if n.group != nil {
		return n.group.RunFor(d)
	}
	return n.k.RunFor(d)
}

// Now returns the current simulated time.
func (n *Network) Now() sim.Time {
	if n.group != nil {
		return n.group.Now()
	}
	return n.k.Now()
}

// Close releases the partition worker goroutines of a sharded build (no-op
// on serial builds, and safe to call more than once). The network cannot be
// run afterwards.
func (n *Network) Close() {
	if n.group != nil {
		n.group.Close()
	}
}

// Endpoint returns the named endpoint; it panics on an unknown name (a
// spec/lookup mismatch is a programming error, not a runtime state).
func (n *Network) Endpoint(name string) *Endpoint {
	ep, ok := n.endpoints[name]
	if !ok {
		panic("core: unknown endpoint " + name)
	}
	return ep
}

// Switch returns the named switch for threshold/policer configuration.
func (n *Network) Switch(name string) *netsim.Switch {
	sw, ok := n.switches[name]
	if !ok {
		panic("core: unknown switch " + name)
	}
	return sw
}

// Link returns the named link handle.
func (n *Network) Link(name string) *Link {
	l, ok := n.links[name]
	if !ok {
		panic("core: unknown link " + name)
	}
	return l
}

// VCC returns the named connection handle.
func (n *Network) VCC(name string) *VCC {
	v, ok := n.vccs[name]
	if !ok {
		panic("core: unknown vcc " + name)
	}
	return v
}

// SourceCAC returns the admission controller guarding an endpoint's access
// link (created on first use).
func (n *Network) SourceCAC(endpoint string) *tm.CAC {
	ep := n.Endpoint(endpoint)
	cac := n.srcCAC[endpoint]
	if cac == nil {
		// The access CAC polices bandwidth only: a transmitting station's
		// burst buffering is host memory behind the segmenter, not the
		// cell FIFO, so the buffer budget is effectively unbounded here.
		// MBS reservations bite at the switch output queues instead.
		cac = tm.NewCAC(ep.station.Iface.Config().PayloadRate, 1<<20)
		n.srcCAC[endpoint] = cac
	}
	return cac
}

// PortCAC returns the admission controller guarding a switch output port
// (created on first use, budgeted at the switch's rate and queue depth).
func (n *Network) PortCAC(sw string, port int) *tm.CAC {
	pk := portKey{sw: sw, port: port}
	cac := n.portCAC[pk]
	if cac == nil {
		ss, ok := n.swSpecs[sw]
		if !ok {
			panic("core: unknown switch " + sw)
		}
		cac = tm.NewCAC(ss.Rate, ss.QueueDepth)
		n.portCAC[pk] = cac
	}
	return cac
}

// route finds the spec-order-deterministic path From→To: the explicit Via
// switch sequence when given, else breadth-first shortest path (endpoints
// other than the two ends cannot relay).
func (n *Network) route(vs VCCSpec) ([]netEdge, error) {
	if len(vs.Via) > 0 {
		seq := append([]string{vs.From}, vs.Via...)
		seq = append(seq, vs.To)
		var path []netEdge
		for i := 0; i+1 < len(seq); i++ {
			found := false
			for _, e := range n.adj[seq[i]] {
				if e.to == seq[i+1] {
					path = append(path, e)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("core: vcc %q: no link %s→%s", vs.Name, seq[i], seq[i+1])
			}
		}
		return path, nil
	}
	type visit struct {
		node string
		via  []netEdge
	}
	seen := map[string]bool{vs.From: true}
	queue := []visit{{node: vs.From}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range n.adj[cur.node] {
			if seen[e.to] {
				continue
			}
			path := append(append([]netEdge(nil), cur.via...), e)
			if e.to == vs.To {
				return path, nil
			}
			if _, isEp := n.endpoints[e.to]; isEp {
				continue // endpoints terminate, they don't relay
			}
			seen[e.to] = true
			queue = append(queue, visit{node: e.to, via: path})
		}
	}
	return nil, fmt.Errorf("core: vcc %q: no path %s→%s", vs.Name, vs.From, vs.To)
}

// allocVC picks the connection's VC on one fiber: the requested VC if free,
// else the next free VCI above it.
func (l *Link) allocVC(want atm.VC) (atm.VC, error) {
	vc := want
	for l.usedVCs[vc] {
		if vc.VCI == ^uint16(0) {
			return vc, fmt.Errorf("core: link %q: VCI space exhausted above %v", l.Name, want)
		}
		vc.VCI++
	}
	l.usedVCs[vc] = true
	return vc, nil
}

// AddVCC routes, admits and opens one connection on the built network. On
// an admission failure every reservation already taken for this connection
// is released and the network is left unchanged.
func (n *Network) AddVCC(vs VCCSpec) (*VCC, error) {
	if vs.Name == "" {
		return nil, fmt.Errorf("core: vcc with empty name")
	}
	if _, dup := n.vccs[vs.Name]; dup {
		return nil, fmt.Errorf("core: duplicate vcc name %q", vs.Name)
	}
	src, ok := n.endpoints[vs.From]
	if !ok {
		return nil, fmt.Errorf("core: vcc %q: unknown source endpoint %q", vs.Name, vs.From)
	}
	dst, ok := n.endpoints[vs.To]
	if !ok {
		return nil, fmt.Errorf("core: vcc %q: unknown destination endpoint %q", vs.Name, vs.To)
	}
	path, err := n.route(vs)
	if err != nil {
		return nil, err
	}
	var abr *tm.ABRParams
	if vs.ABR != nil {
		if !vs.Duplex {
			return nil, fmt.Errorf("core: vcc %q: ABR needs Duplex (backward RM cells ride the reverse path)", vs.Name)
		}
		p := *vs.ABR
		p.Normalize()
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: vcc %q: %w", vs.Name, err)
		}
		abr = &p
	}
	contract := vs.Contract
	if abr != nil {
		contract = abr.Contract()
	} else if contract.PCR == 0 {
		contract = tm.UBRContract(src.station.Iface.Config().PayloadRate)
	}
	if err := contract.Validate(); err != nil {
		return nil, fmt.Errorf("core: vcc %q: %w", vs.Name, err)
	}

	// Per-hop VC allocation: one VC per fiber, requested number preferred.
	want := vs.VC
	if want == (atm.VC{}) {
		want = atm.VC{VPI: 0, VCI: 100}
	}
	vcs := make([]atm.VC, len(path))
	for i, e := range path {
		if vcs[i], err = e.l.allocVC(want); err != nil {
			return nil, fmt.Errorf("core: vcc %q: %w", vs.Name, err)
		}
	}

	// Admission: the source access link, then every switch output port the
	// forward direction drains through; duplex adds the mirror set.
	var admitted []*tm.CAC
	admit := func(cac *tm.CAC) error {
		if err := cac.Admit(contract); err != nil {
			return err
		}
		admitted = append(admitted, cac)
		return nil
	}
	release := func() {
		for _, cac := range admitted {
			cac.Release(contract)
		}
		for i, e := range path {
			delete(e.l.usedVCs, vcs[i])
		}
	}
	if err := admit(n.SourceCAC(vs.From)); err != nil {
		release()
		return nil, fmt.Errorf("core: vcc %q: source %q: %w", vs.Name, vs.From, err)
	}
	for i := 1; i < len(path); i++ {
		sw := path[i].from // a switch: interior path node
		if err := admit(n.PortCAC(sw, path[i].fromPort)); err != nil {
			release()
			return nil, fmt.Errorf("core: vcc %q: switch %q port %d: %w",
				vs.Name, sw, path[i].fromPort, err)
		}
	}
	if vs.Duplex {
		if err := admit(n.SourceCAC(vs.To)); err != nil {
			release()
			return nil, fmt.Errorf("core: vcc %q: source %q: %w", vs.Name, vs.To, err)
		}
		for i := 0; i+1 < len(path); i++ {
			sw := path[i].to
			if err := admit(n.PortCAC(sw, path[i].toPort)); err != nil {
				release()
				return nil, fmt.Errorf("core: vcc %q: switch %q port %d: %w",
					vs.Name, sw, path[i].toPort, err)
			}
		}
	}

	// Routes: each interior node translates (inPort, inVC) → (outPort,
	// outVC); duplex installs the mirror translation.
	v := &VCC{
		Name:     vs.Name,
		Source:   src,
		Dest:     dst,
		SourceVC: vcs[0],
		DestVC:   vcs[len(vcs)-1],
		Contract: contract,
	}
	for i := 0; i+1 < len(path); i++ {
		swName := path[i].to
		sw := n.switches[swName]
		inPort, outPort := path[i].toPort, path[i+1].fromPort
		inVC, outVC := vcs[i], vcs[i+1]
		sw.SetRoute(inPort, inVC, outPort, outVC, netsim.RouteOptions{Class: contract.Class})
		if vs.Duplex {
			sw.SetRoute(outPort, outVC, inPort, inVC, netsim.RouteOptions{Class: contract.Class})
		}
		v.Hops = append(v.Hops, VCCHop{
			Switch: sw, SwitchName: swName,
			InPort: inPort, OutPort: outPort,
			InVC: inVC, OutVC: outVC,
		})
	}

	if err := src.station.Iface.OpenVC(v.SourceVC); err != nil {
		release()
		return nil, fmt.Errorf("core: vcc %q: open %v at %q: %w", vs.Name, v.SourceVC, vs.From, err)
	}
	if err := dst.station.Iface.OpenVC(v.DestVC); err != nil {
		release()
		return nil, fmt.Errorf("core: vcc %q: open %v at %q: %w", vs.Name, v.DestVC, vs.To, err)
	}
	switch {
	case abr != nil:
		// SetABR installs the ACR shaper itself (starting at ICR), so the
		// Shape flag is subsumed.
		if err := src.station.Iface.SetABR(v.SourceVC, *abr); err != nil {
			release()
			return nil, fmt.Errorf("core: vcc %q: abr: %w", vs.Name, err)
		}
	case vs.Shape:
		if err := src.station.Iface.SetContract(v.SourceVC, contract); err != nil {
			release()
			return nil, fmt.Errorf("core: vcc %q: shape: %w", vs.Name, err)
		}
	}

	if vs.Latency {
		if n.group != nil {
			// A timed tap matches ingress (source partition) to egress
			// (destination partition) through one shared capture — state two
			// goroutines would race on. Use the flight recorder's merged
			// NamedSpans for cross-partition latency instead.
			release()
			return nil, fmt.Errorf("core: vcc %q: Latency taps are not supported on sharded builds (the tap would span two partitions); use Recorder stage spans instead", vs.Name)
		}
		// Span the whole connection: ingress as cells leave the source's
		// cell clock, egress as they reach the destination's door. The
		// capture stores nothing until the caller relaxes its Filter.
		cap := trace.New(n.k)
		cap.Filter = func(*atm.Cell) bool { return false }
		timed := cap.TapTimed(n.reg.Histogram("vcc." + vs.Name + ".latency"))
		out := n.outHalf[vs.From]
		in := n.inHalf[vs.To]
		if out == nil || in == nil {
			release()
			return nil, fmt.Errorf("core: vcc %q: latency tap needs both endpoints on cell-granular links (framed links have no per-cell fiber to hook)", vs.Name)
		}
		src.station.Iface.SetOutput(timed.Ingress(out.Send))
		in.AttachSink(atm.SinkFunc(timed.Egress(dst.station.Iface.DeliverCell)))
		v.Capture = cap
		v.Timed = timed
	}

	n.vccs[vs.Name] = v
	return v, nil
}
