package core

import (
	"strings"
	"testing"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// abrBottleneckSpec is the minimal closed loop: one 622 Mb/s source into a
// switch whose output port drains at 155, with EFCI marking and ERICA
// explicit rates armed on every port by the builder.
func abrBottleneckSpec() NetworkSpec {
	erica := netsim.ERICAConfig{TargetUtil: 0.9, Interval: 100 * sim.Microsecond}
	return NetworkSpec{
		Endpoints: []EndpointSpec{
			{Name: "a", Options: Options{Rate: Rate622}},
			{Name: "b", Options: Options{Rate: Rate155}},
		},
		Switches: []SwitchSpec{{
			Name: "sw", Ports: 2, Rate: Rate622, QueueDepth: 512,
			EFCIThreshold: 32, ERICA: &erica,
		}},
		Links: []LinkSpec{
			{Name: "a-sw", A: NodeRef{Node: "a"}, B: NodeRef{Node: "sw", Port: 0}, Delay: 10_000, Seed: 41},
			{Name: "sw-b", A: NodeRef{Node: "sw", Port: 1}, B: NodeRef{Node: "b"}, Delay: 10_000, Seed: 42},
		},
		VCCs: []VCCSpec{{
			Name: "flow", From: "a", To: "b", VC: atm.VC{VCI: 77},
			Duplex: true,
			ABR:    &tm.ABRParams{PCR: units.CellRate(Rate622), ICR: units.CellRate(Rate622) / 16, Nrm: 32},
		}},
	}
}

// TestABRClosedLoopEndToEnd drives the builder-wired loop to steady state:
// a greedy ABR source must settle onto ERICA's explicit rate for a single
// VC at a 622→155 bottleneck — 90% of the output port's cell rate — with
// forward RM cells counted at the source, turnarounds at the destination,
// and explicit rates stamped at the switch.
func TestABRClosedLoopEndToEnd(t *testing.T) {
	net, err := NewNetwork(abrBottleneckSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.Switch("sw").SetPortRate(1, Rate155)
	deadline := sim.Time(10 * sim.Millisecond)
	v := net.VCC("flow")
	netsim.NewSource(net.NodeKernel("a"), v.Source.Station(), v.SourceVC, 9180, deadline).Start(4)
	net.RunUntil(deadline)
	net.Run()

	acr, ok := v.Source.Interface().ACR(v.SourceVC)
	if !ok {
		t.Fatal("source lost its ABR state")
	}
	target := 0.9 * units.CellRate(Rate155)
	if acr < 0.8*target || acr > 1.1*target {
		t.Fatalf("steady-state ACR = %.0f cells/s, want near ERICA target %.0f", acr, target)
	}
	reg := net.Metrics()
	frm := reg.Counter("a.nic.abr.frm_tx").Value()
	turned := reg.Counter("b.nic.abr.turnaround").Value()
	brm := reg.Counter("a.nic.abr.brm_rx").Value()
	stamped := reg.Counter("sw.er_stamped").Value()
	if frm == 0 || turned == 0 || brm == 0 || stamped == 0 {
		t.Fatalf("loop counters: frm=%d turned=%d brm=%d er_stamped=%d — some leg never ran", frm, turned, brm, stamped)
	}
	if turned > frm || brm > turned {
		t.Fatalf("RM conservation violated: frm=%d turned=%d brm=%d", frm, turned, brm)
	}
}

// TestABRSpecValidation pins the builder's rejection of ABR spec shapes the
// loop cannot run on, and the parameter validation pass-through.
func TestABRSpecValidation(t *testing.T) {
	t.Run("needs duplex", func(t *testing.T) {
		spec := abrBottleneckSpec()
		spec.VCCs[0].Duplex = false
		if _, err := NewNetwork(spec); err == nil || !strings.Contains(err.Error(), "Duplex") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad params", func(t *testing.T) {
		spec := abrBottleneckSpec()
		spec.VCCs[0].ABR = &tm.ABRParams{PCR: 1000, MCR: 2000}
		if _, err := NewNetwork(spec); err == nil {
			t.Fatal("MCR > PCR accepted")
		}
	})
}
