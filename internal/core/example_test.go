package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The complete life of a packet through the simulated testbed.
func Example() {
	tb, err := core.NewTestbed(core.Options{}, core.LinkOptions{})
	if err != nil {
		panic(err)
	}
	vc := core.VC{VCI: 42}
	if err := tb.OpenVC(vc); err != nil {
		panic(err)
	}
	tb.B.OnReceive(func(p core.Packet) {
		fmt.Printf("B received %d bytes in %d cells\n", len(p.Data), p.Cells)
	})
	if err := tb.A.Send(vc, make([]byte, 9180), nil); err != nil {
		panic(err)
	}
	tb.Run()
	st := tb.B.Stats()
	fmt.Printf("host interrupts on B: %d\n", tb.B.Host().Interrupts())
	fmt.Printf("cells on the wire: %d\n", st.Rx.Cells)
	// Output:
	// B received 9180 bytes in 192 cells
	// host interrupts on B: 1
	// cells on the wire: 192
}

// Per-VC pacing: the usage-parameter-control knob.
func Example_pacing() {
	tb, _ := core.NewTestbed(core.Options{}, core.LinkOptions{})
	vc := core.VC{VCI: 7}
	tb.OpenVC(vc)
	// 100k cells/s ≈ 38.4 Mb/s of SAR payload.
	if err := tb.A.SetPeakCellRate(vc, 100_000); err != nil {
		panic(err)
	}
	var deliveredAt string
	tb.B.OnReceive(func(p core.Packet) { deliveredAt = p.At.String() })
	tb.A.Send(vc, make([]byte, 480), nil) // 11 cells, 10 µs apart
	tb.Run()
	fmt.Println("paced delivery completed at", deliveredAt)
	// Output:
	// paced delivery completed at 219.673us
}
