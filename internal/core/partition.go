package core

import (
	"fmt"
)

// Partitioning for sharded (conservative-parallel) builds.
//
// The topology graph is cut along fiber links only: every node — an
// endpoint with its NIC, or a switch — lives wholly inside one partition,
// and every cut link must have a positive propagation delay, because that
// delay is the lookahead that lets the partitions advance in parallel
// without ever violating causality. Two kinds of links can never be cut:
//
//   - zero-delay links (no lookahead to exploit: the two ends are causally
//     simultaneous), and
//   - framed (SONET) links, whose tx/rx machinery for both directions is
//     built as one sonetlink world on one kernel.
//
// The default clustering follows the paper's own decomposition: each
// endpoint+NIC (with its access-link send side) is one unit, the switching
// fabric is another. Units joined by an uncuttable link are merged
// (union-find), the unit list is ordered deterministically — endpoints in
// spec order, then the switch cluster — and contiguous runs of units are
// assigned to shards. An explicit NetworkSpec.Partitions overrides all of
// this with a caller-chosen node grouping, validated against the same
// cut rules.

// partitionPlan maps every node to its shard.
type partitionPlan struct {
	of     map[string]int // node name → shard index
	shards int
}

// cut reports whether link ends a and b land in different shards.
func (p *partitionPlan) cut(a, b string) bool { return p.of[a] != p.of[b] }

// uncuttable reports whether a link spec must stay inside one partition,
// with the reason.
func uncuttable(ls LinkSpec) (string, bool) {
	if ls.Framed {
		return "framed (SONET) links live on one kernel", true
	}
	if ls.Delay == 0 && ls.DistanceKm == 0 {
		return "zero propagation delay gives no lookahead", true
	}
	return "", false
}

// planPartitions computes the node→shard assignment for a sharded build.
// Node-name validity is checked here only as far as partitioning needs;
// the main build loop still performs its full validation afterwards.
func planPartitions(spec NetworkSpec) (*partitionPlan, error) {
	if len(spec.Partitions) > 0 {
		return planExplicit(spec)
	}
	return planDefault(spec)
}

// planExplicit validates and applies a caller-supplied node grouping.
func planExplicit(spec NetworkSpec) (*partitionPlan, error) {
	p := &partitionPlan{of: make(map[string]int), shards: len(spec.Partitions)}
	for i, part := range spec.Partitions {
		if len(part) == 0 {
			return nil, fmt.Errorf("core: Partitions[%d] is empty", i)
		}
		for _, node := range part {
			if _, dup := p.of[node]; dup {
				return nil, fmt.Errorf("core: node %q in more than one partition", node)
			}
			p.of[node] = i
		}
	}
	covered := 0
	for _, es := range spec.Endpoints {
		if _, ok := p.of[es.Name]; !ok {
			return nil, fmt.Errorf("core: endpoint %q missing from Partitions", es.Name)
		}
		covered++
	}
	for _, ss := range spec.Switches {
		if _, ok := p.of[ss.Name]; !ok {
			return nil, fmt.Errorf("core: switch %q missing from Partitions", ss.Name)
		}
		covered++
	}
	if covered != len(p.of) {
		return nil, fmt.Errorf("core: Partitions name %d unknown node(s)", len(p.of)-covered)
	}
	for _, ls := range spec.Links {
		if !p.cut(ls.A.Node, ls.B.Node) {
			continue
		}
		if why, bad := uncuttable(ls); bad {
			return nil, fmt.Errorf("core: link %q cannot cross partitions: %s", ls.Name, why)
		}
	}
	return p, nil
}

// planDefault clusters the topology along its natural seams: one unit per
// endpoint plus one unit holding every switch, merged across uncuttable
// links, then dealt to min(Shards, units) shards in contiguous runs.
func planDefault(spec NetworkSpec) (*partitionPlan, error) {
	// Union-find over node names. All switches start merged: inter-switch
	// fabric traffic is the densest coupling, and splitting it is what the
	// explicit Partitions override is for.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, es := range spec.Endpoints {
		parent[es.Name] = es.Name
	}
	firstSwitch := ""
	for _, ss := range spec.Switches {
		parent[ss.Name] = ss.Name
		if firstSwitch == "" {
			firstSwitch = ss.Name
		} else {
			union(ss.Name, firstSwitch)
		}
	}
	for _, ls := range spec.Links {
		if _, bad := uncuttable(ls); bad {
			if _, okA := parent[ls.A.Node]; !okA {
				return nil, fmt.Errorf("core: link %q references unknown node %q", ls.Name, ls.A.Node)
			}
			if _, okB := parent[ls.B.Node]; !okB {
				return nil, fmt.Errorf("core: link %q references unknown node %q", ls.Name, ls.B.Node)
			}
			union(ls.A.Node, ls.B.Node)
		}
	}

	// Deterministic unit order: first appearance, endpoints before the
	// switch cluster (endpoint units are the parallel workload; the switch
	// cluster goes last so it lands in its own shard when counts allow).
	unitIdx := make(map[string]int)
	var order []string
	addUnit := func(node string) {
		root := find(node)
		if _, ok := unitIdx[root]; !ok {
			unitIdx[root] = len(order)
			order = append(order, root)
		}
	}
	for _, es := range spec.Endpoints {
		addUnit(es.Name)
	}
	for _, ss := range spec.Switches {
		addUnit(ss.Name)
	}

	shards := spec.Shards
	if shards > len(order) {
		shards = len(order)
	}
	if shards < 1 {
		shards = 1
	}
	p := &partitionPlan{of: make(map[string]int, len(parent)), shards: shards}
	// Contiguous runs: unit u → shard u*shards/len(order) keeps runs within
	// one of each other in size and preserves spec-order adjacency.
	for node := range parent {
		u := unitIdx[find(node)]
		p.of[node] = u * shards / len(order)
	}
	return p, nil
}
