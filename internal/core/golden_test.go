package core

// Golden equivalence: a topology declared through NewNetwork must be
// event-for-event identical — cell timing and wire bytes — to the same
// topology wired by hand from netsim/phy primitives, the way all code built
// testbeds before the builder existed. Construction order, link seed
// derivation and route classes are all pinned by these tests; a regression
// here means NewNetwork changed the physics, not just the plumbing.

import (
	"bytes"
	"testing"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// arrival is one cell crossing the tap point: when, and the full 53-byte
// wire image.
type arrival struct {
	at   sim.Time
	wire [atm.CellSize]byte
}

// tapInto wraps sink so every delivered cell is recorded before hand-off.
// Recording is a plain function call at delivery time, so it cannot perturb
// the simulation.
func tapInto(t *testing.T, out *[]arrival, k *sim.Kernel, sink atm.CellConsumer) atm.CellConsumer {
	return atm.SinkFunc(func(c *atm.Cell) {
		var a arrival
		a.at = k.Now()
		if err := c.Encode(a.wire[:]); err != nil {
			t.Fatal(err)
		}
		*out = append(*out, a)
		sink.DeliverCell(c)
	})
}

func compareArrivals(t *testing.T, legacy, built []arrival) {
	t.Helper()
	if len(legacy) == 0 {
		t.Fatal("no cells crossed the tap")
	}
	if len(legacy) != len(built) {
		t.Fatalf("cell counts differ: legacy %d, builder %d", len(legacy), len(built))
	}
	for i := range legacy {
		if legacy[i].at != built[i].at {
			t.Fatalf("cell %d: time %v (legacy) vs %v (builder)", i, legacy[i].at, built[i].at)
		}
		if !bytes.Equal(legacy[i].wire[:], built[i].wire[:]) {
			t.Fatalf("cell %d: wire bytes differ at %v", i, legacy[i].at)
		}
	}
}

// driveFrames offers the same deterministic load in every variant: three
// frames of distinct sizes, back to back from t=0.
func driveFrames(t *testing.T, send func(vc atm.VC, data []byte) error, vc atm.VC) {
	t.Helper()
	for i, size := range []int{3000, 40, 9180} {
		payload := make([]byte, size)
		for j := range payload {
			payload[j] = byte(i*31 + j)
		}
		if err := send(vc, payload); err != nil {
			t.Fatal(err)
		}
	}
}

const (
	goldenDelay = sim.Duration(5000)
	goldenSeed  = uint64(9)
)

// goldenDirectLegacy is the pre-builder wiring of a two-station testbed:
// netsim.Connect with the a→b fiber tapped at b's door.
func goldenDirectLegacy(t *testing.T, k *sim.Kernel, vc atm.VC) []arrival {
	a, err := netsim.NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := netsim.Connect(k, a, b, netsim.LinkConfig{Delay: goldenDelay, Seed: goldenSeed})
	var got []arrival
	ab.AttachSink(tapInto(t, &got, k, b.Iface))
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)
	driveFrames(t, func(vc atm.VC, data []byte) error { return a.Iface.Send(vc, data, nil) }, vc)
	k.Run()
	return got
}

func goldenDirectBuilt(t *testing.T, k *sim.Kernel, vc atm.VC) []arrival {
	n, err := NewNetwork(NetworkSpec{
		Kernel:    k,
		Endpoints: []EndpointSpec{{Name: "a"}, {Name: "b"}},
		Links: []LinkSpec{{
			Name: "ab", A: NodeRef{Node: "a"}, B: NodeRef{Node: "b"},
			Delay: goldenDelay, Seed: goldenSeed,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []arrival
	n.Link("ab").Fwd.AttachSink(tapInto(t, &got, k, n.Endpoint("b").Interface()))
	n.Endpoint("a").Interface().OpenVC(vc)
	n.Endpoint("b").Interface().OpenVC(vc)
	driveFrames(t, func(vc atm.VC, data []byte) error { return n.Endpoint("a").Send(vc, data, nil) }, vc)
	n.Run()
	return got
}

func TestGoldenDirectLinkMatchesLegacyWiring(t *testing.T) {
	vc := atm.VC{VCI: 100}
	legacy := goldenDirectLegacy(t, sim.NewKernel(), vc)
	built := goldenDirectBuilt(t, sim.NewKernel(), vc)
	compareArrivals(t, legacy, built)
}

// goldenSwitchLegacy hand-wires a 1-switch path exactly the way the builder
// constructs it: stations, switch, then per-link forward fiber (seed 2s+1)
// before reverse fiber (seed 2s+2), producers attached after both exist.
func goldenSwitchLegacy(t *testing.T, k *sim.Kernel, vc atm.VC) []arrival {
	a, err := netsim.NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	sw := netsim.NewSwitch(k, "sw", 2, units.STS3cPayload, 64)

	fwd1 := phy.NewCellLink(k, goldenDelay, goldenSeed*2+1, sw.Port(0))
	rev1 := phy.NewCellLink(k, goldenDelay, goldenSeed*2+2, a.Iface)
	a.Iface.AttachSink(fwd1)
	sw.Port(0).AttachSink(rev1)

	fwd2 := phy.NewCellLink(k, 0, (goldenSeed+1)*2+1, b.Iface)
	rev2 := phy.NewCellLink(k, 0, (goldenSeed+1)*2+2, sw.Port(1))
	sw.Port(1).AttachSink(fwd2)
	b.Iface.AttachSink(rev2)

	sw.SetRoute(0, vc, 1, vc, netsim.RouteOptions{Class: tm.UBR})
	var got []arrival
	fwd2.AttachSink(tapInto(t, &got, k, b.Iface))
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)
	driveFrames(t, func(vc atm.VC, data []byte) error { return a.Iface.Send(vc, data, nil) }, vc)
	k.Run()
	return got
}

func goldenSwitchBuilt(t *testing.T, k *sim.Kernel, vc atm.VC) []arrival {
	n, err := NewNetwork(NetworkSpec{
		Kernel:    k,
		Endpoints: []EndpointSpec{{Name: "a"}, {Name: "b"}},
		Switches:  []SwitchSpec{{Name: "sw", Ports: 2, Rate: units.STS3cPayload, QueueDepth: 64}},
		Links: []LinkSpec{
			{Name: "a-sw", A: NodeRef{Node: "a"}, B: NodeRef{Node: "sw", Port: 0},
				Delay: goldenDelay, Seed: goldenSeed},
			{Name: "sw-b", A: NodeRef{Node: "sw", Port: 1}, B: NodeRef{Node: "b"},
				Seed: goldenSeed + 1},
		},
		VCCs: []VCCSpec{{Name: "ab", From: "a", To: "b", VC: vc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	vcc := n.VCC("ab")
	if vcc.SourceVC != vc || vcc.DestVC != vc {
		t.Fatalf("VC allocation moved: %v → %v", vcc.SourceVC, vcc.DestVC)
	}
	var got []arrival
	n.Link("sw-b").Fwd.AttachSink(tapInto(t, &got, k, n.Endpoint("b").Interface()))
	driveFrames(t, func(vc atm.VC, data []byte) error { return n.Endpoint("a").Send(vc, data, nil) }, vc)
	n.Run()
	return got
}

func TestGoldenOneSwitchMatchesLegacyWiring(t *testing.T) {
	vc := atm.VC{VCI: 100}
	legacy := goldenSwitchLegacy(t, sim.NewKernel(), vc)
	built := goldenSwitchBuilt(t, sim.NewKernel(), vc)
	compareArrivals(t, legacy, built)
}

// The equivalence must hold under the heap kernel too — the builder may not
// depend on any scheduling property specific to the timing wheel.
func TestGoldenOneSwitchHeapKernel(t *testing.T) {
	vc := atm.VC{VCI: 100}
	wheel := goldenSwitchBuilt(t, sim.NewKernel(), vc)
	heap := goldenSwitchBuilt(t, sim.NewHeapKernel(), vc)
	compareArrivals(t, wheel, heap)
	legacy := goldenSwitchLegacy(t, sim.NewHeapKernel(), vc)
	compareArrivals(t, legacy, heap)
}

// NewTestbed is a thin wrapper over NewNetwork; its behaviour must equal
// the direct-link golden wiring (same delay, same seed derivation).
func TestGoldenTestbedWrapsBuilder(t *testing.T) {
	tb, err := NewTestbed(Options{}, LinkOptions{DistanceKm: 1, Seed: goldenSeed - 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Network().Link("ab").Fwd != tb.AtoB {
		t.Fatal("testbed link handle is not the builder's")
	}
	k := sim.NewKernel()
	a, _ := netsim.NewStation(k, nic.DefaultConfig("A"))
	b, _ := netsim.NewStation(k, nic.DefaultConfig("B"))
	ab, _ := netsim.Connect(k, a, b, netsim.LinkConfig{Delay: phy.PropDelay(1), Seed: goldenSeed})
	vc := atm.VC{VCI: 100}
	var legacy, built []arrival
	ab.AttachSink(tapInto(t, &legacy, k, b.Iface))
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)
	driveFrames(t, func(vc atm.VC, data []byte) error { return a.Iface.Send(vc, data, nil) }, vc)
	k.Run()

	tb.AtoB.AttachSink(tapInto(t, &built, tb.Kernel(), tb.B.Interface()))
	tb.OpenVC(vc)
	driveFrames(t, func(vc atm.VC, data []byte) error { return tb.A.Send(vc, data, nil) }, vc)
	tb.Run()
	compareArrivals(t, legacy, built)
}
