// Package transport is the layer the paper leaves to the host: a reliable
// transport running on the workstation CPU above the interface's AAL
// service. It is a deliberately simple go-back-N protocol — enough to
// demonstrate the architecture's division of labor end to end (the adapter
// never retransmits; cell loss surfaces as a missing AAL frame, and the
// HOST recovers it) and to measure what loss does to a window protocol over
// ATM, the phenomenon that motivated the era's reliable-transport work.
//
// Framing (all big-endian), carried as the first bytes of each AAL SDU:
//
//	DATA: type=1 (1) | msg id (1) | seq (4) | message length (4) | payload
//	ACK:  type=2 (1) | msg id (1) | cumulative next-expected seq (4)
//	      [+ selective bitmap (4): bit i = segment cum+1+i received]
//
// Two retransmission disciplines are provided, the era's standing debate:
// go-back-N (tiny receiver state, resends whole windows) and selective
// repeat (receiver buffers out of order, sender resends only holes). The
// ablation benchmark quantifies the difference under cell loss.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/atm"
	"repro/internal/nic"
	"repro/internal/sim"
)

const (
	typeData = 1
	typeAck  = 2
	// DataHeaderSize and AckSize are the wire sizes (an ACK may carry a
	// 4-byte selective bitmap beyond AckSize).
	DataHeaderSize = 10
	AckSize        = 6
	ackSRSize      = 10
)

// Config tunes the protocol.
type Config struct {
	// Window is the maximum unacknowledged segments in flight.
	Window int
	// SegmentSize is the maximum payload bytes per segment.
	SegmentSize int
	// RTO is the retransmission timeout for the oldest unacked segment.
	RTO sim.Duration
	// MaxRetries bounds consecutive timeouts before the connection fails.
	MaxRetries int
	// SelectiveRepeat switches both ends from go-back-N to selective
	// repeat (set it on the sender's Config and the receiver's field).
	SelectiveRepeat bool
}

// DefaultConfig is sized for the testbed: 8 segments of 8 KiB, 10 ms RTO.
func DefaultConfig() Config {
	return Config{Window: 8, SegmentSize: 8192, RTO: 10 * sim.Millisecond, MaxRetries: 8}
}

// Errors.
var (
	ErrTooManyRetries = errors.New("transport: retries exhausted")
	ErrBusy           = errors.New("transport: a message is already in flight")
	ErrClosed         = errors.New("transport: connection failed")
	ErrSDUTooLarge    = errors.New("transport: segment would exceed the interface's MaxSDU")
)

// Stats counts protocol events on the sending side.
type Stats struct {
	Segments    uint64 // first transmissions
	Retransmits uint64
	Timeouts    uint64
	AcksSeen    uint64
}

// Sender transmits messages reliably over one VC of an interface. ACKs
// arrive on the reverse direction of the same VC: wire the interface's
// receive path for this VC to HandleAck.
type Sender struct {
	k     *sim.Kernel
	iface *nic.Interface
	vc    atm.VC
	cfg   Config

	msgID    uint8
	segments [][]byte
	base     uint32 // oldest unacked
	next     uint32 // next never-sent
	sacked   map[uint32]bool
	total    uint32
	msgLen   uint32
	timer    *sim.Event
	retries  int
	onDone   func(err error)
	inFlight bool
	closed   bool
	stats    Stats
}

// NewSender builds a sender for vc on iface.
func NewSender(k *sim.Kernel, iface *nic.Interface, vc atm.VC, cfg Config) *Sender {
	if cfg.Window <= 0 || cfg.SegmentSize <= 0 || cfg.RTO <= 0 {
		panic("transport: invalid config")
	}
	return &Sender{k: k, iface: iface, vc: vc, cfg: cfg}
}

// Stats returns the sender's counters.
func (s *Sender) Stats() Stats { return s.stats }

// Send transmits one message reliably; onDone fires with nil when the whole
// message is acknowledged, or with an error when retries are exhausted.
// One message at a time (this example transport has no stream multiplexing).
func (s *Sender) Send(msg []byte, onDone func(err error)) error {
	if s.closed {
		return ErrClosed
	}
	if s.inFlight {
		return ErrBusy
	}
	if len(msg) == 0 {
		return fmt.Errorf("transport: empty message")
	}
	// Reject up front what the interface would refuse cell by cell: the
	// largest frame this message produces must fit the adaptation layer's
	// SDU bound, or the mid-message iface.Send failure would be fatal.
	seg := s.cfg.SegmentSize
	if len(msg) < seg {
		seg = len(msg)
	}
	if max := s.iface.Config().MaxSDU; DataHeaderSize+seg > max {
		return fmt.Errorf("%w: header %d + segment %d > MaxSDU %d",
			ErrSDUTooLarge, DataHeaderSize, seg, max)
	}
	s.msgID++
	s.segments = s.segments[:0]
	for off := 0; off < len(msg); off += s.cfg.SegmentSize {
		end := off + s.cfg.SegmentSize
		if end > len(msg) {
			end = len(msg)
		}
		s.segments = append(s.segments, msg[off:end])
	}
	s.base, s.next = 0, 0
	s.sacked = make(map[uint32]bool)
	s.total = uint32(len(s.segments))
	s.msgLen = uint32(len(msg))
	s.retries = 0
	s.onDone = onDone
	s.inFlight = true
	s.pump()
	return nil
}

// pump sends segments up to the window and (re)arms the timer.
func (s *Sender) pump() {
	for s.next < s.total && s.next < s.base+uint32(s.cfg.Window) {
		s.sendSegment(s.next, false)
		s.next++
	}
	s.armTimer()
}

func (s *Sender) sendSegment(seq uint32, retransmit bool) {
	payload := s.segments[seq]
	buf := make([]byte, DataHeaderSize+len(payload))
	buf[0] = typeData
	buf[1] = s.msgID
	binary.BigEndian.PutUint32(buf[2:6], seq)
	binary.BigEndian.PutUint32(buf[6:10], s.msgLen)
	copy(buf[DataHeaderSize:], payload)
	if retransmit {
		s.stats.Retransmits++
	} else {
		s.stats.Segments++
	}
	if err := s.iface.Send(s.vc, buf, nil); err != nil {
		panic("transport: interface send failed: " + err.Error())
	}
}

func (s *Sender) armTimer() {
	s.k.Cancel(s.timer)
	s.timer = nil
	if !s.inFlight {
		return
	}
	s.timer = s.k.After(s.cfg.RTO, s.timeout)
}

// timeout resends what the discipline requires: everything outstanding
// under go-back-N, only unacknowledged holes under selective repeat.
func (s *Sender) timeout() {
	s.timer = nil
	if !s.inFlight {
		return
	}
	s.stats.Timeouts++
	s.retries++
	if s.retries > s.cfg.MaxRetries {
		s.fail(ErrTooManyRetries)
		return
	}
	for seq := s.base; seq < s.next; seq++ {
		if s.cfg.SelectiveRepeat && s.sacked[seq] {
			continue
		}
		s.sendSegment(seq, true)
	}
	s.armTimer()
}

func (s *Sender) fail(err error) {
	s.inFlight = false
	s.closed = true
	s.k.Cancel(s.timer)
	s.timer = nil
	if s.onDone != nil {
		s.onDone(err)
	}
}

// HandleAck processes an SDU from the reverse direction; non-ACK or
// stale-message SDUs are ignored.
func (s *Sender) HandleAck(sdu []byte) {
	if len(sdu) < AckSize || sdu[0] != typeAck || !s.inFlight {
		return
	}
	if sdu[1] != s.msgID {
		return
	}
	s.stats.AcksSeen++
	ackNext := binary.BigEndian.Uint32(sdu[2:6])
	if s.cfg.SelectiveRepeat && len(sdu) >= ackSRSize {
		bitmap := binary.BigEndian.Uint32(sdu[6:10])
		for i := uint32(0); i < 32; i++ {
			if bitmap&(1<<i) != 0 {
				s.sacked[ackNext+1+i] = true
			}
		}
	}
	if ackNext > s.total {
		return
	}
	if ackNext <= s.base {
		return
	}
	for seq := s.base; seq < ackNext; seq++ {
		delete(s.sacked, seq)
	}
	s.base = ackNext
	s.retries = 0
	if s.base == s.total {
		s.inFlight = false
		s.k.Cancel(s.timer)
		s.timer = nil
		if s.onDone != nil {
			s.onDone(nil)
		}
		return
	}
	s.pump()
}

// Receiver accepts DATA segments in order, acknowledges cumulatively, and
// delivers completed messages.
type Receiver struct {
	// SelectiveRepeat buffers out-of-order segments and advertises them
	// in a bitmap, instead of discarding them (set to match the sender).
	SelectiveRepeat bool

	iface     *nic.Interface
	vc        atm.VC
	msgID     uint8
	started   bool
	expect    uint32
	buf       []byte
	ooo       map[uint32][]byte // out-of-order hold (selective repeat)
	msgLen    uint32
	onMessage func([]byte)

	// Completion memory, so a lost final ACK can be regenerated when the
	// sender retransmits the tail of an already-delivered message.
	lastID      uint8
	lastAckNext uint32
	haveLast    bool

	// DupSegments counts retransmissions of already-received data — the
	// bandwidth go-back-N wastes, visible in the loss tests.
	DupSegments uint64
}

// NewReceiver builds a receiver that sends ACKs back on vc via iface.
func NewReceiver(iface *nic.Interface, vc atm.VC, onMessage func([]byte)) *Receiver {
	return &Receiver{iface: iface, vc: vc, onMessage: onMessage}
}

// HandleData processes an arriving SDU. Out-of-order segments are discarded
// (go-back-N receivers keep no reassembly state beyond a cursor) and the
// cumulative ACK reasserted so the sender backs up.
func (r *Receiver) HandleData(sdu []byte) {
	if len(sdu) < DataHeaderSize || sdu[0] != typeData {
		return
	}
	id := sdu[1]
	seq := binary.BigEndian.Uint32(sdu[2:6])
	msgLen := binary.BigEndian.Uint32(sdu[6:10])

	if !r.started || id != r.msgID {
		// Any segment of a message we already delivered (its final ACK
		// was lost) must only regenerate the ACK — never re-deliver.
		if r.haveLast && id == r.lastID {
			r.DupSegments++
			r.ackRaw(id, r.lastAckNext)
			return
		}
		// A new message begins only at segment 0; mid-message strays
		// from an unknown message are dropped (the sender will fail or
		// restart from 0).
		if seq != 0 {
			return
		}
		r.msgID = id
		r.started = true
		r.expect = 0
		r.buf = r.buf[:0]
		r.ooo = nil
		r.msgLen = msgLen
	}

	switch {
	case seq == r.expect:
		r.buf = append(r.buf, sdu[DataHeaderSize:]...)
		r.expect++
		// Drain any buffered successors (selective repeat).
		for r.ooo != nil {
			p, ok := r.ooo[r.expect]
			if !ok {
				break
			}
			delete(r.ooo, r.expect)
			r.buf = append(r.buf, p...)
			r.expect++
		}
		if uint32(len(r.buf)) >= r.msgLen {
			msg := make([]byte, r.msgLen)
			copy(msg, r.buf)
			r.ackRaw(r.msgID, r.expect)
			r.lastID, r.lastAckNext, r.haveLast = r.msgID, r.expect, true
			r.started = false // next message must begin at seq 0
			r.ooo = nil
			if r.onMessage != nil {
				r.onMessage(msg)
			}
			return
		}
	case seq < r.expect:
		r.DupSegments++
	default:
		if r.SelectiveRepeat {
			if r.ooo == nil {
				r.ooo = make(map[uint32][]byte)
			}
			if _, dup := r.ooo[seq]; dup {
				r.DupSegments++
			} else if seq <= r.expect+32 { // bitmap reach
				p := make([]byte, len(sdu)-DataHeaderSize)
				copy(p, sdu[DataHeaderSize:])
				r.ooo[seq] = p
			}
		}
		// Go-back-N: drop, reassert cursor below.
	}
	r.ackRaw(r.msgID, r.expect)
}

func (r *Receiver) ackRaw(id uint8, next uint32) {
	size := AckSize
	if r.SelectiveRepeat {
		size = ackSRSize
	}
	buf := make([]byte, size)
	buf[0] = typeAck
	buf[1] = id
	binary.BigEndian.PutUint32(buf[2:6], next)
	if r.SelectiveRepeat {
		var bitmap uint32
		for seq := range r.ooo {
			if seq > next && seq <= next+32 {
				bitmap |= 1 << (seq - next - 1)
			}
		}
		binary.BigEndian.PutUint32(buf[6:10], bitmap)
	}
	r.iface.Send(r.vc, buf, nil)
}
