package transport

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
)

// rig wires a Sender at station a to a Receiver at station b over a duplex
// (optionally lossy) link.
type rig struct {
	k        *sim.Kernel
	a, b     *netsim.Station
	ab, ba   *phy.CellLink
	sender   *Sender
	received [][]byte
}

func newRig(t *testing.T, loss float64, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	a, err := netsim.NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	ab, ba := netsim.Connect(k, a, b, netsim.LinkConfig{Delay: 10_000, LossProb: loss, Seed: 11})
	r := &rig{k: k, a: a, b: b, ab: ab, ba: ba}

	vc := atm.VC{VCI: 50}
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)
	r.sender = NewSender(k, a.Iface, vc, cfg)
	recv := NewReceiver(b.Iface, vc, func(msg []byte) { r.received = append(r.received, msg) })
	// Wire the interfaces' delivery paths to the protocol handlers.
	b.Iface.OnReceive(func(d nic.Delivered) { recv.HandleData(d.SDU) })
	a.Iface.OnReceive(func(d nic.Delivered) { r.sender.HandleAck(d.SDU) })
	return r
}

func msgBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*41 + 11)
	}
	return b
}

func TestReliableDeliveryCleanLink(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	msg := msgBytes(60000) // 8 segments
	var done error = errors.New("pending")
	r.sender.Send(msg, func(err error) { done = err })
	r.k.Run()
	if done != nil {
		t.Fatalf("done err = %v", done)
	}
	if len(r.received) != 1 || !bytes.Equal(r.received[0], msg) {
		t.Fatal("message not delivered intact")
	}
	st := r.sender.Stats()
	if st.Retransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("clean link retransmitted: %+v", st)
	}
}

func TestReliableDeliveryUnderCellLoss(t *testing.T) {
	// 0.2% cell loss: with ~171-cell segments most messages see at least
	// one damaged segment; the transport must still deliver every byte.
	cfg := DefaultConfig()
	cfg.RTO = 5 * sim.Millisecond
	cfg.MaxRetries = 30
	r := newRig(t, 0.002, cfg)
	var sendNext func(i int)
	const msgs = 5
	completed := 0
	sendNext = func(i int) {
		if i == msgs {
			return
		}
		r.sender.Send(msgBytes(40000+i*1000), func(err error) {
			if err != nil {
				t.Fatalf("message %d failed: %v", i, err)
			}
			completed++
			sendNext(i + 1)
		})
	}
	sendNext(0)
	r.k.Run()
	if completed != msgs || len(r.received) != msgs {
		t.Fatalf("completed %d, received %d of %d", completed, len(r.received), msgs)
	}
	for i, msg := range r.received {
		if !bytes.Equal(msg, msgBytes(40000+i*1000)) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	if r.sender.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions under 0.2% cell loss — loss model broken?")
	}
}

func TestSenderFailsWhenLinkDead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTO = 2 * sim.Millisecond
	cfg.MaxRetries = 3
	r := newRig(t, 1.0, cfg) // everything lost
	var done error
	r.sender.Send(msgBytes(1000), func(err error) { done = err })
	r.k.Run()
	if !errors.Is(done, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", done)
	}
	// The connection is closed afterwards.
	if err := r.sender.Send(msgBytes(10), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-failure Send err = %v", err)
	}
}

func TestOneMessageAtATime(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	r.sender.Send(msgBytes(100000), nil)
	if err := r.sender.Send(msgBytes(10), nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	r.k.Run()
}

func TestEmptyMessageRejected(t *testing.T) {
	r := newRig(t, 0, DefaultConfig())
	if err := r.sender.Send(nil, nil); err == nil {
		t.Fatal("empty message accepted")
	}
}

func TestLostFinalAckRegenerated(t *testing.T) {
	// Drop cells only during a window around the first completion, so the
	// final ACK vanishes; the sender's retransmission must elicit a fresh
	// ACK, not a duplicate delivery.
	cfg := DefaultConfig()
	cfg.RTO = 3 * sim.Millisecond
	r := newRig(t, 0, cfg)
	msg := msgBytes(7000) // single segment
	var doneAt sim.Time
	r.sender.Send(msg, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		doneAt = r.k.Now()
	})
	// Kill the reverse path for the first 2 ms (the first ACK dies).
	r.ba.LossProb = 1.0
	r.k.After(2*sim.Millisecond, func() { r.ba.LossProb = 0 })
	r.k.Run()
	if doneAt == 0 {
		t.Fatal("sender never completed")
	}
	if len(r.received) != 1 {
		t.Fatalf("delivered %d times, want exactly once", len(r.received))
	}
	if r.sender.Stats().Retransmits == 0 {
		t.Fatal("final ACK loss caused no retransmission")
	}
}

func TestGoBackNWastesBandwidthUnderLoss(t *testing.T) {
	// The design's known cost: a mid-window loss forces retransmission of
	// everything after it; the receiver counts the duplicates.
	cfg := DefaultConfig()
	cfg.RTO = 5 * sim.Millisecond
	cfg.MaxRetries = 50
	r := newRig(t, 0.004, cfg)
	done := false
	r.sender.Send(msgBytes(120000), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	r.k.Run()
	if !done {
		t.Fatal("message never completed")
	}
	st := r.sender.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions at 0.4% loss on a 15-segment message")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewSender(k, nil, atm.VC{}, Config{})
}

// newRigSR is newRig with selective repeat on both ends.
func newRigSR(t *testing.T, loss float64, cfg Config) *rig {
	t.Helper()
	cfg.SelectiveRepeat = true
	k := sim.NewKernel()
	a, _ := netsim.NewStation(k, nic.DefaultConfig("a"))
	b, _ := netsim.NewStation(k, nic.DefaultConfig("b"))
	ab, ba := netsim.Connect(k, a, b, netsim.LinkConfig{Delay: 10_000, LossProb: loss, Seed: 11})
	r := &rig{k: k, a: a, b: b, ab: ab, ba: ba}
	vc := atm.VC{VCI: 50}
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)
	r.sender = NewSender(k, a.Iface, vc, cfg)
	recv := NewReceiver(b.Iface, vc, func(msg []byte) { r.received = append(r.received, msg) })
	recv.SelectiveRepeat = true
	b.Iface.OnReceive(func(d nic.Delivered) { recv.HandleData(d.SDU) })
	a.Iface.OnReceive(func(d nic.Delivered) { r.sender.HandleAck(d.SDU) })
	return r
}

func TestSelectiveRepeatDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTO = 5 * sim.Millisecond
	cfg.MaxRetries = 50
	r := newRigSR(t, 0.002, cfg)
	msg := msgBytes(120000)
	var done error = errors.New("pending")
	r.sender.Send(msg, func(err error) { done = err })
	r.k.Run()
	if done != nil {
		t.Fatalf("err = %v", done)
	}
	if len(r.received) != 1 || !bytes.Equal(r.received[0], msg) {
		t.Fatal("SR message corrupted")
	}
}

func TestSelectiveRepeatRetransmitsLessThanGBN(t *testing.T) {
	run := func(sr bool) uint64 {
		cfg := DefaultConfig()
		cfg.RTO = 5 * sim.Millisecond
		cfg.MaxRetries = 100
		var r *rig
		if sr {
			r = newRigSR(t, 0.003, cfg)
		} else {
			r = newRig(t, 0.003, cfg)
		}
		ok := false
		r.sender.Send(msgBytes(200000), func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			ok = true
		})
		r.k.Run()
		if !ok {
			t.Fatal("transfer incomplete")
		}
		return r.sender.Stats().Retransmits
	}
	gbn := run(false)
	sr := run(true)
	if gbn == 0 {
		t.Fatal("no retransmissions at 0.3% loss; rig broken")
	}
	if sr >= gbn {
		t.Fatalf("selective repeat retransmitted %d >= go-back-N's %d", sr, gbn)
	}
}

func TestSelectiveRepeatOrderPreserved(t *testing.T) {
	// Force out-of-order arrival: drop one mid-window segment's cells by
	// pulsing loss, then verify byte-exact reassembly.
	cfg := DefaultConfig()
	cfg.RTO = 4 * sim.Millisecond
	cfg.MaxRetries = 60
	r := newRigSR(t, 0, cfg)
	msg := msgBytes(64 * 1024)
	done := false
	r.sender.Send(msg, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	// 100% loss for a slice of the first window: some segments vanish,
	// later ones arrive out of order and must be held.
	r.k.After(300_000, func() { r.ab.LossProb = 1 })
	r.k.After(900_000, func() { r.ab.LossProb = 0 })
	r.k.Run()
	if !done || len(r.received) != 1 {
		t.Fatal("transfer incomplete")
	}
	if !bytes.Equal(r.received[0], msg) {
		t.Fatal("out-of-order hold corrupted the message")
	}
}

func TestOneCellSDUBoundary(t *testing.T) {
	// DataHeaderSize + 30 payload bytes = a 40-byte SDU: with AAL5's 8-byte
	// trailer that is exactly one cell. One byte more must spill into a
	// second cell.
	for _, tc := range []struct {
		payload, cells int
	}{
		{30, 1}, // 40-byte SDU: boundary, exactly one cell
		{31, 2}, // 41-byte SDU: trailer no longer fits
	} {
		r := newRig(t, 0, DefaultConfig())
		var done error = errors.New("pending")
		if err := r.sender.Send(msgBytes(tc.payload), func(err error) { done = err }); err != nil {
			t.Fatal(err)
		}
		r.k.Run()
		if done != nil {
			t.Fatalf("payload %d: done err = %v", tc.payload, done)
		}
		if len(r.received) != 1 || len(r.received[0]) != tc.payload {
			t.Fatalf("payload %d: delivery %d msgs", tc.payload, len(r.received))
		}
		if got := r.b.Iface.Stats().Rx.Cells; got != uint64(tc.cells) {
			t.Errorf("payload %d: %d data cells at b, want %d", tc.payload, got, tc.cells)
		}
	}
}

func TestSendRejectsOversizedSegment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SegmentSize = 65530 // DataHeaderSize + 65530 > the default 65535 MaxSDU
	r := newRig(t, 0, cfg)
	err := r.sender.Send(msgBytes(70000), nil)
	if !errors.Is(err, ErrSDUTooLarge) {
		t.Fatalf("oversized segment: err = %v, want ErrSDUTooLarge", err)
	}
	// The rejection happens before any state changes: the sender is neither
	// busy nor closed, and a message whose single segment fits still goes.
	var done error = errors.New("pending")
	if err := r.sender.Send(msgBytes(100), func(e error) { done = e }); err != nil {
		t.Fatalf("small message after rejection: %v", err)
	}
	r.k.Run()
	if done != nil || len(r.received) != 1 {
		t.Fatalf("recovery send failed: done=%v received=%d", done, len(r.received))
	}
}

func TestMaxSDUSizedSegmentStillFits(t *testing.T) {
	// The largest legal segment: DataHeaderSize + SegmentSize == MaxSDU.
	cfg := DefaultConfig()
	max := nic.DefaultConfig("x").MaxSDU
	cfg.SegmentSize = max - DataHeaderSize
	r := newRig(t, 0, cfg)
	var done error = errors.New("pending")
	if err := r.sender.Send(msgBytes(cfg.SegmentSize), func(e error) { done = e }); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if done != nil || len(r.received) != 1 || len(r.received[0]) != cfg.SegmentSize {
		t.Fatalf("max-SDU segment not delivered: done=%v", done)
	}
}
