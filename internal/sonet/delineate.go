package sonet

import (
	"repro/internal/crc"
)

// DelineationState is the I.432 cell-delineation state.
type DelineationState uint8

const (
	// Hunt: sliding byte-by-byte looking for one valid HEC.
	Hunt DelineationState = iota
	// Presync: candidate boundary found; needs delta consecutive valid
	// HECs at cell spacing to be trusted.
	Presync
	// Sync: locked; alpha consecutive bad HECs lose lock.
	Sync
)

// String implements fmt.Stringer.
func (s DelineationState) String() string {
	switch s {
	case Hunt:
		return "HUNT"
	case Presync:
		return "PRESYNC"
	case Sync:
		return "SYNC"
	default:
		return "?"
	}
}

// I.432 recommends delta=6 and alpha=7.
const (
	DefaultDelta = 6
	DefaultAlpha = 7
)

// DelineatorStats counts delineation events.
type DelineatorStats struct {
	Cells           uint64 // cells delivered (valid or corrected header)
	HeaderCorrected uint64 // single-bit header errors fixed
	HeaderDropped   uint64 // cells dropped for uncorrectable headers in SYNC
	SyncLosses      uint64 // SYNC → HUNT transitions
	SyncAcquired    uint64 // PRESYNC → SYNC transitions
}

// Delineator implements HEC-based cell delineation over a byte stream, and
// descrambles each located cell's information field. Found cells are passed
// to the sink callback as 53 clear-text bytes (the slice is reused; the sink
// must copy what it keeps).
type Delineator struct {
	Delta int
	Alpha int

	state   DelineationState
	window  []byte // pending bytes not yet consumed
	goodRun int    // consecutive good HECs in PRESYNC
	badRun  int    // consecutive bad HECs in SYNC
	cs      CellScrambler
	cell    [53]byte
	sink    func(cell []byte, corrected bool)
	stats   DelineatorStats
}

// NewDelineator returns a delineator in HUNT state delivering cells to sink.
func NewDelineator(sink func(cell []byte, corrected bool)) *Delineator {
	if sink == nil {
		panic("sonet: nil delineation sink")
	}
	return &Delineator{Delta: DefaultDelta, Alpha: DefaultAlpha, sink: sink}
}

// State returns the current delineation state.
func (d *Delineator) State() DelineationState { return d.state }

// Stats returns cumulative counters.
func (d *Delineator) Stats() DelineatorStats { return d.stats }

// hecOK checks the 5 bytes at w[0:5] for an exactly matching HEC. Used in
// HUNT and PRESYNC, where I.432 disables single-bit correction: accepting
// correctable windows would make ~16% of random offsets look like cell
// boundaries and delineation would false-lock constantly.
func hecOK(w []byte) bool {
	return crc.HECOK(w)
}

// Push feeds payload-stream bytes to the delineator.
func (d *Delineator) Push(p []byte) {
	// SYNC fast path: consume whole cells straight from the pushed slice,
	// bypassing the staging window. A partial cell left from the previous
	// push is first topped up and consumed, then cells are read at 53-byte
	// stride until the tail (or a loss of lock) falls back to the window.
	// Steady-state delineation therefore copies each payload byte once and
	// never grows the window.
	if d.state == Sync && len(d.window) > 0 && len(d.window) < 53 && len(d.window)+len(p) >= 53 {
		need := 53 - len(d.window)
		d.window = append(d.window, p[:need]...)
		p = p[need:]
		d.syncCell(d.window)
		d.window = d.window[:0]
	}
	for d.state == Sync && len(d.window) == 0 && len(p) >= 53 {
		still := d.syncCell(p)
		p = p[53:]
		if !still {
			break
		}
	}
	if len(p) == 0 {
		d.compact()
		return
	}
	d.window = append(d.window, p...)
	for {
		switch d.state {
		case Hunt:
			// Slide until a window with a valid HEC appears.
			for len(d.window) >= 5 {
				if hecOK(d.window) {
					d.state = Presync
					d.goodRun = 0
					break
				}
				d.window = d.window[1:]
			}
			if d.state == Hunt {
				d.compact()
				return
			}
		case Presync:
			// Confirm delta more boundaries at exact cell spacing.
			// The candidate cell at window[0:53] is consumed without
			// delivery (its payload predates descrambler sync).
			if len(d.window) < 53 {
				d.compact()
				return
			}
			if !hecOK(d.window) {
				// False lock: resume hunting one byte on.
				d.window = d.window[1:]
				d.state = Hunt
				continue
			}
			// Keep the descrambler fed even though we discard.
			d.cs.Descramble(d.window[5:53])
			d.window = d.window[53:]
			d.goodRun++
			if d.goodRun >= d.Delta {
				d.state = Sync
				d.badRun = 0
				d.stats.SyncAcquired++
			}
		case Sync:
			if len(d.window) < 53 {
				d.compact()
				return
			}
			d.syncCell(d.window)
			d.window = d.window[53:]
		}
	}
}

// syncCell consumes one 53-byte cell slot in SYNC state from w (which is not
// modified) and reports whether the delineator is still in SYNC afterwards.
func (d *Delineator) syncCell(w []byte) bool {
	var h [5]byte
	copy(h[:], w[:5])
	ok, corrected := crc.HECCheck(&h)
	if !ok {
		d.badRun++
		d.stats.HeaderDropped++
		// Still consume the cell slot and keep scrambler state: the
		// descrambler register depends only on received line bits.
		copy(d.cell[5:], w[5:53])
		d.cs.Descramble(d.cell[5:])
		if d.badRun >= d.Alpha {
			d.state = Hunt
			d.stats.SyncLosses++
			return false
		}
		return true
	}
	d.badRun = 0
	if corrected {
		d.stats.HeaderCorrected++
	}
	copy(d.cell[:5], h[:])
	copy(d.cell[5:], w[5:53])
	d.cs.Descramble(d.cell[5:])
	d.stats.Cells++
	d.sink(d.cell[:], corrected)
	return d.state == Sync
}

// compact bounds the pending window's backing array. Without this the
// append/reslice pattern would pin every frame ever pushed.
func (d *Delineator) compact() {
	if cap(d.window) > 4*53 && len(d.window) < 53 {
		w := make([]byte, len(d.window), 2*53)
		copy(w, d.window)
		d.window = w
	}
}
