// Package sonet implements the physical-layer framing substrate under the
// ATM host interface: STS-3c / STS-12c frame generation and parsing, the two
// scramblers the standards require, and HEC-based cell delineation
// (ITU-T I.432 / G.707).
//
// The interface board this reproduces used SONET framer hardware; the cell
// stream the protocol engines see is what comes out of this package.  One
// deliberate simplification is documented in DESIGN.md: the synchronous
// payload envelope is modelled frame-aligned (a fixed pointer value) rather
// than floating, which preserves payload rate and delineation behaviour
// while avoiding pointer-justification machinery the paper's analysis never
// touches.
package sonet

// FrameScrambler is the frame-synchronous SONET scrambler, generator
// 1 + x⁶ + x⁷, reset to all ones at the first byte after the row-1 section
// overhead of every frame. It whitens the line so clock recovery works; it
// is its own inverse.
type FrameScrambler struct {
	state uint8 // 7-bit LFSR state
}

// Reset returns the LFSR to the all-ones frame-start state.
func (s *FrameScrambler) Reset() { s.state = 0x7f }

// Apply scrambles (or equivalently descrambles) p in place, advancing the
// LFSR one bit per data bit, MSB first.
func (s *FrameScrambler) Apply(p []byte) {
	st := s.state
	for i, b := range p {
		var mask uint8
		for bit := 0; bit < 8; bit++ {
			out := (st >> 6) & 1 // x⁷ tap
			mask = mask<<1 | out
			fb := ((st >> 6) ^ (st >> 5)) & 1 // x⁷ ⊕ x⁶
			st = st<<1&0x7f | fb
		}
		p[i] = b ^ mask
	}
	s.state = st
}

// CellScrambler is the self-synchronous x⁴³ + 1 scrambler applied to the
// 48-byte information field of every cell (headers stay in clear, which is
// what lets a hunting receiver check HECs before it has descrambler state).
// Being self-synchronous, a receiver's descrambler converges to the
// transmitter's state after 43 received bits regardless of how it was
// initialized.
type CellScrambler struct {
	state uint64 // low 43 bits hold the last 43 output (line) bits
}

// Scramble transforms plaintext p in place into line bits.
func (s *CellScrambler) Scramble(p []byte) {
	st := s.state
	for i, b := range p {
		var out uint8
		for bit := 7; bit >= 0; bit-- {
			in := (b >> bit) & 1
			o := in ^ uint8(st>>42&1)
			out = out<<1 | o
			st = st<<1&0x7ff_ffff_ffff | uint64(o)
		}
		p[i] = out
	}
	s.state = st
}

// Descramble transforms line bits p in place back into plaintext. The LFSR
// shifts in the *received* bits, which is what makes the pair
// self-synchronizing.
func (s *CellScrambler) Descramble(p []byte) {
	st := s.state
	for i, b := range p {
		var out uint8
		for bit := 7; bit >= 0; bit-- {
			in := (b >> bit) & 1
			o := in ^ uint8(st>>42&1)
			out = out<<1 | o
			st = st<<1&0x7ff_ffff_ffff | uint64(in)
		}
		p[i] = out
	}
	s.state = st
}

// bip8 computes even-parity BIP-8 over p: each bit of the result makes the
// corresponding bit position of p even-parity. SONET B1/B3 bytes carry this.
func bip8(p []byte) byte {
	var b byte
	for _, x := range p {
		b ^= x
	}
	return b
}
