// Package sonet implements the physical-layer framing substrate under the
// ATM host interface: STS-3c / STS-12c frame generation and parsing, the two
// scramblers the standards require, and HEC-based cell delineation
// (ITU-T I.432 / G.707).
//
// The interface board this reproduces used SONET framer hardware; the cell
// stream the protocol engines see is what comes out of this package.  One
// deliberate simplification is documented in DESIGN.md: the synchronous
// payload envelope is modelled frame-aligned (a fixed pointer value) rather
// than floating, which preserves payload rate and delineation behaviour
// while avoiding pointer-justification machinery the paper's analysis never
// touches.
package sonet

import (
	"crypto/subtle"
	"encoding/binary"
)

// FrameScrambler is the frame-synchronous SONET scrambler, generator
// 1 + x⁶ + x⁷, reset to all ones at the first byte after the row-1 section
// overhead of every frame. It whitens the line so clock recovery works; it
// is its own inverse.
//
// Because the LFSR restarts from the same state every frame, its keystream
// is data-independent and identical frame after frame: Apply on a freshly
// Reset scrambler is a straight XOR with a precomputed keystream table
// (vectorized by the compiler into word/SIMD XORs) instead of the bit-serial
// register walk. The bit-serial form survives for mid-stream states and as
// the reference the tests pin the table against.
type FrameScrambler struct {
	state uint8 // 7-bit LFSR state
}

// frameKeystreamMax covers the largest region a framer scrambles: an
// STS-12c frame minus its row-1 section overhead columns.
const frameKeystreamMax = rows*90*12 - 3*12

var (
	// frameKeystream[i] is the mask byte the LFSR produces for the i-th
	// byte after a Reset.
	frameKeystream [frameKeystreamMax]byte
	// frameKsState[i] is the LFSR state after producing i mask bytes from
	// the reset state, so the fast path leaves the register exactly where
	// the bit-serial walk would.
	frameKsState [frameKeystreamMax + 1]uint8
)

func init() {
	st := uint8(0x7f)
	frameKsState[0] = st
	for i := range frameKeystream {
		var mask uint8
		for bit := 0; bit < 8; bit++ {
			out := (st >> 6) & 1 // x⁷ tap
			mask = mask<<1 | out
			fb := ((st >> 6) ^ (st >> 5)) & 1 // x⁷ ⊕ x⁶
			st = st<<1&0x7f | fb
		}
		frameKeystream[i] = mask
		frameKsState[i+1] = st
	}
}

// Reset returns the LFSR to the all-ones frame-start state.
func (s *FrameScrambler) Reset() { s.state = 0x7f }

// Apply scrambles (or equivalently descrambles) p in place, advancing the
// LFSR one bit per data bit, MSB first.
func (s *FrameScrambler) Apply(p []byte) {
	if s.state == 0x7f && len(p) <= frameKeystreamMax {
		subtle.XORBytes(p, p, frameKeystream[:len(p)])
		s.state = frameKsState[len(p)]
		return
	}
	s.applyBitwise(p)
}

// applyBitwise is the reference register walk, used for states the keystream
// table does not cover (Apply without an interleaved Reset).
func (s *FrameScrambler) applyBitwise(p []byte) {
	st := s.state
	for i, b := range p {
		var mask uint8
		for bit := 0; bit < 8; bit++ {
			out := (st >> 6) & 1 // x⁷ tap
			mask = mask<<1 | out
			fb := ((st >> 6) ^ (st >> 5)) & 1 // x⁷ ⊕ x⁶
			st = st<<1&0x7f | fb
		}
		p[i] = b ^ mask
	}
	s.state = st
}

// CellScrambler is the self-synchronous x⁴³ + 1 scrambler applied to the
// 48-byte information field of every cell (headers stay in clear, which is
// what lets a hunting receiver check HECs before it has descrambler state).
// Being self-synchronous, a receiver's descrambler converges to the
// transmitter's state after 43 received bits regardless of how it was
// initialized.
//
// The tap sits 43 bits back — further than a byte — so none of a byte's
// eight keystream bits can depend on that same byte's output bits, and the
// whole byte transforms at once: the key is bits 42..35 of the register, the
// register then shifts in the eight line bits. The tests pin this against
// the bit-serial reference.
type CellScrambler struct {
	state uint64 // low 43 bits hold the last 43 output (line) bits
}

const cellScramblerMask = 0x7ff_ffff_ffff // 43 bits

// Scramble transforms plaintext p in place into line bits.
func (s *CellScrambler) Scramble(p []byte) {
	st := s.state
	for i, b := range p {
		out := b ^ byte(st>>35)
		st = st<<8&cellScramblerMask | uint64(out)
		p[i] = out
	}
	s.state = st
}

// Descramble transforms line bits p in place back into plaintext. The
// register shifts in the *received* bits, which is what makes the pair
// self-synchronizing.
func (s *CellScrambler) Descramble(p []byte) {
	st := s.state
	for i, b := range p {
		p[i] = b ^ byte(st>>35)
		st = st<<8&cellScramblerMask | uint64(b)
	}
	s.state = st
}

// bip8 computes even-parity BIP-8 over p: each bit of the result makes the
// corresponding bit position of p even-parity. SONET B1/B3 bytes carry this.
// Byte XOR is position-independent, so the fold runs a word at a time.
func bip8(p []byte) byte {
	var acc uint64
	for len(p) >= 8 {
		acc ^= binary.LittleEndian.Uint64(p)
		p = p[8:]
	}
	var b byte
	for _, x := range p {
		b ^= x
	}
	acc ^= acc >> 32
	acc ^= acc >> 16
	acc ^= acc >> 8
	return b ^ byte(acc)
}
