package sonet

// The vectorized scramblers and the batched framer/deframer paths are pinned
// byte-for-byte against the original bit-serial / per-byte implementations,
// the same way the timing-wheel kernel is pinned to the heap scheduler. The
// reference forms live here, compiled only into tests.

import (
	"bytes"
	"math/rand"
	"testing"
)

// refFrameScramble is the original bit-serial frame-synchronous scrambler.
func refFrameScramble(state uint8, p []byte) uint8 {
	st := state
	for i, b := range p {
		var mask uint8
		for bit := 0; bit < 8; bit++ {
			out := (st >> 6) & 1
			mask = mask<<1 | out
			fb := ((st >> 6) ^ (st >> 5)) & 1
			st = st<<1&0x7f | fb
		}
		p[i] = b ^ mask
	}
	return st
}

// refCellScramble / refCellDescramble are the original bit-serial forms of
// the self-synchronous x⁴³+1 cell scrambler.
func refCellScramble(st uint64, p []byte) uint64 {
	for i, b := range p {
		var out uint8
		for bit := 7; bit >= 0; bit-- {
			in := (b >> bit) & 1
			o := in ^ uint8(st>>42&1)
			out = out<<1 | o
			st = st<<1&0x7ff_ffff_ffff | uint64(o)
		}
		p[i] = out
	}
	return st
}

func refCellDescramble(st uint64, p []byte) uint64 {
	for i, b := range p {
		var out uint8
		for bit := 7; bit >= 0; bit-- {
			in := (b >> bit) & 1
			o := in ^ uint8(st>>42&1)
			out = out<<1 | o
			st = st<<1&0x7ff_ffff_ffff | uint64(in)
		}
		p[i] = out
	}
	return st
}

// refBip8 is the byte-serial BIP-8 fold.
func refBip8(p []byte) byte {
	var b byte
	for _, x := range p {
		b ^= x
	}
	return b
}

func TestFrameScramblerMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 63, 2430 - 9, frameKeystreamMax} {
		p := make([]byte, n)
		rng.Read(p)
		ref := append([]byte(nil), p...)
		var s FrameScrambler
		s.Reset()
		s.Apply(p)
		refSt := refFrameScramble(0x7f, ref)
		if !bytes.Equal(p, ref) {
			t.Fatalf("len %d: keystream XOR diverges from bit-serial scrambler", n)
		}
		if s.state != refSt {
			t.Fatalf("len %d: final LFSR state %#x, reference %#x", n, s.state, refSt)
		}
	}
}

func TestFrameScramblerMidStreamFallback(t *testing.T) {
	// Two Applies without an interleaved Reset must keep walking the LFSR
	// from the mid-stream state (the table only covers reset starts).
	rng := rand.New(rand.NewSource(2))
	p := make([]byte, 300)
	rng.Read(p)
	ref := append([]byte(nil), p...)
	var s FrameScrambler
	s.Reset()
	s.Apply(p[:100])
	s.Apply(p[100:])
	st := refFrameScramble(0x7f, ref[:100])
	refFrameScramble(st, ref[100:])
	if !bytes.Equal(p, ref) {
		t.Fatal("mid-stream Apply diverges from bit-serial scrambler")
	}
}

func TestCellScramblerMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var fast CellScrambler
	refSt := uint64(0)
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		p := make([]byte, n)
		rng.Read(p)
		ref := append([]byte(nil), p...)
		fast.Scramble(p)
		refSt = refCellScramble(refSt, ref)
		if !bytes.Equal(p, ref) {
			t.Fatalf("round %d: byte-wise scramble diverges from bit-serial", i)
		}
		if fast.state != refSt {
			t.Fatalf("round %d: scramble state %#x, reference %#x", i, fast.state, refSt)
		}
	}
}

func TestCellDescramblerMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var fast CellScrambler
	refSt := uint64(0)
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		p := make([]byte, n)
		rng.Read(p)
		ref := append([]byte(nil), p...)
		fast.Descramble(p)
		refSt = refCellDescramble(refSt, ref)
		if !bytes.Equal(p, ref) {
			t.Fatalf("round %d: byte-wise descramble diverges from bit-serial", i)
		}
		if fast.state != refSt {
			t.Fatalf("round %d: descramble state %#x, reference %#x", i, fast.state, refSt)
		}
	}
}

func TestBip8MatchesByteSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 7, 8, 9, 255, 2430} {
		p := make([]byte, n)
		rng.Read(p)
		if got, want := bip8(p), refBip8(p); got != want {
			t.Fatalf("len %d: bip8 %#02x, reference %#02x", n, got, want)
		}
	}
}

// refNextFrame is the original per-byte framer payload fill, kept as the
// golden reference for the staged block-copy path in Framer.NextFrame.
type refFramer struct {
	geom    Geometry
	fs      FrameScrambler
	cs      CellScrambler
	src     CellSource
	cellBuf [53]byte
	cellOff int
	prevB1  byte
	prevB3  byte
}

func newRefFramer(r Rate, src CellSource) *refFramer {
	return &refFramer{geom: Geom(r), src: src, cellOff: 53}
}

func (f *refFramer) NextFrame(dst []byte) int {
	g := f.geom
	frame := dst[:g.FrameBytes]
	for i := range frame {
		frame[i] = 0
	}
	for i := 0; i < g.N; i++ {
		frame[i] = byteA1
		frame[g.N+i] = byteA2
		frame[2*g.N+i] = byte(i + 1)
	}
	frame[g.Cols] = f.prevB1
	row4 := 3 * g.Cols
	frame[row4] = byteH1
	frame[row4+g.N] = byteH2
	for i := 1; i < g.N; i++ {
		frame[row4+i] = byteH1Concat
		frame[row4+g.N+i] = byteH2Concat
	}
	pohCol := g.TOHCols
	frame[pohCol] = 0x01
	frame[g.Cols+pohCol] = f.prevB3
	frame[2*g.Cols+pohCol] = 0x13
	payStart := g.TOHCols + 1 + g.FixedStuff
	var spe []byte
	for row := 0; row < rows; row++ {
		base := row * g.Cols
		for col := payStart; col < g.Cols; col++ {
			if f.cellOff == 53 {
				f.src.NextCell(f.cellBuf[:])
				f.cs.Scramble(f.cellBuf[5:])
				f.cellOff = 0
			}
			frame[base+col] = f.cellBuf[f.cellOff]
			f.cellOff++
		}
	}
	for row := 0; row < rows; row++ {
		base := row * g.Cols
		spe = append(spe, frame[base+pohCol:base+g.Cols]...)
	}
	f.prevB3 = bip8(spe)
	f.fs.Reset()
	f.fs.Apply(frame[g.TOHCols:])
	f.prevB1 = bip8(frame)
	return g.FrameBytes
}

func TestFramerMatchesReference(t *testing.T) {
	for _, rate := range []Rate{STS3c, STS12c} {
		fast := NewFramer(rate, &seqSource{})
		ref := newRefFramer(rate, &seqSource{})
		fb := make([]byte, fast.Geometry().FrameBytes)
		rb := make([]byte, fast.Geometry().FrameBytes)
		for i := 0; i < 30; i++ {
			fast.NextFrame(fb)
			ref.NextFrame(rb)
			if !bytes.Equal(fb, rb) {
				t.Fatalf("%v frame %d: staged framer diverges from per-byte reference", rate, i)
			}
		}
	}
}

func TestDeframerMatchesReferenceStats(t *testing.T) {
	// Feed identical frame streams (including corruption) through the
	// current deframer twice and compare the recovered cell stream from a
	// fresh parse against one primed differently — and, more importantly,
	// pin the batched B1/B3 folds against what the reference framer
	// transmitted (clean link ⇒ zero B1/B3 errors across both rates).
	for _, rate := range []Rate{STS3c, STS12c} {
		fr := NewFramer(rate, &seqSource{})
		var cells int
		del := NewDelineator(func([]byte, bool) { cells++ })
		df := NewDeframer(rate, del)
		buf := make([]byte, fr.Geometry().FrameBytes)
		for i := 0; i < 20; i++ {
			fr.NextFrame(buf)
			if err := df.PushFrame(buf); err != nil {
				t.Fatalf("%v frame %d: %v", rate, i, err)
			}
		}
		st := df.Stats()
		if st.B1Errors != 0 || st.B3Errors != 0 || st.LOSFrames != 0 || st.PointerErrs != 0 {
			t.Fatalf("%v: clean link reported errors: %+v", rate, st)
		}
		if cells == 0 {
			t.Fatalf("%v: no cells recovered", rate)
		}
	}
}

// TestDeframerHotPathZeroAllocs pins the receive framing path at zero
// allocations per frame once delineation has locked: B1/B3 folds, keystream
// descramble, and the delineator's SYNC fast path all run in preallocated
// buffers.
func TestDeframerHotPathZeroAllocs(t *testing.T) {
	fr := NewFramer(STS3c, &seqSource{})
	del := NewDelineator(func([]byte, bool) {})
	df := NewDeframer(STS3c, del)
	frames := make([][]byte, 16)
	for i := range frames {
		frames[i] = make([]byte, fr.Geometry().FrameBytes)
		fr.NextFrame(frames[i])
	}
	// Prime: acquire delineation and let the window shrink to steady state.
	for i := 0; i < 4; i++ {
		df.PushFrame(frames[i])
	}
	n := 0
	avg := testing.AllocsPerRun(100, func() {
		df.PushFrame(frames[n%len(frames)])
		n++
	})
	if avg != 0 {
		t.Fatalf("deframer hot path allocates %.1f allocs/frame, want 0", avg)
	}
}

// TestFramerHotPathZeroAllocs pins frame generation at zero allocations.
func TestFramerHotPathZeroAllocs(t *testing.T) {
	fr := NewFramer(STS3c, &seqSource{})
	buf := make([]byte, fr.Geometry().FrameBytes)
	fr.NextFrame(buf)
	avg := testing.AllocsPerRun(100, func() { fr.NextFrame(buf) })
	if avg != 0 {
		t.Fatalf("framer hot path allocates %.1f allocs/frame, want 0", avg)
	}
}

func BenchmarkFramerSTS12c(b *testing.B) {
	src := &seqSource{}
	fr := NewFramer(STS12c, src)
	buf := make([]byte, fr.Geometry().FrameBytes)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.NextFrame(buf)
	}
}

func BenchmarkDeframerSTS12c(b *testing.B) {
	src := &seqSource{}
	fr := NewFramer(STS12c, src)
	del := NewDelineator(func([]byte, bool) {})
	df := NewDeframer(STS12c, del)
	frames := make([][]byte, 16)
	for i := range frames {
		frames[i] = make([]byte, fr.Geometry().FrameBytes)
		fr.NextFrame(frames[i])
	}
	b.SetBytes(int64(fr.Geometry().FrameBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df.PushFrame(frames[i%len(frames)])
	}
}
