package sonet

import (
	"testing"
	"testing/quick"

	"repro/internal/atm"
	"repro/internal/units"
)

func TestFrameScramblerIsInvolution(t *testing.T) {
	f := func(p []byte) bool {
		orig := append([]byte{}, p...)
		var a, b FrameScrambler
		a.Reset()
		a.Apply(p)
		b.Reset()
		b.Apply(p)
		if len(p) != len(orig) {
			return false
		}
		for i := range p {
			if p[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameScramblerWhitens(t *testing.T) {
	// An all-zero payload must come out non-zero (that's the point).
	p := make([]byte, 256)
	var s FrameScrambler
	s.Reset()
	s.Apply(p)
	nonzero := 0
	for _, b := range p {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero < 200 {
		t.Fatalf("only %d/256 bytes scrambled away from zero", nonzero)
	}
}

func TestCellScramblerRoundTrip(t *testing.T) {
	f := func(cells [][]byte) bool {
		var tx, rx CellScrambler
		for _, c := range cells {
			orig := append([]byte{}, c...)
			tx.Scramble(c)
			rx.Descramble(c)
			for i := range c {
				if c[i] != orig[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCellScramblerSelfSynchronizes(t *testing.T) {
	// Descrambler starting from a wrong state must produce correct output
	// after 43 bits (6 bytes).
	var tx CellScrambler
	rx := CellScrambler{state: 0x7ff_ffff_ffff} // maximally wrong
	msg := make([]byte, 48)
	for i := range msg {
		msg[i] = byte(i + 1)
	}
	line := append([]byte{}, msg...)
	tx.Scramble(line)
	rx.Descramble(line)
	for i := 6; i < len(line); i++ {
		if line[i] != msg[i] {
			t.Fatalf("byte %d not recovered after self-sync: %#02x != %#02x", i, line[i], msg[i])
		}
	}
}

func TestGeometrySTS3c(t *testing.T) {
	g := Geom(STS3c)
	if g.Cols != 270 || g.TOHCols != 9 || g.FixedStuff != 0 {
		t.Fatalf("geometry %+v", g)
	}
	if g.PayloadCols != 260 {
		t.Fatalf("payload cols = %d, want 260", g.PayloadCols)
	}
	if g.FrameBytes != 2430 {
		t.Fatalf("frame bytes = %d, want 2430", g.FrameBytes)
	}
	if g.PayloadPer != 2340 {
		t.Fatalf("payload/frame = %d, want 2340", g.PayloadPer)
	}
	// 2340 bytes * 8000 frames/s * 8 = 149.76 Mb/s.
	if rate := g.PayloadPer * frameRate * 8; rate != int(units.STS3cPayload) {
		t.Fatalf("payload rate = %d, want %d", rate, units.STS3cPayload)
	}
}

func TestGeometrySTS12c(t *testing.T) {
	g := Geom(STS12c)
	if g.Cols != 1080 || g.TOHCols != 36 || g.FixedStuff != 3 {
		t.Fatalf("geometry %+v", g)
	}
	if g.PayloadCols != 1040 {
		t.Fatalf("payload cols = %d, want 1040", g.PayloadCols)
	}
	if rate := g.PayloadPer * frameRate * 8; rate != int(units.STS12cPayload) {
		t.Fatalf("payload rate = %d, want %d", rate, units.STS12cPayload)
	}
}

func TestRateAccessors(t *testing.T) {
	if STS3c.String() != "STS-3c" || STS12c.String() != "STS-12c" {
		t.Fatal("Rate.String broken")
	}
	if STS3c.LineRate() != units.STS3cLine || STS12c.PayloadRate() != units.STS12cPayload {
		t.Fatal("rate accessors broken")
	}
	if STS3c.N() != 3 || STS12c.N() != 12 {
		t.Fatal("N broken")
	}
}

// seqSource emits data cells with VCI 5 and a counting payload, so the
// receive side can verify ordering and integrity.
type seqSource struct {
	n    uint32
	cell atm.Cell
}

func (s *seqSource) NextCell(dst []byte) {
	s.cell.Header = atm.Header{Format: atm.UNI, VPI: 0, VCI: 5, PT: atm.PTUser0}
	for i := range s.cell.Payload {
		s.cell.Payload[i] = byte(s.n + uint32(i))
	}
	s.cell.Payload[0] = byte(s.n >> 24)
	s.cell.Payload[1] = byte(s.n >> 16)
	s.cell.Payload[2] = byte(s.n >> 8)
	s.cell.Payload[3] = byte(s.n)
	s.n++
	if err := s.cell.Encode(dst); err != nil {
		panic(err)
	}
}

// endToEnd runs frames from a framer into a deframer and returns the decoded
// cell sequence numbers.
func endToEnd(t *testing.T, rate Rate, frames int, mangle func(i int, frame []byte)) ([]uint32, *Deframer, *Delineator) {
	t.Helper()
	src := &seqSource{}
	fr := NewFramer(rate, src)
	var got []uint32
	del := NewDelineator(func(cell []byte, corrected bool) {
		var c atm.Cell
		if _, err := c.Decode(cell, atm.UNI); err != nil {
			t.Fatalf("delineated cell failed decode: %v", err)
		}
		if c.Header.VCI != 5 {
			t.Fatalf("unexpected VCI %d", c.Header.VCI)
		}
		sn := uint32(c.Payload[0])<<24 | uint32(c.Payload[1])<<16 |
			uint32(c.Payload[2])<<8 | uint32(c.Payload[3])
		got = append(got, sn)
	})
	df := NewDeframer(rate, del)
	buf := make([]byte, fr.Geometry().FrameBytes)
	for i := 0; i < frames; i++ {
		fr.NextFrame(buf)
		if mangle != nil {
			mangle(i, buf)
		}
		if err := df.PushFrame(buf); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	return got, df, del
}

func TestEndToEndSTS3c(t *testing.T) {
	got, df, del := endToEnd(t, STS3c, 20, nil)
	// 20 frames * 2340 bytes = 46800 bytes = 883 cells; minus ~7 consumed
	// acquiring delineation.
	if len(got) < 870 {
		t.Fatalf("delivered %d cells, want >= 870", len(got))
	}
	// Sequence numbers are consecutive.
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("cell gap: %d then %d", got[i-1], got[i])
		}
	}
	st := df.Stats()
	if st.B1Errors != 0 || st.B3Errors != 0 || st.LOSFrames != 0 || st.PointerErrs != 0 {
		t.Fatalf("clean link reported errors: %+v", st)
	}
	ds := del.Stats()
	if ds.SyncAcquired != 1 || ds.SyncLosses != 0 || ds.HeaderDropped != 0 {
		t.Fatalf("delineation stats: %+v", ds)
	}
	if del.State() != Sync {
		t.Fatalf("state = %v, want SYNC", del.State())
	}
}

func TestEndToEndSTS12c(t *testing.T) {
	got, _, _ := endToEnd(t, STS12c, 10, nil)
	// 10 frames * 9360 bytes = 93600 bytes = 1766 cells - sync overhead.
	if len(got) < 1750 {
		t.Fatalf("delivered %d cells, want >= 1750", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("cell gap at %d", i)
		}
	}
}

func TestDeframerDetectsB1Corruption(t *testing.T) {
	_, df, _ := endToEnd(t, STS3c, 10, func(i int, frame []byte) {
		if i == 4 {
			frame[500] ^= 0x01 // payload byte: breaks B1 (and likely a HEC)
		}
	})
	if df.Stats().B1Errors == 0 {
		t.Fatal("corrupted frame produced no B1 error")
	}
}

func TestDeframerDetectsFramingLoss(t *testing.T) {
	_, df, _ := endToEnd(t, STS3c, 10, func(i int, frame []byte) {
		if i == 2 {
			frame[0] = 0x00 // smash A1
		}
	})
	if df.Stats().LOSFrames != 1 {
		t.Fatalf("LOSFrames = %d, want 1", df.Stats().LOSFrames)
	}
}

func TestDeframerShortFrame(t *testing.T) {
	del := NewDelineator(func([]byte, bool) {})
	df := NewDeframer(STS3c, del)
	if err := df.PushFrame(make([]byte, 100)); err != ErrShortFrame {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestDelineatorRecoversFromHeaderError(t *testing.T) {
	// A single corrupted header byte in SYNC is either corrected or the
	// cell is dropped; delineation must not lose lock.
	got, _, del := endToEnd(t, STS3c, 20, func(i int, frame []byte) {
		if i == 10 {
			// Hit two adjacent payload bytes: whatever cell field they
			// land in, at most one or two cells are damaged.
			frame[1000] ^= 0xff
			frame[1001] ^= 0xff
		}
	})
	ds := del.Stats()
	if ds.SyncLosses != 0 {
		t.Fatalf("lost sync on an isolated error burst: %+v", ds)
	}
	if len(got) < 860 {
		t.Fatalf("only %d cells delivered", len(got))
	}
}

func TestDelineatorLosesSyncOnSustainedGarbage(t *testing.T) {
	src := &seqSource{}
	fr := NewFramer(STS3c, src)
	del := NewDelineator(func([]byte, bool) {})
	df := NewDeframer(STS3c, del)
	buf := make([]byte, fr.Geometry().FrameBytes)
	// Acquire sync.
	for i := 0; i < 5; i++ {
		fr.NextFrame(buf)
		df.PushFrame(buf)
	}
	if del.State() != Sync {
		t.Fatal("never acquired sync")
	}
	// Now push frames whose payload is noise (valid SONET, garbage cells).
	for i := 0; i < 3; i++ {
		fr.NextFrame(buf)
		for j := 100; j < len(buf); j++ {
			buf[j] = byte(j*31 + i)
		}
		// Rebuild A1/A2 so the deframer still accepts the frame.
		for k := 0; k < 3; k++ {
			buf[k] = byteA1
			buf[3+k] = byteA2
		}
		df.PushFrame(buf)
	}
	if del.Stats().SyncLosses == 0 {
		t.Fatal("sustained garbage never dropped delineation")
	}
	// And a clean stream re-acquires.
	for i := 0; i < 5; i++ {
		fr.NextFrame(buf)
		df.PushFrame(buf)
	}
	if del.State() != Sync {
		t.Fatalf("state = %v after clean frames, want SYNC", del.State())
	}
}

func TestDelineatorStateString(t *testing.T) {
	if Hunt.String() != "HUNT" || Presync.String() != "PRESYNC" || Sync.String() != "SYNC" {
		t.Fatal("state strings broken")
	}
	if DelineationState(9).String() != "?" {
		t.Fatal("unknown state string broken")
	}
}

func TestFramerNilSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFramer(nil) did not panic")
		}
	}()
	NewFramer(STS3c, nil)
}

func TestDelineatorNilSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDelineator(nil) did not panic")
		}
	}()
	NewDelineator(nil)
}

func TestDeframerNilDelineatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDeframer(nil del) did not panic")
		}
	}()
	NewDeframer(STS3c, nil)
}

func BenchmarkFramerSTS3c(b *testing.B) {
	src := &seqSource{}
	fr := NewFramer(STS3c, src)
	buf := make([]byte, fr.Geometry().FrameBytes)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.NextFrame(buf)
	}
}

func BenchmarkDeframerSTS3c(b *testing.B) {
	src := &seqSource{}
	fr := NewFramer(STS3c, src)
	del := NewDelineator(func([]byte, bool) {})
	df := NewDeframer(STS3c, del)
	frames := make([][]byte, 64)
	for i := range frames {
		frames[i] = make([]byte, fr.Geometry().FrameBytes)
		fr.NextFrame(frames[i])
	}
	b.SetBytes(int64(fr.Geometry().FrameBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df.PushFrame(frames[i%len(frames)])
	}
}

func TestDeframerDetectsPointerCorruption(t *testing.T) {
	_, df, _ := endToEnd(t, STS3c, 10, func(i int, frame []byte) {
		if i == 3 {
			// H1 sits at row 4, column 0 = byte 3*270.
			frame[3*270] ^= 0xff
		}
	})
	if df.Stats().PointerErrs == 0 {
		t.Fatal("smashed H1 never reported")
	}
}

func TestDeframerDetectsB3PathCorruption(t *testing.T) {
	// Corrupt an SPE byte: both B1 (section) and B3 (path) should notice
	// on the following frame.
	_, df, _ := endToEnd(t, STS3c, 10, func(i int, frame []byte) {
		if i == 5 {
			frame[4*270+100] ^= 0x20
		}
	})
	st := df.Stats()
	if st.B3Errors == 0 {
		t.Fatalf("B3 missed a payload hit: %+v", st)
	}
}

func TestDelineatorCustomAlphaDelta(t *testing.T) {
	// A stricter delta just means more confirmation cells; delineation
	// still locks on a clean stream.
	src := &seqSource{}
	fr := NewFramer(STS3c, src)
	del := NewDelineator(func([]byte, bool) {})
	del.Delta = 12
	df := NewDeframer(STS3c, del)
	buf := make([]byte, fr.Geometry().FrameBytes)
	for i := 0; i < 5; i++ {
		fr.NextFrame(buf)
		df.PushFrame(buf)
	}
	if del.State() != Sync {
		t.Fatalf("state %v with delta=12 after 5 frames", del.State())
	}
}

func TestFramerContinuousCellStreamAcrossFrames(t *testing.T) {
	// A cell that straddles the frame boundary must survive: 2340 payload
	// bytes per frame is not a multiple of 53.
	got, _, _ := endToEnd(t, STS3c, 3, nil)
	// 3 frames carry 7020 bytes = 132.45 cells; at least 120 delivered
	// after sync acquisition, all consecutive (verified by endToEnd).
	if len(got) < 120 {
		t.Fatalf("only %d cells across frame boundaries", len(got))
	}
}
