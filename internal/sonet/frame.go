package sonet

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// Rate selects the SONET signal the framer generates.
type Rate uint8

const (
	// STS3c is the 155.52 Mb/s signal the interface shipped with.
	STS3c Rate = iota
	// STS12c is the 622.08 Mb/s signal the architecture targeted.
	STS12c
)

// String implements fmt.Stringer.
func (r Rate) String() string {
	switch r {
	case STS3c:
		return "STS-3c"
	case STS12c:
		return "STS-12c"
	default:
		return fmt.Sprintf("Rate(%d)", uint8(r))
	}
}

// N returns the STS multiplier (3 or 12).
func (r Rate) N() int {
	if r == STS12c {
		return 12
	}
	return 3
}

// LineRate returns the serial line rate.
func (r Rate) LineRate() units.BitRate {
	if r == STS12c {
		return units.STS12cLine
	}
	return units.STS3cLine
}

// PayloadRate returns the ATM-visible payload rate (cells ride here).
func (r Rate) PayloadRate() units.BitRate {
	if r == STS12c {
		return units.STS12cPayload
	}
	return units.STS3cPayload
}

// Geometry, all in bytes. A SONET frame is 9 rows by 90·N columns, 8000
// frames per second.
const (
	rows      = 9
	frameRate = 8000 // frames per second, fixed across all STS levels
	// FramePeriodNs is 125 µs in nanoseconds.
	FramePeriodNs = 125_000
)

// Geometry describes the byte layout for a rate.
type Geometry struct {
	N           int // STS level
	Cols        int // total columns: 90N
	TOHCols     int // transport overhead columns: 3N
	FixedStuff  int // fixed-stuff columns inside the SPE: N/3 - 1
	PayloadCols int // columns carrying ATM cells
	FrameBytes  int // total serialized frame size: 9 * Cols
	PayloadPer  int // payload bytes per frame
}

// Geom returns the layout for rate r.
func Geom(r Rate) Geometry {
	n := r.N()
	g := Geometry{
		N:          n,
		Cols:       90 * n,
		TOHCols:    3 * n,
		FixedStuff: n/3 - 1,
	}
	g.PayloadCols = g.Cols - g.TOHCols - 1 - g.FixedStuff // 1 column of POH
	g.FrameBytes = rows * g.Cols
	g.PayloadPer = rows * g.PayloadCols
	return g
}

// Overhead byte values.
const (
	byteA1 = 0xf6 // framing
	byteA2 = 0x28 // framing
	// pointerValue is the fixed H1/H2 pointer this model transmits: SPE
	// aligned to the frame (see package doc for the simplification note).
	// 0x6_00a is new-data-flag 0110 + pointer bits, kept constant.
	byteH1 = 0x62
	byteH2 = 0x0a
	// concatenation indication carried in H1/H2 of STS paths 2..N.
	byteH1Concat = 0x93
	byteH2Concat = 0xff
)

// CellSource supplies the next 53 bytes of cell stream when the framer needs
// them. It must always produce a cell (insert idle cells when there is no
// traffic); the SONET payload has no gaps.
type CellSource interface {
	NextCell(dst []byte)
}

// Framer builds serialized SONET frames carrying a continuous ATM cell
// stream. Cells cross frame boundaries, exactly as on the wire.
type Framer struct {
	geom    Geometry
	rate    Rate
	fs      FrameScrambler
	cs      CellScrambler
	src     CellSource
	cellBuf [53]byte
	cellOff int    // bytes of cellBuf already emitted; 53 = need a new cell
	stream  []byte // per-frame staging for the contiguous cell stream
	frameNo uint64
	prevB1  byte // BIP-8 of previous scrambled frame
	prevB3  byte // BIP-8 of previous SPE
}

// NewFramer returns a framer for rate r drawing cells from src.
func NewFramer(r Rate, src CellSource) *Framer {
	if src == nil {
		panic("sonet: nil cell source")
	}
	g := Geom(r)
	return &Framer{geom: g, rate: r, src: src, cellOff: 53,
		stream: make([]byte, g.PayloadPer)}
}

// Geometry returns the framer's layout.
func (f *Framer) Geometry() Geometry { return f.geom }

// NextFrame serializes the next 125 µs frame into dst, which must be at
// least Geometry().FrameBytes long. It returns the frame length.
func (f *Framer) NextFrame(dst []byte) int {
	g := f.geom
	if len(dst) < g.FrameBytes {
		panic("sonet: frame buffer too small")
	}
	frame := dst[:g.FrameBytes]
	for i := range frame {
		frame[i] = 0
	}

	// Transport overhead, row-major. Row 1: A1×N A2×N J0/Z0×N.
	for i := 0; i < g.N; i++ {
		frame[i] = byteA1
		frame[g.N+i] = byteA2
		frame[2*g.N+i] = byte(i + 1) // J0/Z0 carries the STS number
	}
	// Row 2 col 0: B1, section BIP-8 over the previous scrambled frame.
	frame[g.Cols] = f.prevB1
	// Row 4: H1 H2 pointer bytes; first pair carries the fixed pointer,
	// the rest concatenation indications. H3 action bytes stay zero.
	row4 := 3 * g.Cols
	frame[row4] = byteH1
	frame[row4+g.N] = byteH2
	for i := 1; i < g.N; i++ {
		frame[row4+i] = byteH1Concat
		frame[row4+g.N+i] = byteH2Concat
	}

	// Path overhead column (first SPE column): J1 trace, B3, C2.
	pohCol := g.TOHCols
	frame[pohCol] = 0x01            // J1: static trace byte
	frame[g.Cols+pohCol] = f.prevB3 // B3: path BIP-8 over previous SPE
	frame[2*g.Cols+pohCol] = 0x13   // C2: payload label "ATM"

	// Payload columns: fill with the continuous cell stream. Payload
	// occupies columns [TOHCols+1+FixedStuff, Cols) of every row. The
	// frame's slice of the stream is staged contiguously (whole cells land
	// directly in the staging buffer; only boundary cells pass through
	// cellBuf) and then block-copied into the rows.
	payStart := g.TOHCols + 1 + g.FixedStuff
	stream := f.stream
	n := copy(stream, f.cellBuf[f.cellOff:])
	for n+53 <= len(stream) {
		f.src.NextCell(stream[n : n+53])
		// Scramble the info field only; header in clear.
		f.cs.Scramble(stream[n+5 : n+53])
		n += 53
	}
	if n < len(stream) {
		f.src.NextCell(f.cellBuf[:])
		f.cs.Scramble(f.cellBuf[5:])
		f.cellOff = copy(stream[n:], f.cellBuf[:])
	} else {
		f.cellOff = 53
	}
	var b3 byte
	for row := 0; row < rows; row++ {
		base := row * g.Cols
		copy(frame[base+payStart:base+g.Cols], stream[row*g.PayloadCols:])
		// B3 covers the SPE (POH column through the row end); XOR folds
		// row by row instead of staging a contiguous SPE copy.
		b3 ^= bip8(frame[base+pohCol : base+g.Cols])
	}
	f.prevB3 = b3

	// Frame-synchronous scrambling: everything except row-1 TOH.
	f.fs.Reset()
	f.fs.Apply(frame[g.TOHCols:])
	f.prevB1 = bip8(frame)
	f.frameNo++
	return g.FrameBytes
}

// Frames generated so far.
func (f *Framer) Frames() uint64 { return f.frameNo }

// DeframerStats counts receive-side anomalies.
type DeframerStats struct {
	Frames      uint64
	LOSFrames   uint64 // frames with bad A1/A2 alignment
	B1Errors    uint64 // section BIP mismatches
	B3Errors    uint64 // path BIP mismatches
	PointerErrs uint64 // H1/H2 not the expected fixed value
}

// Deframer parses serialized frames, verifies overhead, and hands the
// descrambled payload cell stream to a Delineator.
type Deframer struct {
	geom  Geometry
	fs    FrameScrambler
	del   *Delineator
	stats DeframerStats
	expB1 byte
	expB3 byte
	buf   []byte // scratch: descrambled frame copy
}

// NewDeframer returns a deframer for rate r delivering cells to del.
func NewDeframer(r Rate, del *Delineator) *Deframer {
	if del == nil {
		panic("sonet: nil delineator")
	}
	g := Geom(r)
	return &Deframer{geom: g, del: del, buf: make([]byte, g.FrameBytes)}
}

// Stats returns receive counters.
func (d *Deframer) Stats() DeframerStats { return d.stats }

// ErrShortFrame reports a frame shorter than the geometry requires.
var ErrShortFrame = errors.New("sonet: short frame")

// PushFrame consumes one serialized frame.
func (d *Deframer) PushFrame(frame []byte) error {
	g := d.geom
	if len(frame) < g.FrameBytes {
		return ErrShortFrame
	}
	frame = frame[:g.FrameBytes]
	d.stats.Frames++

	// B1 covers the scrambled frame as received.
	gotB1 := bip8(frame)

	copy(d.buf, frame)
	f := d.buf
	// Check alignment before descrambling (A1/A2 are never scrambled).
	for i := 0; i < g.N; i++ {
		if f[i] != byteA1 || f[g.N+i] != byteA2 {
			d.stats.LOSFrames++
			return nil // no byte alignment: drop the whole frame
		}
	}
	d.fs.Reset()
	d.fs.Apply(f[g.TOHCols:])

	if d.stats.Frames > 1 {
		if f[g.Cols] != d.expB1 {
			d.stats.B1Errors++
		}
		pohCol := g.TOHCols
		if f[g.Cols+pohCol] != d.expB3 {
			d.stats.B3Errors++
		}
	}
	d.expB1 = gotB1

	row4 := 3 * g.Cols
	if f[row4] != byteH1 || f[row4+g.N] != byteH2 {
		d.stats.PointerErrs++
	}

	// Fold the SPE for next frame's B3 check (row-by-row XOR — BIP-8 is
	// position-independent, so no contiguous SPE copy is needed) and feed
	// payload bytes to the delineator.
	pohCol := g.TOHCols
	payStart := g.TOHCols + 1 + g.FixedStuff
	var b3 byte
	for row := 0; row < rows; row++ {
		base := row * g.Cols
		b3 ^= bip8(f[base+pohCol : base+g.Cols])
	}
	d.expB3 = b3
	for row := 0; row < rows; row++ {
		base := row * g.Cols
		d.del.Push(f[base+payStart : base+g.Cols])
	}
	return nil
}
