package tcp

import "repro/internal/sim"

// RTOEstimator is the Jacobson/Karels retransmission-timeout estimator
// (RFC 6298): smoothed RTT plus four mean deviations, exponential backoff
// on timeout, and the Karn discipline applied by the caller (never sample a
// retransmitted segment).
type RTOEstimator struct {
	srtt    sim.Duration
	rttvar  sim.Duration
	rto     sim.Duration
	minRTO  sim.Duration
	maxRTO  sim.Duration
	sampled bool
}

// NewRTOEstimator builds an estimator that answers initial before the first
// sample and clamps the computed RTO into [min, max].
func NewRTOEstimator(initial, min, max sim.Duration) RTOEstimator {
	return RTOEstimator{rto: initial, minRTO: min, maxRTO: max}
}

// Sample feeds one round-trip measurement.
func (e *RTOEstimator) Sample(rtt sim.Duration) {
	if rtt < 0 {
		return
	}
	if !e.sampled {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.sampled = true
	} else {
		// RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R|; SRTT <- 7/8 SRTT + 1/8 R.
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.rto = e.clamp(e.srtt + 4*e.rttvar)
}

// RTO returns the current retransmission timeout.
func (e *RTOEstimator) RTO() sim.Duration { return e.rto }

// SRTT returns the smoothed round-trip estimate (0 before any sample).
func (e *RTOEstimator) SRTT() sim.Duration { return e.srtt }

// Backoff doubles the RTO (Karn's exponential backoff after a timeout).
func (e *RTOEstimator) Backoff() { e.rto = e.clamp(e.rto * 2) }

func (e *RTOEstimator) clamp(d sim.Duration) sim.Duration {
	if d < e.minRTO {
		return e.minRTO
	}
	if d > e.maxRTO {
		return e.maxRTO
	}
	return d
}
