package tcp

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config tunes one flow. The zero value of any field selects its default.
type Config struct {
	// MSS is the payload bytes per segment (default 1460).
	MSS int
	// RcvWnd is the receiver's advertised window in bytes (default 64 KiB,
	// capped at MaxWindow).
	RcvWnd int
	// InitialCwnd is the initial congestion window in segments (default 2).
	InitialCwnd int
	// SSThresh is the initial slow-start threshold in bytes (default: the
	// advertised window — slow start runs until the first loss).
	SSThresh int
	// InitialRTO is the pre-measurement retransmission timeout (default
	// 200 ms).
	InitialRTO sim.Duration
	// MinRTO / MaxRTO clamp the computed timeout (defaults 10 ms / 10 s).
	MinRTO, MaxRTO sim.Duration
	// Encap selects the RFC 2684 encapsulation both ends use; it must
	// match the stacks the flow is built on (informational here — the
	// stacks own the actual framing).
	Encap ip.Method
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.RcvWnd <= 0 {
		c.RcvWnd = 64 << 10
	}
	if c.RcvWnd > MaxWindow {
		c.RcvWnd = MaxWindow
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 2
	}
	if c.SSThresh <= 0 {
		c.SSThresh = c.RcvWnd
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = 200 * sim.Millisecond
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 10 * sim.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 10 * sim.Second
	}
	return c
}

// SenderStats counts the congestion-control events of one flow.
type SenderStats struct {
	Segments        uint64 // first transmissions
	Retransmits     uint64 // all retransmitted segments
	FastRetransmits uint64 // fast-retransmit entries (3 dup ACKs)
	Timeouts        uint64 // RTO expirations
	AcksRx          uint64 // ACK segments processed
	BytesAcked      uint64
}

// iss is the initial send sequence number; flows begin established.
const iss uint32 = 1

// Sender is the transmitting half of a flow: a bulk source with TCP Reno
// congestion control. Segments go out through the IP stack on one VC; ACKs
// for that VC must be routed back to HandleSegment (Flow wires this).
type Sender struct {
	k     *sim.Kernel
	stack *ip.Stack
	vc    atm.VC
	dst   ip.Addr
	cfg   Config

	srcPort, dstPort uint16

	sndUna, sndNxt uint32
	sndMax         uint32 // highest sequence ever sent
	total          uint64 // bytes to send; 0 = unbounded
	cwnd, ssthresh int
	rwnd           int
	dupAcks        int
	inRecovery     bool

	est      RTOEstimator
	timer    *sim.Event
	timing   bool
	timedEnd uint32
	timedAt  sim.Time

	stats   SenderStats
	stopped bool
	onDone  func()

	gCwnd, gSsthresh *metrics.Gauge
	cRetx, cTimeout  *metrics.Counter
	cFastRetx        *metrics.Counter
	hRTT             *metrics.Histogram
}

// NewSender builds a sender for vc on stack, destined for dst. The VC must
// be open on the stack's interface; Flow normally constructs senders.
func NewSender(k *sim.Kernel, stack *ip.Stack, vc atm.VC, dst ip.Addr,
	srcPort, dstPort uint16, cfg Config) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		k: k, stack: stack, vc: vc, dst: dst, cfg: cfg,
		srcPort: srcPort, dstPort: dstPort,
		sndUna: iss, sndNxt: iss, sndMax: iss,
		cwnd:     cfg.InitialCwnd * cfg.MSS,
		ssthresh: cfg.SSThresh,
		rwnd:     cfg.RcvWnd,
		est:      NewRTOEstimator(cfg.InitialRTO, cfg.MinRTO, cfg.MaxRTO),
	}
	return s
}

// Instrument registers the sender's congestion state under
// "tcp.<name>.cwnd" etc. — the gauges the periodic sampler turns into cwnd
// traces.
func (s *Sender) Instrument(reg *metrics.Registry, name string) {
	p := "tcp." + name + "."
	s.gCwnd = reg.Gauge(p + "cwnd")
	s.gSsthresh = reg.Gauge(p + "ssthresh")
	s.cRetx = reg.Counter(p + "retransmits")
	s.cTimeout = reg.Counter(p + "timeouts")
	s.cFastRetx = reg.Counter(p + "fast_retransmits")
	s.hRTT = reg.Histogram(p + "rtt_ns")
	s.gCwnd.Set(int64(s.cwnd))
	s.gSsthresh.Set(int64(s.ssthresh))
}

// Stats returns the sender's counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() int { return s.cwnd }

// SSThresh returns the slow-start threshold in bytes.
func (s *Sender) SSThresh() int { return s.ssthresh }

// SRTT returns the smoothed round-trip estimate (0 before a sample).
func (s *Sender) SRTT() sim.Duration { return s.est.SRTT() }

// InFlight returns the unacknowledged bytes outstanding.
func (s *Sender) InFlight() int { return int(s.sndNxt - s.sndUna) }

// Done reports whether a bounded transfer has been fully acknowledged.
func (s *Sender) Done() bool {
	return s.total > 0 && uint64(s.sndUna-iss) >= s.total
}

// Start begins transmitting: totalBytes bounds the transfer (0 = unbounded
// — run until Stop). onDone (may be nil) fires when the last byte of a
// bounded transfer is acknowledged.
func (s *Sender) Start(totalBytes uint64, onDone func()) {
	if s.stopped {
		panic("tcp: sender restarted after Stop")
	}
	s.total = totalBytes
	s.onDone = onDone
	s.pump()
}

// Stop quiesces the sender: no further segments or timers. Used at the end
// of a measurement window so the kernel can drain.
func (s *Sender) Stop() {
	s.stopped = true
	s.k.Cancel(s.timer)
	s.timer = nil
}

func (s *Sender) setCwnd(v int) {
	if v < s.cfg.MSS {
		v = s.cfg.MSS
	}
	s.cwnd = v
	s.gCwnd.Set(int64(v))
}

func (s *Sender) setSsthresh(v int) {
	if v < 2*s.cfg.MSS {
		v = 2 * s.cfg.MSS
	}
	s.ssthresh = v
	s.gSsthresh.Set(int64(v))
}

// window is the sender's effective window: min(cwnd, receiver's window).
func (s *Sender) window() int {
	if s.rwnd < s.cwnd {
		return s.rwnd
	}
	return s.cwnd
}

// remaining returns the unsent bytes of a bounded transfer (or a full MSS
// forever when unbounded).
func (s *Sender) remaining() int {
	if s.total == 0 {
		return s.cfg.MSS
	}
	sent := uint64(s.sndNxt - iss)
	if sent >= s.total {
		return 0
	}
	rem := s.total - sent
	if rem > uint64(s.cfg.MSS) {
		return s.cfg.MSS
	}
	return int(rem)
}

// pump emits new segments while the window has room. A segment is sent
// whole (up to MSS) whenever in-flight bytes are below the window — the
// usual fluid simplification, bounding the overshoot to under one MSS.
func (s *Sender) pump() {
	if s.stopped {
		return
	}
	for s.InFlight() < s.window() {
		n := s.remaining()
		if n <= 0 {
			break
		}
		// Below sndMax means re-sending after an RTO go-back.
		retx := seqLT(s.sndNxt, s.sndMax)
		s.emit(s.sndNxt, n, retx)
		s.sndNxt += uint32(n)
		if seqGT(s.sndNxt, s.sndMax) {
			s.sndMax = s.sndNxt
		}
		if !retx {
			s.stats.Segments++
		}
	}
	if s.InFlight() > 0 && s.timer == nil {
		s.armTimer()
	}
}

// emit transmits [seq, seq+n) as one segment. Payload bytes are synthetic
// zeros; only their count and sequencing matter to the model.
func (s *Sender) emit(seq uint32, n int, retransmit bool) {
	seg := Segment{
		SrcPort: s.srcPort, DstPort: s.dstPort,
		Seq: seq, Ack: 0, Flags: FlagACK, Window: s.cfg.RcvWnd,
		Payload: make([]byte, n),
	}
	b := seg.Marshal(s.stack.Addr(), s.dst)
	if err := s.stack.Send(s.vc, ip.ProtoTCP, s.dst, b, nil); err != nil {
		panic(fmt.Sprintf("tcp: send failed: %v", err))
	}
	if retransmit {
		s.stats.Retransmits++
		s.cRetx.Inc()
		// Karn: a retransmission makes any in-progress timing ambiguous.
		s.timing = false
	} else if !s.timing {
		s.timing = true
		s.timedEnd = seq + uint32(n)
		s.timedAt = s.k.Now()
	}
}

func (s *Sender) armTimer() {
	s.k.Cancel(s.timer)
	s.timer = s.k.After(s.est.RTO(), s.timeout)
}

// timeout is the RTO expiry: classic Reno collapse to one segment, back
// off, and resend from the left edge.
func (s *Sender) timeout() {
	s.timer = nil
	if s.stopped || s.InFlight() == 0 {
		return
	}
	s.stats.Timeouts++
	s.cTimeout.Inc()
	s.setSsthresh(s.InFlight() / 2)
	s.setCwnd(s.cfg.MSS)
	s.inRecovery = false
	s.dupAcks = 0
	s.est.Backoff()
	s.timing = false
	// Everything beyond the left edge will be resent as the window
	// reopens; the receiver's out-of-order buffer absorbs what survived.
	s.sndNxt = s.sndUna
	n := s.remaining()
	if n > 0 {
		s.emit(s.sndNxt, n, true)
		s.sndNxt += uint32(n)
	}
	s.armTimer()
}

// HandleSegment processes one segment arriving on the sender's VC — ACKs
// from the receiver. Flow binds this to the IP stack.
func (s *Sender) HandleSegment(h ip.Header, payload []byte, at sim.Time) {
	if s.stopped {
		return
	}
	seg, err := ParseSegment(h.Src, h.Dst, payload)
	if err != nil || seg.Flags&FlagACK == 0 {
		return
	}
	s.stats.AcksRx++
	s.rwnd = seg.Window
	ack := seg.Ack
	switch {
	case seqGT(ack, s.sndMax):
		return // acks data never sent; ignore
	case seqGT(ack, s.sndUna):
		s.newAck(ack)
	case ack == s.sndUna && len(seg.Payload) == 0 && s.InFlight() > 0:
		s.dupAck()
	}
}

// newAck advances the left edge: RTT sampling, window growth, recovery
// exit, completion.
func (s *Sender) newAck(ack uint32) {
	acked := int(ack - s.sndUna)
	s.sndUna = ack
	if seqGT(ack, s.sndNxt) {
		// After an RTO go-back, a cumulative ACK can cover data the
		// receiver had buffered past the resend point — skip ahead.
		s.sndNxt = ack
	}
	s.stats.BytesAcked += uint64(acked)
	s.dupAcks = 0

	if s.timing && seqGEQ(ack, s.timedEnd) {
		rtt := s.k.Now() - s.timedAt
		s.est.Sample(rtt)
		s.hRTT.Observe(rtt)
		s.timing = false
	}

	if s.inRecovery {
		// Reno: the first advancing ACK ends fast recovery — deflate the
		// inflated window back to ssthresh.
		s.inRecovery = false
		s.setCwnd(s.ssthresh)
	} else if s.cwnd < s.ssthresh {
		// Slow start: one MSS per ACK (doubling per RTT).
		s.setCwnd(s.cwnd + s.cfg.MSS)
	} else {
		// Congestion avoidance: ~one MSS per RTT.
		inc := s.cfg.MSS * s.cfg.MSS / s.cwnd
		if inc < 1 {
			inc = 1
		}
		s.setCwnd(s.cwnd + inc)
	}

	if s.Done() {
		s.k.Cancel(s.timer)
		s.timer = nil
		if s.onDone != nil {
			done := s.onDone
			s.onDone = nil
			done()
		}
		return
	}
	if s.InFlight() > 0 {
		s.armTimer()
	} else {
		s.k.Cancel(s.timer)
		s.timer = nil
	}
	s.pump()
}

// dupAck counts duplicate ACKs: three trigger fast retransmit and fast
// recovery; each further one inflates the window by a segment (the
// departed-cell heuristic that keeps the pipe rolling during recovery).
func (s *Sender) dupAck() {
	s.dupAcks++
	switch {
	case s.dupAcks == 3:
		s.stats.FastRetransmits++
		s.cFastRetx.Inc()
		s.setSsthresh(s.InFlight() / 2)
		n := s.cfg.MSS
		if int(s.sndNxt-s.sndUna) < n {
			n = int(s.sndNxt - s.sndUna)
		}
		s.emit(s.sndUna, n, true)
		s.setCwnd(s.ssthresh + 3*s.cfg.MSS)
		s.inRecovery = true
		s.armTimer()
	case s.dupAcks > 3 && s.inRecovery:
		s.setCwnd(s.cwnd + s.cfg.MSS)
		s.pump()
	}
}
