// Package tcp is a per-flow TCP Reno model riding the IP-over-ATM stack:
// slow start, congestion avoidance, fast retransmit/recovery, and
// Karn/Jacobson retransmission timing, with cumulative ACKs flowing back on
// the reverse direction of the same virtual channel. It exists to put real
// transport dynamics — self-clocking, window growth, loss recovery — on the
// simulated datapath, reproducing the satellite-ATM TCP result set
// (goodput vs switch buffering, tail drop vs EPD/PPD, GEO-delay links).
//
// The model is bulk-transfer only: flows begin established (no SYN
// handshake), data flows one way and ACKs the other, and segment payloads
// are synthetic zeros — what matters is their length, timing and loss, not
// their content. Sequence numbers, flags, windows and checksums are real
// and validated end to end.
package tcp

import (
	"encoding/binary"
	"errors"

	"repro/internal/ip"
)

// HeaderSize is the option-less TCP header length in bytes.
const HeaderSize = 20

// windowShift is the implicit window-scale both ends pre-negotiated (as a
// real long-fat-network TCP would via the RFC 7323 option): the wire's
// 16-bit window field counts units of 2^windowShift bytes, reaching the
// multi-hundred-KB windows a GEO path needs.
const windowShift = 6

// MaxWindow is the largest advertisable window in bytes.
const MaxWindow = 0xFFFF << windowShift

// Flags is the TCP flag byte.
type Flags uint8

// Flag bits (the low 6 of the flags byte).
const (
	FlagFIN Flags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Segment is one parsed or to-be-marshalled TCP segment.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	// Window is the advertised receive window in bytes (quantized to
	// 2^windowShift on the wire).
	Window  int
	Payload []byte
}

// Parse errors.
var (
	ErrShortSegment = errors.New("tcp: segment shorter than its header")
	ErrChecksum     = errors.New("tcp: checksum mismatch")
)

// Marshal serializes the segment, computing the checksum over the IPv4
// pseudo-header and the full segment.
func (s *Segment) Marshal(src, dst ip.Addr) []byte {
	b := make([]byte, HeaderSize+len(s.Payload))
	s.MarshalInto(b, src, dst)
	return b
}

// MarshalInto serializes into b, which must be exactly
// HeaderSize+len(Payload) bytes.
func (s *Segment) MarshalInto(b []byte, src, dst ip.Addr) {
	binary.BigEndian.PutUint16(b[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], s.DstPort)
	binary.BigEndian.PutUint32(b[4:8], s.Seq)
	binary.BigEndian.PutUint32(b[8:12], s.Ack)
	b[12] = 5 << 4 // data offset: 5 words, no options
	b[13] = byte(s.Flags)
	wnd := s.Window >> windowShift
	if wnd > 0xFFFF {
		wnd = 0xFFFF
	}
	binary.BigEndian.PutUint16(b[14:16], uint16(wnd))
	b[16], b[17] = 0, 0 // checksum placeholder
	b[18], b[19] = 0, 0 // urgent pointer
	copy(b[HeaderSize:], s.Payload)
	ck := ip.ChecksumWith(ip.PseudoChecksum(src, dst, ip.ProtoTCP, len(b)), b)
	binary.BigEndian.PutUint16(b[16:18], ck)
}

// ParseSegment validates b (checksum included) as a TCP segment between the
// given addresses. The payload aliases b.
func ParseSegment(src, dst ip.Addr, b []byte) (Segment, error) {
	var s Segment
	if len(b) < HeaderSize {
		return s, ErrShortSegment
	}
	if ip.ChecksumWith(ip.PseudoChecksum(src, dst, ip.ProtoTCP, len(b)), b) != 0 {
		return s, ErrChecksum
	}
	s.SrcPort = binary.BigEndian.Uint16(b[0:2])
	s.DstPort = binary.BigEndian.Uint16(b[2:4])
	s.Seq = binary.BigEndian.Uint32(b[4:8])
	s.Ack = binary.BigEndian.Uint32(b[8:12])
	off := int(b[12]>>4) * 4
	if off < HeaderSize || off > len(b) {
		return s, ErrShortSegment
	}
	s.Flags = Flags(b[13])
	s.Window = int(binary.BigEndian.Uint16(b[14:16])) << windowShift
	s.Payload = b[off:]
	return s, nil
}

// Sequence-space comparisons (RFC 793 modular arithmetic).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }
