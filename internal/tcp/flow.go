package tcp

import (
	"repro/internal/atm"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Flow ties a Sender and Receiver together over one duplex virtual channel:
// data segments ride the forward direction, cumulative ACKs the reverse.
// Both ends bind onto their endpoint's IP stack; many flows can share a
// stack as long as each uses its own VC.
type Flow struct {
	Name     string
	Sender   *Sender
	Receiver *Receiver

	k       *sim.Kernel
	startAt sim.Time
	started bool
}

// NewFlow builds a flow named name sending from sndStack (on sndVC) to
// rcvStack (on rcvVC). The VCs must be open on their interfaces and routed
// toward each other — under core.NewNetwork that is one Duplex VCC, with
// sndVC/rcvVC its per-endpoint VC numbers.
func NewFlow(k *sim.Kernel, name string, sndStack *ip.Stack, sndVC atm.VC,
	rcvStack *ip.Stack, rcvVC atm.VC, cfg Config) *Flow {
	cfg = cfg.withDefaults()
	// Ports are cosmetic (one flow per VC); derive stable ones from nothing.
	const dataPort, ackPort = 5001, 34000
	f := &Flow{Name: name, k: k}
	f.Sender = NewSender(k, sndStack, sndVC, rcvStack.Addr(), ackPort, dataPort, cfg)
	f.Receiver = NewReceiver(k, rcvStack, rcvVC, sndStack.Addr(), dataPort, ackPort, cfg.RcvWnd)
	sndStack.Bind(sndVC, f.Sender.HandleSegment)
	rcvStack.Bind(rcvVC, f.Receiver.HandleSegment)
	return f
}

// Instrument registers both halves' metrics under "tcp.<Name>.*"; the cwnd
// and ssthresh gauges are what a periodic trace.Sampler turns into
// congestion-window traces.
func (f *Flow) Instrument(reg *metrics.Registry) {
	f.Sender.Instrument(reg, f.Name)
	f.Receiver.Instrument(reg, f.Name)
}

// Start begins the transfer: totalBytes bounds it (0 = unbounded, run until
// Stop). onDone (may be nil) fires when the last byte is acknowledged.
func (f *Flow) Start(totalBytes uint64, onDone func()) {
	f.startAt = f.k.Now()
	f.started = true
	f.Sender.Start(totalBytes, onDone)
}

// Stop quiesces the sender so the kernel can drain in-flight events.
func (f *Flow) Stop() { f.Sender.Stop() }

// Done reports whether a bounded transfer has completed.
func (f *Flow) Done() bool { return f.Sender.Done() }

// Delivered returns the in-order bytes the receiver has accepted.
func (f *Flow) Delivered() uint64 { return f.Receiver.Delivered() }

// Goodput returns the flow's delivered rate in bits/s from Start until at.
func (f *Flow) Goodput(at sim.Time) float64 {
	if !f.started || at <= f.startAt {
		return 0
	}
	elapsed := float64(at-f.startAt) / float64(sim.Second)
	return float64(f.Receiver.Delivered()) * 8 / elapsed
}
