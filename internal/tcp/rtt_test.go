package tcp

import (
	"testing"

	"repro/internal/sim"
)

func TestRTOEstimatorFirstSample(t *testing.T) {
	e := NewRTOEstimator(200*sim.Millisecond, 10*sim.Millisecond, 10*sim.Second)
	if e.RTO() != 200*sim.Millisecond {
		t.Fatalf("initial RTO = %v", e.RTO())
	}
	if e.SRTT() != 0 {
		t.Fatalf("SRTT before sample = %v", e.SRTT())
	}
	e.Sample(100 * sim.Millisecond)
	if e.SRTT() != 100*sim.Millisecond {
		t.Errorf("SRTT after first sample = %v", e.SRTT())
	}
	// RTO = SRTT + 4*RTTVAR = 100 + 4*50 = 300 ms.
	if e.RTO() != 300*sim.Millisecond {
		t.Errorf("RTO after first sample = %v", e.RTO())
	}
}

func TestRTOEstimatorEWMA(t *testing.T) {
	e := NewRTOEstimator(200*sim.Millisecond, 10*sim.Millisecond, 10*sim.Second)
	e.Sample(100 * sim.Millisecond)
	e.Sample(100 * sim.Millisecond)
	// Steady input: SRTT stays, RTTVAR decays 3/4 each round.
	if e.SRTT() != 100*sim.Millisecond {
		t.Errorf("SRTT = %v", e.SRTT())
	}
	prev := e.RTO()
	for i := 0; i < 20; i++ {
		e.Sample(100 * sim.Millisecond)
		if e.RTO() > prev {
			t.Fatalf("RTO grew on steady samples: %v -> %v", prev, e.RTO())
		}
		prev = e.RTO()
	}
	// Variance decays toward zero; the min clamp must hold the floor.
	if e.RTO() < 10*sim.Millisecond {
		t.Errorf("RTO below floor: %v", e.RTO())
	}
}

func TestRTOEstimatorBackoffAndClamp(t *testing.T) {
	e := NewRTOEstimator(200*sim.Millisecond, 10*sim.Millisecond, sim.Second)
	e.Backoff()
	if e.RTO() != 400*sim.Millisecond {
		t.Errorf("RTO after backoff = %v", e.RTO())
	}
	e.Backoff()
	e.Backoff()
	if e.RTO() != sim.Second {
		t.Errorf("RTO not clamped to max: %v", e.RTO())
	}
	e.Sample(-1) // ignored
	if e.SRTT() != 0 {
		t.Errorf("negative sample accepted")
	}
}
