package tcp

import (
	"bytes"
	"testing"

	"repro/internal/ip"
)

var segSrc = ip.Addr{10, 0, 0, 1}
var segDst = ip.Addr{10, 0, 0, 2}

func TestSegmentRoundTrip(t *testing.T) {
	s := Segment{
		SrcPort: 5001, DstPort: 34000,
		Seq: 0xDEADBEEF, Ack: 42,
		Flags: FlagACK | FlagPSH, Window: 128 << 10,
		Payload: bytes.Repeat([]byte{0}, 1460),
	}
	b := s.Marshal(segSrc, segDst)
	got, err := ParseSegment(segSrc, segDst, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != s.SrcPort || got.DstPort != s.DstPort ||
		got.Seq != s.Seq || got.Ack != s.Ack || got.Flags != s.Flags {
		t.Errorf("round trip: %+v", got)
	}
	if got.Window != s.Window {
		t.Errorf("window: got %d want %d", got.Window, s.Window)
	}
	if len(got.Payload) != len(s.Payload) {
		t.Errorf("payload length %d", len(got.Payload))
	}
}

func TestSegmentChecksumRejected(t *testing.T) {
	s := Segment{Seq: 7, Flags: FlagACK, Window: 1 << windowShift}
	b := s.Marshal(segSrc, segDst)
	b[4] ^= 0x80 // corrupt seq
	if _, err := ParseSegment(segSrc, segDst, b); err != ErrChecksum {
		t.Errorf("corrupted segment: err = %v", err)
	}
	// Wrong pseudo-header (misdelivered datagram) also fails.
	if _, err := ParseSegment(segSrc, ip.Addr{10, 0, 0, 9}, s.Marshal(segSrc, segDst)); err != ErrChecksum {
		t.Errorf("wrong addresses: err = %v", err)
	}
}

func TestSegmentShortRejected(t *testing.T) {
	if _, err := ParseSegment(segSrc, segDst, make([]byte, HeaderSize-1)); err != ErrShortSegment {
		t.Errorf("short: err = %v", err)
	}
	// A header claiming a data offset beyond the segment.
	s := Segment{Flags: FlagACK}
	b := s.Marshal(segSrc, segDst)
	b[12] = 15 << 4 // 60-byte header in a 20-byte segment
	if _, err := ParseSegment(segSrc, segDst, b); err == nil {
		t.Error("oversized data offset accepted")
	}
}

func TestSegmentWindowQuantized(t *testing.T) {
	// Sub-unit windows round down to 0; oversized clamp to MaxWindow.
	s := Segment{Window: (1 << windowShift) - 1, Flags: FlagACK}
	got, err := ParseSegment(segSrc, segDst, s.Marshal(segSrc, segDst))
	if err != nil || got.Window != 0 {
		t.Errorf("tiny window: %d err=%v", got.Window, err)
	}
	s.Window = MaxWindow * 2
	got, err = ParseSegment(segSrc, segDst, s.Marshal(segSrc, segDst))
	if err != nil || got.Window != MaxWindow {
		t.Errorf("huge window: %d err=%v", got.Window, err)
	}
}

func TestSeqCompare(t *testing.T) {
	if !seqLT(0xFFFFFFF0, 5) || seqGT(0xFFFFFFF0, 5) {
		t.Error("wraparound comparison broken")
	}
	if !seqGEQ(5, 5) || !seqGEQ(6, 5) || seqGEQ(4, 5) {
		t.Error("seqGEQ broken")
	}
}
