package tcp

import (
	"repro/internal/atm"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ReceiverStats counts the receive-side events of one flow.
type ReceiverStats struct {
	Segments       uint64 // data segments processed
	DupSegments    uint64 // entirely below rcvNxt (already delivered)
	OOOSegments    uint64 // buffered above a hole
	AcksSent       uint64
	DeliveredBytes uint64 // in-order bytes handed "up"
}

// Receiver is the consuming half of a flow: it acknowledges cumulatively
// and immediately (no delayed ACKs — the satellite studies' configuration,
// which also maximizes the ACK clock on long-delay paths). Out-of-order
// segments are buffered by sequence range; payload content is synthetic, so
// only the ranges are kept.
type Receiver struct {
	k     *sim.Kernel
	stack *ip.Stack
	vc    atm.VC
	peer  ip.Addr

	srcPort, dstPort uint16

	rcvNxt uint32
	window int
	ooo    map[uint32]int // buffered seq -> length

	stats ReceiverStats
	cAcks *metrics.Counter
}

// NewReceiver builds the receiving end on stack's vc, sending ACKs back to
// peer. window is the advertised receive window in bytes.
func NewReceiver(k *sim.Kernel, stack *ip.Stack, vc atm.VC, peer ip.Addr,
	srcPort, dstPort uint16, window int) *Receiver {
	if window > MaxWindow {
		window = MaxWindow
	}
	return &Receiver{
		k: k, stack: stack, vc: vc, peer: peer,
		srcPort: srcPort, dstPort: dstPort,
		rcvNxt: iss, window: window,
		ooo: make(map[uint32]int),
	}
}

// Instrument registers the receiver's counters under "tcp.<name>.".
func (r *Receiver) Instrument(reg *metrics.Registry, name string) {
	r.cAcks = reg.Counter("tcp." + name + ".acks_sent")
}

// Stats returns the receiver's counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Delivered returns the in-order bytes received so far.
func (r *Receiver) Delivered() uint64 { return r.stats.DeliveredBytes }

// HandleSegment processes one data segment arriving on the receiver's VC.
// Flow binds this to the IP stack.
func (r *Receiver) HandleSegment(h ip.Header, payload []byte, at sim.Time) {
	seg, err := ParseSegment(h.Src, h.Dst, payload)
	if err != nil || len(seg.Payload) == 0 {
		return
	}
	r.stats.Segments++
	seq, n := seg.Seq, len(seg.Payload)
	end := seq + uint32(n)
	switch {
	case seqGEQ(r.rcvNxt, end):
		// Entirely old — a retransmission of delivered data. Re-ACK so the
		// sender's duplicate-ACK machinery sees it.
		r.stats.DupSegments++
	case seqGT(seq, r.rcvNxt):
		// Above a hole: buffer (idempotently) and send a duplicate ACK.
		if _, ok := r.ooo[seq]; !ok {
			r.ooo[seq] = n
		}
		r.stats.OOOSegments++
	default:
		// Advances the left edge (possibly with old overlap).
		r.deliverTo(end)
		// Drain any buffered segments now contiguous.
		for {
			adv := false
			for s2, n2 := range r.ooo {
				e2 := s2 + uint32(n2)
				if seqGEQ(r.rcvNxt, s2) {
					delete(r.ooo, s2)
					if seqGT(e2, r.rcvNxt) {
						r.deliverTo(e2)
					}
					adv = true
				}
			}
			if !adv {
				break
			}
		}
	}
	r.sendAck()
}

func (r *Receiver) deliverTo(end uint32) {
	r.stats.DeliveredBytes += uint64(end - r.rcvNxt)
	r.rcvNxt = end
}

func (r *Receiver) sendAck() {
	seg := Segment{
		SrcPort: r.srcPort, DstPort: r.dstPort,
		Seq: 1, Ack: r.rcvNxt, Flags: FlagACK, Window: r.window,
	}
	b := seg.Marshal(r.stack.Addr(), r.peer)
	if err := r.stack.Send(r.vc, ip.ProtoTCP, r.peer, b, nil); err != nil {
		return // reverse path gone; the sender's RTO covers it
	}
	r.stats.AcksSent++
	r.cAcks.Inc()
}
