package tcp

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

// rig is two stations joined by a clean duplex link with one flow on VC 80.
type rig struct {
	k        *sim.Kernel
	snd, rcv *ip.Stack
	vc       atm.VC
	flow     *Flow
}

func newRig(t *testing.T, cfg Config, link netsim.LinkConfig) *rig {
	t.Helper()
	k := sim.NewKernel()
	a, err := netsim.NewStation(k, nic.DefaultConfig("snd"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("rcv"))
	if err != nil {
		t.Fatal(err)
	}
	netsim.Connect(k, a, b, link)
	vc := atm.VC{VCI: 80}
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)
	snd := ip.NewStack(a.Iface, ip.LLCSnap, ip.Addr{10, 0, 0, 1})
	rcv := ip.NewStack(b.Iface, ip.LLCSnap, ip.Addr{10, 0, 0, 2})
	r := &rig{k: k, snd: snd, rcv: rcv, vc: vc}
	r.flow = NewFlow(k, "t", snd, vc, rcv, vc, cfg)
	return r
}

func TestFlowTransferClean(t *testing.T) {
	r := newRig(t, Config{}, netsim.LinkConfig{Delay: 100 * sim.Microsecond, Seed: 3})
	const total = 200 << 10
	done := false
	r.flow.Start(total, func() { done = true })
	end := r.k.Run()
	if !done || !r.flow.Done() {
		t.Fatalf("transfer incomplete: delivered %d of %d", r.flow.Delivered(), total)
	}
	if r.flow.Delivered() != total {
		t.Errorf("delivered %d, want %d", r.flow.Delivered(), total)
	}
	st := r.flow.Sender.Stats()
	if st.Retransmits != 0 || st.Timeouts != 0 || st.FastRetransmits != 0 {
		t.Errorf("loss events on a clean link: %+v", st)
	}
	// Slow start must have grown the window past its initial two segments.
	if r.flow.Sender.Cwnd() <= 2*1460 {
		t.Errorf("cwnd never grew: %d", r.flow.Sender.Cwnd())
	}
	if r.flow.Goodput(end) <= 0 {
		t.Errorf("goodput = %v", r.flow.Goodput(end))
	}
	if r.flow.Sender.SRTT() <= 0 {
		t.Errorf("no RTT sample taken")
	}
}

// dropFilter rebinds the receiver's VC with a predicate that discards
// selected data segments before they reach the Receiver — deterministic
// loss without touching the link.
func dropFilter(r *rig, drop func(dataIdx int) bool) {
	idx := 0
	r.rcv.Bind(r.vc, func(h ip.Header, payload []byte, at sim.Time) {
		if len(payload) > HeaderSize {
			idx++
			if drop(idx) {
				return
			}
		}
		r.flow.Receiver.HandleSegment(h, payload, at)
	})
}

func TestFlowFastRetransmit(t *testing.T) {
	r := newRig(t, Config{}, netsim.LinkConfig{Delay: 100 * sim.Microsecond, Seed: 3})
	// Lose the 10th data segment: by then slow start has opened the window
	// far enough that the segments behind the hole generate 3+ dup ACKs.
	dropFilter(r, func(i int) bool { return i == 10 })
	const total = 200 << 10
	done := false
	r.flow.Start(total, func() { done = true })
	r.k.Run()
	if !done {
		t.Fatalf("transfer incomplete: delivered %d", r.flow.Delivered())
	}
	st := r.flow.Sender.Stats()
	if st.FastRetransmits != 1 {
		t.Errorf("fast retransmits = %d, want 1", st.FastRetransmits)
	}
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (dup ACKs should recover)", st.Timeouts)
	}
	rs := r.flow.Receiver.Stats()
	if rs.OOOSegments == 0 {
		t.Errorf("no out-of-order segments buffered")
	}
	if r.flow.Delivered() != total {
		t.Errorf("delivered %d, want %d", r.flow.Delivered(), total)
	}
	// Loss must have cut the window: ssthresh fell below the ceiling.
	if r.flow.Sender.SSThresh() >= (Config{}).withDefaults().RcvWnd {
		t.Errorf("ssthresh never reduced: %d", r.flow.Sender.SSThresh())
	}
}

func TestFlowTimeoutRecovery(t *testing.T) {
	r := newRig(t, Config{}, netsim.LinkConfig{Delay: 100 * sim.Microsecond, Seed: 3})
	// Lose the first four data segments: the initial window (2 segments)
	// dies, and so do the first two RTO retransmissions — forcing repeated
	// timeouts with exponential backoff before the transfer proceeds.
	dropFilter(r, func(i int) bool { return i <= 4 })
	const total = 50 << 10
	done := false
	r.flow.Start(total, func() { done = true })
	r.k.Run()
	if !done {
		t.Fatalf("transfer incomplete: delivered %d", r.flow.Delivered())
	}
	st := r.flow.Sender.Stats()
	if st.Timeouts < 2 {
		t.Errorf("timeouts = %d, want >= 2", st.Timeouts)
	}
	if st.Retransmits < 2 {
		t.Errorf("retransmits = %d", st.Retransmits)
	}
	if r.flow.Delivered() != total {
		t.Errorf("delivered %d, want %d", r.flow.Delivered(), total)
	}
}

func TestFlowUnboundedStop(t *testing.T) {
	r := newRig(t, Config{}, netsim.LinkConfig{Delay: 100 * sim.Microsecond, Seed: 3})
	r.flow.Start(0, nil)
	r.k.RunFor(20 * sim.Millisecond)
	r.flow.Stop()
	r.k.Run()
	if r.flow.Delivered() == 0 {
		t.Error("unbounded flow delivered nothing")
	}
	if r.flow.Done() {
		t.Error("unbounded flow claims Done")
	}
	defer func() {
		if recover() == nil {
			t.Error("restart after Stop did not panic")
		}
	}()
	r.flow.Start(1, nil)
}

func TestFlowInstrument(t *testing.T) {
	r := newRig(t, Config{}, netsim.LinkConfig{Delay: 100 * sim.Microsecond, Seed: 3})
	reg := metrics.NewRegistry()
	r.flow.Instrument(reg)
	r.flow.Start(64<<10, nil)
	r.k.Run()
	if reg.Gauge("tcp.t.cwnd").Value() <= 0 {
		t.Error("cwnd gauge not maintained")
	}
	if reg.Counter("tcp.t.acks_sent").Value() == 0 {
		t.Error("acks_sent counter not maintained")
	}
	if reg.Histogram("tcp.t.rtt_ns").Count() == 0 {
		t.Error("rtt histogram empty")
	}
}

func TestReceiverOutOfOrder(t *testing.T) {
	r := newRig(t, Config{}, netsim.LinkConfig{Delay: 100 * sim.Microsecond, Seed: 3})
	rcv := r.flow.Receiver
	h := ip.Header{Src: r.snd.Addr(), Dst: r.rcv.Addr(), Proto: ip.ProtoTCP}
	inject := func(seq uint32, n int) {
		seg := Segment{SrcPort: 5001, DstPort: 34000, Seq: seq,
			Flags: FlagACK, Window: 64 << 10, Payload: make([]byte, n)}
		rcv.HandleSegment(h, seg.Marshal(h.Src, h.Dst), r.k.Now())
	}
	inject(iss, 100) // in order
	if rcv.Delivered() != 100 {
		t.Fatalf("delivered = %d", rcv.Delivered())
	}
	inject(iss+300, 100) // above a hole: buffered
	if rcv.Delivered() != 100 || rcv.Stats().OOOSegments != 1 {
		t.Fatalf("OOO handling: delivered=%d stats=%+v", rcv.Delivered(), rcv.Stats())
	}
	inject(iss+300, 100) // duplicate of the buffered segment
	if rcv.Stats().OOOSegments != 2 {
		t.Errorf("dup OOO not counted: %+v", rcv.Stats())
	}
	inject(iss+100, 200) // fills the hole; buffered segment drains too
	if rcv.Delivered() != 400 {
		t.Errorf("after fill: delivered = %d", rcv.Delivered())
	}
	inject(iss, 100) // fully old
	if rcv.Stats().DupSegments != 1 {
		t.Errorf("old segment not counted dup: %+v", rcv.Stats())
	}
	if rcv.Stats().AcksSent != 5 {
		t.Errorf("acks sent = %d, want 5", rcv.Stats().AcksSent)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MSS != 1460 || c.RcvWnd != 64<<10 || c.InitialCwnd != 2 {
		t.Errorf("defaults: %+v", c)
	}
	if c.SSThresh != c.RcvWnd {
		t.Errorf("ssthresh default: %d", c.SSThresh)
	}
	big := Config{RcvWnd: MaxWindow * 4}.withDefaults()
	if big.RcvWnd != MaxWindow {
		t.Errorf("RcvWnd not clamped: %d", big.RcvWnd)
	}
}
