package nic

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bufmgr"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/units"
)

// rig is a two-station test bench: a sends to b over a cell link.
type rig struct {
	k        *sim.Kernel
	a, b     *Interface
	hostA    *host.Host
	hostB    *host.Host
	link     *phy.CellLink
	received []Delivered
}

func newRig(t *testing.T, mod func(cfg *Config)) *rig {
	t.Helper()
	k := sim.NewKernel()
	r := &rig{k: k}
	r.hostA = host.New(k, host.DefaultConfig())
	r.hostB = host.New(k, host.DefaultConfig())
	busA := bus.New(k, bus.DefaultConfig())
	busB := bus.New(k, bus.DefaultConfig())

	cfgA := DefaultConfig("a")
	cfgB := DefaultConfig("b")
	if mod != nil {
		mod(&cfgA)
		cfgB = cfgA
		cfgB.Name = "b"
	}
	var err error
	r.a, err = New(k, cfgA, r.hostA, busA)
	if err != nil {
		t.Fatal(err)
	}
	r.b, err = New(k, cfgB, r.hostB, busB)
	if err != nil {
		t.Fatal(err)
	}
	r.link = phy.NewCellLink(k, 10_000, 1, r.b) // 2 km fiber
	r.a.SetOutput(r.link.Send)
	r.b.OnReceive(func(d Delivered) { r.received = append(r.received, d) })
	return r
}

func vc1() atm.VC { return atm.VC{VPI: 0, VCI: 42} }

func pkt(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*37 + 5)
	}
	return b
}

func TestEndToEndSinglePacket(t *testing.T) {
	r := newRig(t, nil)
	if err := r.a.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	if err := r.b.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	sent := false
	if err := r.a.Send(vc1(), pkt(9180), func() { sent = true }); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if !sent {
		t.Fatal("onSent never fired")
	}
	if len(r.received) != 1 {
		t.Fatalf("received %d packets, want 1", len(r.received))
	}
	d := r.received[0]
	if !bytes.Equal(d.SDU, pkt(9180)) {
		t.Fatal("payload corrupted end to end")
	}
	if d.VC != vc1() {
		t.Fatalf("delivered on VC %v", d.VC)
	}
	if d.Cells != aal.CellsForSDU5(9180) {
		t.Fatalf("cells = %d, want %d", d.Cells, aal.CellsForSDU5(9180))
	}
}

func TestEndToEndTimingSanity(t *testing.T) {
	// A 9180-byte packet is 192 cells; at STS-3c payload rate the wire
	// alone needs 192 * 2.831 µs = 543 µs. End-to-end must exceed that
	// but not by an order of magnitude.
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	r.a.Send(vc1(), pkt(9180), nil)
	end := r.k.Run()
	wire := sim.Duration(192) * units.CellTime(units.STS3cPayload)
	if end < wire {
		t.Fatalf("finished at %v, faster than the wire %v", end, wire)
	}
	if end > 3*wire {
		t.Fatalf("finished at %v, way beyond wire time %v — pipeline stalled", end, wire)
	}
}

func TestManyPacketsAllDelivered(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	const n = 50
	for i := 0; i < n; i++ {
		if err := r.a.Send(vc1(), pkt(1000+i), nil); err != nil {
			t.Fatal(err)
		}
	}
	r.k.Run()
	if len(r.received) != n {
		t.Fatalf("received %d, want %d", len(r.received), n)
	}
	for i, d := range r.received {
		if !bytes.Equal(d.SDU, pkt(1000+i)) {
			t.Fatalf("packet %d corrupted or reordered", i)
		}
	}
	st := r.a.Stats()
	if st.Tx.Packets != n {
		t.Fatalf("tx packets = %d", st.Tx.Packets)
	}
}

func TestAAL34Mode(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.AAL = aal.AAL34 })
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	r.a.Send(vc1(), pkt(5000), nil)
	r.k.Run()
	if len(r.received) != 1 || !bytes.Equal(r.received[0].SDU, pkt(5000)) {
		t.Fatal("AAL3/4 end-to-end failed")
	}
	if r.received[0].Cells != aal.CellsForSDU34(5000) {
		t.Fatalf("cells = %d, want %d", r.received[0].Cells, aal.CellsForSDU34(5000))
	}
}

func TestCellLossDetectedNotDelivered(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	r.link.LossProb = 0.02 // 2% cell loss: most multi-cell frames die
	const n = 30
	for i := 0; i < n; i++ {
		r.a.Send(vc1(), pkt(4800), nil) // ~101 cells each
	}
	r.k.Run()
	st := r.b.Stats()
	if len(r.received)+int(st.Rx.AALErrors) == 0 {
		t.Fatal("nothing received, nothing errored — cells vanished silently")
	}
	if st.Rx.AALErrors == 0 {
		t.Fatal("2% loss on 100-cell frames produced no AAL errors")
	}
	// Whatever was delivered is intact.
	for _, d := range r.received {
		if !bytes.Equal(d.SDU, pkt(4800)) {
			t.Fatal("corrupted frame delivered")
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	r.link.CorruptProb = 0.05
	for i := 0; i < 20; i++ {
		r.a.Send(vc1(), pkt(2000), nil)
	}
	r.k.Run()
	st := r.b.Stats()
	if st.Rx.AALErrors == 0 {
		t.Fatal("payload corruption never detected")
	}
	for _, d := range r.received {
		if !bytes.Equal(d.SDU, pkt(2000)) {
			t.Fatal("corrupted frame delivered")
		}
	}
}

func TestUnknownVCDropped(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	// b never opens the VC.
	r.a.Send(vc1(), pkt(100), nil)
	r.k.Run()
	if len(r.received) != 0 {
		t.Fatal("packet delivered on unopened VC")
	}
	if r.b.Stats().Rx.UnknownVC == 0 {
		t.Fatal("unknown-VC cells not counted")
	}
}

func TestSendValidation(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	if err := r.a.Send(vc1(), nil, nil); !errors.Is(err, ErrBadSDU) {
		t.Fatalf("empty SDU err = %v", err)
	}
	if err := r.a.Send(vc1(), make([]byte, aal.MaxSDU+1), nil); !errors.Is(err, ErrBadSDU) {
		t.Fatalf("oversize SDU err = %v", err)
	}
	if err := r.a.Send(atm.VC{VCI: 999}, pkt(10), nil); !errors.Is(err, ErrUnknownVC) {
		t.Fatalf("unopened VC err = %v", err)
	}
}

func TestOpenVCValidation(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.MaxVCs = 2 })
	if err := r.a.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	if err := r.a.OpenVC(vc1()); !errors.Is(err, ErrVCExists) {
		t.Fatalf("dup err = %v", err)
	}
	r.a.OpenVC(atm.VC{VCI: 2})
	if err := r.a.OpenVC(atm.VC{VCI: 3}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("full err = %v", err)
	}
}

func TestCloseVCDiscardsPartialFrame(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	r.a.Send(vc1(), pkt(9180), nil)
	// Close the receive VC mid-flight.
	r.k.RunUntil(200_000) // ~70 cells in
	r.b.CloseVC(vc1())
	r.k.Run()
	if len(r.received) != 0 {
		t.Fatal("packet delivered after CloseVC")
	}
	// Reopening works and fresh traffic flows.
	r.b.OpenVC(vc1())
	r.a.Send(vc1(), pkt(500), nil)
	r.k.Run()
	if len(r.received) != 1 || !bytes.Equal(r.received[0].SDU, pkt(500)) {
		t.Fatal("traffic broken after reopen")
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	// Closed-loop bulk transfer of big packets at STS-3c must land close
	// to the AAL5 payload ceiling (48/53 of 149.76 = 135.6 Mb/s).
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	payload := pkt(9180)
	deadline := sim.Time(50 * sim.Millisecond)
	var send func()
	send = func() {
		if r.k.Now() > deadline {
			return
		}
		r.a.Send(vc1(), payload, send)
	}
	// Keep the pipe full: several packets outstanding.
	for i := 0; i < 4; i++ {
		send()
	}
	r.k.RunUntil(deadline + sim.Time(5*sim.Millisecond))
	st := r.b.Stats()
	got := units.ThroughputBps(int64(st.Rx.Bytes), r.k.Now())
	// SDU goodput ceiling: 9180/(192*53) bytes of every wire byte.
	ceiling := float64(units.STS3cPayload) * 9180 / float64(192*53)
	if got < 0.85*ceiling {
		t.Fatalf("goodput %.1f Mb/s below 85%% of ceiling %.1f Mb/s", got/1e6, ceiling/1e6)
	}
	if got > ceiling*1.02 {
		t.Fatalf("goodput %.1f Mb/s exceeds physics %.1f Mb/s", got/1e6, ceiling/1e6)
	}
}

func TestRxEngineBottleneckAtSTS12c(t *testing.T) {
	// At 622 Mb/s the 25 MHz receive engine cannot keep up with minimum
	// frames; the RX FIFO must overflow and goodput must fall well below
	// the wire. This is the paper's motivation for faster engines or
	// hardware assist at OC-12.
	r := newRig(t, func(cfg *Config) {
		cfg.PayloadRate = units.STS12cPayload
	})
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	// Small packets maximize per-cell overhead on the receive side.
	deadline := sim.Time(10 * sim.Millisecond)
	var send func()
	send = func() {
		if r.k.Now() > deadline {
			return
		}
		r.a.Send(vc1(), pkt(40), send)
	}
	for i := 0; i < 16; i++ {
		send()
	}
	r.k.RunUntil(deadline + sim.Time(2*sim.Millisecond))
	st := r.b.Stats()
	if st.Rx.FifoDrops == 0 && st.Tx.IdleSlots > 0 {
		// The TX side might itself be the bottleneck for tiny packets;
		// accept either engine saturating, but something must give.
		if r.a.Stats().TxEngUtil < 0.95 && r.b.Stats().RxEngUtil < 0.95 {
			t.Fatalf("no bottleneck at STS-12c: rx drops %d, tx util %.2f, rx util %.2f",
				st.Rx.FifoDrops, r.a.Stats().TxEngUtil, r.b.Stats().RxEngUtil)
		}
	}
}

func TestAdapterSRAMExhaustion(t *testing.T) {
	// A tiny SRAM with the contiguous organization can hold only one
	// worst-case frame; a second simultaneous VC's frame must be dropped
	// for memory.
	r := newRig(t, func(cfg *Config) {
		cfg.BufOrg = bufmgr.Contig
		cfg.AdapterSRAM = 70000 // one 1366-cell frame + change
		cfg.MaxSDU = aal.MaxSDU
	})
	vcA, vcB := atm.VC{VCI: 10}, atm.VC{VCI: 11}
	for _, vc := range []atm.VC{vcA, vcB} {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	r.a.Send(vcA, pkt(9180), nil)
	r.a.Send(vcB, pkt(9180), nil)
	r.k.Run()
	st := r.b.Stats()
	if st.Rx.SRAMDrops == 0 {
		t.Fatalf("no SRAM drops with starved contiguous buffers: %+v", st.Rx)
	}
	// With paged buffers the same SRAM handles both.
	r2 := newRig(t, func(cfg *Config) {
		cfg.BufOrg = bufmgr.Paged
		cfg.AdapterSRAM = 70000
	})
	for _, vc := range []atm.VC{vcA, vcB} {
		r2.a.OpenVC(vc)
		r2.b.OpenVC(vc)
	}
	r2.a.Send(vcA, pkt(9180), nil)
	r2.a.Send(vcB, pkt(9180), nil)
	r2.k.Run()
	if len(r2.received) != 2 {
		t.Fatalf("paged org delivered %d of 2 under the same SRAM", len(r2.received))
	}
}

func TestHostInvolvedPerPacketNotPerCell(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	r.a.Send(vc1(), pkt(9180), nil) // 192 cells
	r.k.Run()
	// Receive host: exactly one rx interrupt. Transmit host: one tx-done.
	if got := r.hostB.Interrupts(); got != 1 {
		t.Fatalf("receive host took %d interrupts for one 192-cell packet", got)
	}
	if got := r.hostA.Interrupts(); got != 1 {
		t.Fatalf("transmit host took %d interrupts", got)
	}
}

func TestInterleavedVCsReassembleIndependently(t *testing.T) {
	// Two senders' cells interleave at the receiver; per-VC reassembly
	// must keep them apart. Simulate by sending on two VCs of the same
	// interface back to back (cells of packet 2 chase packet 1).
	r := newRig(t, nil)
	vcA, vcB := atm.VC{VCI: 7}, atm.VC{VCI: 8}
	for _, vc := range []atm.VC{vcA, vcB} {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	r.a.Send(vcA, pkt(3000), nil)
	r.a.Send(vcB, pkt(2000), nil)
	r.k.Run()
	if len(r.received) != 2 {
		t.Fatalf("received %d, want 2", len(r.received))
	}
	byVC := map[atm.VC][]byte{}
	for _, d := range r.received {
		byVC[d.VC] = d.SDU
	}
	if !bytes.Equal(byVC[vcA], pkt(3000)) || !bytes.Equal(byVC[vcB], pkt(2000)) {
		t.Fatal("VC payloads mixed up")
	}
}

func TestStatsAccounting(t *testing.T) {
	r := newRig(t, nil)
	r.a.OpenVC(vc1())
	r.b.OpenVC(vc1())
	r.a.Send(vc1(), pkt(9180), nil)
	r.k.Run()
	a, b := r.a.Stats(), r.b.Stats()
	if a.Tx.Cells != 192 {
		t.Fatalf("tx cells = %d, want 192", a.Tx.Cells)
	}
	if b.Rx.Cells != 192 {
		t.Fatalf("rx cells = %d, want 192", b.Rx.Cells)
	}
	if a.Tx.Bytes != 9180 || b.Rx.Bytes != 9180 {
		t.Fatalf("byte accounting: tx %d rx %d", a.Tx.Bytes, b.Rx.Bytes)
	}
	if len(a.TxEngine) == 0 || len(b.RxEngine) == 0 {
		t.Fatal("engine routine stats empty")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	h := host.New(k, host.DefaultConfig())
	b := bus.New(k, bus.DefaultConfig())
	bad := DefaultConfig("x")
	bad.TxFifoDepth = 0
	if _, err := New(k, bad, h, b); err == nil {
		t.Fatal("zero FIFO depth accepted")
	}
	bad = DefaultConfig("x")
	bad.PayloadRate = 0
	if _, err := New(k, bad, h, b); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := New(k, DefaultConfig("x"), nil, b); err == nil {
		t.Fatal("nil host accepted")
	}
}

func TestLookupKindString(t *testing.T) {
	if LookupCAM.String() != "cam" || LookupHash.String() != "hash" || LookupLinear.String() != "linear" {
		t.Fatal("LookupKind strings broken")
	}
}
