package nic

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bufmgr"
	"repro/internal/bufpool"
	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/fifo"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclookup"
)

// RxStats is the receive-side snapshot assembled from the telemetry
// registry (see Interface.Stats).
type RxStats struct {
	Cells     uint64 // cells popped from the RX FIFO
	FifoDrops uint64 // cells lost to RX FIFO overflow
	UnknownVC uint64 // cells to unopened VCs
	OAMCells  uint64 // management cells diverted off the fast path
	AALErrors uint64 // frames discarded by AAL checks
	SRAMDrops uint64 // frames abandoned for adapter memory exhaustion
	BadOAM    uint64 // management cells dropped: damaged or unhandled type
	Stale     uint64 // partial frames reclaimed by the reassembly GC
	Packets   uint64 // frames delivered to the host
	Bytes     uint64 // SDU bytes delivered
	MaxFifo   int    // RX FIFO high-water mark (from fifo stats at read)
}

// Delivered describes one received packet handed to the host.
type Delivered struct {
	VC    atm.VC
	SDU   []byte
	Cells int
	// MID is the AAL3/4 multiplexing identifier the frame arrived under
	// (0 unless the interface runs with Config.MIDMux).
	MID uint16
	// At is the simulated time the host finished the receive interrupt.
	At sim.Time
}

// rxVC is per-open-VC receive state.
type rxVC struct {
	vc         atm.VC
	ras        aal.Reassembler       // nil when midras is used
	midras     *aal.MIDReassembler34 // MID-demultiplexed AAL3/4 (Config.MIDMux)
	frame      bufmgr.Frame          // nil when no frame in progress
	vst        *metrics.VCStats      // per-connection telemetry row
	frameStart sim.Time              // first-cell arrival of the frame in progress
	efci       bool                  // latest data cell carried the EFCI bit
}

// receiver is the receive half: per-engine RX FIFOs behind a hardware VC
// demux, the demultiplex + reassembly engines, completion DMA and the
// per-packet host interrupt.
//
// With Config.RxEngines > 1 the receive path scales out the way the era's
// delay analyses proposed: a cheap hardware hash on VPI/VCI steers each
// cell to one of N engine-FIFO pairs, so cells of one VC always visit the
// same engine (reassembly stays ordered) while different VCs proceed in
// parallel. A single VC gains nothing — the scaling is across connections,
// exactly as with the real proposal.
type receiver struct {
	k    *sim.Kernel
	cfg  *Config
	engs []*engine.Engine
	dev  *bus.Device
	hst  *host.Host
	pool *atm.Pool

	fifos      []*fifo.Ring[*atm.Cell]
	arrivals   []*fifo.Ring[sim.Time] // per-cell arrival stamps, lockstep with fifos
	processing []bool
	lookup     vclookup.Strategy
	alloc      *bufmgr.Allocator
	vcs        map[int]*rxVC
	steer      map[atm.VC]int // VC → engine (round-robin at open)
	nextSteer  int

	onDeliver func(Delivered)
	onOAM     func(e int, c *atm.Cell) // owns the cell; nil = drop
	bufp      *bufpool.Pool            // nil unless EnableRxPooling

	// Reassembly garbage collection (Config.ReassemblyTimeout > 0): a
	// timer armed while frames are in progress sweeps every VC's
	// reassembler for partial frames abandoned by a lost end-of-message,
	// aborts them and returns their adapter-SRAM buffers to the free list.
	// The timer self-terminates when nothing is mid-frame, so an idle
	// simulation still drains.
	clockFn func() int64 // reassembler staleness clock; nil = GC disabled
	gcFn    func()
	gcArmed bool

	// Per-engine pre-bound callbacks and completion contexts: engine e
	// processes one cell at a time (processing[e] serializes), so a single
	// reusable context per engine replaces the per-cell closures.
	nextFns  []func()
	cellCtxs []*rxCellCtx

	// Registry instruments (always non-nil; the registry hands out nil-safe
	// no-op instruments only when it is itself nil, which New prevents).
	reg          *metrics.Registry
	mCells       *metrics.Counter
	mFifoDrops   *metrics.Counter
	mUnknownVC   *metrics.Counter
	mOAMCells    *metrics.Counter
	mAALErrors   *metrics.Counter
	mSRAMDrops   *metrics.Counter
	mBadOAM      *metrics.Counter
	mStale       *metrics.Counter
	mPackets     *metrics.Counter
	mBytes       *metrics.Counter
	hCellDelay   *metrics.Histogram // FIFO arrival → per-cell firmware done
	hReassembly  *metrics.Histogram // first cell buffered → frame complete
	hIntrService *metrics.Histogram // interrupt posted → host handler done

	// Flight-recorder spans (nil unless a recorder is attached): RX FIFO
	// residency, reassembly (first cell → frame complete), host delivery.
	spFifo    *trace.StageSpan
	spReasm   *trace.StageSpan
	spDeliver *trace.StageSpan
}

func newReceiver(k *sim.Kernel, cfg *Config, engs []*engine.Engine, dev *bus.Device,
	hst *host.Host, pool *atm.Pool, reg *metrics.Registry, prefix string) *receiver {
	n := len(engs)
	r := &receiver{
		k: k, cfg: cfg, engs: engs, dev: dev, hst: hst, pool: pool,
		fifos:      make([]*fifo.Ring[*atm.Cell], n),
		arrivals:   make([]*fifo.Ring[sim.Time], n),
		processing: make([]bool, n),
		lookup:     cfg.Lookup.build(cfg.MaxVCs),
		alloc:      bufmgr.NewAllocator(cfg.BufOrg, cfg.AdapterSRAM),
		vcs:        make(map[int]*rxVC),
		steer:      make(map[atm.VC]int),
	}
	for i := range r.fifos {
		r.fifos[i] = fifo.NewRing[*atm.Cell](cfg.RxFifoDepth)
		r.fifos[i].Instrument(reg, scoped(prefix, fmt.Sprintf("fifo.rx%d", i)))
		r.arrivals[i] = fifo.NewRing[sim.Time](cfg.RxFifoDepth)
	}
	if cfg.ReassemblyTimeout > 0 {
		r.clockFn = func() int64 { return int64(k.Now()) }
		r.gcFn = r.gcTick
	}
	r.nextFns = make([]func(), n)
	r.cellCtxs = make([]*rxCellCtx, n)
	for e := 0; e < n; e++ {
		e := e
		r.nextFns[e] = func() { r.next(e) }
		ctx := &rxCellCtx{r: r, e: e}
		ctx.fn = ctx.done
		r.cellCtxs[e] = ctx
	}
	r.reg = reg
	r.mCells = reg.Counter(scoped(prefix, "nic.rx.cells"))
	r.mFifoDrops = reg.Counter(scoped(prefix, "nic.rx.fifo_drops"))
	r.mUnknownVC = reg.Counter(scoped(prefix, "nic.rx.unknown_vc"))
	r.mOAMCells = reg.Counter(scoped(prefix, "nic.rx.oam_cells"))
	r.mAALErrors = reg.Counter(scoped(prefix, "nic.rx.aal_errors"))
	r.mSRAMDrops = reg.Counter(scoped(prefix, "nic.rx.sram_drops"))
	r.mBadOAM = reg.Counter(scoped(prefix, "nic.rx.bad_oam"))
	r.mStale = reg.Counter(scoped(prefix, "nic.rx.stale_frames"))
	r.mPackets = reg.Counter(scoped(prefix, "nic.rx.packets"))
	r.mBytes = reg.Counter(scoped(prefix, "nic.rx.bytes"))
	r.hCellDelay = reg.Histogram(scoped(prefix, "nic.rx.cell_delay"))
	r.hReassembly = reg.Histogram(scoped(prefix, "nic.rx.reassembly_time"))
	r.hIntrService = reg.Histogram(scoped(prefix, "nic.rx.intr_service"))
	return r
}

// snapshot assembles the legacy RxStats view from the registry instruments.
// MaxFifo is filled in by Interface.Stats from the FIFO high-water marks.
func (r *receiver) snapshot() RxStats {
	return RxStats{
		Cells:     r.mCells.Value(),
		FifoDrops: r.mFifoDrops.Value(),
		UnknownVC: r.mUnknownVC.Value(),
		OAMCells:  r.mOAMCells.Value(),
		AALErrors: r.mAALErrors.Value(),
		SRAMDrops: r.mSRAMDrops.Value(),
		BadOAM:    r.mBadOAM.Value(),
		Stale:     r.mStale.Value(),
		Packets:   r.mPackets.Value(),
		Bytes:     r.mBytes.Value(),
	}
}

// engineFor steers a VC to its engine. Steering rides in the VC table the
// hardware demux consults at wire rate: connections are assigned round-robin
// when opened, which balances by construction (the same table-driven scheme
// the multi-processor proposals used). Cells of unopened VCs go to engine 0,
// which will count and drop them.
func (r *receiver) engineFor(vc atm.VC) int {
	if len(r.engs) == 1 {
		return 0
	}
	if e, ok := r.steer[vc]; ok {
		return e
	}
	return 0
}

// setPool enables pooled SDU delivery: reassemblers draw their output
// buffers from p and the receiver recycles each one after the OnReceive
// callback returns (see Interface.EnableRxPooling for the contract).
func (r *receiver) setPool(p *bufpool.Pool) {
	r.bufp = p
	for _, st := range r.vcs {
		st.setPool(p)
	}
}

// setPool attaches the buffer pool to whichever reassembler the VC runs.
func (st *rxVC) setPool(p *bufpool.Pool) {
	if st.midras != nil {
		st.midras.SetPool(p)
	} else if ip, ok := st.ras.(interface{ SetPool(*bufpool.Pool) }); ok {
		ip.SetPool(p)
	}
}

// reaper returns the VC's staleness interface (nil if its reassembler has
// no staleness support).
func (st *rxVC) reaper() aal.StaleReaper {
	if st.midras != nil {
		return st.midras
	}
	if sr, ok := st.ras.(aal.StaleReaper); ok {
		return sr
	}
	return nil
}

// open registers a VC for receive.
func (r *receiver) open(vc atm.VC) error {
	idx, err := r.lookup.Insert(vc)
	if err != nil {
		return err
	}
	st := &rxVC{vc: vc, vst: r.reg.VC(vc.VPI, vc.VCI)}
	if r.cfg.MIDMux {
		st.midras = aal.NewMIDReassembler34(r.cfg.MaxSDU+64, 0)
		st.midras.SetVCStats(st.vst)
	} else {
		_, st.ras = aal.New(r.cfg.AAL, r.cfg.MaxSDU+64)
		if ir, ok := st.ras.(interface{ SetVCStats(*metrics.VCStats) }); ok {
			ir.SetVCStats(st.vst)
		}
	}
	if r.clockFn != nil {
		if sr := st.reaper(); sr != nil {
			sr.SetClock(r.clockFn)
		}
	}
	if r.bufp != nil {
		st.setPool(r.bufp)
	}
	r.vcs[idx] = st
	r.steer[vc] = r.nextSteer % len(r.engs)
	r.nextSteer++
	return nil
}

// close tears down a VC, discarding any partial frame.
func (r *receiver) close(vc atm.VC) {
	idx, _, ok := r.lookup.Lookup(vc)
	if !ok {
		return
	}
	if st := r.vcs[idx]; st != nil {
		if st.midras != nil {
			st.midras.Abort()
		} else {
			st.ras.Abort()
		}
		if st.frame != nil {
			st.frame.Release()
			st.frame = nil
		}
	}
	delete(r.vcs, idx)
	delete(r.steer, vc)
	r.lookup.Remove(vc)
}

// deliverCell is the link-side entry point: a cell has arrived from the
// framer. The VC demux runs at wire speed in hardware; the per-engine FIFO
// it lands in is where overflow happens.
func (r *receiver) deliverCell(c *atm.Cell) {
	e := r.engineFor(c.Header.VC())
	if !r.fifos[e].Push(c) {
		// Hardware overflow: the cell is gone. The AAL discovers the
		// damage later; that is the whole E9 story.
		r.mFifoDrops.Inc()
		r.reg.VC(c.Header.VPI, c.Header.VCI).Drop(metrics.DropFIFO)
		r.spFifo.Drop(c.Header.VC(), metrics.DropFIFO)
		r.pool.Put(c)
		return
	}
	r.arrivals[e].Push(r.k.Now())
	r.spFifo.Enter(c.Header.VC())
	r.process(e)
}

// process drains engine e's RX FIFO, one firmware activation per cell.
func (r *receiver) process(e int) {
	if r.processing[e] {
		return
	}
	cell, ok := r.fifos[e].Pop()
	if !ok {
		return
	}
	arrived, haveArrival := r.arrivals[e].Pop()
	r.processing[e] = true
	r.spFifo.Exit(cell.Header.VC())
	r.mCells.Inc()

	// Idle cells are discarded outright; OAM cells leave the fast path
	// for the firmware's management handler.
	if cell.Header.IsIdle() {
		r.pool.Put(cell)
		r.engs[e].Run("rx_idle", rxCellInstr, r.nextFns[e])
		return
	}
	if !cell.Header.PT.User() {
		r.mOAMCells.Inc()
		r.engs[e].Run("rx_oam", rxCellInstr+rxOAMInstr, func() {
			if r.onOAM != nil {
				r.onOAM(e, cell)
			} else {
				r.pool.Put(cell)
			}
			r.next(e)
		})
		return
	}

	idx, lookCycles, found := r.lookup.Lookup(cell.Header.VC())
	if !found {
		r.mUnknownVC.Inc()
		r.reg.VC(cell.Header.VPI, cell.Header.VCI).Drop(metrics.DropUnknownVC)
		r.pool.Put(cell)
		r.engs[e].Run("rx_unknown", rxCellInstr+lookCycles+rxUnknownVCInstr, r.nextFns[e])
		return
	}
	st := r.vcs[idx]
	st.vst.AddCellIn()
	// The ABR destination turnaround reads this: CI in a turned RM cell
	// reflects whether the network marked the latest data cell EFCI.
	st.efci = cell.Header.PT.Congestion()

	instr := rxCellInstr + lookCycles
	if r.cfg.AAL == aal.AAL34 {
		instr += rxCellAAL34Extra
	}

	// Buffer the cell payload in adapter SRAM under the configured
	// organization. (Data effects happen eagerly; their visible timing is
	// gated by the engine-run completions below — the engine is the sole
	// consumer, so this is observationally equivalent and much simpler.)
	if st.frame == nil {
		f, err := r.alloc.NewFrame(r.cfg.maxFrameCells())
		if err != nil {
			r.dropForMemory(e, st, cell)
			return
		}
		st.frame = f
		st.frameStart = r.k.Now()
		r.spReasm.Enter(st.vc)
		r.armGC()
	}
	appendCycles, err := st.frame.Append(cell.Payload[:])
	if err != nil {
		r.dropForMemory(e, st, cell)
		return
	}
	instr += appendCycles

	ctx := r.cellCtxs[e]
	ctx.st = st
	ctx.arrived, ctx.haveArrival = arrived, haveArrival
	if st.midras != nil {
		ctx.mid, ctx.res, ctx.aalErr = st.midras.Push(&cell.Payload, cell.Header.PT)
	} else {
		ctx.mid = 0
		ctx.res, ctx.aalErr = st.ras.Push(&cell.Payload, cell.Header.PT)
	}
	r.pool.Put(cell)

	r.engs[e].Run("rx_cell", instr, ctx.fn)
}

// rxCellCtx carries one in-flight rx_cell routine's results to its
// completion. One per engine, reused for every cell.
type rxCellCtx struct {
	r           *receiver
	e           int
	fn          func() // bound done method, created once
	st          *rxVC
	res         *aal.Result
	aalErr      error
	mid         uint16
	arrived     sim.Time
	haveArrival bool
}

// done is the rx_cell routine completion.
func (c *rxCellCtx) done() {
	r, e, st, res, aalErr, mid := c.r, c.e, c.st, c.res, c.aalErr, c.mid
	arrived, haveArrival := c.arrived, c.haveArrival
	c.st, c.res, c.aalErr = nil, nil, nil
	if haveArrival {
		r.hCellDelay.Observe(r.k.Now() - arrived)
	}
	switch {
	case res != nil:
		// A frame completed (possibly also reporting a prior
		// frame's loss, which the AAL already discarded).
		if aalErr != nil {
			r.mAALErrors.Inc()
			st.vst.Drop(metrics.DropAAL)
		}
		r.completeFrame(e, st, res, mid)
	case aalErr != nil:
		r.mAALErrors.Inc()
		st.vst.Drop(metrics.DropAAL)
		r.engs[e].Run("rx_err", rxErrInstr, func() {
			r.releaseFrame(st)
			r.next(e)
		})
	default:
		r.next(e)
	}
}

// dropForMemory abandons the current frame when adapter SRAM is exhausted.
func (r *receiver) dropForMemory(e int, st *rxVC, cell *atm.Cell) {
	r.mSRAMDrops.Inc()
	st.vst.Drop(metrics.DropSRAM)
	if st.midras != nil {
		st.midras.Abort()
	} else {
		st.ras.Abort()
	}
	r.pool.Put(cell)
	r.engs[e].Run("rx_err", rxErrInstr, func() {
		r.releaseFrame(st)
		r.next(e)
	})
}

func (r *receiver) releaseFrame(st *rxVC) {
	if st.frame != nil {
		// Close the reassembly span even on the unhappy path: a later
		// frame's Exit must not pair with this abandoned frame's Enter.
		r.spReasm.Exit(st.vc)
		st.frame.Release()
		st.frame = nil
	}
}

// completeFrame runs the end-of-packet firmware, DMAs the assembled SDU to
// host memory, and posts the per-packet interrupt.
func (r *receiver) completeFrame(e int, st *rxVC, res *aal.Result, mid uint16) {
	vc := st.vc
	vst := st.vst
	r.hReassembly.Observe(r.k.Now() - st.frameStart)
	r.spReasm.Exit(vc)
	r.engs[e].Run("rx_eop", rxEOPInstr, func() {
		sdu := res.SDU
		frame := st.frame
		st.frame = nil
		r.dev.DMA(len(sdu), func() {
			// Buffer freed once the data has left the adapter.
			if frame != nil {
				frame.Release()
			}
			posted := r.k.Now()
			r.hst.RxPacketInterrupt(len(sdu), func() {
				r.hIntrService.Observe(r.k.Now() - posted)
				r.mPackets.Inc()
				r.mBytes.Add(uint64(len(sdu)))
				vst.AddSDUIn(len(sdu))
				r.spDeliver.Point(vc)
				if r.onDeliver != nil {
					r.onDeliver(Delivered{VC: vc, SDU: sdu, Cells: res.Cells, MID: mid, At: r.k.Now()})
				}
				// Pooled delivery: the host callback has returned, so
				// the SDU buffer recycles (no-op when pooling is off).
				r.bufp.Put(sdu)
			})
		})
		// The engine moves on while the DMA and interrupt complete in
		// the background — the pipelining that makes per-packet host
		// involvement cheap.
		r.next(e)
	})
}

// badOAM drops a management cell that is damaged or of no handled
// type/function — counted, never silent.
func (r *receiver) badOAM(c *atm.Cell) {
	r.mBadOAM.Inc()
	r.reg.VC(c.Header.VPI, c.Header.VCI).Drop(metrics.DropBadOAM)
	r.pool.Put(c)
}

// armGC schedules the next garbage-collection sweep if one isn't pending.
// Called whenever a frame starts; the sweep re-arms itself while any frame
// remains in progress.
func (r *receiver) armGC() {
	if r.gcFn == nil || r.gcArmed {
		return
	}
	r.gcArmed = true
	r.k.PostAfter(r.cfg.ReassemblyTimeout, r.gcFn)
}

// gcTick sweeps every VC's reassembler for partial frames that have seen no
// cell for ReassemblyTimeout, aborting them and releasing their adapter
// buffers. VCs are visited in lookup-index order so the free-list order —
// and with it every downstream allocation — stays deterministic.
func (r *receiver) gcTick() {
	r.gcArmed = false
	cutoff := int64(r.k.Now()) - int64(r.cfg.ReassemblyTimeout)
	idxs := make([]int, 0, len(r.vcs))
	for idx := range r.vcs {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	busy := false
	for _, idx := range idxs {
		st := r.vcs[idx]
		sr := st.reaper()
		if sr == nil {
			continue
		}
		if n := sr.ExpireStale(cutoff); n > 0 {
			r.mStale.Add(uint64(n))
			// The frame buffer is released only when the reap emptied the
			// VC: a buffer backing a frame still completing (rx_eop in
			// flight) must not be pulled out from under the DMA.
			if !sr.Busy() && st.frame != nil {
				r.spReasm.Exit(st.vc)
				st.frame.Release()
				st.frame = nil
			}
		}
		if sr.Busy() {
			busy = true
		}
	}
	if busy {
		r.gcArmed = true
		r.k.PostAfter(r.cfg.ReassemblyTimeout, r.gcFn)
	}
}

// next releases engine e for its following cell.
func (r *receiver) next(e int) {
	r.processing[e] = false
	r.process(e)
}

// Errors surfaced by the interface API.
var errVCExists = errors.New("nic: VC already open")
