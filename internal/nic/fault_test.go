package nic

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/oam"
	"repro/internal/sim"
)

// faultCfg shortens the alarm timers so tests run in microseconds of
// simulated time rather than the production milliseconds.
func faultCfg(cfg *Config) {
	cfg.AlarmPeriod = 100 * sim.Microsecond
	cfg.AlarmClearTimeout = 300 * sim.Microsecond
}

func TestAISDeclaresOnceAndClears(t *testing.T) {
	r := newRig(t, faultCfg)
	if err := r.b.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	var events []AlarmEvent
	r.b.OnAlarm(func(ev AlarmEvent) { events = append(events, ev) })
	rdiOut := 0
	r.b.SetOutput(func(c *atm.Cell) {
		if _, fn, ok := oam.Classify(&c.Payload); ok && fn == oam.FuncRDI {
			rdiOut++
		}
		r.b.Pool().Put(c)
	})

	// A burst of AIS indications: one declare, refreshed soak, one clear.
	for i := 0; i < 3; i++ {
		at := sim.Time(i) * 50_000
		r.k.At(at, func() {
			r.b.DeliverCell(oam.NewAIS(vc1(), oam.LocationID("sw")))
		})
	}
	r.k.Run()

	if len(events) != 2 {
		t.Fatalf("alarm events %v, want exactly declare+clear", events)
	}
	if events[0].Kind != AlarmAIS || !events[0].Raised || events[0].VC != vc1() {
		t.Fatalf("first event %v, want AIS raised", events[0])
	}
	if events[1].Kind != AlarmAIS || events[1].Raised {
		t.Fatalf("second event %v, want AIS cleared", events[1])
	}
	// The clear soaks from the LAST indication (t=100µs), not the first.
	if events[1].At < 100_000+300_000 {
		t.Fatalf("cleared at %v, before the refreshed soak expired", events[1].At)
	}
	fs := r.b.FMStats()
	if fs.AISRx != 3 || fs.Events != 2 {
		t.Fatalf("FMStats %+v, want 3 AIS rx / 2 events", fs)
	}
	// While the defect stood (~400µs at a 100µs period) RDI flowed upstream.
	if rdiOut == 0 || fs.RDITx != uint64(rdiOut) {
		t.Fatalf("RDI upstream: wire saw %d, stats say %d, want >0 and equal", rdiOut, fs.RDITx)
	}
}

func TestRDIReceivedIsTerminal(t *testing.T) {
	r := newRig(t, faultCfg)
	if err := r.b.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	var events []AlarmEvent
	r.b.OnAlarm(func(ev AlarmEvent) { events = append(events, ev) })
	r.b.DeliverCell(oam.NewRDI(vc1(), oam.LocationID("far")))
	r.k.Run()

	if len(events) != 2 || events[0].Kind != AlarmRDI || !events[0].Raised || events[1].Raised {
		t.Fatalf("alarm events %v, want RDI declare+clear", events)
	}
	fs := r.b.FMStats()
	if fs.RDIRx != 1 {
		t.Fatalf("RDIRx = %d, want 1", fs.RDIRx)
	}
	// RDI is the terminal indication: receiving it must not generate more.
	if fs.RDITx != 0 {
		t.Fatalf("RDITx = %d, want 0 (no RDI in response to RDI)", fs.RDITx)
	}
}

func TestDamagedOAMCountedNotCrashed(t *testing.T) {
	r := newRig(t, faultCfg)
	if err := r.b.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	var events []AlarmEvent
	r.b.OnAlarm(func(ev AlarmEvent) { events = append(events, ev) })

	c := oam.NewAIS(vc1(), oam.LocationID("x"))
	c.Payload[5] ^= 0xff // break the CRC-10
	r.b.DeliverCell(c)
	r.k.Run()

	if got := r.b.Stats().Rx.BadOAM; got != 1 {
		t.Fatalf("BadOAM = %d, want 1", got)
	}
	if len(events) != 0 {
		t.Fatalf("damaged OAM raised alarms: %v", events)
	}
	if fs := r.b.FMStats(); fs.AISRx != 0 {
		t.Fatalf("damaged AIS counted as received: %+v", fs)
	}
}

func TestLOSRaisesLinkAlarmAndRDI(t *testing.T) {
	r := newRig(t, faultCfg)
	if err := r.b.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	var events []AlarmEvent
	r.b.OnAlarm(func(ev AlarmEvent) { events = append(events, ev) })
	rdiOut := 0
	r.b.SetOutput(func(c *atm.Cell) {
		if _, fn, ok := oam.Classify(&c.Payload); ok && fn == oam.FuncRDI {
			rdiOut++
		}
		r.b.Pool().Put(c)
	})

	r.b.SignalChange(false)
	r.k.RunUntil(250_000)
	r.b.SignalChange(true)
	r.k.Run()

	if len(events) != 2 {
		t.Fatalf("alarm events %v, want LOS declare+clear", events)
	}
	if events[0].Kind != AlarmLOS || !events[0].Raised || events[0].VC != (atm.VC{}) {
		t.Fatalf("first event %v, want link-scope LOS raised", events[0])
	}
	if events[1].Kind != AlarmLOS || events[1].Raised {
		t.Fatalf("second event %v, want LOS cleared", events[1])
	}
	// 250 µs dark at a 100 µs period: RDI flowed on the open VC.
	if rdiOut < 2 {
		t.Fatalf("only %d RDI cells during a 250µs outage", rdiOut)
	}
}

// TestReassemblyGCReclaimsAfterLinkCut is the leak regression: a fiber cut
// mid-frame strands a partial reassembly whose EOM will never arrive; the
// staleness GC must hand its adapter buffer back.
func TestReassemblyGCReclaimsAfterLinkCut(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		faultCfg(cfg)
		cfg.ReassemblyTimeout = 200 * sim.Microsecond
	})
	if err := r.a.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	if err := r.b.OpenVC(vc1()); err != nil {
		t.Fatal(err)
	}
	if err := r.a.Send(vc1(), pkt(9180), nil); err != nil {
		t.Fatal(err)
	}
	// Cut mid-frame: host DMA and segmentation put the first cell on the
	// wire around t=250µs and the 192-cell frame takes ~540µs to clock
	// out, so t=400µs severs it partway through. Repair only after the
	// transmitter has burned the rest of the frame into the dead fiber
	// and the GC deadline has long passed.
	r.k.At(400_000, r.link.Fail)
	r.k.RunUntil(1_500_000)
	r.link.Restore()
	r.k.Run()

	if len(r.received) != 0 {
		t.Fatalf("severed frame delivered (%d packets)", len(r.received))
	}
	st := r.b.Stats()
	if st.Rx.Stale == 0 {
		t.Fatal("stale partial frame never reclaimed")
	}
	if used := r.b.SRAMUsed(); used != 0 {
		t.Fatalf("adapter SRAM still pinned: %d bytes", used)
	}
	if r.link.Stats().DroppedDown == 0 {
		t.Fatal("no cells counted against the dead fiber")
	}

	// The repaired link carries the next frame normally.
	if err := r.a.Send(vc1(), pkt(1000), nil); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if len(r.received) != 1 || len(r.received[0].SDU) != 1000 {
		t.Fatalf("post-repair delivery failed (%d packets)", len(r.received))
	}
	if used := r.b.SRAMUsed(); used != 0 {
		t.Fatalf("SRAM pinned after clean delivery: %d bytes", used)
	}
}

// TestMgmtTxFullCounted: a management cell bounced by a full TX FIFO lands
// in the drop taxonomy instead of vanishing.
func TestMgmtTxFullCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	r := newRig(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.TxFifoDepth = 4
	})
	dropped := 0
	for i := 0; i < 6; i++ { // no kernel running: nothing drains
		c := oam.NewRDI(vc1(), oam.LocationID("b"))
		if !r.b.tx.injectCell(c) {
			dropped++
			r.b.Pool().Put(c)
		}
	}
	if dropped != 2 {
		t.Fatalf("dropped %d of 6 injected into a depth-4 FIFO, want 2", dropped)
	}
	row := reg.VC(vc1().VPI, vc1().VCI)
	if got := row.Drops[metrics.DropMgmtTxFull]; got != 2 {
		t.Fatalf("DropMgmtTxFull = %d, want 2", got)
	}
	r.k.Run() // drain the FIFO to the discard output
}
