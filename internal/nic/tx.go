package nic

import (
	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/fifo"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/trace"
)

// TxStats is the transmit-side snapshot assembled from the telemetry
// registry (see Interface.Stats).
type TxStats struct {
	Packets    uint64 // packets fully segmented
	Cells      uint64 // data cells emitted to the FIFO
	Bytes      uint64 // SDU bytes accepted
	IdleSlots  uint64 // cell-clock slots with an empty TX FIFO
	FifoStalls uint64 // times the engine stalled on a full TX FIFO
	DMAWaits   uint64 // times production waited for staging DMA
	PaceWaits  uint64 // times production waited on per-VC pacing
	QueuedMax  int    // per-VC descriptor queue high-water mark
}

// txDescriptor is what the host's driver writes across the bus. pooled
// marks an SDU copy drawn from the interface buffer pool (Interface.Send);
// the transmitter recycles it once segmentation has consumed the frame.
// SendOwned descriptors leave pooled false: the caller keeps ownership.
type txDescriptor struct {
	sdu    []byte
	onSent func()
	pooled bool
}

// txVC is the per-connection transmit state: queued descriptors, the
// in-progress frame's segmentation state, staging progress, and the leaky-
// bucket pacing state. The board kept exactly this per-VC record in its
// transmit tables.
type txVC struct {
	vc      atm.VC
	t       *transmitter
	pending []txDescriptor
	seg     aal.Segmenter
	vst     *metrics.VCStats

	active    bool
	sdu       []byte
	onSent    func()
	pooled    bool
	cellsLeft int
	cellIdx   int
	staged    int
	stagedOff int
	awaitDMA  bool

	// minGap is the pacing interval between consecutive cells of this VC
	// (0 = line rate); nextEligible is when the next cell may be emitted.
	// When the VC carries a full traffic contract, shaper supersedes
	// minGap: departure times follow the contract's GCRA state instead of
	// a fixed gap (PCR bursts, then SCR).
	minGap       sim.Duration
	nextEligible sim.Time
	shaper       *tm.Shaper

	// abr, when armed (Interface.SetABR), makes the shaper rate track the
	// closed-loop ACR and interleaves forward RM cells every Nrm cells.
	abr *abrTx

	// Staging-DMA completion state: one burst is in flight per frame, so a
	// single pre-bound callback per VC replaces a closure per burst.
	stageDoneFn func()
	stageT0     sim.Time
	stageChunk  int
}

// stageDone is the staging-DMA completion: account the burst, chain the
// next one, and resume the engine if it was waiting on these bytes.
func (st *txVC) stageDone() {
	t := st.t
	t.hDMAWait.Observe(t.k.Now() - st.stageT0)
	st.staged += st.stageChunk
	t.stageNextChunk(st)
	if st.awaitDMA {
		st.awaitDMA = false
		t.schedule()
	}
}

// transmitter is the send half: per-VC descriptor queues, a single
// segmentation engine shared round-robin across active frames (when
// interleaving is enabled), staging DMA, per-VC pacing, and the TX cell
// FIFO drained by the cell clock.
type transmitter struct {
	k    *sim.Kernel
	cfg  *Config
	eng  *engine.Engine
	dev  *bus.Device
	pool *atm.Pool
	bufp *bufpool.Pool // recycle target for pooled descriptor SDUs
	out  atm.CellConsumer

	fifo  *fifo.Ring[*atm.Cell]
	vcs   map[atm.VC]*txVC
	order []*txVC // round-robin order (registration order)
	rr    int     // next round-robin index

	busy        bool // an engine routine is in flight
	stalled     bool // production blocked on FIFO space
	wakePending bool // a pacing wakeup is scheduled

	// Engine-routine completion state. The engine runs one transmit
	// routine at a time (busy serializes), so the in-flight routine's VC
	// parks here and pre-bound completion methods replace the per-cell
	// closures the hot path used to allocate.
	curSt       *txVC
	curDesc     txDescriptor
	curLast     bool
	startDoneFn func()
	cellDoneFn  func()
	doneDoneFn  func()
	tickFn      func()
	wakeFn      func()

	cellTime     sim.Duration
	clockRunning bool

	// Telemetry: instruments live in the interface's registry; pushTimes
	// shadows the cell FIFO so each cell's residency (push → cell clock)
	// feeds the tx cell-delay histogram without touching the cell itself.
	reg        *metrics.Registry
	pushTimes  *fifo.Ring[sim.Time]
	mPackets   *metrics.Counter
	mCells     *metrics.Counter
	mBytes     *metrics.Counter
	mIdleSlots *metrics.Counter
	mStalls    *metrics.Counter
	mDMAWaits  *metrics.Counter
	mPaceWaits *metrics.Counter
	mFRM       *metrics.Counter
	gQueued    *metrics.Gauge
	hCellDelay *metrics.Histogram
	hDMAWait   *metrics.Histogram

	// Flight-recorder span for TX FIFO residency (nil unless a recorder is
	// attached; nil-safe like the registry instruments above).
	spFifo *trace.StageSpan
}

func newTransmitter(k *sim.Kernel, cfg *Config, eng *engine.Engine, dev *bus.Device,
	pool *atm.Pool, bufp *bufpool.Pool, cellTime sim.Duration, reg *metrics.Registry,
	prefix string, out atm.CellConsumer) *transmitter {
	t := &transmitter{
		k: k, cfg: cfg, eng: eng, dev: dev, pool: pool, bufp: bufp, out: out,
		fifo:      fifo.NewRing[*atm.Cell](cfg.TxFifoDepth),
		vcs:       make(map[atm.VC]*txVC),
		cellTime:  cellTime,
		reg:       reg,
		pushTimes: fifo.NewRing[sim.Time](cfg.TxFifoDepth),
	}
	t.startDoneFn = t.startDone
	t.cellDoneFn = t.cellDone
	t.doneDoneFn = t.doneDone
	t.tickFn = t.tick
	t.wakeFn = t.wake
	t.fifo.Instrument(reg, scoped(prefix, "fifo.tx"))
	t.mPackets = reg.Counter(scoped(prefix, "nic.tx.packets"))
	t.mCells = reg.Counter(scoped(prefix, "nic.tx.cells"))
	t.mBytes = reg.Counter(scoped(prefix, "nic.tx.bytes"))
	t.mIdleSlots = reg.Counter(scoped(prefix, "nic.tx.idle_slots"))
	t.mStalls = reg.Counter(scoped(prefix, "nic.tx.fifo_stalls"))
	t.mDMAWaits = reg.Counter(scoped(prefix, "nic.tx.dma_waits"))
	t.mPaceWaits = reg.Counter(scoped(prefix, "nic.tx.pace_waits"))
	t.mFRM = reg.Counter(scoped(prefix, "nic.abr.frm_tx"))
	t.gQueued = reg.Gauge(scoped(prefix, "nic.tx.queued"))
	t.hCellDelay = reg.Histogram(scoped(prefix, "nic.tx.cell_delay"))
	t.hDMAWait = reg.Histogram(scoped(prefix, "nic.tx.dma_wait"))
	return t
}

// snapshot assembles the legacy TxStats view from the registry instruments.
func (t *transmitter) snapshot() TxStats {
	return TxStats{
		Packets:    t.mPackets.Value(),
		Cells:      t.mCells.Value(),
		Bytes:      t.mBytes.Value(),
		IdleSlots:  t.mIdleSlots.Value(),
		FifoStalls: t.mStalls.Value(),
		DMAWaits:   t.mDMAWaits.Value(),
		PaceWaits:  t.mPaceWaits.Value(),
		QueuedMax:  int(t.gQueued.Max()),
	}
}

// open registers a VC for transmit.
func (t *transmitter) open(vc atm.VC) {
	if _, ok := t.vcs[vc]; ok {
		return
	}
	seg, _ := aal.New(t.cfg.AAL, 0)
	st := &txVC{vc: vc, t: t, seg: seg, vst: t.reg.VC(vc.VPI, vc.VCI)}
	st.stageDoneFn = st.stageDone
	t.vcs[vc] = st
	t.order = append(t.order, st)
}

// close deregisters a VC. Queued descriptors are dropped; a frame already
// being segmented runs to completion (cells of a partial AAL frame on the
// wire would only poison the receiver).
func (t *transmitter) close(vc atm.VC) {
	st, ok := t.vcs[vc]
	if !ok {
		return
	}
	st.pending = nil
	delete(t.vcs, vc)
	for i, o := range t.order {
		if o == st {
			if st.active {
				// Keep it in the round-robin until its frame drains.
				break
			}
			t.order = append(t.order[:i], t.order[i+1:]...)
			if t.rr > i {
				t.rr--
			}
			break
		}
	}
}

// setMID stamps the AAL3/4 multiplexing identifier on a VC's segmenter.
func (t *transmitter) setMID(vc atm.VC, mid uint16) bool {
	st, ok := t.vcs[vc]
	if !ok {
		return false
	}
	if seg, ok := st.seg.(*aal.Segmenter34); ok {
		seg.MID = mid
		return true
	}
	return false
}

// setPeakCellRate installs leaky-bucket pacing: at most one cell of this VC
// per gap. gap 0 restores line rate.
func (t *transmitter) setPeakCellRate(vc atm.VC, gap sim.Duration) bool {
	st, ok := t.vcs[vc]
	if !ok {
		return false
	}
	st.minGap = gap
	return true
}

// setContract installs GCRA shaping to a traffic contract (replacing any
// plain pacing gap); a nil shaper removes it.
func (t *transmitter) setContract(vc atm.VC, sh *tm.Shaper) bool {
	st, ok := t.vcs[vc]
	if !ok {
		return false
	}
	st.shaper = sh
	if sh != nil {
		st.minGap = 0
	}
	return true
}

// enqueue accepts a descriptor (already paid for by the host).
func (t *transmitter) enqueue(vc atm.VC, d txDescriptor) bool {
	st, ok := t.vcs[vc]
	if !ok {
		return false
	}
	st.pending = append(st.pending, d)
	t.gQueued.Set(int64(len(st.pending)))
	t.schedule()
	return true
}

// anyActive reports whether any VC has a frame in progress.
func (t *transmitter) anyActive() bool {
	for _, st := range t.order {
		if st.active {
			return true
		}
	}
	return false
}

// schedule is the transmit engine's dispatcher: one engine routine at a
// time, choosing between starting a new frame and producing the next cell
// of an active one, round-robin across VCs.
func (t *transmitter) schedule() {
	if t.busy || t.stalled {
		return
	}
	// Starting pending frames comes first: each start is a one-time
	// per-frame event, and in interleaved mode a newly arrived frame must
	// join the round-robin immediately or a busy bulk VC would lock it
	// out indefinitely. (In serial mode a start is only allowed when no
	// frame is active, so cell production still runs uninterrupted.)
	if t.scheduleStart() {
		return
	}
	t.scheduleCell()
}

// scheduleStart begins the next pending frame if policy allows; it reports
// whether a routine was dispatched.
func (t *transmitter) scheduleStart() bool {
	if !t.cfg.InterleaveVCs && t.anyActive() {
		return false
	}
	n := len(t.order)
	for i := 0; i < n; i++ {
		st := t.order[(t.rr+i)%n]
		if st.active || len(st.pending) == 0 {
			continue
		}
		t.runStart(st)
		return true
	}
	return false
}

// scheduleCell runs the per-cell firmware for the next eligible active VC.
func (t *transmitter) scheduleCell() {
	n := len(t.order)
	if n == 0 {
		return
	}
	earliest := sim.Never
	now := t.k.Now()
	for i := 0; i < n; i++ {
		idx := (t.rr + i) % n
		st := t.order[idx]
		if !st.active || st.awaitDMA {
			continue
		}
		if st.nextEligible > now {
			if st.nextEligible < earliest {
				earliest = st.nextEligible
			}
			continue
		}
		if t.fifo.Full() {
			t.stalled = true
			t.mStalls.Inc()
			return // the cell clock will resume us
		}
		if !t.stagedEnough(st) {
			st.awaitDMA = true
			t.mDMAWaits.Inc()
			continue
		}
		t.rr = (idx + 1) % n
		t.runCell(st)
		return
	}
	if earliest != sim.Never && !t.wakePending {
		// Everything runnable is pacing-blocked: wake at the earliest
		// eligibility.
		t.wakePending = true
		t.mPaceWaits.Inc()
		t.k.Post(earliest, t.wakeFn)
	}
}

// wake resumes the dispatcher after a pacing wait.
func (t *transmitter) wake() {
	t.wakePending = false
	t.schedule()
}

// stagedEnough reports whether the bytes the next cell needs are on board.
func (t *transmitter) stagedEnough(st *txVC) bool {
	need := (st.cellIdx + 1) * t.cfg.perCellPayload()
	if need > len(st.sdu) {
		need = len(st.sdu)
	}
	return st.staged >= need
}

// runStart executes the per-packet setup firmware.
func (t *transmitter) runStart(st *txVC) {
	t.busy = true
	t.curSt = st
	t.curDesc = st.pending[0]
	st.pending = st.pending[:copy(st.pending, st.pending[1:])]
	instr := txStartInstr
	if t.cfg.AAL == aal.AAL34 {
		instr += txStartAAL34Extra
	}
	t.eng.Run("tx_start", instr, t.startDoneFn)
}

// startDone is the tx_start routine completion.
func (t *transmitter) startDone() {
	st, d := t.curSt, t.curDesc
	t.curSt, t.curDesc = nil, txDescriptor{}
	t.busy = false
	cells, err := st.seg.Begin(d.sdu)
	if err != nil {
		panic("nic: segmenter rejected validated SDU: " + err.Error())
	}
	st.active = true
	st.sdu = d.sdu
	st.onSent = d.onSent
	st.pooled = d.pooled
	st.cellsLeft = cells
	st.cellIdx = 0
	st.staged = 0
	st.stagedOff = 0
	t.mBytes.Add(uint64(len(d.sdu)))
	t.stageNextChunk(st)
	t.schedule()
}

// stageNextChunk issues the next staging DMA burst (host memory → adapter
// buffer) for a VC's in-progress frame. Chunks are separate bus
// transactions, so other devices interleave between them.
func (t *transmitter) stageNextChunk(st *txVC) {
	remaining := len(st.sdu) - st.stagedOff
	if remaining <= 0 {
		return
	}
	chunk := remaining
	if mb := t.dev.MaxBurst(); mb > 0 && chunk > mb {
		chunk = mb
	}
	st.stagedOff += chunk
	st.stageT0 = t.k.Now()
	st.stageChunk = chunk
	t.dev.DMA(chunk, st.stageDoneFn)
}

// runCell executes the per-cell segmentation firmware for one cell of st.
func (t *transmitter) runCell(st *txVC) {
	t.busy = true
	t.curSt = st
	instr := txCellInstr
	if st.cellsLeft == 1 {
		instr += txCellLastExtra
	}
	if t.cfg.AAL == aal.AAL34 {
		instr += txCellAAL34Extra
	}
	if st.shaper != nil {
		instr += txCellShapeExtra
	}
	t.eng.Run("tx_cell", instr, t.cellDoneFn)
}

// cellDone is the tx_cell routine completion: emit the produced cell into
// the FIFO and keep the pipeline moving.
func (t *transmitter) cellDone() {
	st := t.curSt
	t.curSt = nil
	t.busy = false
	cell := t.pool.Get()
	pt, done, err := st.seg.Next(&cell.Payload)
	if err != nil {
		panic("nic: segmenter failed mid-frame: " + err.Error())
	}
	cell.Header = atm.Header{
		Format: atm.UNI,
		VPI:    st.vc.VPI,
		VCI:    st.vc.VCI,
		PT:     pt,
	}
	if !t.fifo.Push(cell) {
		panic("nic: TX FIFO overflowed despite stall check")
	}
	t.pushTimes.Push(t.k.Now())
	t.spFifo.Enter(st.vc)
	t.mCells.Inc()
	st.vst.AddCellOut()
	st.cellIdx++
	st.cellsLeft--
	if st.shaper != nil {
		st.nextEligible = st.shaper.NextEligible(t.k.Now())
	} else if st.minGap > 0 {
		st.nextEligible = t.k.Now() + st.minGap
	}
	t.startClock()
	if st.abr != nil {
		t.maybeSendFRM(st)
	}
	if done {
		t.finishFrame(st)
		return
	}
	t.schedule()
}

// finishFrame runs the per-packet completion firmware.
func (t *transmitter) finishFrame(st *txVC) {
	t.busy = true
	t.curSt = st
	t.eng.Run("tx_done", txDoneInstr, t.doneDoneFn)
}

// doneDone is the tx_done routine completion.
func (t *transmitter) doneDone() {
	st := t.curSt
	t.curSt = nil
	t.busy = false
	t.mPackets.Inc()
	st.vst.AddSDUOut(len(st.sdu))
	onSent := st.onSent
	if st.pooled {
		// The segmenter consumed the frame (it drops its reference on the
		// final cell), so the Send-path copy can recycle now.
		t.bufp.Put(st.sdu)
	}
	st.active = false
	st.sdu = nil
	st.onSent = nil
	st.pooled = false
	if _, open := t.vcs[st.vc]; !open {
		// The VC was closed mid-frame; retire it from round-robin.
		for i, o := range t.order {
			if o == st {
				t.order = append(t.order[:i], t.order[i+1:]...)
				if t.rr > i {
					t.rr--
				}
				break
			}
		}
	}
	if onSent != nil {
		onSent()
	}
	t.schedule()
}

// injectCell pushes a fully formed cell (management traffic) straight into
// the TX FIFO, ahead of no one: it takes the next free slot like any other
// cell. Best-effort: a full FIFO drops it (OAM has no delivery guarantee).
func (t *transmitter) injectCell(c *atm.Cell) bool {
	h := &c.Header
	if !t.fifo.Push(c) {
		t.reg.VC(h.VPI, h.VCI).Drop(metrics.DropMgmtTxFull)
		t.spFifo.Drop(h.VC(), metrics.DropMgmtTxFull)
		return false
	}
	t.pushTimes.Push(t.k.Now())
	t.spFifo.Enter(h.VC())
	t.mCells.Inc()
	t.reg.VC(h.VPI, h.VCI).AddCellOut()
	t.startClock()
	return true
}

// pendingWork reports whether anything remains to transmit.
func (t *transmitter) pendingWork() bool {
	for _, st := range t.order {
		if st.active || len(st.pending) > 0 {
			return true
		}
	}
	return false
}

// startClock ensures the cell clock is ticking; it stops itself when idle
// so simulations terminate.
func (t *transmitter) startClock() {
	if t.clockRunning {
		return
	}
	t.clockRunning = true
	t.k.PostAfter(t.cellTime, t.tickFn)
}

// tick is one cell slot on the wire.
func (t *transmitter) tick() {
	cell, ok := t.fifo.Pop()
	if ok {
		if t0, tok := t.pushTimes.Pop(); tok {
			t.hCellDelay.Observe(t.k.Now() - t0)
		}
		t.spFifo.Exit(cell.Header.VC())
		t.out.DeliverCell(cell)
		if t.stalled {
			t.stalled = false
			t.schedule()
		}
	} else {
		t.mIdleSlots.Inc()
		if !t.pendingWork() {
			t.clockRunning = false
			return
		}
	}
	t.k.PostAfter(t.cellTime, t.tickFn)
}
