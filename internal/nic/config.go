package nic

import (
	"fmt"

	"repro/internal/aal"
	"repro/internal/bufmgr"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vclookup"
)

// LookupKind selects the receive path's VC-lookup implementation.
type LookupKind uint8

const (
	// LookupCAM is the hardware content-addressable memory the board used.
	LookupCAM LookupKind = iota
	// LookupHash is firmware open-addressing hash.
	LookupHash
	// LookupLinear is a firmware table scan (the E6 strawman).
	LookupLinear
)

// String implements fmt.Stringer.
func (l LookupKind) String() string {
	switch l {
	case LookupCAM:
		return "cam"
	case LookupHash:
		return "hash"
	case LookupLinear:
		return "linear"
	default:
		return fmt.Sprintf("LookupKind(%d)", uint8(l))
	}
}

func (l LookupKind) build(capacity int) vclookup.Strategy {
	switch l {
	case LookupCAM:
		return vclookup.NewCAM(capacity)
	case LookupHash:
		return vclookup.NewHash(capacity)
	case LookupLinear:
		return vclookup.NewLinear(capacity)
	default:
		panic("nic: unknown lookup kind")
	}
}

// Config parameterizes one interface.
type Config struct {
	// Name prefixes diagnostic names ("a.tx", "a.rx").
	Name string
	// PayloadRate is the ATM payload rate of the attached link
	// (units.STS3cPayload or units.STS12cPayload).
	PayloadRate units.BitRate
	// AAL selects the adaptation layer firmware build.
	AAL aal.Type
	// Engine is the protocol-engine model used for both engines.
	Engine engine.Config
	// TxFifoDepth and RxFifoDepth size the cell FIFOs between the
	// engines and the framer, in cells.
	TxFifoDepth int
	RxFifoDepth int
	// MaxVCs bounds the VC table.
	MaxVCs int
	// Lookup selects the VC-lookup strategy.
	Lookup LookupKind
	// BufOrg selects the reassembly-buffer organization.
	BufOrg bufmgr.Organization
	// AdapterSRAM bounds reassembly memory in bytes (0 = unlimited).
	AdapterSRAM int
	// MaxSDU bounds accepted packet size.
	MaxSDU int
	// RxEngines sets how many parallel receive engines share the load
	// (default 1 — the board as built). Cells are steered by a hardware
	// VC hash, so one VC's cells stay ordered on one engine; scaling is
	// across connections. Each engine gets its own RxFifoDepth FIFO.
	RxEngines int
	// MIDMux (AAL3/4 only) enables multiplexing-identifier demultiplexing
	// on receive: frames from several senders may interleave cell-by-cell
	// on ONE VC, distinguished by their 10-bit MID — the shared-VC
	// (SMDS/CLNAP-style) service AAL3/4 was designed for. Senders pick
	// their MID with Interface.SetMID.
	MIDMux bool
	// ReassemblyTimeout ages out abandoned receive state: a partial frame
	// (or AAL3/4 MID slot) that has seen no cell for this long is aborted
	// and its adapter-SRAM buffer reclaimed, instead of leaking toward
	// buffer exhaustion when a lost end-of-message strands it. Zero
	// (default) disables the garbage collector.
	ReassemblyTimeout sim.Duration
	// AlarmPeriod is the F5 fault-management cadence: while a VC is in an
	// AIS or loss-of-signal defect state, the receive firmware emits one
	// RDI cell upstream per period and the defect's clear timer is
	// refreshed. Zero selects 1 ms — a millisecond-scale stand-in for
	// I.610's nominal 1 s, so simulations measured in milliseconds
	// exercise the machinery.
	AlarmPeriod sim.Duration
	// AlarmClearTimeout clears a declared alarm after this long without a
	// defect indication (I.610's 2.5 s soak interval, scaled; zero
	// selects 2.5 ms).
	AlarmClearTimeout sim.Duration
	// InterleaveVCs lets the transmit engine segment frames from several
	// VCs concurrently, emitting their cells round-robin. Off, the engine
	// finishes each frame before starting the next (the base design);
	// on, one VC's long frame no longer holds up another's — the QoS
	// behaviour per-VC pacing needs. Cells of a single VC's frame are
	// never interleaved with each other (AAL requirement).
	InterleaveVCs bool
	// Metrics is the telemetry registry the interface records into. All
	// instrument names are prefixed with Name ("a.nic.tx.cells"), so
	// several interfaces can share one registry and a simulation gets a
	// single unified snapshot. Nil means the interface creates a private
	// registry, reachable via Interface.Metrics.
	Metrics *metrics.Registry
}

// DefaultConfig returns the as-built board: STS-3c, AAL5 firmware, 25 MHz
// engines, 32-cell FIFOs, a 256-entry CAM, paged reassembly buffers in
// 256 KiB of adapter SRAM.
func DefaultConfig(name string) Config {
	return Config{
		Name:        name,
		PayloadRate: units.STS3cPayload,
		AAL:         aal.AAL5,
		Engine:      engine.DefaultConfig(),
		TxFifoDepth: 32,
		RxFifoDepth: 32,
		MaxVCs:      256,
		Lookup:      LookupCAM,
		BufOrg:      bufmgr.Paged,
		AdapterSRAM: 256 * 1024,
		MaxSDU:      aal.MaxSDU,
	}
}

func (c *Config) validate() error {
	if c.PayloadRate <= 0 {
		return fmt.Errorf("nic: non-positive payload rate")
	}
	if c.TxFifoDepth <= 0 || c.RxFifoDepth <= 0 {
		return fmt.Errorf("nic: FIFO depths must be positive")
	}
	if c.MaxVCs <= 0 {
		return fmt.Errorf("nic: MaxVCs must be positive")
	}
	if c.RxEngines < 0 || c.RxEngines > 64 {
		return fmt.Errorf("nic: RxEngines %d out of range", c.RxEngines)
	}
	if c.MIDMux && c.AAL != aal.AAL34 {
		return fmt.Errorf("nic: MIDMux requires AAL3/4")
	}
	if c.RxEngines == 0 {
		c.RxEngines = 1
	}
	if c.MaxSDU <= 0 {
		c.MaxSDU = aal.MaxSDU
	}
	if c.MaxSDU > aal.MaxSDU {
		return fmt.Errorf("nic: MaxSDU %d exceeds AAL limit %d", c.MaxSDU, aal.MaxSDU)
	}
	if c.ReassemblyTimeout < 0 {
		return fmt.Errorf("nic: negative ReassemblyTimeout")
	}
	if c.AlarmPeriod == 0 {
		c.AlarmPeriod = sim.Millisecond
	}
	if c.AlarmClearTimeout == 0 {
		c.AlarmClearTimeout = 2500 * sim.Microsecond
	}
	c.BufOrg = c.BufOrg.Resolve()
	return nil
}

// scoped prefixes an instrument name with the interface name, keeping
// multi-station registries collision-free ("a.nic.tx.cells").
func scoped(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

// perCellPayload returns SAR payload bytes per cell for the configured AAL.
func (c *Config) perCellPayload() int { return c.AAL.PerCellPayload() }

// maxFrameCells returns the largest cell count a frame can reach.
func (c *Config) maxFrameCells() int {
	if c.AAL == aal.AAL34 {
		return aal.CellsForSDU34(c.MaxSDU)
	}
	return aal.CellsForSDU5(c.MaxSDU)
}
