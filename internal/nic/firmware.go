// Package nic implements the paper's contribution: the host–network
// interface architecture.  Dedicated hardware owns the per-bit and per-word
// work (SONET framing, CRCs, FIFOs, DMA); two programmable protocol engines
// own the per-cell work (segmentation on transmit, VC demultiplexing and
// reassembly on receive); and the host is involved exactly once per packet
// on each side.
//
// This file holds the firmware instruction budgets the delay analysis
// (experiments E1/E2) is computed from.  Each count was produced by writing
// the routine in i960-class assembly pseudo-code and counting instructions,
// with these conventions: register ALU ops and stores cost 1; loads cost 1
// (stall slack lives in the engine CPI); the CRC, HEC generation and byte
// movement between FIFOs, staging RAM and the DMA engine are hardware and
// cost the firmware nothing beyond issuing a command word.
package nic

// Transmit-side firmware budgets.
//
// txStart — per packet: pop a transmit descriptor, set up segmentation
// state, and program the DMA engine to stage the packet:
//
//	ld   desc.addr, r4      ; 1   packet base in host memory
//	ld   desc.len,  r5      ; 1
//	ld   desc.vc,   r6      ; 1
//	ld   desc.flags,r7      ; 1
//	chk  r5, #maxlen        ; 2   bounds + branch
//	ld   vcstate[r6], r8    ; 2   per-VC header template, seg state
//	st   r4, dma.src        ; 1
//	st   r5, dma.len        ; 1
//	st   #stage, dma.dst    ; 1
//	st   #go, dma.cmd       ; 1
//	mov  r5, seg.remain     ; 1
//	calc cells(r5)          ; 4   shift/add ceil divide
//	st   cells, seg.cells   ; 1
//	init crc  (hw cmd)      ; 1
//	build trailer template  ; 6   UU/CPI/len into staging tail
//	branch to cell loop     ; 1
const txStartInstr = 26

// txStartAAL34Extra — AAL3/4 adds BTag/ETag generation, BASize fill and the
// CPCS envelope around the staged payload.
const txStartAAL34Extra = 8

// txCellInstr — per mid-frame cell under AAL5: advance the staging pointer,
// emit the prebuilt header word, command the FIFO write:
//
//	ld   seg.off, r4        ; 1
//	add  #48, r4            ; 1
//	st   r4, seg.off        ; 1
//	dec  seg.cells          ; 1
//	st   hdr.word, fifo.hdr ; 2   header template (HEC appended by hw)
//	st   r4, fifo.src       ; 1   where hardware reads the 48 bytes
//	st   #xmit, fifo.cmd    ; 1
//	crc  update (hw)        ; 0
//	cmp/branch loop         ; 2
const txCellInstr = 10

// txCellLastExtra — the final cell of an AAL5 frame: pad accounting, place
// Length into the trailer, command the hardware CRC read-out into the last
// word, set the PT AAU bit in the header word.
const txCellLastExtra = 12

// txCellAAL34Extra — every AAL3/4 cell also builds the 2-byte SAR header
// (ST/SN/MID) and the LI field, and commands the CRC-10 unit:
//
//	ld   seg.sn, r4         ; 1
//	addi 1, r4 / and 0xf    ; 2
//	st   r4, seg.sn         ; 1
//	or   st|sn|mid, r5      ; 3
//	st   r5, fifo.sarhdr    ; 1
//	st   li, fifo.li        ; 1
//	crc10 cmd (hw)          ; 1
const txCellAAL34Extra = 10

// txCellShapeExtra — per cell when the VC carries a traffic contract
// (Interface.SetContract): the segmentation firmware updates the GCRA
// shaping state (both bucket TATs) and computes the next eligible slot,
// instead of the single add of plain pacing:
//
//	ld   vc.tat1, r4        ; 1
//	cmp/sel max(now,tat1)   ; 2
//	add  inc1, r4           ; 1
//	st   r4, vc.tat1        ; 1
//	ld   vc.tat2, r5        ; 1
//	cmp/sel max(now,tat2)   ; 2
//	add  inc2, r5           ; 1
//	st   r5, vc.tat2        ; 1
//	sub  bt, r5             ; 1
//	cmp/sel max(r4,r5)      ; 2
//	st   eligible           ; 1
const txCellShapeExtra = 14

// txDoneInstr — per packet: write back the descriptor status and post the
// transmit-complete interrupt through the doorbell register.
const txDoneInstr = 12

// Receive-side firmware budgets.
//
// rxCellInstr — per cell, before lookup and buffer costs: pop the FIFO
// status word, split the header fields, classify PT:
//
//	ld   fifo.status, r4    ; 1
//	ld   fifo.hdr, r5       ; 2   header word (HEC already checked by hw)
//	extract vpi/vci         ; 3   shifts+masks
//	extract pt/clp          ; 2
//	tst  oam / branch       ; 2
//	tst  idle / branch      ; 2
const rxCellInstr = 12

// rxCellAAL34Extra — AAL3/4 parses the SAR header and trailer and runs the
// sequence-number check in firmware (the CRC-10 verdict itself is a
// hardware status bit):
//
//	ld   sar.hdr, r6        ; 1
//	extract st/sn/mid       ; 3
//	ld   vc.expectsn, r7    ; 1
//	cmp/branch sn           ; 2
//	st   next sn            ; 1
//	ld   li / bounds        ; 2
const rxCellAAL34Extra = 10

// rxEOPInstr — per packet: read the hardware CRC verdict, validate the
// trailer length, build the host completion descriptor, program the DMA of
// the assembled frame, and post the receive interrupt:
//
//	ld   crc.status, r4     ; 1
//	branch bad              ; 1
//	ld   trailer.len, r5    ; 2
//	bounds check            ; 3
//	st   host.desc fields   ; 6
//	st   dma.src/dst/len/go ; 4
//	st   #irq, doorbell     ; 1
//	free accounting         ; 4
const rxEOPInstr = 22

// rxErrInstr — abandoning a damaged frame: mark the VC state, return the
// buffer chain to the free list (hardware-assisted), bump an error counter.
const rxErrInstr = 15

// rxUnknownVCInstr — cells addressed to no open VC are counted and dropped.
const rxUnknownVCInstr = 6

// rxOAMInstr — handling a management cell on the slow path: verify the
// CRC-10 status bit, parse type/function, and for a loopback request flip
// the indication, refresh the CRC (hardware) and hand the cell to the
// transmit FIFO. No host involvement — the engines answer loopbacks alone.
const rxOAMInstr = 30

// rxAlarmInstr — an AIS/RDI cell past the common OAM dispatch: look up the
// VC's alarm row, test/update the declared state, re-arm the clear timer,
// and on a declare/clear transition ring the host doorbell:
//
//	ld   alarm[vc], r4      ; 2   alarm state row
//	tst  declared / branch  ; 2
//	or   #bit, r4           ; 1   declare
//	st   r4, alarm[vc]      ; 1
//	ld   now, r5            ; 1
//	add  #clear_to, r5      ; 1
//	st   r5, timer[vc]      ; 1   re-arm clear timer
//	tst  transition         ; 2
//	st   #irq, doorbell     ; 1   only on a transition
//	branch out              ; 1
const rxAlarmInstr = 13

// oamGenInstr — the firmware builds one AIS/RDI cell: load the VC's header
// template, write type/function and the location ID into the staging slot,
// command the CRC-10 unit, hand the cell to the transmit FIFO:
//
//	ld   vcstate[vc], r4    ; 2   header template
//	st   r4, stage.hdr      ; 1
//	st   type|func, stage   ; 1
//	st   defect, stage+1    ; 1
//	copy location (4 words) ; 8
//	fill 0x6a (7 words)     ; 7   unused field fill
//	crc10 cmd (hw)          ; 1
//	st   #xmit, fifo.cmd    ; 1
const oamGenInstr = 22

// alarmIntrInstr — the host-side alarm handler body: read the alarm status
// register, decode which VC transitioned, update the driver's connection
// state and notify the management layer. Charged once per declare/clear
// transition — never per cell.
const alarmIntrInstr = 150
