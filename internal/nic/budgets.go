package nic

import "repro/internal/aal"

// FirmwareCost is one row of the delay-analysis tables (experiments E1/E2):
// a named firmware routine and its instruction budget, excluding the
// engine's dispatch overhead (reported separately so the tables can show
// both).
type FirmwareCost struct {
	Name      string
	Instr     int
	PerPacket bool // charged once per packet rather than per cell
}

// TxFirmwareCosts returns the transmit-side budgets for an AAL build.
func TxFirmwareCosts(t aal.Type) []FirmwareCost {
	start := txStartInstr
	mid := txCellInstr
	last := txCellInstr + txCellLastExtra
	if t == aal.AAL34 {
		start += txStartAAL34Extra
		mid += txCellAAL34Extra
		last += txCellAAL34Extra
	}
	return []FirmwareCost{
		{Name: "tx_start", Instr: start, PerPacket: true},
		{Name: "tx_cell (mid)", Instr: mid},
		{Name: "tx_cell (last)", Instr: last},
		{Name: "tx_done", Instr: txDoneInstr, PerPacket: true},
	}
}

// RxFirmwareCosts returns the receive-side budgets for an AAL build.
// lookupCycles and appendCycles are the per-cell costs of the configured
// VC-lookup strategy and buffer organization, which the firmware inlines.
func RxFirmwareCosts(t aal.Type, lookupCycles, appendCycles int) []FirmwareCost {
	cell := rxCellInstr + lookupCycles + appendCycles
	if t == aal.AAL34 {
		cell += rxCellAAL34Extra
	}
	return []FirmwareCost{
		{Name: "rx_cell", Instr: cell},
		{Name: "rx_eop", Instr: rxEOPInstr, PerPacket: true},
		{Name: "rx_err", Instr: rxErrInstr, PerPacket: true},
	}
}
