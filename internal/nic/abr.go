package nic

import (
	"repro/internal/atm"
	"repro/internal/tm"
)

// This file is the end-system half of the ABR closed loop (TM 4.0 §5.10):
//
//   - the SOURCE sends one in-band forward RM cell per Nrm cells on the
//     data VC, carrying its current ACR, and re-targets its shaper on
//     every backward RM cell that returns (tm.ABRSource applies the
//     RIF/RDF/ER rate rules, tm.Shaper.SetRate re-derives the bucket);
//   - the DESTINATION turns forward RM cells around — flips DIR, folds the
//     EFCI state of the latest data cell into CI — and injects them onto
//     the same VC back toward the source (the VCC must be duplex, which
//     core enforces when it wires an ABR connection).
//
// RM cells ride the transmit FIFO and the shaper like data cells, so the
// feedback cadence is proportional to the sending rate: a fast source
// probes the network often, a throttled one sips — the property that makes
// Nrm a stable control-loop constant instead of a timer.

// abrTx is the per-VC transmit-side ABR state.
type abrTx struct {
	src     *tm.ABRSource
	sinceRM int // cells sent since the last forward RM cell
}

// SetABR arms ABR rate control on an open VC: the transmit side starts at
// ICR, emits one forward RM cell per Nrm cells, and follows the backward
// RM feedback between MCR and PCR. Defaults are filled per TM 4.0
// (Nrm=32, RIF=RDF=1/16; see tm.ABRParams).
func (i *Interface) SetABR(vc atm.VC, p tm.ABRParams) error {
	if !i.txVCs[vc] {
		return ErrUnknownVC
	}
	p.Normalize()
	if err := p.Validate(); err != nil {
		return err
	}
	src := tm.NewABRSource(p)
	sh := tm.NewShaper(tm.TrafficContract{Class: tm.ABR, PCR: p.ICR, MCR: p.MCR})
	if !i.tx.setContract(vc, sh) {
		return ErrUnknownVC
	}
	// Start the RM counter one short of the cadence so the very first data
	// cell is chased by an RM cell: feedback starts one round-trip after
	// the connection opens, not Nrm cells later.
	i.tx.vcs[vc].abr = &abrTx{src: src, sinceRM: p.Nrm - 2}
	return nil
}

// ACR returns the VC's current allowed cell rate in cells/s; ok is false
// unless the VC has ABR armed.
func (i *Interface) ACR(vc atm.VC) (acr float64, ok bool) {
	st, found := i.tx.vcs[vc]
	if !found || st.abr == nil {
		return 0, false
	}
	return st.abr.src.ACR(), true
}

// handleRM is the management-path handler for PT=0b110 cells, dispatched
// ahead of the OAM classifier (RM payloads have their own format).
func (i *Interface) handleRM(c *atm.Cell) {
	var rm atm.RM
	if err := rm.Decode(&c.Payload); err != nil {
		i.rx.badOAM(c)
		return
	}
	if !rm.DIR {
		// Forward RM cell: this interface is the destination. Turn it
		// around — flip the direction, fold the connection's EFCI state
		// into CI — and send it back on the same VC.
		rm.DIR = true
		rm.BN = false
		if i.rx.efciState(c.Header.VC()) {
			rm.CI = true
		}
		rm.Encode(&c.Payload)
		i.mRMTurn.Inc()
		if !i.tx.injectCell(c) {
			i.pool.Put(c)
		}
		return
	}
	// Backward RM cell: this interface is the source. Apply the rate rules
	// and re-target the shaper.
	i.mBRMRx.Inc()
	i.tx.abrFeedback(c.Header.VC(), &rm)
	i.pool.Put(c)
}

// maybeSendFRM emits the next in-band forward RM cell once Nrm−1 cells
// have followed the previous one (the RM cell itself is the Nrm-th). The
// cell spends a shaper slot like any data cell, so RM overhead lives
// inside ACR, not on top of it. A full TX FIFO defers the send to the next
// data-cell boundary rather than dropping the feedback probe.
func (t *transmitter) maybeSendFRM(st *txVC) {
	a := st.abr
	a.sinceRM++
	p := a.src.Params()
	if a.sinceRM < p.Nrm-1 || t.fifo.Full() {
		return
	}
	c := t.pool.Get()
	rm := atm.RM{ER: p.PCR, CCR: a.src.ACR(), MCR: p.MCR}
	rm.Encode(&c.Payload)
	c.Header = atm.Header{
		Format: atm.UNI,
		VPI:    st.vc.VPI,
		VCI:    st.vc.VCI,
		PT:     atm.PTResourceMgmt,
	}
	if !t.fifo.Push(c) {
		t.pool.Put(c)
		return
	}
	t.pushTimes.Push(t.k.Now())
	t.spFifo.Enter(st.vc)
	t.mCells.Inc()
	t.mFRM.Inc()
	st.vst.AddCellOut()
	a.sinceRM = 0
	if st.shaper != nil {
		st.nextEligible = st.shaper.NextEligible(t.k.Now())
	}
	t.startClock()
}

// abrFeedback applies one backward RM cell to the VC's rate: the ABRSource
// computes the new ACR, the shaper re-derives its bucket at that rate, and
// the dispatcher is nudged in case the new rate unblocks a pacing wait.
func (t *transmitter) abrFeedback(vc atm.VC, rm *atm.RM) {
	st, ok := t.vcs[vc]
	if !ok || st.abr == nil {
		return
	}
	acr := st.abr.src.Feedback(rm.CI, rm.NI, rm.ER)
	if st.shaper != nil {
		st.shaper.SetRate(t.k.Now(), acr)
		st.nextEligible = st.shaper.Eligible()
		t.schedule()
	}
}

// efciState reports whether vc's most recent data cell arrived with the
// EFCI congestion bit set (TM 4.0 destination behaviour: CI in the turned
// RM cell reflects the EFCI state of the connection).
func (r *receiver) efciState(vc atm.VC) bool {
	idx, _, found := r.lookup.Lookup(vc)
	if !found {
		return false
	}
	return r.vcs[idx].efci
}
