package nic

import (
	"errors"
	"fmt"

	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/fifo"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/oam"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vclookup"
)

// Interface is one host–network interface: the transmit and receive halves,
// their protocol engines, their cell FIFOs, and their attachment to the
// host's bus and CPU.
type Interface struct {
	k    *sim.Kernel
	cfg  Config
	hst  *host.Host
	pool *atm.Pool
	buf  *bufpool.Pool // SDU/payload buffers (TX copies, pooled RX delivery)

	txEngine  *engine.Engine
	rxEngines []*engine.Engine
	txDev     *bus.Device // transmit staging DMA
	rxDev     *bus.Device // receive completion DMA
	hostDev   *bus.Device // host PIO (descriptor writes)

	tx     *transmitter
	rx     *receiver
	fm     *faultMgr
	spread *phy.BurstSpreader // re-spreads arriving bursts at the rx door

	reg        *metrics.Registry
	txVCs      map[atm.VC]bool
	onLoopback func(vc atm.VC, correlation uint32)

	// ABR management-path counters (see abr.go).
	mRMTurn *metrics.Counter // forward RM cells turned around as destination
	mBRMRx  *metrics.Counter // backward RM cells consumed as source
}

// Errors surfaced by the interface API.
var (
	ErrBadSDU    = errors.New("nic: SDU empty or exceeds configured MaxSDU")
	ErrUnknownVC = errors.New("nic: VC not open")
	ErrTableFull = errors.New("nic: VC table full")
	ErrVCExists  = errVCExists
)

// New builds an interface attached to the given host CPU and bus.
func New(k *sim.Kernel, cfg Config, hst *host.Host, b *bus.Bus) (*Interface, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if hst == nil || b == nil {
		return nil, fmt.Errorf("nic: nil host or bus")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	i := &Interface{
		k:        k,
		cfg:      cfg,
		hst:      hst,
		pool:     atm.NewPool(cfg.TxFifoDepth + cfg.RxEngines*cfg.RxFifoDepth + 64),
		buf:      bufpool.New(),
		txEngine: engine.New(k, cfg.Name+".txeng", cfg.Engine),
		txDev:    b.Attach(cfg.Name + ".txdma"),
		rxDev:    b.Attach(cfg.Name + ".rxdma"),
		hostDev:  b.Attach(cfg.Name + ".pio"),
		reg:      reg,
		txVCs:    make(map[atm.VC]bool),
	}
	i.mRMTurn = reg.Counter(scoped(cfg.Name, "nic.abr.turnaround"))
	i.mBRMRx = reg.Counter(scoped(cfg.Name, "nic.abr.brm_rx"))
	i.txEngine.Instrument(reg, scoped(cfg.Name, "engine.txeng"))
	i.buf.Instrument(reg, scoped(cfg.Name, "nic.bufpool"))
	for e := 0; e < cfg.RxEngines; e++ {
		eng := engine.New(k, fmt.Sprintf("%s.rxeng%d", cfg.Name, e), cfg.Engine)
		eng.Instrument(reg, scoped(cfg.Name, fmt.Sprintf("engine.rxeng%d", e)))
		i.rxEngines = append(i.rxEngines, eng)
	}
	cellTime := units.CellTime(cfg.PayloadRate)
	i.tx = newTransmitter(k, &i.cfg, i.txEngine, i.txDev, i.pool, i.buf, cellTime, reg, cfg.Name,
		// Default output discards (no link attached yet).
		atm.SinkFunc(func(c *atm.Cell) { i.pool.Put(c) }))
	i.rx = newReceiver(k, &i.cfg, i.rxEngines, i.rxDev, hst, i.pool, reg, cfg.Name)
	i.spread = phy.NewBurstSpreader(k, atm.SinkFunc(func(c *atm.Cell) { i.rx.deliverCell(c) }))
	i.fm = newFaultMgr(i)
	// Management slow path: the receive firmware classifies every OAM cell
	// (one CRC-checked dispatch peek), answers F5 loopback requests by
	// reflecting the cell through the transmit FIFO, feeds AIS/RDI alarms
	// into the fault state machine, and counts everything else — damaged
	// or unhandled — as a visible drop instead of a silent one.
	i.rx.onOAM = func(e int, c *atm.Cell) {
		if c.Header.PT == atm.PTResourceMgmt {
			// ABR resource-management cells have their own payload format;
			// dispatch them before the OAM classifier (abr.go).
			i.handleRM(c)
			return
		}
		typ, fn, ok := oam.Classify(&c.Payload)
		if !ok || typ != oam.TypeFaultMgmt {
			i.rx.badOAM(c)
			return
		}
		switch fn {
		case oam.FuncLoopback:
			var lb oam.Loopback
			if err := lb.Decode(&c.Payload); err != nil {
				i.rx.badOAM(c)
				return
			}
			if lb.Indication {
				if err := oam.Respond(c); err != nil || !i.tx.injectCell(c) {
					i.pool.Put(c)
				}
				return
			}
			if i.onLoopback != nil {
				i.onLoopback(c.Header.VC(), lb.Correlation)
			}
			i.pool.Put(c)
		case oam.FuncAIS:
			i.fm.rxAIS(e, c.Header.VC())
			i.pool.Put(c)
		case oam.FuncRDI:
			i.fm.rxRDI(e, c.Header.VC())
			i.pool.Put(c)
		default:
			i.rx.badOAM(c)
		}
	}
	return i, nil
}

// SendLoopback emits an F5 loopback request on vc. The reply (if the far
// end is alive) arrives at the handler registered with OnLoopbackReply.
// Loopback cells bypass the segmentation engine: the host writes them via
// the management register path, so no VC need be open for transmit.
func (i *Interface) SendLoopback(vc atm.VC, correlation uint32) error {
	var src [16]byte
	copy(src[:], i.cfg.Name)
	req := oam.NewRequest(vc, correlation, src)
	cell := i.pool.Get()
	*cell = *req
	if !i.tx.injectCell(cell) {
		i.pool.Put(cell)
		return errTxFull
	}
	return nil
}

// OnLoopbackReply registers the handler for loopback responses.
func (i *Interface) OnLoopbackReply(fn func(vc atm.VC, correlation uint32)) {
	i.onLoopback = fn
}

// OnAlarm registers the host-side handler for fault-management declare and
// clear transitions (AIS/RDI per VC, LOS per link). The handler runs after
// the alarm interrupt's host cost; at most one interrupt fires per
// transition, never one per alarm cell.
func (i *Interface) OnAlarm(fn func(AlarmEvent)) { i.fm.onAlarm = fn }

// SignalChange implements phy.SignalConsumer: the attached link (or the
// framer behind it) reports its receive carrier lost or restored. Loss
// declares the link-scope LOS defect and starts upstream RDI generation on
// every open VC.
func (i *Interface) SignalChange(up bool) { i.fm.signalChange(up) }

// FMStats returns the fault-management counters.
func (i *Interface) FMStats() FMStats { return i.fm.snapshot() }

// SRAMUsed returns the adapter reassembly bytes currently pinned — the
// live buffer occupancy the reassembly garbage collector bounds.
func (i *Interface) SRAMUsed() int { return i.rx.alloc.Used() }

var errTxFull = errors.New("nic: TX FIFO full, management cell dropped")

// Config returns the interface configuration.
func (i *Interface) Config() Config { return i.cfg }

// Host returns the attached host model.
func (i *Interface) Host() *host.Host { return i.hst }

// Pool returns the interface's cell pool; links that deliver cells into
// this interface should draw from it so cells recycle.
func (i *Interface) Pool() *atm.Pool { return i.pool }

// BufferPool returns the interface's SDU buffer pool. Send draws its copy
// buffers from it, and hosts using SendOwned may draw here too so transmit
// buffers recycle through the same free lists ("nic.bufpool.*" counters).
func (i *Interface) BufferPool() *bufpool.Pool { return i.buf }

// EnableRxPooling routes reassembled receive SDUs through the interface's
// buffer pool instead of the heap. When enabled, Delivered.SDU is valid
// only for the duration of the OnReceive callback: the interface recycles
// the buffer as soon as the callback returns. Hosts that retain packets
// (transports, queues) must copy — or leave pooling off, the default.
func (i *Interface) EnableRxPooling() { i.rx.setPool(i.buf) }

// CellTime returns the wire's cell slot duration.
func (i *Interface) CellTime() sim.Duration { return units.CellTime(i.cfg.PayloadRate) }

// AttachSink attaches the transmit side to a downstream consumer (a link,
// a switch port): it receives one encoded cell per occupied cell slot, with
// ownership transferring on delivery. Implements atm.CellProducer; together
// with DeliverCell it makes the interface a full atm.CellConduit.
func (i *Interface) AttachSink(out atm.CellConsumer) {
	if out == nil {
		panic("nic: nil output")
	}
	i.tx.out = out
}

// SetOutput is the func-valued convenience form of AttachSink.
func (i *Interface) SetOutput(out func(*atm.Cell)) {
	if out == nil {
		panic("nic: nil output")
	}
	i.tx.out = atm.SinkFunc(out)
}

// OnReceive registers the host-side delivery callback.
func (i *Interface) OnReceive(fn func(Delivered)) { i.rx.onDeliver = fn }

// OpenVC opens a VC for both send and receive.
func (i *Interface) OpenVC(vc atm.VC) error {
	if i.txVCs[vc] {
		return ErrVCExists
	}
	if err := i.rx.open(vc); err != nil {
		switch {
		case errors.Is(err, vclookup.ErrFull):
			return ErrTableFull
		case errors.Is(err, vclookup.ErrDuplicate):
			return ErrVCExists
		default:
			return err
		}
	}
	i.txVCs[vc] = true
	i.tx.open(vc)
	return nil
}

// CloseVC tears down a VC: queued transmit descriptors are dropped (a frame
// already being segmented drains), and the receive side discards any
// partial frame.
func (i *Interface) CloseVC(vc atm.VC) {
	delete(i.txVCs, vc)
	i.tx.close(vc)
	i.rx.close(vc)
	i.fm.close(vc)
}

// SetMID stamps the AAL3/4 multiplexing identifier used for vc's frames
// (10 bits; meaningful with a MIDMux receiver on a shared VC).
func (i *Interface) SetMID(vc atm.VC, mid uint16) error {
	if !i.txVCs[vc] {
		return ErrUnknownVC
	}
	if mid > 0x3ff {
		return fmt.Errorf("nic: MID %d exceeds 10 bits", mid)
	}
	if !i.tx.setMID(vc, mid) {
		return fmt.Errorf("nic: SetMID requires the AAL3/4 build")
	}
	return nil
}

// SetPeakCellRate installs per-VC transmit pacing: cells of vc leave at
// most every 1/cellsPerSec seconds (a depth-1 leaky bucket — the usage
// parameter control knob ATM networks police at the UNI). cellsPerSec <= 0
// restores line rate.
func (i *Interface) SetPeakCellRate(vc atm.VC, cellsPerSec float64) error {
	if !i.txVCs[vc] {
		return ErrUnknownVC
	}
	var gap sim.Duration
	if cellsPerSec > 0 {
		gap = sim.Duration(1e9 / cellsPerSec)
	}
	if !i.tx.setPeakCellRate(vc, gap) {
		return ErrUnknownVC
	}
	return nil
}

// SetContract installs a full traffic contract on vc: the transmit side
// shapes departures with the contract's GCRA state (MBS-bounded bursts at
// PCR, then SCR), so the stream passes an ingress policer enforcing the
// same contract — SetPeakCellRate's fixed gap generalized to the dual
// leaky bucket. A zero-PCR contract removes shaping.
func (i *Interface) SetContract(vc atm.VC, c tm.TrafficContract) error {
	if !i.txVCs[vc] {
		return ErrUnknownVC
	}
	if c.PCR <= 0 {
		i.tx.setContract(vc, nil)
		return nil
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if !i.tx.setContract(vc, tm.NewShaper(c)) {
		return ErrUnknownVC
	}
	return nil
}

// Send queues one SDU for transmission on vc. The host CPU cost (stack +
// driver) and the descriptor PIO are charged before the adapter sees the
// descriptor; onSent (may be nil) fires after the transmit-complete
// interrupt — i.e. when the host could reuse the buffer.
func (i *Interface) Send(vc atm.VC, sdu []byte, onSent func()) error {
	if len(sdu) == 0 || len(sdu) > i.cfg.MaxSDU {
		return ErrBadSDU
	}
	if !i.txVCs[vc] {
		return ErrUnknownVC
	}
	// The defensive copy goes through the buffer pool and is recycled when
	// segmentation finishes, so a steady flow reuses the same buffers.
	buf := i.buf.Get(len(sdu))
	copy(buf, sdu)
	i.hst.TxPacket(len(buf), func() {
		// Driver writes a 4-word descriptor across the bus.
		i.hostDev.PIO(4, func() {
			i.tx.enqueue(vc, txDescriptor{sdu: buf, pooled: true, onSent: func() {
				i.hst.TxCompleteInterrupt(onSent)
			}})
		})
	})
	return nil
}

// SendOwned queues one SDU for transmission without copying it: ownership
// of sdu's backing array transfers to the interface until onSent fires (the
// transmit-complete interrupt), after which the caller may reuse it. This
// is the zero-copy path for hosts that manage their own buffers — the
// driver handing the adapter a DMA address instead of a fresh copy. Timing
// is identical to Send; only the untimed copy disappears.
func (i *Interface) SendOwned(vc atm.VC, sdu []byte, onSent func()) error {
	if len(sdu) == 0 || len(sdu) > i.cfg.MaxSDU {
		return ErrBadSDU
	}
	if !i.txVCs[vc] {
		return ErrUnknownVC
	}
	i.hst.TxPacket(len(sdu), func() {
		i.hostDev.PIO(4, func() {
			i.tx.enqueue(vc, txDescriptor{sdu: sdu, onSent: func() {
				i.hst.TxCompleteInterrupt(onSent)
			}})
		})
	})
	return nil
}

// DeliverCell is the link-side entry point for arriving cells. The cell
// must come from (or be returned to) this interface's Pool.
func (i *Interface) DeliverCell(c *atm.Cell) { i.rx.deliverCell(c) }

// DeliverBurst implements atm.BurstConsumer by re-spreading the vector into
// per-cell arrivals at the burst's arithmetic times. The receive door is a
// must-split stage — reassembly FIFO occupancy and engine scheduling depend
// on exactly when each cell arrives — so the interface never processes a
// vector in one step; accepting bursts here still lets upstream stages batch
// their side of the hop (one link-transit event instead of one per cell)
// without changing any receive-path behavior.
func (i *Interface) DeliverBurst(b *atm.CellBurst) { i.spread.DeliverBurst(b) }

// Stats is a point-in-time snapshot of every counter the experiments read.
type Stats struct {
	Tx        TxStats
	Rx        RxStats
	TxFifo    fifo.Stats
	RxFifo    fifo.Stats
	TxEngine  []engine.RoutineStat
	RxEngine  []engine.RoutineStat
	TxEngUtil float64
	RxEngUtil float64
	SRAMPeak  int
}

// Stats returns the snapshot. With multiple receive engines, RxFifo
// aggregates drops/pushes across the per-engine FIFOs and RxEngUtil is the
// mean engine utilization.
func (i *Interface) Stats() Stats {
	rx := i.rx.snapshot()
	var agg fifo.Stats
	for _, f := range i.rx.fifos {
		st := f.Stats()
		agg.Pushes += st.Pushes
		agg.Pops += st.Pops
		agg.Drops += st.Drops
		if st.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = st.MaxDepth
		}
	}
	rx.MaxFifo = agg.MaxDepth
	var rxUtil float64
	var rxRoutines []engine.RoutineStat
	for _, e := range i.rxEngines {
		rxUtil += e.Utilization()
		rxRoutines = append(rxRoutines, e.Routines()...)
	}
	rxUtil /= float64(len(i.rxEngines))
	return Stats{
		Tx:        i.tx.snapshot(),
		Rx:        rx,
		TxFifo:    i.tx.fifo.Stats(),
		RxFifo:    agg,
		TxEngine:  i.txEngine.Routines(),
		RxEngine:  rxRoutines,
		TxEngUtil: i.txEngine.Utilization(),
		RxEngUtil: rxUtil,
		SRAMPeak:  i.rx.alloc.Peak(),
	}
}

// SetRecorder installs flight-recorder stage spans on the interface's
// datapath: "<name>/tx.fifo" (cell produced → cell clock), "<name>/rx.fifo"
// (arrival → engine pop), "<name>/rx.reasm" (first cell → frame complete)
// and "<name>/rx.deliver" (host delivery instant), plus the drop events
// each stage can suffer. A nil recorder detaches: the hooks collapse back
// to one nil test per cell and zero allocations.
func (i *Interface) SetRecorder(rec *trace.Recorder) {
	name := i.cfg.Name
	i.tx.spFifo = rec.Stage(name, "tx.fifo")
	i.rx.spFifo = rec.Stage(name, "rx.fifo")
	i.rx.spReasm = rec.Stage(name, "rx.reasm")
	i.rx.spDeliver = rec.Stage(name, "rx.deliver")
}

// Metrics returns the telemetry registry the interface records into —
// the one from Config.Metrics, or the private registry created when the
// config left it nil.
func (i *Interface) Metrics() *metrics.Registry { return i.reg }

// TxEngine exposes the transmit engine (for headroom analysis).
func (i *Interface) TxEngine() *engine.Engine { return i.txEngine }

// RxEngine exposes the first receive engine.
func (i *Interface) RxEngine() *engine.Engine { return i.rxEngines[0] }

// RxEngines exposes all receive engines.
func (i *Interface) RxEngines() []*engine.Engine { return i.rxEngines }
