package nic

import (
	"bytes"
	"testing"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/units"
)

// injectRig drives a receiver directly with synthetic line-rate cells —
// no sender in the way, so the receive path is the only variable.
type injectRig struct {
	k     *sim.Kernel
	iface *Interface
	segs  map[atm.VC]aal.Segmenter
}

func newInjectRig(t *testing.T, mod func(cfg *Config)) *injectRig {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig("rx")
	if mod != nil {
		mod(&cfg)
	}
	iface, err := New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	return &injectRig{k: k, iface: iface, segs: map[atm.VC]aal.Segmenter{}}
}

// injectFrame schedules all cells of one AAL5 frame for vc, one per cell
// slot starting at start.
func (r *injectRig) injectFrame(vc atm.VC, sdu []byte, start sim.Time, cellTime sim.Duration) sim.Time {
	seg := r.segs[vc]
	if seg == nil {
		seg, _ = aal.New(aal.AAL5, 0)
		r.segs[vc] = seg
	}
	// Segment now; schedule deliveries.
	cells, err := seg.Begin(sdu)
	if err != nil {
		panic(err)
	}
	at := start
	for i := 0; i < cells; i++ {
		cell := r.iface.Pool().Get()
		pt, _, err := seg.Next(&cell.Payload)
		if err != nil {
			panic(err)
		}
		cell.Header = atm.Header{Format: atm.UNI, VPI: vc.VPI, VCI: vc.VCI, PT: pt}
		r.k.At(at, func() { r.iface.DeliverCell(cell) })
		at += cellTime
	}
	return at
}

func TestMultiEngineScalesAcrossVCs(t *testing.T) {
	// At STS-12c one 25 MHz engine cannot keep up with line-rate cells.
	// With 4 VCs interleaved cell-by-cell and 4 engines, each engine sees
	// a quarter of the rate and keeps up.
	run := func(engines int) (pkts uint64, drops uint64) {
		r := newInjectRig(t, func(cfg *Config) {
			cfg.PayloadRate = units.STS12cPayload
			cfg.RxEngines = engines
		})
		ct := units.CellTime(units.STS12cPayload)
		vcs := []atm.VC{{VCI: 11}, {VCI: 12}, {VCI: 13}, {VCI: 14}}
		for _, vc := range vcs {
			r.iface.OpenVC(vc)
		}
		got := 0
		r.iface.OnReceive(func(d Delivered) { got++ })
		// Interleave: each VC sends cells in slots i, i+4, i+8... at full
		// aggregate line rate.
		sdu := pkt(2000) // 42 cells each
		for round := 0; round < 20; round++ {
			base := sim.Time(round*42*4) * sim.Time(ct)
			for i, vc := range vcs {
				r.injectFrame(vc, sdu, base+sim.Time(i)*sim.Time(ct), 4*ct)
			}
		}
		r.k.Run()
		st := r.iface.Stats()
		return st.Rx.Packets, st.Rx.FifoDrops
	}
	onePkts, oneDrops := run(1)
	fourPkts, fourDrops := run(4)
	if oneDrops == 0 {
		t.Fatalf("single engine survived STS-12c aggregate (%d pkts) — no bottleneck to scale away", onePkts)
	}
	if fourDrops != 0 {
		t.Fatalf("4 engines still dropped %d cells", fourDrops)
	}
	if fourPkts != 80 {
		t.Fatalf("4 engines delivered %d of 80", fourPkts)
	}
	if fourPkts <= onePkts {
		t.Fatalf("no scaling: 1 engine %d pkts, 4 engines %d", onePkts, fourPkts)
	}
}

func TestMultiEngineSingleVCGainsNothing(t *testing.T) {
	// All cells of one VC hash to one engine: adding engines must not
	// change single-VC behaviour (ordering guarantee has a price).
	run := func(engines int) uint64 {
		r := newInjectRig(t, func(cfg *Config) {
			cfg.PayloadRate = units.STS12cPayload
			cfg.RxEngines = engines
		})
		ct := units.CellTime(units.STS12cPayload)
		vc := atm.VC{VCI: 9}
		r.iface.OpenVC(vc)
		end := sim.Time(0)
		for i := 0; i < 10; i++ {
			end = r.injectFrame(vc, pkt(9180), end, ct)
		}
		r.k.Run()
		return r.iface.Stats().Rx.FifoDrops
	}
	if one, eight := run(1), run(8); one != eight {
		t.Fatalf("single-VC drops changed with engines: %d vs %d", one, eight)
	}
}

func TestMultiEnginePreservesPerVCOrderAndIntegrity(t *testing.T) {
	r := newInjectRig(t, func(cfg *Config) { cfg.RxEngines = 3 })
	ct := units.CellTime(units.STS3cPayload)
	vcs := []atm.VC{{VCI: 21}, {VCI: 22}, {VCI: 23}}
	for _, vc := range vcs {
		r.iface.OpenVC(vc)
	}
	type rcv struct {
		vc  atm.VC
		sdu []byte
	}
	var got []rcv
	r.iface.OnReceive(func(d Delivered) { got = append(got, rcv{d.VC, d.SDU}) })
	// Each VC sends 5 distinct frames, interleaved in time.
	for i := 0; i < 5; i++ {
		for j, vc := range vcs {
			start := sim.Time(i*3+j) * 50_000
			r.injectFrame(vc, pkt(700+i*31+j*7), start, 3*ct)
		}
	}
	r.k.Run()
	if len(got) != 15 {
		t.Fatalf("delivered %d of 15", len(got))
	}
	// Per-VC, frames arrive in send order with intact bytes.
	idx := map[atm.VC]int{}
	for _, g := range got {
		j := 0
		for jj, vc := range vcs {
			if vc == g.vc {
				j = jj
			}
		}
		i := idx[g.vc]
		want := pkt(700 + i*31 + j*7)
		if !bytes.Equal(g.sdu, want) {
			t.Fatalf("VC %v frame %d corrupted or reordered", g.vc, i)
		}
		idx[g.vc]++
	}
}

func TestRxEnginesValidation(t *testing.T) {
	k := sim.NewKernel()
	h := host.New(k, host.DefaultConfig())
	b := bus.New(k, bus.DefaultConfig())
	cfg := DefaultConfig("x")
	cfg.RxEngines = -1
	if _, err := New(k, cfg, h, b); err == nil {
		t.Fatal("negative RxEngines accepted")
	}
	cfg.RxEngines = 65
	if _, err := New(k, cfg, h, b); err == nil {
		t.Fatal("RxEngines 65 accepted")
	}
	cfg.RxEngines = 0 // default
	iface, err := New(k, cfg, h, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.RxEngines()) != 1 {
		t.Fatalf("default engines = %d", len(iface.RxEngines()))
	}
}

func TestOAMLoopbackAnsweredByFirmware(t *testing.T) {
	// a pings b's endpoint; b's receive firmware reflects the cell with
	// the indication cleared and no host involvement; a's handler sees
	// the correlation tag come home.
	r := newRig(t, nil)
	vc := atm.VC{VCI: 77}
	r.a.OpenVC(vc)
	r.b.OpenVC(vc)
	// newRig wires only a->b; add the reverse path for the reply.
	back := phy.NewCellLink(r.k, 10_000, 2, r.a)
	r.b.SetOutput(back.Send)

	var gotVC atm.VC
	var gotCorr uint32
	r.a.OnLoopbackReply(func(vc atm.VC, corr uint32) { gotVC, gotCorr = vc, corr })
	hostIrqsBefore := r.hostB.Interrupts()
	if err := r.a.SendLoopback(vc, 0xc0ffee); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if gotCorr != 0xc0ffee || gotVC != vc {
		t.Fatalf("reply: vc=%v corr=%#x", gotVC, gotCorr)
	}
	if r.hostB.Interrupts() != hostIrqsBefore {
		t.Fatal("loopback involved the remote host CPU")
	}
	if r.b.Stats().Rx.OAMCells != 1 {
		t.Fatalf("b OAM cells = %d", r.b.Stats().Rx.OAMCells)
	}
}

func TestOAMLoopbackUnansweredWithoutResponder(t *testing.T) {
	// Loopback into the void (no reverse path): no reply, no crash, and
	// user traffic is unaffected.
	r := newRig(t, nil)
	vc := atm.VC{VCI: 78}
	r.a.OpenVC(vc)
	r.b.OpenVC(vc)
	replied := false
	r.a.OnLoopbackReply(func(atm.VC, uint32) { replied = true })
	r.a.SendLoopback(vc, 1)
	r.a.Send(vc, pkt(500), nil)
	r.k.Run()
	if replied {
		t.Fatal("reply with no reverse path")
	}
	if len(r.received) != 1 {
		t.Fatal("user traffic disturbed by management cell")
	}
}

func TestMIDMuxSharedVC(t *testing.T) {
	// Two senders' frames interleave cell-by-cell on ONE VC (merged via a
	// shared link); the MIDMux receiver demultiplexes them by MID.
	k := sim.NewKernel()
	mkTx := func(name string) *Interface {
		cfg := DefaultConfig(name)
		cfg.AAL = aal.AAL34
		cfg.InterleaveVCs = true
		iface, err := New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		return iface
	}
	cfgRx := DefaultConfig("rx")
	cfgRx.AAL = aal.AAL34
	cfgRx.MIDMux = true
	rx, err := New(k, cfgRx, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	shared := atm.VC{VCI: 30}
	tx1, tx2 := mkTx("tx1"), mkTx("tx2")
	for _, iface := range []*Interface{tx1, tx2} {
		iface.OpenVC(shared)
	}
	tx1.SetMID(shared, 5)
	tx2.SetMID(shared, 9)
	rx.OpenVC(shared)

	// Both transmitters feed the same fiber (a multipoint-to-point merge,
	// as an SMDS access line would see).
	link := phy.NewCellLink(k, 5000, 3, rx)
	tx1.SetOutput(link.Send)
	tx2.SetOutput(link.Send)

	got := map[uint16][]byte{}
	rx.OnReceive(func(d Delivered) { got[d.MID] = d.SDU })

	tx1.Send(shared, pkt(3000), nil)
	tx2.Send(shared, pkt(1500), nil)
	k.Run()

	if !bytes.Equal(got[5], pkt(3000)) {
		t.Fatal("MID 5 frame corrupted or missing")
	}
	if !bytes.Equal(got[9], pkt(1500)) {
		t.Fatal("MID 9 frame corrupted or missing")
	}
}

func TestMIDMuxValidation(t *testing.T) {
	k := sim.NewKernel()
	h := host.New(k, host.DefaultConfig())
	b := bus.New(k, bus.DefaultConfig())
	cfg := DefaultConfig("x")
	cfg.MIDMux = true // AAL5: invalid
	if _, err := New(k, cfg, h, b); err == nil {
		t.Fatal("MIDMux with AAL5 accepted")
	}
	cfg.AAL = aal.AAL34
	iface, err := New(k, cfg, h, b)
	if err != nil {
		t.Fatal(err)
	}
	vc := atm.VC{VCI: 4}
	iface.OpenVC(vc)
	if err := iface.SetMID(vc, 0x400); err == nil {
		t.Fatal("11-bit MID accepted")
	}
	if err := iface.SetMID(atm.VC{VCI: 99}, 1); err == nil {
		t.Fatal("SetMID on unopened VC accepted")
	}
	if err := iface.SetMID(vc, 0x3ff); err != nil {
		t.Fatal(err)
	}
}

func TestSetMIDRequiresAAL34(t *testing.T) {
	k := sim.NewKernel()
	iface, _ := New(k, DefaultConfig("x"), host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
	vc := atm.VC{VCI: 4}
	iface.OpenVC(vc)
	if err := iface.SetMID(vc, 1); err == nil {
		t.Fatal("SetMID on AAL5 build accepted")
	}
}
