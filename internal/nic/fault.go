package nic

import (
	"fmt"
	"sort"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/oam"
	"repro/internal/sim"
)

// F5 fault management (ITU-T I.610), adapter side. The receive firmware
// keeps one alarm row per connection in adapter SRAM. An arriving AIS cell
// declares the AIS defect on its VC; an arriving RDI cell declares RDI; a
// loss of signal on the local receive fiber declares LOS for the whole
// link. Declared defects behave like the standard's soak timers, scaled to
// simulation time: each defect indication re-arms a clear timer
// (Config.AlarmClearTimeout), and the defect clears when the timer expires
// with no fresh indication. While any AIS or LOS defect stands, the
// firmware transmits one RDI cell upstream per Config.AlarmPeriod on each
// affected VC, so the far transmitter learns its cells are dying.
//
// The host is involved only at declare/clear transitions — one interrupt
// per edge, never per cell, preserving the architecture's per-packet (here:
// per-event) host-involvement rule.

// AlarmKind classifies a fault-management event reported to the host.
type AlarmKind uint8

const (
	// AlarmAIS: AIS cells are arriving — a node upstream of our receive
	// direction has detected a failure.
	AlarmAIS AlarmKind = iota
	// AlarmRDI: RDI cells are arriving — the far endpoint cannot hear us;
	// our transmit direction is failing somewhere downstream.
	AlarmRDI
	// AlarmLOS: the local receive fiber itself has gone dark (link scope;
	// the event's VC field is the zero value).
	AlarmLOS
)

// String implements fmt.Stringer.
func (a AlarmKind) String() string {
	switch a {
	case AlarmAIS:
		return "AIS"
	case AlarmRDI:
		return "RDI"
	case AlarmLOS:
		return "LOS"
	default:
		return "alarm?"
	}
}

// AlarmEvent is one declare (Raised) or clear (!Raised) transition,
// delivered to the handler registered with Interface.OnAlarm after the
// host's alarm interrupt completes.
type AlarmEvent struct {
	VC     atm.VC // zero value for link-scope LOS
	Kind   AlarmKind
	Raised bool
	At     sim.Time
}

// String implements fmt.Stringer.
func (e AlarmEvent) String() string {
	edge := "cleared"
	if e.Raised {
		edge = "raised"
	}
	if e.Kind == AlarmLOS {
		return fmt.Sprintf("%v %s (link scope)", e.Kind, edge)
	}
	return fmt.Sprintf("%v %s on vc %v", e.Kind, edge, e.VC)
}

// vcAlarm is one per-VC alarm row.
type vcAlarm struct {
	vc       atm.VC
	aisOn    bool
	rdiOn    bool
	losOn    bool // link LOS propagated into this VC's row: drives RDI generation
	aisClear *sim.Event
	rdiClear *sim.Event
}

func (a *vcAlarm) active() bool { return a.aisOn || a.rdiOn || a.losOn }

// faultMgr is the firmware alarm state machine for one interface.
type faultMgr struct {
	i       *Interface
	k       *sim.Kernel
	period  sim.Duration
	clearTO sim.Duration
	locID   [16]byte

	alarms map[atm.VC]*vcAlarm
	order  []atm.VC // row-creation order: deterministic tick iteration
	los    bool
	onTick bool
	tickFn func()

	onAlarm func(AlarmEvent)

	mAISRx  *metrics.Counter
	mRDIRx  *metrics.Counter
	mRDITx  *metrics.Counter
	mEvents *metrics.Counter
}

func newFaultMgr(i *Interface) *faultMgr {
	fm := &faultMgr{
		i:       i,
		k:       i.k,
		period:  i.cfg.AlarmPeriod,
		clearTO: i.cfg.AlarmClearTimeout,
		locID:   oam.LocationID(i.cfg.Name),
		alarms:  make(map[atm.VC]*vcAlarm),
		mAISRx:  i.reg.Counter(scoped(i.cfg.Name, "nic.fm.ais_rx")),
		mRDIRx:  i.reg.Counter(scoped(i.cfg.Name, "nic.fm.rdi_rx")),
		mRDITx:  i.reg.Counter(scoped(i.cfg.Name, "nic.fm.rdi_tx")),
		mEvents: i.reg.Counter(scoped(i.cfg.Name, "nic.fm.events")),
	}
	fm.tickFn = fm.tick
	return fm
}

// row returns (creating if needed) vc's alarm state row.
func (fm *faultMgr) row(vc atm.VC) *vcAlarm {
	a, ok := fm.alarms[vc]
	if !ok {
		a = &vcAlarm{vc: vc}
		fm.alarms[vc] = a
		fm.order = append(fm.order, vc)
	}
	return a
}

// close drops vc's alarm row when the connection is torn down.
func (fm *faultMgr) close(vc atm.VC) {
	a, ok := fm.alarms[vc]
	if !ok {
		return
	}
	if a.aisClear != nil {
		fm.k.Cancel(a.aisClear)
	}
	if a.rdiClear != nil {
		fm.k.Cancel(a.rdiClear)
	}
	delete(fm.alarms, vc)
	for n, v := range fm.order {
		if v == vc {
			fm.order = append(fm.order[:n], fm.order[n+1:]...)
			break
		}
	}
}

// notify posts the alarm interrupt and hands the event to the host handler.
// One interrupt per transition; the handler runs after the host CPU has
// paid entry + body + exit.
func (fm *faultMgr) notify(ev AlarmEvent) {
	fm.mEvents.Inc()
	fm.i.hst.Interrupt("alarm", alarmIntrInstr, func() {
		if fm.onAlarm != nil {
			fm.onAlarm(ev)
		}
	})
}

// rxAIS handles one received AIS cell on vc. Called from the OAM dispatch
// on the engine that popped the cell; the alarm-row update is charged as
// its own firmware routine.
func (fm *faultMgr) rxAIS(e int, vc atm.VC) {
	fm.mAISRx.Inc()
	fm.i.rx.engs[e].Run("rx_alarm", rxAlarmInstr, func() {
		a := fm.row(vc)
		fm.refresh(&a.aisClear, func() { fm.clearAIS(a) })
		if !a.aisOn {
			a.aisOn = true
			fm.notify(AlarmEvent{VC: vc, Kind: AlarmAIS, Raised: true, At: fm.k.Now()})
		}
		fm.ensureTick()
	})
}

// rxRDI handles one received RDI cell on vc. RDI is terminal state — it
// reports our transmit direction dead; nothing further is generated.
func (fm *faultMgr) rxRDI(e int, vc atm.VC) {
	fm.mRDIRx.Inc()
	fm.i.rx.engs[e].Run("rx_alarm", rxAlarmInstr, func() {
		a := fm.row(vc)
		fm.refresh(&a.rdiClear, func() { fm.clearRDI(a) })
		if !a.rdiOn {
			a.rdiOn = true
			fm.notify(AlarmEvent{VC: vc, Kind: AlarmRDI, Raised: true, At: fm.k.Now()})
		}
	})
}

// refresh re-arms a defect's clear timer: each fresh indication pushes the
// clear point out by the soak interval.
func (fm *faultMgr) refresh(slot **sim.Event, clear func()) {
	at := fm.k.Now() + sim.Time(fm.clearTO)
	if *slot != nil && (*slot).Scheduled() {
		fm.k.Reschedule(*slot, at)
		return
	}
	*slot = fm.k.At(at, clear)
}

func (fm *faultMgr) clearAIS(a *vcAlarm) {
	a.aisClear = nil
	if !a.aisOn {
		return
	}
	a.aisOn = false
	fm.notify(AlarmEvent{VC: a.vc, Kind: AlarmAIS, Raised: false, At: fm.k.Now()})
}

func (fm *faultMgr) clearRDI(a *vcAlarm) {
	a.rdiClear = nil
	if !a.rdiOn {
		return
	}
	a.rdiOn = false
	fm.notify(AlarmEvent{VC: a.vc, Kind: AlarmRDI, Raised: false, At: fm.k.Now()})
}

// signalChange implements the phy.SignalConsumer wiring: the receive
// framer's carrier went down (LOS) or came back. Link scope — every open
// VC's row enters or leaves the LOS defect, which drives upstream RDI
// until the light returns.
func (fm *faultMgr) signalChange(up bool) {
	if fm.los == !up {
		return
	}
	fm.los = !up
	if !up {
		for _, vc := range fm.i.rx.openVCs() {
			fm.row(vc).losOn = true
		}
		fm.notify(AlarmEvent{Kind: AlarmLOS, Raised: true, At: fm.k.Now()})
		fm.ensureTick()
		return
	}
	for _, a := range fm.alarms {
		a.losOn = false
	}
	fm.notify(AlarmEvent{Kind: AlarmLOS, Raised: false, At: fm.k.Now()})
}

// anyDefect reports whether any row still needs the periodic tick.
func (fm *faultMgr) anyDefect() bool {
	for _, a := range fm.alarms {
		if a.aisOn || a.losOn {
			return true
		}
	}
	return false
}

// ensureTick starts the periodic fault-management routine if a defect is
// standing and the timer isn't already running. The tick self-terminates
// when every defect has cleared, so an idle simulation drains.
func (fm *faultMgr) ensureTick() {
	if fm.onTick || !fm.anyDefect() {
		return
	}
	fm.onTick = true
	fm.k.PostAfter(fm.period, fm.tickFn)
}

// tick runs once per AlarmPeriod while any AIS/LOS defect stands: for each
// affected VC (row-creation order — deterministic) the firmware builds one
// RDI cell and injects it into the transmit FIFO.
func (fm *faultMgr) tick() {
	fm.onTick = false
	if !fm.anyDefect() {
		return
	}
	for _, vc := range fm.order {
		a := fm.alarms[vc]
		if a == nil || (!a.aisOn && !a.losOn) {
			continue
		}
		fm.sendRDI(vc)
	}
	fm.onTick = true
	fm.k.PostAfter(fm.period, fm.tickFn)
}

// sendRDI builds and transmits one RDI cell upstream on vc, cycle-costed as
// a generation routine on the VC's receive engine (the engine that owns the
// alarm row).
func (fm *faultMgr) sendRDI(vc atm.VC) {
	e := fm.i.rx.engineFor(vc)
	fm.i.rx.engs[e].Run("oam_gen", oamGenInstr, func() {
		tmpl := oam.NewRDI(vc, fm.locID)
		cell := fm.i.pool.Get()
		*cell = *tmpl
		if !fm.i.tx.injectCell(cell) {
			fm.i.pool.Put(cell) // drop cause counted by injectCell
			return
		}
		fm.mRDITx.Inc()
	})
}

// FMStats is the fault-management snapshot.
type FMStats struct {
	AISRx  uint64 // AIS cells received
	RDIRx  uint64 // RDI cells received
	RDITx  uint64 // RDI cells generated and transmitted
	Events uint64 // declare/clear transitions reported to the host
	LOS    bool   // receive signal currently lost
}

func (fm *faultMgr) snapshot() FMStats {
	return FMStats{
		AISRx:  fm.mAISRx.Value(),
		RDIRx:  fm.mRDIRx.Value(),
		RDITx:  fm.mRDITx.Value(),
		Events: fm.mEvents.Value(),
		LOS:    fm.los,
	}
}

// openVCs returns the receiver's open connections in VC order, for
// deterministic link-scope iteration.
func (r *receiver) openVCs() []atm.VC {
	vcs := make([]atm.VC, 0, len(r.vcs))
	for _, st := range r.vcs {
		vcs = append(vcs, st.vc)
	}
	sort.Slice(vcs, func(a, b int) bool {
		if vcs[a].VPI != vcs[b].VPI {
			return vcs[a].VPI < vcs[b].VPI
		}
		return vcs[a].VCI < vcs[b].VCI
	})
	return vcs
}
