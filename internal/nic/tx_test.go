package nic

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// watchWire taps the rig's link to record (time, VC) of every cell.
type wireTap struct {
	at []sim.Time
	vc []atm.VC
}

func tapRig(r *rig) *wireTap {
	tap := &wireTap{}
	orig := r.link
	r.a.SetOutput(func(c *atm.Cell) {
		tap.at = append(tap.at, r.k.Now())
		tap.vc = append(tap.vc, c.Header.VC())
		orig.Send(c)
	})
	return tap
}

func TestSerialModeFinishesFramesInOrder(t *testing.T) {
	// Default (no interleave): all of frame 1's cells precede frame 2's,
	// even across VCs.
	r := newRig(t, nil)
	tap := tapRig(r)
	vcA, vcB := atm.VC{VCI: 1}, atm.VC{VCI: 2}
	for _, vc := range []atm.VC{vcA, vcB} {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	r.a.Send(vcA, pkt(2000), nil)
	r.a.Send(vcB, pkt(2000), nil)
	r.k.Run()
	seenB := false
	for _, vc := range tap.vc {
		if vc == vcB {
			seenB = true
		}
		if seenB && vc == vcA {
			t.Fatal("serial mode interleaved cells across VCs")
		}
	}
}

func TestInterleaveModeMixesVCs(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.InterleaveVCs = true })
	tap := tapRig(r)
	vcA, vcB := atm.VC{VCI: 1}, atm.VC{VCI: 2}
	for _, vc := range []atm.VC{vcA, vcB} {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	r.a.Send(vcA, pkt(4000), nil)
	r.a.Send(vcB, pkt(4000), nil)
	r.k.Run()
	// Cells must alternate at least once before either frame finishes.
	switches := 0
	for i := 1; i < len(tap.vc); i++ {
		if tap.vc[i] != tap.vc[i-1] {
			switches++
		}
	}
	if switches < 10 {
		t.Fatalf("only %d VC switches on the wire; frames not interleaved", switches)
	}
	// And both frames still reassemble intact.
	if len(r.received) != 2 {
		t.Fatalf("delivered %d of 2", len(r.received))
	}
	byVC := map[atm.VC][]byte{}
	for _, d := range r.received {
		byVC[d.VC] = d.SDU
	}
	if !bytes.Equal(byVC[vcA], pkt(4000)) || !bytes.Equal(byVC[vcB], pkt(4000)) {
		t.Fatal("interleaved frames corrupted")
	}
}

func TestInterleaveBoundsShortFrameLatency(t *testing.T) {
	// A short frame behind a 64 KiB bulk frame: serially it waits for all
	// 1366 cells; interleaved it finishes orders of magnitude sooner.
	measure := func(interleave bool) sim.Duration {
		r := newRig(t, func(cfg *Config) { cfg.InterleaveVCs = interleave })
		bulk, small := atm.VC{VCI: 1}, atm.VC{VCI: 2}
		for _, vc := range []atm.VC{bulk, small} {
			r.a.OpenVC(vc)
			r.b.OpenVC(vc)
		}
		var smallAt sim.Time
		r.b.OnReceive(func(d Delivered) {
			if d.VC == small {
				smallAt = d.At
			}
		})
		r.a.Send(bulk, pkt(65535), nil)
		r.a.Send(small, pkt(96), nil)
		r.k.Run()
		if smallAt == 0 {
			t.Fatal("small frame never delivered")
		}
		return smallAt
	}
	serial := measure(false)
	inter := measure(true)
	if inter >= serial/4 {
		t.Fatalf("interleaving: small frame at %v vs serial %v — no latency win", inter, serial)
	}
}

func TestPacingSpacesCells(t *testing.T) {
	r := newRig(t, nil)
	tap := tapRig(r)
	vc := atm.VC{VCI: 5}
	r.a.OpenVC(vc)
	r.b.OpenVC(vc)
	// 50k cells/s = 20 µs between cells — far slower than line rate.
	if err := r.a.SetPeakCellRate(vc, 50_000); err != nil {
		t.Fatal(err)
	}
	r.a.Send(vc, pkt(480), nil) // 11 cells
	r.k.Run()
	if len(tap.at) < 11 {
		t.Fatalf("%d cells on the wire", len(tap.at))
	}
	for i := 1; i < len(tap.at); i++ {
		gap := tap.at[i] - tap.at[i-1]
		if gap < 19_000 {
			t.Fatalf("cells %d-%d only %v apart; pacing violated", i-1, i, gap)
		}
	}
	// The packet still arrives intact.
	if len(r.received) != 1 || !bytes.Equal(r.received[0].SDU, pkt(480)) {
		t.Fatal("paced frame corrupted")
	}
}

func TestPacingThrottlesGoodput(t *testing.T) {
	r := newRig(t, nil)
	vc := atm.VC{VCI: 5}
	r.a.OpenVC(vc)
	r.b.OpenVC(vc)
	// 100k cells/s × 48 B = 38.4 Mb/s of SAR payload.
	r.a.SetPeakCellRate(vc, 100_000)
	deadline := sim.Time(20 * sim.Millisecond)
	var send func()
	send = func() {
		if r.k.Now() > deadline {
			return
		}
		r.a.Send(vc, pkt(9180), send)
	}
	send()
	send()
	r.k.RunUntil(deadline)
	got := units.ThroughputBps(int64(r.b.Stats().Rx.Bytes), deadline)
	if got > 40e6 {
		t.Fatalf("paced goodput %.1f Mb/s exceeds the 38.4 Mb/s bucket", got/1e6)
	}
	if got < 25e6 {
		t.Fatalf("paced goodput %.1f Mb/s far below the bucket; pacing over-throttles", got/1e6)
	}
	r.k.Run()
}

func TestPacingUnknownVC(t *testing.T) {
	r := newRig(t, nil)
	if err := r.a.SetPeakCellRate(atm.VC{VCI: 99}, 1000); !errors.Is(err, ErrUnknownVC) {
		t.Fatalf("err = %v", err)
	}
}

func TestPacedAndUnpacedShareTheLink(t *testing.T) {
	// Interleaved mode: a paced CBR flow keeps its spacing while a greedy
	// bulk flow soaks up the remaining slots.
	r := newRig(t, func(cfg *Config) { cfg.InterleaveVCs = true })
	tap := tapRig(r)
	cbr, bulk := atm.VC{VCI: 1}, atm.VC{VCI: 2}
	for _, vc := range []atm.VC{cbr, bulk} {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	r.a.SetPeakCellRate(cbr, 20_000) // 50 µs spacing
	r.a.Send(cbr, pkt(960), nil)     // 21 cells over ~1 ms
	r.a.Send(bulk, pkt(30000), nil)
	r.k.Run()
	var prev sim.Time = -1
	for i, vc := range tap.vc {
		if vc != cbr {
			continue
		}
		if prev >= 0 {
			if gap := tap.at[i] - prev; gap < 49_000 {
				t.Fatalf("CBR spacing %v violated under bulk load", gap)
			}
		}
		prev = tap.at[i]
	}
	if len(r.received) != 2 {
		t.Fatalf("delivered %d of 2", len(r.received))
	}
}

func TestCloseVCDropsPendingKeepsActive(t *testing.T) {
	r := newRig(t, nil)
	vc := atm.VC{VCI: 3}
	r.a.OpenVC(vc)
	r.b.OpenVC(vc)
	r.a.Send(vc, pkt(9180), nil)
	r.a.Send(vc, pkt(9180), nil) // queued behind
	r.k.RunUntil(500_000)        // frame 1 on the wire, frame 2 queued
	r.a.CloseVC(vc)
	r.k.Run()
	// Frame 1 drains to completion; frame 2 was dropped with the VC.
	if got := r.a.Stats().Tx.Packets; got != 1 {
		t.Fatalf("tx packets after close = %d, want 1", got)
	}
}

func TestInterleaveWithAAL34(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		cfg.InterleaveVCs = true
		cfg.AAL = aal.AAL34
	})
	vcA, vcB := atm.VC{VCI: 1}, atm.VC{VCI: 2}
	for _, vc := range []atm.VC{vcA, vcB} {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	r.a.Send(vcA, pkt(5000), nil)
	r.a.Send(vcB, pkt(3000), nil)
	r.k.Run()
	if len(r.received) != 2 {
		t.Fatalf("delivered %d of 2", len(r.received))
	}
	byVC := map[atm.VC][]byte{}
	for _, d := range r.received {
		byVC[d.VC] = d.SDU
	}
	if !bytes.Equal(byVC[vcA], pkt(5000)) || !bytes.Equal(byVC[vcB], pkt(3000)) {
		t.Fatal("AAL3/4 interleaved frames corrupted")
	}
}

func TestPacingWithMultiEngineRx(t *testing.T) {
	r := newRig(t, func(cfg *Config) {
		cfg.InterleaveVCs = true
		cfg.RxEngines = 2
	})
	vcs := []atm.VC{{VCI: 1}, {VCI: 2}, {VCI: 3}}
	for _, vc := range vcs {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
		r.a.SetPeakCellRate(vc, 80_000)
	}
	for _, vc := range vcs {
		r.a.Send(vc, pkt(2000), nil)
	}
	r.k.Run()
	if len(r.received) != 3 {
		t.Fatalf("delivered %d of 3", len(r.received))
	}
	for _, d := range r.received {
		if !bytes.Equal(d.SDU, pkt(2000)) {
			t.Fatal("payload corrupted with pacing + multi-engine")
		}
	}
}

func TestInterleaveManyVCsFairness(t *testing.T) {
	// 6 equal greedy VCs in interleave mode: delivered byte counts per VC
	// must be roughly equal (round-robin fairness).
	r := newRig(t, func(cfg *Config) { cfg.InterleaveVCs = true })
	var vcs []atm.VC
	for i := 0; i < 6; i++ {
		vc := atm.VC{VCI: uint16(10 + i)}
		vcs = append(vcs, vc)
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	bytesByVC := map[atm.VC]int{}
	r.b.OnReceive(func(d Delivered) { bytesByVC[d.VC] += len(d.SDU) })
	deadline := sim.Time(20 * sim.Millisecond)
	for _, vc := range vcs {
		vc := vc
		var send func()
		send = func() {
			if r.k.Now() > deadline {
				return
			}
			r.a.Send(vc, pkt(4000), send)
		}
		send()
	}
	r.k.Run()
	min, max := 1<<62, 0
	for _, vc := range vcs {
		n := bytesByVC[vc]
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Fatal("a VC was starved entirely")
	}
	if float64(max) > 1.5*float64(min) {
		t.Fatalf("unfair round-robin: min %d max %d bytes", min, max)
	}
}

func TestInterleavedPacingPerVC(t *testing.T) {
	// Interleaving and per-VC pacing compose: three VCs with different
	// peak rates share the wire, each VC's own cells honour its gap, and
	// the unpaced VC is not slowed by the paced ones.
	r := newRig(t, func(cfg *Config) { cfg.InterleaveVCs = true })
	tap := tapRig(r)
	vcSlow, vcFast, vcLine := atm.VC{VCI: 1}, atm.VC{VCI: 2}, atm.VC{VCI: 3}
	for _, vc := range []atm.VC{vcSlow, vcFast, vcLine} {
		r.a.OpenVC(vc)
		r.b.OpenVC(vc)
	}
	if err := r.a.SetPeakCellRate(vcSlow, 50_000); err != nil { // 20 µs gap
		t.Fatal(err)
	}
	if err := r.a.SetPeakCellRate(vcFast, 100_000); err != nil { // 10 µs gap
		t.Fatal(err)
	}
	r.a.Send(vcSlow, pkt(2000), nil)
	r.a.Send(vcFast, pkt(2000), nil)
	r.a.Send(vcLine, pkt(2000), nil)
	r.k.Run()

	// Pacing gates segmentation; individual wire gaps then compress when
	// a paced cell queues behind other VCs' cells in the shared TX FIFO
	// (the jitter CDVT exists for). The per-VC *mean* spacing across the
	// frame must still honour each VC's own gap.
	first := map[atm.VC]sim.Time{}
	lastAt := map[atm.VC]sim.Time{}
	count := map[atm.VC]int{}
	for i, vc := range tap.vc {
		if count[vc] == 0 {
			first[vc] = tap.at[i]
		}
		lastAt[vc] = tap.at[i]
		count[vc]++
	}
	meanGap := func(vc atm.VC) sim.Duration {
		return sim.Duration(lastAt[vc]-first[vc]) / sim.Duration(count[vc]-1)
	}
	if g := meanGap(vcSlow); g < 19_000 {
		t.Fatalf("slow VC mean gap %v, want >= 20µs pacing", g)
	}
	if g := meanGap(vcFast); g < 9_500 {
		t.Fatalf("fast VC mean gap %v, want >= 10µs pacing", g)
	}
	firstLine, lastLine := first[vcLine], lastAt[vcLine]
	// The unpaced VC's 42 cells must finish while the 20 µs VC (840 µs of
	// pacing) is still mid-frame — pacing one VC must not gate another.
	if lastLine-firstLine > 500_000 {
		t.Fatalf("line-rate VC stretched over %v by paced peers", lastLine-firstLine)
	}
	if len(r.received) != 3 {
		t.Fatalf("delivered %d of 3 interleaved paced frames", len(r.received))
	}
	for _, d := range r.received {
		if !bytes.Equal(d.SDU, pkt(2000)) {
			t.Fatalf("VC %v frame corrupted", d.VC)
		}
	}
}

func TestContractShapingPassesPolicer(t *testing.T) {
	// A VC shaped by SetContract must pass a policer enforcing the same
	// contract with zero non-conforming cells — the property E14 measures
	// end to end. CDVT covers the TX FIFO's cell-clock quantization.
	r := newRig(t, nil)
	vc := atm.VC{VCI: 6}
	r.a.OpenVC(vc)
	r.b.OpenVC(vc)
	ct := units.CellTime(r.a.Config().PayloadRate)
	contract := tm.VBRContract(100_000, 40_000, 20, 4*ct)
	if err := r.a.SetContract(vc, contract); err != nil {
		t.Fatal(err)
	}
	pol := tm.NewPolicer(contract)
	orig := r.link
	r.a.SetOutput(func(c *atm.Cell) {
		if v := pol.Police(r.k.Now(), c.Header.CLP); v != tm.Conform {
			t.Fatalf("shaped cell %d at %v: %v", pol.Stats().Cells, r.k.Now(), v)
		}
		orig.Send(c)
	})
	deadline := sim.Time(20 * sim.Millisecond)
	var send func()
	send = func() {
		if r.k.Now() > deadline {
			return
		}
		r.a.Send(vc, pkt(4000), send)
	}
	send()
	send()
	r.k.Run()
	if pol.Stats().Cells < 100 {
		t.Fatalf("only %d cells policed", pol.Stats().Cells)
	}
	// And the shaper throttles toward SCR over the long run: 40k cells/s
	// × 48 B = 15.36 Mb/s of SAR payload, plus the MBS bursts the
	// contract lets it reclaim during inter-frame host latency — but far
	// below what PCR alone (38.4 Mb/s) would allow.
	got := units.ThroughputBps(int64(r.b.Stats().Rx.Bytes), deadline)
	if got > 22e6 || got < 10e6 {
		t.Fatalf("contract-shaped goodput %.1f Mb/s, want near 15-18", got/1e6)
	}
}

func TestSetContractValidation(t *testing.T) {
	r := newRig(t, nil)
	vc := atm.VC{VCI: 7}
	if err := r.a.SetContract(vc, tm.CBRContract(1000, 0)); !errors.Is(err, ErrUnknownVC) {
		t.Fatalf("unknown VC: %v", err)
	}
	r.a.OpenVC(vc)
	bad := tm.TrafficContract{Class: tm.RtVBR, PCR: 100, SCR: 200, MBS: 2}
	if err := r.a.SetContract(vc, bad); err == nil {
		t.Fatal("invalid contract accepted")
	}
	if err := r.a.SetContract(vc, tm.CBRContract(1000, 0)); err != nil {
		t.Fatal(err)
	}
	// Zero-PCR contract removes shaping.
	if err := r.a.SetContract(vc, tm.TrafficContract{}); err != nil {
		t.Fatal(err)
	}
}
