package tm

import "fmt"

// ABRParams is the per-connection parameter set of the ABR closed loop
// (ATM Forum TM 4.0 §5.10.2): the rates the contract fixes plus the knobs
// that govern how fast the source chases the network's feedback. The
// zero-value fields are filled by Normalize; PCR is the only mandatory one.
type ABRParams struct {
	// PCR is the peak cell rate in cells/s: the ceiling ACR never exceeds.
	PCR float64
	// MCR is the minimum cell rate in cells/s: the floor ACR never drops
	// below, and the bandwidth the CAC reserves. Defaults to PCR/1000
	// (at least 1 cell/s) so the VC can never be starved to a standstill.
	MCR float64
	// ICR is the initial cell rate: where ACR starts before the first
	// backward RM cell arrives. Defaults to PCR/10, floored at MCR.
	ICR float64
	// Nrm is the RM-cell cadence: one forward RM cell per Nrm cells sent
	// (RM cells included). Defaults to 32 (the TM 4.0 default).
	Nrm int
	// RIF is the rate increase factor: additive increase per backward RM
	// cell without CI/NI is RIF×PCR. Defaults to 1/16.
	RIF float64
	// RDF is the rate decrease factor: a CI cell multiplies ACR by
	// (1 − RDF). Defaults to 1/16.
	RDF float64
}

// Normalize fills defaulted fields in place and returns the receiver.
func (p *ABRParams) Normalize() *ABRParams {
	if p.MCR == 0 {
		p.MCR = p.PCR / 1000
		if p.MCR < 1 {
			p.MCR = 1
		}
	}
	if p.ICR == 0 {
		p.ICR = p.PCR / 10
	}
	if p.ICR < p.MCR {
		p.ICR = p.MCR
	}
	if p.Nrm == 0 {
		p.Nrm = 32
	}
	if p.RIF == 0 {
		p.RIF = 1.0 / 16
	}
	if p.RDF == 0 {
		p.RDF = 1.0 / 16
	}
	return p
}

// Validate checks a normalized parameter set.
func (p *ABRParams) Validate() error {
	if p.PCR <= 0 {
		return fmt.Errorf("tm: abr: PCR %g must be > 0", p.PCR)
	}
	if p.MCR <= 0 || p.MCR > p.PCR {
		return fmt.Errorf("tm: abr: MCR %g outside (0, PCR=%g]", p.MCR, p.PCR)
	}
	if p.ICR < p.MCR || p.ICR > p.PCR {
		return fmt.Errorf("tm: abr: ICR %g outside [MCR=%g, PCR=%g]", p.ICR, p.MCR, p.PCR)
	}
	if p.Nrm < 2 {
		return fmt.Errorf("tm: abr: Nrm %d must be >= 2", p.Nrm)
	}
	if p.RIF <= 0 || p.RIF > 1 {
		return fmt.Errorf("tm: abr: RIF %g outside (0, 1]", p.RIF)
	}
	if p.RDF <= 0 || p.RDF > 1 {
		return fmt.Errorf("tm: abr: RDF %g outside (0, 1]", p.RDF)
	}
	return nil
}

// Contract returns the TrafficContract the parameter set admits under:
// class ABR, the PCR ceiling, the MCR reservation.
func (p *ABRParams) Contract() TrafficContract {
	return TrafficContract{Class: ABR, PCR: p.PCR, MCR: p.MCR}
}

// ABRSource holds one connection's allowed cell rate and applies the TM 4.0
// source rate rules to each backward RM cell. It is pure rate arithmetic —
// the NIC owns the shaper this steers.
type ABRSource struct {
	params ABRParams
	acr    float64
}

// NewABRSource starts a source at ICR. Params must be normalized and valid.
func NewABRSource(p ABRParams) *ABRSource {
	return &ABRSource{params: p, acr: p.ICR}
}

// ACR returns the current allowed cell rate in cells/s.
func (s *ABRSource) ACR() float64 { return s.acr }

// Params returns the parameter set.
func (s *ABRSource) Params() ABRParams { return s.params }

// Feedback applies one backward RM cell (TM 4.0 §5.10.6, source behaviour
// #8/#9): multiplicative decrease on CI, else additive increase unless NI,
// then clamp to the explicit rate and the contract band. Returns the new
// ACR.
func (s *ABRSource) Feedback(ci, ni bool, er float64) float64 {
	p := &s.params
	if ci {
		s.acr -= s.acr * p.RDF
	} else if !ni {
		s.acr += p.RIF * p.PCR
	}
	if er > 0 && s.acr > er {
		s.acr = er
	}
	if s.acr > p.PCR {
		s.acr = p.PCR
	}
	if s.acr < p.MCR {
		s.acr = p.MCR
	}
	return s.acr
}
