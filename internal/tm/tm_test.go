package tm

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestContractValidate(t *testing.T) {
	cases := []struct {
		name string
		c    TrafficContract
		ok   bool
	}{
		{"cbr", CBRContract(1000, 0), true},
		{"vbr", VBRContract(1000, 100, 10, 500), true},
		{"ubr", UBRContract(units.STS3cPayload), true},
		{"no pcr", TrafficContract{Class: UBR}, false},
		{"scr above pcr", TrafficContract{Class: RtVBR, PCR: 100, SCR: 200, MBS: 2}, false},
		{"scr without mbs", TrafficContract{Class: RtVBR, PCR: 100, SCR: 50}, false},
		{"mbs without scr", TrafficContract{Class: RtVBR, PCR: 100, MBS: 5}, false},
		{"negative cdvt", TrafficContract{Class: UBR, PCR: 100, CDVT: -1}, false},
		{"cbr with scr", TrafficContract{Class: CBR, PCR: 100, SCR: 50, MBS: 2}, false},
		{"bad class", TrafficContract{Class: ServiceClass(9), PCR: 100}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

func TestBurstTolerance(t *testing.T) {
	// PCR 1e6 c/s (T=1000ns), SCR 1e5 c/s (Ts=10000ns), MBS 5:
	// BT = (5-1)*(10000-1000) = 36000ns.
	c := VBRContract(1e6, 1e5, 5, 0)
	if got, want := c.BurstTolerance(), sim.Duration(36000); got != want {
		t.Fatalf("BurstTolerance = %v, want %v", got, want)
	}
	cbr := CBRContract(1e6, 0)
	if got := cbr.BurstTolerance(); got != 0 {
		t.Fatalf("CBR BurstTolerance = %v, want 0", got)
	}
}

// TestPolicerSingleBucket: cells at exactly 1/PCR conform; a cell arriving
// early by more than CDVT is discarded; within CDVT it conforms.
func TestPolicerSingleBucket(t *testing.T) {
	c := CBRContract(1e6, 100) // T = 1000ns, CDVT = 100ns
	p := NewPolicer(c)

	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		if v := p.Police(now, false); v != Conform {
			t.Fatalf("cell %d at exact spacing: %v, want conform", i, v)
		}
		now += 1000
	}
	// Next conforming slot is now; arrive 200ns early — outside CDVT.
	if v := p.Police(now-200, false); v != Discard {
		t.Fatalf("200ns early: %v, want discard", v)
	}
	// A discarded cell must not advance TAT: arriving 50ns early (inside
	// CDVT) still conforms.
	if v := p.Police(now-50, false); v != Conform {
		t.Fatalf("50ns early (inside CDVT): %v, want conform", v)
	}
	st := p.Stats()
	if st.Conformed != 11 || st.Discarded != 1 || st.Tagged != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPolicerDualBucket: MBS cells back-to-back at PCR conform; cell
// MBS+1 violates the sustained bucket.
func TestPolicerDualBucket(t *testing.T) {
	const mbs = 5
	c := VBRContract(1e6, 1e5, mbs, 0) // T=1000, Ts=10000, BT=36000
	p := NewPolicer(c)

	now := sim.Time(0)
	for i := 0; i < mbs; i++ {
		if v := p.Police(now, false); v != Conform {
			t.Fatalf("burst cell %d: %v, want conform", i, v)
		}
		now += 1000
	}
	// Cell mbs (6th), still at PCR spacing: sustained bucket is out of
	// tolerance. Without tagging it is discarded.
	if v := p.Police(now, false); v != Discard {
		t.Fatalf("cell past MBS: %v, want discard", v)
	}

	// With tagging enabled it is forwarded CLP=1 instead.
	p2 := NewPolicer(c)
	p2.TagSCR = true
	now = 0
	for i := 0; i < mbs; i++ {
		p2.Police(now, false)
		now += 1000
	}
	if v := p2.Police(now, false); v != TagCLP {
		t.Fatalf("cell past MBS with TagSCR: %v, want tag-clp", v)
	}
	// A cell that already carries CLP=1 is not re-tagged: discard.
	if v := p2.Police(now+1000, true); v != Discard {
		t.Fatalf("clp=1 cell past MBS: %v, want discard", v)
	}

	// After idling one full sustained period per burst cell, the burst
	// credit is back.
	now += sim.Time(mbs * 10000)
	for i := 0; i < mbs; i++ {
		if v := p2.Police(now, false); v != Conform {
			t.Fatalf("post-idle burst cell %d: %v, want conform", i, v)
		}
		now += 1000
	}
}

// TestShaperPassesOwnPolicer is the shaper/policer contract: a stream
// emitted at the shaper's NextEligible times passes a policer enforcing
// the same contract with zero non-conforming cells — even with no CDVT.
func TestShaperPassesOwnPolicer(t *testing.T) {
	for _, c := range []TrafficContract{
		CBRContract(353208, 0),
		VBRContract(353208, 35000, 12, 0),
		VBRContract(1e6, 9.7e5, 3, 0), // SCR close to PCR
	} {
		sh := NewShaper(c)
		p := NewPolicer(c)
		now := sim.Time(0)
		for i := 0; i < 10000; i++ {
			if v := p.Police(now, false); v != Conform {
				t.Fatalf("%v: cell %d at %v: %v, want conform", c, i, now, v)
			}
			next := sh.NextEligible(now)
			if next < now {
				t.Fatalf("%v: NextEligible went backwards: %v < %v", c, next, now)
			}
			now = next
		}
		if nc := p.Stats().NonConforming(); nc != 0 {
			t.Fatalf("%v: %d non-conforming cells from shaped stream", c, nc)
		}
	}
}

// TestShaperBurstThenSustain: a dual-bucket shaper lets MBS cells out at
// PCR spacing, then falls back to SCR spacing.
func TestShaperBurstThenSustain(t *testing.T) {
	const mbs = 5
	c := VBRContract(1e6, 1e5, mbs, 0) // T=1000, Ts=10000
	sh := NewShaper(c)
	now := sim.Time(0)
	var gaps []sim.Duration
	for i := 0; i < mbs+3; i++ {
		next := sh.NextEligible(now)
		gaps = append(gaps, sim.Duration(next-now))
		now = next
	}
	// First mbs-1 gaps are the peak increment; once the burst tolerance is
	// spent the gap is the sustained increment.
	for i, g := range gaps {
		if i < mbs-1 {
			if g != 1000 {
				t.Fatalf("gap %d = %v, want 1000 (PCR)", i, g)
			}
		} else if g != 10000 {
			t.Fatalf("gap %d = %v, want 10000 (SCR)", i, g)
		}
	}
}

func TestPoliceInstr(t *testing.T) {
	if PoliceInstr(false) <= 0 || PoliceInstr(true) <= PoliceInstr(false) {
		t.Fatalf("instruction budgets inconsistent: single=%d dual=%d",
			PoliceInstr(false), PoliceInstr(true))
	}
	if ShapeInstr(true) != PoliceInstr(true) {
		t.Fatalf("ShapeInstr != PoliceInstr")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Conform: "conform", TagCLP: "tag-clp", Discard: "discard",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
	if s := Verdict(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown verdict string %q", s)
	}
}

func TestCACAccounting(t *testing.T) {
	// Link: 100k cells/s equivalent. Use a synthetic rate.
	rate := units.BitRate(100_000 * 8 * 53) // exactly 100k cells/s
	cac := NewCAC(rate, 100)

	cbr := CBRContract(60_000, 0)
	if err := cac.Admit(cbr); err != nil {
		t.Fatalf("admit cbr: %v", err)
	}
	if got := cac.ReservedBandwidth(); got != 60_000 {
		t.Fatalf("reserved bw = %g, want 60000", got)
	}

	// VBR reserves SCR + MBS buffer.
	vbr := VBRContract(80_000, 30_000, 40, 0)
	if err := cac.Admit(vbr); err != nil {
		t.Fatalf("admit vbr: %v", err)
	}
	if got := cac.ReservedBandwidth(); got != 90_000 {
		t.Fatalf("reserved bw = %g, want 90000", got)
	}
	if got := cac.ReservedBuffer(); got != 40 {
		t.Fatalf("reserved buf = %d, want 40", got)
	}

	// Another CBR at 20k cells/s exceeds the remaining 10k: rejected.
	if err := cac.Admit(CBRContract(20_000, 0)); err == nil {
		t.Fatal("over-subscribing CBR admitted")
	}
	// A VBR whose MBS exceeds the remaining buffer: rejected.
	if err := cac.Admit(VBRContract(10_000, 5_000, 70, 0)); err == nil {
		t.Fatal("over-subscribing buffer admitted")
	}
	// UBR reserves nothing and fits while bandwidth remains.
	if err := cac.Admit(UBRContract(rate)); err != nil {
		t.Fatalf("admit ubr: %v", err)
	}
	if got := cac.Admitted(); got != 3 {
		t.Fatalf("admitted = %d, want 3", got)
	}

	// Release the VBR; the 20k CBR now fits.
	cac.Release(vbr)
	if err := cac.Admit(CBRContract(20_000, 0)); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	st := cac.Stats()
	if st.Admitted != 4 || st.Rejected != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCACRejectsUBRWhenSaturated(t *testing.T) {
	rate := units.BitRate(10_000 * 8 * 53)
	cac := NewCAC(rate, 100)
	if err := cac.Admit(CBRContract(10_000, 0)); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := cac.Admit(UBRContract(rate)); err == nil {
		t.Fatal("UBR admitted on a fully reserved link")
	}
}

func TestPolicerZeroAlloc(t *testing.T) {
	p := NewPolicer(VBRContract(1e6, 1e5, 5, 100))
	p.TagSCR = true
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		p.Police(now, false)
		now += 700
	})
	if allocs != 0 {
		t.Fatalf("Police allocates %v/op, want 0", allocs)
	}
	sh := NewShaper(VBRContract(1e6, 1e5, 5, 0))
	emit := sim.Time(0)
	allocs = testing.AllocsPerRun(1000, func() {
		emit = sh.NextEligible(emit)
	})
	if allocs != 0 {
		t.Fatalf("NextEligible allocates %v/op, want 0", allocs)
	}
}
