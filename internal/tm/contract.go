// Package tm is the traffic-management subsystem: the usage-parameter
// control layer Davie's interface architecture presumes the network runs.
// The board's per-VC pacing (the shaping half of UPC) only pays off if the
// network edge polices the same contract and the switches spend their
// buffers on conforming traffic — this package supplies those pieces:
//
//   - TrafficContract: the (service class, PCR, SCR, MBS, CDVT) tuple both
//     ends agree on, unifying the NIC's transmit shaping with the network's
//     ingress policing;
//   - Policer: the GCRA (virtual-scheduling leaky bucket) conformance test
//     of ITU-T I.371 / ATM Forum TM 4.0, single-bucket (PCR/CDVT) or
//     dual-bucket (PCR/CDVT + SCR/MBS), with conform / tag-CLP / discard
//     actions, cycle-costed like the NIC firmware;
//   - Shaper: the transmit-side dual of the policer — it computes departure
//     times such that the cell stream passes its own contract's policer
//     with zero non-conforming cells;
//   - CAC: connection admission control against per-link bandwidth and
//     buffer budgets.
//
// Like every hot-path model in this repository, conformance checks are
// plain integer arithmetic on pre-resolved state: no allocation, no map
// lookups, no floating point.
package tm

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// ServiceClass is the ATM service category a connection is contracted
// under. The classes map to switch scheduling priority: CBR drains first,
// rt-VBR second, then ABR, UBR last.
type ServiceClass uint8

const (
	// CBR is constant bit rate: the contract is PCR alone, policed tightly;
	// the network reserves PCR end to end (circuit emulation, voice).
	CBR ServiceClass = iota
	// RtVBR is real-time variable bit rate: PCR bounds the burst rate, SCR
	// the sustained rate, MBS the burst length (video, bursty real-time).
	RtVBR
	// ABR is available bit rate: the network guarantees MCR and the source
	// tracks the explicit rate the closed feedback loop (RM cells, ERICA)
	// hands back, so ABR traffic soaks up whatever CBR/VBR leave unused
	// without building standing queues the way UBR does.
	ABR
	// UBR is unspecified bit rate: no reservation, no throughput
	// commitment, first to be discarded under congestion (data).
	UBR

	numClasses
)

// NumClasses is the number of service classes (= switch priority levels).
const NumClasses = int(numClasses)

// String implements fmt.Stringer.
func (c ServiceClass) String() string {
	switch c {
	case CBR:
		return "cbr"
	case RtVBR:
		return "rt-vbr"
	case ABR:
		return "abr"
	case UBR:
		return "ubr"
	default:
		return fmt.Sprintf("ServiceClass(%d)", uint8(c))
	}
}

// TrafficContract is the traffic descriptor a connection is admitted,
// shaped and policed against. Rates are in cells per second — the unit the
// GCRA increments derive from; units.CellRate converts a payload BitRate.
type TrafficContract struct {
	// Class selects the service category (and the switch priority).
	Class ServiceClass
	// PCR is the peak cell rate in cells/s. Required for every class.
	PCR float64
	// SCR is the sustainable cell rate in cells/s (VBR only; 0 = none).
	SCR float64
	// MBS is the maximum burst size in cells the connection may emit
	// back-to-back at PCR while staying SCR-conforming (VBR only).
	MBS int
	// MCR is the minimum cell rate in cells/s the network commits to an
	// ABR connection: the floor the source never drops ACR below, and the
	// bandwidth the CAC reserves (ABR only; 0 elsewhere).
	MCR float64
	// CDVT is the cell-delay-variation tolerance the policer grants on the
	// peak bucket: the jitter budget for FIFO quantization and multiplexing
	// between the shaper and the policing point.
	CDVT sim.Duration
}

// Validate checks the contract's internal consistency.
func (c *TrafficContract) Validate() error {
	if c.Class >= numClasses {
		return fmt.Errorf("tm: unknown service class %d", uint8(c.Class))
	}
	if c.PCR <= 0 {
		return fmt.Errorf("tm: contract needs PCR > 0, got %g", c.PCR)
	}
	if c.SCR < 0 || c.SCR > c.PCR {
		return fmt.Errorf("tm: SCR %g outside (0, PCR=%g]", c.SCR, c.PCR)
	}
	if c.SCR > 0 && c.MBS < 1 {
		return fmt.Errorf("tm: SCR without MBS >= 1")
	}
	if c.SCR == 0 && c.MBS != 0 {
		return fmt.Errorf("tm: MBS %d without SCR", c.MBS)
	}
	if c.CDVT < 0 {
		return fmt.Errorf("tm: negative CDVT %v", c.CDVT)
	}
	if c.Class == CBR && c.SCR != 0 {
		return fmt.Errorf("tm: CBR contract carries an SCR; CBR is PCR-only")
	}
	if c.MCR < 0 || c.MCR > c.PCR {
		return fmt.Errorf("tm: MCR %g outside [0, PCR=%g]", c.MCR, c.PCR)
	}
	if c.MCR > 0 && c.Class != ABR {
		return fmt.Errorf("tm: MCR is an ABR parameter; class is %v", c.Class)
	}
	if c.Class == ABR && c.SCR != 0 {
		return fmt.Errorf("tm: ABR contract carries an SCR; ABR is PCR/MCR-only")
	}
	return nil
}

// Dual reports whether the contract needs the second (SCR/MBS) bucket.
func (c *TrafficContract) Dual() bool { return c.SCR > 0 }

// PeakIncrement returns the PCR bucket's GCRA increment T = 1/PCR.
func (c *TrafficContract) PeakIncrement() sim.Duration {
	return sim.Duration(1e9/c.PCR + 0.5)
}

// SustainedIncrement returns the SCR bucket's increment Ts = 1/SCR
// (0 when the contract has no SCR bucket).
func (c *TrafficContract) SustainedIncrement() sim.Duration {
	if c.SCR <= 0 {
		return 0
	}
	return sim.Duration(1e9/c.SCR + 0.5)
}

// BurstTolerance returns the SCR bucket's limit
// BT = (MBS-1)·(Ts − T): the slack that lets MBS cells leave back-to-back
// at PCR before the sustained bucket bites (TM 4.0 §4.4.2).
func (c *TrafficContract) BurstTolerance() sim.Duration {
	if !c.Dual() {
		return 0
	}
	d := c.SustainedIncrement() - c.PeakIncrement()
	if d < 0 {
		d = 0
	}
	return sim.Duration(c.MBS-1) * d
}

// String implements fmt.Stringer.
func (c TrafficContract) String() string {
	if c.Dual() {
		return fmt.Sprintf("%v pcr=%.0fc/s scr=%.0fc/s mbs=%d cdvt=%v",
			c.Class, c.PCR, c.SCR, c.MBS, c.CDVT)
	}
	if c.Class == ABR {
		return fmt.Sprintf("%v pcr=%.0fc/s mcr=%.0fc/s cdvt=%v",
			c.Class, c.PCR, c.MCR, c.CDVT)
	}
	return fmt.Sprintf("%v pcr=%.0fc/s cdvt=%v", c.Class, c.PCR, c.CDVT)
}

// CBRContract builds a PCR-only contract at the given cell rate.
func CBRContract(pcr float64, cdvt sim.Duration) TrafficContract {
	return TrafficContract{Class: CBR, PCR: pcr, CDVT: cdvt}
}

// VBRContract builds a dual-bucket rt-VBR contract.
func VBRContract(pcr, scr float64, mbs int, cdvt sim.Duration) TrafficContract {
	return TrafficContract{Class: RtVBR, PCR: pcr, SCR: scr, MBS: mbs, CDVT: cdvt}
}

// ABRContract builds an available-bit-rate contract: PCR is the ceiling the
// source may ever send at, MCR the floor the network commits to. The actual
// sending rate in between is the ACR the RM-cell feedback loop steers.
func ABRContract(pcr, mcr float64) TrafficContract {
	return TrafficContract{Class: ABR, PCR: pcr, MCR: mcr}
}

// UBRContract builds a best-effort contract whose PCR is the line rate —
// shaped nowhere, policed only against the raw link capacity.
func UBRContract(rate units.BitRate) TrafficContract {
	return TrafficContract{Class: UBR, PCR: units.CellRate(rate)}
}
