package tm

import (
	"testing"

	"repro/internal/sim"
)

func TestABRParamsNormalize(t *testing.T) {
	p := (&ABRParams{PCR: 100_000}).Normalize()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MCR != 100 || p.ICR != 10_000 || p.Nrm != 32 {
		t.Errorf("defaults: %+v", p)
	}
	if p.RIF != 1.0/16 || p.RDF != 1.0/16 {
		t.Errorf("factor defaults: %+v", p)
	}
	// ICR must be floored at MCR.
	p = (&ABRParams{PCR: 100, MCR: 50}).Normalize()
	if p.ICR != 50 {
		t.Errorf("ICR %g, want floored at MCR 50", p.ICR)
	}
}

func TestABRParamsValidate(t *testing.T) {
	bad := []ABRParams{
		{}, // no PCR
		{PCR: 100, MCR: 200, ICR: 100, Nrm: 32, RIF: 0.1, RDF: 0.1}, // MCR > PCR
		{PCR: 100, MCR: 10, ICR: 5, Nrm: 32, RIF: 0.1, RDF: 0.1},    // ICR < MCR
		{PCR: 100, MCR: 10, ICR: 50, Nrm: 1, RIF: 0.1, RDF: 0.1},    // Nrm < 2
		{PCR: 100, MCR: 10, ICR: 50, Nrm: 32, RIF: 2, RDF: 0.1},     // RIF > 1
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, p)
		}
	}
}

func TestABRContractAdmission(t *testing.T) {
	c := ABRContract(100_000, 5_000)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// MCR on a non-ABR class is a contract error.
	bad := TrafficContract{Class: CBR, PCR: 1000, MCR: 10}
	if err := bad.Validate(); err == nil {
		t.Error("CBR with MCR validated")
	}
	// CAC reserves MCR, not PCR: a link that could never carry both PCRs
	// still admits both MCRs.
	cac := NewCAC(0, 0)
	cac.linkCells = 12_000
	if err := cac.Admit(c); err != nil {
		t.Fatal(err)
	}
	if err := cac.Admit(c); err != nil {
		t.Fatal(err)
	}
	if got := cac.ReservedBandwidth(); got != 10_000 {
		t.Errorf("reserved %g, want 2×MCR = 10000", got)
	}
	third := ABRContract(100_000, 5_000)
	if err := cac.Admit(third); err == nil {
		t.Error("third MCR over budget admitted")
	}
}

func TestABRSourceFeedback(t *testing.T) {
	p := *(&ABRParams{PCR: 160_000, MCR: 1_000, ICR: 16_000}).Normalize()
	s := NewABRSource(p)
	if s.ACR() != 16_000 {
		t.Fatalf("start at %g, want ICR", s.ACR())
	}
	// No CI/NI: additive increase by RIF×PCR, clamped to ER.
	got := s.Feedback(false, false, 20_000)
	if got != 20_000 {
		t.Errorf("increase clamped to ER: %g, want 20000", got)
	}
	// NI holds.
	if got = s.Feedback(false, true, 100_000); got != 20_000 {
		t.Errorf("NI changed ACR to %g", got)
	}
	// CI: multiplicative decrease by RDF.
	want := 20_000 * (1 - p.RDF)
	if got = s.Feedback(true, false, 100_000); got != want {
		t.Errorf("CI decrease: %g, want %g", got, want)
	}
	// Repeated CI bottoms out at MCR.
	for i := 0; i < 200; i++ {
		got = s.Feedback(true, false, 100_000)
	}
	if got != p.MCR {
		t.Errorf("floor: %g, want MCR %g", got, p.MCR)
	}
	// Unbounded ER: increase tops out at PCR.
	for i := 0; i < 200; i++ {
		got = s.Feedback(false, false, 0)
	}
	if got != p.PCR {
		t.Errorf("ceiling: %g, want PCR %g", got, p.PCR)
	}
}

// TestShaperSetRateConformance is the satellite regression: a mid-flow rate
// change must hand the policing point a stream that conforms to the NEW
// rate from the first post-change cell — no credit windfall from a
// decrease, no stall from an increase.
func TestShaperSetRateConformance(t *testing.T) {
	const (
		r1 = 100_000.0 // 10 µs/cell
		r2 = 25_000.0  // 40 µs/cell
	)
	sh := NewShaper(TrafficContract{Class: ABR, PCR: r1, MCR: 100})
	// A policer at the new rate with one increment of CDVT: the slack any
	// conforming shaper is allowed.
	pol := NewPolicer(TrafficContract{Class: ABR, PCR: r2, MCR: 100,
		CDVT: sim.Duration(1e9 / r2)})

	// Emit a burst at r1, then step down to r2 mid-flow and keep emitting
	// at whatever the shaper grants. Every cell after the step must pass
	// the r2 policer.
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now = sh.NextEligible(now)
	}
	sh.SetRate(now, r2)
	if e := sh.Eligible(); e < now {
		t.Fatalf("Eligible went backwards: %v < now %v", e, now)
	}
	prev := now
	for i := 0; i < 100; i++ {
		next := sh.NextEligible(prev)
		if v := pol.Police(next, false); v != Conform {
			t.Fatalf("cell %d at %v: %v under new-rate policer (prev %v)",
				i, next, v, prev)
		}
		prev = next
	}
	// The achieved spacing must be the new interval, not the old.
	if gap := sim.Duration(1e9 / r2); prev < now+sim.Duration(99)*gap-sim.Duration(100) {
		t.Errorf("stream faster than new rate: 100 cells in %v, want >= %v",
			prev-now, sim.Duration(99)*gap)
	}

	// Step UP mid-debt: the outstanding debt must shrink proportionally so
	// the next cell is eligible within one new-rate interval — no stall at
	// the old spacing.
	sh2 := NewShaper(TrafficContract{Class: ABR, PCR: r2, MCR: 100})
	var tt sim.Time
	for i := 0; i < 10; i++ {
		tt = sh2.NextEligible(tt)
	}
	at := tt - sim.Duration(1e9/r2)/2 // mid-interval: half an inc of debt
	sh2.SetRate(at, r1)
	if e := sh2.Eligible(); e > at+sim.Duration(1e9/r1) {
		t.Errorf("rate increase stalled: eligible %v, now %v, new inc %v",
			e, at, sim.Duration(1e9/r1))
	}
	// ...but not a windfall either: the half-interval debt survives scaled.
	if e := sh2.Eligible(); e <= at {
		t.Errorf("rate increase granted windfall: eligible %v <= now %v", e, at)
	}
}

// TestShaperSetRateIdle pins that an idle VC (bucket at or behind now)
// earns nothing from a rate change.
func TestShaperSetRateIdle(t *testing.T) {
	sh := NewShaper(TrafficContract{Class: ABR, PCR: 10_000, MCR: 100})
	now := sim.Time(1_000_000)
	sh.SetRate(now, 50_000)
	if e := sh.Eligible(); e > now {
		t.Errorf("idle shaper owes %v after SetRate", e-now)
	}
	if got := sh.Contract().PCR; got != 50_000 {
		t.Errorf("contract PCR %g, want 50000", got)
	}
}
