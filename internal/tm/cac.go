package tm

import (
	"fmt"

	"repro/internal/units"
)

// CAC is connection admission control for one link: it decides whether a
// new contract fits the remaining bandwidth and buffer budgets before any
// cell flows, so the policers downstream only ever see admitted contracts.
//
// The reservation rule is the classic peak/sustained split:
//
//   - CBR reserves its PCR — the class gets circuit-like service, so the
//     link must carry the peak continuously;
//   - rt-VBR reserves its SCR of bandwidth plus MBS cells of buffer — the
//     burst above SCR is absorbed by the queue the MBS reservation holds;
//   - ABR reserves its MCR — the only rate the network commits to; the
//     head-room above it is steered by the RM-cell feedback loop, not held;
//   - UBR reserves nothing and is admitted while any bandwidth remains
//     unreserved (it scavenges leftovers and is first to be discarded).
type CAC struct {
	linkCells float64 // link capacity, cells/s
	bufCells  int     // buffer budget, cells

	reservedCells float64
	reservedBuf   int
	admitted      int

	stats CACStats
}

// CACStats counts admission decisions.
type CACStats struct {
	Admitted uint64
	Rejected uint64
}

// NewCAC builds an admission controller for a link of the given payload
// rate and a queue of bufCells cells.
func NewCAC(rate units.BitRate, bufCells int) *CAC {
	return &CAC{linkCells: units.CellRate(rate), bufCells: bufCells}
}

// demand returns the bandwidth (cells/s) and buffer (cells) a contract
// reserves.
func demand(c TrafficContract) (cells float64, buf int) {
	switch c.Class {
	case CBR:
		return c.PCR, 0
	case RtVBR:
		return c.SCR, c.MBS
	case ABR:
		return c.MCR, 0
	default: // UBR
		return 0, 0
	}
}

// Admit accepts or rejects the contract. On acceptance the contract's
// demand is reserved until Release is called with the same contract.
func (a *CAC) Admit(c TrafficContract) error {
	if err := c.Validate(); err != nil {
		a.stats.Rejected++
		return err
	}
	cells, buf := demand(c)
	if c.Class == UBR && a.reservedCells >= a.linkCells {
		a.stats.Rejected++
		return fmt.Errorf("tm: cac: link fully reserved, no capacity left for ubr")
	}
	if a.reservedCells+cells > a.linkCells {
		a.stats.Rejected++
		return fmt.Errorf("tm: cac: bandwidth %0.f + %.0f exceeds link %.0f cells/s",
			a.reservedCells, cells, a.linkCells)
	}
	if a.reservedBuf+buf > a.bufCells {
		a.stats.Rejected++
		return fmt.Errorf("tm: cac: buffer %d + %d exceeds budget %d cells",
			a.reservedBuf, buf, a.bufCells)
	}
	a.reservedCells += cells
	a.reservedBuf += buf
	a.admitted++
	a.stats.Admitted++
	return nil
}

// Release returns the contract's reservation to the pool.
func (a *CAC) Release(c TrafficContract) {
	cells, buf := demand(c)
	a.reservedCells -= cells
	a.reservedBuf -= buf
	if a.reservedCells < 0 {
		a.reservedCells = 0
	}
	if a.reservedBuf < 0 {
		a.reservedBuf = 0
	}
	if a.admitted > 0 {
		a.admitted--
	}
}

// Admitted returns the number of currently admitted connections.
func (a *CAC) Admitted() int { return a.admitted }

// ReservedBandwidth returns the reserved bandwidth in cells/s.
func (a *CAC) ReservedBandwidth() float64 { return a.reservedCells }

// ReservedBuffer returns the reserved buffer in cells.
func (a *CAC) ReservedBuffer() int { return a.reservedBuf }

// Stats returns the admission counters.
func (a *CAC) Stats() CACStats { return a.stats }
