package tm

import (
	"fmt"

	"repro/internal/sim"
)

// gcra is one virtual-scheduling leaky bucket (ITU-T I.371 Annex A): TAT is
// the theoretical arrival time of the next conforming cell, inc the
// per-cell increment (1/rate), limit the tolerance. A cell arriving at t is
// conforming iff t >= TAT - limit; on conformance TAT advances by inc from
// max(t, TAT). The zero value is an empty bucket (first cell conforms).
type gcra struct {
	tat   sim.Time
	inc   sim.Duration
	limit sim.Duration
}

// conforms runs the conformance test WITHOUT committing the state update.
func (g *gcra) conforms(t sim.Time) bool {
	return t >= g.tat-g.limit
}

// commit advances TAT for a cell accepted at t.
func (g *gcra) commit(t sim.Time) {
	if t > g.tat {
		g.tat = t
	}
	g.tat += g.inc
}

// Verdict is the policer's decision for one cell.
type Verdict uint8

const (
	// Conform: the cell honours the contract; forward unchanged.
	Conform Verdict = iota
	// TagCLP: the cell violates the sustained bucket; forward with CLP=1
	// so it is first to die at a congested queue (the TM 4.0 tagging
	// option for SCR0+1 conformance).
	TagCLP
	// Discard: the cell violates the peak bucket (or tagging is off);
	// drop it at the policing point.
	Discard
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Conform:
		return "conform"
	case TagCLP:
		return "tag-clp"
	case Discard:
		return "discard"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// PolicerStats counts one policer's decisions.
type PolicerStats struct {
	Cells     uint64 // cells offered
	Conformed uint64
	Tagged    uint64 // forwarded with CLP demoted to 1
	Discarded uint64
}

// NonConforming returns tagged + discarded.
func (s PolicerStats) NonConforming() uint64 { return s.Tagged + s.Discarded }

// Policer enforces one connection's TrafficContract at a network ingress
// (UPC). It runs the single- or dual-bucket GCRA per cell:
//
//   - bucket 1 polices PCR with tolerance CDVT; violation => Discard
//     (peak violations are never tagged — TM 4.0 gives PCR policing no
//     tagging option for CLP=0+1 flows);
//   - bucket 2 (contracts with SCR) polices SCR with tolerance BT+CDVT;
//     violation => TagCLP when TagSCR is set, else Discard. Cells already
//     carrying CLP=1 are not re-tagged: an SCR violation discards them
//     (they spent the tagged budget upstream).
//
// The conformance check is pure integer compare/add on two buckets —
// the hardware UPC table walk of the era — and allocates nothing
// (pinned by metrics.TestHotPathAllocs).
type Policer struct {
	contract TrafficContract
	peak     gcra
	sust     gcra
	dual     bool
	// TagSCR selects the tagging option for sustained-bucket violations:
	// demote CLP and forward instead of discarding.
	TagSCR bool

	stats PolicerStats
}

// NewPolicer builds a policer for the contract. The contract must be valid.
func NewPolicer(c TrafficContract) *Policer {
	if err := c.Validate(); err != nil {
		panic("tm: " + err.Error())
	}
	p := &Policer{
		contract: c,
		peak:     gcra{inc: c.PeakIncrement(), limit: c.CDVT},
		dual:     c.Dual(),
	}
	if p.dual {
		p.sust = gcra{inc: c.SustainedIncrement(), limit: c.BurstTolerance() + c.CDVT}
	}
	return p
}

// Contract returns the contract being enforced.
func (p *Policer) Contract() TrafficContract { return p.contract }

// Stats returns the decision counters.
func (p *Policer) Stats() PolicerStats { return p.stats }

// Police runs the conformance test for one cell arriving at time t with
// the given CLP bit, and returns the action. Buckets advance only for
// cells that are forwarded (conforming or tagged): a discarded cell must
// not consume contract capacity, or a violator could starve its own
// conforming traffic.
func (p *Policer) Police(t sim.Time, clp bool) Verdict {
	p.stats.Cells++
	if !p.peak.conforms(t) {
		p.stats.Discarded++
		return Discard
	}
	if p.dual && !p.sust.conforms(t) {
		if p.TagSCR && !clp {
			p.peak.commit(t)
			p.stats.Tagged++
			return TagCLP
		}
		p.stats.Discarded++
		return Discard
	}
	p.peak.commit(t)
	if p.dual {
		p.sust.commit(t)
	}
	p.stats.Conformed++
	return Conform
}

// Firmware instruction budgets for the conformance check, counted the same
// way as internal/nic/firmware.go (i960-class pseudo-code, register ops and
// loads/stores cost 1; see that file for conventions). A switch line card
// or NIC running UPC in firmware executes, per cell:
//
//	ld   vc.tat1, r4        ; 1   peak bucket TAT
//	sub  r4, now, r5        ; 1   slack = now - (TAT - L): L folded at setup
//	blt  violate            ; 1
//	cmp/sel max(now,TAT)    ; 2
//	add  inc1, r4           ; 1
//	st   r4, vc.tat1        ; 1
//	bump conform counter    ; 1
const policeInstr = 8

// policeDualExtra — the second (SCR/MBS) bucket repeats the walk with its
// own TAT/limit/increment and the CLP-tag decision:
//
//	ld   vc.tat2, r6        ; 1
//	sub/cmp/branch          ; 3
//	sel  max / add / st     ; 3
//	tst  clp, set tag       ; 2
const policeDualExtra = 9

// PoliceInstr returns the per-cell instruction budget of the conformance
// check (8 for single-bucket contracts, 17 for dual) — the number a cycle
// budget (experiment E1/E2 style) charges a firmware UPC implementation.
func PoliceInstr(dual bool) int {
	if dual {
		return policeInstr + policeDualExtra
	}
	return policeInstr
}

// ShapeInstr is the transmit-side twin: updating the shaping TATs and
// computing the next eligible slot costs the same bucket walk as policing
// (both buckets are always maintained; single-bucket contracts skip the
// second walk exactly as the policer does).
func ShapeInstr(dual bool) int { return PoliceInstr(dual) }

// Shaper computes conforming departure times for a connection's own
// contract: the transmit-side dual of the Policer, run by the NIC's
// segmentation engine (Interface.SetContract). After each cell is emitted,
// NextEligible returns the earliest time the next cell may leave such that
// a policer enforcing the same contract sees zero non-conforming cells —
// cells leave at PCR until the sustained bucket's burst tolerance is
// spent, then at SCR. The shaper deliberately leaves the policer's CDVT
// margin unspent: that budget absorbs the downstream FIFO and
// multiplexing jitter the shaper cannot see.
type Shaper struct {
	contract TrafficContract
	peak     gcra
	sust     gcra
	dual     bool
}

// NewShaper builds a shaper for the contract. The contract must be valid.
func NewShaper(c TrafficContract) *Shaper {
	if err := c.Validate(); err != nil {
		panic("tm: " + err.Error())
	}
	s := &Shaper{
		contract: c,
		peak:     gcra{inc: c.PeakIncrement()},
		dual:     c.Dual(),
	}
	if s.dual {
		// The shaper grants itself the full burst tolerance (that is what
		// MBS promises the source) but none of the CDVT.
		s.sust = gcra{inc: c.SustainedIncrement(), limit: c.BurstTolerance()}
	}
	return s
}

// Contract returns the contract being shaped to.
func (s *Shaper) Contract() TrafficContract { return s.contract }

// NextEligible records a cell emitted at time t and returns the earliest
// departure time of the next cell. Allocation-free.
func (s *Shaper) NextEligible(t sim.Time) sim.Time {
	s.peak.commit(t)
	s.sust.commit(t) // harmless when !dual: inc 0
	next := s.peak.tat
	if s.dual {
		if e := s.sust.tat - s.sust.limit; e > next {
			next = e
		}
	}
	return next
}

// Eligible returns the earliest departure time of the next cell without
// recording an emission — the value the last NextEligible returned, under
// whatever rate is current now.
func (s *Shaper) Eligible() sim.Time {
	next := s.peak.tat
	if s.dual {
		if e := s.sust.tat - s.sust.limit; e > next {
			next = e
		}
	}
	return next
}

// SetRate re-targets the peak bucket to a new rate mid-flow — the ACR
// adjustment the ABR source rules need on every backward RM cell. The
// bucket's outstanding debt is re-derived, not merely re-priced: whatever
// fraction of one emission interval the VC still owed at the old rate, it
// owes the same fraction of the new interval. Concretely, with the bucket
// ahead of now by d = TAT − now,
//
//	TAT' = now + d × (inc_new / inc_old)
//
// Scaling (rather than keeping TAT) means a rate increase takes effect
// within one cell slot instead of stalling until the old slow TAT drains;
// re-deriving (rather than resetting TAT = now) means a rate decrease
// cannot hand the VC a credit windfall that lets it burst at the old rate
// one last time. A bucket at or behind now stays where it is — an idle VC
// earns nothing from a rate change. Dual-bucket (SCR) shapers keep their
// sustained bucket untouched: ABR contracts are single-bucket.
func (s *Shaper) SetRate(now sim.Time, rate float64) {
	if rate <= 0 {
		panic("tm: Shaper.SetRate needs rate > 0")
	}
	newInc := sim.Duration(1e9/rate + 0.5)
	if old := s.peak.inc; s.peak.tat > now && old > 0 {
		debt := float64(s.peak.tat - now)
		s.peak.tat = now + sim.Duration(debt*float64(newInc)/float64(old)+0.5)
	}
	s.peak.inc = newInc
	s.contract.PCR = rate
}
