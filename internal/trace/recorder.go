package trace

import (
	"sort"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Kind classifies one recorded span event.
type Kind uint8

const (
	// KindEnter marks a cell entering a stage (pushed into a FIFO, offered
	// to a wire).
	KindEnter Kind = iota
	// KindExit marks the same cell leaving the stage. Enter/Exit pairs
	// match in FIFO order per (stage, VC) — exact on the order-preserving
	// stages this simulator models.
	KindExit
	// KindPoint is an instantaneous boundary crossing (host delivery).
	KindPoint
	// KindDrop is a cell lost inside the stage, with its cause.
	KindDrop
)

func (k Kind) String() string {
	switch k {
	case KindEnter:
		return "enter"
	case KindExit:
		return "exit"
	case KindPoint:
		return "point"
	case KindDrop:
		return "drop"
	}
	return "?"
}

// StageID indexes the recorder's stage table.
type StageID uint16

// Event is one entry in the flight recorder's ring: which stage, what
// happened, when, and to which connection's cell. Events are compact value
// records — the cell itself is long gone by the time anyone reads them.
type Event struct {
	At    sim.Time
	VC    atm.VC
	Stage StageID
	Kind  Kind
	Cause metrics.DropCause // valid when Kind == KindDrop

	// Count/Stride compact a burst: an entry with Count = N > 1 stands for
	// N per-cell events of the same (stage, VC, kind) at times At, At+Stride,
	// …, At+(N-1)·Stride. Events() expands compacted entries, so every reader
	// sees the same per-cell stream a serial run records; only the ring's
	// internal occupancy (one slot per burst instead of per cell) and
	// therefore its eviction horizon differ. Count 0 and 1 both mean a plain
	// single-cell entry.
	Count  uint32
	Stride sim.Duration
}

type stageMeta struct {
	Node  string // the owning node ("a", "sw.port1", "link.ab")
	Stage string // the stage within it ("tx.fifo", "wire", "queue")
}

// Recorder is the cell-journey flight recorder: a fixed-size ring of span
// events fed by StageSpan handles installed at every CellPort hop. The ring
// keeps the LAST Capacity events (a flight recorder remembers the crash, not
// the takeoff); Evicted counts what wraparound overwrote.
//
// The discipline mirrors internal/metrics instruments: a nil *Recorder hands
// out nil *StageSpan handles, and every StageSpan method is a no-op on a nil
// receiver — so a datapath wired for tracing but running without a recorder
// pays one pointer test per hop and allocates nothing.
//
// A Recorder belongs to one kernel's world and is not goroutine-safe;
// parallel sweeps give each world its own recorder, like registries.
type Recorder struct {
	k       *sim.Kernel
	ring    []Event
	next    int
	wrapped bool
	evicted uint64
	enabled bool

	sampleN  uint32            // record every Nth cell per (stage, VC); 0/1 = all
	vcFilter func(atm.VC) bool // nil = all VCs
	stages   []stageMeta       // indexed by StageID
	byName   map[string]*StageSpan
}

// NewRecorder builds a recorder on kernel k holding the last capacity
// events. It starts enabled; Enable(false) freezes it without detaching the
// installed spans.
func NewRecorder(k *sim.Kernel, capacity int) *Recorder {
	if capacity < 0 {
		capacity = 0
	}
	return &Recorder{
		k:       k,
		ring:    make([]Event, capacity),
		enabled: true,
		byName:  make(map[string]*StageSpan),
	}
}

// Enable turns recording on or off. Installed spans stay wired; while
// disabled they cost one branch per hop and record nothing.
func (r *Recorder) Enable(on bool) { r.enabled = on }

// Enabled reports whether events are currently recorded.
func (r *Recorder) Enabled() bool { return r.enabled }

// SampleCells records only every nth cell per (stage, VC) — both ends of a
// span sample by per-VC count, so the kth recorded Enter still matches the
// kth recorded Exit on a FIFO stage. n <= 1 records everything. Drops are
// always recorded: sampling thins the healthy stream, never the losses.
func (r *Recorder) SampleCells(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.sampleN = uint32(n)
}

// SampleVCs records only 1-in-n connections, chosen by a deterministic hash
// of the VC identifier. n <= 1 records every VC.
func (r *Recorder) SampleVCs(n int) {
	if r == nil {
		return
	}
	if n <= 1 {
		r.vcFilter = nil
		return
	}
	un := uint32(n)
	r.vcFilter = func(vc atm.VC) bool {
		return (uint32(vc.VPI)<<16|uint32(vc.VCI))%un == 0
	}
}

// SetVCFilter installs an arbitrary connection filter (nil = all VCs).
func (r *Recorder) SetVCFilter(f func(atm.VC) bool) {
	if r == nil {
		return
	}
	r.vcFilter = f
}

// Stage registers (or returns the existing) span handle for one stage of
// one node. The handle is what datapath code calls per cell; registration
// order defines StageID order, so builders that register in spec order get
// deterministic exports. A nil recorder returns a nil handle, which is the
// zero-cost disabled form.
func (r *Recorder) Stage(node, stage string) *StageSpan {
	if r == nil {
		return nil
	}
	key := node + "\x00" + stage
	if s, ok := r.byName[key]; ok {
		return s
	}
	s := &StageSpan{r: r, id: StageID(len(r.stages))}
	r.stages = append(r.stages, stageMeta{Node: node, Stage: stage})
	r.byName[key] = s
	return s
}

// StageName returns the (node, stage) pair behind an id.
func (r *Recorder) StageName(id StageID) (node, stage string) {
	m := r.stages[id]
	return m.Node, m.Stage
}

// Stages returns the number of registered stages.
func (r *Recorder) Stages() int { return len(r.stages) }

// push appends one event, evicting the oldest when the ring is full.
func (r *Recorder) push(ev Event) {
	if len(r.ring) == 0 {
		return
	}
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	if r.wrapped {
		r.evicted++
	}
	r.ring[r.next] = ev
	r.next++
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r.wrapped {
		return len(r.ring)
	}
	return r.next
}

// Evicted reports events overwritten by wraparound: non-zero means Events
// is the most recent window, not the whole journey.
func (r *Recorder) Evicted() uint64 { return r.evicted }

// Events returns the recorded events oldest-first, with compacted burst
// entries expanded to their per-cell form (Count folded back to 1).
func (r *Recorder) Events() []Event {
	var raw []Event
	if !r.wrapped {
		raw = r.ring[:r.next]
	} else {
		raw = make([]Event, 0, len(r.ring))
		raw = append(raw, r.ring[r.next:]...)
		raw = append(raw, r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(raw))
	for _, ev := range raw {
		if ev.Count <= 1 {
			ev.Count, ev.Stride = 0, 0
			out = append(out, ev)
			continue
		}
		n, stride := ev.Count, ev.Stride
		ev.Count, ev.Stride = 0, 0
		for i := uint32(0); i < n; i++ {
			e := ev
			e.At += sim.Time(i) * stride
			out = append(out, e)
		}
	}
	return out
}

// Reset clears the ring and eviction accounting; stage registrations and
// sampling state survive, so a recorder can be reused between runs.
func (r *Recorder) Reset() {
	r.next = 0
	r.wrapped = false
	r.evicted = 0
	for _, s := range r.byName {
		s.in, s.out = nil, nil
	}
}

// StageSpan is the per-stage handle the datapath calls: Enter when a cell
// comes under the stage's control, Exit when it leaves, Drop when the stage
// loses it, Point for instantaneous boundaries. All methods are no-ops on a
// nil receiver and allocation-free on the recording path.
type StageSpan struct {
	r  *Recorder
	id StageID

	// Per-VC cell counters for SampleCells; allocated lazily only when
	// cell sampling is active, so the default path never touches a map.
	in  map[atm.VC]uint32
	out map[atm.VC]uint32
}

// admit applies the VC filter and (for paired kinds) per-VC cell sampling.
func (s *StageSpan) admit(vc atm.VC, m *map[atm.VC]uint32) bool {
	r := s.r
	if r.vcFilter != nil && !r.vcFilter(vc) {
		return false
	}
	if r.sampleN > 1 {
		if *m == nil {
			*m = make(map[atm.VC]uint32)
		}
		n := (*m)[vc]
		(*m)[vc] = n + 1
		return n%r.sampleN == 0
	}
	return true
}

// Enter records a cell entering the stage.
func (s *StageSpan) Enter(vc atm.VC) {
	if s == nil || !s.r.enabled {
		return
	}
	if !s.admit(vc, &s.in) {
		return
	}
	s.r.push(Event{At: s.r.k.Now(), VC: vc, Stage: s.id, Kind: KindEnter})
}

// Exit records the cell leaving the stage.
func (s *StageSpan) Exit(vc atm.VC) {
	if s == nil || !s.r.enabled {
		return
	}
	if !s.admit(vc, &s.out) {
		return
	}
	s.r.push(Event{At: s.r.k.Now(), VC: vc, Stage: s.id, Kind: KindExit})
}

// Point records an instantaneous boundary crossing.
func (s *StageSpan) Point(vc atm.VC) {
	if s == nil || !s.r.enabled {
		return
	}
	if !s.admit(vc, &s.in) {
		return
	}
	s.r.push(Event{At: s.r.k.Now(), VC: vc, Stage: s.id, Kind: KindPoint})
}

// Drop records a cell the stage lost, with its cause. Drops bypass cell
// sampling (losses are the events a flight recorder exists for) but still
// honor the VC filter.
func (s *StageSpan) Drop(vc atm.VC, cause metrics.DropCause) {
	s.DropAt(0, vc, cause)
}

// DropAt records a drop with an explicit timestamp — the batched link path
// draws all of a burst's loss outcomes in one event, so the drop's wire time
// (the cell's slot, not the event's kernel-now) must be supplied. at = 0
// means kernel-now.
func (s *StageSpan) DropAt(at sim.Time, vc atm.VC, cause metrics.DropCause) {
	if s == nil || !s.r.enabled {
		return
	}
	if s.r.vcFilter != nil && !s.r.vcFilter(vc) {
		return
	}
	if at == 0 {
		at = s.r.k.Now()
	}
	s.r.push(Event{At: at, VC: vc, Stage: s.id, Kind: KindDrop, Cause: cause})
}

// EnterBurst records every cell of a burst entering the stage, at the
// burst's arithmetic per-cell times. Runs of consecutive same-VC cells
// compact to one ring entry (Count/Stride); Events() expands them back, so
// downstream analysis sees exactly the per-cell stream a serial producer
// records. When cell sampling or VC filtering is active the compact form
// cannot honor per-cell admission, so the span falls back to per-cell
// recording with explicit timestamps.
func (s *StageSpan) EnterBurst(b *atm.CellBurst) {
	if s == nil || !s.r.enabled {
		return
	}
	s.burst(b, KindEnter, &s.in)
}

// ExitBurst records every cell of a burst leaving the stage; see EnterBurst.
func (s *StageSpan) ExitBurst(b *atm.CellBurst) {
	if s == nil || !s.r.enabled {
		return
	}
	s.burst(b, KindExit, &s.out)
}

func (s *StageSpan) burst(b *atm.CellBurst, kind Kind, m *map[atm.VC]uint32) {
	r := s.r
	if r.sampleN > 1 || r.vcFilter != nil {
		for i, c := range b.Cells {
			if c == nil {
				continue
			}
			vc := c.Header.VC()
			if !s.admit(vc, m) {
				continue
			}
			r.push(Event{At: sim.Time(b.At(i)), VC: vc, Stage: s.id, Kind: kind})
		}
		return
	}
	cells := b.Cells
	for i := 0; i < len(cells); {
		if cells[i] == nil {
			i++
			continue
		}
		vc := cells[i].Header.VC()
		j := i + 1
		for j < len(cells) && cells[j] != nil && cells[j].Header.VC() == vc {
			j++
		}
		r.push(Event{At: sim.Time(b.At(i)), VC: vc, Stage: s.id, Kind: kind,
			Count: uint32(j - i), Stride: sim.Duration(b.Stride)})
		i = j
	}
}

// Span is one matched Enter/Exit pair: a cell's residency in a stage.
type Span struct {
	Stage StageID
	VC    atm.VC
	Start sim.Time
	End   sim.Time
}

type spanKey struct {
	stage StageID
	vc    atm.VC
}

// Spans pairs the ring's Enter/Exit events per (stage, VC) in FIFO order
// and returns the completed residency spans in end-time order, plus the
// count of Exit events whose Enter was missing (evicted by wraparound, or a
// cell lost mid-stage on a lossy wire — the FIFO match then skews, exactly
// as with Timed).
func (r *Recorder) Spans() (spans []Span, unmatched int) {
	open := make(map[spanKey][]sim.Time)
	for _, ev := range r.Events() {
		key := spanKey{ev.Stage, ev.VC}
		switch ev.Kind {
		case KindEnter:
			open[key] = append(open[key], ev.At)
		case KindExit:
			q := open[key]
			if len(q) == 0 {
				unmatched++
				continue
			}
			spans = append(spans, Span{Stage: ev.Stage, VC: ev.VC, Start: q[0], End: ev.At})
			open[key] = q[1:]
		}
	}
	return spans, unmatched
}

// StageStat is one stage's residency summary for the attribution report.
type StageStat struct {
	Node, Stage string
	Count       int // matched spans
	Drops       int // recorded drop events
	Mean        sim.Duration
	P50, P99    sim.Duration
	Max         sim.Duration
	Total       sim.Duration // sum of residencies
}

// Residency aggregates the recorded spans into per-stage residency
// statistics, one log-linear histogram per stage (the same buckets the
// metrics registry uses), returned in stage-registration order.
func (r *Recorder) Residency() []StageStat {
	spans, _ := r.Spans()
	reg := metrics.NewRegistry()
	hists := make([]*metrics.Histogram, len(r.stages))
	stats := make([]StageStat, len(r.stages))
	for id, m := range r.stages {
		stats[id] = StageStat{Node: m.Node, Stage: m.Stage}
		hists[id] = reg.Histogram(m.Node + "." + m.Stage)
	}
	for _, sp := range spans {
		d := sp.End - sp.Start
		hists[sp.Stage].Observe(d)
		stats[sp.Stage].Count++
		stats[sp.Stage].Total += d
	}
	for _, ev := range r.Events() {
		if ev.Kind == KindDrop {
			stats[ev.Stage].Drops++
		}
	}
	for id := range stats {
		h := hists[id]
		if h.Count() == 0 {
			continue
		}
		stats[id].Mean = h.Mean()
		stats[id].P50 = h.Quantile(0.50)
		stats[id].P99 = h.Quantile(0.99)
		stats[id].Max = h.Max()
	}
	return stats
}

// nodeOrder returns the distinct node names in registration order — the
// deterministic pid assignment the Perfetto export uses.
func (r *Recorder) nodeOrder() []string {
	seen := make(map[string]bool)
	var nodes []string
	for _, m := range r.stages {
		if !seen[m.Node] {
			seen[m.Node] = true
			nodes = append(nodes, m.Node)
		}
	}
	return nodes
}

// SortSpans orders spans by (start, stage, vc) — the deterministic order the
// exports use, and the order mode-equivalence tests compare in (burst
// compaction preserves every span but can permute emission order between
// keys).
func SortSpans(spans []Span) { sortSpansByStart(spans) }

// sortSpansByStart orders spans (start, stage, vc) for deterministic export.
func sortSpansByStart(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Stage != spans[j].Stage {
			return spans[i].Stage < spans[j].Stage
		}
		if spans[i].VC.VPI != spans[j].VC.VPI {
			return spans[i].VC.VPI < spans[j].VC.VPI
		}
		if spans[i].VC.VCI != spans[j].VC.VCI {
			return spans[i].VC.VCI < spans[j].VC.VCI
		}
		// Cells of one VC entering a stage in the same event (a frame pull)
		// share a Start; without the End tie-break their export order would
		// be whatever sort.Slice's unstable sort left behind.
		return spans[i].End < spans[j].End
	})
}
