package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/atm"
)

// perfettoEvent is one Chrome trace-event JSON record. The format is the
// lingua franca of timeline viewers: Perfetto and chrome://tracing both load
// it directly. Timestamps and durations are microseconds (float, so the
// nanosecond simulation clock survives); pid groups a node's tracks, tid is
// one stage's track within it.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WriteTraceJSON exports the recorded journey as Chrome trace-event JSON:
// one process per node, one thread track per stage, an "X" complete event
// per matched Enter/Exit residency span, and instant events for drops and
// points. Output is deterministic: pids follow stage-registration order and
// events are sorted by (start, stage, vc).
func (r *Recorder) WriteTraceJSON(w io.Writer) error {
	nodes := r.nodeOrder()
	pidOf := make(map[string]int, len(nodes))
	for i, n := range nodes {
		pidOf[n] = i + 1
	}

	var evs []perfettoEvent
	// Metadata first: name every process (node) and thread (stage track).
	for _, n := range nodes {
		evs = append(evs, perfettoEvent{
			Name: "process_name", Phase: "M", Pid: pidOf[n],
			Args: map[string]any{"name": n},
		})
	}
	for id, m := range r.stages {
		evs = append(evs, perfettoEvent{
			Name: "thread_name", Phase: "M", Pid: pidOf[m.Node], Tid: id + 1,
			Args: map[string]any{"name": m.Stage},
		})
	}

	spans, _ := r.Spans()
	sortSpansByStart(spans)
	for _, sp := range spans {
		m := r.stages[sp.Stage]
		dur := float64(sp.End-sp.Start) / 1000
		evs = append(evs, perfettoEvent{
			Name: m.Stage, Phase: "X", Cat: "cell",
			Ts: float64(sp.Start) / 1000, Dur: &dur,
			Pid: pidOf[m.Node], Tid: int(sp.Stage) + 1,
			Args: map[string]any{"vc": vcString(sp.VC)},
		})
	}
	for _, ev := range r.Events() {
		m := r.stages[ev.Stage]
		switch ev.Kind {
		case KindDrop:
			evs = append(evs, perfettoEvent{
				Name: "drop: " + ev.Cause.String(), Phase: "i", Cat: "drop",
				Ts: float64(ev.At) / 1000, Scope: "t",
				Pid: pidOf[m.Node], Tid: int(ev.Stage) + 1,
				Args: map[string]any{"vc": vcString(ev.VC)},
			})
		case KindPoint:
			evs = append(evs, perfettoEvent{
				Name: m.Stage, Phase: "i", Cat: "cell",
				Ts: float64(ev.At) / 1000, Scope: "t",
				Pid: pidOf[m.Node], Tid: int(ev.Stage) + 1,
				Args: map[string]any{"vc": vcString(ev.VC)},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(perfettoFile{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

func vcString(vc atm.VC) string { return vc.String() }

// WriteBreakdown renders the residency report as an aligned text table:
// per-stage span counts, drops and latency statistics — where the time goes,
// stage by stage.
func (r *Recorder) WriteBreakdown(w io.Writer) error {
	stats := r.Residency()
	if _, err := fmt.Fprintf(w, "%-28s %8s %6s %12s %12s %12s %12s\n",
		"stage", "spans", "drops", "mean", "p50", "p99", "max"); err != nil {
		return err
	}
	for _, st := range stats {
		if st.Count == 0 && st.Drops == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-28s %8d %6d %12v %12v %12v %12v\n",
			st.Node+"/"+st.Stage, st.Count, st.Drops, st.Mean, st.P50, st.P99, st.Max); err != nil {
			return err
		}
	}
	if r.Evicted() > 0 {
		if _, err := fmt.Fprintf(w, "ring wrapped: %d older events evicted\n", r.Evicted()); err != nil {
			return err
		}
	}
	return nil
}
