package trace

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func testBurst(n int, base, stride int64, vci func(i int) uint16) *atm.CellBurst {
	b := atm.GetBurst(n)
	for i := 0; i < n; i++ {
		c := &atm.Cell{}
		c.Header.VCI = vci(i)
		b.Cells = append(b.Cells, c)
	}
	b.Base, b.Stride = base, stride
	return b
}

// TestBurstOpsExpandToSerialStream pins the compaction contract: a burst
// entry occupies one ring slot but Events() yields the exact per-cell stream
// a serial producer records.
func TestBurstOpsExpandToSerialStream(t *testing.T) {
	k := sim.NewKernel()
	same := func(int) uint16 { return 100 }

	burst := NewRecorder(k, 64)
	bsp := burst.Stage("a", "wire")
	b := testBurst(5, 0, 7, same)
	bsp.EnterBurst(b)
	if got := burst.Len(); got != 1 {
		t.Fatalf("burst entry occupies %d ring slots, want 1", got)
	}
	evs := burst.Events()
	if len(evs) != 5 {
		t.Fatalf("expanded to %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.At != sim.Time(i*7) || ev.Kind != KindEnter || ev.VC != recVC || ev.Count != 0 || ev.Stride != 0 {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	atm.PutBurst(b)
}

// TestDropAtRecordsExplicitTime pins the batched link path's drop
// attribution: the event carries the cell's slot time, not the kernel-now of
// the event that drew the loss.
func TestDropAtRecordsExplicitTime(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 8)
	sp := r.Stage("a", "wire")
	sp.DropAt(1234, recVC, metrics.DropLink)
	evs := r.Events()
	if len(evs) != 1 || evs[0].At != 1234 || evs[0].Kind != KindDrop || evs[0].Cause != metrics.DropLink {
		t.Fatalf("events %+v", evs)
	}
}

// TestBurstOpsSplitMixedVCRuns checks a burst carrying several connections
// compacts per same-VC run, preserving each cell's VC and slot time.
func TestBurstOpsSplitMixedVCRuns(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 64)
	sp := r.Stage("a", "wire")
	// VCs: 1,1,2,1 → runs [1,1], [2], [1] → 3 ring entries, 4 events.
	vcs := []uint16{1, 1, 2, 1}
	b := testBurst(4, 1000, 10, func(i int) uint16 { return vcs[i] })
	sp.ExitBurst(b)
	if got := r.Len(); got != 3 {
		t.Fatalf("%d ring entries, want 3 runs", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.At != sim.Time(1000+10*i) || ev.VC.VCI != vcs[i] || ev.Kind != KindExit {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	atm.PutBurst(b)
}

// TestBurstOpsRespectSampling: with cell sampling active the compact form
// cannot honor per-cell admission, so burst ops must fall back to the same
// per-cell recording the serial path does — the kth recorded Enter still
// matches the kth recorded Exit.
func TestBurstOpsRespectSampling(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 64)
	r.SampleCells(3)
	sp := r.Stage("a", "wire")
	same := func(int) uint16 { return 100 }
	b := testBurst(9, 0, 5, same)
	sp.EnterBurst(b)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("sampled 1-in-3 of 9 cells gave %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.At != sim.Time(i*15) {
			t.Fatalf("sampled event %d at %v, want %v", i, ev.At, sim.Time(i*15))
		}
	}
	atm.PutBurst(b)
}

// TestBurstSpansMatchPerCell runs the same enter/exit history through burst
// ops and per-cell ops and requires identical matched spans — the guarantee
// the sonetlink mode-equivalence test leans on.
func TestBurstSpansMatchPerCell(t *testing.T) {
	k := sim.NewKernel()
	same := func(int) uint16 { return 100 }

	burst := NewRecorder(k, 256)
	bsp := burst.Stage("a", "wire")
	be := testBurst(6, 0, 10, same)
	bsp.EnterBurst(be)
	bx := testBurst(6, 50, 10, same)
	bsp.ExitBurst(bx)

	serial := NewRecorder(k, 256)
	ssp := serial.Stage("a", "wire")
	for i := 0; i < 6; i++ {
		ssp.burst(testBurst(1, int64(10*i), 0, same), KindEnter, &ssp.in)
	}
	for i := 0; i < 6; i++ {
		ssp.burst(testBurst(1, int64(50+10*i), 0, same), KindExit, &ssp.out)
	}

	bs, bu := burst.Spans()
	ss, su := serial.Spans()
	if bu != 0 || su != 0 {
		t.Fatalf("unmatched spans: burst %d serial %d", bu, su)
	}
	if len(bs) != len(ss) {
		t.Fatalf("burst %d spans, serial %d", len(bs), len(ss))
	}
	for i := range bs {
		if bs[i] != ss[i] {
			t.Fatalf("span %d: burst %+v, serial %+v", i, bs[i], ss[i])
		}
	}
}
