package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Sampler snapshots a registry's counters and gauges on a fixed period of
// simulated time, producing the time series (queue depth, cells forwarded,
// drops) that feedback-loop studies plot. It schedules its own kernel
// events only up to the stop time handed to Start, so a drained simulation
// still terminates.
type Sampler struct {
	k      *sim.Kernel
	reg    *metrics.Registry
	period sim.Duration
	until  sim.Time
	tickFn func()

	rows []SampleRow
	cols map[string]bool
}

// SampleRow is one sampling instant: every registered counter value and
// gauge level at that simulated time.
type SampleRow struct {
	At     sim.Time
	Values map[string]float64
}

// NewSampler builds a sampler reading reg on kernel k every period.
func NewSampler(k *sim.Kernel, reg *metrics.Registry, period sim.Duration) *Sampler {
	if period <= 0 {
		panic("trace: sampler period must be positive")
	}
	s := &Sampler{k: k, reg: reg, period: period, cols: make(map[string]bool)}
	s.tickFn = s.tick
	return s
}

// Start arms the sampler: rows are recorded at each period boundary from
// now until the stop time (inclusive), after which the sampler goes quiet
// and the kernel can drain.
func (s *Sampler) Start(until sim.Time) {
	s.until = until
	s.k.PostAfter(s.period, s.tickFn)
}

func (s *Sampler) tick() {
	now := s.k.Now()
	if now > s.until {
		return
	}
	row := SampleRow{At: now, Values: make(map[string]float64)}
	s.reg.EachCounter(func(name string, v uint64) {
		row.Values[name] = float64(v)
		s.cols[name] = true
	})
	s.reg.EachGauge(func(name string, v, max int64) {
		row.Values[name] = float64(v)
		s.cols[name] = true
	})
	s.rows = append(s.rows, row)
	if now+sim.Time(s.period) <= s.until {
		s.k.PostAfter(s.period, s.tickFn)
	}
}

// Rows returns the recorded series oldest-first.
func (s *Sampler) Rows() []SampleRow { return s.rows }

// columns is the sorted union of every instrument name seen — instruments
// created mid-run appear as columns with zeros before their birth.
func (s *Sampler) columns() []string {
	cols := make([]string, 0, len(s.cols))
	for c := range s.cols {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// WriteCSV emits the series as CSV: a t_ns column followed by one column
// per instrument, names sorted, missing values zero.
func (s *Sampler) WriteCSV(w io.Writer) error {
	cols := s.columns()
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"t_ns"}, cols...)); err != nil {
		return err
	}
	rec := make([]string, len(cols)+1)
	for _, row := range s.rows {
		rec[0] = strconv.FormatInt(int64(row.At), 10)
		for i, c := range cols {
			rec[i+1] = strconv.FormatFloat(row.Values[c], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the series as a JSON array of {t_ns, values} rows; map
// keys marshal sorted, so identical runs produce identical bytes.
func (s *Sampler) WriteJSON(w io.Writer) error {
	type jsonRow struct {
		T      int64              `json:"t_ns"`
		Values map[string]float64 `json:"values"`
	}
	rows := make([]jsonRow, len(s.rows))
	for i, r := range s.rows {
		rows[i] = jsonRow{T: int64(r.At), Values: r.Values}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rows)
}

// String summarizes the sampler state for diagnostics.
func (s *Sampler) String() string {
	return fmt.Sprintf("sampler: %d rows x %d columns, period %v", len(s.rows), len(s.cols), s.period)
}
