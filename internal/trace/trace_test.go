package trace

import (
	"strings"
	"testing"

	"repro/internal/atm"
	"repro/internal/sim"
)

func cellOn(vci uint16, pt atm.PT) *atm.Cell {
	c := &atm.Cell{}
	c.Header = atm.Header{Format: atm.UNI, VCI: vci, PT: pt}
	return c
}

func TestTapPassesThroughAndRecords(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	var passed []*atm.Cell
	sink := cap.Tap(func(c *atm.Cell) { passed = append(passed, c) })
	k.At(100, func() { sink(cellOn(1, atm.PTUser0)) })
	k.At(200, func() { sink(cellOn(2, atm.PTUserEnd)) })
	k.Run()
	if len(passed) != 2 {
		t.Fatalf("passed %d cells", len(passed))
	}
	recs := cap.Records()
	if len(recs) != 2 || recs[0].At != 100 || recs[1].At != 200 {
		t.Fatalf("records %+v", recs)
	}
	if recs[1].Cell.Header.VCI != 2 {
		t.Fatal("record contents wrong")
	}
}

func TestTapCopiesCells(t *testing.T) {
	// The record must be a snapshot: pools recycle cells after the tap.
	k := sim.NewKernel()
	cap := New(k)
	sink := cap.Tap(func(c *atm.Cell) { c.Header.VCI = 999 })
	sink(cellOn(42, atm.PTUser0))
	if cap.Records()[0].Cell.Header.VCI != 42 {
		t.Fatal("record aliased the live cell")
	}
}

func TestFilter(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	cap.Filter = func(c *atm.Cell) bool { return c.Header.VCI == 7 }
	sink := cap.Tap(func(*atm.Cell) {})
	sink(cellOn(7, atm.PTUser0))
	sink(cellOn(8, atm.PTUser0))
	sink(cellOn(7, atm.PTUser0))
	if len(cap.Records()) != 2 {
		t.Fatalf("filter kept %d", len(cap.Records()))
	}
}

func TestLimitAndOverflow(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	cap.Limit = 3
	sink := cap.Tap(func(*atm.Cell) {})
	for i := 0; i < 10; i++ {
		sink(cellOn(uint16(i), atm.PTUser0))
	}
	if len(cap.Records()) != 3 || cap.Overflow() != 7 {
		t.Fatalf("records %d overflow %d", len(cap.Records()), cap.Overflow())
	}
	// First-N semantics.
	if cap.Records()[0].Cell.Header.VCI != 0 {
		t.Fatal("did not keep first matches")
	}
}

func TestSummary(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	sink := cap.Tap(func(*atm.Cell) {})
	// VC 5: three cells at 0,100,200, the last an EOF; VC 9: one OAM.
	times := []sim.Time{100, 200, 300}
	pts := []atm.PT{atm.PTUser0, atm.PTUser0, atm.PTUserEnd}
	for i := range times {
		i := i
		k.At(times[i], func() { sink(cellOn(5, pts[i])) })
	}
	k.At(150, func() { sink(cellOn(9, atm.PTOAMEndToEnd)) })
	k.Run()
	sum := cap.Summary()
	if len(sum) != 2 {
		t.Fatalf("%d VCs", len(sum))
	}
	v5, v9 := sum[0], sum[1]
	if v5.VC.VCI != 5 || v9.VC.VCI != 9 {
		t.Fatalf("sort order wrong: %+v", sum)
	}
	if v5.Cells != 3 || v5.Frames != 1 || v5.MeanGap != 100 {
		t.Fatalf("v5 %+v", v5)
	}
	if v5.First != 100 || v5.Last != 300 {
		t.Fatalf("v5 times %+v", v5)
	}
	if v9.OAMCells != 1 || v9.Frames != 0 {
		t.Fatalf("v9 %+v", v9)
	}
}

func TestDumpFormat(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	cap.Limit = 1
	sink := cap.Tap(func(*atm.Cell) {})
	sink(cellOn(3, atm.PTUserEnd))
	sink(cellOn(4, atm.PTUser0))
	var b strings.Builder
	if err := cap.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "vc=0/3") || !strings.Contains(out, "pt=001") {
		t.Fatalf("dump:\n%s", out)
	}
	if !strings.Contains(out, "1 further matches not stored") {
		t.Fatalf("overflow note missing:\n%s", out)
	}
}

func TestReset(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	sink := cap.Tap(func(*atm.Cell) {})
	sink(cellOn(1, atm.PTUser0))
	cap.Reset()
	if len(cap.Records()) != 0 || cap.Overflow() != 0 {
		t.Fatal("reset incomplete")
	}
}
