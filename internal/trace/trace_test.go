package trace

import (
	"strings"
	"testing"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func cellOn(vci uint16, pt atm.PT) *atm.Cell {
	c := &atm.Cell{}
	c.Header = atm.Header{Format: atm.UNI, VCI: vci, PT: pt}
	return c
}

func TestTapPassesThroughAndRecords(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	var passed []*atm.Cell
	sink := cap.Tap(func(c *atm.Cell) { passed = append(passed, c) })
	k.At(100, func() { sink(cellOn(1, atm.PTUser0)) })
	k.At(200, func() { sink(cellOn(2, atm.PTUserEnd)) })
	k.Run()
	if len(passed) != 2 {
		t.Fatalf("passed %d cells", len(passed))
	}
	recs := cap.Records()
	if len(recs) != 2 || recs[0].At != 100 || recs[1].At != 200 {
		t.Fatalf("records %+v", recs)
	}
	if recs[1].Cell.Header.VCI != 2 {
		t.Fatal("record contents wrong")
	}
}

func TestTapCopiesCells(t *testing.T) {
	// The record must be a snapshot: pools recycle cells after the tap.
	k := sim.NewKernel()
	cap := New(k)
	sink := cap.Tap(func(c *atm.Cell) { c.Header.VCI = 999 })
	sink(cellOn(42, atm.PTUser0))
	if cap.Records()[0].Cell.Header.VCI != 42 {
		t.Fatal("record aliased the live cell")
	}
}

func TestFilter(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	cap.Filter = func(c *atm.Cell) bool { return c.Header.VCI == 7 }
	sink := cap.Tap(func(*atm.Cell) {})
	sink(cellOn(7, atm.PTUser0))
	sink(cellOn(8, atm.PTUser0))
	sink(cellOn(7, atm.PTUser0))
	if len(cap.Records()) != 2 {
		t.Fatalf("filter kept %d", len(cap.Records()))
	}
}

func TestLimitAndOverflow(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	cap.Limit = 3
	sink := cap.Tap(func(*atm.Cell) {})
	for i := 0; i < 10; i++ {
		sink(cellOn(uint16(i), atm.PTUser0))
	}
	if len(cap.Records()) != 3 || cap.Overflow() != 7 {
		t.Fatalf("records %d overflow %d", len(cap.Records()), cap.Overflow())
	}
	// First-N semantics.
	if cap.Records()[0].Cell.Header.VCI != 0 {
		t.Fatal("did not keep first matches")
	}
}

func TestSummary(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	sink := cap.Tap(func(*atm.Cell) {})
	// VC 5: three cells at 0,100,200, the last an EOF; VC 9: one OAM.
	times := []sim.Time{100, 200, 300}
	pts := []atm.PT{atm.PTUser0, atm.PTUser0, atm.PTUserEnd}
	for i := range times {
		i := i
		k.At(times[i], func() { sink(cellOn(5, pts[i])) })
	}
	k.At(150, func() { sink(cellOn(9, atm.PTOAMEndToEnd)) })
	k.Run()
	summary := cap.Summary()
	sum := summary.PerVC
	if len(sum) != 2 {
		t.Fatalf("%d VCs", len(sum))
	}
	if summary.Stored != 4 || summary.Overflowed != 0 {
		t.Fatalf("stored %d overflowed %d", summary.Stored, summary.Overflowed)
	}
	v5, v9 := sum[0], sum[1]
	if v5.VC.VCI != 5 || v9.VC.VCI != 9 {
		t.Fatalf("sort order wrong: %+v", sum)
	}
	if v5.Cells != 3 || v5.Frames != 1 || v5.MeanGap != 100 {
		t.Fatalf("v5 %+v", v5)
	}
	if v5.First != 100 || v5.Last != 300 {
		t.Fatalf("v5 times %+v", v5)
	}
	if v9.OAMCells != 1 || v9.Frames != 0 {
		t.Fatalf("v9 %+v", v9)
	}
}

func TestDumpFormat(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	cap.Limit = 1
	sink := cap.Tap(func(*atm.Cell) {})
	sink(cellOn(3, atm.PTUserEnd))
	sink(cellOn(4, atm.PTUser0))
	var b strings.Builder
	if err := cap.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "vc=0/3") || !strings.Contains(out, "pt=001") {
		t.Fatalf("dump:\n%s", out)
	}
	if !strings.Contains(out, "1 further matches not stored") {
		t.Fatalf("overflow note missing:\n%s", out)
	}
}

func TestReset(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	sink := cap.Tap(func(*atm.Cell) {})
	sink(cellOn(1, atm.PTUser0))
	cap.Reset()
	if len(cap.Records()) != 0 || cap.Overflow() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestOverflowedAndSummaryAccounting(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	cap.Limit = 2
	sink := cap.Tap(func(*atm.Cell) {})
	for i := 0; i < 5; i++ {
		sink(cellOn(1, atm.PTUser0))
	}
	if cap.Overflowed() != 3 || cap.Overflow() != 3 {
		t.Fatalf("overflowed %d", cap.Overflowed())
	}
	sum := cap.Summary()
	if sum.Stored != 2 || sum.Overflowed != 3 {
		t.Fatalf("summary stored %d overflowed %d", sum.Stored, sum.Overflowed)
	}
	// The truncation must also surface in the text dump.
	var b strings.Builder
	if err := cap.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3 further matches") {
		t.Fatalf("dump silent about overflow:\n%s", b.String())
	}
}

func TestTapTimed(t *testing.T) {
	k := sim.NewKernel()
	cap := New(k)
	reg := metrics.NewRegistry()
	h := reg.Histogram("link.test.latency")
	tt := cap.TapTimed(h)

	var delivered int
	egress := tt.Egress(func(*atm.Cell) { delivered++ })
	// A two-stage pipe with a fixed 10 µs latency: ingress at t, egress
	// at t+10000.
	ingress := tt.Ingress(func(c *atm.Cell) {
		k.After(10_000, func() { egress(c) })
	})
	for i := 0; i < 4; i++ {
		at := sim.Time(i) * 2726
		k.At(at, func() { ingress(cellOn(5, atm.PTUser0)) })
	}
	k.Run()
	if delivered != 4 || tt.Matched() != 4 || tt.Unmatched() != 0 || tt.Outstanding() != 0 {
		t.Fatalf("delivered %d matched %d unmatched %d outstanding %d",
			delivered, tt.Matched(), tt.Unmatched(), tt.Outstanding())
	}
	if h.Count() != 4 || h.Min() != 10_000 || h.Max() != 10_000 {
		t.Fatalf("histogram count %d min %v max %v", h.Count(), h.Min(), h.Max())
	}
	// Ingress records into the capture like Tap.
	if len(cap.Records()) != 4 {
		t.Fatalf("capture stored %d", len(cap.Records()))
	}
	// An egress cell with no matching ingress (loss-recovery or injection)
	// counts as unmatched and leaves the histogram alone.
	egress(cellOn(5, atm.PTUser0))
	if tt.Unmatched() != 1 || h.Count() != 4 {
		t.Fatalf("unmatched %d count %d", tt.Unmatched(), h.Count())
	}
}

func TestTapTimedLossyMatchSkew(t *testing.T) {
	// On a lossy link FIFO matching skews rather than fails: dropped cells
	// leave stamps outstanding. The accessors expose exactly that.
	k := sim.NewKernel()
	cap := New(k)
	tt := cap.TapTimed(nil) // nil histogram: still match-counts
	egress := tt.Egress(func(*atm.Cell) {})
	in := 0
	// Model losing every second cell between the taps.
	lossy := tt.Ingress(func(c *atm.Cell) {
		in++
		if in%2 == 1 {
			egress(c)
		}
	})
	for i := 0; i < 6; i++ {
		lossy(cellOn(9, atm.PTUser0))
	}
	if tt.Matched() != 3 || tt.Outstanding() != 3 {
		t.Fatalf("matched %d outstanding %d", tt.Matched(), tt.Outstanding())
	}
}
