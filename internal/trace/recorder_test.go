package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

var recVC = atm.VC{VPI: 0, VCI: 100}

// TestNilRecorderIsFree pins the disabled-path contract: a nil recorder
// hands out nil spans, and every span method is a no-op on a nil receiver.
func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	sp := r.Stage("a", "tx.fifo")
	if sp != nil {
		t.Fatalf("nil recorder returned non-nil span")
	}
	// None of these may panic.
	sp.Enter(recVC)
	sp.Exit(recVC)
	sp.Point(recVC)
	sp.Drop(recVC, metrics.DropFIFO)
	r.SampleCells(4)
	r.SampleVCs(4)
	r.SetVCFilter(nil)
}

func TestEnterExitSpans(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 64)
	sp := r.Stage("a", "tx.fifo")
	k.At(100, func() { sp.Enter(recVC) })
	k.At(150, func() { sp.Enter(recVC) })
	k.At(300, func() { sp.Exit(recVC) })
	k.At(600, func() { sp.Exit(recVC) })
	k.Run()
	spans, unmatched := r.Spans()
	if unmatched != 0 || len(spans) != 2 {
		t.Fatalf("spans %v unmatched %d", spans, unmatched)
	}
	// FIFO pairing: first Exit matches first Enter.
	if spans[0].Start != 100 || spans[0].End != 300 {
		t.Fatalf("span0 %+v", spans[0])
	}
	if spans[1].Start != 150 || spans[1].End != 600 {
		t.Fatalf("span1 %+v", spans[1])
	}
}

// TestWraparound pins the flight-recorder semantics: the ring keeps the
// LAST capacity events in chronological order and counts what it evicted.
func TestWraparound(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 8)
	sp := r.Stage("a", "s")
	for i := 0; i < 20; i++ {
		at := sim.Time(i * 10)
		k.At(at, func() { sp.Enter(recVC) })
	}
	k.Run()
	if r.Len() != 8 {
		t.Fatalf("len %d, want 8", r.Len())
	}
	if r.Evicted() != 12 {
		t.Fatalf("evicted %d, want 12", r.Evicted())
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("events %d", len(evs))
	}
	// Most recent window, oldest first: times 120..190.
	for i, ev := range evs {
		want := sim.Time((12 + i) * 10)
		if ev.At != want {
			t.Fatalf("event %d at %v, want %v", i, ev.At, want)
		}
	}
	// An Exit whose Enter was evicted counts as unmatched, not a bogus span.
	r.Reset()
	if r.Len() != 0 || r.Evicted() != 0 {
		t.Fatalf("reset: len %d evicted %d", r.Len(), r.Evicted())
	}
}

func TestExitWithoutEnterIsUnmatched(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 2)
	sp := r.Stage("a", "s")
	k.At(10, func() { sp.Enter(recVC) })
	k.At(20, func() { sp.Exit(recVC) })
	k.At(30, func() { sp.Exit(recVC) }) // ring holds only the two Exits now
	k.Run()
	spans, unmatched := r.Spans()
	if len(spans) != 0 || unmatched != 2 {
		t.Fatalf("spans %d unmatched %d, want 0/2", len(spans), unmatched)
	}
}

func TestEnableFreezes(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 16)
	sp := r.Stage("a", "s")
	r.Enable(false)
	k.At(10, func() { sp.Enter(recVC); sp.Exit(recVC) })
	k.Run()
	if r.Len() != 0 {
		t.Fatalf("recorded %d events while disabled", r.Len())
	}
	if r.Enabled() {
		t.Fatalf("Enabled() true after Enable(false)")
	}
}

// TestSampleCellsPairing pins the sampling guarantee: both ends sample by
// per-VC count, so the kth recorded Enter matches the kth recorded Exit and
// sampled spans have correct durations (not cross-matched neighbors).
func TestSampleCellsPairing(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 256)
	r.SampleCells(3)
	sp := r.Stage("a", "s")
	// Cell i enters at 100i and exits at 100i+7: every span is 7 ns.
	for i := 0; i < 30; i++ {
		at := sim.Time(i * 100)
		k.At(at, func() { sp.Enter(recVC) })
		k.At(at+7, func() { sp.Exit(recVC) })
	}
	k.Run()
	spans, unmatched := r.Spans()
	if unmatched != 0 || len(spans) != 10 {
		t.Fatalf("spans %d unmatched %d, want 10/0", len(spans), unmatched)
	}
	for _, s := range spans {
		if s.End-s.Start != 7 {
			t.Fatalf("span duration %v, want 7ns — sampling skewed the pairing", s.End-s.Start)
		}
	}
}

func TestSampleCellsKeepsDrops(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 256)
	r.SampleCells(1000) // thin the healthy stream to almost nothing
	sp := r.Stage("a", "s")
	for i := 0; i < 10; i++ {
		k.At(sim.Time(i), func() { sp.Drop(recVC, metrics.DropFIFO) })
	}
	k.Run()
	drops := 0
	for _, ev := range r.Events() {
		if ev.Kind == KindDrop {
			drops++
		}
	}
	if drops != 10 {
		t.Fatalf("drops recorded %d, want all 10", drops)
	}
}

func TestSampleVCs(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 256)
	r.SampleVCs(2) // keep VCs whose hash is even: VCI 100 yes, VCI 101 no
	sp := r.Stage("a", "s")
	odd := atm.VC{VPI: 0, VCI: 101}
	k.At(1, func() {
		sp.Enter(recVC)
		sp.Enter(odd)
		sp.Drop(odd, metrics.DropFIFO)
	})
	k.Run()
	for _, ev := range r.Events() {
		if ev.VC == odd {
			t.Fatalf("filtered VC %v recorded", odd)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("len %d, want 1", r.Len())
	}
}

func TestStageRegistrationIsStable(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 16)
	s1 := r.Stage("a", "tx.fifo")
	s2 := r.Stage("b", "rx.fifo")
	if again := r.Stage("a", "tx.fifo"); again != s1 {
		t.Fatalf("re-registration returned a new span")
	}
	if r.Stages() != 2 {
		t.Fatalf("stages %d, want 2", r.Stages())
	}
	if n, st := r.StageName(s1.id); n != "a" || st != "tx.fifo" {
		t.Fatalf("stage 0 = %s/%s", n, st)
	}
	if n, st := r.StageName(s2.id); n != "b" || st != "rx.fifo" {
		t.Fatalf("stage 1 = %s/%s", n, st)
	}
}

func TestResidency(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 64)
	sp := r.Stage("a", "s")
	for i := 0; i < 4; i++ {
		at := sim.Time(i * 1000)
		k.At(at, func() { sp.Enter(recVC) })
		k.At(at+100, func() { sp.Exit(recVC) })
	}
	k.At(9000, func() { sp.Drop(recVC, metrics.DropFIFO) })
	k.Run()
	stats := r.Residency()
	if len(stats) != 1 {
		t.Fatalf("stats %d", len(stats))
	}
	st := stats[0]
	if st.Node != "a" || st.Stage != "s" || st.Count != 4 || st.Drops != 1 {
		t.Fatalf("%+v", st)
	}
	if st.Total != 400 {
		t.Fatalf("total %v, want 400ns", st.Total)
	}
	if st.Max < 100 || st.Mean < 50 {
		t.Fatalf("mean %v max %v", st.Mean, st.Max)
	}
}

func TestWriteTraceJSONShape(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 64)
	sp := r.Stage("a", "tx.fifo")
	k.At(1000, func() { sp.Enter(recVC) })
	k.At(3000, func() { sp.Exit(recVC) })
	k.At(4000, func() { sp.Drop(recVC, metrics.DropFIFO) })
	k.Run()
	var buf bytes.Buffer
	if err := r.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	var phases []string
	for _, ev := range tf.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "X") || !strings.Contains(joined, "i") || !strings.Contains(joined, "M") {
		t.Fatalf("phases %v missing X/i/M", phases)
	}
	// Deterministic: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteTraceJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("export not deterministic")
	}
}

func TestWriteBreakdown(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, 64)
	sp := r.Stage("a", "tx.fifo")
	k.At(0, func() { sp.Enter(recVC) })
	k.At(500, func() { sp.Exit(recVC) })
	k.Run()
	var buf bytes.Buffer
	if err := r.WriteBreakdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a/tx.fifo") || !strings.Contains(out, "500ns") {
		t.Fatalf("breakdown missing stage row:\n%s", out)
	}
}

// TestConcurrentWorlds runs independent kernel+recorder worlds in parallel —
// the sweep-runner usage pattern. Each world is single-threaded; the race
// detector (make verify) confirms no shared state leaks between them.
func TestConcurrentWorlds(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]int, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := sim.NewKernel()
			r := NewRecorder(k, 1024)
			sp := r.Stage("a", "s")
			for i := 0; i < 200; i++ {
				at := sim.Time(i * 10)
				k.At(at, func() { sp.Enter(recVC) })
				k.At(at+5, func() { sp.Exit(recVC) })
			}
			k.Run()
			spans, unmatched := r.Spans()
			if unmatched != 0 {
				t.Errorf("world %d: %d unmatched", w, unmatched)
			}
			results[w] = len(spans)
		}()
	}
	wg.Wait()
	for w, n := range results {
		if n != 200 {
			t.Fatalf("world %d recorded %d spans, want 200", w, n)
		}
	}
}

// TestSamplerSeries pins the periodic sampler: rows at every period up to
// the stop time, sorted stable columns, and a kernel that still drains.
func TestSamplerSeries(t *testing.T) {
	k := sim.NewKernel()
	reg := metrics.NewRegistry()
	c := reg.Counter("z.cells")
	g := reg.Gauge("a.occ")
	s := NewSampler(k, reg, 100)
	s.Start(1000)
	for i := 1; i <= 20; i++ {
		at := sim.Time(i * 50)
		k.At(at, func() { c.Inc(); g.Set(int64(at)) })
	}
	k.Run() // terminates: the sampler stops re-arming past the stop time
	rows := s.Rows()
	if len(rows) != 10 {
		t.Fatalf("rows %d, want 10", len(rows))
	}
	if rows[0].At != 100 || rows[9].At != 1000 {
		t.Fatalf("row times %v..%v", rows[0].At, rows[9].At)
	}
	// Counters snapshot at the tick. The tick at t=100 was posted before
	// the t=100 increment, so it sees only the t=50 one — same-timestamp
	// events run in posting order.
	if rows[0].Values["z.cells"] != 1 {
		t.Fatalf("first row cells %v", rows[0].Values["z.cells"])
	}
	// The second tick was re-armed at t=100, AFTER the t=200 increment was
	// posted, so it runs last at t=200 and sees all four increments.
	if rows[1].Values["z.cells"] != 4 {
		t.Fatalf("second row cells %v", rows[1].Values["z.cells"])
	}
	var csvBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("csv lines %d, want header+10", len(lines))
	}
	if lines[0] != "t_ns,a.occ,z.cells" {
		t.Fatalf("csv header %q not sorted", lines[0])
	}
	var jsonBuf bytes.Buffer
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back []struct {
		T      int64              `json:"t_ns"`
		Values map[string]float64 `json:"values"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("sampler JSON: %v", err)
	}
	if len(back) != 10 || back[9].T != 1000 {
		t.Fatalf("json rows %d last %d", len(back), back[len(back)-1].T)
	}
}
