// Package trace captures timestamped cells at any tap point in a simulated
// network — the logic-analyzer-on-the-fiber every real bring-up of the
// board needed. Captures can be filtered, summarized per VC, and dumped in
// a text format cellview understands.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Record is one captured cell.
type Record struct {
	At   sim.Time
	Cell atm.Cell
}

// Capture accumulates records at a tap point.
type Capture struct {
	k *sim.Kernel
	// Filter, when non-nil, keeps only cells it returns true for.
	Filter func(*atm.Cell) bool
	// Limit bounds stored records (0 = unlimited); the capture keeps the
	// FIRST Limit matches and counts the rest.
	Limit int

	records  []Record
	overflow uint64
}

// New creates a capture on kernel k.
func New(k *sim.Kernel) *Capture { return &Capture{k: k} }

// Tap wraps a cell sink so that cells flow through unchanged while being
// recorded. Use it around a link's Send or an interface's DeliverCell:
//
//	iface.SetOutput(cap.Tap(link.Send))
func (c *Capture) Tap(next func(*atm.Cell)) func(*atm.Cell) {
	return func(cell *atm.Cell) {
		c.observe(cell)
		next(cell)
	}
}

func (c *Capture) observe(cell *atm.Cell) {
	if c.Filter != nil && !c.Filter(cell) {
		return
	}
	if c.Limit > 0 && len(c.records) >= c.Limit {
		c.overflow++
		return
	}
	c.records = append(c.records, Record{At: c.k.Now(), Cell: *cell})
}

// Records returns the captured cells in arrival order.
func (c *Capture) Records() []Record { return c.records }

// Overflowed reports matches discarded after Limit was reached. A non-zero
// value means the capture is a truncated prefix, not the full cell stream.
func (c *Capture) Overflowed() uint64 { return c.overflow }

// Overflow is an older name for Overflowed.
func (c *Capture) Overflow() uint64 { return c.overflow }

// Reset clears the capture.
func (c *Capture) Reset() {
	c.records = c.records[:0]
	c.overflow = 0
}

// VCStats is a per-connection capture summary.
type VCStats struct {
	VC       atm.VC
	Cells    int
	Frames   int // end-of-frame cells seen (AAL5 boundaries)
	First    sim.Time
	Last     sim.Time
	MeanGap  sim.Duration // mean inter-cell gap
	OAMCells int
}

// Summary is the aggregate view of a capture: per-VC statistics plus the
// totals a reader needs to judge whether the capture is complete. A capture
// that hit its Limit reports the discarded matches in Overflowed — the per-VC
// numbers then describe only the stored prefix.
type Summary struct {
	PerVC      []VCStats
	Stored     int    // records kept
	Overflowed uint64 // matches discarded after Limit
}

// Summary aggregates the capture per VC, sorted by (VPI, VCI), together
// with the stored/overflowed accounting.
func (c *Capture) Summary() Summary {
	return Summary{PerVC: c.perVC(), Stored: len(c.records), Overflowed: c.overflow}
}

func (c *Capture) perVC() []VCStats {
	byVC := map[atm.VC]*VCStats{}
	prev := map[atm.VC]sim.Time{}
	var gapSum map[atm.VC]sim.Duration = map[atm.VC]sim.Duration{}
	for _, r := range c.records {
		vc := r.Cell.Header.VC()
		st := byVC[vc]
		if st == nil {
			st = &VCStats{VC: vc, First: r.At}
			byVC[vc] = st
		}
		if st.Cells > 0 {
			gapSum[vc] += r.At - prev[vc]
		}
		prev[vc] = r.At
		st.Cells++
		st.Last = r.At
		if !r.Cell.Header.PT.User() {
			st.OAMCells++
		} else if r.Cell.Header.PT.EndOfFrame() {
			st.Frames++
		}
	}
	out := make([]VCStats, 0, len(byVC))
	for vc, st := range byVC {
		if st.Cells > 1 {
			st.MeanGap = gapSum[vc] / sim.Duration(st.Cells-1)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VC.VPI != out[j].VC.VPI {
			return out[i].VC.VPI < out[j].VC.VPI
		}
		return out[i].VC.VCI < out[j].VC.VCI
	})
	return out
}

// Timed measures per-cell ingress→egress latency across a stretch of the
// datapath — typically the two ends of a link — and feeds each sample into a
// latency histogram. Cells are matched in FIFO order, which is exact for a
// lossless, order-preserving path; on a lossy path the match skews and
// Unmatched counts egress cells that had no recorded ingress.
type Timed struct {
	k    *sim.Kernel
	cap  *Capture
	hist *metrics.Histogram

	times     []sim.Time
	head      int
	matched   uint64
	unmatched uint64
}

// TapTimed creates a latency tap bound to this capture. Wrap the sending
// side with Ingress and the receiving side with Egress:
//
//	tt := cap.TapTimed(reg.Histogram("link.ab.latency"))
//	a.Iface.SetOutput(tt.Ingress(link.Send))
//	link.SetSink(tt.Egress(b.Iface.DeliverCell))
//
// Ingress also records the cell into the capture, like Tap.
func (c *Capture) TapTimed(h *metrics.Histogram) *Timed {
	return &Timed{k: c.k, cap: c, hist: h}
}

// Ingress wraps the upstream end: the cell is recorded and timestamped, then
// passed through unchanged.
func (t *Timed) Ingress(next func(*atm.Cell)) func(*atm.Cell) {
	return func(cell *atm.Cell) {
		t.cap.observe(cell)
		if t.head > 0 && t.head == len(t.times) {
			t.times = t.times[:0]
			t.head = 0
		}
		t.times = append(t.times, t.k.Now())
		next(cell)
	}
}

// Egress wraps the downstream end: the oldest outstanding ingress stamp is
// consumed and the elapsed time observed into the histogram.
func (t *Timed) Egress(next func(*atm.Cell)) func(*atm.Cell) {
	return func(cell *atm.Cell) {
		if t.head < len(t.times) {
			t.hist.Observe(t.k.Now() - t.times[t.head])
			t.head++
			t.matched++
		} else {
			t.unmatched++
		}
		next(cell)
	}
}

// Matched reports cells whose latency was observed.
func (t *Timed) Matched() uint64 { return t.matched }

// Unmatched reports egress cells that arrived with no outstanding ingress
// stamp (possible only when the path loses, reorders or injects cells).
func (t *Timed) Unmatched() uint64 { return t.unmatched }

// Outstanding reports cells currently in flight between the taps.
func (t *Timed) Outstanding() int { return len(t.times) - t.head }

// Dump writes the capture as text: one line per cell with timestamp,
// header fields and the leading payload bytes, cellview-compatible hex
// last on the line.
func (c *Capture) Dump(w io.Writer) error {
	for i, r := range c.records {
		h := &r.Cell.Header
		var wire [atm.CellSize]byte
		if err := r.Cell.Encode(wire[:]); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
		if _, err := fmt.Fprintf(w, "%6d %12v vc=%v pt=%03b clp=%v  %x\n",
			i, r.At, h.VC(), h.PT, h.CLP, wire[:12]); err != nil {
			return err
		}
	}
	if c.overflow > 0 {
		if _, err := fmt.Fprintf(w, "... %d further matches not stored (limit)\n", c.overflow); err != nil {
			return err
		}
	}
	return nil
}
