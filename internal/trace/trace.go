// Package trace captures timestamped cells at any tap point in a simulated
// network — the logic-analyzer-on-the-fiber every real bring-up of the
// board needed. Captures can be filtered, summarized per VC, and dumped in
// a text format cellview understands.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/atm"
	"repro/internal/sim"
)

// Record is one captured cell.
type Record struct {
	At   sim.Time
	Cell atm.Cell
}

// Capture accumulates records at a tap point.
type Capture struct {
	k *sim.Kernel
	// Filter, when non-nil, keeps only cells it returns true for.
	Filter func(*atm.Cell) bool
	// Limit bounds stored records (0 = unlimited); the capture keeps the
	// FIRST Limit matches and counts the rest.
	Limit int

	records  []Record
	overflow uint64
}

// New creates a capture on kernel k.
func New(k *sim.Kernel) *Capture { return &Capture{k: k} }

// Tap wraps a cell sink so that cells flow through unchanged while being
// recorded. Use it around a link's Send or an interface's DeliverCell:
//
//	iface.SetOutput(cap.Tap(link.Send))
func (c *Capture) Tap(next func(*atm.Cell)) func(*atm.Cell) {
	return func(cell *atm.Cell) {
		c.observe(cell)
		next(cell)
	}
}

func (c *Capture) observe(cell *atm.Cell) {
	if c.Filter != nil && !c.Filter(cell) {
		return
	}
	if c.Limit > 0 && len(c.records) >= c.Limit {
		c.overflow++
		return
	}
	c.records = append(c.records, Record{At: c.k.Now(), Cell: *cell})
}

// Records returns the captured cells in arrival order.
func (c *Capture) Records() []Record { return c.records }

// Overflow reports matches discarded after Limit was reached.
func (c *Capture) Overflow() uint64 { return c.overflow }

// Reset clears the capture.
func (c *Capture) Reset() {
	c.records = c.records[:0]
	c.overflow = 0
}

// VCStats is a per-connection capture summary.
type VCStats struct {
	VC       atm.VC
	Cells    int
	Frames   int // end-of-frame cells seen (AAL5 boundaries)
	First    sim.Time
	Last     sim.Time
	MeanGap  sim.Duration // mean inter-cell gap
	OAMCells int
}

// Summary aggregates the capture per VC, sorted by (VPI, VCI).
func (c *Capture) Summary() []VCStats {
	byVC := map[atm.VC]*VCStats{}
	prev := map[atm.VC]sim.Time{}
	var gapSum map[atm.VC]sim.Duration = map[atm.VC]sim.Duration{}
	for _, r := range c.records {
		vc := r.Cell.Header.VC()
		st := byVC[vc]
		if st == nil {
			st = &VCStats{VC: vc, First: r.At}
			byVC[vc] = st
		}
		if st.Cells > 0 {
			gapSum[vc] += r.At - prev[vc]
		}
		prev[vc] = r.At
		st.Cells++
		st.Last = r.At
		if !r.Cell.Header.PT.User() {
			st.OAMCells++
		} else if r.Cell.Header.PT.EndOfFrame() {
			st.Frames++
		}
	}
	out := make([]VCStats, 0, len(byVC))
	for vc, st := range byVC {
		if st.Cells > 1 {
			st.MeanGap = gapSum[vc] / sim.Duration(st.Cells-1)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VC.VPI != out[j].VC.VPI {
			return out[i].VC.VPI < out[j].VC.VPI
		}
		return out[i].VC.VCI < out[j].VC.VCI
	})
	return out
}

// Dump writes the capture as text: one line per cell with timestamp,
// header fields and the leading payload bytes, cellview-compatible hex
// last on the line.
func (c *Capture) Dump(w io.Writer) error {
	for i, r := range c.records {
		h := &r.Cell.Header
		var wire [atm.CellSize]byte
		if err := r.Cell.Encode(wire[:]); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
		if _, err := fmt.Fprintf(w, "%6d %12v vc=%v pt=%03b clp=%v  %x\n",
			i, r.At, h.VC(), h.PT, h.CLP, wire[:12]); err != nil {
			return err
		}
	}
	if c.overflow > 0 {
		if _, err := fmt.Fprintf(w, "... %d further matches not stored (limit)\n", c.overflow); err != nil {
			return err
		}
	}
	return nil
}
