package trace

import (
	"sort"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Sharded runs give every partition its own Recorder (a recorder belongs to
// one kernel's world), so comparing or exporting a whole-run trace means
// merging rings whose StageIDs come from different tables. NamedEvent is
// the merge currency: the per-recorder StageID is resolved to its
// (node, stage) name, which is globally unique across partitions because
// the builder registers each instance's stages on exactly one recorder.
type NamedEvent struct {
	At    sim.Time
	Node  string
	Stage string
	Kind  Kind
	VC    atm.VC
	Cause metrics.DropCause
}

// Named returns the recorder's events oldest-first (bursts expanded, like
// Events) with stage names resolved.
func (r *Recorder) Named() []NamedEvent {
	evs := r.Events()
	out := make([]NamedEvent, len(evs))
	for i, ev := range evs {
		m := r.stages[ev.Stage]
		out[i] = NamedEvent{At: ev.At, Node: m.Node, Stage: m.Stage,
			Kind: ev.Kind, VC: ev.VC, Cause: ev.Cause}
	}
	return out
}

// Capacity returns the ring capacity the recorder was built with.
func (r *Recorder) Capacity() int { return len(r.ring) }

// SortNamed orders events by every field — (at, node, stage, vc, kind,
// cause) — making the slice a canonical form of its multiset: two runs
// recorded the same trace if and only if their sorted named events are
// equal. This is the comparison the parallel-vs-serial golden tests pin.
func SortNamed(evs []NamedEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.VC.VPI != b.VC.VPI {
			return a.VC.VPI < b.VC.VPI
		}
		if a.VC.VCI != b.VC.VCI {
			return a.VC.VCI < b.VC.VCI
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Cause < b.Cause
	})
}

// MergeNamed concatenates the recorders' events and sorts them into the
// canonical order. Nil recorders are skipped.
func MergeNamed(recs ...*Recorder) []NamedEvent {
	var out []NamedEvent
	for _, r := range recs {
		if r == nil {
			continue
		}
		out = append(out, r.Named()...)
	}
	SortNamed(out)
	return out
}

// NamedSpan is a matched Enter/Exit pair keyed by stage name rather than a
// recorder-local StageID.
type NamedSpan struct {
	Node  string
	Stage string
	VC    atm.VC
	Start sim.Time
	End   sim.Time
}

type namedSpanKey struct {
	node, stage string
	vc          atm.VC
}

// NamedSpans pairs Enter/Exit events per (node, stage, VC) in FIFO order
// over the stream as given, returning completed spans plus the count of
// Exits with no matching Enter. Feed it SortNamed-ordered events: then the
// result is a pure function of the event multiset, so a serial run and a
// merged parallel run that recorded the same events produce identical
// spans — the span half of the golden comparison.
func NamedSpans(evs []NamedEvent) (spans []NamedSpan, unmatched int) {
	open := make(map[namedSpanKey][]sim.Time)
	for _, ev := range evs {
		key := namedSpanKey{ev.Node, ev.Stage, ev.VC}
		switch ev.Kind {
		case KindEnter:
			open[key] = append(open[key], ev.At)
		case KindExit:
			q := open[key]
			if len(q) == 0 {
				unmatched++
				continue
			}
			spans = append(spans, NamedSpan{Node: ev.Node, Stage: ev.Stage,
				VC: ev.VC, Start: q[0], End: ev.At})
			open[key] = q[1:]
		}
	}
	return spans, unmatched
}
