package fec

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 100+i*37)
		for j := range p {
			p[j] = byte(i*13 + j)
		}
		out[i] = p
	}
	return out
}

// pump encodes payloads and pushes the wrapped packets through a decoder,
// optionally dropping packets whose global index is in drop.
func pump(t *testing.T, k int, msgs [][]byte, drop map[int]bool) (got [][]byte, recovered int, dec *Decoder) {
	t.Helper()
	enc := NewEncoder(k)
	dec = NewDecoder(func(p []byte, rec bool) {
		got = append(got, p)
		if rec {
			recovered++
		}
	})
	idx := 0
	push := func(pkt []byte) {
		if pkt == nil {
			return
		}
		if !drop[idx] {
			if err := dec.Push(pkt); err != nil {
				t.Fatalf("push %d: %v", idx, err)
			}
		}
		idx++
	}
	for _, m := range msgs {
		data, parity, err := enc.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		push(data)
		push(parity)
	}
	return got, recovered, dec
}

func TestNoLossPassThrough(t *testing.T) {
	msgs := payloads(8) // two full groups of 4
	got, recovered, dec := pump(t, 4, msgs, nil)
	if recovered != 0 {
		t.Fatalf("recovered %d with no loss", recovered)
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d of 8", len(got))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
	if dec.Stats().Parity != 2 {
		t.Fatalf("stats %+v", dec.Stats())
	}
}

func TestSingleLossRecovered(t *testing.T) {
	msgs := payloads(4)
	// Wire order: d0 d1 d2 d3 parity (indices 0..4). Drop d1.
	got, recovered, dec := pump(t, 4, msgs, map[int]bool{1: true})
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d of 4", len(got))
	}
	// Delivery order: d0, d2, d3, then the reconstructed d1.
	if !bytes.Equal(got[3], msgs[1]) {
		t.Fatal("reconstructed payload wrong")
	}
	if dec.Stats().Recovered != 1 || dec.Stats().Unusable != 0 {
		t.Fatalf("stats %+v", dec.Stats())
	}
}

func TestEveryPositionRecoverable(t *testing.T) {
	for lost := 0; lost < 5; lost++ {
		msgs := payloads(5)
		got, recovered, _ := pump(t, 5, msgs, map[int]bool{lost: true})
		if recovered != 1 {
			t.Fatalf("lost=%d: recovered %d", lost, recovered)
		}
		found := false
		for _, g := range got {
			if bytes.Equal(g, msgs[lost]) {
				found = true
			}
		}
		if !found {
			t.Fatalf("lost=%d: payload not reconstructed", lost)
		}
	}
}

func TestDoubleLossUnrecoverable(t *testing.T) {
	msgs := payloads(4)
	got, recovered, dec := pump(t, 4, msgs, map[int]bool{0: true, 2: true})
	if recovered != 0 {
		t.Fatal("recovered from a double loss?!")
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2 survivors", len(got))
	}
	if dec.Stats().Unusable != 1 {
		t.Fatalf("stats %+v", dec.Stats())
	}
}

func TestParityLossHarmlessWhenDataComplete(t *testing.T) {
	msgs := payloads(4)
	got, recovered, _ := pump(t, 4, msgs, map[int]bool{4: true}) // drop parity
	if len(got) != 4 || recovered != 0 {
		t.Fatalf("delivered %d recovered %d", len(got), recovered)
	}
}

func TestVariableLengthRecovery(t *testing.T) {
	// The XOR carries a length prefix, so a short packet missing among
	// long ones reconstructs at its true length.
	msgs := [][]byte{bytes.Repeat([]byte{1}, 5000), {0xaa}, bytes.Repeat([]byte{2}, 3000)}
	got, recovered, _ := pump(t, 3, msgs, map[int]bool{1: true})
	if recovered != 1 {
		t.Fatalf("recovered %d", recovered)
	}
	if !bytes.Equal(got[len(got)-1], []byte{0xaa}) {
		t.Fatalf("short payload reconstructed as %d bytes", len(got[len(got)-1]))
	}
}

func TestRejections(t *testing.T) {
	dec := NewDecoder(func([]byte, bool) {})
	if err := dec.Push([]byte{1, 2, 3}); !errors.Is(err, ErrNotFEC) {
		t.Fatalf("short err = %v", err)
	}
	if err := dec.Push(make([]byte, 20)); !errors.Is(err, ErrNotFEC) {
		t.Fatalf("bad magic err = %v", err)
	}
	enc := NewEncoder(2)
	if _, _, err := enc.Encode(make([]byte, MaxData+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize err = %v", err)
	}
	// Duplicate data packet.
	data, _, _ := enc.Encode([]byte{1, 2})
	if err := dec.Push(data); err != nil {
		t.Fatal(err)
	}
	if err := dec.Push(data); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup err = %v", err)
	}
}

func TestInvalidKPanics(t *testing.T) {
	for _, k := range []int{0, 1, 256} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			NewEncoder(k)
		}()
	}
}

// Property: for any group size and any single dropped index, all payloads
// are eventually delivered intact.
func TestPropertySingleLossAlwaysRecovered(t *testing.T) {
	f := func(kRaw, dropRaw uint8, seed uint8) bool {
		k := int(kRaw)%6 + 2
		msgs := make([][]byte, k)
		for i := range msgs {
			p := make([]byte, (int(seed)+i*31)%400+1)
			for j := range p {
				p[j] = byte(i + j + int(seed))
			}
			msgs[i] = p
		}
		drop := int(dropRaw) % (k + 1) // may drop the parity itself
		enc := NewEncoder(k)
		var got [][]byte
		dec := NewDecoder(func(p []byte, rec bool) { got = append(got, p) })
		idx := 0
		for _, m := range msgs {
			data, parity, err := enc.Encode(m)
			if err != nil {
				return false
			}
			for _, pkt := range [][]byte{data, parity} {
				if pkt == nil {
					continue
				}
				if idx != drop {
					if dec.Push(pkt) != nil {
						return false
					}
				}
				idx++
			}
		}
		if len(got) != k && !(drop == k && len(got) == k) {
			// Dropping a data packet still yields k deliveries; dropping
			// the parity yields k as well.
			return false
		}
		// Every original payload present exactly once.
		for _, m := range msgs {
			found := 0
			for _, g := range got {
				if bytes.Equal(g, m) {
					found++
				}
			}
			if found != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeDecodeK8(b *testing.B) {
	enc := NewEncoder(8)
	dec := NewDecoder(func([]byte, bool) {})
	payload := make([]byte, 8192)
	b.SetBytes(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, parity, _ := enc.Encode(payload)
		dec.Push(data)
		if parity != nil {
			dec.Push(parity)
		}
	}
}
