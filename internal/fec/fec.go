// Package fec implements packet-level forward error correction above the
// AAL5 service: groups of k data packets are followed by one XOR parity
// packet, so any single loss within a group is reconstructed without a
// retransmission round trip.
//
// This is the recovery style the early-90s loss-sensitivity results (our E8)
// pushed the field toward — parity over packets, computed by the host,
// because AAL5 deliberately has no per-cell redundancy. It trades k⁻¹ of the
// bandwidth for immunity to isolated frame loss; burst losses of two or
// more frames in one group still need the transport's retransmission.
//
// Wire format: every packet (data and parity) is prefixed with an 8-byte
// header:
//
//	magic (1) | flags (1: bit0 = parity) | group (2) | index (1) | k (1) | length (2)
//
// where length is the original payload length for data packets; a parity
// packet's body is the XOR of the group's length-prefixed, zero-padded
// bodies, letting the decoder recover both the bytes and the length of the
// missing packet.
package fec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	magic      = 0xFE
	flagParity = 0x01
	// HeaderSize is the per-packet FEC overhead.
	HeaderSize = 8
	// MaxData bounds a protected payload (length field is 16 bits).
	MaxData = 65000
)

// Errors.
var (
	ErrTooLarge  = errors.New("fec: payload exceeds MaxData")
	ErrNotFEC    = errors.New("fec: not an FEC packet")
	ErrBadK      = errors.New("fec: invalid group size")
	ErrDuplicate = errors.New("fec: duplicate packet in group")
)

// Encoder wraps payloads into FEC groups. Not safe for concurrent use (the
// simulator is single-threaded by design).
type Encoder struct {
	k      int
	group  uint16
	index  int
	parity []byte // running XOR of length-prefixed padded bodies
	maxLen int
}

// NewEncoder returns an encoder emitting one parity packet per k data
// packets. k must be in [2, 255].
func NewEncoder(k int) *Encoder {
	if k < 2 || k > 255 {
		panic(fmt.Sprintf("fec: invalid k %d", k))
	}
	return &Encoder{k: k}
}

// K returns the group size.
func (e *Encoder) K() int { return e.k }

// body builds the XOR unit for a payload: 2-byte length + payload.
func body(payload []byte) []byte {
	b := make([]byte, 2+len(payload))
	binary.BigEndian.PutUint16(b[:2], uint16(len(payload)))
	copy(b[2:], payload)
	return b
}

// Encode wraps one payload. It returns the wrapped data packet and, when
// this payload completes a group, the group's parity packet.
func (e *Encoder) Encode(payload []byte) (data []byte, parity []byte, err error) {
	if len(payload) > MaxData {
		return nil, nil, ErrTooLarge
	}
	data = make([]byte, HeaderSize+len(payload))
	data[0] = magic
	data[1] = 0
	binary.BigEndian.PutUint16(data[2:4], e.group)
	data[4] = byte(e.index)
	data[5] = byte(e.k)
	binary.BigEndian.PutUint16(data[6:8], uint16(len(payload)))
	copy(data[HeaderSize:], payload)

	// Fold into the running parity.
	b := body(payload)
	if len(b) > len(e.parity) {
		e.parity = append(e.parity, make([]byte, len(b)-len(e.parity))...)
	}
	for i := range b {
		e.parity[i] ^= b[i]
	}
	e.index++

	if e.index == e.k {
		parity = make([]byte, HeaderSize+len(e.parity))
		parity[0] = magic
		parity[1] = flagParity
		binary.BigEndian.PutUint16(parity[2:4], e.group)
		parity[4] = byte(e.k)
		parity[5] = byte(e.k)
		binary.BigEndian.PutUint16(parity[6:8], uint16(len(e.parity)))
		copy(parity[HeaderSize:], e.parity)
		e.group++
		e.index = 0
		e.parity = nil
	}
	return data, parity, nil
}

// DecoderStats counts recovery events.
type DecoderStats struct {
	Data      uint64 // data packets passed through
	Parity    uint64 // parity packets consumed
	Recovered uint64 // payloads reconstructed from parity
	Unusable  uint64 // groups with 2+ losses (parity wasted)
}

// Decoder unwraps FEC packets and reconstructs single losses. Payloads are
// delivered via the callback in arrival order; a recovered payload is
// delivered when its group's parity arrives.
type Decoder struct {
	deliver func(payload []byte, recovered bool)
	groups  map[uint16]*groupState
	stats   DecoderStats
}

type groupState struct {
	k       int
	seen    map[int]bool
	parity  []byte // running XOR of seen bodies
	nSeen   int
	hasPar  bool
	parBody []byte
}

// NewDecoder returns a decoder delivering payloads to the callback.
func NewDecoder(deliver func(payload []byte, recovered bool)) *Decoder {
	if deliver == nil {
		panic("fec: nil deliver callback")
	}
	return &Decoder{deliver: deliver, groups: make(map[uint16]*groupState)}
}

// Stats returns recovery counters.
func (d *Decoder) Stats() DecoderStats { return d.stats }

// Push consumes one wrapped packet (data or parity).
func (d *Decoder) Push(pkt []byte) error {
	if len(pkt) < HeaderSize || pkt[0] != magic {
		return ErrNotFEC
	}
	isParity := pkt[1]&flagParity != 0
	group := binary.BigEndian.Uint16(pkt[2:4])
	index := int(pkt[4])
	k := int(pkt[5])
	length := int(binary.BigEndian.Uint16(pkt[6:8]))
	if k < 2 || k > 255 || (!isParity && index >= k) {
		return ErrBadK
	}
	if len(pkt) < HeaderSize+length && !isParity {
		return ErrNotFEC
	}

	gs := d.groups[group]
	if gs == nil {
		gs = &groupState{k: k, seen: make(map[int]bool)}
		d.groups[group] = gs
	}

	if isParity {
		if gs.hasPar {
			return ErrDuplicate
		}
		gs.hasPar = true
		gs.parBody = append([]byte(nil), pkt[HeaderSize:HeaderSize+length]...)
		d.stats.Parity++
		d.finishGroup(group, gs)
		return nil
	}

	if gs.seen[index] {
		return ErrDuplicate
	}
	gs.seen[index] = true
	gs.nSeen++
	payload := pkt[HeaderSize : HeaderSize+length]
	out := append([]byte(nil), payload...)

	// Fold into the group's running XOR for possible recovery later.
	b := body(payload)
	if len(b) > len(gs.parity) {
		gs.parity = append(gs.parity, make([]byte, len(b)-len(gs.parity))...)
	}
	for i := range b {
		gs.parity[i] ^= b[i]
	}

	d.stats.Data++
	d.deliver(out, false)
	d.finishGroup(group, gs)
	return nil
}

// finishGroup attempts recovery / cleanup once enough of a group has
// arrived.
func (d *Decoder) finishGroup(group uint16, gs *groupState) {
	switch {
	case gs.nSeen == gs.k:
		// Complete without needing parity.
		delete(d.groups, group)
	case gs.hasPar && gs.nSeen == gs.k-1:
		// Exactly one data packet missing: XOR of parity body and the
		// seen bodies IS the missing body.
		n := len(gs.parBody)
		if len(gs.parity) > n {
			n = len(gs.parity)
		}
		rec := make([]byte, n)
		copy(rec, gs.parBody)
		for i := 0; i < len(gs.parity) && i < n; i++ {
			rec[i] ^= gs.parity[i]
		}
		if len(rec) >= 2 {
			length := int(binary.BigEndian.Uint16(rec[:2]))
			if 2+length <= len(rec) {
				d.stats.Recovered++
				d.deliver(rec[2:2+length], true)
			} else {
				d.stats.Unusable++
			}
		}
		delete(d.groups, group)
	case gs.hasPar && gs.nSeen < gs.k-1:
		// Two or more missing: the group is beyond XOR repair. Keep it
		// until stragglers arrive? In-order AAL delivery means nothing
		// more is coming once the parity has arrived.
		d.stats.Unusable++
		delete(d.groups, group)
	}
}
