package host

import (
	"testing"

	"repro/internal/sim"
)

func testCfg() Config {
	return Config{
		InstrRate:         25_000_000,
		InterruptEntry:    120,
		InterruptExit:     80,
		DriverRxPacket:    200,
		DriverTxPacket:    250,
		DriverRxCell:      90,
		StackPerPacket:    450,
		StackPerByteMilli: 500,
	}
}

func TestInstrTime(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	// 25 instructions at 25 MIPS = 1 µs.
	if got := h.InstrTime(25); got != 1000 {
		t.Fatalf("InstrTime(25) = %v, want 1000", int64(got))
	}
	if got := h.InstrTime(0); got != 0 {
		t.Fatalf("InstrTime(0) = %v", int64(got))
	}
}

func TestInterruptChargesEntryAndExit(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	var done sim.Time
	h.Interrupt("test", 100, func() { done = k.Now() })
	k.Run()
	// 120+100+80 = 300 instr = 12 µs.
	if done != 12000 {
		t.Fatalf("interrupt completed at %v, want 12000", int64(done))
	}
	if h.Interrupts() != 1 {
		t.Fatalf("Interrupts() = %d", h.Interrupts())
	}
}

func TestRxPacketCost(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	h.RxPacketInterrupt(9180, nil)
	k.Run()
	// entry+exit 200, driver 200, stack 450, bytes 4590 -> 5440 instr.
	cats := h.Categories()
	if len(cats) != 1 || cats[0].Name != "rx" {
		t.Fatalf("categories %+v", cats)
	}
	if cats[0].Instr != 5440 {
		t.Fatalf("rx instr = %d, want 5440", cats[0].Instr)
	}
}

func TestPerCellPathFarCostlierPerPacket(t *testing.T) {
	// The E4 argument at unit scale: receiving one 9180-byte packet as
	// 192 per-cell interrupts costs >10x the per-packet path.
	k := sim.NewKernel()
	perPacket := New(k, testCfg())
	perCell := New(k, testCfg())
	perPacket.RxPacketInterrupt(9180, nil)
	for i := 0; i < 192; i++ {
		perCell.RxCellInterrupt(48, i == 191, nil)
	}
	k.Run()
	pp := perPacket.Categories()[0].Instr
	pc := perCell.Categories()[0].Instr
	if pc < 10*pp {
		t.Fatalf("per-cell %d instr not >= 10x per-packet %d", pc, pp)
	}
}

func TestTxPacketNoInterrupt(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	h.TxPacket(1000, nil)
	k.Run()
	if h.Interrupts() != 0 {
		t.Fatal("TxPacket took an interrupt")
	}
	cats := h.Categories()
	// driver 250 + stack 450 + 500 = 1200.
	if cats[0].Instr != 1200 {
		t.Fatalf("tx instr = %d, want 1200", cats[0].Instr)
	}
}

func TestTxCompleteInterrupt(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	h.TxCompleteInterrupt(nil)
	k.Run()
	if h.Interrupts() != 1 {
		t.Fatal("no interrupt recorded")
	}
}

func TestCPUSerializesWork(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	var order []string
	h.Work("app", 25, func() { order = append(order, "app") })     // 1 µs
	h.Interrupt("rx", 50, func() { order = append(order, "irq") }) // queued behind
	k.Run()
	if len(order) != 2 || order[0] != "app" || order[1] != "irq" {
		t.Fatalf("order %v", order)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	h.Work("app", 25, nil) // 1 µs busy
	k.Run()
	k.RunUntil(2000)
	u := h.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v", u)
	}
}

func TestCategoriesSorted(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	h.Work("zeta", 1, nil)
	h.Work("alpha", 1, nil)
	k.Run()
	cats := h.Categories()
	if cats[0].Name != "alpha" || cats[1].Name != "zeta" {
		t.Fatalf("not sorted: %+v", cats)
	}
}

func TestPerByteCostRoundsUp(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	h.RxPacketInterrupt(1, nil) // 0.5 instr of byte cost -> 1
	k.Run()
	// 200+200+450+1 = 851.
	if got := h.Categories()[0].Instr; got != 851 {
		t.Fatalf("instr = %d, want 851", got)
	}
}

func TestZeroRatePanics(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("zero instr rate did not panic")
		}
	}()
	New(k, Config{})
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.InstrRate <= 0 || cfg.InterruptEntry <= 0 || cfg.StackPerPacket <= 0 {
		t.Fatalf("default config has zero fields: %+v", cfg)
	}
}

func TestSpinChargesWallTime(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	var done sim.Time
	h.Spin("pio", 8400, func() { done = k.Now() })
	k.Run()
	// 8.4 µs at 25 MIPS = 210 instructions; InstrTime(210) = 8.4 µs.
	if done != 8400 {
		t.Fatalf("spin completed at %v, want 8400", int64(done))
	}
	cats := h.Categories()
	if cats[0].Name != "pio" || cats[0].Instr != 210 {
		t.Fatalf("categories %+v", cats)
	}
}

func TestSpinMinimumOneInstr(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, testCfg())
	h.Spin("tiny", 1, nil) // less than one instruction of wall time
	k.Run()
	if got := h.Categories()[0].Instr; got != 1 {
		t.Fatalf("instr = %d, want 1", got)
	}
}
