// Package host models the workstation behind the interface: a single CPU
// that must run the application *and* every per-packet (or, in the baseline
// architecture, per-cell) networking cost — interrupt handling, the device
// driver, and the protocol stack.
//
// The paper's host-involvement argument is quantitative: a 9180-byte packet
// is 192 cells, so an interface that interrupts per cell asks the host for
// 192 interrupt round-trips where the paper's architecture asks for one.
// Experiment E4 plots what that does to host CPU utilization as offered
// load rises; this package is the ledger those curves come from.
package host

import (
	"sort"

	"repro/internal/sim"
)

// Config sets the host CPU model. Instruction counts follow the DECstation
// 5000-class workstation of the paper's era.
type Config struct {
	// InstrRate is sustained instructions per second (≈25 MIPS).
	InstrRate int64
	// InterruptEntry/Exit are the mode-switch costs around every device
	// interrupt: trap, register save, dispatch; restore, return.
	InterruptEntry int
	InterruptExit  int
	// DriverRxPacket is driver work per received packet: read status,
	// unlink buffer, hand to stack, replenish descriptor.
	DriverRxPacket int
	// DriverTxPacket is driver work per transmitted packet: build
	// descriptor, PIO doorbell bookkeeping (bus time charged separately).
	DriverTxPacket int
	// DriverRxCell is driver work per *cell* for the per-cell-interrupt
	// baseline: read cell from board, append to pbuf, check for EOP.
	DriverRxCell int
	// StackPerPacket is transport+network per-packet cost (headers,
	// demux, ACK bookkeeping).
	StackPerPacket int
	// StackPerByteMilli is per-byte cost in thousandths of an instruction
	// (checksum + any copy), e.g. 500 = 0.5 instr/byte.
	StackPerByteMilli int
}

// DefaultConfig returns the workstation model used across the experiments.
func DefaultConfig() Config {
	return Config{
		InstrRate:         25_000_000,
		InterruptEntry:    120,
		InterruptExit:     80,
		DriverRxPacket:    200,
		DriverTxPacket:    250,
		DriverRxCell:      90,
		StackPerPacket:    450,
		StackPerByteMilli: 500,
	}
}

// Host is the workstation CPU.
type Host struct {
	k   *sim.Kernel
	cfg Config
	cpu *sim.Resource

	categories map[string]*CategoryStat
	interrupts uint64
}

// CategoryStat accumulates CPU time by work category.
type CategoryStat struct {
	Name  string
	Calls uint64
	Instr uint64
	Time  sim.Duration
}

// New creates a host on kernel k.
func New(k *sim.Kernel, cfg Config) *Host {
	if cfg.InstrRate <= 0 {
		panic("host: non-positive instruction rate")
	}
	return &Host{k: k, cfg: cfg, cpu: sim.NewResource(k, "hostcpu"),
		categories: make(map[string]*CategoryStat)}
}

// Config returns the host's cost model.
func (h *Host) Config() Config { return h.cfg }

// InstrTime converts instructions to CPU time (rounded up).
func (h *Host) InstrTime(instr int) sim.Duration {
	if instr <= 0 {
		return 0
	}
	ns := int64(instr) * 1_000_000_000 / h.cfg.InstrRate
	if int64(instr)*1_000_000_000%h.cfg.InstrRate != 0 {
		ns++
	}
	return sim.Duration(ns)
}

// run charges instr instructions under the named category, then calls done.
func (h *Host) run(category string, instr int, done func()) sim.Time {
	d := h.InstrTime(instr)
	st := h.categories[category]
	if st == nil {
		st = &CategoryStat{Name: category}
		h.categories[category] = st
	}
	st.Calls++
	st.Instr += uint64(instr)
	st.Time += d
	return h.cpu.Use(d, done)
}

// Work charges application or benchmark-harness CPU work.
func (h *Host) Work(category string, instr int, done func()) sim.Time {
	return h.run(category, instr, done)
}

// Spin occupies the CPU for a fixed duration — programmed I/O: the
// processor drives the bus transaction itself and does nothing else
// meanwhile. The duration is converted to the equivalent instruction count
// for the category ledger.
func (h *Host) Spin(category string, d sim.Duration, done func()) sim.Time {
	instr := int(int64(d) * h.cfg.InstrRate / 1_000_000_000)
	if instr < 1 {
		instr = 1
	}
	return h.run(category, instr, done)
}

// Interrupt charges a full interrupt round trip (entry + body + exit) under
// the given category. The body instruction count excludes the mode switches.
func (h *Host) Interrupt(category string, body int, done func()) sim.Time {
	h.interrupts++
	return h.run(category, h.cfg.InterruptEntry+body+h.cfg.InterruptExit, done)
}

// RxPacketInterrupt charges the per-packet receive path: interrupt + driver
// + stack (per-packet and per-byte terms).
func (h *Host) RxPacketInterrupt(payloadBytes int, done func()) sim.Time {
	body := h.cfg.DriverRxPacket + h.cfg.StackPerPacket +
		(payloadBytes*h.cfg.StackPerByteMilli+999)/1000
	return h.Interrupt("rx", body, done)
}

// RxCellInterrupt charges the per-cell receive path the baseline suffers.
// eop adds the per-packet stack cost on the final cell of a packet.
func (h *Host) RxCellInterrupt(payloadBytes int, eop bool, done func()) sim.Time {
	body := h.cfg.DriverRxCell + (payloadBytes*h.cfg.StackPerByteMilli+999)/1000
	if eop {
		body += h.cfg.StackPerPacket + h.cfg.DriverRxPacket
	}
	return h.Interrupt("rx-cell", body, done)
}

// TxPacket charges the per-packet transmit path: stack + driver (syscall
// context, no interrupt).
func (h *Host) TxPacket(payloadBytes int, done func()) sim.Time {
	instr := h.cfg.DriverTxPacket + h.cfg.StackPerPacket +
		(payloadBytes*h.cfg.StackPerByteMilli+999)/1000
	return h.run("tx", instr, done)
}

// TxCompleteInterrupt charges the transmit-done interrupt (descriptor
// reclaim).
func (h *Host) TxCompleteInterrupt(done func()) sim.Time {
	return h.Interrupt("tx-done", 60, done)
}

// Utilization is the fraction of simulated time the CPU was busy.
func (h *Host) Utilization() float64 { return h.cpu.Utilization() }

// Interrupts returns the total interrupts taken.
func (h *Host) Interrupts() uint64 { return h.interrupts }

// Busy reports whether the CPU is occupied right now.
func (h *Host) Busy() bool { return h.cpu.Busy() }

// QueueLen reports work items awaiting the CPU.
func (h *Host) QueueLen() int { return h.cpu.QueueLen() }

// Categories returns per-category statistics sorted by name.
func (h *Host) Categories() []CategoryStat {
	out := make([]CategoryStat, 0, len(h.categories))
	for _, st := range h.categories {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
