package sonetlink

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/tm"
	"repro/internal/trace"
)

// sonetRun captures everything a mode-equivalence check compares: each
// delivered SDU with its delivery time, the link and interface counters,
// and the flight recorder's matched spans in deterministic order.
type sonetRun struct {
	deliveries []string
	metrics    string
	spans      []trace.Span
	unmatched  int
}

func runSonetWorkload(t *testing.T, rate sonet.Rate, burst bool, burstSize int) sonetRun {
	t.Helper()
	k := sim.NewKernel()
	reg := metrics.NewRegistry()
	rec := trace.NewRecorder(k, 1<<16)
	mk := func(name string) *nic.Interface {
		cfg := nic.DefaultConfig(name)
		cfg.PayloadRate = rate.PayloadRate()
		cfg.RxFifoDepth = 128
		cfg.Metrics = reg
		iface, err := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		return iface
	}
	a, b := mk("a"), mk("b")
	_, err := Connect(k, Config{
		Rate: rate, Delay: 10_000, Seed: 3,
		Metrics: reg, Recorder: rec,
		Burst: burst, BurstSize: burstSize,
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	var run sonetRun
	b.OnReceive(func(d nic.Delivered) {
		run.deliveries = append(run.deliveries,
			fmt.Sprintf("t=%d vc=%v len=%d head=%x", int64(k.Now()), d.VC, len(d.SDU), d.SDU[:4]))
	})
	a.OpenVC(vc())
	b.OpenVC(vc())
	for i := 0; i < 12; i++ {
		if err := a.Send(vc(), pkt(700+331*i), nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	var sb bytes.Buffer
	if err := reg.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	run.metrics = sb.String()
	spans, unmatched := rec.Spans()
	trace.SortSpans(spans)
	run.spans = spans
	run.unmatched = unmatched
	return run
}

// TestSonetBurstModeGoldenIdentity pins burst-mode delivery cell-for-cell
// against the serial per-cell path: same SDUs at the same nanoseconds, the
// same metrics registry byte-for-byte, and the same trace spans.
func TestSonetBurstModeGoldenIdentity(t *testing.T) {
	for _, rate := range []sonet.Rate{sonet.STS3c, sonet.STS12c} {
		serial := runSonetWorkload(t, rate, false, 0)
		if len(serial.deliveries) != 12 {
			t.Fatalf("%v serial: delivered %d of 12", rate, len(serial.deliveries))
		}
		for _, size := range []int{0, 1, 2, 7, 44} {
			burst := runSonetWorkload(t, rate, true, size)
			if len(burst.deliveries) != len(serial.deliveries) {
				t.Fatalf("%v burst(size=%d): delivered %d, serial %d",
					rate, size, len(burst.deliveries), len(serial.deliveries))
			}
			for i := range burst.deliveries {
				if burst.deliveries[i] != serial.deliveries[i] {
					t.Fatalf("%v burst(size=%d) delivery %d:\n  burst:  %s\n  serial: %s",
						rate, size, i, burst.deliveries[i], serial.deliveries[i])
				}
			}
			if burst.metrics != serial.metrics {
				t.Fatalf("%v burst(size=%d): metrics registry diverges from serial:\n--- burst\n%s\n--- serial\n%s",
					rate, size, burst.metrics, serial.metrics)
			}
			if len(burst.spans) != len(serial.spans) || burst.unmatched != serial.unmatched {
				t.Fatalf("%v burst(size=%d): %d spans (%d unmatched), serial %d (%d)",
					rate, size, len(burst.spans), burst.unmatched, len(serial.spans), serial.unmatched)
			}
			for i := range burst.spans {
				if burst.spans[i] != serial.spans[i] {
					t.Fatalf("%v burst(size=%d) span %d: %+v, serial %+v",
						rate, size, i, burst.spans[i], serial.spans[i])
				}
			}
		}
	}
}

// runSonetABRWorkload is the marked-up variant of runSonetWorkload: an ABR
// connection whose data cells are all EFCI-marked on the way into the
// framer, so the recovery path under test carries congested user cells in
// one direction and turned-around RM cells in the other.
func runSonetABRWorkload(t *testing.T, burst bool, burstSize int) (sonetRun, float64) {
	t.Helper()
	k := sim.NewKernel()
	reg := metrics.NewRegistry()
	rec := trace.NewRecorder(k, 1<<16)
	mk := func(name string) *nic.Interface {
		cfg := nic.DefaultConfig(name)
		cfg.RxFifoDepth = 128
		cfg.Metrics = reg
		iface, err := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		return iface
	}
	a, b := mk("a"), mk("b")
	link, err := Connect(k, Config{
		Rate: sonet.STS3c, Delay: 10_000, Seed: 3,
		Metrics: reg, Recorder: rec,
		Burst: burst, BurstSize: burstSize,
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	a.OpenVC(vc())
	b.OpenVC(vc())
	if err := a.SetABR(vc(), tm.ABRParams{PCR: 100_000, ICR: 50_000, Nrm: 32}); err != nil {
		t.Fatal(err)
	}
	a.AttachSink(&efciMarker{dst: link.AtoB})
	var run sonetRun
	b.OnReceive(func(d nic.Delivered) {
		run.deliveries = append(run.deliveries,
			fmt.Sprintf("t=%d vc=%v len=%d head=%x", int64(k.Now()), d.VC, len(d.SDU), d.SDU[:4]))
	})
	for i := 0; i < 8; i++ {
		if err := a.Send(vc(), pkt(2000+777*i), nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	var sb bytes.Buffer
	if err := reg.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	run.metrics = sb.String()
	spans, unmatched := rec.Spans()
	trace.SortSpans(spans)
	run.spans = spans
	run.unmatched = unmatched
	acr, _ := a.ACR(vc())
	return run, acr
}

// TestSonetBurstEFCIMarkedGoldenIdentity pins the batched recovery path
// against serial delivery on a workload where every user cell carries the
// EFCI bit and the reverse direction carries CI-bearing backward RM cells:
// same SDUs at the same nanoseconds, byte-identical registry (including
// the NIC's abr counters), the same spans, and the same final ACR. A burst
// path that dropped or reordered the congestion bit would diverge in all
// four.
func TestSonetBurstEFCIMarkedGoldenIdentity(t *testing.T) {
	serial, serialACR := runSonetABRWorkload(t, false, 0)
	if len(serial.deliveries) != 8 {
		t.Fatalf("serial: delivered %d of 8", len(serial.deliveries))
	}
	if serialACR >= 50_000 || serialACR <= 0 {
		t.Fatalf("serial ACR = %.0f, want inside (0, ICR): CI feedback missing", serialACR)
	}
	for _, size := range []int{0, 1, 7} {
		burst, burstACR := runSonetABRWorkload(t, true, size)
		if len(burst.deliveries) != len(serial.deliveries) {
			t.Fatalf("burst(size=%d): delivered %d, serial %d", size, len(burst.deliveries), len(serial.deliveries))
		}
		for i := range burst.deliveries {
			if burst.deliveries[i] != serial.deliveries[i] {
				t.Fatalf("burst(size=%d) delivery %d:\n  burst:  %s\n  serial: %s",
					size, i, burst.deliveries[i], serial.deliveries[i])
			}
		}
		if burst.metrics != serial.metrics {
			t.Fatalf("burst(size=%d): metrics registry diverges:\n--- burst\n%s\n--- serial\n%s",
				size, burst.metrics, serial.metrics)
		}
		if len(burst.spans) != len(serial.spans) || burst.unmatched != serial.unmatched {
			t.Fatalf("burst(size=%d): %d spans (%d unmatched), serial %d (%d)",
				size, len(burst.spans), burst.unmatched, len(serial.spans), serial.unmatched)
		}
		for i := range burst.spans {
			if burst.spans[i] != serial.spans[i] {
				t.Fatalf("burst(size=%d) span %d: %+v, serial %+v", size, i, burst.spans[i], serial.spans[i])
			}
		}
		if burstACR != serialACR {
			t.Fatalf("burst(size=%d) ACR = %.0f, serial %.0f", size, burstACR, serialACR)
		}
	}
}
