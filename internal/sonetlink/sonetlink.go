// Package sonetlink runs the interface over the real physical layer: instead
// of the cell-granular phy.CellLink shortcut, cells are packed into SONET
// frames (with scrambling, BIP parity and HEC-based cell delineation),
// carried as serialized 125 µs frames, and recovered by the receive framer —
// the complete path the board's framer chip implemented.
//
// It exists for two reasons: examples and tests that exercise the whole
// stack, and fault studies where the corruption unit is a line bit rather
// than a cell (a single flipped bit can cost a header, a payload, or — if it
// lands in the overhead — nothing but a parity alarm).
package sonetlink

import (
	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/fifo"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config parameterizes the SONET path.
type Config struct {
	// Rate selects STS-3c or STS-12c framing. It must match the
	// interfaces' payload rate or the transmit queue will run dry or
	// overflow; Connect checks.
	Rate sonet.Rate
	// Delay is the fiber propagation delay.
	Delay sim.Duration
	// BitErrProb is the probability each frame suffers one random bit
	// error in flight.
	BitErrProb float64
	// Seed drives fault injection.
	Seed uint64
	// Metrics, when non-nil, receives per-direction link telemetry:
	// "link.<src>.data_cells", ".idle_cells", ".frames", ".queue_drops"
	// counters and "link.<src>.queue.*" FIFO instruments, where <src> is
	// the transmitting interface's configured name.
	Metrics *metrics.Registry
	// Recorder, when non-nil, attaches flight-recorder spans to each
	// direction under node "link.<src>": stage "framer.queue" covers the
	// transmit queue (enqueue to pull-into-frame) and stage "wire" the
	// framed flight plus the receive-side spreading delay.
	Recorder *trace.Recorder
	// Burst switches the receive recovery path to cell-vector delivery:
	// each parsed frame's data cells are handed to the destination interface
	// as one atm.CellBurst (base = first cell's wire slot, stride = one cell
	// time) instead of one deferred event per cell. The destination
	// re-spreads at the arithmetic times, so receive behavior is identical
	// cell-for-cell; the wire span is recorded in compact burst form.
	Burst bool
	// BurstSize caps the cells per emitted vector (0 = one frame's whole
	// recovery run). The mode-equivalence property tests sweep this axis;
	// production configs leave it 0.
	BurstSize int
}

// Stats counts one direction's events.
type Stats struct {
	Frames         uint64
	DataCells      uint64 // non-idle cells carried
	IdleCells      uint64 // fill inserted when the TX queue ran dry
	QueueDrops     uint64 // TX-side overflow (interface outran the framer)
	FrameErrors    uint64 // received frames the deframer rejected outright
	HeaderDiscards uint64 // delineated cells whose header would not decode
	Delineation    sonet.DelineatorStats
	Deframer       sonet.DeframerStats
}

// Link is a duplex SONET-framed connection between two interfaces.
type Link struct {
	AtoB *Half
	BtoA *Half
}

// Half is one direction.
type Half struct {
	k    *sim.Kernel
	cfg  Config
	dst  *nic.Interface
	fr   *sonet.Framer
	df   *sonet.Deframer
	del  *sonet.Delineator
	line *phy.FrameLink

	queue    *fifo.Ring[*atm.Cell]
	srcPool  *atm.Pool
	frameBuf []byte
	cellTime sim.Duration
	cellIdx  int // cells recovered from the frame being parsed
	running  bool
	pending  *atm.CellBurst // burst mode: cells recovered, not yet emitted

	// Pre-bound callbacks and the cell deferrer keep the per-frame tick
	// and per-cell delivery free of closure/method-value allocations.
	frameTickFn func()
	deliverFn   func(*atm.Cell)
	def         *phy.CellDeferrer

	stats Stats

	// Registry instruments (no-ops when Config.Metrics is nil).
	mFrames         *metrics.Counter
	mDataCells      *metrics.Counter
	mIdleCells      *metrics.Counter
	mQueueDrops     *metrics.Counter
	mFrameErrors    *metrics.Counter
	mHeaderDiscards *metrics.Counter

	// Flight-recorder spans (nil unless Config.Recorder is set).
	spQueue *trace.StageSpan
	spWire  *trace.StageSpan
}

// Connect wires a and b through SONET framing in both directions. The
// framers tick every 125 µs for as long as the simulation runs them (they
// stop when both directions are idle, so kernels still drain).
func Connect(k *sim.Kernel, cfg Config, a, b *nic.Interface) (*Link, error) {
	for _, ifc := range []*nic.Interface{a, b} {
		if ifc.Config().PayloadRate != cfg.Rate.PayloadRate() {
			return nil, errRateMismatch
		}
	}
	ab := newHalf(k, cfg, a, b)
	ba := newHalf(k, cfg, b, a)
	a.AttachSink(ab)
	b.AttachSink(ba)
	return &Link{AtoB: ab, BtoA: ba}, nil
}

var errRateMismatch = errorString("sonetlink: interface payload rate does not match SONET rate")

type errorString string

func (e errorString) Error() string { return string(e) }

func newHalf(k *sim.Kernel, cfg Config, src, dst *nic.Interface) *Half {
	h := &Half{
		k: k, cfg: cfg, dst: dst,
		// Two frames' worth of cells absorbs the burst mismatch between
		// the interface's smooth cell clock and the framer's 125 µs
		// granularity.
		queue:    fifo.NewRing[*atm.Cell](2 * cellsPerFrame(cfg.Rate)),
		srcPool:  src.Pool(),
		cellTime: units.CellTime(cfg.Rate.PayloadRate()),
	}
	h.frameTickFn = h.frameTick
	h.deliverFn = h.deliverRecovered
	h.def = phy.NewCellDeferrer(k)
	lp := "link." + src.Config().Name
	h.queue.Instrument(cfg.Metrics, lp+".queue")
	h.spQueue = cfg.Recorder.Stage(lp, "framer.queue")
	h.spWire = cfg.Recorder.Stage(lp, "wire")
	h.mFrames = cfg.Metrics.Counter(lp + ".frames")
	h.mDataCells = cfg.Metrics.Counter(lp + ".data_cells")
	h.mIdleCells = cfg.Metrics.Counter(lp + ".idle_cells")
	h.mQueueDrops = cfg.Metrics.Counter(lp + ".queue_drops")
	h.mFrameErrors = cfg.Metrics.Counter(lp + ".frame_errors")
	h.mHeaderDiscards = cfg.Metrics.Counter(lp + ".header_discards")
	h.fr = sonet.NewFramer(cfg.Rate, (*txSource)(h))
	h.frameBuf = make([]byte, h.fr.Geometry().FrameBytes)
	h.del = sonet.NewDelineator(h.cellRecovered)
	h.df = sonet.NewDeframer(cfg.Rate, h.del)
	h.line = phy.NewFrameLink(k, cfg.Delay, cfg.Seed, h.frameArrived)
	h.line.BitErrProb = cfg.BitErrProb
	// The deframer copies every frame into its own scratch, so the wire
	// copies can recycle the moment frameArrived returns: one pooled buffer
	// per in-flight window instead of one allocation per frame.
	wirePool := bufpool.New()
	wirePool.Instrument(cfg.Metrics, lp+".wirebuf")
	h.line.SetBufPool(wirePool)
	// Carrier transitions (Fail/Restore) reach the receiving interface's
	// fault manager: losing the light is LOS, not just silence.
	h.line.SetSignalSink(dst)
	// Prime the far end's cell delineation with one idle-only frame at
	// link bring-up (44+ idle cells comfortably cover HUNT + the 6-cell
	// PRESYNC confirmation). A real link is never dark before traffic;
	// this models that without running the framer eternally.
	k.At(k.Now(), func() {
		h.fr.NextFrame(h.frameBuf)
		h.line.Send(h.frameBuf)
		h.mFrames.Inc()
	})
	return h
}

func cellsPerFrame(r sonet.Rate) int {
	return sonet.Geom(r).PayloadPer/atm.CellSize + 1
}

// Stats returns this direction's counters.
func (h *Half) Stats() Stats {
	s := h.stats
	s.Frames = h.fr.Frames()
	s.Delineation = h.del.Stats()
	s.Deframer = h.df.Stats()
	return s
}

// DeliverCell implements atm.CellConsumer: the half is the transmitting
// interface's downstream sink.
func (h *Half) DeliverCell(c *atm.Cell) { h.enqueue(c) }

// enqueue accepts a cell from the transmitting interface's cell clock.
func (h *Half) enqueue(c *atm.Cell) {
	if !h.queue.Push(c) {
		h.stats.QueueDrops++
		h.mQueueDrops.Inc()
		h.spQueue.Drop(c.Header.VC(), metrics.DropTxQueue)
		h.srcPool.Put(c)
	} else {
		h.spQueue.Enter(c.Header.VC())
	}
	if !h.running {
		h.running = true
		h.k.PostAfter(sonet.FramePeriodNs, h.frameTickFn)
	}
}

// frameTick emits one SONET frame every 125 µs while there is anything to
// carry, then lets the line go dark so simulations terminate. (A real
// framer never stops; an eternal event would keep the kernel alive forever.)
func (h *Half) frameTick() {
	h.fr.NextFrame(h.frameBuf)
	h.line.Send(h.frameBuf)
	h.mFrames.Inc()
	if h.queue.Empty() {
		// Emit one more frame's worth of idle and stop until traffic
		// resumes; the receiver's delineation state survives the gap
		// in this model because it is re-fed from a byte-aligned frame.
		h.running = false
		return
	}
	h.k.PostAfter(sonet.FramePeriodNs, h.frameTickFn)
}

// txSource adapts the queue to the framer's pull interface.
type txSource Half

// NextCell implements sonet.CellSource.
func (t *txSource) NextCell(dst []byte) {
	h := (*Half)(t)
	cell, ok := h.queue.Pop()
	if !ok {
		h.stats.IdleCells++
		h.mIdleCells.Inc()
		if err := atm.IdleCell().Encode(dst); err != nil {
			panic(err)
		}
		return
	}
	h.stats.DataCells++
	h.mDataCells.Inc()
	h.spQueue.Exit(cell.Header.VC())
	h.spWire.Enter(cell.Header.VC())
	if err := cell.Encode(dst); err != nil {
		panic(err)
	}
	h.srcPool.Put(cell)
}

// Fail cuts this direction's fiber: frames already in flight arrive, then
// the far end sees loss of signal. Transmitted frames are counted and lost
// until Restore.
func (h *Half) Fail() { h.line.Fail() }

// Restore brings the fiber back; the far end sees the signal return after
// the propagation delay.
func (h *Half) Restore() { h.line.Restore() }

// Down reports whether the fiber is currently cut.
func (h *Half) Down() bool { return h.line.Down() }

// frameArrived parses one received frame. A frame the deframer rejects
// (overhead too damaged to trust) is a counted loss, not a crash: bit-error
// sweeps must survive whatever the fault injector produces.
func (h *Half) frameArrived(frame []byte) {
	h.cellIdx = 0
	if err := h.df.PushFrame(frame); err != nil {
		h.stats.FrameErrors++
		h.mFrameErrors.Inc()
	}
	h.flushBurst()
}

// cellRecovered is the delineation sink: deliver each data cell to the
// destination interface, spread across the frame's 125 µs so the RX FIFO
// sees wire-spaced arrivals rather than a burst (the real framer emits
// cells as the bits arrive).
func (h *Half) cellRecovered(cell []byte, corrected bool) {
	c := h.dst.Pool().Get()
	if _, err := c.Decode(cell, atm.UNI); err != nil {
		// The delineator verified the HEC; a decode failure here means
		// an uncorrectable-but-plausible header slipped through. Drop,
		// counted — the loss is real even if no VC can be charged.
		h.stats.HeaderDiscards++
		h.mHeaderDiscards.Inc()
		h.dst.Pool().Put(c)
		return
	}
	if c.Header.IsIdle() {
		h.dst.Pool().Put(c)
		return
	}
	offset := sim.Duration(h.cellIdx) * h.cellTime
	h.cellIdx++
	if h.cfg.Burst {
		if h.pending == nil {
			h.pending = atm.GetBurst(cellsPerFrame(h.cfg.Rate))
			h.pending.Base = int64(h.k.Now()) + int64(offset)
			h.pending.Stride = int64(h.cellTime)
		}
		h.pending.Cells = append(h.pending.Cells, c)
		if h.cfg.BurstSize > 0 && len(h.pending.Cells) >= h.cfg.BurstSize {
			h.flushBurst()
		}
		return
	}
	h.def.Post(offset, h.deliverFn, c)
}

// flushBurst emits the accumulated recovery run as one cell vector. The wire
// span is closed in compact burst form at the arithmetic per-cell times —
// the same (time, VC) exit events the serial path records one by one — and
// the destination interface re-spreads the vector at its receive door, so
// everything downstream is cell-for-cell identical to serial mode.
func (h *Half) flushBurst() {
	b := h.pending
	if b == nil {
		return
	}
	h.pending = nil
	h.spWire.ExitBurst(b)
	h.dst.DeliverBurst(b)
}

// deliverRecovered closes the wire span and hands the recovered cell to the
// destination interface. Cells lost to frame damage in between never Exit;
// they surface as unmatched spans, mirroring the real loss.
func (h *Half) deliverRecovered(c *atm.Cell) {
	h.spWire.Exit(c.Header.VC())
	h.dst.DeliverCell(c)
}
