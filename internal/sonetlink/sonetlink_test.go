package sonetlink

import (
	"bytes"
	"testing"

	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/tm"
	"repro/internal/units"
)

func pkt(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*19 + 1)
	}
	return b
}

type rig struct {
	k    *sim.Kernel
	a, b *nic.Interface
	link *Link
	got  [][]byte
}

func newRig(t *testing.T, rate sonet.Rate) *rig {
	t.Helper()
	k := sim.NewKernel()
	r := &rig{k: k}
	mk := func(name string) *nic.Interface {
		cfg := nic.DefaultConfig(name)
		cfg.PayloadRate = rate.PayloadRate()
		// Deep enough to ride out the framer's 125 µs burst granularity.
		cfg.RxFifoDepth = 128
		iface, err := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		return iface
	}
	r.a, r.b = mk("a"), mk("b")
	link, err := Connect(k, Config{Rate: rate, Delay: 10_000, Seed: 3}, r.a, r.b)
	if err != nil {
		t.Fatal(err)
	}
	r.link = link
	r.b.OnReceive(func(d nic.Delivered) { r.got = append(r.got, d.SDU) })
	return r
}

func vc() atm.VC { return atm.VC{VCI: 33} }

func TestSonetPathEndToEnd(t *testing.T) {
	r := newRig(t, sonet.STS3c)
	r.a.OpenVC(vc())
	r.b.OpenVC(vc())
	payload := pkt(9180)
	if err := r.a.Send(vc(), payload, nil); err != nil {
		t.Fatal(err)
	}
	r.k.Run()
	if len(r.got) != 1 || !bytes.Equal(r.got[0], payload) {
		t.Fatalf("SONET path delivered %d packets", len(r.got))
	}
	st := r.link.AtoB.Stats()
	if st.Frames == 0 || st.DataCells != 192 {
		t.Fatalf("stats %+v", st)
	}
	if st.Delineation.SyncAcquired != 1 || st.Delineation.SyncLosses != 0 {
		t.Fatalf("delineation %+v", st.Delineation)
	}
	if st.Deframer.B1Errors != 0 || st.Deframer.LOSFrames != 0 {
		t.Fatalf("clean fiber reported section errors: %+v", st.Deframer)
	}
}

func TestSonetPathManyPackets(t *testing.T) {
	r := newRig(t, sonet.STS3c)
	r.a.OpenVC(vc())
	r.b.OpenVC(vc())
	const n = 20
	for i := 0; i < n; i++ {
		if err := r.a.Send(vc(), pkt(1000+17*i), nil); err != nil {
			t.Fatal(err)
		}
	}
	r.k.Run()
	if len(r.got) != n {
		t.Fatalf("delivered %d of %d", len(r.got), n)
	}
	for i, sdu := range r.got {
		if !bytes.Equal(sdu, pkt(1000+17*i)) {
			t.Fatalf("packet %d corrupted or reordered", i)
		}
	}
}

func TestSonetPathSTS12c(t *testing.T) {
	r := newRig(t, sonet.STS12c)
	r.a.OpenVC(vc())
	r.b.OpenVC(vc())
	payload := pkt(4096)
	r.a.Send(vc(), payload, nil)
	r.k.Run()
	if len(r.got) != 1 || !bytes.Equal(r.got[0], payload) {
		t.Fatal("STS-12c SONET path failed")
	}
}

func TestSonetIdleFillCounted(t *testing.T) {
	r := newRig(t, sonet.STS3c)
	r.a.OpenVC(vc())
	r.b.OpenVC(vc())
	r.a.Send(vc(), pkt(96), nil) // 3 cells in a ~44-cell frame
	r.k.Run()
	st := r.link.AtoB.Stats()
	if st.IdleCells == 0 {
		t.Fatal("no idle fill despite a nearly empty frame")
	}
	if st.DataCells != 3 {
		t.Fatalf("data cells = %d, want 3", st.DataCells)
	}
}

func TestSonetBitErrorsDetectedNotDelivered(t *testing.T) {
	k := sim.NewKernel()
	mk := func(name string) *nic.Interface {
		cfg := nic.DefaultConfig(name)
		cfg.RxFifoDepth = 128
		iface, _ := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		return iface
	}
	a, b := mk("a"), mk("b")
	link, err := Connect(k, Config{Rate: sonet.STS3c, Delay: 10_000, BitErrProb: 1, Seed: 7}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	b.OnReceive(func(d nic.Delivered) { got = append(got, d.SDU) })
	a.OpenVC(vc())
	b.OpenVC(vc())
	payload := pkt(9180)
	const n = 10
	for i := 0; i < n; i++ {
		a.Send(vc(), payload, nil)
	}
	k.Run()
	// Every delivered packet is intact...
	for _, sdu := range got {
		if !bytes.Equal(sdu, payload) {
			t.Fatal("corrupted SDU delivered through SONET path")
		}
	}
	// ...and the damage showed up somewhere observable.
	st := link.AtoB.Stats()
	rx := b.Stats().Rx
	damage := st.Deframer.B1Errors + st.Delineation.HeaderDropped +
		uint64(st.Delineation.HeaderCorrected) + rx.AALErrors
	if damage == 0 {
		t.Fatalf("1 bit error/frame left no trace: link %+v rx %+v", st, rx)
	}
}

func TestSonetHeaderCorrectionOnTheRealPath(t *testing.T) {
	// With one bit error per frame, some errors land in cell headers; the
	// delineator must fix single-bit header damage rather than drop.
	k := sim.NewKernel()
	mk := func(name string) *nic.Interface {
		cfg := nic.DefaultConfig(name)
		cfg.RxFifoDepth = 128
		iface, _ := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		return iface
	}
	a, b := mk("a"), mk("b")
	link, _ := Connect(k, Config{Rate: sonet.STS3c, Delay: 0, BitErrProb: 1, Seed: 11}, a, b)
	a.OpenVC(vc())
	b.OpenVC(vc())
	for i := 0; i < 40; i++ {
		a.Send(vc(), pkt(9180), nil)
	}
	k.Run()
	if link.AtoB.Stats().Delineation.HeaderCorrected == 0 {
		t.Skip("no bit error landed in a header in this seeded run")
	}
}

func TestRateMismatchRejected(t *testing.T) {
	k := sim.NewKernel()
	cfg := nic.DefaultConfig("a") // STS-3c payload rate
	iface, _ := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
	if _, err := Connect(k, Config{Rate: sonet.STS12c}, iface, iface); err == nil {
		t.Fatal("rate mismatch accepted")
	}
}

func TestSonetThroughputNearLineRate(t *testing.T) {
	r := newRig(t, sonet.STS3c)
	r.a.OpenVC(vc())
	r.b.OpenVC(vc())
	deadline := sim.Time(30 * sim.Millisecond)
	payload := pkt(9180)
	var send func()
	send = func() {
		if r.k.Now() > deadline {
			return
		}
		r.a.Send(vc(), payload, send)
	}
	for i := 0; i < 4; i++ {
		send()
	}
	r.k.RunUntil(deadline)
	bytesRx := r.b.Stats().Rx.Bytes
	r.k.Run()
	got := units.ThroughputBps(int64(bytesRx), deadline)
	ceiling := float64(units.STS3cPayload) * 9180 / float64(192*53)
	if got < 0.8*ceiling {
		t.Fatalf("SONET-path goodput %.1f Mb/s < 80%% of %.1f Mb/s", got/1e6, ceiling/1e6)
	}
}

// TestSonetBERSweepSurvives is the fault-sweep regression: whatever a given
// bit-error rate does to frames, headers, and payloads, the run completes
// without a panic, every delivered SDU is intact, and the damage shows up in
// counted stats rather than vanishing.
func TestSonetBERSweepSurvives(t *testing.T) {
	// BitErrProb is per-frame; an STS-3c frame carries 2430 bytes = 19440
	// bits, so a line BER of b is roughly 19440*b per frame.
	const frameBits = 19440
	for i, ber := range []float64{1e-7, 1e-6, 1e-5, 5e-5} {
		p := frameBits * ber
		if p > 1 {
			p = 1
		}
		k := sim.NewKernel()
		mk := func(name string) *nic.Interface {
			cfg := nic.DefaultConfig(name)
			cfg.RxFifoDepth = 128
			iface, _ := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
			return iface
		}
		a, b := mk("a"), mk("b")
		link, err := Connect(k, Config{Rate: sonet.STS3c, Delay: 10_000, BitErrProb: p, Seed: uint64(100 + i)}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		payload := pkt(9180)
		var delivered int
		b.OnReceive(func(d nic.Delivered) {
			delivered++
			if !bytes.Equal(d.SDU, payload) {
				t.Fatalf("ber %g: corrupted SDU delivered", ber)
			}
		})
		a.OpenVC(vc())
		b.OpenVC(vc())
		const n = 15
		for j := 0; j < n; j++ {
			a.Send(vc(), payload, nil)
		}
		k.Run()
		if delivered > n {
			t.Fatalf("ber %g: delivered %d of %d sent", ber, delivered, n)
		}
		// Whatever was not delivered left a trace in some counter.
		st := link.AtoB.Stats()
		rx := b.Stats().Rx
		damage := st.FrameErrors + st.HeaderDiscards + st.Deframer.B1Errors +
			st.Deframer.LOSFrames + st.Delineation.HeaderDropped +
			uint64(st.Delineation.HeaderCorrected) + uint64(st.Delineation.SyncLosses) +
			rx.AALErrors + rx.BadOAM
		if delivered < n && damage == 0 {
			t.Fatalf("ber %g: %d frames lost with no counted damage: link %+v rx %+v",
				ber, n-delivered, st, rx)
		}
	}
}

// TestSonetDamagedFrameCountedNotPanic is the direct regression for the
// receive path: a frame the deframer rejects outright must be a counted
// loss, and a delineated cell whose header will not decode must be a counted
// discard — neither may crash the run.
func TestSonetDamagedFrameCounted(t *testing.T) {
	r := newRig(t, sonet.STS3c)
	h := r.link.AtoB

	h.frameArrived(make([]byte, 17)) // far too short: PushFrame error
	if st := h.Stats(); st.FrameErrors != 1 {
		t.Fatalf("FrameErrors = %d, want 1", st.FrameErrors)
	}

	// A double-bit header error is beyond the HEC's single-bit correction:
	// the delineator can hand such a cell up, and decode must reject it.
	good := &atm.Cell{Header: atm.Header{Format: atm.UNI, VCI: 33}}
	buf := make([]byte, atm.CellSize)
	if err := good.Encode(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xc0
	h.cellRecovered(buf, false)
	if st := h.Stats(); st.HeaderDiscards != 1 {
		t.Fatalf("HeaderDiscards = %d, want 1", st.HeaderDiscards)
	}
	r.k.Run() // nothing pending must misbehave afterwards
}

// TestSonetLinkFailureLOS: cutting one SONET direction is loss of signal at
// the far interface — its fault manager declares LOS, answers with RDI over
// the intact reverse direction, and the alarm soaks out after repair.
func TestSonetLinkFailureLOS(t *testing.T) {
	k := sim.NewKernel()
	mk := func(name string) *nic.Interface {
		cfg := nic.DefaultConfig(name)
		cfg.RxFifoDepth = 128
		cfg.AlarmPeriod = 100 * sim.Microsecond
		cfg.AlarmClearTimeout = 300 * sim.Microsecond
		iface, _ := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		return iface
	}
	a, b := mk("a"), mk("b")
	link, err := Connect(k, Config{Rate: sonet.STS3c, Delay: 10_000, Seed: 5}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	a.OpenVC(vc())
	b.OpenVC(vc())
	var bEvents, aEvents []nic.AlarmEvent
	b.OnAlarm(func(ev nic.AlarmEvent) { bEvents = append(bEvents, ev) })
	a.OnAlarm(func(ev nic.AlarmEvent) { aEvents = append(aEvents, ev) })

	a.Send(vc(), pkt(1000), nil)
	k.Run()

	link.AtoB.Fail()
	if !link.AtoB.Down() {
		t.Fatal("Down() = false after Fail")
	}
	k.RunFor(400 * sim.Microsecond)
	link.AtoB.Restore()
	k.Run()

	if len(bEvents) != 2 || bEvents[0].Kind != nic.AlarmLOS || !bEvents[0].Raised || bEvents[1].Raised {
		t.Fatalf("b alarm events %v, want LOS declare+clear", bEvents)
	}
	// b's RDI crossed the intact B->A direction and declared at a.
	if a.FMStats().RDIRx == 0 {
		t.Fatal("no RDI reached a over the reverse SONET direction")
	}
	if len(aEvents) < 2 || aEvents[0].Kind != nic.AlarmRDI || !aEvents[0].Raised {
		t.Fatalf("a alarm events %v, want RDI declare then clear", aEvents)
	}
	if last := aEvents[len(aEvents)-1]; last.Raised {
		t.Fatalf("a's RDI alarm never cleared: %v", aEvents)
	}
}

// efciMarker sits between the transmitting interface's cell clock and the
// SONET framer, setting the EFCI bit on every user cell — a stand-in for a
// congested switch upstream of this fiber. RM and OAM cells pass unmarked,
// as a real switch would leave them.
type efciMarker struct {
	dst    atm.CellConsumer
	marked int
}

func (m *efciMarker) DeliverCell(c *atm.Cell) {
	if c.Header.PT.User() {
		c.Header.PT |= atm.PTUserCongested
		m.marked++
	}
	m.dst.DeliverCell(c)
}

// TestSonetEFCISurvivesFraming closes the ABR loop over the real physical
// layer with every data cell EFCI-marked: the congestion bit must survive
// scrambling, delineation and header decode into the destination's EFCI
// state, the turned-around backward RM cells must carry CI=1 back across
// the reverse SONET direction, and the source's ACR must therefore fall
// below its initial rate. Marked frames must still reassemble intact —
// PT 0b011 remains end-of-frame.
func TestSonetEFCISurvivesFraming(t *testing.T) {
	r := newRig(t, sonet.STS3c)
	r.a.OpenVC(vc())
	r.b.OpenVC(vc())
	const icr = 50_000
	if err := r.a.SetABR(vc(), tm.ABRParams{PCR: 100_000, ICR: icr, Nrm: 32}); err != nil {
		t.Fatal(err)
	}
	m := &efciMarker{dst: r.link.AtoB}
	r.a.AttachSink(m)
	payload := pkt(9180) // 192 cells: several Nrm cadences per SDU
	for i := 0; i < 3; i++ {
		if err := r.a.Send(vc(), payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	r.k.Run()
	if len(r.got) != 3 {
		t.Fatalf("delivered %d of 3 EFCI-marked frames", len(r.got))
	}
	for i, sdu := range r.got {
		if !bytes.Equal(sdu, payload) {
			t.Fatalf("frame %d corrupted by EFCI marking", i)
		}
	}
	if m.marked == 0 {
		t.Fatal("marker saw no user cells")
	}
	acr, ok := r.a.ACR(vc())
	if !ok {
		t.Fatal("ACR lost its ABR state")
	}
	// Every backward RM cell carried CI (the destination's EFCI state was
	// pinned by the marked data cells), so the source only ever decreased.
	if acr >= icr {
		t.Fatalf("ACR = %.0f, want < ICR %d: CI feedback never arrived, so the EFCI bit died in framing", acr, icr)
	}
	if acr <= 0 {
		t.Fatalf("ACR = %.0f fell through the MCR floor", acr)
	}
}
