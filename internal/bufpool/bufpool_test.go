package bufpool

import (
	"testing"

	"repro/internal/metrics"
)

func TestGetReturnsRequestedLength(t *testing.T) {
	p := New()
	for _, n := range []int{1, 48, 64, 65, 9180, 65535} {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
	}
}

func TestGetZeroAndNegative(t *testing.T) {
	p := New()
	if b := p.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := p.Get(-5); b != nil {
		t.Fatalf("Get(-5) = %v, want nil", b)
	}
}

func TestPutThenGetRecycles(t *testing.T) {
	p := New()
	b := p.Get(100) // class 128
	b[0] = 0xAA
	p.Put(b)
	c := p.Get(120) // same class
	if cap(c) != 128 {
		t.Fatalf("recycled cap = %d, want 128", cap(c))
	}
	if len(c) != 120 {
		t.Fatalf("recycled len = %d, want 120", len(c))
	}
	hits, misses, puts := p.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", hits, misses, puts)
	}
}

func TestSizeClassBoundaries(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{9180, 8},   // -> 16 KiB class
		{65535, 10}, // -> 64 KiB class
		{65536, 10},
		{65537, -1}, // oversize, bypasses the pool
	}
	for _, c := range cases {
		if got := class(c.n); got != c.want {
			t.Errorf("class(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	p := New()
	b := p.Get(1 << 17)
	if len(b) != 1<<17 {
		t.Fatalf("oversize Get len = %d", len(b))
	}
	p.Put(b)
	if _, _, puts := p.Stats(); puts != 0 {
		t.Fatal("oversize buffer was pooled")
	}
}

func TestPutRejectsOddCapacity(t *testing.T) {
	p := New()
	p.Put(make([]byte, 100)) // cap 100 is not a size class
	p.Put(nil)
	if _, _, puts := p.Stats(); puts != 0 {
		t.Fatalf("odd-capacity buffer was pooled (puts=%d)", puts)
	}
	// A Get after the rejected Put must be a miss, not a corrupt hit.
	b := p.Get(100)
	if cap(b) != 128 {
		t.Fatalf("Get after rejected Put: cap = %d, want 128", cap(b))
	}
}

func TestNilPoolDegradesToMake(t *testing.T) {
	var p *Pool
	b := p.Get(48)
	if len(b) != 48 {
		t.Fatalf("nil pool Get len = %d", len(b))
	}
	p.Put(b) // must not panic
	if h, m, u := p.Stats(); h != 0 || m != 0 || u != 0 {
		t.Fatal("nil pool reported stats")
	}
	p.Instrument(metrics.NewRegistry(), "x") // must not panic
}

func TestInstrumentCounters(t *testing.T) {
	p := New()
	reg := metrics.NewRegistry()
	p.Instrument(reg, "pool")
	b := p.Get(48)
	p.Put(b)
	p.Get(48)
	if v := reg.Counter("pool.hits").Value(); v != 1 {
		t.Fatalf("pool.hits = %d, want 1", v)
	}
	if v := reg.Counter("pool.misses").Value(); v != 1 {
		t.Fatalf("pool.misses = %d, want 1", v)
	}
	if v := reg.Counter("pool.puts").Value(); v != 1 {
		t.Fatalf("pool.puts = %d, want 1", v)
	}
}

// Steady-state Get/Put must be allocation-free: this is the pooled cell/SDU
// path's zero-alloc guarantee.
func TestGetPutZeroAlloc(t *testing.T) {
	p := New()
	p.Put(p.Get(9180)) // prime the class
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get(9180)
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.3f allocs/op, want 0", allocs)
	}
}
