// Package bufpool provides a deterministic byte-buffer pool for the
// simulated datapath: SDU payloads, reassembly targets, and cell payload
// staging. Buffers are recycled through power-of-two size-class free lists,
// so a steady-state flow (the common case — a source sending fixed-size
// frames) allocates each buffer once and then runs allocation-free.
//
// Unlike sync.Pool, this pool is a plain per-kernel data structure: no
// locks, no GC-driven eviction, fully deterministic, and therefore safe to
// embed in a single-goroutine simulation without perturbing timing between
// runs. Pools must not be shared across kernels — parallel experiment
// sweeps give every sweep point its own pool, exactly as they give every
// point its own kernel.
//
// Ownership is explicit, mirroring the paper's host/NIC buffer hand-off:
// Get transfers a buffer to the caller; Put hands it back. A buffer must
// not be used after Put. Nothing enforces this (it is a simulator, not a
// kernel allocator), but the AllocsPerRun pins in the datapath tests catch
// double-recycling bugs as nondeterministic length corruption immediately.
package bufpool

import (
	"math/bits"

	"repro/internal/metrics"
)

// Size classes span 64 B .. 64 KiB: class i holds buffers of capacity
// minClass<<i. The top class (1<<16) covers the AAL5 MaxSDU of 65535 plus
// the one-cell overshoot reassembly needs before length validation.
const (
	minClassShift = 6  // 64 B
	maxClassShift = 16 // 64 KiB
	numClasses    = maxClassShift - minClassShift + 1
)

// Pool recycles byte buffers through per-size-class free lists. The zero
// value is ready to use. A nil *Pool is valid and degrades to plain make —
// components take an optional pool and need no nil checks at call sites.
type Pool struct {
	classes [numClasses][][]byte

	// Accounting.
	hits   uint64 // Gets served from a free list
	misses uint64 // Gets that had to allocate (incl. oversize)
	puts   uint64 // buffers returned

	// Registry instruments (nil until Instrument; nil-safe).
	mHits   *metrics.Counter
	mMisses *metrics.Counter
	mPuts   *metrics.Counter
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// class returns the size-class index for a requested length, or -1 when the
// request exceeds the largest class and must bypass the pool.
func class(n int) int {
	if n <= 1<<minClassShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassShift
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a buffer with len(b) == n, drawn from the pool when a
// same-class buffer is free and freshly allocated otherwise. n <= 0 returns
// nil. On a nil pool, Get is plain make.
func (p *Pool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	if p == nil {
		return make([]byte, n)
	}
	c := class(n)
	if c >= 0 {
		if fl := p.classes[c]; len(fl) > 0 {
			b := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			p.classes[c] = fl[:len(fl)-1]
			p.hits++
			p.mHits.Inc()
			return b[:n]
		}
		p.misses++
		p.mMisses.Inc()
		return make([]byte, n, 1<<(minClassShift+c))
	}
	p.misses++
	p.mMisses.Inc()
	return make([]byte, n)
}

// Put returns a buffer to the pool. Buffers whose capacity is not an exact
// size class (grown by append, sliced from elsewhere, oversize) are dropped
// on the floor for the GC — recycling them would erode the class invariant
// that a hit always has capacity for its class. Put(nil) and Put on a nil
// pool are no-ops.
func (p *Pool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	c := class(cap(b))
	if c < 0 || cap(b) != 1<<(minClassShift+c) {
		return
	}
	p.puts++
	p.mPuts.Inc()
	p.classes[c] = append(p.classes[c], b[:0])
}

// Stats returns cumulative counters: free-list hits, allocating misses, and
// buffers returned.
func (p *Pool) Stats() (hits, misses, puts uint64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.hits, p.misses, p.puts
}

// Instrument registers this pool's telemetry under the given name prefix:
// "<prefix>.hits", "<prefix>.misses", "<prefix>.puts" counters. A nil
// registry (or nil pool) leaves the pool un-instrumented.
func (p *Pool) Instrument(reg *metrics.Registry, prefix string) {
	if p == nil {
		return
	}
	p.mHits = reg.Counter(prefix + ".hits")
	p.mMisses = reg.Counter(prefix + ".misses")
	p.mPuts = reg.Counter(prefix + ".puts")
}
