package experiments

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/bufmgr"
	"repro/internal/report"
	"repro/internal/vclookup"
)

// E6Point is the average lookup cost at one table occupancy.
type E6Point struct {
	Strategy  string
	VCs       int
	AvgCycles float64
	MaxCycles int
}

// E6 measures VC-lookup cycles per cell versus the number of open VCs for
// the three strategies. Paper shape: the CAM is flat; the firmware hash is
// flat-ish but several times costlier; the linear scan grows linearly and
// is hopeless beyond a few dozen VCs — the quantitative case for the CAM on
// the receive datapath.
func E6(occupancies []int) ([]E6Point, *report.Series) {
	if len(occupancies) == 0 {
		occupancies = []int{1, 4, 16, 64, 256, 1024}
	}
	max := occupancies[len(occupancies)-1]
	builders := map[string]func() vclookup.Strategy{
		"cam":    func() vclookup.Strategy { return vclookup.NewCAM(max) },
		"hash":   func() vclookup.Strategy { return vclookup.NewHash(max) },
		"linear": func() vclookup.Strategy { return vclookup.NewLinear(max) },
	}
	var pts []E6Point
	for _, name := range []string{"cam", "hash", "linear"} {
		s := builders[name]()
		inserted := 0
		for _, n := range occupancies {
			for inserted < n {
				vc := atm.VC{VPI: uint16(inserted >> 12), VCI: uint16(inserted*5 + 1)}
				if _, err := s.Insert(vc); err != nil {
					panic(fmt.Sprintf("E6: insert %d: %v", inserted, err))
				}
				inserted++
			}
			total, worst := 0, 0
			for i := 0; i < n; i++ {
				vc := atm.VC{VPI: uint16(i >> 12), VCI: uint16(i*5 + 1)}
				_, cycles, ok := s.Lookup(vc)
				if !ok {
					panic("E6: lookup miss")
				}
				total += cycles
				if cycles > worst {
					worst = cycles
				}
			}
			pts = append(pts, E6Point{Strategy: name, VCs: n,
				AvgCycles: float64(total) / float64(n), MaxCycles: worst})
		}
	}
	x := make([]float64, len(occupancies))
	for i, n := range occupancies {
		x[i] = float64(n)
	}
	sr := report.NewSeries("E6: VC lookup cost (avg engine cycles/cell) vs open VCs", "vcs", x)
	for _, name := range []string{"cam", "hash", "linear"} {
		var y []float64
		for _, p := range pts {
			if p.Strategy == name {
				y = append(y, p.AvgCycles)
			}
		}
		sr.Add(name, y)
	}
	return pts, sr
}

// E7Row is one (organization, frame size) memory/cost measurement.
type E7Row struct {
	Org          bufmgr.Organization
	FrameCells   int
	LocalBytes   int // adapter SRAM for one such frame (on a max-size VC)
	HostBytes    int
	AppendCycles float64 // mean per-cell append cost
	AccessCycles int     // random access to the middle cell
}

// E7 tabulates the reassembly-buffer organizations: adapter memory pinned
// per frame and per-cell costs, at the three canonical frame sizes (2-cell
// control message, 196-cell IP MTU, 1366-cell maximum). Paper shape: the
// contiguous organization pins a worst-case frame per VC regardless of the
// actual frame; the paged organization stays near the linked list's memory
// while keeping constant-time access; hostmem frees the adapter entirely at
// the price of bus crossings.
func E7() ([]E7Row, *report.Table) {
	frameSizes := []int{2, 196, 1366}
	const maxCells = 1366
	var rows []E7Row
	for _, org := range bufmgr.Organizations() {
		for _, n := range frameSizes {
			a := bufmgr.NewAllocator(org, 0)
			f, err := a.NewFrame(maxCells)
			if err != nil {
				panic(err)
			}
			var p [48]byte
			total := 0
			for i := 0; i < n; i++ {
				c, err := f.Append(p[:])
				if err != nil {
					panic(err)
				}
				total += c
			}
			_, access, err := f.Cell(n / 2)
			if err != nil {
				panic(err)
			}
			rows = append(rows, E7Row{
				Org: org, FrameCells: n,
				LocalBytes: f.LocalBytes(), HostBytes: f.HostBytes(),
				AppendCycles: float64(total) / float64(n),
				AccessCycles: access,
			})
			f.Release()
		}
	}
	tb := report.NewTable("E7: reassembly buffer organizations (per frame, on a 1366-cell-capable VC)",
		"org", "frame-cells", "local-bytes", "host-bytes", "append-cyc/cell", "random-access-cyc")
	for _, r := range rows {
		tb.Row(r.Org.String(), r.FrameCells, r.LocalBytes, r.HostBytes, r.AppendCycles, r.AccessCycles)
	}
	return rows, tb
}
