package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// E18Row is the flight-recorder decomposition of one MTU packet's journey:
// each segment is the interval between consecutive stage boundaries recorded
// by the span hooks, so the segments telescope — Sum equals Measured exactly,
// with no analytic model in between (contrast E5, which models the same
// journey from first principles).
type E18Row struct {
	Rate units.BitRate
	Size int
	// Segments (ns), in journey order:
	HostTx   sim.Duration // Send call to first cell entering the TX FIFO
	SARFifo  sim.Duration // first FIFO entry to last cell leaving (wire-paced)
	Prop     sim.Duration // last cell's fiber flight
	RxFifo   sim.Duration // last cell's RX FIFO residency
	RxCell   sim.Duration // last cell popped to frame reassembly complete
	Deliver  sim.Duration // reassembly complete to host delivery interrupt
	Sum      sim.Duration
	Measured sim.Duration // wall interval from Send to OnReceive
}

// E18 decomposes E5's single-packet MTU latency per pipeline stage at both
// line rates, using the flight recorder's stage spans instead of an analytic
// model. The large-MTU journey is wire-dominated at STS-3c; at STS-12c the
// wire shrinks 4x and the fixed receive-side costs surface. Returns the rows,
// the rendered table, and the recorder of the last (STS-12c) run for trace
// export.
func E18() ([]E18Row, *report.Table, *trace.Recorder) {
	const size = 9180 // the paper's MTU
	var rows []E18Row
	var lastRec *trace.Recorder
	for _, rate := range []units.BitRate{units.STS3cPayload, units.STS12cPayload} {
		row, rec := runE18Point(rate, size)
		rows = append(rows, row)
		lastRec = rec
	}
	tb := report.NewTable("E18: measured per-stage latency decomposition (AAL5, 9180 B, 2 km)",
		"rate", "host-tx", "sar+fifo", "prop", "rx-fifo", "rx-cell", "deliver", "sum", "measured")
	tb.Note = "segments from flight-recorder stage spans; sum telescopes to the measured e2e latency"
	for _, r := range rows {
		tb.Row(fmt.Sprintf("%.0fM", float64(r.Rate)/1e6),
			r.HostTx.String(), r.SARFifo.String(), r.Prop.String(), r.RxFifo.String(),
			r.RxCell.String(), r.Deliver.String(), r.Sum.String(), r.Measured.String())
	}
	return rows, tb, lastRec
}

// runE18Point runs one traced single-packet world and extracts the segment
// boundaries from the recorded events.
func runE18Point(rate units.BitRate, size int) (E18Row, *trace.Recorder) {
	k := newKernel()
	cfg := nic.DefaultConfig("x")
	cfg.PayloadRate = rate
	if rate == units.STS12cPayload {
		// E9's result applied (as in E11): the default 32-cell FIFO
		// overflows at STS-12c arrival spacing; 128 absorbs the burst.
		cfg.RxFifoDepth = 128
	}
	cfgA, cfgB := cfg, cfg
	cfgA.Name, cfgB.Name = "a", "b"
	a, err := netsim.NewStation(k, cfgA)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	b, err := netsim.NewStation(k, cfgB)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	ab, _ := netsim.Connect(k, a, b, netsim.LinkConfig{Delay: 10_000, Seed: 3})
	// One MTU at STS-12c is ~200 cells; 6 events per cell plus endpoints
	// fits comfortably in 4096 — no wraparound, so the telescoping
	// extraction below sees every boundary.
	rec := trace.NewRecorder(k, 4096)
	a.Iface.SetRecorder(rec)
	b.Iface.SetRecorder(rec)
	ab.SetRecorder(rec, "ab")
	a.Iface.OpenVC(stdVC)
	b.Iface.OpenVC(stdVC)

	var start, end sim.Time
	payload := make([]byte, size)
	k.At(0, func() {
		start = k.Now()
		b.Iface.OnReceive(func(d nic.Delivered) { end = d.At })
		a.Iface.Send(stdVC, payload, nil)
	})
	k.Run()

	// Boundary extraction: first/last event per (node, stage, kind). The
	// segments between consecutive boundaries telescope to end-start.
	var tA, tB, tC, tD, tE, tF sim.Time
	haveA := false
	for _, ev := range rec.Events() {
		node, stage := rec.StageName(ev.Stage)
		switch {
		case node == "a" && stage == "tx.fifo" && ev.Kind == trace.KindEnter:
			if !haveA {
				tA, haveA = ev.At, true
			}
		case node == "a" && stage == "tx.fifo" && ev.Kind == trace.KindExit:
			tB = ev.At
		case node == "ab" && stage == "wire" && ev.Kind == trace.KindExit:
			tC = ev.At
		case node == "b" && stage == "rx.fifo" && ev.Kind == trace.KindExit:
			tD = ev.At
		case node == "b" && stage == "rx.reasm" && ev.Kind == trace.KindExit:
			tE = ev.At
		case node == "b" && stage == "rx.deliver" && ev.Kind == trace.KindPoint:
			tF = ev.At
		}
	}
	row := E18Row{
		Rate: rate, Size: size,
		HostTx:   sim.Duration(tA - start),
		SARFifo:  sim.Duration(tB - tA),
		Prop:     sim.Duration(tC - tB),
		RxFifo:   sim.Duration(tD - tC),
		RxCell:   sim.Duration(tE - tD),
		Deliver:  sim.Duration(tF - tE),
		Measured: sim.Duration(end - start),
	}
	row.Sum = row.HostTx + row.SARFifo + row.Prop + row.RxFifo + row.RxCell + row.Deliver
	return row, rec
}
