package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/transport"
)

// E12Point is one (loss rate, discipline) end-to-end transport measurement.
type E12Point struct {
	LossProb    float64
	Selective   bool
	GoodputBps  float64
	Retransmits uint64
	Timeouts    uint64
	Delivered   bool
}

// E12 measures the host-resident go-back-N transport's goodput versus cell
// loss — the end-to-end consequence of the layering the architecture
// prescribes (extension figure). Shape: delivery stays perfect while
// goodput falls off a cliff, because AAL5 amplifies one lost cell into a
// lost segment and go-back-N amplifies one lost segment into a resent
// window. This is E8's physics surfaced at the application.
func E12(lossProbs []float64, msgSize int) ([]E12Point, *report.Series) {
	if len(lossProbs) == 0 {
		lossProbs = []float64{0, 1e-4, 5e-4, 2e-3, 5e-3}
	}
	if msgSize <= 0 {
		msgSize = 1 << 20
	}
	var pts []E12Point
	for _, selective := range []bool{false, true} {
		for _, p := range lossProbs {
			pts = append(pts, runE12(p, msgSize, selective))
		}
	}
	x := make([]float64, len(lossProbs))
	for i, p := range lossProbs {
		x[i] = p
	}
	sr := report.NewSeries(
		fmt.Sprintf("E12: host transport goodput vs cell loss (%d-byte transfers)", msgSize),
		"loss-prob", x)
	for _, selective := range []bool{false, true} {
		name := "go-back-N"
		if selective {
			name = "selective"
		}
		var gps, rtx []float64
		for _, pt := range pts {
			if pt.Selective == selective {
				gps = append(gps, pt.GoodputBps/1e6)
				rtx = append(rtx, float64(pt.Retransmits))
			}
		}
		sr.Add(name+"-Mb/s", gps)
		sr.Add(name+"-rtx", rtx)
	}
	return pts, sr
}

func runE12(loss float64, msgSize int, selective bool) E12Point {
	k := newKernel()
	a, err := netsim.NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		panic(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		panic(err)
	}
	netsim.Connect(k, a, b, netsim.LinkConfig{Delay: 10_000, LossProb: loss, Seed: 7})
	vc := atm.VC{VCI: 60}
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)

	cfg := transport.DefaultConfig()
	cfg.RTO = 5 * sim.Millisecond
	cfg.MaxRetries = 200
	cfg.SelectiveRepeat = selective
	tx := transport.NewSender(k, a.Iface, vc, cfg)

	msg := make([]byte, msgSize)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	var got []byte
	rx := transport.NewReceiver(b.Iface, vc, func(m []byte) { got = m })
	rx.SelectiveRepeat = selective
	b.Iface.OnReceive(func(d nic.Delivered) { rx.HandleData(d.SDU) })
	a.Iface.OnReceive(func(d nic.Delivered) { tx.HandleAck(d.SDU) })

	var done sim.Time
	var failed bool
	tx.Send(msg, func(err error) {
		if err != nil {
			failed = true
			return
		}
		done = k.Now()
	})
	k.Run()
	st := tx.Stats()
	pt := E12Point{LossProb: loss, Selective: selective, Retransmits: st.Retransmits, Timeouts: st.Timeouts}
	if !failed && done > 0 && bytes.Equal(got, msg) {
		pt.Delivered = true
		pt.GoodputBps = float64(msgSize) * 8 / done.Seconds()
	}
	return pt
}
