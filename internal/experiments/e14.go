package experiments

import (
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// E14Result is one policing-conformance run: a source offering the same
// mean load either shaped to its traffic contract or left unshaped, driven
// through a GCRA policer at the switch ingress.
type E14Result struct {
	Shaped     bool
	Contract   tm.TrafficContract
	Cells      uint64 // cells offered to the policer
	Conformed  uint64
	Tagged     uint64 // forwarded CLP=1 (SCR violation, tagging on)
	Discarded  uint64 // dropped at the ingress (PCR violation)
	Delivered  uint64 // frames reassembled at the receiver
	AALErrors  uint64 // frames broken by policer discards
	GoodputBps float64
}

// E14 is the policing-conformance experiment: the same periodic frame
// source — mean cell rate equal to the contract's SCR — runs twice through
// a switch whose input port polices a PCR+SCR/MBS contract. Shaped, the
// NIC's GCRA shaper (Interface.SetContract) spaces departures to the
// contract and every cell conforms: zero tagged, zero discarded. Unshaped,
// each frame's cells leave back-to-back at line rate; the same mean load
// blows through both buckets and the policer tags and discards, breaking
// frames. This is the board-level argument of the paper's per-VC pacing:
// shaping is not optional once the network polices.
func E14(runTime sim.Duration) ([2]E14Result, *report.Table) {
	if runTime <= 0 {
		runTime = 40 * sim.Millisecond
	}
	var out [2]E14Result
	out[0] = runE14(false, runTime)
	out[1] = runE14(true, runTime)
	tb := report.NewTable("E14: GCRA policing — shaped vs unshaped source at the same mean rate",
		"source", "cells", "conform", "tagged", "discarded", "frames ok", "aal errors", "goodput Mb/s")
	for _, r := range out {
		name := "unshaped"
		if r.Shaped {
			name = "shaped"
		}
		tb.Row(name, r.Cells, r.Conformed, r.Tagged, r.Discarded,
			r.Delivered, r.AALErrors, r.GoodputBps/1e6)
	}
	return out, tb
}

func runE14(shaped bool, runTime sim.Duration) E14Result {
	// The contract under test: PCR well below line rate, SCR at a third of
	// that, a one-frame burst allowance, and a CDVT of a few cell times to
	// absorb the TX FIFO's cell-clock quantization.
	ct := units.CellTime(units.STS3cPayload)
	contract := tm.VBRContract(150_000, 50_000, 32, 8*ct)

	net, err := core.NewNetwork(core.NetworkSpec{
		Kernel: newKernel(),
		Endpoints: []core.EndpointSpec{
			{Name: "a"},
			{Name: "b"},
		},
		Switches: []core.SwitchSpec{
			{Name: "sw", Ports: 2, Rate: units.STS3cPayload, QueueDepth: 64},
		},
		Links: []core.LinkSpec{
			{Name: "a-sw", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "sw", Port: 0}, Delay: 5000, Seed: 20},
			{Name: "sw-b", A: core.NodeRef{Node: "sw", Port: 1}, B: core.NodeRef{Node: "b"}, Seed: 21},
		},
		VCCs: []core.VCCSpec{
			{Name: "ab", From: "a", To: "b", VC: stdVC, Contract: contract, Shape: shaped},
		},
	})
	if err != nil {
		panic(err)
	}
	kern := net.Kernel()
	vcc := net.VCC("ab")

	// Police the admitted contract where the access link meets the network.
	pol := tm.NewPolicer(contract)
	pol.TagSCR = true
	hop := vcc.Hops[0]
	net.Switch("sw").SetPolicer(hop.InPort, hop.InVC, pol)

	// Same offered load in both runs: one 4000-byte frame (84 cells under
	// AAL5) per 84/SCR seconds — a mean cell rate of exactly SCR.
	const sduSize = 4000
	const frameCells = 84
	interval := sim.Duration(float64(frameCells) / contract.SCR * 1e9)
	payload := make([]byte, sduSize)
	deadline := sim.Time(runTime)
	a := net.Endpoint("a")
	var tick func()
	tick = func() {
		if kern.Now() > deadline {
			return
		}
		a.Send(vcc.SourceVC, payload, nil)
		kern.After(interval, tick)
	}
	tick()
	kern.RunUntil(deadline)
	st := net.Endpoint("b").Stats()
	goodput := units.ThroughputBps(int64(st.Rx.Bytes), deadline)
	kern.Run()

	ps := pol.Stats()
	return E14Result{
		Shaped:     shaped,
		Contract:   contract,
		Cells:      ps.Cells,
		Conformed:  ps.Conformed,
		Tagged:     ps.Tagged,
		Discarded:  ps.Discarded,
		Delivered:  st.Rx.Packets,
		AALErrors:  st.Rx.AALErrors,
		GoodputBps: goodput,
	}
}
