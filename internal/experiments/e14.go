package experiments

import (
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// E14Result is one policing-conformance run: a source offering the same
// mean load either shaped to its traffic contract or left unshaped, driven
// through a GCRA policer at the switch ingress.
type E14Result struct {
	Shaped     bool
	Contract   tm.TrafficContract
	Cells      uint64 // cells offered to the policer
	Conformed  uint64
	Tagged     uint64 // forwarded CLP=1 (SCR violation, tagging on)
	Discarded  uint64 // dropped at the ingress (PCR violation)
	Delivered  uint64 // frames reassembled at the receiver
	AALErrors  uint64 // frames broken by policer discards
	GoodputBps float64
}

// E14 is the policing-conformance experiment: the same periodic frame
// source — mean cell rate equal to the contract's SCR — runs twice through
// a switch whose input port polices a PCR+SCR/MBS contract. Shaped, the
// NIC's GCRA shaper (Interface.SetContract) spaces departures to the
// contract and every cell conforms: zero tagged, zero discarded. Unshaped,
// each frame's cells leave back-to-back at line rate; the same mean load
// blows through both buckets and the policer tags and discards, breaking
// frames. This is the board-level argument of the paper's per-VC pacing:
// shaping is not optional once the network polices.
func E14(runTime sim.Duration) ([2]E14Result, *report.Table) {
	if runTime <= 0 {
		runTime = 40 * sim.Millisecond
	}
	var out [2]E14Result
	out[0] = runE14(false, runTime)
	out[1] = runE14(true, runTime)
	tb := report.NewTable("E14: GCRA policing — shaped vs unshaped source at the same mean rate",
		"source", "cells", "conform", "tagged", "discarded", "frames ok", "aal errors", "goodput Mb/s")
	for _, r := range out {
		name := "unshaped"
		if r.Shaped {
			name = "shaped"
		}
		tb.Row(name, r.Cells, r.Conformed, r.Tagged, r.Discarded,
			r.Delivered, r.AALErrors, r.GoodputBps/1e6)
	}
	return out, tb
}

func runE14(shaped bool, runTime sim.Duration) E14Result {
	kern := newKernel()
	a, err := netsim.NewStation(kern, nic.DefaultConfig("a"))
	if err != nil {
		panic(err)
	}
	b, err := netsim.NewStation(kern, nic.DefaultConfig("b"))
	if err != nil {
		panic(err)
	}
	sw := netsim.NewSwitch(kern, "sw", 2, units.STS3cPayload, 64)
	link := phy.NewCellLink(kern, 5000, 41, sw.Input(0))
	a.Iface.SetOutput(link.Send)
	sw.AttachOutput(1, b.Iface.DeliverCell)
	sw.RouteClass(0, stdVC, 1, stdVC, tm.RtVBR)
	a.Iface.OpenVC(stdVC)
	b.Iface.OpenVC(stdVC)

	// The contract under test: PCR well below line rate, SCR at a third of
	// that, a one-frame burst allowance, and a CDVT of a few cell times to
	// absorb the TX FIFO's cell-clock quantization.
	ct := units.CellTime(units.STS3cPayload)
	contract := tm.VBRContract(150_000, 50_000, 32, 8*ct)
	pol := tm.NewPolicer(contract)
	pol.TagSCR = true
	sw.SetPolicer(0, stdVC, pol)
	if shaped {
		if err := a.Iface.SetContract(stdVC, contract); err != nil {
			panic(err)
		}
	}

	// Same offered load in both runs: one 4000-byte frame (84 cells under
	// AAL5) per 84/SCR seconds — a mean cell rate of exactly SCR.
	const sduSize = 4000
	const frameCells = 84
	interval := sim.Duration(float64(frameCells) / contract.SCR * 1e9)
	payload := make([]byte, sduSize)
	deadline := sim.Time(runTime)
	var tick func()
	tick = func() {
		if kern.Now() > deadline {
			return
		}
		a.Iface.Send(stdVC, payload, nil)
		kern.After(interval, tick)
	}
	tick()
	kern.RunUntil(deadline)
	st := b.Iface.Stats()
	goodput := units.ThroughputBps(int64(st.Rx.Bytes), deadline)
	kern.Run()

	ps := pol.Stats()
	return E14Result{
		Shaped:     shaped,
		Contract:   contract,
		Cells:      ps.Cells,
		Conformed:  ps.Conformed,
		Tagged:     ps.Tagged,
		Discarded:  ps.Discarded,
		Delivered:  st.Rx.Packets,
		AALErrors:  st.Rx.AALErrors,
		GoodputBps: goodput,
	}
}
