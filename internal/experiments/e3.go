package experiments

import (
	"fmt"

	"repro/internal/aal"
	"repro/internal/experiments/runner"
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
)

// E3Point is one (SDU size, configuration) goodput measurement.
type E3Point struct {
	Size       int
	AAL        aal.Type
	Rate       units.BitRate
	GoodputBps float64
	CeilingBps float64 // physics for this size/AAL
	Efficiency float64 // goodput / payload line rate
}

// E3Config tunes the sweep (the benchmark uses a shorter run).
type E3Config struct {
	Sizes   []int
	RunTime sim.Duration
	Window  int // packets kept in flight
}

// DefaultE3 is the full sweep.
func DefaultE3() E3Config {
	return E3Config{
		Sizes:   []int{64, 256, 1024, 4096, 9180, 32768, 65535},
		RunTime: 30 * sim.Millisecond,
		Window:  4,
	}
}

// E3 measures end-to-end goodput versus SDU size for both AAL builds at
// both line rates. Paper shape: goodput climbs with packet size as
// per-packet costs amortize; at 155 Mb/s big AAL5 packets saturate near the
// 135 Mb/s SDU ceiling; AAL5 beats AAL3/4 everywhere (44 vs 48 payload
// bytes per cell); at 622 Mb/s the engines cap throughput well below the
// wire.
func E3(ec E3Config) ([]E3Point, *report.Series, *report.Series) {
	type e3Case struct {
		rate units.BitRate
		t    aal.Type
		size int
	}
	var cases []e3Case
	for _, rate := range []units.BitRate{units.STS3cPayload, units.STS12cPayload} {
		for _, t := range []aal.Type{aal.AAL5, aal.AAL34} {
			for _, size := range ec.Sizes {
				cases = append(cases, e3Case{rate, t, size})
			}
		}
	}
	pts := runner.Map(Parallelism(), len(cases), func(i int) E3Point {
		c := cases[i]
		return runE3Point(c.rate, c.t, c.size, ec)
	})

	x := make([]float64, len(ec.Sizes))
	for i, s := range ec.Sizes {
		x[i] = float64(s)
	}
	mk := func(rate units.BitRate, title string) *report.Series {
		s := report.NewSeries(title, "sdu-bytes", x)
		for _, t := range []aal.Type{aal.AAL5, aal.AAL34} {
			var y, ceil []float64
			for _, p := range pts {
				if p.Rate == rate && p.AAL == t {
					y = append(y, p.GoodputBps/1e6)
					ceil = append(ceil, p.CeilingBps/1e6)
				}
			}
			s.Add(fmt.Sprintf("%s-Mb/s", t), y)
			s.Add(fmt.Sprintf("%s-ceiling", t), ceil)
		}
		return s
	}
	s155 := mk(units.STS3cPayload, "E3a: goodput vs SDU size at STS-3c")
	s622 := mk(units.STS12cPayload, "E3b: goodput vs SDU size at STS-12c")
	return pts, s155, s622
}

// runE3Point measures one (rate, AAL, size) configuration in its own world.
func runE3Point(rate units.BitRate, t aal.Type, size int, ec E3Config) E3Point {
	cfg := nic.DefaultConfig("x")
	cfg.PayloadRate = rate
	cfg.AAL = t
	hostCfg := host.DefaultConfig()
	if rate == units.STS12cPayload {
		// E9's result applied (as in E11): at STS-12c cell spacing the
		// default 32-cell RX FIFO overflows faster than one 25 MHz receive
		// engine drains it, corrupting every large frame — measured goodput
		// was a flat 0. 128 cells absorbs the burst backlog.
		cfg.RxFifoDepth = 128
		// E10/E11's results applied: the stock 25 MHz engine caps the 622
		// column at ~130 Mb/s and the workstation host adds its own ceiling
		// around 320 Mb/s, burying the protocol-path story. The OC-12 rig
		// takes both confounds out the way the era's proposals did — a
		// faster engine clock, scaled-out receive engines, and a server-class
		// host — leaving the engines as the measured bottleneck (goodput
		// still lands well under the wire ceiling, which is the paper's
		// point).
		cfg.Engine.ClockHz = 48_000_000
		cfg.RxEngines = 3
		hostCfg = fastHost()
	}
	deadline := sim.Time(ec.RunTime)
	var src *netsim.Source
	var lastAt sim.Time
	_, b, _ := runPairHost(cfg, hostCfg, netsim.LinkConfig{Delay: 10_000, Seed: 7},
		deadline+sim.Time(ec.RunTime/2),
		func(k *sim.Kernel, a, b *netsim.Station) {
			b.Iface.OnReceive(func(d nic.Delivered) { lastAt = d.At })
			src = netsim.NewSource(k, a, stdVC, size, deadline)
			src.Start(ec.Window)
		})
	cells := aal.CellsForSDU5(size)
	if t == aal.AAL34 {
		cells = aal.CellsForSDU34(size)
	}
	// Goodput over the span in which deliveries actually happened, not the
	// (longer) drain window.
	if lastAt == 0 {
		lastAt = deadline
	}
	gp := goodputBps(b, lastAt)
	return E3Point{
		Size: size, AAL: t, Rate: rate,
		GoodputBps: gp,
		CeilingBps: sduCeilingBps(rate, size, cells),
		Efficiency: gp / float64(rate),
	}
}
