package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/aal"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/units"
)

// The tests here assert the SHAPE claims DESIGN.md commits to for each
// experiment — who wins, where the cliffs fall — not absolute numbers.

func TestE1Shape(t *testing.T) {
	rows, tb := E1(engine.DefaultConfig())
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8 (4 routines x 2 AALs)", len(rows))
	}
	for _, r := range rows {
		if r.PerPacket {
			continue
		}
		// Every per-cell TX routine fits inside the 155 Mb/s cell time.
		if r.Frac155 >= 1 {
			t.Errorf("%s/%v: %.2fx the 155 cell time", r.Routine, r.AAL, r.Frac155)
		}
	}
	// AAL3/4 per-cell routines cost strictly more than AAL5's.
	cost := map[aal.Type]int{}
	for _, r := range rows {
		if r.Routine == "tx_cell (mid)" {
			cost[r.AAL] = r.Instr
		}
	}
	if cost[aal.AAL34] <= cost[aal.AAL5] {
		t.Errorf("AAL3/4 mid-cell %d <= AAL5 %d", cost[aal.AAL34], cost[aal.AAL5])
	}
	if !strings.Contains(tb.String(), "tx_start") {
		t.Error("table missing routines")
	}
}

func TestE2Shape(t *testing.T) {
	rows, tb := E2(engine.DefaultConfig())
	if len(rows) != 2*3*4 {
		t.Fatalf("%d rows, want 24", len(rows))
	}
	for _, r := range rows {
		if r.Lookup == "cam" && r.Buffers.String() == "paged" {
			if r.Frac155 >= 1 {
				t.Errorf("board config (cam/paged) over budget at 155: %.2fx", r.Frac155)
			}
			if r.AAL == aal.AAL5 && r.Frac622 <= 1 {
				t.Errorf("board config unexpectedly fits 622 cell time: %.2fx — "+
					"the paper's OC-12 engine gap should show", r.Frac622)
			}
		}
		// Linear lookup at 64 VCs blows every budget's 155 margin vs CAM.
		if r.Lookup == "linear" && r.Instr <= 100 {
			t.Errorf("linear lookup at 64 VCs suspiciously cheap: %d instr", r.Instr)
		}
	}
	_ = tb.String()
}

func TestE3Shape(t *testing.T) {
	ec := E3Config{Sizes: []int{64, 1024, 9180, 65535}, RunTime: 15 * sim.Millisecond, Window: 4}
	pts, s155, s622 := E3(ec)
	if len(pts) != 4*2*2 {
		t.Fatalf("%d points", len(pts))
	}
	get := func(rate units.BitRate, t aal.Type, size int) E3Point {
		for _, p := range pts {
			if p.Rate == rate && p.AAL == t && p.Size == size {
				return p
			}
		}
		panic("missing point")
	}
	// Monotone-ish growth with size at 155/AAL5, saturating near ceiling.
	small := get(units.STS3cPayload, aal.AAL5, 64)
	big := get(units.STS3cPayload, aal.AAL5, 65535)
	if big.GoodputBps <= 2*small.GoodputBps {
		t.Errorf("no amortization: 64B %.1f vs 65535B %.1f Mb/s",
			small.GoodputBps/1e6, big.GoodputBps/1e6)
	}
	if big.GoodputBps < 0.8*big.CeilingBps {
		t.Errorf("big AAL5 packets at 155 reach only %.0f%% of ceiling",
			100*big.GoodputBps/big.CeilingBps)
	}
	// AAL5 >= AAL3/4 at every size (per-cell tax).
	for _, size := range ec.Sizes {
		a5 := get(units.STS3cPayload, aal.AAL5, size)
		a34 := get(units.STS3cPayload, aal.AAL34, size)
		if a34.GoodputBps > a5.GoodputBps*1.02 {
			t.Errorf("size %d: AAL3/4 %.1f beats AAL5 %.1f Mb/s",
				size, a34.GoodputBps/1e6, a5.GoodputBps/1e6)
		}
	}
	// At 622 the engines cap throughput below the wire ceiling for MTU.
	mtu622 := get(units.STS12cPayload, aal.AAL5, 9180)
	if mtu622.GoodputBps >= 0.9*mtu622.CeilingBps {
		t.Errorf("622/9180 reached %.0f%% of wire ceiling; engine bottleneck missing",
			100*mtu622.GoodputBps/mtu622.CeilingBps)
	}
	if s155.Y("AAL5-Mb/s") == nil || s622.Y("AAL3/4-Mb/s") == nil {
		t.Error("series missing")
	}
}

func TestE4Shape(t *testing.T) {
	ec := E4Config{Loads: []float64{0.25, 0.75}, SDUSize: 1024, RunTime: 20 * sim.Millisecond}
	pts, util, tput := E4(ec)
	get := func(a E4Arch, load float64) E4Point {
		for _, p := range pts {
			if p.Arch == a && p.OfferedFrac == load {
				return p
			}
		}
		panic("missing point")
	}
	// Per-cell host saturates even at 25% load; per-packet stays modest.
	pc := get(ArchPerCell, 0.25)
	pp := get(ArchPerPacket, 0.25)
	if pc.HostUtil < 0.9 {
		t.Errorf("per-cell host util %.2f at 25%% load, expected saturation", pc.HostUtil)
	}
	if pp.HostUtil > 0.5 {
		t.Errorf("per-packet host util %.2f at 25%% load, expected < 0.5", pp.HostUtil)
	}
	// Per-packet delivers far more at 75% load.
	if get(ArchPerPacket, 0.75).DeliveredBps < 3*get(ArchPerCell, 0.75).DeliveredBps {
		t.Error("per-packet did not dominate per-cell goodput at 75% load")
	}
	// Hardwired host load matches per-packet closely.
	hw := get(ArchHardwired, 0.25)
	if hw.HostUtil > pp.HostUtil*1.2+0.05 {
		t.Errorf("hardwired host util %.2f diverges from per-packet %.2f", hw.HostUtil, pp.HostUtil)
	}
	_ = util.String()
	_ = tput.String()
}

func TestE5Shape(t *testing.T) {
	rows, tb := E5()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 {
			t.Fatalf("size %d: no measurement", r.Size)
		}
		// The analytic model lands within 25% of the measurement.
		ratio := float64(r.ModelSum) / float64(r.Measured)
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("size %d: model %v vs measured %v (ratio %.2f)",
				r.Size, r.ModelSum, r.Measured, ratio)
		}
	}
	// Wire is the largest single component of the big packet (though the
	// host's per-byte stack cost rivals it at 64 KiB); fixed per-packet
	// costs dominate the small one.
	small, big := rows[0], rows[2]
	if big.WireTime <= big.HostRx || big.WireTime <= big.HostTx || big.WireTime <= big.RxDMA {
		t.Errorf("65535B: wire %v not the largest component (hostTx %v hostRx %v rxDMA %v)",
			big.WireTime, big.HostTx, big.HostRx, big.RxDMA)
	}
	if float64(small.WireTime) > 0.5*float64(small.Measured) {
		t.Errorf("96B: wire %v dominates %v; fixed costs should", small.WireTime, small.Measured)
	}
	_ = tb.String()
}

func TestE6Shape(t *testing.T) {
	pts, sr := E6([]int{1, 16, 256})
	get := func(s string, n int) E6Point {
		for _, p := range pts {
			if p.Strategy == s && p.VCs == n {
				return p
			}
		}
		panic("missing")
	}
	// CAM flat; linear grows ~linearly; hash stays within a small factor.
	if get("cam", 1).AvgCycles != get("cam", 256).AvgCycles {
		t.Error("CAM cost not flat")
	}
	lin1, lin256 := get("linear", 1).AvgCycles, get("linear", 256).AvgCycles
	if lin256 < 50*lin1/2 {
		t.Errorf("linear did not grow: %v -> %v", lin1, lin256)
	}
	h1, h256 := get("hash", 1).AvgCycles, get("hash", 256).AvgCycles
	if h256 > 4*h1 {
		t.Errorf("hash degraded: %v -> %v", h1, h256)
	}
	if sr.Y("cam") == nil {
		t.Error("series missing")
	}
}

func TestE7Shape(t *testing.T) {
	rows, tb := E7()
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]E7Row{}
	for _, r := range rows {
		byKey[r.Org.String()+itoa(r.FrameCells)] = r
	}
	// Contig pins the worst case even for 2 cells; paged scales with use.
	if byKey["contig2"].LocalBytes < 65000 {
		t.Error("contig did not pin worst case")
	}
	if byKey["paged2"].LocalBytes > 2000 {
		t.Errorf("paged 2-cell frame pins %d bytes", byKey["paged2"].LocalBytes)
	}
	// HostMem local footprint constant across sizes.
	if byKey["hostmem2"].LocalBytes != byKey["hostmem1366"].LocalBytes {
		t.Error("hostmem local footprint varies")
	}
	// Linked random access is the slow one at 1366 cells.
	if byKey["linked1366"].AccessCycles <= byKey["paged1366"].AccessCycles {
		t.Error("linked random access not worst")
	}
	_ = tb.String()
}

func TestE8Shape(t *testing.T) {
	ec := E8Config{LossProbs: []float64{1e-4, 1e-2}, Sizes: []int{1024, 65535},
		RunTime: 20 * sim.Millisecond}
	pts, sr := E8(ec)
	get := func(p float64, size int) E8Point {
		for _, pt := range pts {
			if pt.LossProb == p && pt.Size == size {
				return pt
			}
		}
		panic("missing")
	}
	// Low loss, small frames: nearly everything delivered.
	if got := get(1e-4, 1024).DeliveredFrac; got < 0.95 {
		t.Errorf("1e-4/1KiB delivered %.2f", got)
	}
	// High loss, huge frames: essentially nothing survives (p*cells >> 1).
	if got := get(1e-2, 65535).DeliveredFrac; got > 0.05 {
		t.Errorf("1e-2/64KiB delivered %.2f, want ~0", got)
	}
	// Bigger frames die sooner at the same loss rate.
	if get(1e-2, 1024).DeliveredFrac <= get(1e-2, 65535).DeliveredFrac {
		t.Error("frame-size sensitivity missing")
	}
	// Measured fraction tracks the (1-p)^cells model within 0.15.
	for _, pt := range pts {
		diff := pt.DeliveredFrac - pt.PredictedFrac
		if diff < -0.2 || diff > 0.2 {
			t.Errorf("p=%v size=%d: measured %.2f vs model %.2f",
				pt.LossProb, pt.Size, pt.DeliveredFrac, pt.PredictedFrac)
		}
	}
	_ = sr.String()
}

func TestE9Shape(t *testing.T) {
	pts, sr := E9([]int{8, 256}, 15*sim.Millisecond)
	if pts[0].FifoDrops == 0 {
		t.Error("shallow FIFO survived STS-12c MTU bursts")
	}
	last := pts[len(pts)-1]
	if last.FifoDrops != 0 {
		t.Errorf("256-cell FIFO still dropped %d", last.FifoDrops)
	}
	if last.Packets == 0 {
		t.Error("deep-FIFO run delivered nothing")
	}
	_ = sr.String()
}

func TestE10Shape(t *testing.T) {
	pts, sr := E10(nil)
	byClock := map[int]E10Point{}
	for _, p := range pts {
		byClock[p.ClockMHz] = p
	}
	if !byClock[25].OK155 {
		t.Error("25 MHz engine should clear 155 Mb/s")
	}
	if byClock[25].OK622 {
		t.Error("25 MHz engine should NOT clear 622 Mb/s")
	}
	if !byClock[150].OK622 {
		t.Error("150 MHz engine should clear 622 Mb/s")
	}
	// Monotone in clock.
	prev := 0.0
	for _, mhz := range []int{12, 25, 33, 50, 66, 100, 150} {
		if byClock[mhz].MaxMbps <= prev {
			t.Errorf("not monotone at %d MHz", mhz)
		}
		prev = byClock[mhz].MaxMbps
	}
	_ = sr.String()
}

func TestE11Shape(t *testing.T) {
	pts, sr := E11([]int{1, 3}, 10*sim.Millisecond)
	one, three := pts[0], pts[1]
	if one.FifoDrops == 0 {
		t.Fatal("one engine survived STS-12c aggregate; no bottleneck to scale away")
	}
	if one.GoodputBps <= 0 {
		t.Fatal("one engine delivered literally nothing; config degenerate")
	}
	if three.FifoDrops != 0 {
		t.Fatalf("3 engines still dropped %d cells", three.FifoDrops)
	}
	if three.GoodputBps < 3*one.GoodputBps {
		t.Fatalf("3 engines %.1f Mb/s not >= 3x one engine %.1f Mb/s",
			three.GoodputBps/1e6, one.GoodputBps/1e6)
	}
	if three.GoodputBps < 200e6 {
		t.Fatalf("3 engines only %.1f Mb/s; scale-out broken", three.GoodputBps/1e6)
	}
	if sr.Y("goodput-Mb/s") == nil {
		t.Fatal("series missing")
	}
}

func TestE12Shape(t *testing.T) {
	pts, sr := E12([]float64{0, 5e-3}, 1<<19)
	get := func(selective bool, loss float64) E12Point {
		for _, p := range pts {
			if p.Selective == selective && p.LossProb == loss {
				return p
			}
		}
		panic("missing")
	}
	cleanGBN, lossyGBN := get(false, 0), get(false, 5e-3)
	lossySR := get(true, 5e-3)
	for _, p := range pts {
		if !p.Delivered {
			t.Fatalf("delivery broken: %+v", p)
		}
	}
	if cleanGBN.Retransmits != 0 {
		t.Fatalf("clean link retransmitted %d", cleanGBN.Retransmits)
	}
	if lossyGBN.Retransmits == 0 {
		t.Fatal("0.5% loss caused no retransmissions")
	}
	// GBN goodput collapses by at least 5x; SR does strictly better.
	if lossyGBN.GoodputBps > cleanGBN.GoodputBps/5 {
		t.Fatalf("goodput %0.f vs %0.f: no collapse", lossyGBN.GoodputBps, cleanGBN.GoodputBps)
	}
	if lossySR.GoodputBps <= lossyGBN.GoodputBps {
		t.Fatalf("selective %0.f <= go-back-N %0.f under loss",
			lossySR.GoodputBps, lossyGBN.GoodputBps)
	}
	if sr.Y("go-back-N-Mb/s") == nil || sr.Y("selective-Mb/s") == nil {
		t.Fatal("series missing")
	}
}

func TestE13Shape(t *testing.T) {
	pts, sr := E13([]float64{3e-4, 1e-2}, 9180, 8, 40*sim.Millisecond)
	get := func(useFEC bool, loss float64) E13Point {
		for _, p := range pts {
			if p.FEC == useFEC && p.LossProb == loss {
				return p
			}
		}
		panic("missing")
	}
	// In the single-loss-per-group regime FEC wins clearly.
	plainLow, fecLow := get(false, 3e-4), get(true, 3e-4)
	if fecLow.Recovered == 0 {
		t.Fatal("FEC never recovered anything at 3e-4")
	}
	if fecLow.DeliveredFrac <= plainLow.DeliveredFrac {
		t.Fatalf("FEC %v <= plain %v at 3e-4", fecLow.DeliveredFrac, plainLow.DeliveredFrac)
	}
	if fecLow.DeliveredFrac < 0.99 {
		t.Fatalf("FEC delivered only %v at 3e-4", fecLow.DeliveredFrac)
	}
	// At heavy loss the single parity can't keep up; advantage shrinks.
	plainHigh, fecHigh := get(false, 1e-2), get(true, 1e-2)
	if fecHigh.DeliveredFrac > 0.9 {
		t.Fatalf("FEC implausibly good at 1e-2: %v", fecHigh.DeliveredFrac)
	}
	_ = plainHigh
	if sr.Y("fec-k8") == nil || sr.Y("no-fec") == nil {
		t.Fatal("series missing")
	}
}

func TestTelemetryShape(t *testing.T) {
	ec := DefaultTelemetry()
	ec.RunTime = 5 * sim.Millisecond
	snap, tb := Telemetry(ec)
	if tb.Rows() == 0 {
		t.Fatal("latency table empty")
	}
	// The acceptance shape: per-VC accounting plus at least three latency
	// histograms (tx path, rx path, reassembly) with derivable quantiles.
	if len(snap.VCs) != 1 || snap.VCs[0].CellsOut == 0 || snap.VCs[0].SDUsIn == 0 {
		t.Fatalf("per-VC row %+v", snap.VCs)
	}
	nonEmpty := map[string]bool{}
	for _, h := range snap.Histograms {
		if h.Count > 0 {
			nonEmpty[h.Name] = true
			if h.P50Ns > h.P99Ns || h.P99Ns > h.MaxNs {
				t.Fatalf("%s quantiles out of order: %+v", h.Name, h)
			}
			var cells uint64
			for _, b := range h.Buckets {
				cells += b.Count
			}
			if cells != h.Count {
				t.Fatalf("%s buckets sum %d != count %d", h.Name, cells, h.Count)
			}
		}
	}
	for _, want := range []string{"a.nic.tx.cell_delay", "b.nic.rx.cell_delay",
		"b.nic.rx.reassembly_time", "b.nic.rx.intr_service", "link.ab.latency"} {
		if !nonEmpty[want] {
			t.Fatalf("histogram %s empty or missing (have %v)", want, nonEmpty)
		}
	}
	// End-to-end conservation on a lossless fiber: every cell a sent, b saw.
	if snap.VCs[0].CellsOut != snap.VCs[0].CellsIn {
		t.Fatalf("cells out %d != in %d", snap.VCs[0].CellsOut, snap.VCs[0].CellsIn)
	}
}

func TestE14Shape(t *testing.T) {
	res, tb := E14(20 * sim.Millisecond)
	unshaped, shaped := res[0], res[1]
	if shaped.Cells == 0 || unshaped.Cells == 0 {
		t.Fatal("policer saw no cells")
	}
	// The acceptance shape: a GCRA-shaped source passes its own contract's
	// policer with ZERO non-conforming cells...
	if n := shaped.Tagged + shaped.Discarded; n != 0 {
		t.Fatalf("shaped source: %d non-conforming cells (tagged %d, discarded %d)",
			n, shaped.Tagged, shaped.Discarded)
	}
	if shaped.Delivered == 0 || shaped.AALErrors != 0 {
		t.Fatalf("shaped source delivered %d frames, %d AAL errors",
			shaped.Delivered, shaped.AALErrors)
	}
	// ...while the unshaped source at the same mean rate gets tagged and
	// discarded hard enough to break frames.
	if unshaped.Tagged == 0 || unshaped.Discarded == 0 {
		t.Fatalf("unshaped source: tagged %d, discarded %d — policer asleep",
			unshaped.Tagged, unshaped.Discarded)
	}
	if unshaped.Delivered >= shaped.Delivered {
		t.Fatalf("unshaped delivered %d >= shaped %d", unshaped.Delivered, shaped.Delivered)
	}
	if !strings.Contains(tb.String(), "shaped") {
		t.Error("table missing rows")
	}
}

func TestE15Shape(t *testing.T) {
	overloads := []float64{0.7, 1.3, 2.0}
	pts, sr := E15(overloads, 15*sim.Millisecond)
	get := func(epd bool, ov float64) E15Point {
		for _, p := range pts {
			if p.EPD == epd && p.Overload == ov {
				return p
			}
		}
		panic("missing point")
	}
	// EPD/PPD goodput >= tail drop at EVERY overload point.
	for _, ov := range overloads {
		tail, epd := get(false, ov), get(true, ov)
		if epd.Efficiency < tail.Efficiency {
			t.Errorf("ov=%.1f: epd %.3f < tail %.3f", ov, epd.Efficiency, tail.Efficiency)
		}
	}
	// The gap is widest at moderate overload: tail drop shreds frames there,
	// while at 2x it claws goodput back only through FIFO lockout (one
	// sender captures the queue and the other starves).
	gap := func(ov float64) float64 { return get(true, ov).Efficiency - get(false, ov).Efficiency }
	if gap(1.3) <= gap(0.7) || gap(1.3) <= gap(2.0) {
		t.Errorf("gap not widest at moderate overload: 0.7=%.3f 1.3=%.3f 2.0=%.3f",
			gap(0.7), gap(1.3), gap(2.0))
	}
	// Tail drop breaks frames mid-stream at moderate overload; EPD's whole
	// frame discard keeps reassembly clean.
	if get(false, 1.3).AALErrors == 0 {
		t.Error("tail drop at 1.3x produced no AAL errors")
	}
	if get(true, 1.3).AALErrors != 0 {
		t.Errorf("EPD at 1.3x produced %d AAL errors", get(true, 1.3).AALErrors)
	}
	if get(true, 1.3).EPDCells == 0 {
		t.Error("EPD never triggered at 1.3x")
	}
	// Drop attribution splits by level: EPD's deliberate frame-granular
	// discard is accounted per VC under DropEPD and leaves no stranded
	// reassembly state, while tail drop's losses surface (partly) as
	// partial frames aged out of the receiver — and never as DropEPD.
	var tailStale uint64
	for _, p := range pts {
		if p.EPD {
			if p.EPDDropCells != p.EPDCells {
				t.Errorf("ov=%.1f epd: per-VC epd drops %d != switch epd cells %d",
					p.Overload, p.EPDDropCells, p.EPDCells)
			}
			if p.TimeoutFrames != 0 {
				t.Errorf("ov=%.1f epd: %d stranded frames aged out", p.Overload, p.TimeoutFrames)
			}
		} else {
			tailStale += p.TimeoutFrames
			if p.EPDDropCells != 0 {
				t.Errorf("ov=%.1f tail: unexpected per-VC epd drops %d", p.Overload, p.EPDDropCells)
			}
		}
	}
	if tailStale == 0 {
		t.Error("tail drop stranded no partial frames across the sweep (reassembly timeout never attributed)")
	}
	if sr.Y("tail-drop") == nil || sr.Y("epd-ppd") == nil {
		t.Fatal("series missing")
	}
}

func TestE16Shape(t *testing.T) {
	pts, sr := E16(15 * sim.Millisecond)
	get := func(n int, rate units.BitRate) E16Point {
		for _, p := range pts {
			if p.Switches == n && p.Rate == rate {
				return p
			}
		}
		panic("missing point")
	}
	for _, p := range pts {
		if p.Delivered == 0 {
			t.Fatalf("hops=%d %v: no probe cells survived", p.Switches, p.Rate)
		}
		// Every point admits the probe plus that hop's cross flow at the
		// last output port — the per-hop CAC ran at every switch.
		if p.Admitted != 2 {
			t.Errorf("hops=%d %v: last-port CAC carries %d contracts, want 2",
				p.Switches, p.Rate, p.Admitted)
		}
		if len(p.PerHop) != p.Switches {
			t.Fatalf("hops=%d: %d per-hop rows", p.Switches, len(p.PerHop))
		}
		for _, h := range p.PerHop {
			if h.Mean <= 0 {
				t.Errorf("hops=%d %v: %s residency histogram empty", p.Switches, p.Rate, h.Switch)
			}
		}
	}
	// The acceptance shape, both halves. At 155 Mb/s every added loaded hop
	// adds delay variation, so end-to-end CDV grows monotonically with the
	// switch count...
	for n := 2; n <= 4; n++ {
		prev, cur := get(n-1, units.STS3cPayload), get(n, units.STS3cPayload)
		if cur.E2ECDV <= prev.E2ECDV {
			t.Errorf("155 Mb/s CDV not accumulating: %d hops %v <= %d hops %v",
				n, cur.E2ECDV, n-1, prev.E2ECDV)
		}
		if cur.E2EMean <= prev.E2EMean {
			t.Errorf("155 Mb/s mean delay not accumulating: %d hops %v <= %d hops %v",
				n, cur.E2EMean, n-1, prev.E2EMean)
		}
	}
	// ...while the 622 Mb/s ports drain four times faster and absorb most
	// of the variation the slower ports would accumulate.
	for n := 1; n <= 4; n++ {
		slow, fast := get(n, units.STS3cPayload), get(n, units.STS12cPayload)
		if fast.E2ECDV >= slow.E2ECDV {
			t.Errorf("%d hops: 622 CDV %v >= 155 CDV %v", n, fast.E2ECDV, slow.E2ECDV)
		}
	}
	if sr.Y(fmt.Sprintf("%v cdv-us", units.STS3cPayload)) == nil {
		t.Fatal("series missing 155 Mb/s line")
	}
}

func TestE17Shape(t *testing.T) {
	res, sr := E17(20 * sim.Millisecond)
	if res.PreFaultDelivered == 0 {
		t.Fatal("no frames delivered before the fault")
	}
	if res.PostRestoreDelivered == 0 {
		t.Fatal("flow did not resume after the repair")
	}
	if res.CellsDroppedDown == 0 {
		t.Fatal("fault injection dropped no cells — was the link ever down?")
	}
	// The fault plane closed its loop: AIS on the wire and at dst's host,
	// RDI back at src's host, and both alarms cleared after the repair.
	if res.DetectLatency < 0 || res.AISCellsSent == 0 {
		t.Fatalf("no AIS observed downstream: %+v", res)
	}
	if res.AISRaised < 0 || res.AISCleared < 0 {
		t.Fatalf("dst AIS alarm did not declare and clear: %+v", res)
	}
	if res.RDIRaised < 0 || res.RDICleared < 0 || res.RDICellsSent == 0 {
		t.Fatalf("src RDI alarm did not declare and clear: %+v", res)
	}
	// Detection is one propagation delay (50 µs) after the cut; AIS at the
	// host follows within the insertion period plus transit.
	if res.DetectLatency > sim.Duration(sim.Millisecond) {
		t.Errorf("detection took %v, want < 1ms", res.DetectLatency)
	}
	if res.RecoveryLatency < 0 {
		t.Errorf("no frame delivered after restore: %+v", res)
	}
	// The reassembly GC reclaimed what the cut stranded: the partial frame
	// in flight at kill time was aborted and its SRAM returned.
	if res.StaleFramesReclaimed == 0 {
		t.Error("reassembly GC reclaimed nothing despite a mid-frame cut")
	}
	if res.SRAMEnd != 0 {
		t.Errorf("adapter SRAM still pins %d bytes after the run", res.SRAMEnd)
	}
	if sr == nil || len(sr.X) == 0 {
		t.Fatal("empty report series")
	}
}

func TestE18Reconciles(t *testing.T) {
	rows, tb, rec := E18()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if tb == nil || rec == nil {
		t.Fatal("missing table or recorder")
	}
	for _, r := range rows {
		if r.Measured <= 0 {
			t.Fatalf("rate %v: no measurement", r.Rate)
		}
		for _, seg := range []struct {
			name string
			d    sim.Duration
		}{{"host-tx", r.HostTx}, {"sar+fifo", r.SARFifo}, {"prop", r.Prop},
			{"rx-fifo", r.RxFifo}, {"rx-cell", r.RxCell}, {"deliver", r.Deliver}} {
			if seg.d < 0 {
				t.Errorf("rate %v: negative %s segment %v", r.Rate, seg.name, seg.d)
			}
		}
		// The segments are measured between consecutive recorded boundaries,
		// so the decomposition must reconcile with the end-to-end latency
		// (acceptance budget 5%; the telescoping construction makes it exact).
		ratio := float64(r.Sum) / float64(r.Measured)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("rate %v: stage sum %v vs measured %v (ratio %.3f)",
				r.Rate, r.Sum, r.Measured, ratio)
		}
		// Propagation is pinned by the spec: 2 km at 5 us/km.
		if r.Prop != 10_000 {
			t.Errorf("rate %v: prop segment %v, want 10us", r.Rate, r.Prop)
		}
	}
	// The wire-paced SAR+FIFO segment must shrink substantially from STS-3c
	// to STS-12c (~3x: the 4x wire speedup is partly eaten by the TX engine
	// becoming the bottleneck); the fixed host-side ends must not change.
	r155, r622 := rows[0], rows[1]
	if float64(r622.SARFifo)*2.5 > float64(r155.SARFifo) {
		t.Errorf("sar+fifo did not scale with rate: 155 %v vs 622 %v", r155.SARFifo, r622.SARFifo)
	}
	if r155.HostTx != r622.HostTx {
		t.Errorf("host-tx should be rate-independent: %v vs %v", r155.HostTx, r622.HostTx)
	}
}

func TestE19Shape(t *testing.T) {
	fracs := []float64{0.25, 0.5, 2.0}
	pts, sr := E19(fracs, 2*sim.Second)
	get := func(epd bool, frac float64) E19Point {
		for _, p := range pts {
			if p.EPD == epd && p.BufferFrac == frac {
				return p
			}
		}
		panic("missing point")
	}
	for _, p := range pts {
		if p.Efficiency <= 0.3 || p.Efficiency > 1 {
			t.Errorf("%s: efficiency %.3f out of range", p.String(), p.Efficiency)
		}
		if p.EPD && (p.EPDCells == 0 || p.TailDropped != 0) {
			t.Errorf("%s: EPD run dropped wrong way (epd=%d tail=%d)",
				p.String(), p.EPDCells, p.TailDropped)
		}
		if !p.EPD && (p.TailDropped == 0 || p.EPDCells != 0) {
			t.Errorf("%s: tail run dropped wrong way (epd=%d tail=%d)",
				p.String(), p.EPDCells, p.TailDropped)
		}
	}
	// The satellite-ATM result: tail-drop goodput degrades as the buffer
	// shrinks below ~1xBDP...
	if tailSmall, tailBig := get(false, 0.25), get(false, 2.0); tailSmall.Efficiency > tailBig.Efficiency-0.05 {
		t.Errorf("tail drop did not degrade at small buffer: 0.25x %.3f vs 2x %.3f",
			tailSmall.Efficiency, tailBig.Efficiency)
	}
	// ...and EPD/PPD recovers most of it where the squeeze is on.
	for _, frac := range []float64{0.25, 0.5} {
		tail, epd := get(false, frac), get(true, frac)
		if epd.Efficiency < tail.Efficiency+0.02 {
			t.Errorf("EPD did not recover at %.2fxBDP: epd %.3f vs tail %.3f",
				frac, epd.Efficiency, tail.Efficiency)
		}
	}
	// Reno pays for congestion in retransmissions either way; the policies
	// must at least be exercised.
	if get(false, 0.25).Retransmits == 0 || get(true, 0.25).Retransmits == 0 {
		t.Error("no retransmissions at the smallest buffer — no congestion?")
	}
	if sr.Y("tail-drop") == nil || sr.Y("epd-ppd") == nil {
		t.Fatal("series missing")
	}
}

func TestE20SingleFlowShape(t *testing.T) {
	res, tb := E20(1, 6*sim.Second)
	if len(res.Flows) != 1 {
		t.Fatalf("%d flows", len(res.Flows))
	}
	f := res.Flows[0]
	// The GEO pipe is clean and over-buffered: zero loss events, and an
	// RTT pinned at the 552 ms propagation floor (plus queueing epsilon).
	if f.Retransmits != 0 || f.Timeouts != 0 {
		t.Errorf("loss events on a clean GEO path: %+v", f)
	}
	if f.SRTT < e20RTT || f.SRTT > e20RTT+20*sim.Millisecond {
		t.Errorf("SRTT %v, want ~%v", f.SRTT, e20RTT)
	}
	// Window-limited regime: goodput approaches RcvWnd/RTT (short of it by
	// the seconds slow start burns at this RTT) and never exceeds it.
	if f.GoodputBps < 0.6*res.WindowLimitBps || f.GoodputBps > 1.05*res.WindowLimitBps {
		t.Errorf("goodput %.0f vs window limit %.0f", f.GoodputBps, res.WindowLimitBps)
	}
	// cwnd opened past the advertised window: the flow is receiver-limited.
	if f.CwndBytes < e20RcvWnd {
		t.Errorf("cwnd %d never reached the advertised window %d", f.CwndBytes, e20RcvWnd)
	}
	// The sampled cwnd trace is the deliverable: it must exist, grow to a
	// plateau at/above the advertised window, and never fall back (no loss).
	rows := res.Sampler.Rows()
	if len(rows) < 50 {
		t.Fatalf("sampler recorded %d rows", len(rows))
	}
	const col = "tcp.geo0.cwnd"
	mid, last := rows[len(rows)/2].Values[col], rows[len(rows)-1].Values[col]
	if last < float64(e20RcvWnd) {
		t.Errorf("final sampled cwnd %.0f below advertised window %d", last, e20RcvWnd)
	}
	if last < mid {
		t.Errorf("cwnd trace fell back: mid %.0f -> last %.0f", mid, last)
	}
	if !strings.Contains(tb.String(), "geo0") {
		t.Error("table missing flow row")
	}
}

func TestE20TwoFlowFairness(t *testing.T) {
	res, _ := E20(2, 8*sim.Second)
	if len(res.Flows) != 2 {
		t.Fatalf("%d flows", len(res.Flows))
	}
	if res.JainIndex < 0.95 {
		t.Errorf("Jain index %.4f — staggered window-limited flows should converge", res.JainIndex)
	}
	for _, f := range res.Flows {
		if f.Retransmits != 0 || f.Timeouts != 0 {
			t.Errorf("flow %s saw loss on the over-buffered GEO path: %+v", f.Name, f)
		}
		if f.GoodputBps < 0.5*res.WindowLimitBps {
			t.Errorf("flow %s goodput %.0f below half the window limit", f.Name, f.GoodputBps)
		}
	}
}

func TestE21Shape(t *testing.T) {
	pts, sr := E21(30 * sim.Millisecond)
	if len(pts) != 3 {
		t.Fatalf("%d delay points", len(pts))
	}
	var stamped uint64
	for _, p := range pts {
		// The converged operating point is delay-invariant: max-min fair
		// shares at the ERICA target, whatever the loop length.
		if !p.Converged {
			t.Errorf("delay %v: never converged", p.FeedbackDelay)
		}
		if p.Jain < 0.95 {
			t.Errorf("delay %v: Jain %.4f < 0.95", p.FeedbackDelay, p.Jain)
		}
		// Bounded bottleneck queue: ERICA holds the excursion far below
		// the 512-cell buffer, so nothing rides on tail drop.
		if p.QueuePeak <= 0 || p.QueuePeak > 256 {
			t.Errorf("delay %v: queue peak %d cells", p.FeedbackDelay, p.QueuePeak)
		}
		stamped += p.ERStamped
		// Each source settles at or above the nominal fair share (ERICA
		// allocates measured load; duty factor < 1 lifts ACR, never drops
		// it below fair share) and well below the 622 access rate.
		for _, src := range p.Sources {
			if src.MeanACR < 0.9*p.FairShare || src.MeanACR > 4*p.FairShare {
				t.Errorf("delay %v %s: mean ACR %.0f vs fair share %.0f",
					p.FeedbackDelay, src.Name, src.MeanACR, p.FairShare)
			}
			if src.Delivered == 0 {
				t.Errorf("delay %v %s: no cells delivered", p.FeedbackDelay, src.Name)
			}
		}
	}
	if stamped == 0 {
		t.Error("ERICA never stamped an explicit rate")
	}
	for _, y := range []string{"jain-index", "queue-peak-cells", "convergence-us"} {
		if sr.Y(y) == nil {
			t.Fatalf("series %q missing", y)
		}
	}
}
