package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/sonetlink"
)

// SonetPathResult is one recovery-mode measurement of the full SONET path.
type SonetPathResult struct {
	Burst      bool
	Delivered  uint64  // SDUs received
	GoodputBps float64 // over the delivery span
	Frames     uint64  // a->b SONET frames
	DataCells  uint64  // non-idle cells carried a->b
	IdleCells  uint64
	Events     uint64 // kernel events dispatched for the whole run
}

// SonetPath runs a window-driven MTU stream between two stations over the
// full SONET physical layer (framing, scrambling, HEC delineation) and
// reports both receive recovery modes side by side: serial (one deferred
// kernel event per recovered cell) and burst (each frame's cells crossing as
// one vector, re-spread at the receive door). Everything observable is
// pinned identical by the mode-equivalence golden tests — the table shows
// that equality alongside what batching costs in kernel events (nothing:
// the receive door is a must-split stage, so the per-cell events remain;
// the win is CPU/allocation amortization, measured by
// BenchmarkBurstSonetPath).
func SonetPath(runTime sim.Duration) ([2]SonetPathResult, *report.Table) {
	var res [2]SonetPathResult
	for i, burst := range []bool{false, true} {
		res[i] = runSonetPath(burst, runTime)
	}
	tb := report.NewTable("SONET-path ablation: serial vs burst receive recovery (STS-3c, AAL5, 9180-B frames)",
		"recovery", "delivered", "goodput-Mb/s", "frames", "data-cells", "idle-cells", "kernel-events")
	for _, r := range res {
		mode := "serial"
		if r.Burst {
			mode = "burst"
		}
		tb.Row(mode, r.Delivered, fmt.Sprintf("%.2f", r.GoodputBps/1e6),
			r.Frames, r.DataCells, r.IdleCells, r.Events)
	}
	return res, tb
}

func runSonetPath(burst bool, runTime sim.Duration) SonetPathResult {
	k := newKernel()
	cfg := nic.DefaultConfig("a")
	// E9's result applied: the deframer releases each frame's cells over one
	// 125 µs window, so the RX FIFO must ride out a frame's backlog.
	cfg.RxFifoDepth = 128
	cfgB := cfg
	cfgB.Name = "b"
	a, err := netsim.NewStation(k, cfg)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	b, err := netsim.NewStation(k, cfgB)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	link, err := sonetlink.Connect(k, sonetlink.Config{
		Rate: sonet.STS3c, Delay: 10_000, Burst: burst,
	}, a.Iface, b.Iface)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	a.Iface.OpenVC(stdVC)
	b.Iface.OpenVC(stdVC)
	deadline := sim.Time(runTime)
	var lastAt sim.Time
	b.Iface.OnReceive(func(d nic.Delivered) { lastAt = d.At })
	src := netsim.NewSource(k, a, stdVC, 9180, deadline)
	src.Start(4)
	k.RunUntil(deadline)
	delivered := b.Iface.Stats().Rx.Packets
	k.Run()
	if lastAt == 0 {
		lastAt = deadline
	}
	st := link.AtoB.Stats()
	return SonetPathResult{
		Burst:      burst,
		Delivered:  delivered,
		GoodputBps: goodputBps(b, lastAt),
		Frames:     st.Frames,
		DataCells:  st.DataCells,
		IdleCells:  st.IdleCells,
		Events:     k.Dispatched(),
	}
}
