package experiments

import (
	"math"

	"repro/internal/aal"
	"repro/internal/engine"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
)

// E8Point is one (loss rate, SDU size) goodput measurement.
type E8Point struct {
	LossProb      float64
	Size          int
	DeliveredFrac float64 // frames delivered / frames sent
	GoodputBps    float64
	PredictedFrac float64 // (1-p)^cells — the whole-frame-discard model
}

// E8Config tunes the sweep.
type E8Config struct {
	LossProbs []float64
	Sizes     []int
	RunTime   sim.Duration
}

// DefaultE8 is the full sweep.
func DefaultE8() E8Config {
	return E8Config{
		LossProbs: []float64{1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2},
		Sizes:     []int{1024, 9180, 65535},
		RunTime:   60 * sim.Millisecond,
	}
}

// E8 measures AAL5 goodput versus cell-loss rate. AAL5 discards the whole
// frame on any lost cell, so delivered fraction tracks (1-p)^cells and
// collapses where p·cells ≈ 1 — earlier for bigger frames. This is the
// loss-sensitivity cliff that motivated the era's FEC/retransmission work.
func E8(ec E8Config) ([]E8Point, *report.Series) {
	type e8Case struct {
		size int
		p    float64
	}
	var cases []e8Case
	for _, size := range ec.Sizes {
		for _, p := range ec.LossProbs {
			cases = append(cases, e8Case{size, p})
		}
	}
	pts := runner.Map(Parallelism(), len(cases), func(i int) E8Point {
		return runE8Point(cases[i].size, cases[i].p, ec)
	})
	x := make([]float64, len(ec.LossProbs))
	for i, p := range ec.LossProbs {
		x[i] = p
	}
	sr := report.NewSeries("E8: AAL5 delivered-frame fraction vs cell loss probability", "loss-prob", x)
	for _, size := range ec.Sizes {
		var y, pred []float64
		for _, pt := range pts {
			if pt.Size == size {
				y = append(y, pt.DeliveredFrac)
				pred = append(pred, pt.PredictedFrac)
			}
		}
		sr.Add(sizeLabel(size), y)
		sr.Add(sizeLabel(size)+"-model", pred)
	}
	return pts, sr
}

// runE8Point measures one (size, loss probability) point in its own world.
func runE8Point(size int, p float64, ec E8Config) E8Point {
	cfg := nic.DefaultConfig("x")
	deadline := sim.Time(ec.RunTime)
	var src *netsim.Source
	_, b, k := runPair(cfg,
		netsim.LinkConfig{Delay: 10_000, LossProb: p, Seed: uint64(size) + uint64(p*1e7)},
		deadline+sim.Time(ec.RunTime/2),
		func(k *sim.Kernel, a, b *netsim.Station) {
			src = netsim.NewSource(k, a, stdVC, size, deadline)
			src.Start(4)
		})
	st := b.Iface.Stats()
	sent := src.Sent
	frac := 0.0
	if sent > 0 {
		frac = float64(st.Rx.Packets) / float64(sent)
	}
	cells := aal.CellsForSDU5(size)
	return E8Point{
		LossProb: p, Size: size,
		DeliveredFrac: frac,
		GoodputBps:    goodputBps(b, k.Now()),
		PredictedFrac: math.Pow(1-p, float64(cells)),
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return itoa(n/1024) + "KiB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// E9Point is one FIFO-depth measurement at STS-12c.
type E9Point struct {
	Depth     int
	FifoDrops uint64
	Packets   uint64
	MaxFifo   int
}

// E9 sweeps the RX FIFO depth at STS-12c with paced MTU packets. Within one
// 192-cell frame the 25 MHz receive engine falls behind the arriving cells;
// the FIFO must absorb that intra-frame backlog (~60-100 cells) and drain
// in the inter-packet gap the pacing provides. Paper shape: a hard cliff —
// depths below the per-frame backlog lose cells on every frame, depths
// above it lose none. (An unpaced greedy source oversubscribes the engine
// permanently and no finite FIFO survives; that regime is E3's 622 result.)
func E9(depths []int, runTime sim.Duration) ([]E9Point, *report.Series) {
	if len(depths) == 0 {
		depths = []int{8, 16, 32, 64, 96, 128, 192}
	}
	pts := runner.Map(Parallelism(), len(depths), func(i int) E9Point {
		return runE9Point(depths[i], runTime)
	})
	x := make([]float64, len(depths))
	for i, d := range depths {
		x[i] = float64(d)
	}
	sr := report.NewSeries("E9: RX FIFO depth vs overflow at STS-12c (9180-B frames)", "fifo-cells", x)
	var drops, pkts []float64
	for _, p := range pts {
		drops = append(drops, float64(p.FifoDrops))
		pkts = append(pkts, float64(p.Packets))
	}
	sr.Add("cell-drops", drops)
	sr.Add("packets-delivered", pkts)
	return pts, sr
}

// runE9Point measures one FIFO depth in its own world.
func runE9Point(d int, runTime sim.Duration) E9Point {
	cfg := nic.DefaultConfig("x")
	cfg.PayloadRate = units.STS12cPayload
	cfg.RxFifoDepth = d
	deadline := sim.Time(runTime)
	_, b, _ := runPair(cfg, netsim.LinkConfig{Delay: 10_000, Seed: 17},
		deadline+sim.Time(runTime/2),
		func(k *sim.Kernel, a, b *netsim.Station) {
			// One 192-cell frame every 500 µs: the wire burst lasts
			// ~136 µs (or ~185 µs engine-paced), leaving a drain gap.
			payload := make([]byte, 9180)
			var tick func()
			tick = func() {
				if k.Now() > deadline {
					return
				}
				a.Iface.Send(stdVC, payload, nil)
				k.After(500*sim.Microsecond, tick)
			}
			tick()
		})
	st := b.Iface.Stats()
	return E9Point{Depth: d, FifoDrops: st.Rx.FifoDrops,
		Packets: st.Rx.Packets, MaxFifo: st.Rx.MaxFifo}
}

// E10Point is one engine-clock measurement.
type E10Point struct {
	ClockMHz   int
	RxCellTime sim.Duration
	MaxMbps    float64 // payload rate the rx engine sustains
	OK155      bool
	OK622      bool
}

// E10 computes, for a range of engine clocks, the maximum ATM payload rate
// the receive engine sustains on MTU-dominated traffic: the steady-state
// per-cell routine (CAM lookup, paged append) with the per-frame EOP cost
// amortized over a 192-cell frame. Paper shape: 25 MHz-class parts clear
// 155 Mb/s with margin; 622 Mb/s needs either a ~3x faster engine, multiple
// engines, or hardware assist.
func E10(clocksMHz []int) ([]E10Point, *report.Series) {
	if len(clocksMHz) == 0 {
		clocksMHz = []int{12, 25, 33, 50, 66, 100, 150}
	}
	var pts []E10Point
	for _, mhz := range clocksMHz {
		k := newKernel()
		cfg := engine.DefaultConfig()
		cfg.ClockHz = int64(mhz) * 1_000_000
		eng := engine.New(k, "e10", cfg)
		// Steady-state per-cell work: rx_cell with CAM lookup (3) and
		// paged append (5), plus 1/192 of the EOP routine.
		perCell := eng.RoutineTime(12+3+5) + eng.RoutineTime(22)/192
		// Max sustainable cell rate = 1/perCell; payload bits/s.
		maxMbps := 1e9 / float64(perCell) * 53 * 8 / 1e6
		pts = append(pts, E10Point{
			ClockMHz: mhz, RxCellTime: perCell, MaxMbps: maxMbps,
			OK155: perCell <= units.CellTime(units.STS3cPayload),
			OK622: perCell <= units.CellTime(units.STS12cPayload),
		})
	}
	x := make([]float64, len(clocksMHz))
	for i, m := range clocksMHz {
		x[i] = float64(m)
	}
	sr := report.NewSeries("E10: max sustainable payload rate vs engine clock (MTU-amortized receive path)",
		"engine-MHz", x)
	var y []float64
	for _, p := range pts {
		y = append(y, p.MaxMbps)
	}
	sr.Add("max-Mb/s", y)
	sr.Add("need-155", constSeries(149.76, len(x)))
	sr.Add("need-622", constSeries(599.04, len(x)))
	return pts, sr
}

func constSeries(v float64, n int) []float64 {
	y := make([]float64, n)
	for i := range y {
		y[i] = v
	}
	return y
}
