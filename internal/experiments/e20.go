package experiments

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/ip"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/units"
)

// E20 GEO path constants.
const (
	e20GeoDelay = 275 * sim.Millisecond // one-way GEO hop propagation
	e20HopDelay = sim.Millisecond       // terrestrial tail
	// Propagation RTT: each direction crosses one terrestrial hop and the
	// GEO hop.
	e20RTT    = 2 * (e20GeoDelay + e20HopDelay)
	e20RcvWnd = 128 << 10 // implicit window scale in use (tcp.MaxWindow ≥ this)
)

// E20FlowStat is one flow's outcome over the GEO link.
type E20FlowStat struct {
	Name        string
	GoodputBps  float64
	Delivered   uint64
	CwndBytes   int
	SRTT        sim.Duration
	Retransmits uint64
	Timeouts    uint64
}

// E20Result is the full GEO-delay run: per-flow outcomes, Jain's fairness
// index across them, and the congestion-window time series sampled from the
// registry (the flight-recorder path for cwnd traces).
type E20Result struct {
	Flows     []E20FlowStat
	JainIndex float64
	// WindowLimitBps is the window-limited throughput prediction
	// RcvWnd·8/RTT each flow should plateau at.
	WindowLimitBps float64
	Sampler        *trace.Sampler
}

// E20 runs TCP over a GEO satellite hop (~275 ms one-way): nFlows Reno
// flows from separate ground stations cross one switch onto the satellite
// link. The pipe's bandwidth-delay product (~10 MB at STS-3c) dwarfs any
// sane receive window, so after slow start — which alone needs seconds at
// this RTT — each flow plateaus at the window-limited rate RcvWnd/RTT, a
// few percent of the link: the classic case for large windows and window
// scale on satellite paths. The cwnd gauges are sampled on a fixed period
// into the returned time series; with generous switch buffering the trace
// climbs monotonically and stabilizes, with no loss events. Later flows
// start one RTT apart; Jain's index over the steady-state goodputs shows
// the window-limited plateau is insensitive to that stagger.
func E20(nFlows int, runTime sim.Duration) (E20Result, *report.Table) {
	if nFlows <= 0 {
		nFlows = 1
	}
	if runTime <= 0 {
		runTime = 10 * sim.Second
	}
	net, err := core.NewNetwork(core.NetworkSpec{
		Kernel: newKernel(),
		Endpoints: []core.EndpointSpec{
			{Name: "a", Options: core.Options{InterleaveVCs: true}},
			{Name: "b", Options: core.Options{InterleaveVCs: true}},
			{Name: "c"},
		},
		Switches: []core.SwitchSpec{
			// Buffering is deliberately generous (slow-start bursts, not
			// steady overload, are the only transient): the point here is
			// the delay regime, not the discard policy.
			{Name: "sw", Ports: 3, Rate: units.STS3cPayload, QueueDepth: 4096},
		},
		Links: []core.LinkSpec{
			{Name: "a-sw", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "sw", Port: 0}, Delay: e20HopDelay, Seed: 51},
			{Name: "b-sw", A: core.NodeRef{Node: "b"}, B: core.NodeRef{Node: "sw", Port: 1}, Delay: e20HopDelay, Seed: 52},
			{Name: "geo", A: core.NodeRef{Node: "sw", Port: 2}, B: core.NodeRef{Node: "c"}, Delay: e20GeoDelay, Seed: 53},
		},
	})
	if err != nil {
		panic(err)
	}
	kern := net.Kernel()
	reg := net.Metrics()

	stacks := map[string]*ip.Stack{
		"a": ip.NewStack(net.Endpoint("a").Interface(), ip.LLCSnap, ip.Addr{10, 0, 1, 1}),
		"b": ip.NewStack(net.Endpoint("b").Interface(), ip.LLCSnap, ip.Addr{10, 0, 1, 2}),
		"c": ip.NewStack(net.Endpoint("c").Interface(), ip.LLCSnap, ip.Addr{10, 0, 1, 3}),
	}
	cfg := tcp.Config{
		MSS:    e19MSS,
		RcvWnd: e20RcvWnd,
		// RFC 6298's 1 s initial RTO would still fire before the first
		// 552 ms ACK returns only on loss; keep it above the path RTT.
		InitialRTO: 2 * e20RTT,
		MinRTO:     200 * sim.Millisecond,
	}
	flows := make([]*tcp.Flow, 0, nFlows)
	starts := make([]sim.Time, nFlows)
	for i := 0; i < nFlows; i++ {
		src := []string{"a", "b"}[i%2]
		vcc, err := net.AddVCC(core.VCCSpec{
			Name: fmt.Sprintf("geo%d", i),
			From: src, To: "c",
			VC:     atm.VC{VCI: uint16(201 + i)},
			Duplex: true,
		})
		if err != nil {
			panic(err)
		}
		f := tcp.NewFlow(kern, fmt.Sprintf("geo%d", i),
			stacks[src], vcc.SourceVC, stacks["c"], vcc.DestVC, cfg)
		f.Instrument(reg)
		flows = append(flows, f)
		start := sim.Duration(i) * e20RTT
		starts[i] = sim.Time(start)
		kern.After(start, func() { f.Start(0, nil) })
	}

	deadline := sim.Time(runTime)
	sampler := trace.NewSampler(kern, reg, 50*sim.Millisecond)
	sampler.Start(deadline)
	kern.RunUntil(deadline)

	res := E20Result{
		JainIndex:      1,
		WindowLimitBps: float64(e20RcvWnd) * 8 * float64(sim.Second) / float64(e20RTT),
		Sampler:        sampler,
	}
	var sum, sumSq float64
	for i, f := range flows {
		st := f.Sender.Stats()
		// Rate over the flow's own active window, so staggered starts
		// compare like for like.
		active := float64(deadline-starts[i]) / float64(sim.Second)
		gp := float64(f.Delivered()) * 8 / active
		res.Flows = append(res.Flows, E20FlowStat{
			Name:        f.Name,
			GoodputBps:  gp,
			Delivered:   f.Delivered(),
			CwndBytes:   f.Sender.Cwnd(),
			SRTT:        f.Sender.SRTT(),
			Retransmits: st.Retransmits,
			Timeouts:    st.Timeouts,
		})
		sum += gp
		sumSq += gp * gp
	}
	if nFlows > 1 && sumSq > 0 {
		res.JainIndex = sum * sum / (float64(nFlows) * sumSq)
	}
	for _, f := range flows {
		f.Stop()
	}
	kern.Run()

	tb := report.NewTable(
		fmt.Sprintf("E20: TCP over a GEO hop (%v one-way, %d flow(s), %v)", e20GeoDelay, nFlows, runTime),
		"flow", "goodput", "win-limit", "cwnd", "srtt", "retx", "timeouts")
	tb.Note = fmt.Sprintf("window-limited regime: BDP %.1f MB >> %d KiB window; Jain index %.4f",
		float64(units.STS3cPayload)*float64(e20RTT)/float64(sim.Second)/8/1e6,
		e20RcvWnd>>10, res.JainIndex)
	for _, fs := range res.Flows {
		tb.Row(fs.Name,
			fmt.Sprintf("%.2fM", fs.GoodputBps/1e6),
			fmt.Sprintf("%.2fM", res.WindowLimitBps/1e6),
			fmt.Sprintf("%d", fs.CwndBytes),
			fs.SRTT.String(),
			fmt.Sprintf("%d", fs.Retransmits),
			fmt.Sprintf("%d", fs.Timeouts))
	}
	return res, tb
}
