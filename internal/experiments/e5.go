package experiments

import (
	"repro/internal/aal"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
)

// E5Row is the latency breakdown for one packet size.
type E5Row struct {
	Size  int
	Cells int
	// Model components (ns): host send path, staging DMA (first chunk),
	// wire serialization, propagation, receive-side DMA, host receive
	// interrupt.
	HostTx   sim.Duration
	FirstDMA sim.Duration
	WireTime sim.Duration
	Prop     sim.Duration
	RxDMA    sim.Duration
	HostRx   sim.Duration
	ModelSum sim.Duration
	Measured sim.Duration // from the discrete-event run
}

// E5 measures single-packet end-to-end latency for three sizes and compares
// it against an analytic component model. Paper shape: small packets are
// dominated by fixed per-packet costs (host, interrupt, DMA setup); large
// packets by wire serialization; the model accounts for the measurement to
// within the pipelining slack it deliberately ignores.
func E5() ([]E5Row, *report.Table) {
	sizes := []int{96, 9180, 65535}
	delay := sim.Duration(10_000) // 2 km
	var rows []E5Row
	for _, size := range sizes {
		cfg := nic.DefaultConfig("x")
		var measured sim.Duration
		_, _, _ = runPairMeasure(cfg, delay, size, &measured)

		cells := aal.CellsForSDU5(size)
		k := newKernel()
		eng := engine.New(k, "m", cfg.Engine)
		hostCfg := hostDefault()
		// Component model. Wire serialization of all cells dominates the
		// middle of the pipeline; segmentation and reassembly overlap it
		// (the engines are faster per cell than the wire at STS-3c), so
		// the model counts them only via the per-packet ends.
		hostTx := hostInstrTime(hostCfg.InstrRate,
			hostCfg.DriverTxPacket+hostCfg.StackPerPacket+(size*hostCfg.StackPerByteMilli+999)/1000)
		pio := sim.Duration(4) * 600 // descriptor PIO words
		txStart := eng.RoutineTime(26)
		firstChunk := size + 8
		if firstChunk > 2048 {
			firstChunk = 2048
		}
		firstDMA := sim.Duration(200) + sim.Duration((firstChunk+3)/4)*40
		wire := sim.Duration(cells) * units.CellTime(units.STS3cPayload)
		eop := eng.RoutineTime(22)
		rxDMA := dmaTime(size)
		hostRx := hostInstrTime(hostCfg.InstrRate,
			hostCfg.InterruptEntry+hostCfg.InterruptExit+hostCfg.DriverRxPacket+
				hostCfg.StackPerPacket+(size*hostCfg.StackPerByteMilli+999)/1000)
		// Per-cell receive processing of the final cell sits between the
		// wire and EOP; one rx_cell routine covers it.
		rxCell := eng.RoutineTime(12 + 3 + 5)
		model := hostTx + pio + txStart + firstDMA + wire + delay + rxCell + eop + rxDMA + hostRx

		rows = append(rows, E5Row{
			Size: size, Cells: cells,
			HostTx: hostTx + pio + txStart, FirstDMA: firstDMA,
			WireTime: wire, Prop: delay, RxDMA: rxDMA, HostRx: rxCell + eop + hostRx,
			ModelSum: model, Measured: measured,
		})
	}
	tb := report.NewTable("E5: single-packet latency breakdown (STS-3c, AAL5, 2 km)",
		"sdu", "cells", "host-tx", "1st-dma", "wire", "prop", "rx-dma", "host-rx", "model", "measured")
	tb.Note = "model ignores pipeline overlap slack; measured is the discrete-event result"
	for _, r := range rows {
		tb.Row(r.Size, r.Cells, r.HostTx.String(), r.FirstDMA.String(), r.WireTime.String(),
			r.Prop.String(), r.RxDMA.String(), r.HostRx.String(), r.ModelSum.String(), r.Measured.String())
	}
	return rows, tb
}

func runPairMeasure(cfg nic.Config, delay sim.Duration, size int, out *sim.Duration) (a, b *netsim.Station, k *sim.Kernel) {
	payload := make([]byte, size)
	return runPair(cfg, netsim.LinkConfig{Delay: delay, Seed: 3}, sim.Second,
		func(k *sim.Kernel, a, b *netsim.Station) {
			start := k.Now()
			b.Iface.OnReceive(func(d nic.Delivered) { *out = d.At - start })
			a.Iface.Send(stdVC, payload, nil)
		})
}

// hostDefault mirrors host.DefaultConfig without importing the package's
// struct wholesale into the model (keeps the analytic model explicit).
type hostParams struct {
	InstrRate                         int64
	InterruptEntry, InterruptExit     int
	DriverRxPacket, DriverTxPacket    int
	StackPerPacket, StackPerByteMilli int
}

func hostDefault() hostParams {
	return hostParams{
		InstrRate: 25_000_000, InterruptEntry: 120, InterruptExit: 80,
		DriverRxPacket: 200, DriverTxPacket: 250,
		StackPerPacket: 450, StackPerByteMilli: 500,
	}
}

func hostInstrTime(rate int64, instr int) sim.Duration {
	ns := int64(instr) * 1_000_000_000 / rate
	if int64(instr)*1_000_000_000%rate != 0 {
		ns++
	}
	return sim.Duration(ns)
}

// dmaTime mirrors the default bus model's burst arithmetic.
func dmaTime(n int) sim.Duration {
	var t sim.Duration
	for n > 0 {
		chunk := n
		if chunk > 2048 {
			chunk = 2048
		}
		t += 200 + sim.Duration((chunk+3)/4)*40
		n -= chunk
	}
	return t
}
