package experiments

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/oam"
	"repro/internal/report"
	"repro/internal/sim"
)

// E17Result measures one scripted link failure and repair: a greedy AAL5
// flow crosses src → sw1 → sw2 → dst, the sw1→sw2 fiber is cut a quarter of
// the way through the run and restored at the halfway mark, and the fault
// plane is observed end to end.
type E17Result struct {
	KillAt    sim.Time
	RestoreAt sim.Time

	// DetectLatency: fiber cut → first AIS cell on the wire toward dst
	// (sw2's loss-of-signal hold-off is the propagation delay; its first
	// AIS batch goes out immediately on detection).
	DetectLatency sim.Duration
	// AISRaised: fiber cut → dst's host notified of the declared AIS
	// alarm. AISCleared: fiber restored → dst's host notified of the
	// clear (AIS generation stops, then the soak timer runs out).
	AISRaised  sim.Duration
	AISCleared sim.Duration
	// RDIRaised: fiber cut → src's host learns the far end cannot hear it
	// (dst's RDI crossed the intact reverse path). RDICleared: restore →
	// src's clear notification.
	RDIRaised  sim.Duration
	RDICleared sim.Duration
	// RecoveryLatency: fiber restored → first complete frame delivered at
	// dst (post-repair cell flow plus one reassembly).
	RecoveryLatency sim.Duration

	PreFaultDelivered    uint64 // frames delivered before the cut
	PostRestoreDelivered uint64 // frames delivered after the repair
	CellsDroppedDown     uint64 // cells offered to the dead fiber
	AISCellsSent         uint64 // AIS cells sw2 inserted
	RDICellsSent         uint64 // RDI cells dst generated upstream
	StaleFramesReclaimed uint64 // partial frames the reassembly GC aborted
	SRAMPreFault         int    // dst reassembly bytes pinned just before the cut
	SRAMEnd              int    // …and after the run drained (0 = no leak)
}

// E17 is the fault-management experiment: survive the fault you inject.
// A link mid-path dies under load and comes back. The switch downstream of
// the cut inserts F5 AIS toward the destination; the destination's NIC
// declares the alarm (one host interrupt, not one per cell), answers with
// RDI upstream every alarm period, and the source learns its transmit path
// is dead. Meanwhile the destination's reassembler is left holding frames
// whose end-of-message died on the wire — the staleness GC reclaims them,
// so adapter SRAM returns to baseline instead of leaking toward
// exhaustion. After repair the alarms soak out and the flow resumes.
//
// Reported: fault-detection latency, AIS/RDI propagation and clear times,
// post-repair recovery time, and the buffer accounting.
func E17(runTime sim.Duration) (E17Result, *report.Series) {
	if runTime <= 0 {
		runTime = 20 * sim.Millisecond
	}
	const (
		sdu       = 9180                  // IP-MTU frames: 192 cells under AAL5
		aisPeriod = 100 * sim.Microsecond // switch AIS insertion cadence
		rdiPeriod = 100 * sim.Microsecond // NIC RDI generation cadence
		soak      = 300 * sim.Microsecond // alarm clear timeout
		rasGC     = 500 * sim.Microsecond // reassembly staleness timeout
	)
	opts := core.Options{
		ReassemblyTimeout: rasGC,
		AlarmPeriod:       rdiPeriod,
		AlarmClearTimeout: soak,
	}
	spec := core.NetworkSpec{
		Kernel: newKernel(),
		Endpoints: []core.EndpointSpec{
			{Name: "src", Options: opts},
			{Name: "dst", Options: opts},
		},
		Switches: []core.SwitchSpec{
			{Name: "sw1", Ports: 2, QueueDepth: 96, AISPeriod: aisPeriod},
			{Name: "sw2", Ports: 2, QueueDepth: 96, AISPeriod: aisPeriod},
		},
		Links: []core.LinkSpec{
			{Name: "src-sw1", A: core.NodeRef{Node: "src"},
				B: core.NodeRef{Node: "sw1", Port: 0}, Delay: 10_000, Seed: 90},
			// The mid-path fiber under test: 10 km, so detection (one
			// propagation delay after the cut) is visibly nonzero.
			{Name: "sw1-sw2", A: core.NodeRef{Node: "sw1", Port: 1},
				B: core.NodeRef{Node: "sw2", Port: 0}, DistanceKm: 10, Seed: 91},
			{Name: "sw2-dst", A: core.NodeRef{Node: "sw2", Port: 1},
				B: core.NodeRef{Node: "dst"}, Delay: 10_000, Seed: 92},
		},
		// Duplex: the reverse path carries dst's RDI back to src — killing
		// only the forward fiber is what keeps the defect reportable.
		VCCs: []core.VCCSpec{
			{Name: "flow", From: "src", To: "dst",
				VC: atm.VC{VCI: 100}, Duplex: true},
		},
	}
	net, err := core.NewNetwork(spec)
	if err != nil {
		panic(err)
	}
	kern := net.Kernel()
	deadline := sim.Time(runTime)
	kill := deadline / 4
	restore := deadline / 2

	res := E17Result{KillAt: kill, RestoreAt: restore}
	flow := net.VCC("flow")
	src, dst := net.Endpoint("src"), net.Endpoint("dst")

	// Alarm plane observers: declare/clear timestamps at both hosts.
	var aisUp, aisDown, rdiUp, rdiDown sim.Time
	dst.OnAlarm(func(ev nic.AlarmEvent) {
		if ev.Kind != nic.AlarmAIS {
			return
		}
		if ev.Raised && aisUp == 0 {
			aisUp = ev.At
		} else if !ev.Raised && aisDown == 0 {
			aisDown = ev.At
		}
	})
	src.OnAlarm(func(ev nic.AlarmEvent) {
		if ev.Kind != nic.AlarmRDI {
			return
		}
		if ev.Raised && rdiUp == 0 {
			rdiUp = ev.At
		} else if !ev.Raised && rdiDown == 0 {
			rdiDown = ev.At
		}
	})

	// Wire tap on the last fiber: the first AIS cell toward dst marks
	// network-visible fault detection.
	var firstAIS sim.Time
	dstIface := dst.Interface()
	net.Link("sw2-dst").Fwd.AttachSink(atm.SinkFunc(func(c *atm.Cell) {
		if firstAIS == 0 && !c.Header.PT.User() {
			if _, fn, ok := oam.Classify(&c.Payload); ok && fn == oam.FuncAIS {
				firstAIS = kern.Now()
			}
		}
		dstIface.DeliverCell(c)
	}))

	// Delivery accounting, split around the fault window.
	var preFault, postRestore uint64
	var firstAfterRestore sim.Time
	dst.OnReceive(func(p core.Packet) {
		switch {
		case kern.Now() < kill:
			preFault++
		case kern.Now() >= restore:
			postRestore++
			if firstAfterRestore == 0 {
				firstAfterRestore = p.At
			}
		}
	})

	// Greedy load: a windowed source keeps frames in flight for the whole
	// run, straight through the outage.
	netsim.NewSource(kern, src.Station(), flow.SourceVC, sdu, deadline).Start(4)

	link := net.Link("sw1-sw2")
	kern.At(kill, func() {
		res.SRAMPreFault = dstIface.SRAMUsed()
		link.Fwd.Fail()
	})
	kern.At(restore, func() { link.Fwd.Restore() })
	kern.RunUntil(deadline)
	kern.Run()

	delta := func(t, from sim.Time) sim.Duration {
		if t == 0 {
			return -1 // never observed
		}
		return t - from
	}
	res.DetectLatency = delta(firstAIS, kill)
	res.AISRaised = delta(aisUp, kill)
	res.AISCleared = delta(aisDown, restore)
	res.RDIRaised = delta(rdiUp, kill)
	res.RDICleared = delta(rdiDown, restore)
	res.RecoveryLatency = delta(firstAfterRestore, restore)
	res.PreFaultDelivered = preFault
	res.PostRestoreDelivered = postRestore
	res.CellsDroppedDown = link.Fwd.Stats().DroppedDown
	res.AISCellsSent = net.Switch("sw2").Stats().AISCells
	res.RDICellsSent = dstIface.FMStats().RDITx
	res.StaleFramesReclaimed = dstIface.Stats().Rx.Stale
	res.SRAMEnd = dstIface.SRAMUsed()

	us := func(d sim.Duration) float64 { return float64(d) / 1000 }
	sr := report.NewSeries("E17: link failure and recovery — AIS/RDI propagation and reassembly reclaim",
		"event", []float64{1, 2, 3, 4})
	sr.Add("latency-us (detect, ais, rdi, recovery)", []float64{
		us(res.DetectLatency), us(res.AISRaised), us(res.RDIRaised), us(res.RecoveryLatency),
	})
	return res, sr
}

// String is used by atmbench's verbose output.
func (r E17Result) String() string {
	return fmt.Sprintf(
		"kill=%v restore=%v detect=%v ais=%v/%v rdi=%v/%v recover=%v pre=%d post=%d lost=%d aistx=%d rditx=%d stale=%d sram=%d→%d",
		r.KillAt, r.RestoreAt, r.DetectLatency,
		r.AISRaised, r.AISCleared, r.RDIRaised, r.RDICleared,
		r.RecoveryLatency, r.PreFaultDelivered, r.PostRestoreDelivered,
		r.CellsDroppedDown, r.AISCellsSent, r.RDICellsSent,
		r.StaleFramesReclaimed, r.SRAMPreFault, r.SRAMEnd)
}
