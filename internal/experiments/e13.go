package experiments

import (
	"repro/internal/atm"
	"repro/internal/fec"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
)

// E13Point is one (loss, FEC on/off) delivered-fraction measurement.
type E13Point struct {
	LossProb      float64
	FEC           bool
	DeliveredFrac float64
	Recovered     uint64
	Overhead      float64 // extra wire fraction FEC spends (1/k when on)
}

// E13 measures what packet-level XOR FEC (one parity per k frames) buys
// back from E8's loss cliff: delivered fraction vs cell loss with and
// without FEC, open loop, no retransmissions. Shape: around the region
// where roughly one frame per group is lost (p·cells·k ≈ 1), FEC holds
// delivery near 1.0 while the unprotected flow already bleeds; at higher
// loss multiple frames per group die and FEC's advantage collapses — the
// known limit of single-parity codes.
func E13(lossProbs []float64, sduSize, k int, runTime sim.Duration) ([]E13Point, *report.Series) {
	if len(lossProbs) == 0 {
		lossProbs = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2}
	}
	if sduSize <= 0 {
		sduSize = 9180
	}
	if k <= 0 {
		k = 8
	}
	var pts []E13Point
	for _, useFEC := range []bool{false, true} {
		for _, p := range lossProbs {
			pts = append(pts, runE13(p, sduSize, k, useFEC, runTime))
		}
	}
	x := make([]float64, len(lossProbs))
	copy(x, lossProbs)
	sr := report.NewSeries("E13: delivered-frame fraction vs cell loss, packet-level XOR FEC",
		"loss-prob", x)
	for _, useFEC := range []bool{false, true} {
		name := "no-fec"
		if useFEC {
			name = "fec-k8"
		}
		var y []float64
		for _, pt := range pts {
			if pt.FEC == useFEC {
				y = append(y, pt.DeliveredFrac)
			}
		}
		sr.Add(name, y)
	}
	return pts, sr
}

func runE13(loss float64, sduSize, k int, useFEC bool, runTime sim.Duration) E13Point {
	kern := newKernel()
	a, err := netsim.NewStation(kern, nic.DefaultConfig("a"))
	if err != nil {
		panic(err)
	}
	b, err := netsim.NewStation(kern, nic.DefaultConfig("b"))
	if err != nil {
		panic(err)
	}
	netsim.Connect(kern, a, b, netsim.LinkConfig{Delay: 10_000, LossProb: loss, Seed: 31})
	vc := atm.VC{VCI: 70}
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)

	delivered := uint64(0)
	var dec *fec.Decoder
	if useFEC {
		dec = fec.NewDecoder(func(p []byte, rec bool) { delivered++ })
		b.Iface.OnReceive(func(d nic.Delivered) { dec.Push(d.SDU) })
	} else {
		b.Iface.OnReceive(func(d nic.Delivered) { delivered++ })
	}

	enc := fec.NewEncoder(k)
	payload := make([]byte, sduSize)
	deadline := sim.Time(runTime)
	sent := uint64(0)
	var send func()
	send = func() {
		if kern.Now() > deadline {
			return
		}
		sent++
		if useFEC {
			data, parity, err := enc.Encode(payload)
			if err != nil {
				panic(err)
			}
			if parity != nil {
				// Chain the next send off the parity frame so the
				// closed loop keeps the same in-flight depth.
				a.Iface.Send(vc, data, nil)
				a.Iface.Send(vc, parity, send)
				return
			}
			a.Iface.Send(vc, data, send)
			return
		}
		a.Iface.Send(vc, payload, send)
	}
	for i := 0; i < 3; i++ {
		send()
	}
	kern.Run()

	pt := E13Point{LossProb: loss, FEC: useFEC}
	if sent > 0 {
		pt.DeliveredFrac = float64(delivered) / float64(sent)
		if pt.DeliveredFrac > 1 {
			pt.DeliveredFrac = 1
		}
	}
	if useFEC {
		pt.Overhead = 1 / float64(k)
		pt.Recovered = dec.Stats().Recovered
	}
	return pt
}
