package experiments

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// The two equivalence guarantees the perf work must not break:
//
//  1. serial vs parallel — fanning sweep points across goroutines reorders
//     only the computation, never the results;
//  2. heap vs wheel — the timing-wheel scheduler dispatches in exactly the
//     order of the pre-wheel binary heap, so every simulated world evolves
//     identically.
//
// Both are checked on full result structs (every float bit compared) for a
// closed-loop sweep (E3) and a paced open-loop sweep (E9).

func goldenE3Config() E3Config {
	return E3Config{
		Sizes:   []int{64, 9180},
		RunTime: 5 * sim.Millisecond,
		Window:  4,
	}
}

var goldenE9Depths = []int{16, 96}

func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

func withHeapKernel(t *testing.T, fn func()) {
	t.Helper()
	prev := newKernel
	newKernel = sim.NewHeapKernel
	defer func() { newKernel = prev }()
	fn()
}

func TestE3SerialParallelIdentical(t *testing.T) {
	ec := goldenE3Config()
	var serial, par []E3Point
	withParallelism(t, 1, func() { serial, _, _ = E3(ec) })
	withParallelism(t, 8, func() { par, _, _ = E3(ec) })
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("E3 parallel results differ from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestE9SerialParallelIdentical(t *testing.T) {
	var serial, par []E9Point
	withParallelism(t, 1, func() { serial, _ = E9(goldenE9Depths, 5*sim.Millisecond) })
	withParallelism(t, 8, func() { par, _ = E9(goldenE9Depths, 5*sim.Millisecond) })
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("E9 parallel results differ from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestE3HeapWheelIdentical(t *testing.T) {
	ec := goldenE3Config()
	wheel, _, _ := E3(ec)
	var heap []E3Point
	withHeapKernel(t, func() { heap, _, _ = E3(ec) })
	if !reflect.DeepEqual(wheel, heap) {
		t.Errorf("E3 wheel results differ from heap kernel:\nwheel: %+v\nheap: %+v", wheel, heap)
	}
}

func TestE9HeapWheelIdentical(t *testing.T) {
	wheel, _ := E9(goldenE9Depths, 5*sim.Millisecond)
	var heap []E9Point
	withHeapKernel(t, func() { heap, _ = E9(goldenE9Depths, 5*sim.Millisecond) })
	if !reflect.DeepEqual(wheel, heap) {
		t.Errorf("E9 wheel results differ from heap kernel:\nwheel: %+v\nheap: %+v", wheel, heap)
	}
}

func TestE16SerialParallelIdentical(t *testing.T) {
	var serial, par []E16Point
	withParallelism(t, 1, func() { serial, _ = E16(5 * sim.Millisecond) })
	withParallelism(t, 8, func() { par, _ = E16(5 * sim.Millisecond) })
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("E16 parallel results differ from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func withShards(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Shards()
	SetShards(n)
	defer SetShards(prev)
	fn()
}

// TestE16ShardedSerialIdentical pins the third equivalence: intra-run
// sharding (one simulation split across partition kernels, the -shards
// flag) must leave every E16 result bit-identical to the serial kernel —
// the experiments-level counterpart of core's parallel golden tests.
func TestE16ShardedSerialIdentical(t *testing.T) {
	var serial, sharded []E16Point
	withShards(t, 1, func() { serial, _ = E16(3 * sim.Millisecond) })
	withShards(t, 4, func() { sharded, _ = E16(3 * sim.Millisecond) })
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("E16 sharded results differ from serial:\nserial: %+v\nsharded: %+v", serial, sharded)
	}
}

func TestE16HeapWheelIdentical(t *testing.T) {
	wheel, _ := E16(5 * sim.Millisecond)
	var heap []E16Point
	withHeapKernel(t, func() { heap, _ = E16(5 * sim.Millisecond) })
	if !reflect.DeepEqual(wheel, heap) {
		t.Errorf("E16 wheel results differ from heap kernel:\nwheel: %+v\nheap: %+v", wheel, heap)
	}
}
