package experiments

import (
	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/experiments/runner"
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
)

// E11Point is one (engine count) measurement at STS-12c.
type E11Point struct {
	Engines    int
	GoodputBps float64
	FifoDrops  uint64
	Packets    uint64
	MeanUtil   float64
}

// E11 measures aggregate goodput at STS-12c across 8 concurrent VCs as the
// number of receive engines grows — the scale-out the era's delay analyses
// proposed for OC-12 ("a set of three processors…"). Shape: one 25 MHz
// engine drops cells and delivers almost nothing; goodput grows with
// engines until the wire (or the transmit side) becomes the limit, around
// 2-3 engines on this cost model.
func E11(engineCounts []int, runTime sim.Duration) ([]E11Point, *report.Series) {
	if len(engineCounts) == 0 {
		engineCounts = []int{1, 2, 3, 4, 8}
	}
	// 8 VCs, chosen to hash reasonably evenly across small engine counts.
	var vcs []atm.VC
	for i := 0; i < 8; i++ {
		vcs = append(vcs, atm.VC{VCI: uint16(200 + 13*i)})
	}
	pts := runner.Map(Parallelism(), len(engineCounts), func(i int) E11Point {
		return runE11Point(engineCounts[i], vcs, runTime)
	})
	x := make([]float64, len(engineCounts))
	for i, n := range engineCounts {
		x[i] = float64(n)
	}
	sr := report.NewSeries("E11: STS-12c aggregate goodput vs receive engines (8 VCs, 9180-B frames)",
		"rx-engines", x)
	var gps, utils []float64
	for _, p := range pts {
		gps = append(gps, p.GoodputBps/1e6)
		utils = append(utils, p.MeanUtil)
	}
	sr.Add("goodput-Mb/s", gps)
	sr.Add("mean-engine-util", utils)
	return pts, sr
}

// runE11Point measures one engine count in its own world. vcs is shared
// read-only across concurrent points.
func runE11Point(n int, vcs []atm.VC, runTime sim.Duration) E11Point {
	k := newKernel()
	cfgTx := nic.DefaultConfig("tx")
	cfgTx.PayloadRate = units.STS12cPayload
	cfgTx.InterleaveVCs = true
	cfgRx := cfgTx
	cfgRx.Name = "rx"
	cfgRx.RxEngines = n
	// E9's result applied: per-engine FIFOs must absorb a full single-VC
	// burst backlog (~96 cells at this engine speed), because the
	// round-robin is only as smooth as the senders.
	cfgRx.RxFifoDepth = 128
	tx, err := netsim.NewStation(k, cfgTx)
	if err != nil {
		panic(err)
	}
	rx, err := netsim.NewStationFull(k, cfgRx, fastHost(), bus.DefaultConfig())
	if err != nil {
		panic(err)
	}
	netsim.Connect(k, tx, rx, netsim.LinkConfig{Delay: 10_000, Seed: 23})
	deadline := sim.Time(runTime)
	for _, vc := range vcs {
		tx.Iface.OpenVC(vc)
		rx.Iface.OpenVC(vc)
		vc := vc
		var send func()
		send = func() {
			if k.Now() > deadline {
				return
			}
			// Each send's buffer is fresh and never touched again, so
			// ownership can transfer to the interface copy-free.
			tx.Iface.SendOwned(vc, make([]byte, 9180), send)
		}
		send()
	}
	k.RunUntil(deadline)
	bytes := rx.Iface.Stats().Rx.Bytes
	var util float64
	for _, e := range rx.Iface.RxEngines() {
		util += e.Utilization()
	}
	util /= float64(n)
	k.Run()
	st := rx.Iface.Stats()
	return E11Point{
		Engines:    n,
		GoodputBps: units.ThroughputBps(int64(bytes), deadline),
		FifoDrops:  st.Rx.FifoDrops,
		Packets:    st.Rx.Packets,
		MeanUtil:   util,
	}
}

// fastHost is a host model fast enough not to become the bottleneck at
// multi-hundred-Mb/s receive rates — E11 isolates the engine scaling, so
// the (separable) host term is taken out of the way, standing in for the
// era's faster server hosts.
func fastHost() host.Config {
	cfg := host.DefaultConfig()
	cfg.InstrRate = 200_000_000
	return cfg
}
