package experiments

import (
	"sync/atomic"

	"repro/internal/sim"
)

// Sweep parallelism: the big sweeps (E3, E4, E8, E9, E11, E15) enumerate
// their points into a case slice and compute them through runner.Map, each
// point building its own kernel and stations. Results land at their case
// index, so every table and CSV is bit-identical to a serial run.
var parWorkers atomic.Int32

func init() { parWorkers.Store(1) }

// SetParallelism sets the number of worker goroutines the sweep experiments
// fan points across. n <= 0 selects GOMAXPROCS; the default is 1 (serial).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parWorkers.Store(int32(n))
}

// Parallelism reports the configured worker count (0 = GOMAXPROCS).
func Parallelism() int { return int(parWorkers.Load()) }

// Intra-run sharding: orthogonal to sweep parallelism above. Where sweep
// parallelism runs many independent simulations at once (one per point),
// sharding splits ONE simulation's topology into partitions advanced in
// lock-step by sim.Group (see core.NetworkSpec.Shards). Experiments whose
// topologies the partitioner can cut honor it (currently E16, the multi-
// switch tandem chain); the two compose — each sweep worker runs its own
// sharded network. Sharded runs are pinned byte-identical to serial by the
// core golden tests, so results do not depend on this setting.
var runShards atomic.Int32

func init() { runShards.Store(1) }

// SetShards sets the partition count topology-building experiments request
// from core.NewNetwork. n <= 1 (the default) builds serial networks.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	runShards.Store(int32(n))
}

// Shards reports the configured intra-run partition count.
func Shards() int { return int(runShards.Load()) }

// newKernel is the kernel constructor every experiment uses. Tests swap in
// sim.NewHeapKernel to prove the timing-wheel scheduler dispatches in the
// exact order of the pre-wheel binary heap.
var newKernel = sim.NewKernel
