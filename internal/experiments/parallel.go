package experiments

import (
	"sync/atomic"

	"repro/internal/sim"
)

// Sweep parallelism: the big sweeps (E3, E4, E8, E9, E11, E15) enumerate
// their points into a case slice and compute them through runner.Map, each
// point building its own kernel and stations. Results land at their case
// index, so every table and CSV is bit-identical to a serial run.
var parWorkers atomic.Int32

func init() { parWorkers.Store(1) }

// SetParallelism sets the number of worker goroutines the sweep experiments
// fan points across. n <= 0 selects GOMAXPROCS; the default is 1 (serial).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parWorkers.Store(int32(n))
}

// Parallelism reports the configured worker count (0 = GOMAXPROCS).
func Parallelism() int { return int(parWorkers.Load()) }

// newKernel is the kernel constructor every experiment uses. Tests swap in
// sim.NewHeapKernel to prove the timing-wheel scheduler dispatches in the
// exact order of the pre-wheel binary heap.
var newKernel = sim.NewKernel
