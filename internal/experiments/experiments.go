// Package experiments regenerates the paper's evaluation: one function per
// reconstructed table/figure (E1…E10; see DESIGN.md for the index and the
// reconstruction caveat). Each returns a machine-readable result plus a
// report.Table or report.Series rendering, so the same code backs the
// atmbench binary, the test suite's shape assertions, and the root
// bench_test.go benchmarks.
package experiments

import (
	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/units"
)

// stdVC is the connection every end-to-end experiment runs on.
var stdVC = atm.VC{VPI: 0, VCI: 100}

// runPair builds a station pair, runs fn to configure sources, then runs
// the kernel until deadline+drain and returns both stations.
func runPair(cfg nic.Config, link netsim.LinkConfig, deadline sim.Time,
	drive func(k *sim.Kernel, a, b *netsim.Station)) (a, b *netsim.Station, k *sim.Kernel) {
	return runPairHost(cfg, host.DefaultConfig(), link, deadline, drive)
}

// runPairHost is runPair with an explicit host model, for rigs where the
// workstation CPU must not be the confound (see fastHost).
func runPairHost(cfg nic.Config, hostCfg host.Config, link netsim.LinkConfig, deadline sim.Time,
	drive func(k *sim.Kernel, a, b *netsim.Station)) (a, b *netsim.Station, k *sim.Kernel) {
	k = newKernel()
	cfgA, cfgB := cfg, cfg
	cfgA.Name, cfgB.Name = "a", "b"
	var err error
	a, err = netsim.NewStationFull(k, cfgA, hostCfg, bus.DefaultConfig())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	b, err = netsim.NewStationFull(k, cfgB, hostCfg, bus.DefaultConfig())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	netsim.Connect(k, a, b, link)
	a.Iface.OpenVC(stdVC)
	b.Iface.OpenVC(stdVC)
	drive(k, a, b)
	k.RunUntil(deadline)
	k.Run() // drain in-flight work
	return a, b, k
}

// goodputBps returns delivered SDU goodput at station b.
func goodputBps(b *netsim.Station, at sim.Time) float64 {
	return units.ThroughputBps(int64(b.Iface.Stats().Rx.Bytes), at)
}

// sduCeilingBps returns the physics ceiling for SDU goodput: the payload
// rate scaled by SDU bytes per wire byte for an n-byte SDU over the given
// AAL cell count.
func sduCeilingBps(rate units.BitRate, sduBytes, cells int) float64 {
	return float64(rate) * float64(sduBytes) / float64(cells*atm.CellSize)
}
