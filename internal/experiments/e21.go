package experiments

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// E21Source is one ABR connection's outcome: the rate it settled at and the
// cells it actually landed at the destination.
type E21Source struct {
	Name      string
	MeanACR   float64 // cells/s, averaged over the last quarter of the run
	Delivered uint64  // user cells that crossed the bottleneck fiber
}

// E21Point is one feedback-delay setting of the ABR closed-loop experiment.
type E21Point struct {
	FeedbackDelay sim.Duration // one-way access-fiber propagation delay
	FairShare     float64      // ERICA's per-VC fair share at the bottleneck, cells/s
	Converged     bool
	Convergence   sim.Duration // first time after which every ACR stays in its steady-state band
	Jain          float64      // fairness index over the sources' tail-window ACRs
	QueuePeak     int64        // bottleneck output-queue watermark, cells
	EFCIMarked    uint64
	ERStamped     uint64
	Sources       []E21Source
}

// E21 is the ABR closed-loop experiment: three greedy ABR sources on
// 622 Mb/s access fibers converge on a shared 155 Mb/s bottleneck port
// whose ERICA loop stamps explicit rates into their backward RM cells,
// with EFCI marking as the binary safety valve during the start-up
// transient. The feedback delay (access-fiber propagation) is swept to
// show the control-loop tradeoff the paper's host-interface rates imply:
// the longer the loop, the longer the sources overdrive the bottleneck on
// stale feedback, the deeper the queue excursion — while the converged
// operating point (max-min fair shares at the ERICA target utilisation)
// is delay-invariant.
func E21(runTime sim.Duration) ([]E21Point, *report.Series) {
	if runTime <= 0 {
		runTime = 30 * sim.Millisecond
	}
	delays := []sim.Duration{5 * sim.Microsecond, 50 * sim.Microsecond, 250 * sim.Microsecond}
	pts := runner.Map(Parallelism(), len(delays), func(i int) E21Point {
		return runE21(delays[i], runTime, Shards())
	})
	x := make([]float64, len(delays))
	for i, d := range delays {
		x[i] = float64(d) / 1000 // µs
	}
	sr := report.NewSeries("E21: ABR closed loop vs feedback delay — ERICA explicit rates + EFCI over a 622→155 bottleneck",
		"one-way-delay-us", x)
	var jain, peak, conv []float64
	for _, pt := range pts {
		jain = append(jain, pt.Jain)
		peak = append(peak, float64(pt.QueuePeak))
		c := float64(-1)
		if pt.Converged {
			c = float64(pt.Convergence) / 1000 // µs
		}
		conv = append(conv, c)
	}
	sr.Add("jain-index", jain)
	sr.Add("queue-peak-cells", peak)
	sr.Add("convergence-us", conv)
	return pts, sr
}

func runE21(delay sim.Duration, runTime sim.Duration, shards int) E21Point {
	const (
		nSrc = 3
		// sduBytes keeps each source's AAL5 frames long enough that the
		// shaper, not the host, is the pacing bottleneck.
		sduBytes = 9180
		// sampleEvery is the ACR observation cadence per source.
		sampleEvery = 50 * sim.Microsecond
		// convBand is the relative half-width of the convergence band
		// around each source's own steady-state (tail-window mean) ACR —
		// the usual "within x% of the final value" criterion. The settled
		// ACR sits a little above ERICA's nominal fair share because the
		// windowed AAL5 sources have a duty factor below one and ERICA
		// allocates to measured load, not to claimed rate; the aggregate
		// still lands on the utilization target.
		convBand   = 0.15
		targetUtil = 0.9
	)
	erica := netsim.ERICAConfig{TargetUtil: targetUtil, Interval: 200 * sim.Microsecond}
	spec := core.NetworkSpec{
		Switches: []core.SwitchSpec{{
			Name: "sw", Ports: nSrc + 1, Rate: core.Rate622, QueueDepth: 512,
			// EFCI above 32 cells: the binary signal that reins the
			// sources in when a queue excursion outruns ERICA's averaging
			// interval.
			EFCIThreshold: 32,
			ERICA:         &erica,
		}},
	}
	if shards > 1 {
		spec.Shards = shards
	} else {
		spec.Kernel = newKernel()
	}
	srcOpts := core.Options{Rate: core.Rate622}
	for i := 0; i < nSrc; i++ {
		name := fmt.Sprintf("s%d", i+1)
		spec.Endpoints = append(spec.Endpoints, core.EndpointSpec{Name: name, Options: srcOpts})
		spec.Links = append(spec.Links, core.LinkSpec{
			Name: name + "-sw", A: core.NodeRef{Node: name},
			B:     core.NodeRef{Node: "sw", Port: i},
			Delay: delay, Seed: uint64(90 + i),
		})
	}
	spec.Endpoints = append(spec.Endpoints, core.EndpointSpec{Name: "dst", Options: core.Options{Rate: core.Rate155}})
	spec.Links = append(spec.Links, core.LinkSpec{
		Name: "sw-dst", A: core.NodeRef{Node: "sw", Port: nSrc},
		B: core.NodeRef{Node: "dst"}, Delay: 5 * sim.Microsecond, Seed: 99,
	})
	pcr := units.CellRate(core.Rate622)
	for i := 0; i < nSrc; i++ {
		spec.VCCs = append(spec.VCCs, core.VCCSpec{
			Name: fmt.Sprintf("abr%d", i+1), From: fmt.Sprintf("s%d", i+1), To: "dst",
			VC:     atm.VC{VCI: uint16(101 + i)},
			Duplex: true,
			ABR:    &tm.ABRParams{PCR: pcr, ICR: pcr / 16, Nrm: 32},
		})
	}
	net, err := core.NewNetwork(spec)
	if err != nil {
		panic(err)
	}
	defer net.Close()
	// The rate mismatch that makes the loop necessary: the port facing dst
	// drains at 155 Mb/s while the access side feeds it at 622.
	net.Switch("sw").SetPortRate(nSrc, core.Rate155)
	deadline := sim.Time(runTime)

	// Greedy sources: frames queue faster than any ACR drains them, so the
	// shaper is always backlogged and the measured rate IS the ACR.
	for i := 0; i < nSrc; i++ {
		v := net.VCC(fmt.Sprintf("abr%d", i+1))
		netsim.NewSource(net.NodeKernel(v.Source.Name()), v.Source.Station(), v.SourceVC, sduBytes, deadline).Start(4)
	}

	// Per-source ACR trajectory, sampled on the source's own kernel so the
	// observation lands in the right partition on sharded builds. Reading
	// ACR mutates nothing, so sampling cannot perturb the golden-pinned
	// cell stream.
	acrs := make([][]float64, nSrc)
	for i := 0; i < nSrc; i++ {
		i := i
		v := net.VCC(fmt.Sprintf("abr%d", i+1))
		iface := v.Source.Interface()
		k := net.NodeKernel(v.Source.Name())
		var tick func()
		tick = func() {
			if k.Now() > deadline {
				return
			}
			acr, _ := iface.ACR(v.SourceVC)
			acrs[i] = append(acrs[i], acr)
			k.After(sampleEvery, tick)
		}
		k.After(sampleEvery, tick)
	}

	// Count each connection's user cells where the bottleneck fiber meets
	// dst's NIC (RM and OAM cells excluded).
	delivered := make(map[atm.VC]uint64)
	dstIface := net.Endpoint("dst").Interface()
	net.Link("sw-dst").Fwd.AttachSink(atm.SinkFunc(func(c *atm.Cell) {
		if c.Header.PT.User() {
			delivered[c.Header.VC()]++
		}
		dstIface.DeliverCell(c)
	}))

	net.RunUntil(deadline)
	net.Run()

	pt := E21Point{
		FeedbackDelay: delay,
		FairShare:     targetUtil * units.CellRate(core.Rate155) / nSrc,
	}
	reg := net.Metrics()
	pt.QueuePeak = reg.Gauge(fmt.Sprintf("sw.port%d.occupancy", nSrc)).Max()
	pt.EFCIMarked = reg.Counter("sw.efci_marked").Value()
	pt.ERStamped = reg.Counter("sw.er_stamped").Value()

	// Steady state per source: the mean ACR over the last quarter of the
	// samples. Convergence is the first sample time after which every
	// source's short-window mean ACR stays inside the band around its own
	// steady state for the rest of the run — the window (half a
	// millisecond) averages over the CI sawtooth the EFCI valve imposes,
	// because the rate a connection experiences is the mean over its
	// frames, not the instantaneous ACR between two RM cells.
	const smoothWin = 10
	nSamples := len(acrs[0])
	tail := nSamples - nSamples/4
	means := make([]float64, nSrc)
	for i := 0; i < nSrc; i++ {
		var m float64
		for _, acr := range acrs[i][tail:] {
			m += acr
		}
		means[i] = m / float64(nSamples-tail)
	}
	smooth := func(s []float64, j int) float64 {
		lo := j - smoothWin + 1
		if lo < 0 {
			lo = 0
		}
		var m float64
		for _, v := range s[lo : j+1] {
			m += v
		}
		return m / float64(j+1-lo)
	}
	lastOut := -1
	for i := 0; i < nSrc; i++ {
		for j := range acrs[i] {
			rel := smooth(acrs[i], j)/means[i] - 1
			if (rel < -convBand || rel > convBand) && j > lastOut {
				lastOut = j
			}
		}
	}
	if lastOut+1 < nSamples {
		pt.Converged = true
		pt.Convergence = sim.Duration(lastOut+2) * sampleEvery
	}

	// Fairness over the settled tail: the sources' steady-state ACRs
	// folded into Jain's index (Σx)²/(n·Σx²) — 1.0 is a perfect max-min
	// fair split.
	var sum, sumSq float64
	for i := 0; i < nSrc; i++ {
		v := net.VCC(fmt.Sprintf("abr%d", i+1))
		pt.Sources = append(pt.Sources, E21Source{
			Name:      v.Name,
			MeanACR:   means[i],
			Delivered: delivered[v.DestVC],
		})
		sum += means[i]
		sumSq += means[i] * means[i]
	}
	if sumSq > 0 {
		pt.Jain = sum * sum / (nSrc * sumSq)
	}
	return pt
}

// String is used by atmbench's verbose output.
func (p E21Point) String() string {
	conv := "not-converged"
	if p.Converged {
		conv = fmt.Sprint(p.Convergence)
	}
	s := fmt.Sprintf("delay=%v fair=%.0fc/s conv=%s jain=%.4f qpeak=%d efci=%d er=%d",
		p.FeedbackDelay, p.FairShare, conv, p.Jain, p.QueuePeak, p.EFCIMarked, p.ERStamped)
	for _, src := range p.Sources {
		s += fmt.Sprintf(" %s[acr=%.0f rx=%d]", src.Name, src.MeanACR, src.Delivered)
	}
	return s
}
