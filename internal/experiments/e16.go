package experiments

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

// E16Hop is one switch's contribution to the probe path: the residency of
// its downstream output port, read from the metrics registry the builder
// instrumented.
type E16Hop struct {
	Switch string
	Mean   sim.Duration
	P99    sim.Duration
	CDV    sim.Duration // p99 − p01 of port residency
}

// E16Point is one (hop count, line rate) measurement of multi-hop delay
// and cell delay variation.
type E16Point struct {
	Switches  int
	Rate      units.BitRate
	Admitted  int    // contracts the last hop's output-port CAC carries
	Delivered uint64 // probe frames that survived end to end
	E2EMean   sim.Duration
	E2ECDV    sim.Duration // p99 − p01 of end-to-end probe delay
	PerHop    []E16Hop
}

// E16 is the multi-hop CDV-accumulation experiment: a shaped CBR probe
// crosses 1..4 tandem switches, and every output port on its path also
// carries its own unshaped best-effort cross flow (up to ~85% of line
// rate; host-limited below that at 622 Mb/s). Each hop's output queue adds
// a variable wait, so the probe's cell delay variation grows with the hop
// count at 155 Mb/s — the effect that makes end-to-end CDV accounting (and
// per-hop CDVT budgets in traffic contracts) necessary in ATM networks —
// while the 622 Mb/s ports drain fast enough to absorb almost all of it.
// The whole topology — up to nine endpoints and four switches, per-hop VCI
// allocation and per-hop CAC admission — is declared through
// core.NewNetwork; per-hop delay comes from the builder-instrumented port
// residency histograms, so the experiment reads physics straight out of
// the metrics registry.
func E16(runTime sim.Duration) ([]E16Point, *report.Series) {
	if runTime <= 0 {
		runTime = 30 * sim.Millisecond
	}
	hops := []int{1, 2, 3, 4}
	rates := []units.BitRate{units.STS3cPayload, units.STS12cPayload}
	type e16Case struct {
		n    int
		rate units.BitRate
	}
	var cases []e16Case
	for _, rate := range rates {
		for _, n := range hops {
			cases = append(cases, e16Case{n, rate})
		}
	}
	pts := runner.Map(Parallelism(), len(cases), func(i int) E16Point {
		return runE16(cases[i].n, cases[i].rate, runTime)
	})
	x := make([]float64, len(hops))
	for i, n := range hops {
		x[i] = float64(n)
	}
	sr := report.NewSeries("E16: end-to-end CDV vs tandem switch count — shaped CBR probe through loaded hops",
		"switches", x)
	for _, rate := range rates {
		var y []float64
		for _, pt := range pts {
			if pt.Rate == rate {
				y = append(y, float64(pt.E2ECDV)/1000) // µs
			}
		}
		sr.Add(fmt.Sprintf("%v cdv-us", rate), y)
	}
	return pts, sr
}

func runE16(nSw int, rate units.BitRate, runTime sim.Duration) E16Point {
	const (
		probeVCI   = 100
		crossSDU   = 9180 // IP-MTU frames: 192 cells under AAL5
		probePCR   = 5_000
		crossShare = 0.85 // of the port cell rate, per loaded output port
		// The probe offers frames a little slower than 1/PCR. The NIC's
		// shaper re-times each cell from its actual emission (eligibility
		// plus the segmentation firmware's cycles), so a source driving at
		// exactly PCR accumulates an ever-growing shaper backlog — a source
		// artifact that would drown the per-hop CDV this experiment is
		// after. Real CBR sources under-drive their contract for the same
		// reason.
		probeInterval = 220 * sim.Microsecond
	)
	opts := core.Options{Rate: rate}
	spec := core.NetworkSpec{
		Endpoints: []core.EndpointSpec{
			{Name: "src", Options: opts},
			{Name: "dst", Options: opts},
		},
	}
	// Intra-run sharding (SetShards) splits this topology into partitions
	// run in parallel; the core golden tests pin the results byte-identical
	// to serial. Sharded builds own their kernels, so the kernel-constructor
	// hook only applies to serial runs.
	if shards := Shards(); shards > 1 {
		spec.Shards = shards
	} else {
		spec.Kernel = newKernel()
	}
	// Tandem chain: src → sw1 → … → swN → dst. Port 0 faces upstream,
	// port 1 downstream. Every switch gets its own cross-traffic feed on
	// port 2 (fresh arrival jitter at each hop — an upstream port's drain
	// clock perfectly smooths whatever it forwards, so without new
	// competition a tandem hop adds constant delay, not variation). Each
	// cross flow shares exactly one probe output port, then leaves at the
	// next switch's port 3 into a sink station; the last one terminates at
	// dst.
	for i := 1; i <= nSw; i++ {
		spec.Switches = append(spec.Switches, core.SwitchSpec{
			Name: fmt.Sprintf("sw%d", i), Ports: 4, Rate: rate, QueueDepth: 96,
		})
		spec.Endpoints = append(spec.Endpoints,
			core.EndpointSpec{Name: fmt.Sprintf("x%d", i), Options: opts})
		if i >= 2 {
			spec.Endpoints = append(spec.Endpoints,
				core.EndpointSpec{Name: fmt.Sprintf("sink%d", i), Options: opts})
		}
	}
	spec.Links = append(spec.Links, core.LinkSpec{
		Name: "src-sw1", A: core.NodeRef{Node: "src"},
		B: core.NodeRef{Node: "sw1", Port: 0}, Delay: 10_000, Seed: 60,
	})
	for i := 1; i < nSw; i++ {
		spec.Links = append(spec.Links, core.LinkSpec{
			Name:  fmt.Sprintf("sw%d-sw%d", i, i+1),
			A:     core.NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 1},
			B:     core.NodeRef{Node: fmt.Sprintf("sw%d", i+1), Port: 0},
			Delay: 50_000, Seed: uint64(60 + i),
		})
	}
	lastSw := fmt.Sprintf("sw%d", nSw)
	spec.Links = append(spec.Links, core.LinkSpec{
		Name: "last-dst", A: core.NodeRef{Node: lastSw, Port: 1},
		B: core.NodeRef{Node: "dst"}, Delay: 10_000, Seed: 70,
	})
	for i := 1; i <= nSw; i++ {
		// Unequal access-fiber lengths stagger the feeds' cell-clock phases.
		spec.Links = append(spec.Links, core.LinkSpec{
			Name:  fmt.Sprintf("x%d-in", i),
			A:     core.NodeRef{Node: fmt.Sprintf("x%d", i)},
			B:     core.NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 2},
			Delay: sim.Duration(3_000 + 1_700*i), Seed: uint64(70 + i),
		})
		if i >= 2 {
			spec.Links = append(spec.Links, core.LinkSpec{
				Name:  fmt.Sprintf("sink%d-out", i),
				A:     core.NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 3},
				B:     core.NodeRef{Node: fmt.Sprintf("sink%d", i)},
				Delay: 2_000, Seed: uint64(80 + i),
			})
		}
	}

	// The probe: CBR, shaped at the source to its contract, admitted by the
	// CAC at every output port it crosses. The cross flows are best-effort
	// (zero contract → UBR), paced below line rate by the NIC scheduler;
	// cross i shares sw_i's downstream port with the probe and exits at the
	// next node.
	ct := units.CellTime(rate)
	spec.VCCs = []core.VCCSpec{
		{Name: "probe", From: "src", To: "dst", VC: atm.VC{VCI: probeVCI},
			Contract: tm.CBRContract(probePCR, 8*ct), Shape: true},
	}
	for i := 1; i <= nSw; i++ {
		to := fmt.Sprintf("sink%d", i+1)
		if i == nSw {
			to = "dst"
		}
		spec.VCCs = append(spec.VCCs, core.VCCSpec{
			Name: fmt.Sprintf("cross%d", i), From: fmt.Sprintf("x%d", i), To: to,
			VC: atm.VC{VCI: uint16(200 + i)},
		})
	}
	net, err := core.NewNetwork(spec)
	if err != nil {
		panic(err)
	}
	defer net.Close()
	deadline := sim.Time(runTime)

	// All stimulus is scheduled via NodeKernel so it lands in the right
	// partition on sharded builds (on serial builds NodeKernel returns the
	// one shared kernel and nothing changes).
	portCell := units.CellRate(rate)
	for i := 1; i <= nSw; i++ {
		v := net.VCC(fmt.Sprintf("cross%d", i))
		src := v.Source
		if err := src.SetPeakCellRate(v.SourceVC, crossShare*portCell); err != nil {
			panic(err)
		}
		netsim.NewSource(net.NodeKernel(src.Name()), src.Station(), v.SourceVC, crossSDU, deadline).Start(4)
	}

	// Probe frames are one cell each and carry their departure time in the
	// first eight payload bytes, so end-to-end delay needs no FIFO matching
	// and survives any loss. The sample is taken where the last fiber meets
	// dst's NIC — the network boundary — because the last cross flow also
	// terminates at dst, and measuring after reassembly would fold dst's
	// host-side queueing (a receiver artifact, identical at every hop count)
	// into the network CDV under study.
	probe := net.VCC("probe")
	dstKern := net.NodeKernel("dst")
	dstIface := net.Endpoint("dst").Interface()
	var samples []sim.Duration
	net.Link("last-dst").Fwd.AttachSink(atm.SinkFunc(func(c *atm.Cell) {
		if c.Header.VC() == probe.DestVC {
			t0 := sim.Time(binary.BigEndian.Uint64(c.Payload[:8]))
			samples = append(samples, sim.Duration(dstKern.Now()-t0))
		}
		dstIface.DeliverCell(c)
	}))
	srcKern := net.NodeKernel("src")
	src := net.Endpoint("src")
	var tick func()
	tick = func() {
		if srcKern.Now() > deadline {
			return
		}
		payload := make([]byte, 40)
		binary.BigEndian.PutUint64(payload[:8], uint64(srcKern.Now()))
		src.Send(probe.SourceVC, payload, nil)
		srcKern.After(probeInterval, tick)
	}
	tick()
	net.RunUntil(deadline)
	net.Run()

	pt := E16Point{
		Switches:  nSw,
		Rate:      rate,
		Admitted:  net.PortCAC(lastSw, 1).Admitted(),
		Delivered: uint64(len(samples)),
	}
	pt.E2EMean, pt.E2ECDV = delayStats(samples)
	reg := net.Metrics()
	for i := 1; i <= nSw; i++ {
		h := reg.Histogram(fmt.Sprintf("sw%d.port1.residency", i))
		pt.PerHop = append(pt.PerHop, E16Hop{
			Switch: fmt.Sprintf("sw%d", i),
			Mean:   h.Mean(),
			P99:    h.Quantile(0.99),
			CDV:    h.Quantile(0.99) - h.Quantile(0.01),
		})
	}
	return pt
}

// delayStats returns the mean and the p99−p01 spread of the samples.
func delayStats(samples []sim.Duration) (mean, cdv sim.Duration) {
	if len(samples) == 0 {
		return 0, 0
	}
	sorted := append([]sim.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Duration
	for _, s := range sorted {
		sum += s
	}
	q := func(p float64) sim.Duration {
		return sorted[int(p*float64(len(sorted)-1)+0.5)]
	}
	return sum / sim.Duration(len(sorted)), q(0.99) - q(0.01)
}

// String is used by atmbench's verbose output.
func (p E16Point) String() string {
	return fmt.Sprintf("hops=%d %v adm=%d n=%d e2e-mean=%v e2e-cdv=%v",
		p.Switches, p.Rate, p.Admitted, p.Delivered, p.E2EMean, p.E2ECDV)
}
