package experiments

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/experiments/runner"
	"repro/internal/ip"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// E19Point is one (buffer fraction, discard policy) TCP goodput measurement
// at the congested switch port.
type E19Point struct {
	BufferFrac  float64 // switch buffer / path BDP
	EPD         bool
	BufferCells int
	GoodputBps  float64 // aggregate TCP payload delivered / run time
	Efficiency  float64 // goodput / TCP-payload ceiling of the port
	Retransmits uint64
	Timeouts    uint64
	FastRetx    uint64
	TailDropped uint64
	EPDCells    uint64
	PPDCells    uint64
}

// e19 topology constants, shared with the tests' expectations. The MSS
// matches the satellite studies' 9180-byte IP MTU: at 192 cells per frame,
// a single stranded cell loss costs the congested port a couple hundred
// dead cell slots, which is the waste tail drop is punished for.
const (
	e19Flows      = 4
	e19MSS        = 9140 // 9180-byte IP MTU minus IP+TCP headers
	e19FrameCells = 192  // LLC/SNAP + IP + TCP + MSS = 9188 B payload under AAL5
	e19HopDelay   = 5 * sim.Millisecond
	e19RTT        = 4 * e19HopDelay // two hops each way, propagation only
)

// e19BDPCells is the bandwidth-delay product of the bottleneck path in
// cells: the reference the buffer sizes are fractions of.
func e19BDPCells() int {
	return int(units.CellRate(units.STS3cPayload) * float64(e19RTT) / float64(sim.Second))
}

// E19 reproduces the satellite-ATM working group's TCP-over-UBR result at
// terrestrial delay: four Reno flows from two stations converge on one
// switch output port whose buffer is swept as a fraction of the path's
// bandwidth-delay product. With blind tail drop, a cell lost mid-frame
// strands the rest of the frame in the receiver's reassembler where it
// merges into the next frame's CRC — every drop costs up to two frames plus
// the dead cells that still cross the congested port, and as the buffer
// shrinks below about one BDP the flows sink into timeout-driven collapse.
// Early/Partial Packet Discard drops whole frames at the same occupancy, so
// the surviving cells all reassemble and goodput holds near the port
// ceiling down to small fractions of the BDP.
func E19(fracs []float64, runTime sim.Duration) ([]E19Point, *report.Series) {
	if len(fracs) == 0 {
		fracs = []float64{0.25, 0.5, 1.0, 2.0}
	}
	if runTime <= 0 {
		runTime = 2 * sim.Second
	}
	type e19Case struct {
		epd  bool
		frac float64
	}
	var cases []e19Case
	for _, epd := range []bool{false, true} {
		for _, f := range fracs {
			cases = append(cases, e19Case{epd, f})
		}
	}
	pts := runner.Map(Parallelism(), len(cases), func(i int) E19Point {
		return runE19(cases[i].frac, cases[i].epd, runTime)
	})
	x := make([]float64, len(fracs))
	copy(x, fracs)
	sr := report.NewSeries("E19: TCP goodput efficiency vs switch buffer (xBDP) — tail drop vs EPD/PPD",
		"buffer_bdp", x)
	for _, epd := range []bool{false, true} {
		name := "tail-drop"
		if epd {
			name = "epd-ppd"
		}
		var y []float64
		for _, pt := range pts {
			if pt.EPD == epd {
				y = append(y, pt.Efficiency)
			}
		}
		sr.Add(name, y)
	}
	return pts, sr
}

func runE19(frac float64, epd bool, runTime sim.Duration) E19Point {
	depth := int(frac * float64(e19BDPCells()))
	if depth < e19FrameCells {
		depth = e19FrameCells
	}
	// EPD needs whole-frame headroom above its threshold; 1.5 frames keeps
	// an accepted frame from overrunning the buffer at full overload.
	epdThresh := depth - 3*e19FrameCells/2
	if epdThresh < e19FrameCells/2 {
		epdThresh = e19FrameCells / 2
	}
	net, err := core.NewNetwork(core.NetworkSpec{
		Kernel: newKernel(),
		Endpoints: []core.EndpointSpec{
			{Name: "a", Options: core.Options{InterleaveVCs: true}},
			{Name: "b", Options: core.Options{InterleaveVCs: true}},
			{Name: "c"},
		},
		Switches: []core.SwitchSpec{
			{Name: "sw", Ports: 3, Rate: units.STS3cPayload, QueueDepth: depth},
		},
		Links: []core.LinkSpec{
			{Name: "a-sw", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "sw", Port: 0}, Delay: e19HopDelay, Seed: 41},
			{Name: "b-sw", A: core.NodeRef{Node: "b"}, B: core.NodeRef{Node: "sw", Port: 1}, Delay: e19HopDelay, Seed: 42},
			{Name: "sw-c", A: core.NodeRef{Node: "sw", Port: 2}, B: core.NodeRef{Node: "c"}, Delay: e19HopDelay, Seed: 43},
		},
	})
	if err != nil {
		panic(err)
	}
	kern := net.Kernel()
	if epd {
		net.Switch("sw").SetThresholds(2, 0, epdThresh, 0)
	}

	stacks := map[string]*ip.Stack{
		"a": ip.NewStack(net.Endpoint("a").Interface(), ip.LLCSnap, ip.Addr{10, 0, 0, 1}),
		"b": ip.NewStack(net.Endpoint("b").Interface(), ip.LLCSnap, ip.Addr{10, 0, 0, 2}),
		"c": ip.NewStack(net.Endpoint("c").Interface(), ip.LLCSnap, ip.Addr{10, 0, 0, 3}),
	}
	cfg := tcp.Config{
		MSS:        e19MSS,
		RcvWnd:     512 << 10,
		InitialRTO: 50 * sim.Millisecond,
	}
	flows := make([]*tcp.Flow, 0, e19Flows)
	for i := 0; i < e19Flows; i++ {
		src := []string{"a", "b"}[i%2]
		vcc, err := net.AddVCC(core.VCCSpec{
			Name: fmt.Sprintf("f%d", i),
			From: src, To: "c",
			VC:     atm.VC{VCI: uint16(101 + i)},
			Duplex: true,
		})
		if err != nil {
			panic(err)
		}
		f := tcp.NewFlow(kern, fmt.Sprintf("f%d", i),
			stacks[src], vcc.SourceVC, stacks["c"], vcc.DestVC, cfg)
		flows = append(flows, f)
		// Desynchronize the slow starts by a fraction of an RTT each so the
		// first overload isn't a single phase-locked burst.
		start := sim.Duration(i) * e19RTT / 4
		kern.After(start, func() { f.Start(0, nil) })
	}

	deadline := sim.Time(runTime)
	kern.RunUntil(deadline)
	var delivered uint64
	pt := E19Point{BufferFrac: frac, EPD: epd, BufferCells: depth}
	for _, f := range flows {
		delivered += f.Delivered()
		st := f.Sender.Stats()
		pt.Retransmits += st.Retransmits
		pt.Timeouts += st.Timeouts
		pt.FastRetx += st.FastRetransmits
		f.Stop()
	}
	kern.Run()

	pt.GoodputBps = units.ThroughputBps(int64(delivered), deadline)
	pt.Efficiency = pt.GoodputBps / sduCeilingBps(units.STS3cPayload, e19MSS, e19FrameCells)
	sws := net.Switch("sw").Stats()
	pt.TailDropped = sws.Dropped
	pt.EPDCells = sws.EPDCells
	pt.PPDCells = sws.PPDCells
	return pt
}

// String is used by atmbench's verbose output.
func (p E19Point) String() string {
	pol := "tail"
	if p.EPD {
		pol = "epd"
	}
	return fmt.Sprintf("buf=%.2fxBDP(%dc) %s eff=%.3f retx=%d to=%d fr=%d tail=%d epd=%d ppd=%d",
		p.BufferFrac, p.BufferCells, pol, p.Efficiency,
		p.Retransmits, p.Timeouts, p.FastRetx, p.TailDropped, p.EPDCells, p.PPDCells)
}
