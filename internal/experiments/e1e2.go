package experiments

import (
	"fmt"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bufmgr"
	"repro/internal/engine"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vclookup"
)

// E1Row is one transmit-firmware budget line.
type E1Row struct {
	Routine   string
	AAL       aal.Type
	Instr     int
	Time      sim.Duration // on the default engine, incl. dispatch
	Frac155   float64      // of the 155 Mb/s cell time
	Frac622   float64      // of the 622 Mb/s cell time
	PerPacket bool
}

// E1 computes the transmit-side per-cell cycle budget table: every firmware
// routine's instruction count and its fraction of the cell time at both
// line rates, for both AAL builds. The paper-shape claim: per-cell routines
// fit far inside the 155 Mb/s cell time and only the AAL3/4 build
// approaches half of the 622 Mb/s cell time.
func E1(engCfg engine.Config) ([]E1Row, *report.Table) {
	k := newKernel()
	eng := engine.New(k, "e1", engCfg)
	ct155 := units.CellTime(units.STS3cPayload)
	ct622 := units.CellTime(units.STS12cPayload)

	var rows []E1Row
	for _, t := range []aal.Type{aal.AAL5, aal.AAL34} {
		for _, fc := range nic.TxFirmwareCosts(t) {
			rt := eng.RoutineTime(fc.Instr)
			rows = append(rows, E1Row{
				Routine: fc.Name, AAL: t, Instr: fc.Instr, Time: rt,
				Frac155:   float64(rt) / float64(ct155),
				Frac622:   float64(rt) / float64(ct622),
				PerPacket: fc.PerPacket,
			})
		}
	}
	tb := report.NewTable(
		fmt.Sprintf("E1: transmit firmware budgets (%d MHz engine, dispatch %d instr)",
			engCfg.ClockHz/1_000_000, engCfg.DispatchInstr),
		"routine", "aal", "instr", "time", "x155-cell", "x622-cell", "scope")
	tb.Note = fmt.Sprintf("cell time: %v at 155 Mb/s payload, %v at 622", ct155, ct622)
	for _, r := range rows {
		scope := "per-cell"
		if r.PerPacket {
			scope = "per-packet"
		}
		tb.Row(r.Routine, r.AAL.String(), r.Instr, r.Time.String(), r.Frac155, r.Frac622, scope)
	}
	return rows, tb
}

// E2Row is one receive-firmware budget line for a lookup/buffer pairing.
type E2Row struct {
	AAL     aal.Type
	Lookup  string
	Buffers bufmgr.Organization
	Instr   int // rx_cell total including lookup and append
	Time    sim.Duration
	Frac155 float64
	Frac622 float64
}

// E2 computes the receive-side per-cell budget across the lookup-strategy ×
// buffer-organization design space (at a representative table occupancy of
// 64 VCs, worst-entry lookup). The receive path is the tighter budget —
// exactly why the paper puts the CAM and buffer datapath in hardware.
func E2(engCfg engine.Config) ([]E2Row, *report.Table) {
	k := newKernel()
	eng := engine.New(k, "e2", engCfg)
	ct155 := units.CellTime(units.STS3cPayload)
	ct622 := units.CellTime(units.STS12cPayload)

	// Representative lookup costs at 64 open VCs, cost of the last entry
	// (worst case for the scan).
	lookCost := func(s vclookup.Strategy) int {
		var last atm.VC
		for i := 0; i < 64; i++ {
			vc := atm.VC{VCI: uint16(1 + i*3)}
			if _, err := s.Insert(vc); err != nil {
				panic(err)
			}
			last = vc
		}
		_, cycles, ok := s.Lookup(last)
		if !ok {
			panic("experiments: lookup lost an entry")
		}
		return cycles
	}
	lookups := []struct {
		name   string
		cycles int
	}{
		{"cam", lookCost(vclookup.NewCAM(256))},
		{"hash", lookCost(vclookup.NewHash(256))},
		{"linear", lookCost(vclookup.NewLinear(256))},
	}
	// Representative append cost: steady-state mid-frame append.
	appendCost := func(org bufmgr.Organization) int {
		a := bufmgr.NewAllocator(org, 0)
		f, err := a.NewFrame(256)
		if err != nil {
			panic(err)
		}
		var p [48]byte
		var cycles int
		for i := 0; i < 8; i++ { // past any first-page setup
			cycles, err = f.Append(p[:])
			if err != nil {
				panic(err)
			}
		}
		return cycles
	}

	var rows []E2Row
	for _, t := range []aal.Type{aal.AAL5, aal.AAL34} {
		for _, lk := range lookups {
			for _, org := range bufmgr.Organizations() {
				costs := nic.RxFirmwareCosts(t, lk.cycles, appendCost(org))
				instr := costs[0].Instr // rx_cell row
				rt := eng.RoutineTime(instr)
				rows = append(rows, E2Row{
					AAL: t, Lookup: lk.name, Buffers: org, Instr: instr, Time: rt,
					Frac155: float64(rt) / float64(ct155),
					Frac622: float64(rt) / float64(ct622),
				})
			}
		}
	}
	tb := report.NewTable(
		fmt.Sprintf("E2: receive per-cell budget (rx_cell) by lookup and buffer org (%d MHz engine)",
			engCfg.ClockHz/1_000_000),
		"aal", "lookup", "buffers", "instr", "time", "x155-cell", "x622-cell")
	tb.Note = "per-packet routines: rx_eop 22 instr, rx_err 15 instr"
	for _, r := range rows {
		tb.Row(r.AAL.String(), r.Lookup, r.Buffers.String(), r.Instr, r.Time.String(),
			r.Frac155, r.Frac622)
	}
	return rows, tb
}
