package runner

import (
	"sync/atomic"
	"testing"
)

func square(i int) int { return i * i }

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		got := Map(workers, 50, square)
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(4, 0, square)
	if len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestMapCallsEachIndexOnce(t *testing.T) {
	var calls [100]atomic.Int32
	Map(8, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("fn(%d) called %d times, want 1", i, n)
		}
	}
}
