// Package runner fans independent experiment sweep points across worker
// goroutines. Every sweep point in this repository builds its own
// sim.Kernel, stations, pools, and registries — kernels are single-goroutine
// and share nothing — so a sweep is embarrassingly parallel: the only
// coordination is handing out indices and collecting results.
//
// Results are written into a slice at each point's own index, so the output
// order (and therefore every derived table, series, and CSV) is bit-for-bit
// identical to a serial run regardless of worker count or scheduling.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map evaluates fn(0), fn(1), …, fn(n-1) across up to workers goroutines
// and returns the results in index order. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 runs inline with no goroutines (the
// serial path is exactly the obvious loop). fn must be safe to call
// concurrently from multiple goroutines for distinct indices.
func Map[T any](workers, n int, fn func(int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
