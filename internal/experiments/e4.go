package experiments

import (
	"repro/internal/baseline"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
)

// E4Arch names a receive architecture.
type E4Arch string

// The three architectures E4 compares.
const (
	ArchPerPacket E4Arch = "per-packet" // the paper's interface
	ArchPerCell   E4Arch = "per-cell"   // host-SAR baseline
	ArchHardwired E4Arch = "hardwired"  // fixed-function SAR
)

// E4Point is one (architecture, offered load) measurement at the receiver.
type E4Point struct {
	Arch         E4Arch
	OfferedFrac  float64 // of payload line rate
	HostUtil     float64
	DeliveredBps float64
	Interrupts   uint64
}

// E4Config tunes the sweep.
type E4Config struct {
	Loads   []float64 // fractions of payload line rate
	SDUSize int
	RunTime sim.Duration
}

// DefaultE4 sweeps offered load with 1024-byte packets — small enough that
// the per-cell baseline can reassemble them at all (an MTU burst of 192
// line-rate cells overflows its FIFO every time, pinning its curve at
// zero), so its goodput visibly flat-lines while its CPU saturates.
func DefaultE4() E4Config {
	return E4Config{
		Loads:   []float64{0.1, 0.25, 0.5, 0.75, 0.95},
		SDUSize: 1024,
		RunTime: 40 * sim.Millisecond,
	}
}

// E4 measures receive-host CPU utilization and delivered goodput versus
// offered load for the three architectures. Paper shape: the per-cell host
// saturates (utilization → 1, goodput flat-lines) at a small fraction of
// line rate; the per-packet architecture's host cost stays modest to full
// rate; hardwired matches per-packet (the host work is identical — the
// difference is engine flexibility, not host load).
func E4(ec E4Config) ([]E4Point, *report.Series, *report.Series) {
	type e4Case struct {
		arch E4Arch
		load float64
	}
	var cases []e4Case
	for _, arch := range []E4Arch{ArchPerPacket, ArchPerCell, ArchHardwired} {
		for _, load := range ec.Loads {
			cases = append(cases, e4Case{arch, load})
		}
	}
	pts := runner.Map(Parallelism(), len(cases), func(i int) E4Point {
		return runE4(cases[i].arch, cases[i].load, ec)
	})
	x := ec.Loads
	util := report.NewSeries("E4a: receive-host CPU utilization vs offered load",
		"offered-frac", x)
	tput := report.NewSeries("E4b: delivered goodput (Mb/s) vs offered load",
		"offered-frac", x)
	for _, arch := range []E4Arch{ArchPerPacket, ArchPerCell, ArchHardwired} {
		var us, ts []float64
		for _, p := range pts {
			if p.Arch == arch {
				us = append(us, p.HostUtil)
				ts = append(ts, p.DeliveredBps/1e6)
			}
		}
		util.Add(string(arch), us)
		tput.Add(string(arch), ts)
	}
	return pts, util, tput
}

// runE4 offers load at a paced open-loop rate into one receiver.
func runE4(arch E4Arch, load float64, ec E4Config) E4Point {
	k := newKernel()
	rate := units.STS3cPayload
	// Packet departure interval to hit the target offered load, counting
	// full cell (wire) bytes.
	cells := (ec.SDUSize + 8 + 47) / 48
	wireBytes := cells * 53
	interval := sim.Duration(float64(units.TimePerBytes(rate, wireBytes)) / load)

	deadline := sim.Time(ec.RunTime)
	var hostUtil func() float64
	var delivered func() uint64
	var interrupts func() uint64

	switch arch {
	case ArchPerCell:
		// The receive architecture is what E4 compares, so the per-cell
		// receiver is driven by a fully capable (paper-style) sender —
		// otherwise the baseline's own host-bound transmit path caps the
		// offered load long before its receiver shows anything.
		cfgTx := nic.DefaultConfig("tx")
		tx, err := netsim.NewStation(k, cfgTx)
		if err != nil {
			panic(err)
		}
		rx := netsim.NewBaselineStation(k, "rx", baseline.DefaultConfig())
		link := phy.NewCellLink(k, 10_000, 9, rx.Adapter)
		tx.Iface.AttachSink(link)
		tx.Iface.OpenVC(stdVC)
		rx.Adapter.OpenVC(stdVC)
		pace(k, tx, interval, ec.SDUSize, deadline)
		hostUtil = rx.Host.Utilization
		delivered = func() uint64 { return rx.Adapter.Stats().RxBytes }
		interrupts = rx.Host.Interrupts
	default:
		cfg := nic.DefaultConfig("x")
		var tx, rx *netsim.Station
		var err error
		mk := netsim.NewStation
		if arch == ArchHardwired {
			mk = netsim.NewHardwiredStation
		}
		cfgTx, cfgRx := cfg, cfg
		cfgTx.Name, cfgRx.Name = "tx", "rx"
		if tx, err = mk(k, cfgTx); err != nil {
			panic(err)
		}
		if rx, err = mk(k, cfgRx); err != nil {
			panic(err)
		}
		netsim.Connect(k, tx, rx, netsim.LinkConfig{Delay: 10_000, Seed: 9})
		tx.Iface.OpenVC(stdVC)
		rx.Iface.OpenVC(stdVC)
		pace(k, tx, interval, ec.SDUSize, deadline)
		hostUtil = rx.Host.Utilization
		delivered = func() uint64 { return rx.Iface.Stats().Rx.Bytes }
		interrupts = rx.Host.Interrupts
	}

	k.RunUntil(deadline)
	// Snapshot everything AT the deadline: the open-loop backlog that
	// would drain afterwards (substantial for the saturated per-cell
	// host) must not be credited as delivered-within-the-window.
	return E4Point{
		Arch: arch, OfferedFrac: load, HostUtil: hostUtil(),
		DeliveredBps: units.ThroughputBps(int64(delivered()), deadline),
		Interrupts:   interrupts(),
	}
}

// pace sends fixed-size packets at fixed intervals (open loop).
func pace(k *sim.Kernel, tx *netsim.Station, interval sim.Duration, size int, deadline sim.Time) {
	payload := make([]byte, size)
	var tick func()
	tick = func() {
		if k.Now() > deadline {
			return
		}
		tx.Iface.Send(stdVC, payload, nil)
		k.After(interval, tick)
	}
	tick()
}
