package experiments

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/experiments/runner"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
)

// E15Point is one (overload, discard policy) goodput measurement at the
// congested switch port.
type E15Point struct {
	Overload    float64 // offered load / output port capacity
	EPD         bool
	GoodputBps  float64
	Efficiency  float64 // goodput / frame-goodput ceiling of the port
	TailDropped uint64
	EPDCells    uint64
	PPDCells    uint64
	AALErrors   uint64
	// Drop attribution split by level, summed from the per-VC metrics rows.
	// TimeoutFrames are partial frames aged out of the receiver's
	// reassembler (metrics.DropReassemblyTimeout): the frame-level residue
	// of cell-level tail drop, whose surviving cells crossed the congested
	// port for nothing. EPDDropCells are cells refused under
	// metrics.DropEPD — losses taken deliberately at frame granularity, so
	// they leave no stranded reassembly state behind.
	TimeoutFrames uint64
	EPDDropCells  uint64
}

// E15 reproduces the classic AAL5 goodput-collapse-and-recovery result:
// eight paced VCs from two stations converge on one switch output port at
// overloads from below saturation to 2x. With blind tail drop, each lost
// cell poisons a whole frame whose surviving cells still burn the
// congested port — goodput collapses as overload grows. With Early Packet
// Discard (refuse whole frames above a queue threshold) and Partial Packet
// Discard (kill the rest of a frame once one cell is lost), the port
// spends its cell slots almost exclusively on frames that will reassemble,
// and goodput stays pinned near the port ceiling. The gap is widest at
// moderate overload: tail drop is already shredding frames faster than it
// frees capacity, while EPD still finds whole-frame room in the queue.
func E15(overloads []float64, runTime sim.Duration) ([]E15Point, *report.Series) {
	if len(overloads) == 0 {
		overloads = []float64{0.7, 1.0, 1.3, 1.6, 2.0}
	}
	if runTime <= 0 {
		runTime = 40 * sim.Millisecond
	}
	type e15Case struct {
		epd bool
		ov  float64
	}
	var cases []e15Case
	for _, epd := range []bool{false, true} {
		for _, ov := range overloads {
			cases = append(cases, e15Case{epd, ov})
		}
	}
	pts := runner.Map(Parallelism(), len(cases), func(i int) E15Point {
		return runE15(cases[i].ov, cases[i].epd, runTime)
	})
	x := make([]float64, len(overloads))
	copy(x, overloads)
	sr := report.NewSeries("E15: goodput efficiency vs overload — tail drop vs EPD/PPD (AAL5)",
		"overload", x)
	for _, epd := range []bool{false, true} {
		name := "tail-drop"
		if epd {
			name = "epd-ppd"
		}
		var y []float64
		for _, pt := range pts {
			if pt.EPD == epd {
				y = append(y, pt.Efficiency)
			}
		}
		sr.Add(name, y)
	}
	return pts, sr
}

func runE15(overload float64, epd bool, runTime sim.Duration) E15Point {
	const (
		nPerSender = 4
		sduSize    = 1000 // 21 cells under AAL5
		frameCells = 21
		queueDepth = 96
		epdThresh  = 64 // leaves 32 cells of whole-frame headroom
	)
	// Senders interleave their VCs: with serial segmentation a pacing gap
	// on the active VC would idle the whole transmit engine and the
	// offered load could never reach the port. Unequal fiber runs break
	// the senders' cell-clock phase lock so the congestion pattern
	// resembles jittered real arrivals.
	net, err := core.NewNetwork(core.NetworkSpec{
		Kernel: newKernel(),
		Endpoints: []core.EndpointSpec{
			{Name: "a", Options: core.Options{InterleaveVCs: true}},
			{Name: "b", Options: core.Options{InterleaveVCs: true}},
			// The receiver ages out partial frames a few frame times after
			// their last cell, so tail drop's stranded reassembly state is
			// counted (DropReassemblyTimeout) instead of lingering forever.
			{Name: "c", Options: core.Options{ReassemblyTimeout: sim.Millisecond}},
		},
		Switches: []core.SwitchSpec{
			{Name: "sw", Ports: 3, Rate: units.STS3cPayload, QueueDepth: queueDepth},
		},
		Links: []core.LinkSpec{
			{Name: "a-sw", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "sw", Port: 0}, Delay: 1000, Seed: 25},
			{Name: "b-sw", A: core.NodeRef{Node: "b"}, B: core.NodeRef{Node: "sw", Port: 1}, Delay: 2400, Seed: 26},
			{Name: "sw-c", A: core.NodeRef{Node: "sw", Port: 2}, B: core.NodeRef{Node: "c"}, Seed: 27},
		},
	})
	if err != nil {
		panic(err)
	}
	kern := net.Kernel()
	if epd {
		net.Switch("sw").SetThresholds(2, 0, epdThresh, 0)
	}

	// Aggregate offered load = overload x the output port's cell rate,
	// split evenly across the eight VCs by per-VC pacing. The VCCs are
	// best-effort (zero contract → UBR), so all eight admit.
	portRate := units.CellRate(units.STS3cPayload)
	perVC := overload * portRate / (2 * nPerSender)
	deadline := sim.Time(runTime)
	for i := 0; i < nPerSender; i++ {
		for j, name := range []string{"a", "b"} {
			vc := atm.VC{VCI: uint16(1 + i + 10*j)}
			vcc, err := net.AddVCC(core.VCCSpec{
				Name: fmt.Sprintf("%s-%d", name, i),
				From: name, To: "c", VC: vc,
			})
			if err != nil {
				panic(err)
			}
			snd := net.Endpoint(name)
			if err := snd.SetPeakCellRate(vcc.SourceVC, perVC); err != nil {
				panic(err)
			}
			netsim.NewSource(kern, snd.Station(), vcc.SourceVC, sduSize, deadline).Start(2)
		}
	}

	kern.RunUntil(deadline)
	st := net.Endpoint("c").Stats()
	goodput := units.ThroughputBps(int64(st.Rx.Bytes), deadline)
	kern.Run()

	// Attribute losses by level from the per-VC metrics rows, after the
	// drain so end-of-run stale frames have been reaped and counted.
	var timeoutFrames, epdDropCells uint64
	for _, vs := range net.Metrics().Snapshot().VCs {
		timeoutFrames += vs.Drops[metrics.DropReassemblyTimeout.String()]
		epdDropCells += vs.Drops[metrics.DropEPD.String()]
	}

	sws := net.Switch("sw").Stats()
	return E15Point{
		Overload:      overload,
		EPD:           epd,
		GoodputBps:    goodput,
		Efficiency:    goodput / sduCeilingBps(units.STS3cPayload, sduSize, frameCells),
		TailDropped:   sws.Dropped,
		EPDCells:      sws.EPDCells,
		PPDCells:      sws.PPDCells,
		AALErrors:     st.Rx.AALErrors,
		TimeoutFrames: timeoutFrames,
		EPDDropCells:  epdDropCells,
	}
}

// e15Label is used by atmbench's verbose output.
func (p E15Point) String() string {
	pol := "tail"
	if p.EPD {
		pol = "epd"
	}
	return fmt.Sprintf("ov=%.1f %s eff=%.3f tail=%d epd=%d ppd=%d aalerr=%d stale=%d epdvc=%d",
		p.Overload, pol, p.Efficiency, p.TailDropped, p.EPDCells, p.PPDCells, p.AALErrors,
		p.TimeoutFrames, p.EPDDropCells)
}
