package experiments

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TelemetryConfig parameterizes the instrumented reference run.
type TelemetryConfig struct {
	// SDUSize is the fixed packet size driven over the VC.
	SDUSize int
	// Window is the number of packets kept in flight.
	Window int
	// RunTime is the simulated deadline.
	RunTime sim.Duration
	// Loss is the a->b cell-loss probability.
	Loss float64
	// Seed drives fault injection.
	Seed uint64
}

// DefaultTelemetry returns the standard instrumented run: windowed 9180-byte
// SDUs at STS-3c for 20 ms on a lossless fiber.
func DefaultTelemetry() TelemetryConfig {
	return TelemetryConfig{SDUSize: 9180, Window: 4, RunTime: 20 * sim.Millisecond, Seed: 1}
}

// Telemetry runs the fully instrumented datapath: two stations sharing one
// metrics registry, a timed tap around the a->b fiber, and a fixed windowed
// workload. It returns the registry snapshot plus a latency table (p50/p99/
// max per non-empty histogram) — the reference view of where time goes
// between the transmit descriptor and the receive interrupt.
func Telemetry(ec TelemetryConfig) (metrics.Snapshot, *report.Table) {
	if ec.SDUSize <= 0 {
		ec.SDUSize = 9180
	}
	if ec.Window <= 0 {
		ec.Window = 4
	}
	if ec.RunTime <= 0 {
		ec.RunTime = 20 * sim.Millisecond
	}
	reg := metrics.NewRegistry()
	cfg := nic.DefaultConfig("a")
	cfg.Metrics = reg

	k := newKernel()
	cfgA, cfgB := cfg, cfg
	cfgA.Name, cfgB.Name = "a", "b"
	a, err := netsim.NewStation(k, cfgA)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	b, err := netsim.NewStation(k, cfgB)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	// Wire the a->b fiber through a timed tap so per-cell fiber+FIFO
	// latency lands in "link.ab.latency"; the reverse direction carries
	// nothing in this workload and uses the plain connect.
	ab, _ := netsim.Connect(k, a, b, netsim.LinkConfig{Delay: 10_000, LossProb: ec.Loss, Seed: ec.Seed})
	cap := trace.New(k)
	timed := cap.TapTimed(reg.Histogram("link.ab.latency"))
	ab.AttachSink(atm.SinkFunc(timed.Egress(b.Iface.DeliverCell)))
	a.Iface.SetOutput(timed.Ingress(ab.Send))
	a.Iface.OpenVC(stdVC)
	b.Iface.OpenVC(stdVC)

	deadline := sim.Time(ec.RunTime)
	src := netsim.NewSource(k, a, stdVC, ec.SDUSize, deadline)
	src.Start(ec.Window)
	k.RunUntil(deadline)
	k.Run()

	snap := reg.Snapshot()
	tb := report.NewTable("Telemetry: datapath latency distributions ("+
		fmt.Sprintf("%dB SDUs, window %d, %v", ec.SDUSize, ec.Window, ec.RunTime)+")",
		"histogram", "count", "p50", "p99", "max")
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		tb.Row(h.Name, h.Count, sim.Time(h.P50Ns), sim.Time(h.P99Ns), sim.Time(h.MaxNs))
	}
	return snap, tb
}
