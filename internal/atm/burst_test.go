package atm

import "testing"

type burstSink struct {
	cells  []*Cell
	bursts int
	base   int64
	stride int64
}

func (s *burstSink) DeliverCell(c *Cell) { s.cells = append(s.cells, c) }
func (s *burstSink) DeliverBurst(b *CellBurst) {
	s.bursts++
	s.base, s.stride = b.Base, b.Stride
	s.cells = append(s.cells, b.Cells...)
	PutBurst(b)
}

type cellOnlySink struct{ cells []*Cell }

func (s *cellOnlySink) DeliverCell(c *Cell) { s.cells = append(s.cells, c) }

func makeBurst(n int, base, stride int64) *CellBurst {
	b := GetBurst(n)
	for i := 0; i < n; i++ {
		c := new(Cell)
		c.Header.VCI = uint16(i + 1)
		b.Cells = append(b.Cells, c)
	}
	b.Base, b.Stride = base, stride
	return b
}

func TestDeliverBurstToNative(t *testing.T) {
	s := &burstSink{}
	DeliverBurstTo(s, makeBurst(5, 1000, 170))
	if s.bursts != 1 || len(s.cells) != 5 {
		t.Fatalf("bursts=%d cells=%d, want 1 burst of 5", s.bursts, len(s.cells))
	}
	if s.base != 1000 || s.stride != 170 {
		t.Fatalf("base/stride %d/%d, want 1000/170", s.base, s.stride)
	}
}

func TestDeliverBurstToDegrades(t *testing.T) {
	s := &cellOnlySink{}
	DeliverBurstTo(s, makeBurst(4, 0, 170))
	if len(s.cells) != 4 {
		t.Fatalf("degraded delivery got %d cells, want 4", len(s.cells))
	}
	for i, c := range s.cells {
		if c.Header.VCI != uint16(i+1) {
			t.Fatalf("cell %d out of wire order: VCI %d", i, c.Header.VCI)
		}
	}
}

func TestBurstAt(t *testing.T) {
	b := makeBurst(3, 500, 170)
	for i := 0; i < 3; i++ {
		if got, want := b.At(i), int64(500+170*i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestBurstPoolRecycles(t *testing.T) {
	b := GetBurst(8)
	b.Cells = append(b.Cells, new(Cell))
	b.Base, b.Stride = 9, 9
	PutBurst(b)
	b2 := GetBurst(4)
	if b2 != b {
		t.Fatal("pool did not recycle the burst record")
	}
	if len(b2.Cells) != 0 || b2.Base != 0 || b2.Stride != 0 {
		t.Fatalf("recycled burst not reset: %+v", b2)
	}
	if b2.Cells[:1][0] != nil {
		t.Fatal("stale cell pointer pins memory after PutBurst")
	}
}
