// Package atm implements the ATM cell: the 53-byte unit the whole host
// interface is built around.  It provides header encode/decode for both UNI
// and NNI formats, HEC generation and single-bit correction, and the
// well-known reserved cell patterns (idle, unassigned).
//
// The codec follows the gopacket idiom for hot paths: decoding writes into a
// caller-held Header and encoding writes into a caller-held byte array, so
// per-cell processing allocates nothing.
package atm

import (
	"errors"
	"fmt"

	"repro/internal/crc"
)

// Cell geometry.
const (
	CellSize    = 53 // header + payload on the wire
	HeaderSize  = 5  // includes the HEC byte
	PayloadSize = 48
)

// Format selects between the two ATM header layouts.
type Format uint8

const (
	// UNI is the user-network interface header: 4-bit GFC, 8-bit VPI,
	// 16-bit VCI. This is what a host interface generates.
	UNI Format = iota
	// NNI is the network-node interface header: no GFC, 12-bit VPI.
	NNI
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case UNI:
		return "UNI"
	case NNI:
		return "NNI"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// PT is the 3-bit payload type indicator. Bit 2 (MSB) distinguishes user
// from management cells; for user cells bit 1 is the EFCI congestion flag
// and bit 0 is the AAL-indicate bit — which AAL5 uses to mark the last cell
// of a CPCS-PDU, the load-bearing trick that lets the reassembler find frame
// boundaries without per-cell length fields.
type PT uint8

const (
	// PTUser0 is a user data cell, no congestion, AAU=0.
	PTUser0 PT = 0b000
	// PTUserEnd is a user data cell with AAU=1: under AAL5, the final
	// cell of a CPCS-PDU.
	PTUserEnd PT = 0b001
	// PTUserCongested marks EFCI congestion experienced.
	PTUserCongested PT = 0b010
	// PTUserCongestedEnd is congestion + end-of-frame.
	PTUserCongestedEnd PT = 0b011
	// PTOAMSegment and friends are management cells; the interface
	// forwards them to firmware rather than the reassembly fast path.
	PTOAMSegment    PT = 0b100
	PTOAMEndToEnd   PT = 0b101
	PTResourceMgmt  PT = 0b110
	PTReservedPT111 PT = 0b111
)

// EndOfFrame reports whether the AAU bit is set on a user-data cell (the
// AAL5 end-of-CPCS-PDU marker).
func (p PT) EndOfFrame() bool { return p&0b100 == 0 && p&0b001 != 0 }

// User reports whether the cell carries user data (vs OAM/RM).
func (p PT) User() bool { return p&0b100 == 0 }

// Congestion reports the EFCI bit on user cells.
func (p PT) Congestion() bool { return p&0b100 == 0 && p&0b010 != 0 }

// Header is a decoded ATM cell header. Fields follow I.361.
type Header struct {
	Format Format
	GFC    uint8  // 4 bits, UNI only
	VPI    uint16 // 8 bits (UNI) or 12 bits (NNI)
	VCI    uint16 // 16 bits
	PT     PT     // 3 bits
	CLP    bool   // cell loss priority: true = discard-eligible
}

// VC identifies a virtual connection: the (VPI, VCI) pair the receive path
// demultiplexes on.
type VC struct {
	VPI uint16
	VCI uint16
}

// VC returns the header's connection identifier.
func (h *Header) VC() VC { return VC{VPI: h.VPI, VCI: h.VCI} }

// String implements fmt.Stringer.
func (v VC) String() string { return fmt.Sprintf("%d/%d", v.VPI, v.VCI) }

// Errors returned by the codec.
var (
	ErrVPIRange  = errors.New("atm: VPI out of range for header format")
	ErrGFCRange  = errors.New("atm: GFC out of range")
	ErrPTRange   = errors.New("atm: PT out of range")
	ErrShortBuf  = errors.New("atm: buffer shorter than a cell header")
	ErrHECFailed = errors.New("atm: uncorrectable header error")
)

// maxVPI returns the largest VPI encodable in the format.
func (f Format) maxVPI() uint16 {
	if f == NNI {
		return 0xfff
	}
	return 0xff
}

// Encode writes the 5-byte header, including a freshly computed HEC, into
// dst. It validates field ranges: a host interface must never emit a
// malformed header, so violations are errors rather than silent masking.
func (h *Header) Encode(dst []byte) error {
	if len(dst) < HeaderSize {
		return ErrShortBuf
	}
	if h.VPI > h.Format.maxVPI() {
		return fmt.Errorf("%w: VPI %d under %v", ErrVPIRange, h.VPI, h.Format)
	}
	if h.GFC > 0xf {
		return fmt.Errorf("%w: GFC %d", ErrGFCRange, h.GFC)
	}
	if h.PT > 7 {
		return fmt.Errorf("%w: PT %d", ErrPTRange, h.PT)
	}
	var clp byte
	if h.CLP {
		clp = 1
	}
	if h.Format == UNI {
		dst[0] = h.GFC<<4 | byte(h.VPI>>4)
	} else {
		dst[0] = byte(h.VPI>>8<<4) | byte(h.VPI>>4)&0x0f
	}
	dst[1] = byte(h.VPI)<<4 | byte(h.VCI>>12)
	dst[2] = byte(h.VCI >> 4)
	dst[3] = byte(h.VCI)<<4 | byte(h.PT)<<1 | clp
	dst[4] = crc.HEC([4]byte{dst[0], dst[1], dst[2], dst[3]})
	return nil
}

// Decode parses a 5-byte header from src into h, verifying the HEC and
// correcting a single-bit error in place in its private copy.  corrected
// reports whether a correction was applied.  On an uncorrectable header it
// returns ErrHECFailed and leaves h unspecified — the caller must discard
// the cell, exactly as the delineation hardware does.
func (h *Header) Decode(src []byte, format Format) (corrected bool, err error) {
	if len(src) < HeaderSize {
		return false, ErrShortBuf
	}
	var raw [5]byte
	copy(raw[:], src[:5])
	ok, corrected := crc.HECCheck(&raw)
	if !ok {
		return false, ErrHECFailed
	}
	h.Format = format
	if format == UNI {
		h.GFC = raw[0] >> 4
		h.VPI = uint16(raw[0]&0x0f)<<4 | uint16(raw[1]>>4)
	} else {
		h.GFC = 0
		h.VPI = uint16(raw[0])<<4 | uint16(raw[1]>>4)
	}
	h.VCI = uint16(raw[1]&0x0f)<<12 | uint16(raw[2])<<4 | uint16(raw[3]>>4)
	h.PT = PT(raw[3] >> 1 & 0x7)
	h.CLP = raw[3]&1 != 0
	return corrected, nil
}

// Cell is a full 53-byte cell: decoded header plus payload bytes.  The
// simulator passes *Cell values between pipeline stages; Pool recycles them
// so the per-cell path does not allocate.
type Cell struct {
	Header  Header
	Payload [PayloadSize]byte
}

// Encode writes the full 53-byte wire form of the cell.
func (c *Cell) Encode(dst []byte) error {
	if len(dst) < CellSize {
		return ErrShortBuf
	}
	if err := c.Header.Encode(dst[:HeaderSize]); err != nil {
		return err
	}
	copy(dst[HeaderSize:CellSize], c.Payload[:])
	return nil
}

// Decode parses a full 53-byte cell.
func (c *Cell) Decode(src []byte, format Format) (corrected bool, err error) {
	if len(src) < CellSize {
		return false, ErrShortBuf
	}
	corrected, err = c.Header.Decode(src[:HeaderSize], format)
	if err != nil {
		return false, err
	}
	copy(c.Payload[:], src[HeaderSize:CellSize])
	return corrected, nil
}

// IdleCell returns the I.432 idle cell: all-zero header with CLP=1,
// payload 0x6a repeated. The framer inserts these when the transmit FIFO
// runs dry, because SONET must carry a continuous cell stream.
func IdleCell() *Cell {
	c := &Cell{Header: Header{Format: UNI, CLP: true}}
	for i := range c.Payload {
		c.Payload[i] = 0x6a
	}
	return c
}

// IsIdle reports whether a decoded header is the idle/unassigned pattern
// (VPI=0, VCI=0), which the receive path drops before demultiplexing.
func (h *Header) IsIdle() bool { return h.VPI == 0 && h.VCI == 0 }
