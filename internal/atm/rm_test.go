package atm

import (
	"math"
	"testing"
)

func TestRateFormatRoundTrip(t *testing.T) {
	// The 9-bit mantissa gives ~0.2% granularity; every encodable rate must
	// round-trip within one mantissa step.
	for _, r := range []float64{1, 2, 3, 100, 4000, 353207.5, 1_412_830, 2.1e9} {
		got := DecodeRate(EncodeRate(r))
		if rel := math.Abs(got-r) / r; rel > 1.0/512 {
			t.Errorf("rate %g round-trips to %g (rel err %g)", r, got, rel)
		}
	}
}

func TestRateFormatEdges(t *testing.T) {
	if EncodeRate(0) != 0 || EncodeRate(-5) != 0 || EncodeRate(0.5) != 0 {
		t.Error("sub-unity rates must encode as zero")
	}
	if DecodeRate(0) != 0 {
		t.Error("zero decodes nonzero")
	}
	// Saturation: beyond 2^31×(1+511/512) the format pins at its ceiling.
	max := DecodeRate(EncodeRate(math.MaxFloat64))
	want := math.Ldexp(1+511.0/512, 31)
	if max != want {
		t.Errorf("saturated rate = %g, want %g", max, want)
	}
	// Mantissa carry: a rate just below a power of two must not overflow
	// the 9-bit mantissa.
	r := math.Nextafter(4096, 0)
	if got := DecodeRate(EncodeRate(r)); got != 4096 {
		t.Errorf("carry case: %g -> %g, want 4096", r, got)
	}
}

func TestRMRoundTrip(t *testing.T) {
	rm := RM{DIR: true, CI: true, NI: false, BN: false,
		ER: 150_000, CCR: 88_000, MCR: 1000}
	var p [PayloadSize]byte
	rm.Encode(&p)
	if p[0] != RMProtoABR {
		t.Fatalf("protocol ID = %d", p[0])
	}
	var got RM
	if err := got.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if got.DIR != rm.DIR || got.BN != rm.BN || got.CI != rm.CI || got.NI != rm.NI {
		t.Errorf("flag mismatch: %+v vs %+v", got, rm)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{{"ER", got.ER, rm.ER}, {"CCR", got.CCR, rm.CCR}, {"MCR", got.MCR, rm.MCR}} {
		if rel := math.Abs(c.got-c.want) / c.want; rel > 1.0/512 {
			t.Errorf("%s = %g, want ~%g", c.name, c.got, c.want)
		}
	}
}

func TestRMDecodeRejects(t *testing.T) {
	var p [PayloadSize]byte
	rm := RM{ER: 1000}
	rm.Encode(&p)
	p[0] = 7 // not ABR
	var got RM
	if err := got.Decode(&p); err == nil {
		t.Error("bad protocol ID accepted")
	}
	p[0] = RMProtoABR
	p[3] ^= 0x40 // corrupt ER
	if err := got.Decode(&p); err != ErrRMCRC {
		t.Errorf("corrupted payload: err = %v, want ErrRMCRC", err)
	}
}

func TestIsRM(t *testing.T) {
	h := Header{PT: PTResourceMgmt}
	if !IsRM(&h) {
		t.Error("PTResourceMgmt not recognized")
	}
	h.PT = PTUserCongestedEnd
	if IsRM(&h) {
		t.Error("user cell recognized as RM")
	}
}
