package atm

import "sync"

// CellBurst is a vector of back-to-back cells committed to the wire in one
// contiguous run. It is the batched counterpart of a single DeliverCell: a
// producer that has several cells bound for the same consumer at a known
// fixed spacing hands them across in one call instead of one kernel event
// per cell. The per-cell wire times are arithmetic — cell i leaves (or
// arrived) at Base + i*Stride — so no information is lost by batching; any
// stage that needs per-cell times reconstructs them exactly.
//
// Ownership follows the single-cell rule, lifted to the vector: the whole
// burst (the record and every *Cell in it) belongs to the callee once
// DeliverBurst returns. Cells the consumer drops must be recycled to their
// origin Pool; the CellBurst record itself goes back via PutBurst. Cells is
// in wire order and a consumer must process it front to back — reordering
// within a burst would reorder the wire.
type CellBurst struct {
	Cells  []*Cell
	Base   int64 // wire time of Cells[0], kernel nanoseconds
	Stride int64 // nanoseconds between consecutive cell slots
}

// Len returns the number of cells in the burst.
func (b *CellBurst) Len() int { return len(b.Cells) }

// At returns the wire time of cell i.
func (b *CellBurst) At(i int) int64 { return b.Base + int64(i)*b.Stride }

// BurstConsumer is implemented by consumers that accept cell vectors
// natively. A consumer that implements it must preserve exact per-cell
// semantics: processing a burst of N cells must leave the consumer (and
// everything downstream) in the same state as N DeliverCell calls at the
// burst's arithmetic timestamps would. Consumers whose per-cell behavior
// depends on simulation state that evolves between cell slots (FIFO
// occupancy, engine scheduling) must NOT implement BurstConsumer; the
// degrading adapter feeds them per-cell instead.
type BurstConsumer interface {
	CellConsumer
	// DeliverBurst accepts a cell vector, taking ownership of the record
	// and every cell in it.
	DeliverBurst(*CellBurst)
}

// BurstProducer is implemented by stages that can emit cell vectors when
// asked to. Burst emission is an opt-in mode (core.NetworkSpec.BurstMode)
// so the serial path remains the golden reference; SetBurstMode(true) makes
// the producer coalesce back-to-back cells into CellBursts where its own
// timing model permits.
type BurstProducer interface {
	CellProducer
	SetBurstMode(on bool)
}

// DeliverBurstTo hands burst b to sink: natively when sink implements
// BurstConsumer, otherwise degraded to per-cell DeliverCell calls in wire
// order (the universal adapter that lets burst producers feed any legacy
// consumer). In the degraded case the burst record is recycled here; the
// cells themselves pass to the sink as usual.
func DeliverBurstTo(sink CellConsumer, b *CellBurst) {
	if bc, ok := sink.(BurstConsumer); ok {
		bc.DeliverBurst(b)
		return
	}
	for _, c := range b.Cells {
		sink.DeliverCell(c)
	}
	PutBurst(b)
}

// Burst records are pooled across the process in one free list. Unlike
// cell Pools (one per interface, so each stays inside a single partition),
// the burst pool is package-global, and a sharded run (sim.Group) works it
// from several partition goroutines at once — hence the mutex. Which
// record a Get returns is never observable (records are blank), so the
// lock guards memory safety only, not determinism. Serial runs pay one
// uncontended lock per burst, noise next to the per-frame work a burst
// amortizes.
var (
	burstMu   sync.Mutex
	burstFree []*CellBurst
)

// GetBurst returns an empty CellBurst with at least the given capacity.
func GetBurst(capHint int) *CellBurst {
	burstMu.Lock()
	n := len(burstFree)
	if n == 0 {
		burstMu.Unlock()
		return &CellBurst{Cells: make([]*Cell, 0, capHint)}
	}
	b := burstFree[n-1]
	burstFree[n-1] = nil
	burstFree = burstFree[:n-1]
	burstMu.Unlock()
	if cap(b.Cells) < capHint {
		b.Cells = make([]*Cell, 0, capHint)
	}
	b.Base, b.Stride = 0, 0
	return b
}

// PutBurst recycles a burst record. The caller must have disposed of the
// cells (handed on or recycled); PutBurst only clears the slice so stale
// cell pointers do not pin pool memory.
func PutBurst(b *CellBurst) {
	if b == nil {
		return
	}
	for i := range b.Cells {
		b.Cells[i] = nil
	}
	b.Cells = b.Cells[:0]
	burstMu.Lock()
	burstFree = append(burstFree, b)
	burstMu.Unlock()
}
