package atm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/crc"
)

// This file implements the ABR resource-management cell payload of ATM
// Forum TM 4.0 §5.10.3: the in-band feedback vehicle of the ABR closed
// loop. A source emits a forward RM cell (DIR=0) every Nrm cells on the
// same VC as its data; every switch on the path may reduce the explicit
// rate (ER) field and set CI/NI; the destination turns the cell around
// (DIR=1) and the source adjusts its allowed cell rate from the returned
// CI/NI/ER. RM cells ride the data path — same VC, same queues, PT=0b110 —
// which is what makes the feedback delay equal the real round-trip time.
//
// Layout (48-byte payload, offsets per TM 4.0 Table 5-4):
//
//	 0     protocol ID (1 = ABR)
//	 1     message type: DIR | BN | CI | NI | RA | reserved(3)
//	 2-3   ER  — explicit rate, 16-bit ATM floating point
//	 4-5   CCR — current cell rate of the source
//	 6-7   MCR — minimum cell rate of the connection
//	 8-15  QL / SN (unused here, zero)
//	16-45  reserved
//	46-47  reserved(6 bits) + CRC-10 over the whole payload
type RM struct {
	// DIR is the direction bit: false = forward (source → destination),
	// true = backward (turned around by the destination).
	DIR bool
	// BN marks a backward explicit congestion notification cell generated
	// by a switch or the destination rather than turned around from a
	// forward RM cell.
	BN bool
	// CI is the congestion indication: makes the source decrease ACR by
	// ACR×RDF. The destination sets it when data cells arrived with EFCI.
	CI bool
	// NI is the no-increase bit: suppresses additive increase without
	// forcing a decrease.
	NI bool
	// ER is the explicit rate in cells/s: the highest ACR the most
	// congested switch on the path will tolerate.
	ER float64
	// CCR is the source's current allowed cell rate in cells/s when the
	// forward cell left; ERICA uses it to compute the VC's share of the
	// measured overload.
	CCR float64
	// MCR is the connection's contracted minimum cell rate in cells/s.
	MCR float64
}

// RMProtoABR is the protocol identifier of ABR resource management.
const RMProtoABR = 1

// Message-type bit positions (payload byte 1).
const (
	rmDIR = 1 << 7
	rmBN  = 1 << 6
	rmCI  = 1 << 5
	rmNI  = 1 << 4
)

// Errors returned by the RM codec.
var (
	ErrRMProto = errors.New("atm: not an ABR RM payload")
	ErrRMCRC   = errors.New("atm: RM cell CRC-10 mismatch")
)

// EncodeRate packs a cell rate into the 16-bit ATM floating-point format:
// bit 14 nonzero flag, bits 13..9 a 5-bit exponent e, bits 8..0 a 9-bit
// mantissa m, value = 2^e × (1 + m/512) cells/s (TM 4.0 §5.10.3.2; bit 15
// reserved zero). Rates below 1 cell/s encode as zero; rates beyond the
// format's ceiling (≈4.3e9) saturate.
func EncodeRate(r float64) uint16 {
	if r < 1 || math.IsNaN(r) {
		return 0
	}
	frac, exp := math.Frexp(r) // r = frac × 2^exp, frac ∈ [0.5, 1)
	e := exp - 1
	m := int(math.Round((frac*2 - 1) * 512))
	if m == 512 {
		m = 0
		e++
	}
	if e > 31 {
		e, m = 31, 511
	}
	return 1<<14 | uint16(e)<<9 | uint16(m)
}

// DecodeRate unpacks a 16-bit ATM floating-point rate into cells/s.
func DecodeRate(v uint16) float64 {
	if v&(1<<14) == 0 {
		return 0
	}
	e := int(v >> 9 & 0x1f)
	m := float64(v & 0x1ff)
	return math.Ldexp(1+m/512, e)
}

// Encode writes the RM fields into a 48-byte cell payload, zeroing the
// reserved space and stamping the trailing CRC-10.
func (rm *RM) Encode(p *[PayloadSize]byte) {
	for i := range p {
		p[i] = 0
	}
	p[0] = RMProtoABR
	var mt byte
	if rm.DIR {
		mt |= rmDIR
	}
	if rm.BN {
		mt |= rmBN
	}
	if rm.CI {
		mt |= rmCI
	}
	if rm.NI {
		mt |= rmNI
	}
	p[1] = mt
	putRate(p[2:4], rm.ER)
	putRate(p[4:6], rm.CCR)
	putRate(p[6:8], rm.MCR)
	crc.CRC10Fill(p[:])
}

// Decode parses an RM payload, verifying the protocol ID and the CRC-10.
func (rm *RM) Decode(p *[PayloadSize]byte) error {
	if p[0] != RMProtoABR {
		return fmt.Errorf("%w: protocol %d", ErrRMProto, p[0])
	}
	if !crc.CRC10Check(p[:]) {
		return ErrRMCRC
	}
	mt := p[1]
	rm.DIR = mt&rmDIR != 0
	rm.BN = mt&rmBN != 0
	rm.CI = mt&rmCI != 0
	rm.NI = mt&rmNI != 0
	rm.ER = DecodeRate(getRate(p[2:4]))
	rm.CCR = DecodeRate(getRate(p[4:6]))
	rm.MCR = DecodeRate(getRate(p[6:8]))
	return nil
}

func putRate(b []byte, r float64) {
	v := EncodeRate(r)
	b[0] = byte(v >> 8)
	b[1] = byte(v)
}

func getRate(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }

// IsRM reports whether the header marks a resource-management cell.
func IsRM(h *Header) bool { return h.PT == PTResourceMgmt }
