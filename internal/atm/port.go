package atm

// The cell-port contract: every stage of the simulated datapath — interface
// transmit/receive halves, fiber links, SONET framer halves, switch ports —
// exchanges cells through the same two one-method interfaces instead of
// bespoke SetOutput/SetSink/AttachOutput setters. A topology is then just a
// chain of AttachSink calls, which is what core.NewNetwork builds from a
// declarative spec.
//
// Ownership rule: a *Cell passed to DeliverCell is owned by the callee until
// it hands the cell onward or returns it to its origin Pool. Producers must
// not retain or reuse a cell after delivering it; consumers that drop a cell
// must recycle it (links and interfaces pool cells, so a leaked cell costs
// an allocation on the next Pool.Get). Delivery order is preserved per
// producer: a stage must emit cells downstream in the order it committed
// them to the wire.
//
// Burst extension (see burst.go): stages may additionally implement
// BurstConsumer/BurstProducer to exchange CellBurst vectors — several
// back-to-back cells with arithmetic per-cell timestamps — in one call.
// The ownership and ordering rules lift verbatim to the vector: the callee
// owns the record and all its cells, and bursts may be split into per-cell
// deliveries (DeliverBurstTo does this for legacy consumers) but never
// coalesced, reordered, or retimed in a way observable downstream.

// CellConsumer is the universal cell sink: anything cells can be delivered
// into. nic.Interface, phy.CellLink, netsim switch ports and sonetlink
// halves all implement it.
type CellConsumer interface {
	// DeliverCell accepts one cell, taking ownership.
	DeliverCell(*Cell)
}

// CellProducer is the universal cell source: anything that emits cells
// toward a single attached consumer.
type CellProducer interface {
	// AttachSink connects the producer's output. Attaching replaces any
	// previous sink and takes effect for cells not yet delivered (a link's
	// in-flight cells arrive at the new sink). Implementations panic on a
	// nil sink — an unwired producer is a build error, not a runtime state.
	AttachSink(CellConsumer)
}

// CellConduit is a full datapath stage: cells in, cells out.
type CellConduit interface {
	CellConsumer
	CellProducer
}

// SinkFunc adapts a plain func(*Cell) — a trace tap, a test collector — to
// the CellConsumer interface.
type SinkFunc func(*Cell)

// DeliverCell implements CellConsumer.
func (f SinkFunc) DeliverCell(c *Cell) { f(c) }
