package atm

import "testing"

// collector is a minimal CellConsumer.
type collector struct{ got []*Cell }

func (c *collector) DeliverCell(cell *Cell) { c.got = append(c.got, cell) }

func TestSinkFuncAdaptsFunc(t *testing.T) {
	var got *Cell
	var sink CellConsumer = SinkFunc(func(c *Cell) { got = c })
	cell := &Cell{}
	sink.DeliverCell(cell)
	if got != cell {
		t.Fatal("SinkFunc did not forward the cell")
	}
}

func TestConsumerChain(t *testing.T) {
	end := &collector{}
	// A pass-through stage built from SinkFunc, forwarding to end.
	var stage CellConsumer = SinkFunc(func(c *Cell) { end.DeliverCell(c) })
	for i := 0; i < 3; i++ {
		stage.DeliverCell(&Cell{Header: Header{VCI: uint16(i)}})
	}
	if len(end.got) != 3 {
		t.Fatalf("chain delivered %d cells, want 3", len(end.got))
	}
	for i, c := range end.got {
		if c.Header.VCI != uint16(i) {
			t.Fatalf("cell %d out of order: VCI %d", i, c.Header.VCI)
		}
	}
}
