package atm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestHeaderEncodeDecodeUNI(t *testing.T) {
	h := Header{Format: UNI, GFC: 0xa, VPI: 0x5c, VCI: 0xbeef, PT: PTUserEnd, CLP: true}
	var buf [5]byte
	if err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	var got Header
	corrected, err := got.Decode(buf[:], UNI)
	if err != nil {
		t.Fatal(err)
	}
	if corrected {
		t.Fatal("clean header reported corrected")
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestHeaderEncodeDecodeNNI(t *testing.T) {
	h := Header{Format: NNI, VPI: 0xabc, VCI: 0x1234, PT: PTOAMSegment, CLP: false}
	var buf [5]byte
	if err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	var got Header
	if _, err := got.Decode(buf[:], NNI); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestHeaderFieldPacking(t *testing.T) {
	// Hand-checked wire layout for a UNI header:
	// GFC=0001, VPI=0000 0010, VCI=0000 0000 0000 0011, PT=010, CLP=1.
	h := Header{Format: UNI, GFC: 1, VPI: 2, VCI: 3, PT: PTUserCongested, CLP: true}
	var buf [5]byte
	if err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x10, 0x20, 0x00, 0x35}
	if !bytes.Equal(buf[:4], want) {
		t.Fatalf("wire bytes %x, want %x", buf[:4], want)
	}
}

func TestHeaderVPIRangeChecked(t *testing.T) {
	h := Header{Format: UNI, VPI: 0x100}
	var buf [5]byte
	if err := h.Encode(buf[:]); !errors.Is(err, ErrVPIRange) {
		t.Fatalf("err = %v, want ErrVPIRange", err)
	}
	h = Header{Format: NNI, VPI: 0x1000}
	if err := h.Encode(buf[:]); !errors.Is(err, ErrVPIRange) {
		t.Fatalf("err = %v, want ErrVPIRange", err)
	}
	// Max legal values pass.
	h = Header{Format: NNI, VPI: 0xfff}
	if err := h.Encode(buf[:]); err != nil {
		t.Fatalf("max NNI VPI rejected: %v", err)
	}
}

func TestHeaderGFCRangeChecked(t *testing.T) {
	h := Header{Format: UNI, GFC: 0x10}
	var buf [5]byte
	if err := h.Encode(buf[:]); !errors.Is(err, ErrGFCRange) {
		t.Fatalf("err = %v, want ErrGFCRange", err)
	}
}

func TestHeaderShortBuffer(t *testing.T) {
	h := Header{}
	if err := h.Encode(make([]byte, 4)); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("encode err = %v, want ErrShortBuf", err)
	}
	var d Header
	if _, err := d.Decode(make([]byte, 4), UNI); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("decode err = %v, want ErrShortBuf", err)
	}
}

func TestDecodeCorrectsSingleBitError(t *testing.T) {
	h := Header{Format: UNI, VPI: 7, VCI: 99, PT: PTUser0}
	var buf [5]byte
	if err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 40; bit++ {
		b := buf
		b[bit/8] ^= 0x80 >> (bit % 8)
		var got Header
		corrected, err := got.Decode(b[:], UNI)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if !corrected {
			t.Fatalf("bit %d: flip not reported corrected", bit)
		}
		if got != h {
			t.Fatalf("bit %d: decoded %+v, want %+v", bit, got, h)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// A random header with wrong HEC and multi-bit damage must fail.
	buf := []byte{0xde, 0xad, 0xbe, 0xef, 0x00}
	var h Header
	if _, err := h.Decode(buf, UNI); !errors.Is(err, ErrHECFailed) {
		t.Fatalf("err = %v, want ErrHECFailed", err)
	}
}

func TestPTSemantics(t *testing.T) {
	cases := []struct {
		pt         PT
		user, eof  bool
		congestion bool
	}{
		{PTUser0, true, false, false},
		{PTUserEnd, true, true, false},
		{PTUserCongested, true, false, true},
		{PTUserCongestedEnd, true, true, true},
		{PTOAMSegment, false, false, false},
		{PTOAMEndToEnd, false, false, false},
		{PTResourceMgmt, false, false, false},
	}
	for _, c := range cases {
		if c.pt.User() != c.user {
			t.Errorf("PT %03b User() = %v, want %v", c.pt, c.pt.User(), c.user)
		}
		if c.pt.EndOfFrame() != c.eof {
			t.Errorf("PT %03b EndOfFrame() = %v, want %v", c.pt, c.pt.EndOfFrame(), c.eof)
		}
		if c.pt.Congestion() != c.congestion {
			t.Errorf("PT %03b Congestion() = %v, want %v", c.pt, c.pt.Congestion(), c.congestion)
		}
	}
}

func TestCellRoundTrip(t *testing.T) {
	c := Cell{Header: Header{Format: UNI, VPI: 1, VCI: 42, PT: PTUserEnd}}
	for i := range c.Payload {
		c.Payload[i] = byte(i ^ 0x5a)
	}
	var wire [CellSize]byte
	if err := c.Encode(wire[:]); err != nil {
		t.Fatal(err)
	}
	var got Cell
	if _, err := got.Decode(wire[:], UNI); err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("cell round trip mismatch")
	}
}

func TestCellShortBuffers(t *testing.T) {
	var c Cell
	if err := c.Encode(make([]byte, 52)); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("encode err = %v", err)
	}
	if _, err := c.Decode(make([]byte, 52), UNI); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("decode err = %v", err)
	}
}

func TestIdleCell(t *testing.T) {
	c := IdleCell()
	if !c.Header.IsIdle() {
		t.Fatal("idle cell not recognized as idle")
	}
	var wire [CellSize]byte
	if err := c.Encode(wire[:]); err != nil {
		t.Fatal(err)
	}
	// I.432: idle cell header is 00 00 00 01 (CLP=1) with HEC 0x52.
	want := []byte{0x00, 0x00, 0x00, 0x01, 0x52}
	if !bytes.Equal(wire[:5], want) {
		t.Fatalf("idle header %x, want %x", wire[:5], want)
	}
	for _, b := range wire[5:] {
		if b != 0x6a {
			t.Fatalf("idle payload byte %#02x, want 0x6a", b)
		}
	}
}

func TestVCString(t *testing.T) {
	if s := (VC{VPI: 3, VCI: 77}).String(); s != "3/77" {
		t.Fatalf("VC.String() = %q", s)
	}
}

func TestFormatString(t *testing.T) {
	if UNI.String() != "UNI" || NNI.String() != "NNI" {
		t.Fatal("Format.String() broken")
	}
	if Format(9).String() != "Format(9)" {
		t.Fatalf("unknown format: %s", Format(9))
	}
}

// Property: encode∘decode is the identity on all valid UNI headers.
func TestPropertyHeaderRoundTripUNI(t *testing.T) {
	f := func(gfc, vpiLo uint8, vci uint16, pt uint8, clp bool) bool {
		h := Header{
			Format: UNI,
			GFC:    gfc & 0xf,
			VPI:    uint16(vpiLo),
			VCI:    vci,
			PT:     PT(pt & 7),
			CLP:    clp,
		}
		var buf [5]byte
		if err := h.Encode(buf[:]); err != nil {
			return false
		}
		var got Header
		corrected, err := got.Decode(buf[:], UNI)
		return err == nil && !corrected && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode∘decode is the identity on all valid NNI headers.
func TestPropertyHeaderRoundTripNNI(t *testing.T) {
	f := func(vpi, vci uint16, pt uint8, clp bool) bool {
		h := Header{
			Format: NNI,
			VPI:    vpi & 0xfff,
			VCI:    vci,
			PT:     PT(pt & 7),
			CLP:    clp,
		}
		var buf [5]byte
		if err := h.Encode(buf[:]); err != nil {
			return false
		}
		var got Header
		_, err := got.Decode(buf[:], NNI)
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRecycles(t *testing.T) {
	p := NewPool(2)
	a := p.Get()
	b := p.Get()
	if a == b {
		t.Fatal("pool returned the same cell twice")
	}
	p.Put(a)
	c := p.Get()
	if c != a {
		t.Fatal("pool did not recycle the freed cell")
	}
	gets, puts, news := p.Stats()
	if gets != 3 || puts != 1 || news != 0 {
		t.Fatalf("stats = %d/%d/%d, want 3/1/0", gets, puts, news)
	}
}

func TestPoolGrowsWhenEmpty(t *testing.T) {
	p := NewPool(0)
	c := p.Get()
	if c == nil {
		t.Fatal("empty pool returned nil")
	}
	_, _, news := p.Stats()
	if news != 1 {
		t.Fatalf("news = %d, want 1", news)
	}
}

func TestPoolGetZeroesHeader(t *testing.T) {
	p := NewPool(1)
	c := p.Get()
	c.Header.VCI = 99
	p.Put(c)
	c2 := p.Get()
	if c2.Header.VCI != 0 {
		t.Fatal("recycled cell header not zeroed")
	}
}

func TestPoolPutNil(t *testing.T) {
	p := NewPool(0)
	p.Put(nil) // must not panic
	if c := p.Get(); c == nil {
		t.Fatal("Get after Put(nil) returned nil")
	}
}

func BenchmarkHeaderEncode(b *testing.B) {
	h := Header{Format: UNI, VPI: 1, VCI: 42, PT: PTUserEnd}
	var buf [5]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := h.Encode(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeaderDecode(b *testing.B) {
	h := Header{Format: UNI, VPI: 1, VCI: 42, PT: PTUserEnd}
	var buf [5]byte
	if err := h.Encode(buf[:]); err != nil {
		b.Fatal(err)
	}
	var got Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := got.Decode(buf[:], UNI); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellEncode(b *testing.B) {
	c := Cell{Header: Header{Format: UNI, VPI: 1, VCI: 42}}
	var wire [CellSize]byte
	b.SetBytes(CellSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(wire[:]); err != nil {
			b.Fatal(err)
		}
	}
}
