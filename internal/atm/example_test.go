package atm_test

import (
	"fmt"

	"repro/internal/atm"
)

// Encoding and decoding one cell header, HEC included.
func ExampleHeader() {
	h := atm.Header{Format: atm.UNI, VPI: 1, VCI: 42, PT: atm.PTUserEnd}
	var wire [5]byte
	if err := h.Encode(wire[:]); err != nil {
		panic(err)
	}
	fmt.Printf("wire: % x\n", wire)

	var got atm.Header
	corrected, err := got.Decode(wire[:], atm.UNI)
	if err != nil {
		panic(err)
	}
	fmt.Printf("vc %v, end-of-frame %v, corrected %v\n",
		got.VC(), got.PT.EndOfFrame(), corrected)
	// Output:
	// wire: 00 10 02 a2 ba
	// vc 1/42, end-of-frame true, corrected false
}

// The HEC corrects any single-bit header error in place.
func ExampleHeader_Decode() {
	h := atm.Header{Format: atm.UNI, VPI: 0, VCI: 100, PT: atm.PTUser0}
	var wire [5]byte
	h.Encode(wire[:])
	wire[2] ^= 0x08 // one bit flipped in flight

	var got atm.Header
	corrected, err := got.Decode(wire[:], atm.UNI)
	fmt.Println(got.VCI, corrected, err)
	// Output:
	// 100 true <nil>
}
