package atm

// Pool recycles Cell values so the simulated per-cell fast paths do not
// allocate.  It is a plain free list rather than sync.Pool: the simulator is
// single-goroutine by design, and a deterministic free list keeps benchmark
// numbers stable.
type Pool struct {
	free []*Cell

	// Accounting, useful in tests to prove the hot path recycles.
	gets, puts, news uint64
}

// NewPool returns a pool pre-populated with n cells.
func NewPool(n int) *Pool {
	p := &Pool{free: make([]*Cell, 0, n)}
	for i := 0; i < n; i++ {
		p.free = append(p.free, new(Cell))
	}
	return p
}

// Get returns a cell, reusing a recycled one when available. The cell's
// header is zeroed; the payload is left dirty (callers overwrite it).
func (p *Pool) Get() *Cell {
	p.gets++
	n := len(p.free)
	if n == 0 {
		p.news++
		return new(Cell)
	}
	c := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	c.Header = Header{}
	return c
}

// Put returns a cell to the pool. Putting nil is a no-op.
func (p *Pool) Put(c *Cell) {
	if c == nil {
		return
	}
	p.puts++
	p.free = append(p.free, c)
}

// Stats reports cumulative gets, puts and fresh allocations.
func (p *Pool) Stats() (gets, puts, news uint64) { return p.gets, p.puts, p.news }
