package aal

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/atm"
)

// cellsOf segments an SDU with the given MID and returns the cell payloads.
func cellsOf(t *testing.T, mid uint16, sdu []byte) [][atm.PayloadSize]byte {
	t.Helper()
	seg := NewSegmenter34()
	seg.MID = mid
	n, err := seg.Begin(sdu)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][atm.PayloadSize]byte, n)
	for i := 0; i < n; i++ {
		if _, _, err := seg.Next(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestMIDInterleavedFramesReassemble(t *testing.T) {
	// Three senders interleave cell-by-cell on one VC.
	m := NewMIDReassembler34(0, 0)
	sdus := map[uint16][]byte{
		1:   patterned(1000),
		2:   patterned(2000),
		513: patterned(500), // exercises the 2-bit high MID field
	}
	streams := map[uint16][][atm.PayloadSize]byte{}
	maxLen := 0
	for mid, sdu := range sdus {
		streams[mid] = cellsOf(t, mid, sdu)
		if len(streams[mid]) > maxLen {
			maxLen = len(streams[mid])
		}
	}
	got := map[uint16][]byte{}
	// Round-robin the streams cell by cell.
	for i := 0; i < maxLen; i++ {
		for mid := range streams {
			if i < len(streams[mid]) {
				cell := streams[mid][i]
				gotMID, res, err := m.Push(&cell, atm.PTUser0)
				if err != nil {
					t.Fatalf("mid %d cell %d: %v", mid, i, err)
				}
				if gotMID != mid {
					t.Fatalf("MID parsed as %d, want %d", gotMID, mid)
				}
				if res != nil {
					got[mid] = res.SDU
				}
			}
		}
	}
	for mid, sdu := range sdus {
		if !bytes.Equal(got[mid], sdu) {
			t.Fatalf("MID %d frame corrupted or missing", mid)
		}
	}
	if m.ActiveMIDs() != 0 {
		t.Fatalf("%d streams leaked", m.ActiveMIDs())
	}
}

func TestMIDLimitEnforced(t *testing.T) {
	m := NewMIDReassembler34(0, 2)
	// Start two frames (BOMs only).
	for mid := uint16(1); mid <= 2; mid++ {
		cells := cellsOf(t, mid, patterned(500))
		if _, _, err := m.Push(&cells[0], atm.PTUser0); err != nil {
			t.Fatal(err)
		}
	}
	cells := cellsOf(t, 3, patterned(500))
	if _, _, err := m.Push(&cells[0], atm.PTUser0); !errors.Is(err, ErrTooManyMIDs) {
		t.Fatalf("err = %v, want ErrTooManyMIDs", err)
	}
	if m.ActiveMIDs() != 2 {
		t.Fatalf("active = %d", m.ActiveMIDs())
	}
}

func TestMIDStateReclaimedOnError(t *testing.T) {
	m := NewMIDReassembler34(0, 4)
	cells := cellsOf(t, 7, patterned(300)) // BOM + COMs + EOM
	m.Push(&cells[0], atm.PTUser0)
	// Skip cell 1: SN gap kills the frame at cell 2.
	_, _, err := m.Push(&cells[2], atm.PTUser0)
	if !errors.Is(err, ErrLostCell) {
		t.Fatalf("err = %v", err)
	}
	if m.ActiveMIDs() != 0 {
		t.Fatal("dead stream not reclaimed")
	}
}

func TestMIDAbortClearsAll(t *testing.T) {
	m := NewMIDReassembler34(0, 8)
	for mid := uint16(1); mid <= 3; mid++ {
		cells := cellsOf(t, mid, patterned(500))
		m.Push(&cells[0], atm.PTUser0)
	}
	if m.ActiveMIDs() != 3 {
		t.Fatalf("active = %d", m.ActiveMIDs())
	}
	m.Abort()
	if m.ActiveMIDs() != 0 {
		t.Fatal("abort left streams")
	}
}

func TestMIDSingleStreamMatchesPlainReassembler(t *testing.T) {
	// With one MID the wrapper must behave exactly like Reassembler34.
	m := NewMIDReassembler34(0, 0)
	sdu := patterned(3000)
	for _, cell := range cellsOf(t, 42, sdu) {
		cell := cell
		_, res, err := m.Push(&cell, atm.PTUser0)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil && !bytes.Equal(res.SDU, sdu) {
			t.Fatal("SDU corrupted")
		}
	}
}
