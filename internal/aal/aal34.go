package aal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/crc"
	"repro/internal/metrics"
)

// AAL3/4 wire format (I.363.3).
//
// Each cell carries a SAR-PDU filling the entire 48-byte payload:
//
//	ST (2 bits) | SN (4 bits) | MID (10 bits) | payload (44) | LI (6 bits) | CRC-10 (10 bits)
//
// The CPCS-PDU inside those 44-byte payloads is:
//
//	CPI (1) | BTag (1) | BASize (2) || SDU || pad to 4n || AL (1) | ETag (1) | Length (2)
//
// Compared with AAL5 this costs 4 bytes of every cell plus 8 bytes of
// envelope — the per-cell tax the efficiency experiments quantify — but it
// detects cell loss immediately via the 4-bit sequence number rather than at
// frame end, and the MID field can multiplex frames on one VC (not modelled
// here; the interface uses one frame at a time per VC, as the Bellcore board
// did).

// Segment types.
const (
	stCOM = 0b00 // continuation of message
	stEOM = 0b01 // end of message
	stBOM = 0b10 // beginning of message
	stSSM = 0b11 // single-segment message
)

const (
	sarHeaderSize  = 2
	sarTrailerSize = 2
	sarPayload     = 44 // == atm.PayloadSize - sarHeaderSize - sarTrailerSize
	cpcsEnvelope   = 8  // 4-byte header + 4-byte trailer
)

// Segmenter34 segments CPCS-SDUs per AAL3/4.
type Segmenter34 struct {
	// MID is the multiplexing identifier stamped on every cell of every
	// frame. Zero is fine for a single-frame-per-VC interface.
	MID uint16

	cpcs   []byte // CPCS-PDU being drained (header+SDU+pad+trailer)
	off    int
	sn     uint8 // next sequence number, mod 16
	btag   uint8 // next frame's BTag/ETag value
	active bool
}

// NewSegmenter34 returns an AAL3/4 segmenter.
func NewSegmenter34() *Segmenter34 { return &Segmenter34{} }

// Type implements Segmenter.
func (s *Segmenter34) Type() Type { return AAL34 }

// CellsForSDU34 returns the cells an n-byte SDU occupies under AAL3/4:
// the CPCS envelope plus padding, split into 44-byte SAR payloads.
func CellsForSDU34(n int) int {
	padded := (n + 3) &^ 3
	total := padded + cpcsEnvelope
	return (total + sarPayload - 1) / sarPayload
}

// Begin implements Segmenter.
func (s *Segmenter34) Begin(sdu []byte) (int, error) {
	if len(sdu) == 0 {
		return 0, ErrEmptySDU
	}
	if len(sdu) > MaxSDU {
		return 0, ErrSDUTooLarge
	}
	padded := (len(sdu) + 3) &^ 3
	total := padded + cpcsEnvelope
	// Build the CPCS-PDU. This buffer is reused across frames.
	if cap(s.cpcs) < total {
		s.cpcs = make([]byte, total)
	}
	s.cpcs = s.cpcs[:total]
	s.cpcs[0] = 0      // CPI
	s.cpcs[1] = s.btag // BTag
	// BASize is the receiver's buffer-allocation hint; for unbuffered
	// message-mode service it equals the SDU length (I.363.3 §
	// allows BASize >= Length; using Length exactly also keeps 65535-byte
	// SDUs encodable, where the padded size would overflow the field).
	binary.BigEndian.PutUint16(s.cpcs[2:4], uint16(len(sdu)))
	copy(s.cpcs[4:], sdu)
	for i := 4 + len(sdu); i < 4+padded; i++ {
		s.cpcs[i] = 0
	}
	s.cpcs[total-4] = 0      // AL (alignment)
	s.cpcs[total-3] = s.btag // ETag
	binary.BigEndian.PutUint16(s.cpcs[total-2:], uint16(len(sdu)))
	s.btag++
	s.off = 0
	s.active = true
	return CellsForSDU34(len(sdu)), nil
}

// Next implements Segmenter.
func (s *Segmenter34) Next(payload *[atm.PayloadSize]byte) (atm.PT, bool, error) {
	if !s.active {
		return 0, false, ErrNoFrame
	}
	remaining := len(s.cpcs) - s.off
	var st uint8
	switch {
	case s.off == 0 && remaining <= sarPayload:
		st = stSSM
	case s.off == 0:
		st = stBOM
	case remaining <= sarPayload:
		st = stEOM
	default:
		st = stCOM
	}
	n := remaining
	if n > sarPayload {
		n = sarPayload
	}
	payload[0] = st<<6 | (s.sn&0xf)<<2 | byte(s.MID>>8&0x3)
	payload[1] = byte(s.MID)
	s.sn = (s.sn + 1) & 0xf
	copy(payload[2:2+n], s.cpcs[s.off:s.off+n])
	for i := 2 + n; i < 2+sarPayload; i++ {
		payload[i] = 0
	}
	s.off += n
	// LI occupies the top 6 bits of byte 46; CRC-10 fills the low 10
	// bits of bytes 46..47.
	payload[46] = byte(n) << 2
	payload[47] = 0
	crc.CRC10Fill(payload[:])
	done := s.off == len(s.cpcs)
	if done {
		s.active = false
	}
	// AAL3/4 does not use the PT AAU bit; frame boundaries live in ST.
	return atm.PTUser0, done, nil
}

// Reassembler34 reassembles AAL3/4 frames, checking per-cell CRC-10 and
// sequence-number continuity so that cell loss is detected at the cell where
// it happens rather than at frame end.
type Reassembler34 struct {
	buf      []byte
	maxFrame int
	expectSN uint8
	inFrame  bool
	cells    int
	vst      *metrics.VCStats
	pool     *bufpool.Pool
	clock    func() int64 // nil = no staleness tracking
	lastPush int64
}

// SetVCStats attaches the connection's telemetry row; per-cell CRC-10
// failures, sequence-detected cell losses and CPCS envelope mismatches are
// then counted inline as the reassembler detects them.
func (r *Reassembler34) SetVCStats(s *metrics.VCStats) { r.vst = s }

// SetPool draws reassembled SDUs from p instead of the heap. Ownership of
// each Result.SDU transfers to the consumer, which should Put it back once
// the frame has been delivered; a nil pool restores plain allocation.
func (r *Reassembler34) SetPool(p *bufpool.Pool) { r.pool = p }

// SetClock implements StaleReaper.
func (r *Reassembler34) SetClock(now func() int64) { r.clock = now }

// Busy implements StaleReaper.
func (r *Reassembler34) Busy() bool { return r.inFrame }

// ExpireStale implements StaleReaper: a partial frame whose last cell
// arrived at or before olderThan is aborted and counted as a reassembly
// timeout.
func (r *Reassembler34) ExpireStale(olderThan int64) int {
	if !r.inFrame || r.lastPush > olderThan {
		return 0
	}
	r.Abort()
	r.vst.IncReassemblyTimeout()
	r.vst.Drop(metrics.DropReassemblyTimeout)
	return 1
}

// NewReassembler34 returns an AAL3/4 reassembler with the given frame-buffer
// bound in bytes (0 selects the maximum legal frame).
func NewReassembler34(maxFrame int) *Reassembler34 {
	if maxFrame <= 0 {
		maxFrame = MaxSDU + cpcsEnvelope + sarPayload + 4
	}
	return &Reassembler34{buf: make([]byte, 0, maxFrame), maxFrame: maxFrame}
}

// Type implements Reassembler.
func (r *Reassembler34) Type() Type { return AAL34 }

// Abort implements Reassembler.
func (r *Reassembler34) Abort() {
	r.buf = r.buf[:0]
	r.inFrame = false
	r.cells = 0
}

// Push implements Reassembler.
func (r *Reassembler34) Push(payload *[atm.PayloadSize]byte, pt atm.PT) (*Result, error) {
	if !pt.User() {
		return nil, ErrBadSegType
	}
	if r.clock != nil {
		r.lastPush = r.clock()
	}
	if !crc.CRC10Check(payload[:]) {
		// Corrupt SAR-PDU: an isolated bad cell costs only itself, but
		// one arriving mid-frame kills the whole frame in progress — the
		// distinction the per-VC stats keep.
		if r.inFrame {
			r.vst.IncMidFrameKill()
		}
		r.Abort()
		r.vst.IncCRCError()
		return nil, ErrBadCellCRC
	}
	st := payload[0] >> 6
	sn := payload[0] >> 2 & 0xf
	li := int(payload[46] >> 2)
	if li > sarPayload {
		r.Abort()
		r.vst.IncLengthError()
		return nil, fmt.Errorf("%w: LI %d", ErrBadLength, li)
	}

	switch st {
	case stBOM, stSSM:
		if r.inFrame {
			// New beginning mid-frame means we lost the previous EOM.
			r.Abort()
			r.vst.IncLostCells()
			r.startFrame(sn, payload, li)
			if st == stSSM {
				res, err := r.finish()
				if err != nil {
					return nil, err
				}
				return res, ErrLostCell
			}
			return nil, ErrLostCell
		}
		r.startFrame(sn, payload, li)
		if st == stSSM {
			return r.finish()
		}
		return nil, nil
	case stCOM, stEOM:
		if !r.inFrame {
			return nil, ErrNoFrame
		}
		if sn != r.expectSN {
			r.Abort()
			r.vst.IncLostCells()
			return nil, ErrLostCell
		}
		if len(r.buf)+li > r.maxFrame {
			r.Abort()
			return nil, ErrFrameTooLong
		}
		r.buf = append(r.buf, payload[2:2+li]...)
		r.expectSN = (sn + 1) & 0xf
		r.cells++
		if st == stEOM {
			return r.finish()
		}
		return nil, nil
	default:
		panic("unreachable: 2-bit segment type")
	}
}

func (r *Reassembler34) startFrame(sn uint8, payload *[atm.PayloadSize]byte, li int) {
	r.inFrame = true
	r.expectSN = (sn + 1) & 0xf
	r.buf = append(r.buf[:0], payload[2:2+li]...)
	r.cells = 1
}

// finish validates the CPCS envelope and extracts the SDU.
func (r *Reassembler34) finish() (*Result, error) {
	defer r.Abort()
	b := r.buf
	if len(b) < cpcsEnvelope {
		r.vst.IncLengthError()
		return nil, ErrBadLength
	}
	btag := b[1]
	baSize := int(binary.BigEndian.Uint16(b[2:4]))
	etag := b[len(b)-3]
	length := int(binary.BigEndian.Uint16(b[len(b)-2:]))
	if btag != etag {
		r.vst.IncLengthError()
		return nil, fmt.Errorf("%w: BTag %d ETag %d", ErrBadTag, btag, etag)
	}
	padded := len(b) - cpcsEnvelope
	if baSize != length {
		r.vst.IncLengthError()
		return nil, fmt.Errorf("%w: BASize %d, Length %d", ErrBadLength, baSize, length)
	}
	if length > padded || padded-length > 3 {
		r.vst.IncLengthError()
		return nil, fmt.Errorf("%w: Length %d, padded payload %d", ErrBadLength, length, padded)
	}
	sdu := r.pool.Get(length)
	copy(sdu, b[4:4+length])
	return &Result{SDU: sdu, Cells: r.cells}, nil
}
