package aal_test

import (
	"bytes"
	"fmt"

	"repro/internal/aal"
	"repro/internal/atm"
)

// Segmenting an SDU into cells and reassembling it, AAL5 style.
func ExampleNew() {
	seg, ras := aal.New(aal.AAL5, 0)
	sdu := bytes.Repeat([]byte("atm!"), 100) // 400 bytes

	cells, err := seg.Begin(sdu)
	if err != nil {
		panic(err)
	}
	fmt.Printf("SDU of %d bytes -> %d cells\n", len(sdu), cells)

	var result *aal.Result
	for i := 0; i < cells; i++ {
		var payload [atm.PayloadSize]byte
		pt, _, err := seg.Next(&payload)
		if err != nil {
			panic(err)
		}
		if result, err = ras.Push(&payload, pt); err != nil {
			panic(err)
		}
	}
	fmt.Printf("reassembled %d bytes, intact: %v\n",
		len(result.SDU), bytes.Equal(result.SDU, sdu))
	// Output:
	// SDU of 400 bytes -> 9 cells
	// reassembled 400 bytes, intact: true
}

// AAL1 carries a constant-bit-rate stream, concealing losses as silence so
// the circuit clock never slips.
func ExampleAAL1Receiver() {
	tx := aal.NewAAL1Sender()
	rx := aal.NewAAL1Receiver()
	tx.Write(make([]byte, 47*4)) // four cells of "voice"

	var p [atm.PayloadSize]byte
	for i := 0; tx.NextCell(&p); i++ {
		if i == 2 {
			continue // cell lost in the network
		}
		rx.Push(&p)
	}
	fmt.Printf("cells lost %d, stream bytes %d (clock preserved)\n",
		rx.LostCells, rx.Pending())
	// Output:
	// cells lost 1, stream bytes 188 (clock preserved)
}
