package aal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/atm"
)

func TestAAL1HeaderCodec(t *testing.T) {
	for _, csi := range []bool{false, true} {
		for sc := uint8(0); sc < 8; sc++ {
			b := aal1Header(csi, sc)
			gotCSI, gotSC, err := parseAAL1Header(b)
			if err != nil {
				t.Fatalf("csi=%v sc=%d: %v", csi, sc, err)
			}
			if gotCSI != csi || gotSC != sc {
				t.Fatalf("round trip: (%v,%d) -> (%v,%d)", csi, sc, gotCSI, gotSC)
			}
		}
	}
}

func TestAAL1HeaderDetectsEverySingleBitError(t *testing.T) {
	// CRC-3 + parity over 8 bits must catch any single-bit flip.
	for sc := uint8(0); sc < 8; sc++ {
		b := aal1Header(false, sc)
		for bit := 0; bit < 8; bit++ {
			if _, _, err := parseAAL1Header(b ^ 1<<bit); err == nil {
				t.Fatalf("sc=%d bit=%d flip passed", sc, bit)
			}
		}
	}
}

func streamBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*17 + 3)
	}
	return b
}

func TestAAL1StreamRoundTrip(t *testing.T) {
	tx := NewAAL1Sender()
	rx := NewAAL1Receiver()
	stream := streamBytes(47 * 40)
	tx.Write(stream)
	var p [atm.PayloadSize]byte
	for tx.NextCell(&p) {
		if err := rx.Push(&p); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(stream))
	if n := rx.Read(got); n != len(stream) {
		t.Fatalf("read %d of %d", n, len(stream))
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("stream corrupted")
	}
	if tx.Buffered() != 0 || rx.Pending() != 0 {
		t.Fatal("residue left")
	}
}

func TestAAL1UnderrunReportsFalse(t *testing.T) {
	tx := NewAAL1Sender()
	tx.Write(make([]byte, 46))
	var p [atm.PayloadSize]byte
	if tx.NextCell(&p) {
		t.Fatal("cell produced from 46 bytes")
	}
}

func TestAAL1LossDetectedAndConcealed(t *testing.T) {
	tx := NewAAL1Sender()
	rx := NewAAL1Receiver()
	tx.Write(streamBytes(47 * 10))
	var cells [][atm.PayloadSize]byte
	var p [atm.PayloadSize]byte
	for tx.NextCell(&p) {
		cells = append(cells, p)
	}
	var lossErr error
	for i := range cells {
		if i == 4 || i == 5 {
			continue // two consecutive cells lost
		}
		if err := rx.Push(&cells[i]); err != nil {
			lossErr = err
		}
	}
	if !errors.Is(lossErr, ErrAAL1Loss) {
		t.Fatalf("err = %v, want ErrAAL1Loss", lossErr)
	}
	if rx.LostCells != 2 {
		t.Fatalf("LostCells = %d, want 2", rx.LostCells)
	}
	// The reproduced stream keeps its length: silence fills the hole.
	if rx.Pending() != 47*10 {
		t.Fatalf("pending %d, want %d (timing preserved)", rx.Pending(), 47*10)
	}
	got := make([]byte, rx.Pending())
	rx.Read(got)
	want := streamBytes(47 * 10)
	// Before the hole and after it, bytes match; inside, zeros.
	if !bytes.Equal(got[:4*47], want[:4*47]) {
		t.Fatal("pre-gap bytes corrupted")
	}
	for _, b := range got[4*47 : 6*47] {
		if b != 0 {
			t.Fatal("hole not silence-filled")
		}
	}
	if !bytes.Equal(got[6*47:], want[6*47:]) {
		t.Fatal("post-gap bytes corrupted")
	}
}

func TestAAL1MisinsertionDropped(t *testing.T) {
	tx := NewAAL1Sender()
	rx := NewAAL1Receiver()
	tx.Write(streamBytes(47 * 3))
	var a, b, c [atm.PayloadSize]byte
	tx.NextCell(&a)
	tx.NextCell(&b)
	tx.NextCell(&c)
	rx.Push(&a)
	rx.Push(&b)
	// Duplicate of b arrives (sc one behind): misinsertion, dropped.
	dup := b
	if err := rx.Push(&dup); !errors.Is(err, ErrAAL1Misinsert) {
		t.Fatalf("err = %v, want ErrAAL1Misinsert", err)
	}
	if err := rx.Push(&c); err != nil {
		t.Fatalf("stream did not continue after misinsertion: %v", err)
	}
	if rx.Pending() != 47*3 {
		t.Fatalf("pending %d", rx.Pending())
	}
}

func TestAAL1CorruptHeaderConcealed(t *testing.T) {
	tx := NewAAL1Sender()
	rx := NewAAL1Receiver()
	tx.Write(streamBytes(47 * 3))
	var p [atm.PayloadSize]byte
	for i := 0; i < 3; i++ {
		tx.NextCell(&p)
		if i == 1 {
			p[0] ^= 0x10 // damage the SC field
		}
		err := rx.Push(&p)
		if i == 1 && !errors.Is(err, ErrAAL1BadHeader) {
			t.Fatalf("err = %v, want ErrAAL1BadHeader", err)
		}
	}
	if rx.BadHeader != 1 {
		t.Fatalf("BadHeader = %d", rx.BadHeader)
	}
	// Length preserved: the damaged cell became silence.
	if rx.Pending() != 47*3 {
		t.Fatalf("pending %d, want %d", rx.Pending(), 47*3)
	}
}

// Property: for any loss pattern with gaps <= 6 consecutive cells, the
// reproduced stream has exactly the original length (clock preservation).
func TestPropertyAAL1ClockPreservation(t *testing.T) {
	f := func(lossMask []bool) bool {
		n := 60
		tx := NewAAL1Sender()
		rx := NewAAL1Receiver()
		tx.Write(streamBytes(47 * n))
		var p [atm.PayloadSize]byte
		consec := 0
		delivered := false
		for i := 0; i < n; i++ {
			if !tx.NextCell(&p) {
				return false
			}
			lose := i < len(lossMask) && lossMask[i] && consec < 6 && delivered
			if lose {
				consec++
				continue
			}
			consec = 0
			delivered = true
			rx.Push(&p)
		}
		return rx.Pending() == 47*n || !delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAAL1Stream(b *testing.B) {
	tx := NewAAL1Sender()
	rx := NewAAL1Receiver()
	chunk := streamBytes(47 * 100)
	var p [atm.PayloadSize]byte
	buf := make([]byte, len(chunk))
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx.Write(chunk)
		for tx.NextCell(&p) {
			rx.Push(&p)
		}
		rx.Read(buf)
	}
}
