package aal

import (
	"encoding/binary"

	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/crc"
	"repro/internal/metrics"
	"repro/internal/units"
)

// AAL5 CPCS-PDU layout (I.363.5): the SDU, zero padding to fill the final
// cell, then an 8-byte trailer in the last 8 bytes of the last cell:
//
//	CPCS-UU (1) | CPI (1) | Length (2, big-endian) | CRC-32 (4)
//
// Frame boundaries ride in the ATM header's PT AAU bit, so AAL5 spends no
// per-cell overhead at all — the efficiency argument that won it the fight.
const (
	trailerSize = 8
)

// Segmenter5 segments CPCS-SDUs per AAL5. The zero value is not ready;
// use NewSegmenter5.
type Segmenter5 struct {
	sdu     []byte
	off     int
	cells   int // remaining cells including the trailer cell
	crcReg  uint32
	trailer [trailerSize]byte
	active  bool
}

// NewSegmenter5 returns an AAL5 segmenter.
func NewSegmenter5() *Segmenter5 { return &Segmenter5{} }

// Type implements Segmenter.
func (s *Segmenter5) Type() Type { return AAL5 }

// CellsForSDU5 returns the number of cells an n-byte SDU occupies under
// AAL5: payload plus 8-byte trailer, padded to a multiple of 48.
func CellsForSDU5(n int) int {
	return units.CellsForPayload(n+trailerSize, atm.PayloadSize)
}

// Begin implements Segmenter.
func (s *Segmenter5) Begin(sdu []byte) (int, error) {
	if len(sdu) == 0 {
		return 0, ErrEmptySDU
	}
	if len(sdu) > MaxSDU {
		return 0, ErrSDUTooLarge
	}
	s.sdu = sdu
	s.off = 0
	s.cells = CellsForSDU5(len(sdu))
	s.crcReg = 0xffff_ffff
	s.active = true
	// Build the trailer now except for the CRC, which folds in cell by
	// cell — mirroring the hardware CRC unit that watches the byte
	// stream as the DMA engine feeds it.
	s.trailer[0] = 0 // CPCS-UU: transparent, unused by the interface
	s.trailer[1] = 0 // CPI: must be zero per I.363.5
	binary.BigEndian.PutUint16(s.trailer[2:4], uint16(len(sdu)))
	return s.cells, nil
}

// Next implements Segmenter.
func (s *Segmenter5) Next(payload *[atm.PayloadSize]byte) (atm.PT, bool, error) {
	if !s.active {
		return 0, false, ErrNoFrame
	}
	last := s.cells == 1
	n := copy(payload[:], s.sdu[s.off:])
	s.off += n
	if !last {
		// A full middle cell. (A non-final cell is always full: padding
		// only ever appears in the last cell.)
		s.crcReg = crc.CRC32Update(s.crcReg, payload[:])
		s.cells--
		return atm.PTUser0, false, nil
	}
	// Final cell: pad, then place the trailer in the last 8 bytes.
	for i := n; i < atm.PayloadSize; i++ {
		payload[i] = 0
	}
	// CRC covers SDU + pad + UU/CPI/Length, then the CRC itself lands in
	// the final 4 bytes.
	copy(payload[atm.PayloadSize-trailerSize:], s.trailer[:4])
	s.crcReg = crc.CRC32Update(s.crcReg, payload[:atm.PayloadSize-4])
	binary.BigEndian.PutUint32(payload[atm.PayloadSize-4:], s.crcReg^0xffff_ffff)
	s.cells = 0
	s.active = false
	s.sdu = nil
	return atm.PTUserEnd, true, nil
}

// Reassembler5 reassembles AAL5 CPCS-PDUs from in-order cell payloads.
type Reassembler5 struct {
	buf      []byte
	maxFrame int
	crcReg   uint32
	cells    int
	active   bool
	vst      *metrics.VCStats
	pool     *bufpool.Pool
	clock    func() int64 // nil = no staleness tracking
	lastPush int64
}

// SetVCStats attaches the connection's telemetry row; CRC and length
// failures are then counted inline as the reassembler detects them.
func (r *Reassembler5) SetVCStats(s *metrics.VCStats) { r.vst = s }

// SetPool draws reassembled SDUs from p instead of the heap. Ownership of
// each Result.SDU transfers to the consumer, which should Put it back once
// the frame has been delivered; a nil pool restores plain allocation.
func (r *Reassembler5) SetPool(p *bufpool.Pool) { r.pool = p }

// SetClock implements StaleReaper.
func (r *Reassembler5) SetClock(now func() int64) { r.clock = now }

// Busy implements StaleReaper.
func (r *Reassembler5) Busy() bool { return r.active }

// ExpireStale implements StaleReaper: a partial frame whose last cell
// arrived at or before olderThan is aborted and counted as a reassembly
// timeout. This is how an AAL5 frame whose end-of-frame cell died on a
// failed link stops holding its buffer forever.
func (r *Reassembler5) ExpireStale(olderThan int64) int {
	if !r.active || r.lastPush > olderThan {
		return 0
	}
	r.Abort()
	r.vst.IncReassemblyTimeout()
	r.vst.Drop(metrics.DropReassemblyTimeout)
	return 1
}

// NewReassembler5 returns an AAL5 reassembler whose frame buffer holds up to
// maxFrame bytes (0 selects the maximum legal frame).
func NewReassembler5(maxFrame int) *Reassembler5 {
	if maxFrame <= 0 {
		maxFrame = MaxSDU + trailerSize + atm.PayloadSize
	}
	return &Reassembler5{buf: make([]byte, 0, maxFrame), maxFrame: maxFrame}
}

// Type implements Reassembler.
func (r *Reassembler5) Type() Type { return AAL5 }

// Abort implements Reassembler.
func (r *Reassembler5) Abort() {
	r.buf = r.buf[:0]
	r.active = false
	r.cells = 0
}

// Push implements Reassembler.
//
// AAL5 has no per-cell sequence numbers: a lost cell is only discovered at
// the end of the frame when the CRC-32 fails (or the length field disagrees)
// — the whole-frame-discard behaviour experiment E8 measures.
func (r *Reassembler5) Push(payload *[atm.PayloadSize]byte, pt atm.PT) (*Result, error) {
	if !pt.User() {
		return nil, ErrBadSegType
	}
	if r.clock != nil {
		r.lastPush = r.clock()
	}
	if len(r.buf)+atm.PayloadSize > r.maxFrame+atm.PayloadSize {
		// Frame has outgrown the buffer: a lost end-of-frame cell has
		// merged two frames. Drop everything accumulated; the current
		// cell begins no recoverable frame either.
		r.Abort()
		r.vst.IncLostCells()
		return nil, ErrFrameTooLong
	}
	if !r.active {
		r.active = true
		r.crcReg = 0xffff_ffff
		r.cells = 0
	}
	r.buf = append(r.buf, payload[:]...)
	r.cells++
	if !pt.EndOfFrame() {
		r.crcReg = crc.CRC32Update(r.crcReg, payload[:])
		return nil, nil
	}
	// Last cell: verify trailer.
	n := len(r.buf)
	r.crcReg = crc.CRC32Update(r.crcReg, r.buf[n-atm.PayloadSize:n-4])
	wantCRC := binary.BigEndian.Uint32(r.buf[n-4:])
	gotCRC := r.crcReg ^ 0xffff_ffff
	length := int(binary.BigEndian.Uint16(r.buf[n-6 : n-4]))
	cells := r.cells
	defer r.Abort()
	if gotCRC != wantCRC {
		r.vst.IncCRCError()
		return nil, ErrBadCRC
	}
	if length == 0 || length > n-trailerSize || n-(length+trailerSize) >= atm.PayloadSize {
		// Length must fit in the frame and the pad must be < one cell.
		r.vst.IncLengthError()
		return nil, ErrBadLength
	}
	sdu := r.pool.Get(length)
	copy(sdu, r.buf[:length])
	return &Result{SDU: sdu, Cells: cells}, nil
}
