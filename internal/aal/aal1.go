package aal

import (
	"errors"
	"fmt"

	"repro/internal/atm"
)

// AAL1 (I.363.1) is the constant-bit-rate adaptation layer: circuit
// emulation, uncompressed voice and video. Each cell spends exactly one
// header byte:
//
//	CSI (1 bit) | SC (3-bit sequence count) | CRC-3 | even parity
//
// and carries 47 payload bytes. There is no frame structure and no
// retransmission — the receiver's only defenses are the 3-bit sequence
// count (detects up to 7 consecutive lost cells) and the CRC-3+parity that
// protects the count itself against misinterpreting corruption as loss.
//
// This implementation is the unstructured data-transfer mode as a stream
// codec: the Sender produces cells from a byte stream, the Receiver emits
// the byte stream plus loss reports. It deliberately does not implement the
// Segmenter/Reassembler frame interfaces — AAL1 has no frames, and forcing
// it into that shape would misrepresent the protocol.

// AAL1Payload is the per-cell payload under AAL1.
const AAL1Payload = 47

// Errors.
var (
	ErrAAL1BadHeader = errors.New("aal: AAL1 header fails CRC/parity")
	ErrAAL1Loss      = errors.New("aal: AAL1 sequence gap (cells lost)")
	ErrAAL1Misinsert = errors.New("aal: AAL1 sequence count repeated (misinserted cell)")
)

// crc3 computes the 3-bit CRC (generator x³+x+1) over the 4 bits CSI|SC,
// processed MSB-first.
func crc3(nibble uint8) uint8 {
	reg := uint8(0)
	for i := 3; i >= 0; i-- {
		bit := (nibble >> i) & 1
		top := (reg >> 2) & 1
		reg = (reg << 1) & 0x7
		if top^bit != 0 {
			reg ^= 0x3 // x+1 taps
		}
	}
	return reg
}

// parity returns the even-parity bit over the 7 MSBs of the header byte.
func parity(b uint8) uint8 {
	b >>= 1
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	return b & 1
}

// aal1Header builds the SAR header byte for (csi, sc).
func aal1Header(csi bool, sc uint8) uint8 {
	var b uint8
	if csi {
		b |= 0x80
	}
	b |= (sc & 0x7) << 4
	b |= crc3(b>>4) << 1
	b |= parity(b)
	return b
}

// parseAAL1Header validates and splits the header byte.
func parseAAL1Header(b uint8) (csi bool, sc uint8, err error) {
	if parity(b) != b&1 {
		return false, 0, ErrAAL1BadHeader
	}
	if crc3(b>>4) != (b>>1)&0x7 {
		return false, 0, ErrAAL1BadHeader
	}
	return b&0x80 != 0, (b >> 4) & 0x7, nil
}

// AAL1Sender produces cells from a CBR byte stream.
type AAL1Sender struct {
	sc  uint8
	buf []byte
}

// NewAAL1Sender returns a sender with sequence count 0.
func NewAAL1Sender() *AAL1Sender { return &AAL1Sender{} }

// Write appends stream bytes awaiting cellification.
func (s *AAL1Sender) Write(p []byte) {
	s.buf = append(s.buf, p...)
}

// Buffered returns bytes not yet emitted.
func (s *AAL1Sender) Buffered() int { return len(s.buf) }

// NextCell fills one cell payload from the stream. It returns false when
// fewer than 47 bytes are buffered (a CBR source never underruns; if it
// does, the circuit inserts conditioning, which the caller models).
func (s *AAL1Sender) NextCell(payload *[atm.PayloadSize]byte) bool {
	if len(s.buf) < AAL1Payload {
		return false
	}
	payload[0] = aal1Header(false, s.sc)
	copy(payload[1:], s.buf[:AAL1Payload])
	s.buf = s.buf[:copy(s.buf, s.buf[AAL1Payload:])]
	s.sc = (s.sc + 1) & 0x7
	return true
}

// AAL1Receiver consumes cells and reproduces the byte stream.
type AAL1Receiver struct {
	expect  uint8
	started bool
	out     []byte

	// Stats.
	Cells     uint64
	LostCells uint64 // inferred from sequence gaps
	BadHeader uint64
}

// NewAAL1Receiver returns a receiver that synchronizes to the first cell.
func NewAAL1Receiver() *AAL1Receiver { return &AAL1Receiver{} }

// Push consumes one cell payload. On a sequence gap it returns ErrAAL1Loss
// (wrapped with the inferred count) after inserting silence (zero bytes)
// for the missing cells — circuit emulation must keep the clock ticking.
func (r *AAL1Receiver) Push(payload *[atm.PayloadSize]byte) error {
	_, sc, err := parseAAL1Header(payload[0])
	if err != nil {
		r.BadHeader++
		// Header unusable: conceal the cell as silence and assume it was
		// the expected one, so an undamaged successor doesn't get double
		// counted as a sequence gap.
		r.out = append(r.out, make([]byte, AAL1Payload)...)
		if r.started {
			r.expect = (r.expect + 1) & 0x7
		}
		return err
	}
	r.Cells++
	if !r.started {
		r.started = true
		r.expect = (sc + 1) & 0x7
		r.out = append(r.out, payload[1:1+AAL1Payload]...)
		return nil
	}
	if sc != r.expect {
		gap := int(sc-r.expect) & 0x7
		if gap == 7 {
			// One step "backwards" is far more likely a misinserted
			// or duplicated cell than 7 losses; drop it.
			return ErrAAL1Misinsert
		}
		r.LostCells += uint64(gap)
		r.out = append(r.out, make([]byte, gap*AAL1Payload)...)
		r.out = append(r.out, payload[1:1+AAL1Payload]...)
		r.expect = (sc + 1) & 0x7
		return fmt.Errorf("%w: %d cells", ErrAAL1Loss, gap)
	}
	r.out = append(r.out, payload[1:1+AAL1Payload]...)
	r.expect = (sc + 1) & 0x7
	return nil
}

// Read drains up to len(p) reproduced stream bytes.
func (r *AAL1Receiver) Read(p []byte) int {
	n := copy(p, r.out)
	r.out = r.out[:copy(r.out, r.out[n:])]
	return n
}

// Pending returns reproduced bytes not yet read.
func (r *AAL1Receiver) Pending() int { return len(r.out) }
