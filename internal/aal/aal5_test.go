package aal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/atm"
)

// pump segments an SDU and feeds every cell straight into the reassembler,
// returning the reassembled result.
func pump(t *testing.T, seg Segmenter, ras Reassembler, sdu []byte) *Result {
	t.Helper()
	cells, err := seg.Begin(sdu)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	var res *Result
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		pt, done, err := seg.Next(&p)
		if err != nil {
			t.Fatalf("Next cell %d: %v", i, err)
		}
		if done != (i == cells-1) {
			t.Fatalf("cell %d: done=%v, want %v", i, done, i == cells-1)
		}
		r, err := ras.Push(&p, pt)
		if err != nil {
			t.Fatalf("Push cell %d: %v", i, err)
		}
		if r != nil {
			if i != cells-1 {
				t.Fatalf("frame completed early at cell %d of %d", i, cells)
			}
			res = r
		}
	}
	if res == nil {
		t.Fatal("frame never completed")
	}
	return res
}

func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + 7)
	}
	return b
}

func TestAAL5RoundTripSizes(t *testing.T) {
	seg, ras := New(AAL5, 0)
	for _, n := range []int{1, 39, 40, 41, 47, 48, 96, 100, 9180, 65535} {
		sdu := patterned(n)
		res := pump(t, seg, ras, sdu)
		if !bytes.Equal(res.SDU, sdu) {
			t.Fatalf("size %d: SDU corrupted in round trip", n)
		}
		if want := CellsForSDU5(n); res.Cells != want {
			t.Fatalf("size %d: %d cells, want %d", n, res.Cells, want)
		}
	}
}

func TestAAL5CellCounts(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1},      // 1+8=9 -> 1 cell
		{40, 1},     // 40+8=48 -> exactly 1
		{41, 2},     // 49 -> 2
		{88, 2},     // 96 -> 2
		{9180, 192}, // 9188 -> 192 cells (IP MTU)
		{65535, 1366},
	}
	for _, c := range cases {
		if got := CellsForSDU5(c.n); got != c.want {
			t.Errorf("CellsForSDU5(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAAL5TrailerLayout(t *testing.T) {
	seg := NewSegmenter5()
	sdu := patterned(40) // exactly one cell with trailer
	if _, err := seg.Begin(sdu); err != nil {
		t.Fatal(err)
	}
	var p [atm.PayloadSize]byte
	pt, done, err := seg.Next(&p)
	if err != nil || !done {
		t.Fatalf("Next: done=%v err=%v", done, err)
	}
	if pt != atm.PTUserEnd {
		t.Fatalf("final cell PT = %03b, want PTUserEnd", pt)
	}
	if p[40] != 0 || p[41] != 0 {
		t.Fatalf("UU/CPI = %x %x, want 0 0", p[40], p[41])
	}
	if got := int(p[42])<<8 | int(p[43]); got != 40 {
		t.Fatalf("Length field = %d, want 40", got)
	}
}

func TestAAL5MiddleCellsMarkedNotEnd(t *testing.T) {
	seg := NewSegmenter5()
	cells, err := seg.Begin(patterned(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		pt, done, err := seg.Next(&p)
		if err != nil {
			t.Fatal(err)
		}
		if i < cells-1 && (pt.EndOfFrame() || done) {
			t.Fatalf("cell %d marked end of frame", i)
		}
		if i == cells-1 && (!pt.EndOfFrame() || !done) {
			t.Fatalf("final cell not marked end of frame")
		}
	}
}

func TestAAL5EmptySDURejected(t *testing.T) {
	seg := NewSegmenter5()
	if _, err := seg.Begin(nil); !errors.Is(err, ErrEmptySDU) {
		t.Fatalf("err = %v, want ErrEmptySDU", err)
	}
}

func TestAAL5OversizeSDURejected(t *testing.T) {
	seg := NewSegmenter5()
	if _, err := seg.Begin(make([]byte, MaxSDU+1)); !errors.Is(err, ErrSDUTooLarge) {
		t.Fatalf("err = %v, want ErrSDUTooLarge", err)
	}
}

func TestAAL5NextWithoutBegin(t *testing.T) {
	seg := NewSegmenter5()
	var p [atm.PayloadSize]byte
	if _, _, err := seg.Next(&p); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("err = %v, want ErrNoFrame", err)
	}
}

func TestAAL5LostMiddleCellDetectedByCRC(t *testing.T) {
	seg := NewSegmenter5()
	ras := NewReassembler5(0)
	cells, err := seg.Begin(patterned(200)) // 5 cells
	if err != nil {
		t.Fatal(err)
	}
	dropped := 2
	var lastErr error
	var res *Result
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		pt, _, err := seg.Next(&p)
		if err != nil {
			t.Fatal(err)
		}
		if i == dropped {
			continue // cell lost in the network
		}
		res, lastErr = ras.Push(&p, pt)
	}
	if res != nil {
		t.Fatal("damaged frame delivered")
	}
	if !errors.Is(lastErr, ErrBadCRC) && !errors.Is(lastErr, ErrBadLength) {
		t.Fatalf("final err = %v, want CRC or length failure", lastErr)
	}
}

func TestAAL5CorruptedPayloadDetected(t *testing.T) {
	seg := NewSegmenter5()
	ras := NewReassembler5(0)
	cells, _ := seg.Begin(patterned(100))
	var lastErr error
	var res *Result
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		pt, _, _ := seg.Next(&p)
		if i == 0 {
			p[10] ^= 0xff
		}
		res, lastErr = ras.Push(&p, pt)
	}
	if res != nil {
		t.Fatal("corrupted frame delivered")
	}
	if !errors.Is(lastErr, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", lastErr)
	}
}

func TestAAL5LostEndCellMergesThenRecovers(t *testing.T) {
	seg := NewSegmenter5()
	ras := NewReassembler5(0)

	// Frame 1 loses its final (EOF) cell; frame 2 is then appended to the
	// same buffer. Its EOF cell triggers a CRC failure over the merged
	// mess — AAL5's documented failure mode — after which frame 3 must
	// pass cleanly.
	send := func(sdu []byte, dropLast bool) (*Result, error) {
		cells, err := seg.Begin(sdu)
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		var lastErr error
		for i := 0; i < cells; i++ {
			var p [atm.PayloadSize]byte
			pt, _, _ := seg.Next(&p)
			if dropLast && i == cells-1 {
				continue
			}
			r, err := ras.Push(&p, pt)
			if r != nil {
				res = r
			}
			if err != nil {
				lastErr = err
			}
		}
		return res, lastErr
	}

	if res, _ := send(patterned(150), true); res != nil {
		t.Fatal("truncated frame delivered")
	}
	res, err := send(patterned(90), false)
	if res != nil {
		t.Fatal("merged frame delivered")
	}
	if err == nil {
		t.Fatal("merged frame produced no error")
	}
	res, err = send(patterned(77), false)
	if err != nil || res == nil {
		t.Fatalf("recovery frame: res=%v err=%v", res, err)
	}
	if !bytes.Equal(res.SDU, patterned(77)) {
		t.Fatal("recovery frame corrupted")
	}
}

func TestAAL5OAMCellRejected(t *testing.T) {
	ras := NewReassembler5(0)
	var p [atm.PayloadSize]byte
	if _, err := ras.Push(&p, atm.PTOAMSegment); !errors.Is(err, ErrBadSegType) {
		t.Fatalf("err = %v, want ErrBadSegType", err)
	}
}

func TestAAL5FrameTooLong(t *testing.T) {
	ras := NewReassembler5(96) // room for two cells only
	var p [atm.PayloadSize]byte
	var sawErr error
	for i := 0; i < 5; i++ {
		_, err := ras.Push(&p, atm.PTUser0) // never an EOF
		if err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, ErrFrameTooLong) {
		t.Fatalf("err = %v, want ErrFrameTooLong", sawErr)
	}
}

func TestAAL5AbortDiscardsPartialFrame(t *testing.T) {
	seg := NewSegmenter5()
	ras := NewReassembler5(0)
	cells, _ := seg.Begin(patterned(200))
	var p [atm.PayloadSize]byte
	pt, _, _ := seg.Next(&p)
	if _, err := ras.Push(&p, pt); err != nil {
		t.Fatal(err)
	}
	ras.Abort()
	// Drain remaining cells of frame 1 into the void.
	for i := 1; i < cells; i++ {
		var q [atm.PayloadSize]byte
		seg.Next(&q)
	}
	// A fresh frame must reassemble fine.
	res := pump(t, seg, ras, patterned(60))
	if !bytes.Equal(res.SDU, patterned(60)) {
		t.Fatal("post-abort frame corrupted")
	}
}

// Property: AAL5 segment-then-reassemble is the identity for any SDU.
func TestPropertyAAL5RoundTrip(t *testing.T) {
	seg := NewSegmenter5()
	ras := NewReassembler5(0)
	f := func(sdu []byte) bool {
		if len(sdu) == 0 {
			return true
		}
		if len(sdu) > MaxSDU {
			sdu = sdu[:MaxSDU]
		}
		cells, err := seg.Begin(sdu)
		if err != nil {
			return false
		}
		var res *Result
		for i := 0; i < cells; i++ {
			var p [atm.PayloadSize]byte
			pt, _, err := seg.Next(&p)
			if err != nil {
				return false
			}
			r, err := ras.Push(&p, pt)
			if err != nil {
				return false
			}
			if r != nil {
				res = r
			}
		}
		return res != nil && bytes.Equal(res.SDU, sdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAAL5Segment9180(b *testing.B) {
	seg := NewSegmenter5()
	sdu := patterned(9180)
	var p [atm.PayloadSize]byte
	b.SetBytes(9180)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, err := seg.Begin(sdu)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < cells; j++ {
			if _, _, err := seg.Next(&p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAAL5RoundTrip9180(b *testing.B) {
	seg := NewSegmenter5()
	ras := NewReassembler5(0)
	sdu := patterned(9180)
	var p [atm.PayloadSize]byte
	b.SetBytes(9180)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, _ := seg.Begin(sdu)
		for j := 0; j < cells; j++ {
			pt, _, _ := seg.Next(&p)
			if _, err := ras.Push(&p, pt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestAAL5ReassemblyWithEFCIMarkedCells(t *testing.T) {
	// A congested switch sets the EFCI bit on user cells in flight
	// (PT 0b000→0b010, 0b001→0b011). The AAU bit is a separate PT bit, so
	// a marked end-of-frame cell must still terminate reassembly and a
	// marked middle cell must still be a middle cell.
	seg, ras := New(AAL5, 0)
	for _, n := range []int{1, 48, 100, 9180} {
		sdu := patterned(n)
		cells, err := seg.Begin(sdu)
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		var res *Result
		for i := 0; i < cells; i++ {
			var p [atm.PayloadSize]byte
			pt, _, err := seg.Next(&p)
			if err != nil {
				t.Fatalf("Next cell %d: %v", i, err)
			}
			pt |= atm.PTUserCongested // what Switch.enqueue does above the EFCI threshold
			if i == cells-1 && pt != atm.PTUserCongestedEnd {
				t.Fatalf("EOM cell marked to PT=%03b, want %03b", pt, atm.PTUserCongestedEnd)
			}
			r, err := ras.Push(&p, pt)
			if err != nil {
				t.Fatalf("Push cell %d (PT=%03b): %v", i, pt, err)
			}
			if r != nil && i != cells-1 {
				t.Fatalf("congestion bit terminated the frame early at cell %d of %d", i, cells)
			}
			if r != nil {
				res = r
			}
		}
		if res == nil {
			t.Fatalf("size %d: marked EOM cell did not terminate reassembly", n)
		}
		if !bytes.Equal(res.SDU, sdu) {
			t.Fatalf("size %d: SDU corrupted through EFCI-marked cells", n)
		}
	}
}
