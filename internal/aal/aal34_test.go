package aal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/atm"
	"repro/internal/crc"
)

func TestAAL34RoundTripSizes(t *testing.T) {
	seg, ras := New(AAL34, 0)
	for _, n := range []int{1, 3, 4, 35, 36, 37, 44, 80, 88, 9180, 65535} {
		sdu := patterned(n)
		res := pump(t, seg, ras, sdu)
		if !bytes.Equal(res.SDU, sdu) {
			t.Fatalf("size %d: SDU corrupted", n)
		}
		if want := CellsForSDU34(n); res.Cells != want {
			t.Fatalf("size %d: %d cells, want %d", n, res.Cells, want)
		}
	}
}

func TestAAL34CellCounts(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1},  // 4 padded + 8 = 12 -> 1 cell (SSM)
		{36, 1}, // 36+8=44 -> SSM exactly
		{37, 2}, // 40+8=48 -> BOM+EOM
		{9180, 209},
		{65535, 1490}, // 65536+8=65544 -> ceil(65544/44)=1490
	}
	for _, c := range cases {
		if got := CellsForSDU34(c.n); got != c.want {
			t.Errorf("CellsForSDU34(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAAL34OverheadExceedsAAL5(t *testing.T) {
	// The per-cell SAR tax: AAL3/4 always needs at least as many cells,
	// and strictly more for large SDUs.
	for n := 1; n <= 4096; n += 13 {
		a5, a34 := CellsForSDU5(n), CellsForSDU34(n)
		if a34 < a5 {
			t.Fatalf("n=%d: AAL3/4 %d cells < AAL5 %d", n, a34, a5)
		}
	}
	if CellsForSDU34(9180) <= CellsForSDU5(9180) {
		t.Fatal("AAL3/4 not paying per-cell tax at MTU size")
	}
}

func TestAAL34SegmentTypes(t *testing.T) {
	seg := NewSegmenter34()
	cells, err := seg.Begin(patterned(100)) // 108 bytes CPCS -> 3 cells
	if err != nil {
		t.Fatal(err)
	}
	if cells != 3 {
		t.Fatalf("cells = %d, want 3", cells)
	}
	want := []uint8{stBOM, stCOM, stEOM}
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		if _, _, err := seg.Next(&p); err != nil {
			t.Fatal(err)
		}
		if st := p[0] >> 6; st != want[i] {
			t.Fatalf("cell %d ST = %02b, want %02b", i, st, want[i])
		}
	}
}

func TestAAL34SingleSegmentMessage(t *testing.T) {
	seg := NewSegmenter34()
	cells, err := seg.Begin(patterned(20))
	if err != nil {
		t.Fatal(err)
	}
	if cells != 1 {
		t.Fatalf("cells = %d, want 1", cells)
	}
	var p [atm.PayloadSize]byte
	_, done, err := seg.Next(&p)
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if st := p[0] >> 6; st != stSSM {
		t.Fatalf("ST = %02b, want SSM", st)
	}
}

func TestAAL34SequenceNumbersIncrement(t *testing.T) {
	seg := NewSegmenter34()
	cells, _ := seg.Begin(patterned(44 * 20)) // 21 cells
	var prev int = -1
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		seg.Next(&p)
		sn := int(p[0] >> 2 & 0xf)
		if prev >= 0 && sn != (prev+1)&0xf {
			t.Fatalf("cell %d: SN %d after %d", i, sn, prev)
		}
		prev = sn
	}
}

func TestAAL34MIDStamped(t *testing.T) {
	seg := NewSegmenter34()
	seg.MID = 0x2a5
	cells, _ := seg.Begin(patterned(100))
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		seg.Next(&p)
		mid := uint16(p[0]&0x3)<<8 | uint16(p[1])
		if mid != 0x2a5 {
			t.Fatalf("cell %d MID = %#x, want 0x2a5", i, mid)
		}
	}
}

func TestAAL34PerCellCRCValid(t *testing.T) {
	seg := NewSegmenter34()
	cells, _ := seg.Begin(patterned(500))
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		seg.Next(&p)
		if !crc.CRC10Check(p[:]) {
			t.Fatalf("cell %d fails CRC-10", i)
		}
	}
}

func TestAAL34LostCellDetectedImmediately(t *testing.T) {
	// Unlike AAL5, AAL3/4 spots the SN gap at the very next cell.
	seg := NewSegmenter34()
	ras := NewReassembler34(0)
	cells, _ := seg.Begin(patterned(300)) // 7 cells
	dropped := 3
	var gotErr error
	errAt := -1
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		pt, _, _ := seg.Next(&p)
		if i == dropped {
			continue
		}
		_, err := ras.Push(&p, pt)
		if err != nil && gotErr == nil {
			gotErr = err
			errAt = i
		}
	}
	if !errors.Is(gotErr, ErrLostCell) {
		t.Fatalf("err = %v, want ErrLostCell", gotErr)
	}
	if errAt != dropped+1 {
		t.Fatalf("loss detected at cell %d, want %d (immediately after gap)", errAt, dropped+1)
	}
}

func TestAAL34CorruptCellFailsCRC10(t *testing.T) {
	seg := NewSegmenter34()
	ras := NewReassembler34(0)
	cells, _ := seg.Begin(patterned(300))
	var gotErr error
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		pt, _, _ := seg.Next(&p)
		if i == 1 {
			p[20] ^= 0x40
		}
		if _, err := ras.Push(&p, pt); err != nil && gotErr == nil {
			gotErr = err
		}
	}
	if !errors.Is(gotErr, ErrBadCellCRC) {
		t.Fatalf("err = %v, want ErrBadCellCRC", gotErr)
	}
}

func TestAAL34LostEOMDetectedAtNextBOM(t *testing.T) {
	seg := NewSegmenter34()
	ras := NewReassembler34(0)

	// Frame 1 loses its EOM. Frame 2's BOM must abort frame 1 with
	// ErrLostCell, and frame 2 must still reassemble correctly.
	cells, _ := seg.Begin(patterned(150)) // BOM, COM, COM, EOM
	for i := 0; i < cells-1; i++ {        // drop EOM
		var p [atm.PayloadSize]byte
		pt, _, _ := seg.Next(&p)
		if _, err := ras.Push(&p, pt); err != nil {
			t.Fatalf("frame 1 cell %d: %v", i, err)
		}
	}
	var last [atm.PayloadSize]byte
	seg.Next(&last) // consume dropped EOM

	sdu2 := patterned(90)
	cells2, _ := seg.Begin(sdu2)
	var res *Result
	var sawLost bool
	for i := 0; i < cells2; i++ {
		var p [atm.PayloadSize]byte
		pt, _, _ := seg.Next(&p)
		r, err := ras.Push(&p, pt)
		if errors.Is(err, ErrLostCell) {
			sawLost = true
		} else if err != nil {
			t.Fatalf("frame 2 cell %d: %v", i, err)
		}
		if r != nil {
			res = r
		}
	}
	if !sawLost {
		t.Fatal("lost EOM never reported")
	}
	if res == nil || !bytes.Equal(res.SDU, sdu2) {
		t.Fatal("frame 2 not delivered intact after frame 1 loss")
	}
}

func TestAAL34LostEOMBeforeSSM(t *testing.T) {
	// The SSM-completes-while-reporting-loss contract.
	seg := NewSegmenter34()
	ras := NewReassembler34(0)
	cells, _ := seg.Begin(patterned(150))
	for i := 0; i < cells-1; i++ {
		var p [atm.PayloadSize]byte
		pt, _, _ := seg.Next(&p)
		ras.Push(&p, pt)
	}
	var junk [atm.PayloadSize]byte
	seg.Next(&junk)

	sdu := patterned(10)
	seg.Begin(sdu)
	var p [atm.PayloadSize]byte
	pt, _, _ := seg.Next(&p)
	res, err := ras.Push(&p, pt)
	if !errors.Is(err, ErrLostCell) {
		t.Fatalf("err = %v, want ErrLostCell", err)
	}
	if res == nil || !bytes.Equal(res.SDU, sdu) {
		t.Fatal("SSM frame lost along with the error report")
	}
}

func TestAAL34COMWithoutBOMIgnored(t *testing.T) {
	seg := NewSegmenter34()
	ras := NewReassembler34(0)
	// Generate a 3-cell frame but deliver only its middle cell.
	seg.Begin(patterned(100))
	var p [atm.PayloadSize]byte
	seg.Next(&p) // BOM, dropped
	seg.Next(&p) // COM
	if _, err := ras.Push(&p, atm.PTUser0); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("err = %v, want ErrNoFrame", err)
	}
}

func TestAAL34BTagETagMismatch(t *testing.T) {
	// Forge a frame whose BTag and ETag disagree: BOM from frame A,
	// EOM from frame B with matching SN chain. The CPCS check must fail.
	segA := NewSegmenter34()
	ras := NewReassembler34(0)
	segA.Begin(patterned(80)) // 2 cells: BOM+EOM
	var bom, eomA [atm.PayloadSize]byte
	segA.Next(&bom)
	segA.Next(&eomA)

	segB := NewSegmenter34()
	segB.Begin(patterned(80))
	var bomB, eomB [atm.PayloadSize]byte
	segB.Next(&bomB)
	segB.Next(&eomB)
	// segB's BTag differs (fresh segmenter also starts at 0) — force it.
	segB.Begin(patterned(80))
	segB.Next(&bomB)
	segB.Next(&eomB) // ETag now 1

	if _, err := ras.Push(&bom, atm.PTUser0); err != nil {
		t.Fatal(err)
	}
	// Fix eomB's SN to follow bom's SN, re-CRC.
	sn := (bom[0]>>2&0xf + 1) & 0xf
	eomB[0] = eomB[0]&^(0xf<<2) | sn<<2
	crc.CRC10Fill(eomB[:])
	_, err := ras.Push(&eomB, atm.PTUser0)
	if !errors.Is(err, ErrBadTag) {
		t.Fatalf("err = %v, want ErrBadTag", err)
	}
}

func TestAAL34OAMCellRejected(t *testing.T) {
	ras := NewReassembler34(0)
	var p [atm.PayloadSize]byte
	if _, err := ras.Push(&p, atm.PTResourceMgmt); !errors.Is(err, ErrBadSegType) {
		t.Fatalf("err = %v, want ErrBadSegType", err)
	}
}

func TestAAL34FrameTooLong(t *testing.T) {
	seg := NewSegmenter34()
	ras := NewReassembler34(100) // fits 2 cells of payload
	cells, _ := seg.Begin(patterned(400))
	var sawErr error
	for i := 0; i < cells; i++ {
		var p [atm.PayloadSize]byte
		pt, _, _ := seg.Next(&p)
		if _, err := ras.Push(&p, pt); err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, ErrFrameTooLong) {
		t.Fatalf("err = %v, want ErrFrameTooLong", sawErr)
	}
}

func TestAAL34TypeStrings(t *testing.T) {
	if AAL5.String() != "AAL5" || AAL34.String() != "AAL3/4" {
		t.Fatal("Type.String broken")
	}
	if Type(7).String() != "Type(7)" {
		t.Fatal("unknown Type.String broken")
	}
	if AAL5.PerCellPayload() != 48 || AAL34.PerCellPayload() != 44 {
		t.Fatal("PerCellPayload broken")
	}
}

func TestNewPanicsOnUnknownType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(99) did not panic")
		}
	}()
	New(Type(99), 0)
}

// Property: AAL3/4 segment-then-reassemble is the identity.
func TestPropertyAAL34RoundTrip(t *testing.T) {
	seg := NewSegmenter34()
	ras := NewReassembler34(0)
	f := func(sdu []byte) bool {
		if len(sdu) == 0 {
			return true
		}
		if len(sdu) > MaxSDU {
			sdu = sdu[:MaxSDU]
		}
		cells, err := seg.Begin(sdu)
		if err != nil {
			return false
		}
		var res *Result
		for i := 0; i < cells; i++ {
			var p [atm.PayloadSize]byte
			pt, _, err := seg.Next(&p)
			if err != nil {
				return false
			}
			r, err := ras.Push(&p, pt)
			if err != nil {
				return false
			}
			if r != nil {
				res = r
			}
		}
		return res != nil && bytes.Equal(res.SDU, sdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: dropping any single cell of a multi-cell frame prevents
// delivery (no silent corruption) for both layers.
func TestPropertyDropAnyCellNeverDeliversCorrupt(t *testing.T) {
	for _, typ := range []Type{AAL5, AAL34} {
		typ := typ
		f := func(seed uint16, dropIdx uint8) bool {
			n := int(seed)%2000 + 100
			sdu := patterned(n)
			seg, ras := New(typ, 0)
			cells, err := seg.Begin(sdu)
			if err != nil {
				return false
			}
			if cells < 2 {
				return true
			}
			drop := int(dropIdx) % cells
			var res *Result
			for i := 0; i < cells; i++ {
				var p [atm.PayloadSize]byte
				pt, _, err := seg.Next(&p)
				if err != nil {
					return false
				}
				if i == drop {
					continue
				}
				r, _ := ras.Push(&p, pt)
				if r != nil {
					res = r
				}
			}
			// Either nothing was delivered, or (impossible here) what
			// was delivered matches. Delivering the damaged SDU fails.
			return res == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
	}
}

func BenchmarkAAL34RoundTrip9180(b *testing.B) {
	seg := NewSegmenter34()
	ras := NewReassembler34(0)
	sdu := patterned(9180)
	var p [atm.PayloadSize]byte
	b.SetBytes(9180)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, _ := seg.Begin(sdu)
		for j := 0; j < cells; j++ {
			pt, _, _ := seg.Next(&p)
			if _, err := ras.Push(&p, pt); err != nil {
				b.Fatal(err)
			}
		}
	}
}
