package aal

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/atm"
	"repro/internal/bufpool"
	"repro/internal/metrics"
)

// MIDReassembler34 demultiplexes AAL3/4's 10-bit multiplexing identifier:
// the one capability AAL3/4 has that AAL5 gave up. Multiple senders'
// frames can interleave cell-by-cell on a single VC, each stream tagged by
// its MID; this wrapper keeps an independent reassembly state per MID.
//
// This is what made AAL3/4 attractive for connectionless service (SMDS) and
// shared-VC LAN emulation, at the price of the 4-byte per-cell tax the E3
// experiment quantifies.
type MIDReassembler34 struct {
	maxFrame int
	maxMIDs  int
	streams  map[uint16]*Reassembler34
	vst      *metrics.VCStats
	pool     *bufpool.Pool
	clock    func() int64
}

// SetVCStats attaches the shared VC's telemetry row; every MID stream's
// reassembly errors accumulate into it (the VC is the accounting unit, the
// MID only the interleaving key).
func (m *MIDReassembler34) SetVCStats(s *metrics.VCStats) {
	m.vst = s
	for _, ras := range m.streams {
		ras.SetVCStats(s)
	}
}

// SetPool draws every MID stream's reassembled SDUs from p; see
// Reassembler34.SetPool for the ownership contract.
func (m *MIDReassembler34) SetPool(p *bufpool.Pool) {
	m.pool = p
	for _, ras := range m.streams {
		ras.SetPool(p)
	}
}

// SetClock implements StaleReaper for every MID stream (current and future).
func (m *MIDReassembler34) SetClock(now func() int64) {
	m.clock = now
	for _, ras := range m.streams {
		ras.SetClock(now)
	}
}

// Busy implements StaleReaper: true while any MID slot holds a partial frame.
func (m *MIDReassembler34) Busy() bool { return len(m.streams) > 0 }

// ExpireStale implements StaleReaper: every MID slot whose partial frame
// has gone stale is aborted and reclaimed — the leak path a lost EOM on an
// interleaved stream opens, since nothing else ever deletes that slot.
// Slots are visited in MID order so the reclaim sequence is deterministic.
func (m *MIDReassembler34) ExpireStale(olderThan int64) int {
	if len(m.streams) == 0 {
		return 0
	}
	mids := make([]int, 0, len(m.streams))
	for mid := range m.streams {
		mids = append(mids, int(mid))
	}
	sort.Ints(mids)
	n := 0
	for _, mid := range mids {
		ras := m.streams[uint16(mid)]
		if ras.ExpireStale(olderThan) > 0 {
			n++
		}
		if !ras.inFrame {
			delete(m.streams, uint16(mid))
		}
	}
	return n
}

// ErrTooManyMIDs is returned when a new MID would exceed the configured
// concurrent-stream limit (the board's per-VC state memory is finite).
var ErrTooManyMIDs = errors.New("aal: too many concurrent MIDs on one VC")

// NewMIDReassembler34 builds a MID demultiplexer; maxMIDs bounds concurrent
// interleaved frames (0 = 16, a plausible adapter table size), maxFrame as
// for NewReassembler34.
func NewMIDReassembler34(maxFrame, maxMIDs int) *MIDReassembler34 {
	if maxMIDs <= 0 {
		maxMIDs = 16
	}
	return &MIDReassembler34{
		maxFrame: maxFrame,
		maxMIDs:  maxMIDs,
		streams:  make(map[uint16]*Reassembler34),
	}
}

// MIDOf extracts the multiplexing identifier from an AAL3/4 SAR payload.
func MIDOf(payload *[atm.PayloadSize]byte) uint16 {
	return uint16(payload[0]&0x3)<<8 | uint16(payload[1])
}

// Push routes one cell to its MID's reassembler. It returns the cell's MID,
// a completed frame (if any), and any per-stream error. An idle stream's
// state is reclaimed when its frame completes or dies.
func (m *MIDReassembler34) Push(payload *[atm.PayloadSize]byte, pt atm.PT) (uint16, *Result, error) {
	mid := MIDOf(payload)
	ras, ok := m.streams[mid]
	if !ok {
		if len(m.streams) >= m.maxMIDs {
			return mid, nil, fmt.Errorf("%w: %d active", ErrTooManyMIDs, len(m.streams))
		}
		ras = NewReassembler34(m.maxFrame)
		ras.SetVCStats(m.vst)
		ras.SetPool(m.pool)
		ras.SetClock(m.clock)
		m.streams[mid] = ras
	}
	res, err := ras.Push(payload, pt)
	// Reclaim state when the stream returns to idle: a completed frame or
	// a mid-frame abort both leave the sub-reassembler out of frame.
	if res != nil || (err != nil && !ras.inFrame) {
		delete(m.streams, mid)
	}
	return mid, res, err
}

// ActiveMIDs reports the number of frames currently mid-reassembly.
func (m *MIDReassembler34) ActiveMIDs() int { return len(m.streams) }

// Abort discards all partial frames.
func (m *MIDReassembler34) Abort() {
	for mid, ras := range m.streams {
		ras.Abort()
		delete(m.streams, mid)
	}
}
