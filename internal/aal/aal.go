// Package aal implements the two ATM adaptation layers the host interface's
// protocol engines run as firmware: AAL5 (the simple-and-efficient layer
// that was displacing AAL3/4 as this interface was designed) and AAL3/4 (the
// per-cell-overhead layer standardized first).
//
// The paper's architectural argument for putting SAR on programmable
// engines rather than in gates was exactly that this choice was in flux:
// the same board must speak either by reloading firmware.  Mirroring that,
// both layers here implement the same Segmenter/Reassembler interfaces and
// the NIC model is parameterized over them.
//
// Layout references: ITU-T I.363 (AAL specifications).
package aal

import (
	"errors"
	"fmt"

	"repro/internal/atm"
)

// Type selects an adaptation layer.
type Type uint8

const (
	// AAL5 carries an 8-byte CPCS trailer in the last cell and marks
	// frame boundaries with the PT AAU bit; 48 payload bytes per cell.
	AAL5 Type = iota
	// AAL34 spends 2 bytes of SAR header and 2 of SAR trailer in every
	// cell (44 payload bytes) plus an 8-byte CPCS envelope.
	AAL34
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case AAL5:
		return "AAL5"
	case AAL34:
		return "AAL3/4"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// PerCellPayload returns the SAR payload bytes available per cell.
func (t Type) PerCellPayload() int {
	if t == AAL34 {
		return 44
	}
	return 48
}

// MaxSDU is the largest CPCS-SDU either layer accepts (16-bit length field).
const MaxSDU = 65535

// Errors shared by both layers.
var (
	ErrSDUTooLarge   = errors.New("aal: SDU exceeds 65535 bytes")
	ErrEmptySDU      = errors.New("aal: empty SDU")
	ErrBadCRC        = errors.New("aal: CPCS CRC mismatch")
	ErrBadLength     = errors.New("aal: CPCS length field mismatch")
	ErrLostCell      = errors.New("aal: cell loss detected")
	ErrNoFrame       = errors.New("aal: cell outside any frame")
	ErrFrameTooLong  = errors.New("aal: reassembly exceeds maximum frame size")
	ErrBadCellCRC    = errors.New("aal: per-cell CRC-10 mismatch")
	ErrBadSegType    = errors.New("aal: unexpected segment type")
	ErrBadTag        = errors.New("aal: CPCS BTag/ETag mismatch")
	ErrBufferExhaust = errors.New("aal: reassembly buffer exhausted")
)

// Segmenter converts CPCS-SDUs into a stream of cell payloads.  Next fills
// the payload and PT for one cell at a time, which is exactly the granule
// the transmit engine handles per cell time; it reports done=true on the
// frame's final cell.
type Segmenter interface {
	// Begin starts segmenting an SDU. It returns the number of cells the
	// frame will occupy. The SDU bytes are not retained past the last
	// Next call.
	Begin(sdu []byte) (cells int, err error)
	// Next fills the next cell's payload and returns its PT bits and
	// whether this was the final cell. Calling Next with no frame in
	// progress returns ErrNoFrame.
	Next(payload *[atm.PayloadSize]byte) (pt atm.PT, done bool, err error)
	// Type reports the adaptation layer implemented.
	Type() Type
}

// Result is a reassembled CPCS-SDU handed to the host, plus accounting the
// experiments use.
type Result struct {
	SDU   []byte
	Cells int // cells consumed by the frame, including overhead-only cells
}

// Reassembler consumes per-cell payloads in arrival order on one VC and
// emits completed SDUs. Errors are per-frame: after an error the reassembler
// has discarded the damaged frame and is ready for the next.
type Reassembler interface {
	// Push consumes one cell's payload and PT. It returns a non-nil
	// Result when the cell completed a frame. Push may return BOTH a
	// Result and ErrLostCell: an arriving single-segment frame can
	// complete while simultaneously revealing that the previous frame's
	// tail was lost.
	Push(payload *[atm.PayloadSize]byte, pt atm.PT) (*Result, error)
	// Abort discards any partial frame (e.g. on VC teardown).
	Abort()
	// Type reports the adaptation layer implemented.
	Type() Type
}

// StaleReaper is implemented by reassemblers that can age out abandoned
// partial frames — the state a lost end-of-message cell strands forever
// otherwise, leaking frame buffers (and AAL3/4 MID slots) toward
// ErrBufferExhaust. The package stays a leaf: the clock is an opaque
// monotonic int64 the caller provides (the NIC passes simulated
// nanoseconds), sampled once per Push.
type StaleReaper interface {
	// SetClock installs the timestamp source; nil disables staleness
	// tracking (the default — Push then takes no clock sample).
	SetClock(now func() int64)
	// ExpireStale aborts every partial frame whose last cell arrived at
	// or before olderThan and returns how many frames were reclaimed
	// (counted per frame into the attached VCStats as reassembly
	// timeouts).
	ExpireStale(olderThan int64) int
	// Busy reports whether any partial frame is in progress.
	Busy() bool
}

// New returns a matched Segmenter/Reassembler pair for the given layer.
// maxFrame bounds the reassembler's buffer in bytes (0 means MaxSDU plus
// trailer room).
func New(t Type, maxFrame int) (Segmenter, Reassembler) {
	switch t {
	case AAL5:
		return NewSegmenter5(), NewReassembler5(maxFrame)
	case AAL34:
		return NewSegmenter34(), NewReassembler34(maxFrame)
	default:
		panic(fmt.Sprintf("aal: unknown type %d", t))
	}
}
