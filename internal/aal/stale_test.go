package aal

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/atm"
	"repro/internal/metrics"
)

// feedPartial pushes every cell of an SDU except the last, leaving the
// reassembler holding a partial frame — exactly what a link failure does
// when it eats the end-of-message cell.
func feedPartial(t *testing.T, seg Segmenter, ras Reassembler, sdu []byte) {
	t.Helper()
	cells, err := seg.Begin(sdu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cells-1; i++ {
		var p [atm.PayloadSize]byte
		pt, _, err := seg.Next(&p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ras.Push(&p, pt); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
}

func TestAAL5StaleFrameReclaimed(t *testing.T) {
	vst := &metrics.VCStats{}
	ras := NewReassembler5(0)
	ras.SetVCStats(vst)
	now := int64(0)
	ras.SetClock(func() int64 { return now })

	feedPartial(t, NewSegmenter5(), ras, patterned(4000))
	if !ras.Busy() {
		t.Fatal("reassembler not busy after a partial frame")
	}
	// Cutoff before the last push: the frame is not stale yet.
	if n := ras.ExpireStale(-1); n != 0 {
		t.Fatalf("expired %d frames before the timeout", n)
	}
	if !ras.Busy() {
		t.Fatal("fresh frame was aborted")
	}
	// Cutoff at the last push: the frame has idled long enough.
	if n := ras.ExpireStale(0); n != 1 {
		t.Fatalf("expired %d frames, want 1", n)
	}
	if ras.Busy() {
		t.Fatal("reassembler still busy after expiry")
	}
	if vst.ReassemblyTimeouts != 1 {
		t.Fatalf("ReassemblyTimeouts = %d, want 1", vst.ReassemblyTimeouts)
	}
	// An idle reassembler expires nothing.
	if n := ras.ExpireStale(1 << 40); n != 0 {
		t.Fatalf("idle reassembler expired %d frames", n)
	}
	// And the next frame still reassembles cleanly.
	now = 100
	res := pump(t, NewSegmenter5(), ras, patterned(1234))
	if !bytes.Equal(res.SDU, patterned(1234)) {
		t.Fatal("frame after expiry corrupted")
	}
}

func TestAAL34StaleFrameReclaimed(t *testing.T) {
	vst := &metrics.VCStats{}
	ras := NewReassembler34(0)
	ras.SetVCStats(vst)
	now := int64(0)
	ras.SetClock(func() int64 { return now })

	feedPartial(t, NewSegmenter34(), ras, patterned(2000))
	if !ras.Busy() {
		t.Fatal("reassembler not busy after a partial frame")
	}
	if n := ras.ExpireStale(-1); n != 0 {
		t.Fatalf("expired %d frames before the timeout", n)
	}
	if n := ras.ExpireStale(0); n != 1 {
		t.Fatalf("expired %d frames, want 1", n)
	}
	if ras.Busy() || vst.ReassemblyTimeouts != 1 {
		t.Fatalf("busy=%v timeouts=%d after expiry", ras.Busy(), vst.ReassemblyTimeouts)
	}
	res := pump(t, NewSegmenter34(), ras, patterned(640))
	if !bytes.Equal(res.SDU, patterned(640)) {
		t.Fatal("frame after expiry corrupted")
	}
}

// TestStaleReclaimUnderSustainedLoss models a long outage: frame after frame
// loses its tail, and each one must be reclaimed or the buffer pins forever.
func TestStaleReclaimUnderSustainedLoss(t *testing.T) {
	vst := &metrics.VCStats{}
	ras := NewReassembler5(0)
	ras.SetVCStats(vst)
	now := int64(0)
	ras.SetClock(func() int64 { return now })

	const rounds = 25
	for i := 0; i < rounds; i++ {
		feedPartial(t, NewSegmenter5(), ras, patterned(9180))
		now += 10
		if n := ras.ExpireStale(now - 5); n != 1 {
			t.Fatalf("round %d: expired %d, want 1", i, n)
		}
		if ras.Busy() {
			t.Fatalf("round %d: buffer still pinned", i)
		}
	}
	if vst.ReassemblyTimeouts != rounds {
		t.Fatalf("ReassemblyTimeouts = %d, want %d", vst.ReassemblyTimeouts, rounds)
	}
}

func TestMIDStaleSlotsReclaimed(t *testing.T) {
	m := NewMIDReassembler34(0, 0)
	now := int64(0)
	m.SetClock(func() int64 { return now })

	push := func(mid uint16, sdu []byte) {
		t.Helper()
		cells := cellsOf(t, mid, sdu)
		for _, cell := range cells[:len(cells)-1] { // EOM lost
			if _, _, err := m.Push(&cell, atm.PTUser0); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(7, patterned(800)) // stale at t=0
	now = 100
	push(9, patterned(800)) // fresh at t=100
	if m.ActiveMIDs() != 2 {
		t.Fatalf("active MIDs = %d, want 2", m.ActiveMIDs())
	}

	// Only the idle slot is reclaimed; the fresh one keeps reassembling.
	if n := m.ExpireStale(50); n != 1 {
		t.Fatalf("expired %d slots, want 1", n)
	}
	if m.ActiveMIDs() != 1 {
		t.Fatalf("active MIDs = %d after partial expiry, want 1", m.ActiveMIDs())
	}
	if !m.Busy() {
		t.Fatal("Busy() = false with a live MID slot")
	}
	if n := m.ExpireStale(200); n != 1 {
		t.Fatalf("expired %d slots, want 1", n)
	}
	if m.ActiveMIDs() != 0 || m.Busy() {
		t.Fatalf("slots leaked: active=%d busy=%v", m.ActiveMIDs(), m.Busy())
	}
}

// TestAAL34MidFrameKillDistinguished: a corrupt cell arriving mid-frame
// kills the frame in progress and is counted as such; the same corruption on
// an isolated cell costs only itself.
func TestAAL34MidFrameKillDistinguished(t *testing.T) {
	mk := func() (*Reassembler34, *metrics.VCStats) {
		vst := &metrics.VCStats{}
		ras := NewReassembler34(0)
		ras.SetVCStats(vst)
		return ras, vst
	}
	cells := cellsOf(t, 0, patterned(500))
	if len(cells) < 3 {
		t.Fatal("want a multi-cell frame")
	}

	// Corrupt COM mid-frame: the in-progress frame dies with it.
	ras, vst := mk()
	if _, err := ras.Push(&cells[0], atm.PTUser0); err != nil {
		t.Fatal(err)
	}
	bad := cells[1]
	bad[10] ^= 0xff
	if _, err := ras.Push(&bad, atm.PTUser0); !errors.Is(err, ErrBadCellCRC) {
		t.Fatalf("err = %v, want ErrBadCellCRC", err)
	}
	if vst.CRCErrors != 1 || vst.MidFrameKills != 1 {
		t.Fatalf("mid-frame: crc=%d kills=%d, want 1/1", vst.CRCErrors, vst.MidFrameKills)
	}
	if ras.Busy() {
		t.Fatal("killed frame still pinned")
	}

	// The same corruption with no frame in progress: no kill charged.
	ras, vst = mk()
	bad = cells[0]
	bad[10] ^= 0xff
	if _, err := ras.Push(&bad, atm.PTUser0); !errors.Is(err, ErrBadCellCRC) {
		t.Fatalf("err = %v, want ErrBadCellCRC", err)
	}
	if vst.CRCErrors != 1 || vst.MidFrameKills != 0 {
		t.Fatalf("isolated: crc=%d kills=%d, want 1/0", vst.CRCErrors, vst.MidFrameKills)
	}
}
