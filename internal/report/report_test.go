package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Row("alpha", 1)
	tb.Row("b", 2.5)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Fatalf("rows missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.Row("x", 1)
	tb.Row("longer", 2)
	out := tb.String()
	lines := strings.Split(out, "\n")
	// Find the two data rows; 'b' column values must align.
	var idx []int
	for _, ln := range lines[4:6] {
		i := strings.IndexAny(ln, "12")
		idx = append(idx, i)
	}
	if len(idx) != 2 || idx[0] != idx[1] {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1234567",
		42.25:   "42.2",
		3.14159: "3.142",
	}
	for x, want := range cases {
		if got := trimFloat(x); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", x, got, want)
		}
	}
}

func TestCellAccessor(t *testing.T) {
	tb := NewTable("T", "a")
	tb.Row("v1")
	if tb.Cell(0, 0) != "v1" || tb.Rows() != 1 {
		t.Fatal("accessors broken")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.Row("plain", `has "quotes", and comma`)
	csv := tb.CSV()
	want := "a,b\nplain,\"has \"\"quotes\"\", and comma\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestNote(t *testing.T) {
	tb := NewTable("T", "a")
	tb.Note = "reconstructed"
	tb.Row(1)
	if !strings.Contains(tb.String(), "note: reconstructed") {
		t.Fatal("note missing")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Fig", "x", []float64{1, 2, 3})
	s.Add("tput", []float64{10, 20, 30})
	s.Add("util", []float64{0.1, 0.2, 0.3})
	out := s.String()
	if !strings.Contains(out, "tput") || !strings.Contains(out, "util") {
		t.Fatalf("missing series:\n%s", out)
	}
	if got := s.Y("tput"); len(got) != 3 || got[2] != 30 {
		t.Fatalf("Y(tput) = %v", got)
	}
	if s.Y("absent") != nil {
		t.Fatal("phantom series")
	}
}

func TestSeriesLengthMismatchPanics(t *testing.T) {
	s := NewSeries("F", "x", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	s.Add("bad", []float64{1})
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("F", "x", []float64{1, 2})
	s.Add("y", []float64{10, 20})
	want := "x,y\n1.000,10.0\n2.000,20.0\n"
	if got := s.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
