// Package report renders the experiment harness's output: aligned text
// tables (the form the paper's tables take) and x/y series blocks (the form
// its figures take), plus CSV for anyone who wants to re-plot.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title string
	Note  string
	cols  []string
	rows  [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// Row appends a row; values are rendered with %v, and float64 values with
// three significant decimals.
func (t *Table) Row(vals ...any) *Table {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col); it panics on out-of-range
// indices (tests use it to assert on harness output).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

func trimFloat(x float64) string {
	abs := x
	if abs < 0 {
		abs = -abs
	}
	switch {
	case x == 0:
		return "0"
	case abs >= 1000:
		return fmt.Sprintf("%.0f", x)
	case abs >= 10:
		return fmt.Sprintf("%.1f", x)
	case abs < 0.01:
		return fmt.Sprintf("%.1e", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", len(t.Title)))
	b.WriteByte('\n')

	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	if t.Note != "" {
		b.WriteString("note: " + t.Note + "\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.cols)
	for _, r := range t.rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Series is a figure: one x column and one or more named y columns.
type Series struct {
	Title  string
	XLabel string
	X      []float64
	ys     []namedSeries
}

type namedSeries struct {
	name string
	y    []float64
}

// NewSeries creates a figure block.
func NewSeries(title, xLabel string, x []float64) *Series {
	return &Series{Title: title, XLabel: xLabel, X: x}
}

// Add attaches a y series; its length must match X.
func (s *Series) Add(name string, y []float64) *Series {
	if len(y) != len(s.X) {
		panic(fmt.Sprintf("report: series %q has %d points, x has %d", name, len(y), len(s.X)))
	}
	s.ys = append(s.ys, namedSeries{name: name, y: y})
	return s
}

// Y returns the named series' values (nil if absent); tests assert on it.
func (s *Series) Y(name string) []float64 {
	for _, ns := range s.ys {
		if ns.name == name {
			return ns.y
		}
	}
	return nil
}

// table renders the series as a Table.
func (s *Series) table() *Table {
	cols := []string{s.XLabel}
	for _, ns := range s.ys {
		cols = append(cols, ns.name)
	}
	t := NewTable(s.Title, cols...)
	for i, x := range s.X {
		row := make([]any, 0, len(cols))
		row = append(row, trimFloat(x))
		for _, ns := range s.ys {
			row = append(row, ns.y[i])
		}
		t.Row(row...)
	}
	return t
}

// String renders the series as an aligned table of x vs each y.
func (s *Series) String() string { return s.table().String() }

// CSV renders the series as comma-separated values.
func (s *Series) CSV() string { return s.table().CSV() }
