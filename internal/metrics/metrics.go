// Package metrics is the unified telemetry layer for the simulated
// datapath: a registry of named instruments every component reports into,
// replacing the per-package ad-hoc counters the repository grew early on.
//
// Three instrument kinds cover everything the delay/throughput analysis
// needs:
//
//   - Counter: a monotonic event count (cells, packets, drops).
//   - Gauge: a level with a high-watermark (FIFO occupancy, queue depth).
//   - Histogram: a fixed-bucket log-scale distribution over sim.Time
//     (cell latency, FIFO residency, DMA grant wait, reassembly time,
//     interrupt-to-service delay), from which p50/p99/max are derived.
//
// Names are hierarchical, dot-separated, and instance-scoped:
// "a.nic.tx.cells", "a.fifo.rx0.occupancy", "bus.a.txdma.grant_wait".
// A per-VC stats table (see VCStats) rides alongside the named instruments
// so connection-level accounting (cells/SDUs in/out, drops by cause, CRC
// errors) has one home regardless of which layer observed the event.
//
// Hot-path discipline: instrument updates are plain field operations on
// pre-resolved pointers — no map lookups, no allocation, no locking. Every
// instrument method is nil-safe (a method on a nil instrument is a no-op),
// so components can hold optional instruments and update unconditionally.
// Like the sim kernel itself, a Registry is single-goroutine: the kernel
// serializes all model callbacks, so instruments need no atomics.
package metrics

import "sort"

// Registry holds every instrument of one simulation (or one station, when
// stations are not meant to share a namespace). The zero value is not
// usable; call NewRegistry. All methods are nil-safe: a nil *Registry
// returns nil instruments, whose updates are no-ops.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	histos   map[string]*Histogram
	vcs      map[VCID]*VCStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		histos:   make(map[string]*Histogram),
		vcs:      make(map[VCID]*VCStats),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// no-op gauge) when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil (a no-op histogram) when r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.histos[name]
	if h == nil {
		h = &Histogram{name: name}
		r.histos[name] = h
	}
	return h
}

// VC returns the stats row for connection (vpi, vci), creating it on first
// use. Returns nil (a no-op row) when r is nil. Callers on per-cell paths
// should resolve the row once at VC-open time and cache the pointer.
func (r *Registry) VC(vpi, vci uint16) *VCStats {
	if r == nil {
		return nil
	}
	id := VCID{VPI: vpi, VCI: vci}
	s := r.vcs[id]
	if s == nil {
		s = &VCStats{VCID: id}
		r.vcs[id] = s
	}
	return s
}

// EachCounter calls fn for every registered counter in sorted name order —
// the deterministic iteration periodic samplers rely on. Nil-safe.
func (r *Registry) EachCounter(fn func(name string, value uint64)) {
	if r == nil {
		return
	}
	for _, n := range r.counterNames() {
		fn(n, r.counters[n].Value())
	}
}

// EachGauge calls fn for every registered gauge in sorted name order.
// Nil-safe.
func (r *Registry) EachGauge(fn func(name string, value, max int64)) {
	if r == nil {
		return
	}
	for _, n := range r.gaugeNames() {
		g := r.gauges[n]
		fn(n, g.Value(), g.Max())
	}
}

// counterNames returns registered counter names, sorted.
func (r *Registry) counterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) gaugeNames() []string {
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) histoNames() []string {
	names := make([]string, 0, len(r.histos))
	for n := range r.histos {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) vcIDs() []VCID {
	ids := make([]VCID, 0, len(r.vcs))
	for id := range r.vcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].VPI != ids[j].VPI {
			return ids[i].VPI < ids[j].VPI
		}
		return ids[i].VCI < ids[j].VCI
	})
	return ids
}

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an instantaneous level with high-watermark tracking. The
// watermark records the largest value ever Set (or reached via Add).
type Gauge struct {
	name string
	v    int64
	max  int64
}

// Set records the current level and updates the high watermark. No-op on a
// nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add moves the level by delta (negative deltas allowed) and updates the
// watermark. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v += delta
	if g.v > g.max {
		g.max = g.v
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high watermark (0 for a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}
