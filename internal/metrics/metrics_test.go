package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/tm"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nic.tx.cells")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 || c.Name() != "nic.tx.cells" {
		t.Fatalf("counter %d %q", c.Value(), c.Name())
	}
	if r.Counter("nic.tx.cells") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("fifo.tx.occupancy")
	g.Set(5)
	g.Set(12)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 12 {
		t.Fatalf("gauge value %d max %d", g.Value(), g.Max())
	}
	g.Add(20)
	if g.Value() != 23 || g.Max() != 23 {
		t.Fatalf("gauge after Add: value %d max %d", g.Value(), g.Max())
	}
	g.Add(-23)
	if g.Value() != 0 || g.Max() != 23 {
		t.Fatalf("watermark must survive decrease: value %d max %d", g.Value(), g.Max())
	}
}

func TestNilSafety(t *testing.T) {
	// Every method on a nil registry or nil instrument must be a no-op:
	// components update instruments unconditionally on the hot path.
	var r *Registry
	c, g, h, v := r.Counter("x"), r.Gauge("x"), r.Histogram("x"), r.VC(0, 1)
	if c != nil || g != nil || h != nil || v != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-1)
	h.Observe(100)
	v.AddCellOut()
	v.AddCellIn()
	v.AddSDUOut(10)
	v.AddSDUIn(10)
	v.Drop(DropFIFO)
	v.IncCRCError()
	v.IncLengthError()
	v.IncLostCells()
	v.IncReassemblyTimeout()
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || v.TotalDrops() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || c.Name() != "" {
		t.Fatal("nil accessors must read as zero")
	}
	snap := r.Snapshot()
	if snap.Counters == nil || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
}

// TestHistogramBucketsAtCellTime pins the bucket boundaries at the scale the
// simulation lives at: one cell time is 2726 ns at STS-3c (2.726 µs) and
// 680 ns at STS-12c. With 2 sub-bits the octave [2048,4096) splits at
// 2560/3072/3584, so 2726 must land in [2560,3071]; the octave [512,1024)
// splits at 640/768/896, so 680 lands in [640,767].
func TestHistogramBucketsAtCellTime(t *testing.T) {
	cases := []struct {
		v            int64
		idx          int
		lower, upper int64
	}{
		{0, 0, 0, 0},
		{3, 3, 3, 3},
		{4, 4, 4, 4},           // first log bucket: unit-wide at this scale
		{2726, 41, 2560, 3071}, // STS-3c cell time
		{680, 33, 640, 767},    // STS-12c cell time
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
		if lo := BucketLower(c.idx); lo != c.lower {
			t.Errorf("BucketLower(%d) = %d, want %d", c.idx, lo, c.lower)
		}
		if up := BucketUpper(c.idx); up != c.upper {
			t.Errorf("BucketUpper(%d) = %d, want %d", c.idx, up, c.upper)
		}
	}
	// Every boundary must be exhaustive and non-overlapping.
	for i := 1; i < NumBuckets; i++ {
		if BucketLower(i) != BucketUpper(i-1)+1 {
			t.Fatalf("gap between buckets %d and %d", i-1, i)
		}
	}
	// The worst-case relative error of a bucket's upper bound is 25%.
	for _, v := range []int64{5, 100, 2726, 1_000_000, 1 << 40} {
		i := bucketIndex(v)
		if up := BucketUpper(i); float64(up-v) > 0.25*float64(v) {
			t.Errorf("value %d reported as %d: error above 25%%", v, up)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nic.rx.cell_delay")
	// 100 observations of one cell time: all quantiles must report the
	// exact value (bucket upper clamped to observed max).
	for i := 0; i < 100; i++ {
		h.Observe(2726)
	}
	if h.Count() != 100 || h.Min() != 2726 || h.Max() != 2726 {
		t.Fatalf("count %d min %v max %v", h.Count(), h.Min(), h.Max())
	}
	for _, p := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if q := h.Quantile(p); q != 2726 {
			t.Fatalf("Quantile(%v) = %v, want 2726", p, q)
		}
	}
	// A bimodal distribution: 90 fast, 10 slow. p50 stays in the fast
	// bucket, p99 reaches the slow one (within the 25% bucket error).
	h2 := r.Histogram("tail")
	for i := 0; i < 90; i++ {
		h2.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(100_000)
	}
	if p50 := h2.Quantile(0.5); p50 < 1000 || p50 > 1250 {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 := h2.Quantile(0.99); p99 < 100_000 || p99 > 125_000 {
		t.Fatalf("p99 = %v", p99)
	}
	// Negative durations clamp to zero rather than corrupting buckets.
	h3 := r.Histogram("neg")
	h3.Observe(-5)
	if h3.Count() != 1 || h3.Min() != 0 || h3.Bucket(0) != 1 {
		t.Fatalf("negative observation: %d %v", h3.Count(), h3.Min())
	}
}

func TestVCStats(t *testing.T) {
	r := NewRegistry()
	v := r.VC(1, 42)
	if r.VC(1, 42) != v {
		t.Fatal("VC row not shared")
	}
	v.AddCellOut()
	v.AddCellIn()
	v.AddSDUOut(9180)
	v.AddSDUIn(9180)
	v.Drop(DropFIFO)
	v.Drop(DropFIFO)
	v.Drop(DropAAL)
	v.IncCRCError()
	if v.CellsOut != 1 || v.CellsIn != 1 || v.BytesOut != 9180 || v.BytesIn != 9180 {
		t.Fatalf("%+v", v)
	}
	if v.TotalDrops() != 3 || v.Drops[DropFIFO] != 2 || v.Drops[DropAAL] != 1 {
		t.Fatalf("drops %v", v.Drops)
	}
	// Cause names are stable: they appear in JSON dumps.
	want := []string{"fifo_overflow", "unknown_vc", "sram_exhausted", "aal_error", "tx_queue_overflow",
		"policed_clp_tag", "policed_discard", "epd", "ppd", "switch_queue_overflow", "clp_threshold",
		"oam_bad", "mgmt_tx_full", "link_loss", "reassembly_timeout"}
	for i, c := range DropCauses() {
		if c.String() != want[i] {
			t.Fatalf("cause %d = %q, want %q", i, c.String(), want[i])
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.nic.rx.cells").Add(7)
	r.Counter("a.nic.tx.cells").Add(5)
	g := r.Gauge("a.fifo.tx.occupancy")
	g.Set(9)
	g.Set(2)
	h := r.Histogram("a.nic.tx.cell_delay")
	h.Observe(2726)
	h.Observe(5452)
	v := r.VC(0, 100)
	v.AddCellOut()
	v.Drop(DropSRAM)

	snap := r.Snapshot()
	// Deterministic ordering: names sorted, VCs by (VPI, VCI).
	if snap.Counters[0].Name != "a.nic.tx.cells" || snap.Counters[1].Name != "b.nic.rx.cells" {
		t.Fatalf("counter order %+v", snap.Counters)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", snap, back)
	}
	if back.Histograms[0].Count != 2 || len(back.Histograms[0].Buckets) != 2 {
		t.Fatalf("histogram snap %+v", back.Histograms[0])
	}
	if back.VCs[0].Drops["sram_exhausted"] != 1 || len(back.VCs[0].Drops) != 1 {
		t.Fatalf("vc drops %+v", back.VCs[0].Drops)
	}
	if names := sortedDropNames(back.VCs[0].Drops); len(names) != 1 || names[0] != "sram_exhausted" {
		t.Fatalf("drop names %v", names)
	}
	// Quantiles must be reconstructible from the dumped buckets alone.
	var cum, rank uint64
	rank = (back.Histograms[0].Count + 1) / 2
	var p50 int64
	for _, b := range back.Histograms[0].Buckets {
		cum += b.Count
		if cum >= rank {
			p50 = b.UpperNs
			break
		}
	}
	if p50 != BucketUpper(bucketIndex(2726)) {
		t.Fatalf("p50 from buckets = %d", p50)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.nic.tx.cells").Add(3)
	r.Gauge("a.nic.tx.queued").Set(4)
	r.Histogram("a.nic.tx.cell_delay").Observe(2726)
	r.VC(0, 100).AddCellOut()
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"counters", "gauges", "histograms", "per-VC",
		"a.nic.tx.cells", "0/100", "2.726us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHotPathAllocs is the zero-allocation guarantee: per-cell instrument
// updates — and the GCRA conformance check that feeds them — must not
// touch the heap. (BenchmarkHotPath reports the same via allocs/op.)
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	v := r.VC(0, 100)
	pol := tm.NewPolicer(tm.VBRContract(1e6, 1e5, 8, 100))
	pol.TagSCR = true
	var d sim.Duration = 2726
	var now sim.Time
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(48)
		g.Set(17)
		h.Observe(d)
		v.AddCellOut()
		v.AddCellIn()
		v.Drop(DropFIFO)
		if pol.Police(now, false) != tm.Conform {
			v.Drop(DropPolicedDiscard)
		}
		now += 700
		d++
	})
	if n != 0 {
		t.Fatalf("hot-path updates allocate %v per op", n)
	}
}

func BenchmarkHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	v := r.VC(0, 100)
	pol := tm.NewPolicer(tm.VBRContract(1e6, 1e5, 8, 100))
	pol.TagSCR = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i & 31))
		h.Observe(sim.Duration(i&4095) + 640)
		v.AddCellIn()
		if pol.Police(sim.Time(i)*700, false) != tm.Conform {
			v.Drop(DropPolicedDiscard)
		}
	}
}

// TestSnapshotDeterministic pins the satellite guarantee behind diffable
// telemetry dumps: two registries carrying the same instruments, created in
// different orders, marshal to byte-identical JSON — and so do repeated
// snapshots of the same registry (no map-iteration order leaks).
func TestSnapshotDeterministic(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			r.Counter("c." + n).Add(uint64(10 + len(n)))
			r.Gauge("g." + n).Set(int64(len(n)))
			r.Histogram("h." + n).Observe(1000)
		}
		r.VC(0, 200).AddCellIn()
		r.VC(0, 100).Drop(DropFIFO)
		r.VC(1, 50).AddCellOut()
		return r
	}
	fwd := build([]string{"alpha", "beta", "gamma", "delta"})
	rev := build([]string{"delta", "gamma", "beta", "alpha"})
	d1, err := json.Marshal(fwd.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(rev.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("insertion order leaked into snapshot JSON:\n%s\n%s", d1, d2)
	}
	d3, err := json.Marshal(fwd.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d3) {
		t.Fatalf("repeated snapshots differ:\n%s\n%s", d1, d3)
	}
}

// TestEachCounterEachGauge pins the sampler's iteration contract: sorted
// order, every instrument visited, nil registry a no-op.
func TestEachCounterEachGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	g := r.Gauge("m.mid")
	g.Set(5)
	g.Set(2)
	var cNames []string
	r.EachCounter(func(name string, v uint64) { cNames = append(cNames, name) })
	if len(cNames) != 2 || cNames[0] != "a.first" || cNames[1] != "z.last" {
		t.Fatalf("counter order %v", cNames)
	}
	var gv, gmax int64
	r.EachGauge(func(name string, v, max int64) { gv, gmax = v, max })
	if gv != 2 || gmax != 5 {
		t.Fatalf("gauge v=%d max=%d", gv, gmax)
	}
	var nilReg *Registry
	nilReg.EachCounter(func(string, uint64) { t.Fatal("nil registry visited a counter") })
	nilReg.EachGauge(func(string, int64, int64) { t.Fatal("nil registry visited a gauge") })
}
