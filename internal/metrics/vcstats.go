package metrics

// VCID identifies a virtual connection. It mirrors atm.VC without importing
// the atm package, so metrics stays a leaf dependency every layer can use.
type VCID struct {
	VPI uint16 `json:"vpi"`
	VCI uint16 `json:"vci"`
}

// DropCause classifies why a cell or frame belonging to a VC was lost.
// Each cause maps to one slot of VCStats.Drops.
type DropCause uint8

const (
	// DropFIFO is an RX cell FIFO overflow (hardware drop on arrival).
	DropFIFO DropCause = iota
	// DropUnknownVC is a cell addressed to a VC with no table entry.
	DropUnknownVC
	// DropSRAM is a frame abandoned for adapter buffer-memory exhaustion.
	DropSRAM
	// DropAAL is a frame discarded by an adaptation-layer check (CRC,
	// length, sequence, tag).
	DropAAL
	// DropTxQueue is a transmit-side link queue overflow (the interface
	// outran the framer).
	DropTxQueue
	// DropPolicedTag is a cell the ingress policer demoted to CLP=1 (the
	// GCRA tagging action). The cell was forwarded, not lost — but it is
	// now discard-eligible, so per-VC accounting tracks it with the causes.
	DropPolicedTag
	// DropPolicedDiscard is a cell the ingress policer dropped for
	// violating its traffic contract.
	DropPolicedDiscard
	// DropEPD is a cell dropped by Early Packet Discard: the whole AAL5
	// frame was refused at the switch queue before any of it was enqueued.
	DropEPD
	// DropPPD is a cell dropped by Partial Packet Discard: the tail of a
	// frame whose earlier cell was already lost (the rest of the frame is
	// useless to the reassembler).
	DropPPD
	// DropSwitchQueue is a switch output-queue overflow (tail drop).
	DropSwitchQueue
	// DropCLPThreshold is a CLP=1 cell dropped at a congested switch queue
	// above its discard-eligible threshold.
	DropCLPThreshold
	// DropBadOAM is a management cell discarded by the OAM slow path:
	// damaged (CRC-10 failure) or carrying a type/function the firmware
	// does not implement.
	DropBadOAM
	// DropMgmtTxFull is a firmware-generated management cell (loopback
	// response, AIS/RDI) dropped because the transmit FIFO was full.
	DropMgmtTxFull
	// DropLink is a cell lost in transit on the physical link (fiber cut
	// or random in-flight loss).
	DropLink
	// DropReassemblyTimeout is a partial frame aged out of the reassembler:
	// a frame-level loss (the cells already spent were wasted), as opposed
	// to the cell-level causes above. Distinguishing it from DropEPD is how
	// an experiment attributes goodput loss to stranded reassembly state
	// rather than deliberate frame discard at the switch.
	DropReassemblyTimeout

	numDropCauses
)

// String implements fmt.Stringer; the names appear in snapshots.
func (c DropCause) String() string {
	switch c {
	case DropFIFO:
		return "fifo_overflow"
	case DropUnknownVC:
		return "unknown_vc"
	case DropSRAM:
		return "sram_exhausted"
	case DropAAL:
		return "aal_error"
	case DropTxQueue:
		return "tx_queue_overflow"
	case DropPolicedTag:
		return "policed_clp_tag"
	case DropPolicedDiscard:
		return "policed_discard"
	case DropEPD:
		return "epd"
	case DropPPD:
		return "ppd"
	case DropSwitchQueue:
		return "switch_queue_overflow"
	case DropCLPThreshold:
		return "clp_threshold"
	case DropBadOAM:
		return "oam_bad"
	case DropMgmtTxFull:
		return "mgmt_tx_full"
	case DropLink:
		return "link_loss"
	case DropReassemblyTimeout:
		return "reassembly_timeout"
	default:
		return "unknown"
	}
}

// DropCauses lists every cause, in Drops-array order.
func DropCauses() []DropCause {
	out := make([]DropCause, numDropCauses)
	for i := range out {
		out[i] = DropCause(i)
	}
	return out
}

// VCStats is one connection's accounting row, updated inline by the NIC
// datapath and the AAL reassemblers. Directionality follows the adapter:
// "Out" is the transmit side (host → wire), "In" the receive side
// (wire → host). All update methods are nil-safe and allocation-free.
type VCStats struct {
	VCID

	CellsOut uint64 // data cells emitted to the wire
	CellsIn  uint64 // data cells accepted by the receive firmware
	SDUsOut  uint64 // frames fully segmented and transmitted
	SDUsIn   uint64 // frames delivered to the host
	BytesOut uint64 // SDU bytes transmitted
	BytesIn  uint64 // SDU bytes delivered

	// Drops counts losses by cause; index with DropCause.
	Drops [numDropCauses]uint64

	CRCErrors          uint64 // frame CRC-32 or per-cell CRC-10 failures
	LengthErrors       uint64 // CPCS length/tag field mismatches
	LostCells          uint64 // sequence-detected cell losses (AAL3/4)
	ReassemblyTimeouts uint64 // partial frames aged out
	MidFrameKills      uint64 // frames killed by a corrupt cell mid-reassembly
}

// AddCellOut counts one transmitted data cell.
func (s *VCStats) AddCellOut() {
	if s == nil {
		return
	}
	s.CellsOut++
}

// AddCellIn counts one received data cell.
func (s *VCStats) AddCellIn() {
	if s == nil {
		return
	}
	s.CellsIn++
}

// AddSDUOut counts one transmitted frame of n SDU bytes.
func (s *VCStats) AddSDUOut(n int) {
	if s == nil {
		return
	}
	s.SDUsOut++
	s.BytesOut += uint64(n)
}

// AddSDUIn counts one delivered frame of n SDU bytes.
func (s *VCStats) AddSDUIn(n int) {
	if s == nil {
		return
	}
	s.SDUsIn++
	s.BytesIn += uint64(n)
}

// Drop counts one loss of the given cause.
func (s *VCStats) Drop(c DropCause) {
	if s == nil {
		return
	}
	s.Drops[c]++
}

// IncCRCError counts one CRC failure (frame CRC-32 or cell CRC-10).
func (s *VCStats) IncCRCError() {
	if s == nil {
		return
	}
	s.CRCErrors++
}

// IncLengthError counts one CPCS length or tag mismatch.
func (s *VCStats) IncLengthError() {
	if s == nil {
		return
	}
	s.LengthErrors++
}

// IncLostCells counts one sequence-detected cell loss.
func (s *VCStats) IncLostCells() {
	if s == nil {
		return
	}
	s.LostCells++
}

// IncReassemblyTimeout counts one aged-out partial frame.
func (s *VCStats) IncReassemblyTimeout() {
	if s == nil {
		return
	}
	s.ReassemblyTimeouts++
}

// IncMidFrameKill counts one frame killed by a corrupt cell arriving while
// its reassembly was in progress (as opposed to an isolated bad cell, which
// costs only itself).
func (s *VCStats) IncMidFrameKill() {
	if s == nil {
		return
	}
	s.MidFrameKills++
}

// TotalDrops sums losses across causes.
func (s *VCStats) TotalDrops() uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for _, d := range s.Drops {
		t += d
	}
	return t
}
