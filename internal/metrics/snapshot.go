package metrics

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Snapshot is a point-in-time copy of a registry, ordered deterministically
// (instruments by name, VCs by VPI then VCI). It is the unit both sinks
// consume: WriteText renders the human-readable table, and the struct
// marshals directly to the machine-readable JSON dump (-metrics out.json).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
	VCs        []VCSnap        `json:"vcs"`
}

// CounterSnap is one counter's value.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's level and high watermark.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// BucketSnap is one non-empty histogram bucket: Upper is the largest value
// (ns) the bucket holds, Count its population. Empty buckets are omitted,
// so quantiles reconstruct exactly from the dump.
type BucketSnap struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnap is one histogram's distribution with derived quantiles.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	MinNs   int64        `json:"min_ns"`
	MaxNs   int64        `json:"max_ns"`
	P50Ns   int64        `json:"p50_ns"`
	P90Ns   int64        `json:"p90_ns"`
	P99Ns   int64        `json:"p99_ns"`
	Buckets []BucketSnap `json:"buckets"`
}

// VCSnap is one connection's accounting row. Drops is keyed by DropCause
// name and carries only non-zero causes.
type VCSnap struct {
	VPI                uint16            `json:"vpi"`
	VCI                uint16            `json:"vci"`
	CellsOut           uint64            `json:"cells_out"`
	CellsIn            uint64            `json:"cells_in"`
	SDUsOut            uint64            `json:"sdus_out"`
	SDUsIn             uint64            `json:"sdus_in"`
	BytesOut           uint64            `json:"bytes_out"`
	BytesIn            uint64            `json:"bytes_in"`
	Drops              map[string]uint64 `json:"drops"`
	CRCErrors          uint64            `json:"crc_errors"`
	LengthErrors       uint64            `json:"length_errors"`
	LostCells          uint64            `json:"lost_cells"`
	ReassemblyTimeouts uint64            `json:"reassembly_timeouts"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty (but non-nil-sliced) snapshot so sinks need no special case.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistogramSnap{},
		VCs:        []VCSnap{},
	}
	if r == nil {
		return s
	}
	for _, name := range r.counterNames() {
		c := r.counters[name]
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.v})
	}
	for _, name := range r.gaugeNames() {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.v, Max: g.max})
	}
	for _, name := range r.histoNames() {
		s.Histograms = append(s.Histograms, snapHistogram(r.histos[name]))
	}
	for _, id := range r.vcIDs() {
		s.VCs = append(s.VCs, snapVC(r.vcs[id]))
	}
	return s
}

func snapHistogram(h *Histogram) HistogramSnap {
	hs := HistogramSnap{
		Name:    h.name,
		Count:   h.count,
		SumNs:   h.sum,
		MinNs:   h.min,
		MaxNs:   h.max,
		P50Ns:   int64(h.Quantile(0.50)),
		P90Ns:   int64(h.Quantile(0.90)),
		P99Ns:   int64(h.Quantile(0.99)),
		Buckets: []BucketSnap{},
	}
	for i := 0; i < NumBuckets; i++ {
		if h.buckets[i] != 0 {
			hs.Buckets = append(hs.Buckets, BucketSnap{UpperNs: BucketUpper(i), Count: h.buckets[i]})
		}
	}
	return hs
}

func snapVC(v *VCStats) VCSnap {
	vs := VCSnap{
		VPI:                v.VPI,
		VCI:                v.VCI,
		CellsOut:           v.CellsOut,
		CellsIn:            v.CellsIn,
		SDUsOut:            v.SDUsOut,
		SDUsIn:             v.SDUsIn,
		BytesOut:           v.BytesOut,
		BytesIn:            v.BytesIn,
		Drops:              map[string]uint64{},
		CRCErrors:          v.CRCErrors,
		LengthErrors:       v.LengthErrors,
		LostCells:          v.LostCells,
		ReassemblyTimeouts: v.ReassemblyTimeouts,
	}
	for c, n := range v.Drops {
		if n != 0 {
			vs.Drops[DropCause(c).String()] = n
		}
	}
	return vs
}

// WriteText renders the snapshot as aligned human-readable tables: one
// section per instrument kind, then the per-VC table.
func (s Snapshot) WriteText(w io.Writer) error {
	if len(s.Counters) > 0 {
		if err := writeSection(w, "counters", []string{"name", "value"}, func(emit func(...string)) {
			for _, c := range s.Counters {
				emit(c.Name, fmt.Sprintf("%d", c.Value))
			}
		}); err != nil {
			return err
		}
	}
	if len(s.Gauges) > 0 {
		if err := writeSection(w, "gauges", []string{"name", "value", "high-water"}, func(emit func(...string)) {
			for _, g := range s.Gauges {
				emit(g.Name, fmt.Sprintf("%d", g.Value), fmt.Sprintf("%d", g.Max))
			}
		}); err != nil {
			return err
		}
	}
	if len(s.Histograms) > 0 {
		if err := writeSection(w, "histograms",
			[]string{"name", "count", "mean", "p50", "p90", "p99", "max"},
			func(emit func(...string)) {
				for _, h := range s.Histograms {
					mean := int64(0)
					if h.Count > 0 {
						mean = h.SumNs / int64(h.Count)
					}
					emit(h.Name, fmt.Sprintf("%d", h.Count),
						sim.Time(mean).String(), sim.Time(h.P50Ns).String(),
						sim.Time(h.P90Ns).String(), sim.Time(h.P99Ns).String(),
						sim.Time(h.MaxNs).String())
				}
			}); err != nil {
			return err
		}
	}
	if len(s.VCs) > 0 {
		if err := writeSection(w, "per-VC",
			[]string{"vc", "cells-out", "cells-in", "sdus-out", "sdus-in", "drops", "crc-err", "len-err", "lost", "timeouts"},
			func(emit func(...string)) {
				for _, v := range s.VCs {
					var drops uint64
					for _, n := range v.Drops {
						drops += n
					}
					emit(fmt.Sprintf("%d/%d", v.VPI, v.VCI),
						fmt.Sprintf("%d", v.CellsOut), fmt.Sprintf("%d", v.CellsIn),
						fmt.Sprintf("%d", v.SDUsOut), fmt.Sprintf("%d", v.SDUsIn),
						fmt.Sprintf("%d", drops), fmt.Sprintf("%d", v.CRCErrors),
						fmt.Sprintf("%d", v.LengthErrors), fmt.Sprintf("%d", v.LostCells),
						fmt.Sprintf("%d", v.ReassemblyTimeouts))
				}
			}); err != nil {
			return err
		}
	}
	return nil
}

// writeSection renders one titled aligned table.
func writeSection(w io.Writer, title string, cols []string, fill func(emit func(...string))) error {
	var rows [][]string
	fill(func(cells ...string) {
		row := make([]string, len(cells))
		copy(row, cells)
		rows = append(rows, row)
	})
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	line := func(cells []string) error {
		for i, c := range cells {
			pad := widths[i] - len(c)
			if i == len(cells)-1 {
				pad = 0
			}
			if _, err := fmt.Fprintf(w, "  %s%*s", c, pad, ""); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := line(cols); err != nil {
		return err
	}
	for _, r := range rows {
		if err := line(r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// sortedDropNames is used by tests to iterate Drops deterministically.
func sortedDropNames(m map[string]uint64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
