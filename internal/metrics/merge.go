package metrics

// Merge folds src's instruments into r. It exists for sharded runs
// (sim.Group): each partition updates its own single-goroutine registry
// during the run, and the partitions' registries are merged afterwards into
// the one snapshot a serial run would have produced.
//
// Exactness: instrument names are instance-scoped ("a.nic.tx.cells",
// "sw.port1.residency"), and a sharded build keeps every instance inside
// exactly one partition — so for any given name, at most one source
// registry has non-zero state and the merge is trivially exact. The
// per-VC table is the one shared namespace: a VC's transmit-side fields
// accumulate in the sender's partition and its receive-side fields in the
// receiver's, touching disjoint fields of the row, so field-wise addition
// reconstructs the serial row exactly. Histograms merge bucket-wise; the
// layout is fixed (same 248 log-linear buckets everywhere), so quantiles of
// a merged histogram equal quantiles of the serially-filled one.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for name, c := range src.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range src.gauges {
		d := r.Gauge(name)
		d.v += g.v
		if g.max > d.max {
			d.max = g.max
		}
	}
	for name, h := range src.histos {
		r.Histogram(name).merge(h)
	}
	for id, s := range src.vcs {
		r.VC(id.VPI, id.VCI).merge(s)
	}
}

// merge folds src's distribution into h.
func (h *Histogram) merge(src *Histogram) {
	if src.count == 0 {
		return
	}
	if h.count == 0 || src.min < h.min {
		h.min = src.min
	}
	if src.max > h.max {
		h.max = src.max
	}
	h.count += src.count
	h.sum += src.sum
	for i := range h.buckets {
		h.buckets[i] += src.buckets[i]
	}
}

// merge folds src's accounting into s field-wise.
func (s *VCStats) merge(src *VCStats) {
	s.CellsOut += src.CellsOut
	s.CellsIn += src.CellsIn
	s.SDUsOut += src.SDUsOut
	s.SDUsIn += src.SDUsIn
	s.BytesOut += src.BytesOut
	s.BytesIn += src.BytesIn
	for i := range s.Drops {
		s.Drops[i] += src.Drops[i]
	}
	s.CRCErrors += src.CRCErrors
	s.LengthErrors += src.LengthErrors
	s.LostCells += src.LostCells
	s.ReassemblyTimeouts += src.ReassemblyTimeouts
	s.MidFrameKills += src.MidFrameKills
}
