package metrics

import (
	"math/bits"

	"repro/internal/sim"
)

// Histogram bucket layout: log-linear, the HDR-histogram shape. Values
// below subCount land in exact unit buckets; above that, each power-of-two
// octave splits into subCount sub-buckets, giving a worst-case relative
// error of 1/subCount (25% with 2 sub-bits) while keeping the bucket count
// fixed and the Observe path branch-light. 248 buckets cover the full
// non-negative int64 range, so a histogram is a flat 2 KiB array — cheap
// enough to scatter through the datapath.
const (
	histSubBits  = 2
	histSubCount = 1 << histSubBits
	// NumBuckets is the fixed bucket count of every histogram.
	NumBuckets = (63-histSubBits)*histSubCount + histSubCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	sub := int(uint64(v) >> uint(msb-histSubBits) & (histSubCount - 1))
	return (msb-histSubBits)*histSubCount + sub + histSubCount
}

// BucketUpper returns the largest value bucket i holds (inclusive).
func BucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	oct := (i - histSubCount) / histSubCount // msb - histSubBits
	sub := (i - histSubCount) % histSubCount
	msb := oct + histSubBits
	lower := int64(1)<<uint(msb) + int64(sub)<<uint(msb-histSubBits)
	return lower + int64(1)<<uint(msb-histSubBits) - 1
}

// BucketLower returns the smallest value bucket i holds.
func BucketLower(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	return BucketUpper(i-1) + 1
}

// Histogram is a fixed-bucket log-scale distribution over simulated
// durations. Observe is allocation-free; negative durations clamp to zero
// (they indicate a model bug but must not corrupt the distribution).
type Histogram struct {
	name    string
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [NumBuckets]uint64
}

// Observe records one duration. No-op on a nil histogram.
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.sum)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.min)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.max)
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return sim.Duration(h.sum / int64(h.count))
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Bucket returns bucket i's count.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[i]
}

// Quantile returns the value at quantile p in (0, 1]: the upper bound of
// the bucket holding the ceil(p*count)-th smallest observation, clamped to
// the observed [min, max] so single-valued distributions report exactly.
// Returns 0 when empty.
func (h *Histogram) Quantile(p float64) sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if p <= 0 {
		return sim.Duration(h.min)
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(h.count))
	if float64(rank) < p*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			v := BucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return sim.Duration(v)
		}
	}
	return sim.Duration(h.max)
}
