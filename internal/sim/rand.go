package sim

import "math"

// Rand is a small, deterministic pseudo-random stream for workload and fault
// injection.  It is a 64-bit SplitMix64 generator: fast, stateless between
// calls, and fully reproducible from its seed, which matters because every
// experiment in this repository must be rerunnable bit-for-bit.
//
// math/rand would also work, but carrying our own keeps the generator stable
// across Go releases (math/rand/v2 changed algorithms) and allows cheap
// independent streams per model via Split.
//
// # Sharing across partitions
//
// A Rand is single-owner state, exactly like a queue or a FIFO: the sequence
// a consumer sees depends on every draw interleaved before its own. In a
// serial run that interleaving is fixed by the event order; in a sharded run
// (sim.Group) two partitions draining one shared Rand would race AND would
// draw a different per-node sequence than the serial reference, silently
// breaking golden equivalence. The rule, enforced by TestRandSplitStreams:
// every node owns its own stream — seeded independently or derived once via
// Split before the run starts — so each partition's draws are a pure
// function of its own event order. The core builder follows it already:
// every link and workload seeds its own Rand from its spec seed.
type Rand struct {
	state uint64
}

// NewRand returns a stream seeded with seed. Two streams with the same seed
// produce identical sequences.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent stream from the current one, advancing the
// parent. Useful to give each simulated component its own stream so adding a
// component does not perturb the others' draws — and, in sharded runs,
// so that no two partitions ever share generator state (see the type
// comment). Split during setup, before any partition starts drawing.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed draw with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpDuration returns an exponentially distributed simulated duration with
// the given mean.
func (r *Rand) ExpDuration(mean Duration) Duration {
	d := Duration(r.Exp(float64(mean)))
	if d < 0 {
		d = 0
	}
	return d
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials. Used for "cells until next loss" style fault models.
func (r *Rand) Geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxUint64
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return uint64(math.Log(u) / math.Log(1-p))
}
