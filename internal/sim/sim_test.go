package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestEventRunsAtScheduledTime(t *testing.T) {
	k := NewKernel()
	var fired Time = -1
	k.At(100, func() { fired = k.Now() })
	k.Run()
	if fired != 100 {
		t.Fatalf("event fired at %v, want 100", fired)
	}
	if k.Now() != 100 {
		t.Fatalf("clock at %v after run, want 100", k.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(50, func() {
		k.After(25, func() { at = k.Now() })
	})
	k.Run()
	if at != 75 {
		t.Fatalf("After fired at %v, want 75", at)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Time
	for _, at := range []Time{500, 10, 300, 40, 40, 2} {
		at := at
		k.At(at, func() { order = append(order, at) })
	}
	k.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events ran out of order: %v", order)
	}
	if len(order) != 6 {
		t.Fatalf("ran %d events, want 6", len(order))
	}
}

func TestSameTimeEventsRunInInsertionOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(42, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated insertion order: %v", order)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(50, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	k.At(1, nil)
}

func TestCancelPreventsExecution(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("cancelled event still fired")
	}
	if e.Scheduled() {
		t.Fatal("cancelled event still reports scheduled")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	k := NewKernel()
	e := k.At(10, func() {})
	k.Cancel(e)
	k.Cancel(e) // must not panic
	k.Cancel(nil)
	k.Run()
}

func TestCancelMiddleOfQueue(t *testing.T) {
	k := NewKernel()
	var got []int
	e1 := k.At(10, func() { got = append(got, 1) })
	e2 := k.At(20, func() { got = append(got, 2) })
	e3 := k.At(30, func() { got = append(got, 3) })
	_ = e1
	_ = e3
	k.Cancel(e2)
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestReschedulePending(t *testing.T) {
	k := NewKernel()
	var at Time
	e := k.At(10, func() { at = k.Now() })
	k.Reschedule(e, 99)
	k.Run()
	if at != 99 {
		t.Fatalf("rescheduled event fired at %v, want 99", at)
	}
}

func TestRescheduleFiredEventRequeues(t *testing.T) {
	k := NewKernel()
	count := 0
	var e *Event
	e = k.At(10, func() { count++ })
	k.Run()
	k.Reschedule(e, k.Now()+5)
	k.Run()
	if count != 2 {
		t.Fatalf("event ran %d times, want 2", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(1, func() { ran++; k.Stop() })
	k.At(2, func() { ran++ })
	k.Run()
	if ran != 1 {
		t.Fatalf("ran %d events before stop, want 1", ran)
	}
	// A subsequent Run picks the remainder back up.
	k.Run()
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(10, func() { fired = append(fired, 10) })
	k.At(20, func() { fired = append(fired, 20) })
	k.At(30, func() { fired = append(fired, 30) })
	k.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want [10 20]", fired)
	}
	if k.Now() != 20 {
		t.Fatalf("clock at %v, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("%d pending, want 1", k.Pending())
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	k := NewKernel()
	k.RunUntil(1234)
	if k.Now() != 1234 {
		t.Fatalf("clock at %v, want 1234", k.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	k := NewKernel()
	k.RunUntil(100)
	k.RunFor(50)
	if k.Now() != 150 {
		t.Fatalf("clock at %v, want 150", k.Now())
	}
}

func TestDispatchedCounter(t *testing.T) {
	k := NewKernel()
	for i := Time(1); i <= 5; i++ {
		k.At(i, func() {})
	}
	k.Run()
	if k.Dispatched() != 5 {
		t.Fatalf("Dispatched() = %d, want 5", k.Dispatched())
	}
}

// Property: for any set of non-negative offsets, the kernel executes all
// events in non-decreasing time order and finishes with the clock at the max.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		k := NewKernel()
		var seen []Time
		var max Time
		for _, o := range offsets {
			at := Time(o)
			if at > max {
				max = at
			}
			k.At(at, func() { seen = append(seen, k.Now()) })
		}
		k.Run()
		if len(seen) != len(offsets) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(offsets) == 0 || k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the others to run.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(offsets []uint8, mask []bool) bool {
		k := NewKernel()
		events := make([]*Event, len(offsets))
		ran := make([]bool, len(offsets))
		for i, o := range offsets {
			i := i
			events[i] = k.At(Time(o), func() { ran[i] = true })
		}
		cancelled := make([]bool, len(offsets))
		for i := range offsets {
			if i < len(mask) && mask[i] {
				k.Cancel(events[i])
				cancelled[i] = true
			}
		}
		k.Run()
		for i := range offsets {
			if ran[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2726, "2.726us"},
		{1500000, "1.500ms"},
		{2 * Second, "2.000000s"},
		{Never, "never"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", s)
	}
}

// Property: interleaved schedule/cancel/reschedule operations never violate
// time ordering and execute exactly the non-cancelled events.
func TestPropertyRescheduleStress(t *testing.T) {
	type op struct {
		At     uint8
		Cancel bool
		Resch  bool
	}
	f := func(ops []op) bool {
		k := NewKernel()
		var events []*Event
		ran := 0
		expected := 0
		var lastTime Time = -1
		ordered := true
		for _, o := range ops {
			at := Time(o.At) + k.Now()
			switch {
			case o.Cancel && len(events) > 0:
				e := events[len(events)-1]
				events = events[:len(events)-1]
				if e.Scheduled() {
					k.Cancel(e)
					expected--
				}
			case o.Resch && len(events) > 0:
				k.Reschedule(events[len(events)-1], at)
			default:
				e := k.At(at, func() {
					if k.Now() < lastTime {
						ordered = false
					}
					lastTime = k.Now()
					ran++
				})
				events = append(events, e)
				expected++
			}
		}
		k.Run()
		return ordered && ran == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
