package sim

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// wheelHorizon is the absolute-time span the wheel covers from time zero;
// events beyond it land in the overflow heap (at time 0, the boundary is
// exactly wheelSlots<<wheelShift).
const wheelHorizon = Time(wheelSlots << wheelShift)

func TestNearEventUsesWheel(t *testing.T) {
	k := NewKernel()
	e := k.At(100, func() {})
	if e.slot1 == 0 || e.hidx1 != 0 {
		t.Fatalf("near event placed slot1=%d hidx1=%d, want wheel", e.slot1, e.hidx1)
	}
}

func TestFarEventUsesOverflow(t *testing.T) {
	k := NewKernel()
	e := k.At(wheelHorizon, func() {})
	if e.hidx1 == 0 || e.slot1 != 0 {
		t.Fatalf("far event placed slot1=%d hidx1=%d, want overflow", e.slot1, e.hidx1)
	}
}

func TestHeapKernelBypassesWheel(t *testing.T) {
	k := NewHeapKernel()
	e := k.At(100, func() {})
	if e.hidx1 == 0 {
		t.Fatal("heap-only kernel placed event in the wheel")
	}
	var at Time
	k.At(5, func() { at = k.Now() })
	k.Run()
	if at != 5 || k.Now() != 100 {
		t.Fatalf("heap-only kernel misdispatched: at=%v now=%v", at, k.Now())
	}
}

// Cancel of queued wheel events must unlink cleanly at the head, middle, and
// tail of a slot's list.
func TestCancelQueuedWheelEvent(t *testing.T) {
	k := NewKernel()
	var got []int
	es := make([]*Event, 5)
	for i := range es {
		i := i
		// All five share wheel slot 1 (times 256..260 >> 8 == 1).
		es[i] = k.At(Time(256+i), func() { got = append(got, i) })
	}
	k.Cancel(es[0]) // head
	k.Cancel(es[2]) // middle
	k.Cancel(es[4]) // tail
	k.Run()
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("after head/middle/tail cancels got %v, want [1 3]", got)
	}
	for i, e := range es {
		if e.Scheduled() {
			t.Fatalf("event %d still reports scheduled", i)
		}
	}
}

func TestRescheduleAcrossWheelOverflowBoundary(t *testing.T) {
	k := NewKernel()
	var at Time
	e := k.At(100, func() { at = k.Now() })
	if e.slot1 == 0 {
		t.Fatal("event did not start in the wheel")
	}
	k.Reschedule(e, 10*Second) // wheel -> overflow
	if e.hidx1 == 0 || e.slot1 != 0 {
		t.Fatalf("after far reschedule slot1=%d hidx1=%d, want overflow", e.slot1, e.hidx1)
	}
	k.Reschedule(e, 200) // overflow -> wheel
	if e.slot1 == 0 || e.hidx1 != 0 {
		t.Fatalf("after near reschedule slot1=%d hidx1=%d, want wheel", e.slot1, e.hidx1)
	}
	k.Run()
	if at != 200 {
		t.Fatalf("event fired at %v, want 200", at)
	}
}

// Two events at the same timestamp must run in schedule order even when one
// sits in the overflow heap (scheduled while far) and the others in the
// wheel (scheduled after the clock moved within horizon).
func TestSameTickOrderingAcrossTiers(t *testing.T) {
	k := NewKernel()
	const T = Time(500_000)
	var order []int
	k.At(T, func() { order = append(order, 0) }) // beyond horizon: overflow
	k.RunUntil(400_000)                          // T now within horizon
	k.At(T, func() { order = append(order, 1) }) // wheel
	k.At(T, func() { order = append(order, 2) }) // wheel, same slot
	k.Run()
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("cross-tier same-tick order %v, want [0 1 2]", order)
	}
}

// Events at the wheel/overflow boundary still dispatch in global time order.
func TestDispatchMergesTiersInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Time
	note := func() { order = append(order, k.Now()) }
	k.At(wheelHorizon+256, note) // overflow
	k.At(wheelHorizon-1, note)   // last wheel slot
	k.At(wheelHorizon, note)     // first overflow tick
	k.At(3, note)                // first wheel slot
	k.Run()
	want := []Time{3, wheelHorizon - 1, wheelHorizon, wheelHorizon + 256}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

func TestRunUntilWithEventsExactlyAtDeadline(t *testing.T) {
	k := NewKernel()
	var fired []int
	k.At(100, func() { fired = append(fired, 0) })
	k.At(100, func() { fired = append(fired, 1) })
	k.At(101, func() { fired = append(fired, 2) })
	k.RunUntil(100)
	if !reflect.DeepEqual(fired, []int{0, 1}) {
		t.Fatalf("events at deadline: fired %v, want [0 1]", fired)
	}
	if k.Now() != 100 {
		t.Fatalf("clock at %v, want 100", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("%d pending after deadline run, want 1", k.Pending())
	}
}

func TestRescheduleNilPanicsWithMessage(t *testing.T) {
	k := NewKernel()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Reschedule(nil) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "sim:") {
			t.Fatalf("Reschedule(nil) panicked with %v, want descriptive sim: message", r)
		}
	}()
	k.Reschedule(nil, 10)
}

func TestPostRunsLikeAt(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(50, func() { order = append(order, 0) })
	k.Post(50, func() { order = append(order, 1) })
	k.At(50, func() { order = append(order, 2) })
	k.PostAfter(50, func() { order = append(order, 3) })
	k.Run()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("Post/At interleave order %v, want [0 1 2 3]", order)
	}
}

// A Post callback that itself Posts may receive the very event being
// dispatched from the free list; the kernel must have detached fn first.
func TestPostChainReusesEvent(t *testing.T) {
	k := NewKernel()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			k.PostAfter(1, step)
		}
	}
	k.Post(0, step)
	k.Run()
	if count != 1000 {
		t.Fatalf("chained Post ran %d times, want 1000", count)
	}
}

// Steady-state Post scheduling plus dispatch must be allocation-free: the
// kernel recycles fired events through its free list. This pins the tentpole
// guarantee the datapath hot paths rely on.
func TestPostDispatchZeroAlloc(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		k.PostAfter(100, fn)
		if !k.Step() {
			t.Fatal("no event to step")
		}
	})
	if allocs != 0 {
		t.Fatalf("Post+dispatch allocates %.3f allocs/op, want 0", allocs)
	}
}

// Property: the wheel kernel and the heap-only kernel produce bit-identical
// dispatch traces for arbitrary workloads spanning both tiers, including
// events scheduled from inside callbacks and through the Post fast path.
func TestPropertyWheelHeapEquivalence(t *testing.T) {
	type rec struct {
		At Time
		ID int
	}
	trace := func(k *Kernel, offsets []uint32) []rec {
		var out []rec
		for i, o := range offsets {
			i, o := i, o
			k.At(Time(o), func() {
				out = append(out, rec{k.Now(), i})
				if o%3 == 0 {
					k.PostAfter(Time(o%7)*100, func() {
						out = append(out, rec{k.Now(), -i - 1})
					})
				}
			})
		}
		k.Run()
		return out
	}
	f := func(offsets []uint32) bool {
		wheel := trace(NewKernel(), offsets)
		heap := trace(NewHeapKernel(), offsets)
		return reflect.DeepEqual(wheel, heap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancel/reschedule stress across both tiers (offsets up to 2^20 ns
// straddle the ~262 µs wheel horizon) behaves identically to the heap kernel.
func TestPropertyWheelHeapCancelEquivalence(t *testing.T) {
	type op struct {
		At     uint32
		Cancel bool
	}
	trace := func(k *Kernel, ops []op) []Time {
		var out []Time
		var events []*Event
		for _, o := range ops {
			at := Time(o.At % (1 << 20))
			if o.Cancel && len(events) > 0 {
				k.Cancel(events[len(events)-1])
				events = events[:len(events)-1]
				continue
			}
			events = append(events, k.At(at, func() { out = append(out, k.Now()) }))
		}
		k.Run()
		return out
	}
	f := func(ops []op) bool {
		return reflect.DeepEqual(trace(NewKernel(), ops), trace(NewHeapKernel(), ops))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
