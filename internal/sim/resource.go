package sim

// Resource models a unit-capacity device (a bus, a processor, a DMA engine)
// that serves requests one at a time in FIFO order.  Callers ask for the
// resource for a known service duration and receive a callback when service
// completes; the kernel stays single-threaded.
//
// The model is non-preemptive, which matches the hardware being simulated:
// a bus burst or a firmware routine runs to completion once started.
type Resource struct {
	k    *Kernel
	name string

	busyUntil Time
	queue     []pendingUse

	// Completion plumbing for the zero-alloc hot path: each in-service
	// request parks its done callback here and schedules the pre-bound
	// completeFn through Post, so steady-state service costs no closure
	// and no Event allocation. Completions fire in schedule order, so the
	// FIFO stays aligned even when a zero-duration service lets a second
	// request begin in the same tick.
	inflight   []func()
	completeFn func()

	// Accounting.
	busyTime  Duration // total time spent serving
	served    uint64   // completed requests
	waitTime  Duration // total time requests spent queued
	maxQueued int
}

type pendingUse struct {
	arrived Time
	dur     Duration
	done    func()
}

// NewResource creates a FIFO-served unit resource attached to kernel k.
func NewResource(k *Kernel, name string) *Resource {
	r := &Resource{k: k, name: name}
	r.completeFn = r.complete
	return r
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Busy reports whether the resource is serving a request now.
func (r *Resource) Busy() bool { return r.k.Now() < r.busyUntil }

// QueueLen reports how many requests are waiting (not counting the one in
// service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// Use requests the resource for dur nanoseconds. done (may be nil) runs when
// service completes. Requests are served strictly FIFO. Use returns the time
// at which service will complete given the current queue.
func (r *Resource) Use(dur Duration, done func()) Time {
	if dur < 0 {
		panic("sim: negative service duration")
	}
	now := r.k.Now()
	if !r.Busy() && len(r.queue) == 0 {
		return r.begin(now, dur, done)
	}
	r.queue = append(r.queue, pendingUse{arrived: now, dur: dur, done: done})
	if len(r.queue) > r.maxQueued {
		r.maxQueued = len(r.queue)
	}
	// Completion time is an estimate assuming no later arrivals preempt
	// FIFO order, which they cannot.
	t := r.busyUntil
	for _, p := range r.queue {
		t += p.dur
	}
	return t
}

func (r *Resource) begin(now Time, dur Duration, done func()) Time {
	r.busyUntil = now + dur
	r.busyTime += dur
	r.served++
	r.inflight = append(r.inflight, done)
	r.k.Post(r.busyUntil, r.completeFn)
	return r.busyUntil
}

func (r *Resource) complete() {
	done := r.inflight[0]
	copy(r.inflight, r.inflight[1:])
	r.inflight[len(r.inflight)-1] = nil
	r.inflight = r.inflight[:len(r.inflight)-1]
	if done != nil {
		done()
	}
	r.next()
}

func (r *Resource) next() {
	if len(r.queue) == 0 || r.Busy() {
		return
	}
	p := r.queue[0]
	copy(r.queue, r.queue[1:])
	r.queue = r.queue[:len(r.queue)-1]
	r.waitTime += r.k.Now() - p.arrived
	r.begin(r.k.Now(), p.dur, p.done)
}

// Utilization returns the fraction of time in [0, now] the resource was busy.
func (r *Resource) Utilization() float64 {
	now := r.k.Now()
	if now == 0 {
		return 0
	}
	busy := r.busyTime
	if r.Busy() {
		busy -= r.busyUntil - now // don't count future service yet
	}
	return float64(busy) / float64(now)
}

// Stats returns cumulative counters: completed requests, total busy time and
// total queue-wait time.
func (r *Resource) Stats() (served uint64, busy, wait Duration, maxQueued int) {
	return r.served, r.busyTime, r.waitTime, r.maxQueued
}
