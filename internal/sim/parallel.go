// Conservative parallel execution: a Group runs one kernel per topology
// partition on its own goroutine, advancing all of them in lock-step windows
// bounded by the minimum cross-partition link delay (the lookahead). Inside
// a window every kernel is an ordinary serial simulator; traffic that
// crosses a partition boundary is appended to a Mailbox by the sending
// shard and drained into the receiving kernel at the barrier between
// windows. Because a cell sent at time t over a link with delay D arrives
// at t+D >= windowEnd whenever D >= window width, no kernel can ever
// receive an event in its past — the classic Chandy–Misra argument, with
// the lock-step window playing the role of the null message.
package sim

import "fmt"

// boundaryItem is one deferred cross-partition event: the full dispatch key
// plus the closure-free callback pair.
type boundaryItem struct {
	at, pt Time
	lane   int32
	seq    uint64
	afn    func(any)
	arg    any
}

// Mailbox carries events across one directed partition boundary (one cut
// link direction). Post is called only by the source partition's goroutine
// while a window executes; drain is called only by the coordinator between
// windows. The barrier's channel hand-offs give the happens-before edges,
// so no locking is needed.
type Mailbox struct {
	src, dst  *Kernel
	lane      int32 // source partition rank, stamped on every item
	lookahead Duration
	items     []boundaryItem
}

// Post enqueues afn(arg) to run in the destination partition at absolute
// time at. pt must be the sending kernel's current time; the item draws a
// sequence number from the sending kernel so that several same-instant
// sends keep their order, exactly as serial link posts would.
func (m *Mailbox) Post(at, pt Time, afn func(any), arg any) {
	seq := m.src.seq
	m.src.seq++
	m.items = append(m.items, boundaryItem{at: at, pt: pt, lane: m.lane, seq: seq, afn: afn, arg: arg})
}

// Lookahead reports the link propagation delay this mailbox declared.
func (m *Mailbox) Lookahead() Duration { return m.lookahead }

// Len reports how many items are waiting to be drained.
func (m *Mailbox) Len() int { return len(m.items) }

// drain moves every queued item into the destination kernel. Coordinator
// only, between windows.
func (m *Mailbox) drain() {
	for i := range m.items {
		it := &m.items[i]
		m.dst.PostBoundary(it.at, it.pt, it.lane, it.seq, it.afn, it.arg)
		it.afn, it.arg = nil, nil
	}
	m.items = m.items[:0]
}

// Group is the conservative parallel executor: a set of partition kernels,
// the mailboxes connecting them, and the lock-step window width (the
// minimum mailbox lookahead). A Group with one kernel and no mailboxes
// degenerates to the serial kernel run one window at a time.
type Group struct {
	kernels   []*Kernel
	mailboxes []*Mailbox
	window    Duration // min lookahead across mailboxes; Never when none

	now     Time // logical group clock: high-water mark of finished windows
	started bool
	work    []chan Time // per-shard window limit
	done    chan struct{}
}

// NewGroup builds an executor over the given kernels, assigning each its
// lane (partition rank) in slice order. The kernels must not be driven
// directly once grouped; use the Group's Run methods.
func NewGroup(kernels []*Kernel) *Group {
	if len(kernels) == 0 {
		panic("sim: NewGroup with no kernels")
	}
	g := &Group{kernels: kernels, window: Never}
	for i, k := range kernels {
		k.SetLane(int32(i))
	}
	return g
}

// Kernels returns the partition kernels in lane order.
func (g *Group) Kernels() []*Kernel { return g.kernels }

// Window reports the lock-step window width: the minimum lookahead declared
// across all mailboxes (Never when the group has no boundaries).
func (g *Group) Window() Duration { return g.window }

// Mailbox creates and registers the conduit for one cut-link direction from
// kernel src to kernel dst, declaring the link's propagation delay as
// lookahead. The group window shrinks to the smallest declared lookahead.
func (g *Group) Mailbox(src, dst *Kernel, lookahead Duration) *Mailbox {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: mailbox lookahead %v must be positive (zero-delay links cannot cross partitions)", lookahead))
	}
	m := &Mailbox{src: src, dst: dst, lane: src.lane, lookahead: lookahead}
	g.mailboxes = append(g.mailboxes, m)
	if lookahead < g.window {
		g.window = lookahead
	}
	return m
}

// Now returns the logical group time: every kernel has finished all work
// strictly before (RunUntil: up to and including) this time.
func (g *Group) Now() Time { return g.now }

// start launches one persistent worker goroutine per kernel. Each worker
// runs windows on demand: receive a limit, RunBefore(limit), signal done.
func (g *Group) start() {
	if g.started {
		return
	}
	g.started = true
	g.work = make([]chan Time, len(g.kernels))
	g.done = make(chan struct{}, len(g.kernels))
	for i, k := range g.kernels {
		ch := make(chan Time)
		g.work[i] = ch
		go func(k *Kernel, ch chan Time) {
			for limit := range ch {
				k.RunBefore(limit)
				g.done <- struct{}{}
			}
		}(k, ch)
	}
}

// Close stops the worker goroutines. The group cannot be run afterwards.
func (g *Group) Close() {
	if !g.started {
		return
	}
	for _, ch := range g.work {
		close(ch)
	}
	g.started = false
	g.work = nil
}

// minNext returns the earliest queued event time across all kernels.
// Mailboxes are always empty when this is called (drained at each barrier).
func (g *Group) minNext() Time {
	tmin := Never
	for _, k := range g.kernels {
		if t := k.NextEventTime(); t < tmin {
			tmin = t
		}
	}
	return tmin
}

// runWindow executes one lock-step window [.., limit) on every kernel in
// parallel, then drains all mailboxes at the barrier.
func (g *Group) runWindow(limit Time) {
	for _, ch := range g.work {
		ch <- limit
	}
	for range g.kernels {
		<-g.done
	}
	for _, m := range g.mailboxes {
		m.drain()
	}
}

// windowEnd computes the exclusive end of the window opening at tmin,
// saturating instead of overflowing.
func (g *Group) windowEnd(tmin Time) Time {
	if g.window == Never || tmin > Never-g.window {
		return Never
	}
	return tmin + g.window
}

// Run executes windows until every kernel's queue drains (all mailboxes are
// empty at each barrier by construction). It returns the latest kernel
// time.
func (g *Group) Run() Time {
	g.start()
	for {
		tmin := g.minNext()
		if tmin == Never {
			break
		}
		g.runWindow(g.windowEnd(tmin))
	}
	for _, k := range g.kernels {
		if k.now > g.now {
			g.now = k.now
		}
	}
	return g.now
}

// RunUntil executes events with timestamps <= deadline on every kernel,
// then sets each kernel's clock (and the group clock) to the deadline —
// the same contract as the serial Kernel.RunUntil. Each window opens at
// the earliest queued event across the group, so idle stretches cost one
// barrier, not one barrier per window width.
func (g *Group) RunUntil(deadline Time) Time {
	g.start()
	for {
		tmin := g.minNext()
		if tmin > deadline {
			break
		}
		limit := g.windowEnd(tmin)
		if limit > deadline {
			// Final window: deadline+1 keeps events AT the deadline
			// inside (RunUntil is inclusive), and stays below every
			// undrained arrival, which lands at >= tmin+lookahead.
			limit = deadline + 1
		}
		g.runWindow(limit)
	}
	for _, k := range g.kernels {
		if k.now < deadline {
			k.now = deadline
		}
	}
	g.now = deadline
	return g.now
}

// RunFor advances the whole group by d nanoseconds of simulated time.
func (g *Group) RunFor(d Duration) Time { return g.RunUntil(g.now + d) }
