// Package sim provides the discrete-event simulation kernel used by every
// hardware and protocol model in this repository.
//
// The kernel is deliberately small: a monotonically increasing simulated
// clock, a two-tier event queue with deterministic tie-breaking, and a
// handful of synchronization primitives (resources, queues, signals) built on
// top of it.  All simulated time is carried as sim.Time, an int64 count of
// simulated nanoseconds, so one simulated second is 1e9 and a 155.52 Mb/s
// cell time (2.726 µs) is 2726 ticks with sub-nanosecond residue handled by
// the units package.
//
// # Event queue
//
// The queue is a timing wheel (bucketed calendar) fronting a binary-heap
// overflow tier.  Per-cell events arrive at a fixed cadence — cell times of
// 680/2726 ns, DMA bursts of a few hundred ns, 125 µs SONET frames — which
// is the ideal case for a wheel: scheduling and dispatch are O(1) instead of
// the O(log n) heap churn the original kernel paid on every cell.  Events
// beyond the wheel horizon (~262 µs) go to the heap and are dispatched from
// there; the two tiers are merged at dispatch by comparing (time, seq), so
// the observable execution order is exactly the order the single heap
// produced: strictly non-decreasing time, ties broken by schedule order.
// NewHeapKernel builds a kernel that bypasses the wheel entirely — the
// pre-wheel scheduler, retained for golden equivalence tests.
//
// # Allocation discipline
//
// At and After return a *Event handle the caller may Cancel, Reschedule, or
// retain indefinitely, so those events cannot be recycled and cost one
// allocation each.  Post and PostAfter are the fire-and-forget fast path:
// no handle is returned, and the kernel runs the event through an internal
// free list, so steady-state scheduling is allocation-free.  Every per-cell
// path in the datapath schedules through Post.
//
// The kernel is single-goroutine: models schedule callbacks rather than
// blocking.  This keeps runs deterministic and fast (no channel hand-offs on
// the per-cell hot path) and mirrors how the hardware being modelled is
// clocked.
//
// # Parallel execution
//
// A Group (parallel.go) runs several kernels — one partition of the topology
// each — in lock-step windows bounded by the minimum cross-partition link
// delay (conservative synchronization with link-delay lookahead).  Each
// kernel stays single-goroutine; cross-partition traffic rides Mailboxes
// that are appended during a window and drained at the barrier between
// windows.  Events carry a full dispatch key (at, pt, lane, seq) — pt is the
// virtual time the event was scheduled, lane the scheduling partition's rank
// — so a merged parallel run dispatches in an order a serial run would also
// produce; the serial kernel remains the golden reference.
package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// run. Negative values are invalid except for the sentinel Never.
type Time int64

// Never is a sentinel Time that compares after every reachable time.
const Never Time = math.MaxInt64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration's constants but in simulated
// nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time in an engineering-friendly unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Timing-wheel geometry: 1024 slots of 256 ns cover a ~262 µs horizon, which
// holds every cadenced event the datapath schedules (cell times, DMA bursts,
// engine routines, SONET frame ticks, 10 µs fiber delays). Longer timers —
// retransmission timeouts, run deadlines — overflow to the heap tier.
const (
	wheelShift = 8 // slot granularity: 256 ns
	wheelSlots = 1024
	wheelMask  = wheelSlots - 1
)

// Event is a scheduled callback. The zero Event is inert. Events returned by
// At/After stay valid after they fire (Reschedule re-queues them); events
// scheduled with Post/PostAfter are kernel-owned and recycled at dispatch.
type Event struct {
	at   Time
	pt   Time   // virtual time the event was scheduled (post time)
	seq  uint64 // insertion order; breaks ties deterministically
	lane int32  // scheduling partition rank; 0 on serial kernels
	fn   func()

	// Boundary events (PostBoundary) carry their payload out-of-line so a
	// cross-partition cell hand-off is closure-free: afn(arg) runs instead
	// of fn. A pointer in arg does not allocate.
	afn func(any)
	arg any

	// Queue position. Exactly one of these is nonzero while queued:
	// slot1 is 1+wheel-slot when in the wheel, hidx1 is 1+heap-index when
	// in the overflow heap. The +1 bias keeps the zero Event inert.
	slot1      int32
	hidx1      int32
	prev, next *Event // wheel slot list links; next doubles as free-list link
	pooled     bool   // from the Post free list; recycled at dispatch
}

// eventLess orders two events by the full dispatch key (at, pt, lane, seq).
// On a serial kernel pt is nondecreasing in seq (the clock is monotone) and
// lane is constant, so this collapses to the original (at, seq) order. In a
// parallel run the extended key lets boundary events — whose seq comes from
// a different kernel — take a deterministic position among local events:
// first by when they were scheduled in virtual time, then by partition rank.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pt != b.pt {
		return a.pt < b.pt
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	return a.seq < b.seq
}

// At reports the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is currently in the queue.
func (e *Event) Scheduled() bool { return e != nil && (e.slot1 != 0 || e.hidx1 != 0) }

// Scheduler is the event-scheduling surface models need from a kernel: a
// clock plus cancellable (At/After) and fire-and-forget (Post/PostAfter)
// scheduling. *Kernel implements it; a partition in a parallel run is simply
// a Kernel whose Scheduler is local to that partition. Hot-path model code
// may still hold a concrete *Kernel — the interface exists to mark and check
// the boundary, not to force dynamic dispatch on per-cell paths.
type Scheduler interface {
	Now() Time
	At(at Time, fn func()) *Event
	After(d Duration, fn func()) *Event
	Post(at Time, fn func())
	PostAfter(d Duration, fn func())
	Cancel(e *Event)
	Reschedule(e *Event, at Time)
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; call NewKernel (or NewHeapKernel for the heap-only scheduler).
type Kernel struct {
	now     Time
	seq     uint64
	lane    int32 // partition rank stamped on every scheduled event
	stopped bool

	// Wheel tier: doubly-linked per-slot lists kept sorted by (at, seq),
	// with an occupancy bitmap so the next busy slot is a few word scans.
	head, tail [wheelSlots]*Event
	occ        [wheelSlots / 64]uint64
	wheelCount int

	// Overflow tier: the original binary heap, ordered by (at, seq).
	overflow eventHeap

	// Free list of recycled Post events, chained through next.
	free *Event

	// heapOnly disables the wheel: every event runs through the overflow
	// heap, reproducing the pre-wheel scheduler exactly.
	heapOnly bool

	// Stats
	dispatched uint64
}

var _ Scheduler = (*Kernel)(nil)

// NewKernel returns a kernel with the clock at zero and an empty queue.
func NewKernel() *Kernel {
	return &Kernel{}
}

// NewHeapKernel returns a kernel that schedules every event through the
// binary heap, bypassing the timing wheel. This is the pre-wheel scheduler,
// kept for golden equivalence tests (both kernels dispatch in identical
// (time, seq) order) and as a fallback for workloads the wheel pessimizes.
func NewHeapKernel() *Kernel {
	return &Kernel{heapOnly: true}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// SetLane tags every event this kernel subsequently schedules with lane, the
// partition rank used as a deterministic cross-partition tie-breaker in the
// dispatch key. Serial kernels keep the zero lane; Group assigns one rank
// per partition at construction.
func (k *Kernel) SetLane(lane int32) { k.lane = lane }

// Lane reports the partition rank stamped on this kernel's events.
func (k *Kernel) Lane() int32 { return k.lane }

// Dispatched reports how many events have been executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Pending reports how many events are queued.
func (k *Kernel) Pending() int { return k.wheelCount + len(k.overflow) }

// At schedules fn to run at absolute time at, returning a handle the caller
// may Cancel or Reschedule. Scheduling in the past panics: a model that does
// so is broken, and silently clamping would hide the bug. Fire-and-forget
// callers should prefer Post, which recycles the event.
func (k *Kernel) At(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	e := &Event{at: at, pt: k.now, lane: k.lane, seq: k.seq, fn: fn}
	k.seq++
	k.insert(e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	return k.At(k.now+d, fn)
}

// Post schedules fn to run at absolute time at, fire-and-forget: no handle
// is returned, so the event cannot be cancelled, and the kernel recycles it
// through a free list — steady-state Post/dispatch is allocation-free. This
// is the per-cell hot path; ordering is identical to At (one seq per call).
func (k *Kernel) Post(at Time, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	e := k.free
	if e == nil {
		e = &Event{}
	} else {
		k.free = e.next
		e.next = nil
	}
	e.at, e.pt, e.lane, e.seq, e.fn, e.pooled = at, k.now, k.lane, k.seq, fn, true
	k.seq++
	k.insert(e)
}

// PostBoundary schedules a cross-partition event with an explicit dispatch
// key: pt is the virtual time the sending partition scheduled it, lane the
// sender's rank, seq a sequence number drawn from the sender's kernel. The
// callback is the closure-free afn(arg) pair so cell hand-offs do not
// allocate. Only Mailbox.drain should call this; like Post, the event is
// recycled at dispatch.
func (k *Kernel) PostBoundary(at, pt Time, lane int32, seq uint64, afn func(any), arg any) {
	if at < k.now {
		panic(fmt.Sprintf("sim: boundary event at %v before now %v (lookahead violated)", at, k.now))
	}
	if afn == nil {
		panic("sim: schedule nil boundary callback")
	}
	e := k.free
	if e == nil {
		e = &Event{}
	} else {
		k.free = e.next
		e.next = nil
	}
	e.at, e.pt, e.lane, e.seq = at, pt, lane, seq
	e.fn, e.afn, e.arg, e.pooled = nil, afn, arg, true
	k.insert(e)
}

// PostAfter schedules fn to run d nanoseconds from now, fire-and-forget.
func (k *Kernel) PostAfter(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	k.Post(k.now+d, fn)
}

// insert places e in the wheel when its slot falls inside the horizon, in
// the overflow heap otherwise.
func (k *Kernel) insert(e *Event) {
	if !k.heapOnly && (e.at>>wheelShift)-(k.now>>wheelShift) < wheelSlots {
		k.wheelInsert(e)
		return
	}
	k.overflow.push(e)
}

// wheelInsert links e into its slot's list, kept sorted by the full dispatch
// key. A locally scheduled event carries the largest (pt, seq) in its lane,
// so among equal times it lands last and the backward scan only ever skips
// later-time events; boundary events may scan past same-time locals to take
// their key-ordered position.
func (k *Kernel) wheelInsert(e *Event) {
	s := int((e.at >> wheelShift) & wheelMask)
	p := k.tail[s]
	for p != nil && eventLess(e, p) {
		p = p.prev
	}
	if p == nil { // new head
		e.next = k.head[s]
		if e.next != nil {
			e.next.prev = e
		} else {
			k.tail[s] = e
		}
		k.head[s] = e
	} else {
		e.prev = p
		e.next = p.next
		if p.next != nil {
			p.next.prev = e
		} else {
			k.tail[s] = e
		}
		p.next = e
	}
	e.slot1 = int32(s + 1)
	k.occ[s>>6] |= 1 << uint(s&63)
	k.wheelCount++
}

// wheelUnlink removes e from its slot list.
func (k *Kernel) wheelUnlink(e *Event) {
	s := int(e.slot1) - 1
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		k.head[s] = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		k.tail[s] = e.prev
	}
	e.prev, e.next = nil, nil
	e.slot1 = 0
	if k.head[s] == nil {
		k.occ[s>>6] &^= 1 << uint(s&63)
	}
	k.wheelCount--
}

// peekWheel returns the earliest wheel event without removing it. All wheel
// events live within one horizon of now, so a circular bitmap scan starting
// at now's slot visits slots in increasing-time order.
func (k *Kernel) peekWheel() *Event {
	if k.wheelCount == 0 {
		return nil
	}
	base := int((k.now >> wheelShift) & wheelMask)
	w, b := base>>6, uint(base&63)
	if m := k.occ[w] &^ (1<<b - 1); m != 0 {
		s := w<<6 + bits.TrailingZeros64(m)
		return k.head[s]
	}
	for i := 1; i < len(k.occ); i++ {
		wi := (w + i) & (len(k.occ) - 1)
		if m := k.occ[wi]; m != 0 {
			s := wi<<6 + bits.TrailingZeros64(m)
			return k.head[s]
		}
	}
	if m := k.occ[w] & (1<<b - 1); m != 0 {
		s := w<<6 + bits.TrailingZeros64(m)
		return k.head[s]
	}
	return nil
}

// peekNext returns the next event to dispatch — the dispatch-key minimum
// across both tiers — without removing it.
func (k *Kernel) peekNext() *Event {
	we := k.peekWheel()
	if len(k.overflow) == 0 {
		return we
	}
	he := k.overflow[0]
	if we == nil || eventLess(he, we) {
		return he
	}
	return we
}

// remove detaches a queued event from whichever tier holds it.
func (k *Kernel) remove(e *Event) {
	switch {
	case e.slot1 != 0:
		k.wheelUnlink(e)
	case e.hidx1 != 0:
		k.overflow.remove(int(e.hidx1) - 1)
	}
}

// Cancel removes a previously scheduled event. Cancelling a nil, already-run
// or already-cancelled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || !e.Scheduled() {
		return
	}
	k.remove(e)
}

// Reschedule moves a pending event to a new absolute time, or schedules it
// afresh if it already fired. The event may migrate between the wheel and
// the overflow tier. Rescheduling a nil event panics with a diagnostic (use
// At to schedule afresh when no event exists yet).
func (k *Kernel) Reschedule(e *Event, at Time) {
	if e == nil {
		panic("sim: Reschedule of nil event (use At to schedule afresh)")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, k.now))
	}
	if e.Scheduled() {
		k.remove(e)
	}
	e.at = at
	e.pt = k.now
	e.lane = k.lane
	e.seq = k.seq
	k.seq++
	k.insert(e)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// dispatch removes e from the queue, advances the clock, and runs it.
func (k *Kernel) dispatch(e *Event) {
	k.remove(e)
	if e.at < k.now {
		panic("sim: event queue corrupted (time went backwards)")
	}
	k.now = e.at
	k.dispatched++
	fn, afn, arg := e.fn, e.afn, e.arg
	if e.pooled {
		e.fn, e.afn, e.arg = nil, nil, nil
		e.next = k.free
		k.free = e
	}
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
}

// Step executes the single next event, if any, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	e := k.peekNext()
	if e == nil {
		return false
	}
	k.dispatch(e)
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulated time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to the deadline (if the deadline is later than the last event). Events
// scheduled beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for !k.stopped {
		e := k.peekNext()
		if e == nil || e.at > deadline {
			break
		}
		k.dispatch(e)
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// RunFor advances the simulation by d nanoseconds of simulated time.
func (k *Kernel) RunFor(d Duration) Time { return k.RunUntil(k.now + d) }

// RunBefore executes every queued event with timestamp strictly before
// limit and reports how many it dispatched. Unlike RunUntil, the clock is
// left at the last dispatched event — it does not jump to limit — so a
// boundary event inserted afterwards at any time >= the old limit is still
// in this kernel's future. This is the per-window body of a Group run.
func (k *Kernel) RunBefore(limit Time) int {
	n := 0
	for {
		e := k.peekNext()
		if e == nil || e.at >= limit {
			return n
		}
		k.dispatch(e)
		n++
	}
}

// NextEventTime reports the timestamp of the next queued event, or Never
// when the queue is empty.
func (k *Kernel) NextEventTime() Time {
	e := k.peekNext()
	if e == nil {
		return Never
	}
	return e.at
}

// eventHeap is the overflow tier: a binary heap ordered by (at, seq). It is
// the original kernel's queue, inlined (rather than container/heap) so push
// and pop stay free of interface conversions.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool { return eventLess(h[i], h[j]) }

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hidx1 = int32(i + 1)
	h[j].hidx1 = int32(j + 1)
}

func (h *eventHeap) push(e *Event) {
	*h = append(*h, e)
	e.hidx1 = int32(len(*h))
	h.up(len(*h) - 1)
}

// remove deletes the element at index i.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old.swap(i, n)
	}
	old[n].hidx1 = 0
	old[n] = nil
	*h = old[:n]
	if i != n {
		if !h.down(i) {
			h.up(i)
		}
	}
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) bool {
	start := i
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > start
}
